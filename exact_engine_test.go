// Dense-vs-sparse identity of the exact engine. The on-the-fly explorer
// (mdp.Explore / mdp.ExplorePacked) must be a pure scalability change:
// for every model the explored MDP is structurally identical — the same
// CSR arrays, position for position — to the densely enumerated one, and
// every solver returns the same answers on both. The solvers themselves
// must be deterministic in the worker count: parallel sweeps are
// bit-identical whether one goroutine sweeps or eight do (run under
// -race by make test-race, which also exercises the data-sharing
// discipline of the level schedule).
package timedpa_test

import (
	"errors"
	"math"
	"testing"

	"repro/internal/consensus"
	"repro/internal/dining"
	"repro/internal/election"
	"repro/internal/mdp"
	"repro/internal/pa"
	"repro/internal/sched"
	"repro/internal/sim"
)

// exploreProduct builds the digitized product of a model both ways:
// densely via FromAutomaton and on the fly via ExplorePacked (with the
// compiled-model cache, as the analysis constructors do).
func exploreProduct[S comparable](t *testing.T, model sched.Model[S], k int, opts mdp.ExploreOptions) (dense, explored *mdp.MDP, dIx, eIx *mdp.Index[sched.State[S]]) {
	t.Helper()
	auto, err := sched.Product[S](model, sched.Config{StepsPerWindow: k})
	if err != nil {
		t.Fatal(err)
	}
	dense, dIx, err = mdp.FromAutomaton(auto, 0)
	if err != nil {
		t.Fatal(err)
	}
	cauto, err := sched.Product[S](sim.Compile[S](model), sched.Config{StepsPerWindow: k})
	if err != nil {
		t.Fatal(err)
	}
	if pack, ok := sched.ProductPacker[S](model); ok {
		explored, eIx, err = mdp.ExplorePacked(cauto, pack, opts)
	} else {
		explored, eIx, err = mdp.Explore(cauto, opts)
	}
	if err != nil {
		t.Fatal(err)
	}
	return dense, explored, dIx, eIx
}

// requireSameMDP pins structural identity: state count, state numbering
// (via the index), and the full CSR arrays.
func requireSameMDP[S comparable](t *testing.T, dense, explored *mdp.MDP, dIx, eIx *mdp.Index[S]) {
	t.Helper()
	if dense.NumStates != explored.NumStates {
		t.Fatalf("dense %d states, explored %d", dense.NumStates, explored.NumStates)
	}
	if dIx.Len() != eIx.Len() {
		t.Fatalf("dense index %d states, explored %d", dIx.Len(), eIx.Len())
	}
	for i := 0; i < dIx.Len(); i++ {
		if dIx.State(i) != eIx.State(i) {
			t.Fatalf("state %d: dense %v != explored %v", i, dIx.State(i), eIx.State(i))
		}
	}
	if err := dense.CSR().Equal(explored.CSR()); err != nil {
		t.Fatal(err)
	}
}

// requireSolverAgreement runs every quantitative solver on both MDPs and
// checks exact equality for the rational analyses and epsilon agreement
// for the floating-point ones.
func requireSolverAgreement(t *testing.T, dense, explored *mdp.MDP, target []bool, horizon int) {
	t.Helper()

	for _, goal := range []mdp.Goal{mdp.MinProb, mdp.MaxProb} {
		dv, err := dense.ReachWithinTicks(target, horizon, goal)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := explored.ReachWithinTicks(target, horizon, goal)
		if err != nil {
			t.Fatal(err)
		}
		for s := range dv {
			if !dv[s].Equal(ev[s]) {
				t.Fatalf("goal %v state %d: dense %v != explored %v", goal, s, dv[s], ev[s])
			}
		}
	}

	dt, err := dense.MaxExpectedTicks(target, mdp.VIConfig{})
	if err != nil {
		t.Fatal(err)
	}
	et, err := explored.MaxExpectedTicks(target, mdp.VIConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for s := range dt {
		if math.Abs(dt[s]-et[s]) > 1e-9 && !(math.IsInf(dt[s], 1) && math.IsInf(et[s], 1)) {
			t.Fatalf("expected ticks state %d: dense %v != explored %v", s, dt[s], et[s])
		}
	}

	dq := dense.MinProbOne(target)
	eq := explored.MinProbOne(target)
	for s := range dq {
		if dq[s] != eq[s] {
			t.Fatalf("MinProbOne state %d: dense %v != explored %v", s, dq[s], eq[s])
		}
	}
}

func TestExploreMatchesDenseDining(t *testing.T) {
	cases := []struct{ n, k, horizon int }{{3, 1, 13}, {3, 2, 13}}
	if !testing.Short() {
		cases = append(cases, struct{ n, k, horizon int }{4, 1, 13})
	}
	for _, tc := range cases {
		model := dining.MustNew(tc.n)
		for _, workers := range []int{1, 4} {
			dense, explored, dIx, eIx := exploreProduct[dining.State](t, model, tc.k, mdp.ExploreOptions{Workers: workers})
			requireSameMDP(t, dense, explored, dIx, eIx)
			requireSolverAgreement(t, dense, explored, eIx.Mask(sched.LiftPred(dining.InC)), tc.horizon)
		}
	}
}

func TestExploreMatchesDenseElection(t *testing.T) {
	for _, n := range []int{3, 4} {
		model := election.MustNew(n)
		dense, explored, dIx, eIx := exploreProduct[election.State](t, model, 1, mdp.ExploreOptions{})
		requireSameMDP(t, dense, explored, dIx, eIx)
		requireSolverAgreement(t, dense, explored, eIx.Mask(sched.LiftPred(election.State.HasLeader)), 8)
	}
}

func TestExploreMatchesDenseConsensus(t *testing.T) {
	model := consensus.MustNew(3, 1)
	dense, explored, dIx, eIx := exploreProduct[consensus.State](t, model, 1, mdp.ExploreOptions{})
	requireSameMDP(t, dense, explored, dIx, eIx)
	target := eIx.Mask(sched.LiftPred(consensus.State.AllCorrectDecided))
	requireSolverAgreement(t, dense, explored, target, 6)
}

// TestAnalysisOptsMatchesDense pins the user-facing constructors: the
// explorer-backed analyses must compute the paper's headline quantities
// identically to the dense ones.
func TestAnalysisOptsMatchesDense(t *testing.T) {
	ad, err := dining.NewAnalysis(3, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	ae, err := dining.NewAnalysisOpts(3, 1, dining.Opts{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := ad.MDP.CSR().Equal(ae.MDP.CSR()); err != nil {
		t.Fatal(err)
	}
	wd := ad.ComposedStatement()
	we := ae.ComposedStatement()
	rd, err := ad.CheckPaperChain()
	if err != nil {
		t.Fatal(err)
	}
	re, err := ae.CheckPaperChain()
	if err != nil {
		t.Fatal(err)
	}
	if len(rd) != len(re) {
		t.Fatalf("check results: %d vs %d", len(rd), len(re))
	}
	for i := range rd {
		if rd[i].Holds != re[i].Holds || !rd[i].WorstProb.Equal(re[i].WorstProb) {
			t.Fatalf("arrow %d: dense (%v, %v) vs explored (%v, %v)", i, rd[i].Holds, rd[i].WorstProb, re[i].Holds, re[i].WorstProb)
		}
	}
	if !wd.Prob.Equal(we.Prob) || !wd.Time.Equal(we.Time) {
		t.Fatalf("composed statement differs: %v vs %v", wd, we)
	}

	ed, err := election.NewAnalysis(3, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	ee, err := election.NewAnalysisOpts(3, 1, election.Opts{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := ed.MDP.CSR().Equal(ee.MDP.CSR()); err != nil {
		t.Fatal(err)
	}
	xd, err := ed.WorstExpectedTime()
	if err != nil {
		t.Fatal(err)
	}
	xe, err := ee.WorstExpectedTime()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(xd-xe) > 1e-9 {
		t.Fatalf("worst expected time: dense %v vs explored %v", xd, xe)
	}
}

// TestExploreLimitAndBudget pins the two failure modes: the state limit
// mirrors FromAutomaton's pa.ErrLimitExceeded, and the byte budget fails
// with a typed *mdp.BudgetError carrying the footprint reached.
func TestExploreLimitAndBudget(t *testing.T) {
	model := election.MustNew(3)
	auto, err := sched.Product[election.State](model, sched.Config{StepsPerWindow: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := mdp.Explore(auto, mdp.ExploreOptions{Limit: 10}); !errors.Is(err, pa.ErrLimitExceeded) {
		t.Fatalf("limit err = %v, want pa.ErrLimitExceeded", err)
	}
	_, _, err = mdp.Explore(auto, mdp.ExploreOptions{MemBudget: 64})
	if !errors.Is(err, mdp.ErrMemBudget) {
		t.Fatalf("budget err = %v, want mdp.ErrMemBudget", err)
	}
	var be *mdp.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("budget err = %T, want *mdp.BudgetError", err)
	}
	if be.Budget != 64 || be.Bytes <= 64 || be.States <= 0 {
		t.Fatalf("budget error fields: %+v", be)
	}
}

// TestParallelSweepDeterminism pins the bit-identical-across-workers
// contract of every parallel solver, with the inline-sweep threshold
// forced to zero so small models still take the fan-out path. Under
// -race (make test-race) this also checks the data-sharing discipline.
func TestParallelSweepDeterminism(t *testing.T) {
	defer mdp.SetMinGrainForTest(1)()

	a, err := dining.NewAnalysisOpts(3, 1, dining.Opts{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	target := a.Index.Mask(sched.LiftPred(dining.InC))

	type result struct {
		reach []string
		flt   []float64
		ticks []float64
	}
	run := func(workers int) result {
		m, err := dining.NewAnalysisOpts(3, 1, dining.Opts{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		rv, err := m.MDP.ReachWithinTicks(target, 13, mdp.MinProb)
		if err != nil {
			t.Fatal(err)
		}
		strs := make([]string, len(rv))
		for i, r := range rv {
			strs[i] = r.String()
		}
		fv, err := m.MDP.ReachWithinTicksFloat(target, 13, mdp.MinProb)
		if err != nil {
			t.Fatal(err)
		}
		tv, err := m.MDP.MaxExpectedTicks(target, mdp.VIConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return result{reach: strs, flt: fv, ticks: tv}
	}

	ref := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		for s := range ref.reach {
			if got.reach[s] != ref.reach[s] {
				t.Fatalf("workers=%d state %d: exact %s != %s", workers, s, got.reach[s], ref.reach[s])
			}
			if got.flt[s] != ref.flt[s] {
				t.Fatalf("workers=%d state %d: float %v != %v (not bit-identical)", workers, s, got.flt[s], ref.flt[s])
			}
			if got.ticks[s] != ref.ticks[s] && !(math.IsInf(got.ticks[s], 1) && math.IsInf(ref.ticks[s], 1)) {
				t.Fatalf("workers=%d state %d: ticks %v != %v (not bit-identical)", workers, s, got.ticks[s], ref.ticks[s])
			}
		}
	}
}
