// Package timedpa is the public facade of a full Go reproduction of
//
//	N. Lynch, I. Saias, R. Segala,
//	"Proving Time Bounds for Randomized Distributed Algorithms",
//	PODC 1994.
//
// The paper develops a method for proving upper bounds on the running time
// of randomized distributed algorithms under adversarial scheduling:
// time-bounded progress statements U --t,p--> U' ("from any state of U,
// under any adversary of a schema, a state of U' is reached within time t
// with probability at least p"), a composition theorem for chaining them,
// independence rules for reasoning about separate coin flips against
// adaptive adversaries, and, as the flagship application, a proof that the
// Lehmann–Rabin randomized Dining Philosophers algorithm makes progress
// within time 13 with probability 1/8 — hence within expected time 63 —
// against every adversary that schedules each ready process at least once
// per time unit.
//
// This module reproduces all of it, executable:
//
//   - the probabilistic automaton model (prob, pa), adversaries and
//     schemas (adversary), execution automata with their rectangle measure
//     (exec), and the event schemas first/next with the Proposition 4.2
//     independence bounds (events);
//   - the proof calculus (core): statements, Proposition 3.2 weakening,
//     Theorem 3.4 composition with its execution-closure side condition,
//     machine-checked proof trees, a statement parser and a proof-script
//     interpreter, and the Section 6.2 expected-time recurrence;
//   - a worst-case model checker: the Unit-Time adversary schema is
//     digitized (sched) into a finite scheduler-product MDP (mdp) on which
//     exact rational value iteration computes the true worst-case
//     probability of every claimed arrow;
//   - the Lehmann–Rabin algorithm itself (dining) with the paper's five
//     arrows checked and composed into T --13,1/8--> C, plus a dense-time
//     Monte Carlo engine (sim) with programmable malicious schedulers;
//   - a second case study (election) and a qualitative Zuck–Pnueli-style
//     baseline (liveness) for contrast.
//
// The type aliases and constructors below re-export the stable API so that
// examples, commands and downstream users have a single import; the
// internal packages remain the implementation.
package timedpa

import (
	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/dining"
	"repro/internal/election"
	"repro/internal/events"
	"repro/internal/exec"
	"repro/internal/mdp"
	"repro/internal/pa"
	"repro/internal/prob"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Exact rational arithmetic (package prob).
type (
	// Rat is an immutable arbitrary-precision rational.
	Rat = prob.Rat
	// Dist is a finite probability distribution.
	Dist[T comparable] = prob.Dist[T]
	// Outcome pairs a value with its probability.
	Outcome[T comparable] = prob.Outcome[T]
)

// Re-exported rational constructors.
var (
	NewRat       = prob.NewRat
	ParseRat     = prob.ParseRat
	MustParseRat = prob.MustParseRat
	Zero         = prob.Zero
	One          = prob.One
	Half         = prob.Half
)

// The probabilistic automaton model (package pa).
type (
	// Automaton is a probabilistic automaton (Definition 2.1).
	Automaton[S comparable] = pa.Automaton[S]
	// Step is one labeled probabilistic transition.
	Step[S comparable] = pa.Step[S]
	// Fragment is a finite execution fragment.
	Fragment[S comparable] = pa.Fragment[S]
)

// Adversaries and schemas (package adversary).
type (
	// Adversary resolves nondeterminism (Definition 2.2).
	Adversary[S comparable] = adversary.Adversary[S]
	// AdversarySchema is a set of adversaries (Definition 2.6).
	AdversarySchema[S comparable] = adversary.Schema[S]
)

// Execution automata and events (packages exec, events).
type (
	// ExecutionAutomaton is H(M, A, alpha) (Definitions 2.3–2.4).
	ExecutionAutomaton[S comparable] = exec.Automaton[S]
	// Monitor classifies executions incrementally (event schemas,
	// Definition 2.5).
	Monitor[S comparable] = exec.Monitor[S]
	// Interval brackets an event probability.
	Interval = exec.Interval
	// Hypothesis is one (action, set, bound) triple of Proposition 4.2.
	Hypothesis[S comparable] = events.Hypothesis[S]
)

// The proof calculus (package core).
type (
	// StateSet is a named set of states.
	StateSet[S comparable] = core.Set[S]
	// Statement is a time-bounded progress statement U --t,p--> U'.
	Statement[S comparable] = core.Statement[S]
	// Proof is a machine-checked derivation tree.
	Proof[S comparable] = core.Proof[S]
	// Universe decides set relations extensionally.
	Universe[S comparable] = core.Universe[S]
	// SchemaInfo names an adversary schema and its execution closure.
	SchemaInfo = core.SchemaInfo
	// RetryLoop is the Section 6.2 expected-time analysis.
	RetryLoop = core.RetryLoop
	// Phase is one phase of a retry loop.
	Phase = core.Phase
	// CheckResult reports a worst-case model check of a statement.
	CheckResult[S comparable] = core.CheckResult[S]
)

// The worst-case checking pipeline (packages sched, mdp).
type (
	// SchedulerModel is a multi-process algorithm to be closed under the
	// digitized Unit-Time adversaries.
	SchedulerModel[S comparable] = sched.Model[S]
	// ProductState augments an algorithm state with window bookkeeping.
	ProductState[S comparable] = sched.State[S]
	// MDP is the finite decision-process form of a product automaton.
	MDP = mdp.MDP
)

// Case studies.
type (
	// DiningAnalysis is the enumerated Lehmann–Rabin instance.
	DiningAnalysis = dining.Analysis
	// ElectionAnalysis is the enumerated leader-election instance.
	ElectionAnalysis = election.Analysis
	// SimPolicy is a dense-time Unit-Time adversary for simulation.
	SimPolicy[S comparable] = sim.Policy[S]
)

// NewDiningAnalysis enumerates the n-process Lehmann–Rabin ring under the
// k-steps-per-window digitized Unit-Time schema (limit caps enumeration;
// 0 means unlimited).
func NewDiningAnalysis(n, k, limit int) (*DiningAnalysis, error) {
	return dining.NewAnalysis(n, k, limit)
}

// NewElectionAnalysis enumerates the n-process leader-election protocol.
func NewElectionAnalysis(n, k, limit int) (*ElectionAnalysis, error) {
	return election.NewAnalysis(n, k, limit)
}

// UnitTimeSchema names the digitized Unit-Time schema for statements.
func UnitTimeSchema(stepsPerWindow int) SchemaInfo {
	return core.UnitTimeSchema(stepsPerWindow)
}

// Premise, Weaken, Compose and friends re-export the inference rules.
var (
	// ErrNotChained et al. are returned by the rules on violated side
	// conditions; see package core.
	ErrNotChained = core.ErrNotChained
)

// ReachEvent is the event schema e_{U',t} of Definition 3.1: a state
// satisfying pred is reached within the deadline.
func ReachEvent[S comparable](pred func(S) bool, deadline Rat) Monitor[S] {
	return events.Reach(pred, deadline)
}

// FirstEvent is the event schema first(a, U) of Section 4.
func FirstEvent[S comparable](action string, pred func(S) bool) Monitor[S] {
	return events.First(action, pred)
}

// EventPair names one (action, state set) component of a next schema.
type EventPair[S comparable] = events.Pair[S]

// NextEvent is the event schema next((a1,U1),...,(an,Un)) of Section 4;
// the actions must be distinct.
func NextEvent[S comparable](pairs ...EventPair[S]) (Monitor[S], error) {
	return events.Next(pairs...)
}

// FirstEnabledAdversary is the memoryless adversary always choosing the
// first enabled step.
func FirstEnabledAdversary[S comparable](m *Automaton[S]) Adversary[S] {
	return adversary.FirstEnabled(m)
}

// AndEvents intersects event schemas; OrEvents unites them; NotEvent
// complements one.
func AndEvents[S comparable](ms ...Monitor[S]) Monitor[S] { return events.And(ms...) }

// OrEvents returns the union event.
func OrEvents[S comparable](ms ...Monitor[S]) Monitor[S] { return events.Or(ms...) }

// NotEvent returns the complement event.
func NotEvent[S comparable](m Monitor[S]) Monitor[S] { return events.Not(m) }

// EventProb computes the exact probability of an event under a specific
// adversary, from the given start state (the paper's P_H[e(H)]).
func EventProb[S comparable](m *Automaton[S], a Adversary[S], start S, mon Monitor[S], maxDepth int) (Interval, error) {
	h := exec.FromState(m, a, start)
	return h.Prob(mon, exec.EvalConfig{MaxDepth: maxDepth})
}

// NewDist builds a distribution from explicit outcomes.
func NewDist[T comparable](outcomes ...Outcome[T]) (Dist[T], error) {
	return prob.NewDist(outcomes...)
}

// MustDist is like NewDist but panics on invalid input.
func MustDist[T comparable](outcomes ...Outcome[T]) Dist[T] {
	return prob.MustDist(outcomes...)
}

// PointDist returns the Dirac distribution on v.
func PointDist[T comparable](v T) Dist[T] { return prob.Point(v) }

// UniformDist returns the uniform distribution over distinct values.
func UniformDist[T comparable](values ...T) (Dist[T], error) {
	return prob.Uniform(values...)
}

// NewStateSet builds a named state set.
func NewStateSet[S comparable](name string, pred func(S) bool) StateSet[S] {
	return core.NewSet(name, pred)
}

// UnionSets returns the union of state sets.
func UnionSets[S comparable](sets ...StateSet[S]) StateSet[S] {
	return core.Union(sets...)
}

// NewUniverse builds a universe from a state list.
func NewUniverse[S comparable](states []S) *Universe[S] {
	return core.NewUniverse(states)
}

// Premise wraps a statement as a derivation leaf.
func Premise[S comparable](st Statement[S], note string) (*Proof[S], error) {
	return core.Premise(st, note)
}

// Weaken applies Proposition 3.2.
func Weaken[S comparable](p *Proof[S], extra StateSet[S]) (*Proof[S], error) {
	return core.Weaken(p, extra)
}

// Compose applies Theorem 3.4.
func Compose[S comparable](u *Universe[S], p1, p2 *Proof[S]) (*Proof[S], error) {
	return core.Compose(u, p1, p2)
}

// ComposeChain folds Compose left to right.
func ComposeChain[S comparable](u *Universe[S], ps ...*Proof[S]) (*Proof[S], error) {
	return core.ComposeChain(u, ps...)
}

// BuildProduct closes a multi-process model under the digitized Unit-Time
// adversaries, returning the product automaton.
func BuildProduct[S comparable](m SchedulerModel[S], stepsPerWindow int) (*Automaton[ProductState[S]], error) {
	return sched.Product(m, sched.Config{StepsPerWindow: stepsPerWindow})
}

// EnumerateMDP converts an automaton into an indexed finite MDP.
func EnumerateMDP[S comparable](m *Automaton[S], limit int) (*MDP, *mdp.Index[S], error) {
	return mdp.FromAutomaton(m, limit)
}

// CheckStatement computes the exact worst-case probability of a statement
// over an enumerated model and compares it with the claimed bound.
func CheckStatement[S comparable](m *MDP, ix *mdp.Index[S], st Statement[S]) (CheckResult[S], error) {
	return core.CheckStatement(m, ix, st)
}
