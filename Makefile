# Convenience targets for the timedpa reproduction.
#
# Check matrix (what `make check` runs and why):
#
#   target      command                          catches
#   ----------  -------------------------------  ----------------------------------
#   build       go build ./...                   compile errors across all packages
#   vet         go vet (+ staticcheck if found)  suspicious constructs, dead code
#   test        go test ./...                    unit + integration + fuzz seed corpus
#   test-race   go test -race ./...              data races in the sharded Monte
#                                                Carlo engine and checkpoint sink
#   bench-smoke go test -bench -benchtime=1x     benchmarks that stopped compiling
#                                                or assert a broken paper bound
#   chaos-smoke go test -race -run TestChaos     one seeded fault/kill/corruption
#                                                storm per chaos package
#   chaos-net-smoke go test -race TestChaosNetworkStorm  one seeded partition/
#                                                corruption network storm against
#                                                real coordinator + workers
#   fabric-smoke go test -run TestFabricSmoke    coordinator + 2 workers over
#                                                loopback reproduce the exact
#                                                single-process estimate
#   trace-smoke simd local -trace-out | simtrace a traced run stopped emitting
#                                                spans or simtrace lost the
#                                                critical path
#   mdp-smoke   lrcheck + dense-vs-CSR test      the on-the-fly explorer or a
#                                                parallel sparse solver diverging
#                                                from the dense reference
#   vuln        govulncheck (if installed)       known-vulnerable dependency use
#
# Performance regressions are gated separately by `make bench-diff`: it
# re-measures the engine benchmarks and diffs them against the committed
# BENCH_sim.json baseline with `benchjson -compare` (exit 1 when any
# metric moves >10% in the bad direction, the headline trials/s drops
# below the absolute TRIALS_FLOOR, or the exact-engine states/s drops
# below STATES_FLOOR). It is not part of `make check`
# because a measurement run takes minutes; run it before committing
# changes to internal/sim, internal/prob or internal/obs.
#
# staticcheck and govulncheck are optional: the targets run them when they
# are on PATH and print a skip notice otherwise, so `make check` works on
# a bare Go toolchain. Longer fuzzing of the engine against adversarial
# policies is split out as `make fuzz` (FUZZTIME=30s by default) because
# it is open-ended; the fuzz seed corpus still runs in every plain
# `go test`.

GO ?= go
FUZZTIME ?= 30s

.PHONY: all build test test-short test-race bench bench-smoke bench-json bench-diff vuln vet fmt fuzz chaos chaos-smoke chaos-net chaos-net-smoke fabric-smoke trace-smoke mdp-smoke check lrcheck experiments

# Benchmarks recorded in BENCH_sim.json and gated by bench-diff: the
# parallel-engine throughput row, the hot-path ablation ladder, the
# metrics-overhead pair, the compiled-vs-uncompiled ablations for the
# election and consensus case studies, and the exact-engine
# explore+solve row.
BENCH_GATE = BenchmarkParallelTrials|BenchmarkTrialAblation|BenchmarkMetricsOverhead|BenchmarkSpanOverhead|BenchmarkElectionTrials|BenchmarkConsensusTrials|BenchmarkExactEngine|BenchmarkBreakerOverhead

# Absolute throughput backstop for the headline engine benchmark,
# enforced by bench-diff on top of the relative 10% gate: the alias
# sampler + packed interning + arena engine with the by-pointer policy
# view measures ~208k trials/s on the reference machine (5.7x the 36,431
# pre-alias baseline recorded in EXPERIMENTS.md); the floor sits below
# that to absorb machine noise while still catching any change that
# gives back the optimisation.
TRIALS_FLOOR = BenchmarkParallelTrials:trials/s=180000

# Absolute backstop for the exact engine: the on-the-fly CSR explorer
# plus the parallel sparse composed-claim check sustains ~43k states/s
# on the dining n=3 k=2 product (reference machine); the floor catches
# a return to per-state map interning or single-threaded sweeps.
STATES_FLOOR = BenchmarkExactEngine:states/s=25000

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# The Monte Carlo engine shards trials across goroutines; the race
# detector runs as part of tier-1 verification.
test-race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of every benchmark: catches benchmarks that no longer
# compile or whose asserted paper bounds broke, without paying for a full
# measurement run.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Machine-readable benchmark artifact: the engine benchmarks named in
# BENCH_GATE (the metrics-overhead pair's equal allocs/op columns prove
# the telemetry hook allocates nothing per trial), post-processed from
# the `go test -json` stream into BENCH_sim.json by cmd/benchjson.
bench-json:
	$(GO) test -run='^$$' -bench='$(BENCH_GATE)' -benchmem -json . \
		| $(GO) run ./cmd/benchjson -o BENCH_sim.json
	@echo "wrote BENCH_sim.json"

# Perf-regression gate: re-measure the gated benchmarks into a temp file
# and diff against the committed baseline; exits non-zero when any
# metric regressed more than 10%.
bench-diff:
	$(GO) test -run='^$$' -bench='$(BENCH_GATE)' -benchmem -json . \
		| $(GO) run ./cmd/benchjson -o /tmp/bench_new.json
	$(GO) run ./cmd/benchjson -compare BENCH_sim.json /tmp/bench_new.json -threshold 0.10 -floor '$(TRIALS_FLOOR)' -floor '$(STATES_FLOOR)'

vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		echo "govulncheck ./..."; govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping"; \
	fi

vet:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go vet still ran)"; \
	fi

fmt:
	gofmt -l .

# Fuzz the engine and the artifact layer. Each -fuzz run is a separate
# invocation (Go allows one fuzz target per run):
#   RunOnceAdversarial  adversarial policies: typed errors, never a crash
#   LoadCheckpointSet   hostile checkpoint bytes: ErrCorruptArtifact, never a panic
#   ReadManifest        hostile manifest JSONL: ErrCorruptManifest, never a panic
fuzz:
	$(GO) test ./internal/sim -run='^$$' -fuzz=FuzzRunOnceAdversarial -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/sim -run='^$$' -fuzz=FuzzLoadCheckpointSet -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/obs -run='^$$' -fuzz=FuzzReadManifest -fuzztime=$(FUZZTIME)

# Chaos packages: seeded fault/kill/corruption storms against the
# artifact layer (in-process, injected filesystem faults) and the real
# CLIs (SIGKILLed subprocesses). Failures print the storm seed; replay
# with CHAOS_SEED=<seed>.
CHAOS_PKGS = ./internal/sim ./cmd/lrsim ./cmd/electcheck ./cmd/simd
CHAOS_STORMS ?= 8

# The full chaos suite: many storms per package, race detector on.
# (Includes the network storm via the TestChaos pattern.)
chaos:
	CHAOS_STORMS=$(CHAOS_STORMS) $(GO) test -race -run 'TestChaos' -v $(CHAOS_PKGS)

# One race-enabled storm per package; cheap enough to gate every check.
# The network storm is skipped here — it has its own smoke target below,
# so each gate stays attributable when one fails.
chaos-smoke:
	CHAOS_STORMS=1 $(GO) test -race -run 'TestChaos' -skip 'TestChaosNetwork' -count=1 $(CHAOS_PKGS)

# Network-adversary chaos: seeded fault-injecting transports (latency,
# drops, 5xx, corruption, truncation, slow-drip, corrupt-on-send) plus a
# mid-job partition, against real coordinator + worker processes with
# hedging, quarantine and breakers on. Failures print the storm seed;
# replay with CHAOS_SEED=<seed>.
chaos-net:
	CHAOS_STORMS=$(CHAOS_STORMS) $(GO) test -race -run 'TestChaosNetworkStorm' -count=1 -v ./cmd/simd

# One race-enabled network storm; gates every check.
chaos-net-smoke:
	CHAOS_STORMS=1 $(GO) test -race -run 'TestChaosNetworkStorm' -count=1 ./cmd/simd

# Distributed-fabric smoke: a coordinator plus two in-process workers
# over loopback HTTP must reproduce the single-process estimate exactly.
# Sub-second, so it gates every check; the SIGKILL recovery and resume
# paths run in the ./cmd/simd process tests and the chaos storms.
fabric-smoke:
	$(GO) test ./internal/fabric -run 'TestFabricSmoke' -count=1 -v

# Tracing smoke: a traced local run must produce a trace that simtrace
# merges into a timeline with a non-empty critical path. Catches the
# span exporter or the timeline analysis silently breaking.
trace-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) run ./cmd/simd local -model dining -n 3 -trials 256 -seed 7 -trace-out "$$tmp/run.trace" >/dev/null && \
	$(GO) run ./cmd/simtrace "$$tmp/run.trace" > "$$tmp/report.txt" && \
	grep -q 'critical path (' "$$tmp/report.txt" && \
	! grep -q 'critical path (0 hops' "$$tmp/report.txt" && \
	echo "trace-smoke: ok (critical path present)"

# Exact-engine smoke: one end-to-end lrcheck run through the on-the-fly
# CSR explorer and the parallel sparse solvers (all five arrows, the
# composed claim, the expected-time sweep), plus the dense-vs-explored
# agreement property on the election products. Seconds, so it gates
# every check; the large-product runs live in the non-short tests and
# EXPERIMENTS.md E22.
mdp-smoke:
	$(GO) run ./cmd/lrcheck -n 3 -k 1 -workers 2 >/dev/null && echo "mdp-smoke: lrcheck ok"
	$(GO) test -run 'TestExploreMatchesDenseElection' -count=1 .

check: build vet test test-race bench-smoke chaos-smoke chaos-net-smoke fabric-smoke trace-smoke mdp-smoke vuln

# The headline reproduction: the paper's table, derivation and bounds.
lrcheck:
	$(GO) run ./cmd/lrcheck -n 3 -k 1 -curve 16

# Regenerate the artifacts recorded in EXPERIMENTS.md.
experiments:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt
