# Convenience targets for the timedpa reproduction.
#
# Check matrix (what `make check` runs and why):
#
#   target      command                          catches
#   ----------  -------------------------------  ----------------------------------
#   build       go build ./...                   compile errors across all packages
#   vet         go vet (+ staticcheck if found)  suspicious constructs, dead code
#   test        go test ./...                    unit + integration + fuzz seed corpus
#   test-race   go test -race ./...              data races in the sharded Monte
#                                                Carlo engine and checkpoint sink
#
# staticcheck is optional: `make vet` runs it when it is on PATH and
# prints a skip notice otherwise, so `make check` works on a bare Go
# toolchain. Longer fuzzing of the engine against adversarial policies is
# split out as `make fuzz` (FUZZTIME=30s by default) because it is
# open-ended; the fuzz seed corpus still runs in every plain `go test`.

GO ?= go
FUZZTIME ?= 30s

.PHONY: all build test test-short test-race bench vet fmt fuzz check lrcheck experiments

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# The Monte Carlo engine shards trials across goroutines; the race
# detector runs as part of tier-1 verification.
test-race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

vet:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go vet still ran)"; \
	fi

fmt:
	gofmt -l .

# Fuzz the simulation engine against adversarial policies (bad process
# indices, desertion, out-of-range branch picks, illegal step times,
# panics): RunOnce must return typed errors, never crash.
fuzz:
	$(GO) test ./internal/sim -run='^$$' -fuzz=FuzzRunOnceAdversarial -fuzztime=$(FUZZTIME)

check: build vet test test-race

# The headline reproduction: the paper's table, derivation and bounds.
lrcheck:
	$(GO) run ./cmd/lrcheck -n 3 -k 1 -curve 16

# Regenerate the artifacts recorded in EXPERIMENTS.md.
experiments:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt
