# Convenience targets for the timedpa reproduction.

GO ?= go

.PHONY: all build test test-short test-race bench vet fmt check lrcheck experiments

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# The Monte Carlo engine shards trials across goroutines; the race
# detector runs as part of tier-1 verification.
test-race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

check: build vet test test-race

# The headline reproduction: the paper's table, derivation and bounds.
lrcheck:
	$(GO) run ./cmd/lrcheck -n 3 -k 1 -curve 16

# Regenerate the artifacts recorded in EXPERIMENTS.md.
experiments:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt
