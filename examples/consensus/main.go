// Third case study: Ben-Or randomized binary consensus under crash
// faults — the kind of problem (unsolvable deterministically in
// asynchrony) that motivates the paper's interest in randomized
// distributed algorithms.
//
// The protocol's state space is unbounded in the round number, so the
// arrow-style claims are validated with the Monte Carlo side of the
// framework: simulate adversarial schedules (including a targeted
// crash-timing attack), check agreement and validity as invariants on
// every run, and support "decided within time t with probability at least
// p" claims via Hoeffding lower confidence bounds — the statistical
// analogue of the exact worst-case checks used for Lehmann–Rabin.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"

	"repro/internal/consensus"
	"repro/internal/prob"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("consensus: ")

	// On SIGINT the sweep stops between trials and reports the evidence
	// gathered so far (with its correspondingly weaker Hoeffding bound);
	// a second SIGINT kills the process outright.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	context.AfterFunc(ctx, stop)

	model := consensus.MustNew(3, 1)
	rng := rand.New(rand.NewSource(42))
	const (
		trials = 1500
		delta  = 0.001
	)

	claims := []consensus.Claim{
		{Inputs: []uint8{1, 1, 1}, Within: 15, Prob: prob.MustParseRat("95/100")},
		{Inputs: []uint8{0, 1, 1}, Within: 25, Prob: prob.MustParseRat("9/10")},
		{Inputs: []uint8{0, 1, 0}, Within: 40, Prob: prob.MustParseRat("9/10")},
	}

	fmt.Printf("Ben-Or consensus, n=3, f=1, %d adversarial runs per claim, δ=%g\n\n", trials, delta)
	fmt.Println("random scheduler with random crash injection:")
	for _, c := range claims {
		ev, err := consensus.TestClaim(ctx, model, c, nil, trials, delta, rng)
		if errors.Is(err, sim.ErrInterrupted) {
			fmt.Printf("  partial (%d/%d trials): %s\n", ev.Estimate.Trials, trials, ev)
			log.Fatal(err)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s\n", ev)
		if ev.AgreementViolations > 0 || ev.ValidityViolations > 0 {
			log.Fatalf("safety violated: %+v", ev)
		}
	}

	fmt.Println("\ntargeted adversary (crash the process completing each round's quorum):")
	mk := func() sim.Policy[consensus.State] {
		return consensus.CrashLastReporter(sim.Random[consensus.State](0))
	}
	for _, c := range claims {
		ev, err := consensus.TestClaim(ctx, model, c, mk, trials, delta, rng)
		if errors.Is(err, sim.ErrInterrupted) {
			fmt.Printf("  partial (%d/%d trials): %s\n", ev.Estimate.Trials, trials, ev)
			log.Fatal(err)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s\n", ev)
	}

	fmt.Println("\nagreement and validity held on every run above (checked per state).")
}
