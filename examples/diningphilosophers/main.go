// The paper's flagship case study end to end: the Lehmann–Rabin
// randomized Dining Philosophers algorithm.
//
// The example (1) checks the five arrow statements of Section 6.2 exactly
// against every digitized Unit-Time adversary at n = 3, (2) rebuilds the
// machine-checked derivation of T --13,1/8--> C, (3) derives the
// expected-time bound of 63 from the retry recurrence and compares it to
// the measured worst case, and (4) cross-validates with dense-time Monte
// Carlo at a ring size far beyond exact reach (n = 12), sharding the
// trials across all CPUs with the parallel engine.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	"repro/internal/dining"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("diningphilosophers: ")

	// ----- exact worst case at n = 3 -----
	a, err := dining.NewAnalysis(3, 1, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact analysis: n=3, %d product states\n\n", a.Index.Len())

	results, err := a.CheckPaperChain()
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range results {
		fmt.Printf("%-17s %s\n", dining.PaperStatementOrigins()[i], r)
	}

	proof, err := a.BuildPaperProof()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nderivation:")
	fmt.Print(proof.Render())

	loop := a.RetryLoop()
	eLoop, err := loop.ExpectedTime()
	if err != nil {
		log.Fatal(err)
	}
	bound, err := a.ExpectedTimeBound()
	if err != nil {
		log.Fatal(err)
	}
	worst, worstState, err := a.WorstExpectedTime()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexpected time: recurrence E[loop] = %v, bound T→C = %v; measured worst case %.4f at %v\n",
		eLoop, bound, worst, worstState)

	// ----- Monte Carlo at n = 12 -----
	// SIGINT drains in-flight work and reports how far the sweep got
	// instead of discarding it; a second SIGINT kills the process.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()
	context.AfterFunc(ctx, stopSignals)

	const (
		n      = 12
		trials = 1000
	)
	model := dining.MustNew(n)
	opts := sim.Options[dining.State]{Start: dining.AllAt(n, dining.F), SetStart: true}
	popts := sim.ParallelOptions{Seed: 7} // all CPUs; same output for any worker count

	mk := func() sim.Policy[dining.State] { return dining.Spiteful() }
	within13, rep13, err := sim.EstimateReachProbParallel[dining.State](ctx, model, mk, dining.InC, 13, trials, opts, popts)
	if err != nil {
		log.Fatalf("%v (%s)", err, rep13)
	}
	timeToC, repT, err := sim.EstimateTimeToTargetParallel[dining.State](ctx, model, mk, dining.InC, trials, opts, popts)
	if err != nil {
		log.Fatalf("%v (%s)", err, repT)
	}
	fmt.Printf("\nMonte Carlo, n=%d, spiteful scheduler, %d runs:\n", n, trials)
	fmt.Printf("  P[some process in C within 13] = %s   (paper guarantees ≥ 0.125)\n", within13.String())
	fmt.Printf("  time to first C                = %s   (paper bounds E by 63)\n", timeToC.String())
}
