// Example 4.1 of the paper, executable: why independence of coin flips
// must be handled with care under adaptive adversaries, and how the
// first/next event schemas of Section 4 (with Proposition 4.2) make the
// informal argument rigorous.
//
// Two processes P and Q each flip one fair coin; the adversary decides who
// flips and when, with complete knowledge of past outcomes. The informal
// claim "P flips heads and Q flips tails with probability 1/4" is
// ambiguous: the spiteful adversary schedules Q only after P shows heads,
// driving the *conditional* probability (given both flipped) to 1/2. The
// formal event first(flipP, heads) ∩ first(flipQ, tails) is immune: its
// probability stays at least 1/4 against every adversary, exactly as
// Proposition 4.2(1) guarantees.
package main

import (
	"fmt"
	"log"

	"repro/internal/adversary"
	"repro/internal/events"
	"repro/internal/exec"
	"repro/internal/pa"
	"repro/internal/prob"
)

// coins tracks both processes' coins: "?" (not flipped), "H" or "T".
type coins struct {
	P, Q string
}

func system() *pa.Automaton[coins] {
	return &pa.Automaton[coins]{
		Name:  "two-coins",
		Start: []coins{{P: "?", Q: "?"}},
		Steps: func(s coins) []pa.Step[coins] {
			var steps []pa.Step[coins]
			if s.P == "?" {
				steps = append(steps, pa.Step[coins]{
					Action: "flipP",
					Next:   prob.MustUniform(coins{P: "H", Q: s.Q}, coins{P: "T", Q: s.Q}),
				})
			}
			if s.Q == "?" {
				steps = append(steps, pa.Step[coins]{
					Action: "flipQ",
					Next:   prob.MustUniform(coins{P: s.P, Q: "H"}, coins{P: s.P, Q: "T"}),
				})
			}
			return steps
		},
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("independence: ")

	m := system()

	// The hypothesis of Proposition 4.2: every flipP step gives heads
	// probability >= 1/2, every flipQ step gives tails probability >= 1/2.
	hyps := []events.Hypothesis[coins]{
		{Action: "flipP", Pred: func(s coins) bool { return s.P == "H" }, MinProb: prob.Half()},
		{Action: "flipQ", Pred: func(s coins) bool { return s.Q == "T" }, MinProb: prob.Half()},
	}
	if err := events.CheckProp42Hypothesis(m, 0, hyps...); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Proposition 4.2 hypothesis verified over all reachable steps")
	fmt.Printf("guaranteed bounds: P[first ∩ first] ≥ %v, P[next] ≥ %v\n\n",
		events.Prop42FirstBound(hyps...), events.Prop42NextBound(hyps...))

	// Adversaries, from benign to the Example 4.1 attacker.
	schedulers := []struct {
		name string
		adv  adversary.Adversary[coins]
	}{
		{name: "P then Q (oblivious)", adv: adversary.FirstEnabled(m)},
		{name: "Q only if P heads (adaptive)", adv: adversary.HistoryDependent(m,
			func(frag *pa.Fragment[coins], enabled []pa.Step[coins]) int {
				s := frag.Last()
				switch {
				case s.P == "?":
					return indexOf(enabled, "flipP")
				case s.P == "H" && s.Q == "?":
					return indexOf(enabled, "flipQ")
				default:
					return -1 // halt: Q never flips after P shows tails
				}
			})},
		{name: "Q only if P tails (adaptive)", adv: adversary.HistoryDependent(m,
			func(frag *pa.Fragment[coins], enabled []pa.Step[coins]) int {
				s := frag.Last()
				switch {
				case s.P == "?":
					return indexOf(enabled, "flipP")
				case s.P == "T" && s.Q == "?":
					return indexOf(enabled, "flipQ")
				default:
					return -1
				}
			})},
	}

	firstEvent := events.FirstConjunction(hyps...)
	nextEvent, err := events.NextOf(hyps...)
	if err != nil {
		log.Fatal(err)
	}
	bothFlipped := events.And(events.Occurs[coins]("flipP"), events.Occurs[coins]("flipQ"))

	fmt.Printf("%-30s %-14s %-10s %-22s\n", "adversary", "first∩first", "next", "P[H,T | both flipped]")
	for _, sched := range schedulers {
		h := exec.FromState(m, sched.adv, coins{P: "?", Q: "?"})
		pFirst := mustProb(h, firstEvent)
		pNext := mustProb(h, nextEvent)
		joint := mustProb(h, events.And(bothFlipped, firstEvent))
		both := mustProb(h, bothFlipped)
		cond := "undefined"
		if !both.IsZero() {
			cond = joint.Div(both).String()
		}
		fmt.Printf("%-30s %-14s %-10s %-22s\n", sched.name, pFirst, pNext, cond)
	}
	fmt.Println("\nthe formal events never drop below their Proposition 4.2 bounds;")
	fmt.Println("the conditional reading swings between 0 and 1/2 — the ambiguity the paper warns about")
}

func indexOf(steps []pa.Step[coins], action string) int {
	for i, s := range steps {
		if s.Action == action {
			return i
		}
	}
	return -1
}

func mustProb(h *exec.Automaton[coins], mon exec.Monitor[coins]) prob.Rat {
	iv, err := h.Prob(mon, exec.EvalConfig{})
	if err != nil {
		log.Fatal(err)
	}
	if !iv.Exact() {
		log.Fatalf("probability not exact: %v", iv)
	}
	return iv.Lo
}
