// Quickstart: model a tiny randomized system as a probabilistic automaton,
// state a time-bounded progress claim U --t,p--> U' about it, check the
// claim exactly against every adversary, and compose it with a second
// claim using the paper's Theorem 3.4 — the whole method of "Proving Time
// Bounds for Randomized Distributed Algorithms" (Lynch, Saias, Segala,
// PODC 1994) on one page.
//
// The system: a process flips a fair coin once per time unit until it gets
// heads ("win"), then needs one more time unit to announce ("done").
package main

import (
	"fmt"
	"log"

	timedpa "repro"
)

// state is "flipping", "win" or "done".
type state string

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")

	// A probabilistic automaton (Definition 2.1 of the paper): each tick
	// either wins the flip or retries; a win is announced one tick later.
	coin := &timedpa.Automaton[state]{
		Name:  "coin-until-heads",
		Start: []state{"flipping"},
		Steps: func(s state) []timedpa.Step[state] {
			switch s {
			case "flipping":
				return []timedpa.Step[state]{{
					Action: "flip",
					Next: timedpa.MustDist(
						timedpa.Outcome[state]{Value: "win", Prob: timedpa.Half()},
						timedpa.Outcome[state]{Value: "flipping", Prob: timedpa.Half()},
					),
				}}
			case "win":
				return []timedpa.Step[state]{{
					Action: "announce",
					Next:   timedpa.PointDist(state("done")),
				}}
			default:
				return nil
			}
		},
		Duration: func(action string) timedpa.Rat {
			// Every action takes one time unit (the patient construction
			// with unit delays).
			return timedpa.One()
		},
	}

	// Enumerate the model: here nondeterminism is trivial (one choice per
	// state), so "every adversary" is just the one schedule — but the API
	// is the same one the Lehmann–Rabin analysis uses over thousands of
	// genuinely adversarial choices.
	mdpModel, index, err := timedpa.EnumerateMDP(coin, 0)
	if err != nil {
		log.Fatal(err)
	}

	schema := timedpa.UnitTimeSchema(1)
	flipping := timedpa.NewStateSet("Flipping", func(s state) bool { return s == "flipping" })
	win := timedpa.NewStateSet("Win", func(s state) bool { return s == "win" })
	done := timedpa.NewStateSet("Done", func(s state) bool { return s == "done" })

	// Claim 1: from Flipping, within time 3, probability at least 7/8 of
	// reaching Win (three coin flips).
	claim1 := timedpa.Statement[state]{
		From: flipping, To: win,
		Time: timedpa.NewRat(3, 1), Prob: timedpa.MustParseRat("7/8"),
		Schema: schema,
	}
	res1, err := timedpa.CheckStatement(mdpModel, index, claim1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res1)

	// Claim 2: from Win, within time 1, Done with certainty.
	claim2 := timedpa.Statement[state]{
		From: win, To: done,
		Time: timedpa.One(), Prob: timedpa.One(),
		Schema: schema,
	}
	res2, err := timedpa.CheckStatement(mdpModel, index, claim2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res2)

	// Compose with Theorem 3.4: Flipping --4,7/8--> Done.
	states, err := coin.Reachable(0)
	if err != nil {
		log.Fatal(err)
	}
	universe := timedpa.NewUniverse(states)
	p1, err := timedpa.Premise(claim1, "checked above")
	if err != nil {
		log.Fatal(err)
	}
	p2, err := timedpa.Premise(claim2, "checked above")
	if err != nil {
		log.Fatal(err)
	}
	composed, err := timedpa.Compose(universe, p1, p2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(composed.Render())

	// The composed claim also holds directly (and is in fact loose: the
	// direct worst case is 7/8 at horizon 4 too, since announcing costs a
	// deterministic tick).
	direct, err := timedpa.CheckStatement(mdpModel, index, composed.Stmt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("direct check of the composed claim:", direct)
}
