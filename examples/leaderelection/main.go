// Second case study: the proof method applied to a different randomized
// algorithm — symmetric leader election by repeated coin flipping —
// answering the paper's call (Section 7) to exercise the technique beyond
// Lehmann–Rabin.
//
// For each level k (k active processes) the round rule gives the arrow
// Fresh_k --2, 1-2^(1-k)--> Elected ∪ Fresh_{<k}; the example checks every
// level exactly against all digitized Unit-Time adversaries, composes the
// levels with Proposition 3.2 + Theorem 3.4, and bounds the expected
// election time with per-level retry loops.
package main

import (
	"fmt"
	"log"

	"repro/internal/election"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("leaderelection: ")

	for _, n := range []int{3, 4, 5} {
		a, err := election.NewAnalysis(n, 1, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("n=%d: %d product states\n", n, a.Index.Len())

		results, err := a.CheckLevels()
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range results {
			fmt.Printf("  %s\n", r)
		}

		proof, err := a.BuildProof()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  composed: %s\n", proof.Stmt)

		bound, err := a.ExpectedTimeBound()
		if err != nil {
			log.Fatal(err)
		}
		worst, err := a.WorstExpectedTime()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  expected election time: bound %v ≈ %.3f, measured worst case %.3f\n\n",
			bound, bound.Float64(), worst)
	}

	// The full derivation tree for n = 4.
	a, err := election.NewAnalysis(4, 1, 0)
	if err != nil {
		log.Fatal(err)
	}
	proof, err := a.BuildProof()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("derivation at n=4:")
	fmt.Print(proof.Render())
}
