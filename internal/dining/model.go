// Package dining implements the Lehmann–Rabin randomized Dining
// Philosophers algorithm exactly as formalized in Sections 5 and 6.1 of
// Lynch, Saias and Segala (PODC 1994).
//
// n processes sit on a ring with n resources interspersed: resource i lies
// between process i and process i+1 (indices mod n), so process i's right
// resource is Res_i and its left resource is Res_{i-1}. Each process runs
// the loop of Figure 1 of the paper: flip a fair coin for a side, wait for
// the resource on that side, then check the other side once — on success
// enter the critical region, on failure put the first resource back and
// flip again.
//
// A process state is the pair (pc, u) of Section 6.1, written here with
// the paper's letters: R (remainder), F (ready to flip), W (waiting for
// the first resource), S (checking the second resource), D (dropping the
// first resource), P (pre-critical), C (critical), EF/ES/ER (exit,
// dropping first and second resources, then returning to the remainder
// region). The direction u (the paper's left/right arrow) is meaningful
// only in W, S, D (which side was chosen first) and ES (which side is
// still held); elsewhere it is canonicalized, which shrinks the reachable
// space without losing information (Lemma 6.1: the shared variables are a
// function of the local states).
package dining

import (
	"fmt"
	"strings"

	"repro/internal/pa"
	"repro/internal/prob"
	"repro/internal/sched"
)

// PC is a program counter value of Figure 1 / the table of Section 6.1.
type PC uint8

// Program counter values, in the paper's order.
const (
	R  PC = iota // remainder region
	F            // ready to flip
	W            // waiting for first resource
	S            // checking second resource
	D            // dropping first resource
	P            // pre-critical region
	C            // critical region
	EF           // exit: dropping first resource
	ES           // exit: dropping second resource
	ER           // exit: about to return to remainder
)

// String returns the paper's name for the program counter.
func (pc PC) String() string {
	switch pc {
	case R:
		return "R"
	case F:
		return "F"
	case W:
		return "W"
	case S:
		return "S"
	case D:
		return "D"
	case P:
		return "P"
	case C:
		return "C"
	case EF:
		return "EF"
	case ES:
		return "ES"
	case ER:
		return "ER"
	default:
		return fmt.Sprintf("PC(%d)", uint8(pc))
	}
}

// Dir is the value of the local variable u: the side of the first (in ES,
// the still-held) resource.
type Dir uint8

// Directions. None is the canonical value at program counters where u is
// irrelevant.
const (
	None Dir = iota
	Left
	Right
)

// Opp complements a direction, the paper's opp operator.
func (d Dir) Opp() Dir {
	switch d {
	case Left:
		return Right
	case Right:
		return Left
	default:
		return None
	}
}

// String renders the direction as the paper's arrow.
func (d Dir) String() string {
	switch d {
	case Left:
		return "←"
	case Right:
		return "→"
	default:
		return ""
	}
}

// usesDir reports whether u is meaningful at the program counter.
func usesDir(pc PC) bool {
	return pc == W || pc == S || pc == D || pc == ES
}

// Local is one process's local state X_i = (pc_i, u_i).
type Local struct {
	PC PC
	U  Dir
}

// String renders the local state in the paper's notation, e.g. "W←".
func (l Local) String() string { return l.PC.String() + l.U.String() }

// State is a global state of the ring: the vector of local states. The
// shared resource variables are derived (Lemma 6.1) and therefore not
// stored. State is comparable and compact: one byte per process.
type State struct {
	n      uint8
	locals [sched.MaxProcs]uint8
}

func packLocal(l Local) uint8 { return uint8(l.PC) | uint8(l.U)<<4 }
func unpackLocal(b uint8) Local {
	return Local{PC: PC(b & 0xF), U: Dir(b >> 4)}
}

// NewState builds a state from explicit local states; directions are
// canonicalized at program counters where u is irrelevant.
func NewState(locals ...Local) (State, error) {
	if len(locals) < 2 || len(locals) > sched.MaxProcs {
		return State{}, fmt.Errorf("dining: %d processes outside 2..%d", len(locals), sched.MaxProcs)
	}
	var s State
	s.n = uint8(len(locals))
	for i, l := range locals {
		if !usesDir(l.PC) {
			l.U = None
		} else if l.U == None {
			return State{}, fmt.Errorf("dining: process %d at %v needs a direction", i, l.PC)
		}
		s.locals[i] = packLocal(l)
	}
	return s, nil
}

// MustState is like NewState but panics on invalid input; for tests and
// examples.
func MustState(locals ...Local) State {
	s, err := NewState(locals...)
	if err != nil {
		panic(err)
	}
	return s
}

// N returns the ring size.
func (s State) N() int { return int(s.n) }

// Local returns X_i.
func (s State) Local(i int) Local { return unpackLocal(s.locals[s.wrap(i)]) }

// wrap reduces an index modulo the ring size, accepting negatives.
func (s State) wrap(i int) int {
	n := int(s.n)
	i %= n
	if i < 0 {
		i += n
	}
	return i
}

// with returns a copy of s with X_i replaced (canonicalizing u).
func (s State) with(i int, l Local) State {
	if !usesDir(l.PC) {
		l.U = None
	}
	s.locals[s.wrap(i)] = packLocal(l)
	return s
}

// String renders the global state in the paper's compact notation, e.g.
// "[W← S→ F R]".
func (s State) String() string {
	parts := make([]string, s.N())
	for i := range parts {
		parts[i] = s.Local(i).String()
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// holdsRight reports whether a process in local state l holds its right
// resource; holdsLeft, its left resource. In P, C and EF both are held
// (Lemma 6.1).
func holdsRight(l Local) bool {
	switch l.PC {
	case P, C, EF:
		return true
	case S, D, ES:
		return l.U == Right
	default:
		return false
	}
}

func holdsLeft(l Local) bool {
	switch l.PC {
	case P, C, EF:
		return true
	case S, D, ES:
		return l.U == Left
	default:
		return false
	}
}

// ResTaken returns the derived value of the shared variable Res_j: taken
// iff process j holds its right resource or process j+1 holds its left
// resource (Lemma 6.1).
func (s State) ResTaken(j int) bool {
	return holdsRight(s.Local(j)) || holdsLeft(s.Local(j+1))
}

// resOnSide returns the index of process i's resource on side d.
func (s State) resOnSide(i int, d Dir) int {
	if d == Right {
		return s.wrap(i)
	}
	return s.wrap(i - 1)
}

// InvariantHolds checks the mutual-exclusion invariant of Lemma 6.1: no
// resource is held from both sides at once.
func (s State) InvariantHolds() bool {
	for j := 0; j < s.N(); j++ {
		if holdsRight(s.Local(j)) && holdsLeft(s.Local(j+1)) {
			return false
		}
	}
	return true
}

// Model is the Lehmann–Rabin ring, implementing sched.Model so that
// package sched can close it under the digitized Unit-Time adversaries.
type Model struct {
	n int
}

var _ sched.Model[State] = (*Model)(nil)

// New returns the n-process Lehmann–Rabin model, n in 2..sched.MaxProcs.
func New(n int) (*Model, error) {
	if n < 2 || n > sched.MaxProcs {
		return nil, fmt.Errorf("dining: ring size %d outside 2..%d", n, sched.MaxProcs)
	}
	return &Model{n: n}, nil
}

// MustNew is like New but panics on invalid input.
func MustNew(n int) *Model {
	m, err := New(n)
	if err != nil {
		panic(err)
	}
	return m
}

// Name implements sched.Model.
func (m *Model) Name() string { return fmt.Sprintf("lehmann-rabin(n=%d)", m.n) }

// NumProcs implements sched.Model.
func (m *Model) NumProcs() int { return m.n }

// Start implements sched.Model: all processes in the remainder region.
func (m *Model) Start() []State {
	locals := make([]Local, m.n)
	for i := range locals {
		locals[i] = Local{PC: R}
	}
	return []State{MustState(locals...)}
}

// Action names, one namespace per process: "flip_3" etc. Moves sits on
// the simulator's hot path, so the small fixed grid of names is built
// once up front — a Sprintf per move query showed up as a top allocator
// in the Monte Carlo engine's profile.
var actionTable = func() map[string][]string {
	kinds := []string{"flip", "wait", "second", "drop", "crit", "dropf", "drops", "rem", "try", "exit"}
	t := make(map[string][]string, len(kinds))
	for _, k := range kinds {
		names := make([]string, sched.MaxProcs)
		for i := range names {
			names[i] = fmt.Sprintf("%s_%d", k, i)
		}
		t[k] = names
	}
	return t
}()

func actionName(kind string, i int) string {
	if names, ok := actionTable[kind]; ok && i >= 0 && i < len(names) {
		return names[i]
	}
	return fmt.Sprintf("%s_%d", kind, i)
}

// FlipAction returns the name of process i's coin-flip action, for use in
// first/next event schemas (Section 4 of the paper).
func FlipAction(i int) string { return actionName("flip", i) }

// Moves implements sched.Model: the algorithm steps of process i, which
// the unit-time constraint forces the adversary to schedule. A process in
// R or C has none (try and exit are user moves).
func (m *Model) Moves(s State, i int) []pa.Step[State] {
	i = s.wrap(i)
	l := s.Local(i)
	switch l.PC {
	case F:
		// Line 1 of Figure 1: u_i <- random, then wait for that side.
		return []pa.Step[State]{{
			Action: FlipAction(i),
			Next: prob.MustUniform(
				s.with(i, Local{PC: W, U: Left}),
				s.with(i, Local{PC: W, U: Right}),
			),
		}}
	case W:
		// Line 2: take the first resource if free, else busy-wait.
		next := s
		if !s.ResTaken(s.resOnSide(i, l.U)) {
			next = s.with(i, Local{PC: S, U: l.U})
		}
		return []pa.Step[State]{{Action: actionName("wait", i), Next: prob.Point(next)}}
	case S:
		// Line 3: check the second resource once.
		var next State
		if !s.ResTaken(s.resOnSide(i, l.U.Opp())) {
			next = s.with(i, Local{PC: P})
		} else {
			next = s.with(i, Local{PC: D, U: l.U})
		}
		return []pa.Step[State]{{Action: actionName("second", i), Next: prob.Point(next)}}
	case D:
		// Line 4: put the first resource down and go flip again.
		return []pa.Step[State]{{
			Action: actionName("drop", i),
			Next:   prob.Point(s.with(i, Local{PC: F})),
		}}
	case P:
		// Line 5: announce the critical region.
		return []pa.Step[State]{{
			Action: actionName("crit", i),
			Next:   prob.Point(s.with(i, Local{PC: C})),
		}}
	case EF:
		// Line 7: nondeterministically choose which resource to put down
		// first; u records the one still held.
		return []pa.Step[State]{
			{
				Action: actionName("dropf", i),
				Next:   prob.Point(s.with(i, Local{PC: ES, U: Right})),
			},
			{
				Action: actionName("dropf", i),
				Next:   prob.Point(s.with(i, Local{PC: ES, U: Left})),
			},
		}
	case ES:
		// Line 8: put down the remaining resource.
		return []pa.Step[State]{{
			Action: actionName("drops", i),
			Next:   prob.Point(s.with(i, Local{PC: ER})),
		}}
	case ER:
		// Line 9: report back to the user.
		return []pa.Step[State]{{
			Action: actionName("rem", i),
			Next:   prob.Point(s.with(i, Local{PC: R})),
		}}
	default: // R, C
		return nil
	}
}

// UserMoves implements sched.Model: try and exit are controlled by the
// user (hence, in the worst case, by the adversary) and carry no timing
// obligation.
func (m *Model) UserMoves(s State, i int) []pa.Step[State] {
	i = s.wrap(i)
	switch s.Local(i).PC {
	case R:
		return []pa.Step[State]{{
			Action: actionName("try", i),
			Next:   prob.Point(s.with(i, Local{PC: F})),
		}}
	case C:
		return []pa.Step[State]{{
			Action: actionName("exit", i),
			Next:   prob.Point(s.with(i, Local{PC: EF})),
		}}
	default:
		return nil
	}
}
