package dining

// This file wires the Lehmann–Rabin model into the proof method: it
// enumerates the digitized scheduler product, defines the paper's state
// sets over product states, states the five arrows of Section 6.2, checks
// each against the model by exact worst-case value iteration, and rebuilds
// the paper's derivation of T --13,1/8--> C and the expected-time bound of
// 63 as machine-checked artifacts.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mdp"
	"repro/internal/prob"
	"repro/internal/sched"
	"repro/internal/sim"
)

// PState is a scheduler-product state of the Lehmann–Rabin ring.
type PState = sched.State[State]

// Analysis is an enumerated Lehmann–Rabin instance ready for checking.
type Analysis struct {
	// N is the ring size; K the steps-per-window digitization bound.
	N, K int
	// Model is the algorithm; Auto the scheduler product.
	Model *Model
	// MDP and Index hold the enumerated product.
	MDP   *mdp.MDP
	Index *mdp.Index[PState]
	// Universe is the reachable product space, for subset side conditions.
	Universe *core.Universe[PState]
	// Schema names the digitized Unit-Time schema.
	Schema core.SchemaInfo

	sets map[string]core.Set[PState]
}

// NewAnalysis enumerates the n-process ring under the k-steps-per-window
// digitization with the dense enumerator. limit bounds the enumeration
// (<= 0 for unlimited). For large rings use NewAnalysisOpts, which
// explores on the fly into the sparse form.
func NewAnalysis(n, k, limit int) (*Analysis, error) {
	model, err := New(n)
	if err != nil {
		return nil, err
	}
	auto, err := sched.Product[State](model, sched.Config{StepsPerWindow: k})
	if err != nil {
		return nil, err
	}
	m, ix, err := mdp.FromAutomaton(auto, limit)
	if err != nil {
		return nil, fmt.Errorf("dining: enumerating product: %w", err)
	}
	return newAnalysis(n, k, model, m, ix), nil
}

// Opts configures on-the-fly enumeration of the product space.
type Opts struct {
	// Limit bounds the number of product states (<= 0 for unlimited).
	Limit int
	// Workers sets the exploration and solver parallelism: 0 means one
	// worker per CPU. Any value yields identical results.
	Workers int
	// MemBudget bounds the explorer's resident bytes (<= 0 for
	// unlimited); exceeding it fails with *mdp.BudgetError.
	MemBudget int64
}

// NewAnalysisOpts is NewAnalysis built by the on-the-fly CSR explorer:
// the model is compiled so exploration shares the Monte Carlo engine's
// sharded transition cache, product states are interned by their packed
// fingerprints, and the resulting MDP carries only the sparse form, with
// every solver running opts.Workers wide. The state numbering — and
// therefore every analysis result — is identical to NewAnalysis.
func NewAnalysisOpts(n, k int, opts Opts) (*Analysis, error) {
	model, err := New(n)
	if err != nil {
		return nil, err
	}
	compiled := sim.Compile[State](model)
	auto, err := sched.Product[State](compiled, sched.Config{StepsPerWindow: k})
	if err != nil {
		return nil, err
	}
	eo := mdp.ExploreOptions{Workers: opts.Workers, MemBudget: opts.MemBudget, Limit: opts.Limit}
	var (
		m  *mdp.MDP
		ix *mdp.Index[PState]
	)
	if pack, ok := sched.ProductPacker[State](model); ok {
		m, ix, err = mdp.ExplorePacked(auto, pack, eo)
	} else {
		m, ix, err = mdp.Explore(auto, eo)
	}
	if err != nil {
		return nil, fmt.Errorf("dining: exploring product: %w", err)
	}
	return newAnalysis(n, k, model, m, ix), nil
}

func newAnalysis(n, k int, model *Model, m *mdp.MDP, ix *mdp.Index[PState]) *Analysis {
	states := make([]PState, ix.Len())
	for i := range states {
		states[i] = ix.State(i)
	}

	a := &Analysis{
		N:        n,
		K:        k,
		Model:    model,
		MDP:      m,
		Index:    ix,
		Universe: core.NewUniverse(states),
		Schema:   core.UnitTimeSchema(k),
	}
	a.sets = map[string]core.Set[PState]{
		"T":  a.set("T", InT),
		"C":  a.set("C", InC),
		"RT": a.set("RT", InRT),
		"F":  a.set("F", InF),
		"G":  a.set("G", InG),
		"P":  a.set("P", InP),
	}
	return a
}

func (a *Analysis) set(name string, pred func(State) bool) core.Set[PState] {
	return core.NewSet(name, sched.LiftPred(pred))
}

// Sets returns the registry of the paper's named state sets, lifted to
// product states.
func (a *Analysis) Sets() map[string]core.Set[PState] {
	out := make(map[string]core.Set[PState], len(a.sets))
	for k, v := range a.sets {
		out[k] = v
	}
	return out
}

// Set returns a named set from the registry.
func (a *Analysis) Set(name string) core.Set[PState] { return a.sets[name] }

// stmt builds a statement from registry names and string bounds.
func (a *Analysis) stmt(fromExpr, toExpr, time, pr string) core.Statement[PState] {
	from, err := core.ParseSetExpr(a.sets, fromExpr)
	if err != nil {
		panic(err) // registry is static; a failure is a programming error
	}
	to, err := core.ParseSetExpr(a.sets, toExpr)
	if err != nil {
		panic(err)
	}
	return core.Statement[PState]{
		From:   from,
		To:     to,
		Time:   prob.MustParseRat(time),
		Prob:   prob.MustParseRat(pr),
		Schema: a.Schema,
	}
}

// PaperStatements returns the five arrows of Section 6.2 in proof order:
//
//	T  --2,1-->   RT∪C   (Proposition A.3)
//	RT --3,1-->   F∪G∪P  (Proposition A.15)
//	F  --2,1/2--> G∪P    (Proposition A.14)
//	G  --5,1/4--> P      (Proposition A.11)
//	P  --1,1-->   C      (Proposition A.1)
func (a *Analysis) PaperStatements() []core.Statement[PState] {
	return []core.Statement[PState]{
		a.stmt("T", "RT+C", "2", "1"),
		a.stmt("RT", "F+G+P", "3", "1"),
		a.stmt("F", "G+P", "2", "1/2"),
		a.stmt("G", "P", "5", "1/4"),
		a.stmt("P", "C", "1", "1"),
	}
}

// PaperStatementOrigins names the appendix proposition behind each
// statement of PaperStatements, index-aligned.
func PaperStatementOrigins() []string {
	return []string{
		"Proposition A.3",
		"Proposition A.15",
		"Proposition A.14",
		"Proposition A.11",
		"Proposition A.1",
	}
}

// ComposedStatement returns the headline claim T --13,1/8--> C.
func (a *Analysis) ComposedStatement() core.Statement[PState] {
	return a.stmt("T", "C", "13", "1/8")
}

// CheckPaperChain checks the five arrows against the enumerated model and
// returns the results in proof order.
func (a *Analysis) CheckPaperChain() ([]core.CheckResult[PState], error) {
	return core.CheckAll(a.MDP, a.Index, a.PaperStatements()...)
}

// BuildPaperProof reproduces the Section 6.2 derivation: each premise is
// checked against the model, weakened per Proposition 3.2 so the chain
// connects, and composed by Theorem 3.4 into T --13,1/8--> C.
func (a *Analysis) BuildPaperProof() (*core.Proof[PState], error) {
	stmts := a.PaperStatements()
	origins := PaperStatementOrigins()

	premises := make([]*core.Proof[PState], len(stmts))
	for i, st := range stmts {
		p, _, err := core.CheckedPremise(a.MDP, a.Index, st, origins[i])
		if err != nil {
			return nil, err
		}
		premises[i] = p
	}

	cSet := a.Set("C")
	pSet := a.Set("P")
	gSet := a.Set("G")

	// Weaken each interior arrow so that consecutive targets and sources
	// match: the paper's implicit applications of Proposition 3.2.
	w2, err := core.Weaken(premises[1], cSet) // RT∪C --3,1--> F∪G∪P∪C
	if err != nil {
		return nil, err
	}
	w3, err := core.Weaken(premises[2], core.Union(gSet, pSet, cSet)) // F∪G∪P∪C --2,1/2--> (G∪P)∪(G∪P∪C)
	if err != nil {
		return nil, err
	}
	w3, err = core.RenameTo(a.Universe, w3, core.Union(gSet, pSet, cSet)) // ... --> G∪P∪C
	if err != nil {
		return nil, err
	}
	w4, err := core.Weaken(premises[3], core.Union(pSet, cSet)) // G∪P∪C --5,1/4--> P∪(P∪C)
	if err != nil {
		return nil, err
	}
	w4, err = core.RenameTo(a.Universe, w4, core.Union(pSet, cSet)) // ... --> P∪C
	if err != nil {
		return nil, err
	}
	w5, err := core.Weaken(premises[4], cSet) // P∪C --1,1--> C∪C
	if err != nil {
		return nil, err
	}
	w5, err = core.RenameTo(a.Universe, w5, cSet) // ... --> C
	if err != nil {
		return nil, err
	}

	return core.ComposeChain(a.Universe, premises[0], w2, w3, w4, w5)
}

// RetryLoop returns the Section 6.2 expected-time loop: the three
// probabilistic phases from RT, whose failure returns the state to RT.
func (a *Analysis) RetryLoop() core.RetryLoop {
	stmts := a.PaperStatements()
	return core.RetryLoop{Phases: core.PhasesFromStatements(stmts[1], stmts[2], stmts[3])}
}

// ExpectedTimeBound returns the paper's derived bound on the expected time
// from T to C: entry arrow (2) + E[loop] (60) + exit arrow (1) = 63.
func (a *Analysis) ExpectedTimeBound() (prob.Rat, error) {
	return a.RetryLoop().ExpectedTimeBound(prob.FromInt(2), prob.One())
}

// WorstExpectedTime computes, by value iteration on the product MDP, the
// supremum over digitized adversaries of the expected time until some
// process is in C, from the worst reachable state in T. It is the measured
// counterpart of ExpectedTimeBound.
func (a *Analysis) WorstExpectedTime() (float64, PState, error) {
	target := a.Index.Mask(sched.LiftPred(InC))
	values, err := a.MDP.MaxExpectedTicks(target, mdp.VIConfig{})
	if err != nil {
		return 0, PState{}, err
	}
	worst := -1.0
	var worstState PState
	inT := sched.LiftPred(InT)
	for i := 0; i < a.Index.Len(); i++ {
		s := a.Index.State(i)
		if !inT(s) {
			continue
		}
		if values[i] > worst {
			worst = values[i]
			worstState = s
		}
	}
	if worst < 0 {
		return 0, PState{}, core.ErrEmptyFrom
	}
	return worst, worstState, nil
}

// BestExpectedTime computes the infimum over digitized adversaries of the
// expected time until some process is in C, from the worst T state for
// that metric — the cooperative-scheduler counterpart of
// WorstExpectedTime, bounding the spread any scheduler can induce.
func (a *Analysis) BestExpectedTime() (float64, error) {
	target := a.Index.Mask(sched.LiftPred(InC))
	values, err := a.MDP.MinExpectedTicks(target, mdp.VIConfig{})
	if err != nil {
		return 0, err
	}
	worst := -1.0
	inT := sched.LiftPred(InT)
	for i := 0; i < a.Index.Len(); i++ {
		if !inT(a.Index.State(i)) {
			continue
		}
		if values[i] > worst {
			worst = values[i]
		}
	}
	if worst < 0 {
		return 0, core.ErrEmptyFrom
	}
	return worst, nil
}

// ProgressCurve computes the exact worst-case probability of reaching C
// from the worst T state, for every horizon up to maxHorizon — the
// quantitative landscape around the paper's (13, 1/8) point, and the
// lower-bound information Section 7 asks for: horizons where the curve is
// below 1/8 certify that the claim fails there against the digitized
// adversaries.
func (a *Analysis) ProgressCurve(maxHorizon int) ([]core.CurvePoint, error) {
	return core.WorstCaseCurve(a.MDP, a.Index, a.Set("T"), a.Set("C"), maxHorizon)
}

// WorstWitness extracts a most-damning schedule for the composed claim:
// the adversary choices and coin outcomes that minimize the probability
// of reaching C within the horizon, starting from the worst T state.
func (a *Analysis) WorstWitness(horizon int) ([]string, error) {
	st := a.ComposedStatement()
	r, err := core.CheckStatement(a.MDP, a.Index, st)
	if err != nil {
		return nil, err
	}
	fromID, ok := a.Index.ID(r.WorstState)
	if !ok {
		return nil, fmt.Errorf("dining: worst state not indexed")
	}
	target := a.Index.Mask(sched.LiftPred(InC))
	steps, err := a.MDP.WorstWitness(target, horizon, fromID, 0)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(steps)+1)
	out = append(out, fmt.Sprintf("start %v (worst-case P = %v)", r.WorstState.Base, r.WorstProb))
	t := 0
	for _, ws := range steps {
		if ws.Action == sched.TickAction {
			t++
		}
		out = append(out, fmt.Sprintf("t<=%-2d %-9s p=%-4v -> %v",
			t, ws.Action, ws.BranchProb, a.Index.State(ws.Next).Base))
	}
	return out, nil
}

// QualitativeProgress runs the Zuck–Pnueli-style baseline: does every
// digitized adversary drive every reachable T-state to C with probability
// one? It returns the number of T-states and how many of them satisfy the
// almost-sure property.
func (a *Analysis) QualitativeProgress() (total, almostSure int) {
	target := a.Index.Mask(sched.LiftPred(InC))
	one := a.MDP.MinProbOne(target)
	inT := sched.LiftPred(InT)
	for i := 0; i < a.Index.Len(); i++ {
		if !inT(a.Index.State(i)) {
			continue
		}
		total++
		if one[i] {
			almostSure++
		}
	}
	return total, almostSure
}
