package dining

import (
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/exec"
	"repro/internal/mdp"
	"repro/internal/prob"
	"repro/internal/sched"
)

func TestProgressCurve(t *testing.T) {
	a := getAnalysisN3(t)
	curve, err := a.ProgressCurve(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 17 {
		t.Fatalf("curve has %d points", len(curve))
	}
	// Monotone nondecreasing.
	for i := 1; i < len(curve); i++ {
		if curve[i].WorstProb.Less(curve[i-1].WorstProb) {
			t.Errorf("curve not monotone at t=%d: %v < %v", i, curve[i].WorstProb, curve[i-1].WorstProb)
		}
	}
	// The curve at 13 must match the direct check (15/16 at n=3, k=1).
	if !curve[13].WorstProb.Equal(prob.MustParseRat("15/16")) {
		t.Errorf("curve[13] = %v, want 15/16", curve[13].WorstProb)
	}
	// The paper's point (13, 1/8) lies on or below the curve; the
	// tightest horizon for p = 1/8 is 7 in the digitized model.
	tight, ok := core.TightestTime(curve, prob.NewRat(1, 8))
	if !ok || tight != 7 {
		t.Errorf("tightest horizon = %d, %t; want 7, true", tight, ok)
	}
	// Horizons below 7 are certified lower bounds: the worst case there
	// is below 1/8 (in fact zero through t=6).
	if !curve[6].WorstProb.Less(prob.NewRat(1, 8)) {
		t.Errorf("curve[6] = %v, want < 1/8", curve[6].WorstProb)
	}
}

func TestWorstWitness(t *testing.T) {
	a := getAnalysisN3(t)
	lines, err := a.WorstWitness(13)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) < 10 {
		t.Fatalf("witness too short: %d lines", len(lines))
	}
	if !strings.Contains(lines[0], "worst-case P = 15/16") {
		t.Errorf("witness header = %q", lines[0])
	}
	// The damning schedule keeps the ring symmetric: every flip lands on
	// the same side, so no flip line may mix directions within a round.
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"flip_", "wait_", "second_", "drop_", "tick"} {
		if !strings.Contains(joined, want) {
			t.Errorf("witness missing %q:\n%s", want, joined)
		}
	}
	// No crit action can appear: the witness avoids C throughout.
	if strings.Contains(joined, "crit") {
		t.Errorf("witness reaches the critical region:\n%s", joined)
	}
}

// TestFloatCheckerAgreesOnPaperChain cross-validates the float and exact
// pipelines on the full n=3 product for every paper arrow.
func TestFloatCheckerAgreesOnPaperChain(t *testing.T) {
	a := getAnalysisN3(t)
	for _, st := range a.PaperStatements() {
		horizonRat := st.Time.Big()
		horizon := int(horizonRat.Num().Int64())
		toMask := a.Index.Mask(func(s PState) bool { return st.To.Contains(s) })
		fromMask := a.Index.Mask(func(s PState) bool { return st.From.Contains(s) })

		exact, err := a.MDP.ReachWithinTicks(toMask, horizon, mdp.MinProb)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := a.MDP.ReachWithinTicksFloat(toMask, horizon, mdp.MinProb)
		if err != nil {
			t.Fatal(err)
		}
		worstExact, _ := mdp.OptAt(exact, fromMask, mdp.MinProb)
		worstFloat := 2.0
		for s, in := range fromMask {
			if in && approx[s] < worstFloat {
				worstFloat = approx[s]
			}
		}
		if diff := worstExact.Float64() - worstFloat; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: exact %v vs float %g", st, worstExact, worstFloat)
		}
	}
}

// TestExecAgreesWithProductChain cross-validates the two exact engines:
// the event-evaluation engine (exec, tree unfolding with rectangle
// measure) run under a specific deterministic adversary must produce a
// value bracketed by the MDP's min and max over all adversaries, from
// every sampled start state.
func TestExecAgreesWithProductChain(t *testing.T) {
	a := getAnalysisN3(t)
	auto, err := sched.Product[State](a.Model, sched.Config{StepsPerWindow: a.K})
	if err != nil {
		t.Fatal(err)
	}
	adv := adversary.FirstEnabled(auto)
	deadline := prob.FromInt(3)
	monitor := events.Reach(sched.LiftPred(InC), deadline)

	toMask := a.Index.Mask(sched.LiftPred(InC))
	vMin, err := a.MDP.ReachWithinTicks(toMask, 3, mdp.MinProb)
	if err != nil {
		t.Fatal(err)
	}
	vMax, err := a.MDP.ReachWithinTicks(toMask, 3, mdp.MaxProb)
	if err != nil {
		t.Fatal(err)
	}

	checked := 0
	for id := 0; id < a.Index.Len() && checked < 25; id += 397 {
		start := a.Index.State(id)
		if !InT(start.Base) {
			continue
		}
		checked++
		h := exec.FromState(auto, adv, start)
		iv, err := h.Prob(monitor, exec.EvalConfig{MaxDepth: 80})
		if err != nil {
			t.Fatal(err)
		}
		if !iv.Exact() {
			t.Fatalf("state %v: interval %v not exact", start, iv)
		}
		if iv.Lo.Less(vMin[id]) || vMax[id].Less(iv.Lo) {
			t.Errorf("state %v: exec value %v outside MDP bounds [%v, %v]",
				start, iv.Lo, vMin[id], vMax[id])
		}
	}
	if checked == 0 {
		t.Fatal("no start states sampled")
	}
}
