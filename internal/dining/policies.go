package dining

import (
	"math/rand"

	"repro/internal/sim"
)

// This file provides Lehmann–Rabin-specific adversaries for the Monte
// Carlo engine, complementing the generic sim policies. The Spiteful
// policy is a dense-time adversary with complete knowledge of the past
// (including coin outcomes) that actively manufactures second-resource
// conflicts — the attack surface Example 4.1 of the paper warns about.

// AllAt returns the state with every process at the given program counter
// (which must not require a direction); it panics on invalid input. AllAt(F)
// is the canonical worst-ish start for expected-time measurements: the
// whole ring competes.
func AllAt(n int, pc PC) State {
	locals := make([]Local, n)
	for i := range locals {
		locals[i] = Local{PC: pc}
	}
	return MustState(locals...)
}

// KeepTrying wraps a policy so that any process sitting in its remainder
// region is immediately sent into its trying region (the user move try_i
// fires at once), keeping the ring maximally contended. Exits are never
// issued, matching the worst case for time-to-first-C measurements.
func KeepTrying(inner sim.Policy[State]) sim.Policy[State] {
	return sim.PolicyFunc[State](func(v *sim.View[State], rng *rand.Rand) (sim.Choice, bool) {
		for _, j := range v.UserMovers {
			if v.State.Local(j).PC == R {
				return sim.Choice{Proc: j, User: true, At: v.Now}, true
			}
		}
		return inner.Choose(v, rng)
	})
}

// Spiteful is a history-aware malicious scheduler. Its heuristics:
//
//   - rush a waiting process whose grab steals the second resource of a
//     committed neighbour (forcing that neighbour's check to fail);
//   - rush a second-resource check that is guaranteed to fail right now;
//   - rush coin flips to learn outcomes early;
//   - delay everything else (checks that would succeed, drops that would
//     free resources, crit announcements) to the last legal moment.
//
// It cannot defeat the algorithm — the paper proves constant expected
// progress time against every Unit-Time adversary — but it measurably
// slows it compared to a random or round-robin environment, which is
// exactly what experiment E12 quantifies.
func Spiteful() sim.Policy[State] {
	return sim.PolicyFunc[State](func(v *sim.View[State], _ *rand.Rand) (sim.Choice, bool) {
		s := v.State
		// Keep every process in the competition.
		for _, j := range v.UserMovers {
			if s.Local(j).PC == R {
				return sim.Choice{Proc: j, User: true, At: v.Now}, true
			}
		}
		if len(v.Ready) == 0 {
			return sim.Choice{}, false
		}

		best, bestScore := -1, 0
		for _, i := range v.Ready {
			if sc := spiteScore(s, i); sc > bestScore {
				best, bestScore = i, sc
			}
		}
		if best >= 0 {
			// Sabotage at the last legal instant: the event still orders
			// before any forced step, and the clock loses a full window.
			return sim.Choice{Proc: best, At: v.DeadlineMin}, true
		}

		// Nothing to sabotage: behave like the slowest legal scheduler.
		proc := v.Ready[0]
		for _, i := range v.Ready[1:] {
			if v.Deadline[i] < v.Deadline[proc] {
				proc = i
			}
		}
		return sim.Choice{Proc: proc, At: v.DeadlineMin}, true
	})
}

// spiteScore rates how much stepping process i right now hurts progress;
// zero means "no benefit, delay it".
func spiteScore(s State, i int) int {
	l := s.Local(i)
	switch l.PC {
	case W:
		r := s.resOnSide(i, l.U)
		if s.ResTaken(r) {
			return 0 // blocked: stepping is a self-loop, pointless now
		}
		// Grabbing r: does some committed neighbour need r as its second
		// resource?
		if secondResourceNeededBy(s, r) {
			return 3
		}
		return 0
	case S:
		// Check the second resource only while the check is doomed.
		if s.ResTaken(s.resOnSide(i, l.U.Opp())) {
			return 2
		}
		return 0
	case F:
		// Learn coin outcomes as early as possible.
		return 1
	default:
		// D (frees a resource), P (enters the pre-critical region), exit
		// steps: all only help progress; delay them.
		return 0
	}
}

// secondResourceNeededBy reports whether resource r is the second resource
// of some committed process (in W or S) of s.
func secondResourceNeededBy(s State, r int) bool {
	for j := 0; j < s.N(); j++ {
		l := s.Local(j)
		if l.PC != W && l.PC != S {
			continue
		}
		if s.resOnSide(j, l.U.Opp()) == s.wrap(r) {
			return true
		}
	}
	return false
}
