package dining

// This file defines the state sets of Section 6.2 of the paper. Each is a
// predicate over global states; package core pairs them with names to form
// the sides of time-bound statements.
//
//	T  — some process is in its trying region {F, W, S, D, P}
//	C  — some process is in its critical region
//	RT — T, and no process is in C or holds resources while exiting
//	F  — RT, and some process is ready to flip
//	P  — some process is in its pre-critical region
//	G  — RT, and some committed process's second resource is not
//	     potentially controlled by its second neighbour ("good" states)

// inTrying reports pc in the trying region T = {F, W, S, D, P}.
func inTrying(pc PC) bool {
	return pc == F || pc == W || pc == S || pc == D || pc == P
}

// InT reports s ∈ T: some process is in its trying region.
func InT(s State) bool {
	for i := 0; i < s.N(); i++ {
		if inTrying(s.Local(i).PC) {
			return true
		}
	}
	return false
}

// InC reports s ∈ C: some process is in its critical region.
func InC(s State) bool {
	for i := 0; i < s.N(); i++ {
		if s.Local(i).PC == C {
			return true
		}
	}
	return false
}

// InP reports s ∈ P: some process is in its pre-critical region.
func InP(s State) bool {
	for i := 0; i < s.N(); i++ {
		if s.Local(i).PC == P {
			return true
		}
	}
	return false
}

// InRT reports s ∈ RT: some process is in its trying region and every
// process is in {E_R, R} or its trying region (no process is critical or
// exiting while still holding resources).
func InRT(s State) bool {
	if !InT(s) {
		return false
	}
	for i := 0; i < s.N(); i++ {
		switch pc := s.Local(i).PC; {
		case pc == ER || pc == R || inTrying(pc):
		default:
			return false
		}
	}
	return true
}

// InF reports s ∈ F: s ∈ RT and some process is ready to flip.
func InF(s State) bool {
	if !InRT(s) {
		return false
	}
	for i := 0; i < s.N(); i++ {
		if s.Local(i).PC == F {
			return true
		}
	}
	return false
}

// committedToward reports X_i ∈ {W, S} pointing in direction d.
func committedToward(l Local, d Dir) bool {
	return (l.PC == W || l.PC == S) && l.U == d
}

// hashToward reports X_i ∈ {W, S, D} pointing in direction d — the
// paper's "#" with an arrow ("potentially controls" the resource on that
// side).
func hashToward(l Local, d Dir) bool {
	return (l.PC == W || l.PC == S || l.PC == D) && l.U == d
}

// freeNeighbour reports X ∈ {E_R, R, F} — the neighbour states that do not
// potentially control any resource.
func freeNeighbour(l Local) bool {
	return l.PC == ER || l.PC == R || l.PC == F
}

// IsGood reports that process i is a good process in s: committed, with
// its second resource not potentially controlled by the neighbour on that
// side (the definition of G in Section 6.2).
func IsGood(s State, i int) bool {
	l := s.Local(i)
	if committedToward(l, Left) {
		// Second resource is on the right, shared with process i+1.
		r := s.Local(i + 1)
		return freeNeighbour(r) || hashToward(r, Right)
	}
	if committedToward(l, Right) {
		// Second resource is on the left, shared with process i-1.
		left := s.Local(i - 1)
		return freeNeighbour(left) || hashToward(left, Left)
	}
	return false
}

// InG reports s ∈ G: s ∈ RT and some process is good.
func InG(s State) bool {
	if !InRT(s) {
		return false
	}
	for i := 0; i < s.N(); i++ {
		if IsGood(s, i) {
			return true
		}
	}
	return false
}

// InFGP reports s ∈ F ∪ G ∪ P, the target of Proposition A.15.
func InFGP(s State) bool { return InF(s) || InG(s) || InP(s) }

// InGP reports s ∈ G ∪ P, the target of Proposition A.14.
func InGP(s State) bool { return InG(s) || InP(s) }

// InRTC reports s ∈ RT ∪ C, the target of Proposition A.3.
func InRTC(s State) bool { return InRT(s) || InC(s) }
