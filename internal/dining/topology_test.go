package dining

import (
	"testing"

	"repro/internal/prob"
	"repro/internal/sched"
)

func TestTopologyConstructors(t *testing.T) {
	ring := Ring(4)
	if err := ring.Validate(); err != nil {
		t.Errorf("Ring(4): %v", err)
	}
	if ring.Resources != 4 || ring.NumProcs() != 4 {
		t.Errorf("ring shape = %d res, %d procs", ring.Resources, ring.NumProcs())
	}
	// Process 0's left is resource n-1, its right resource 0.
	if ring.Left[0] != 3 || ring.Right[0] != 0 {
		t.Errorf("ring process 0 resources = (%d, %d)", ring.Left[0], ring.Right[0])
	}

	path := Path(3)
	if err := path.Validate(); err != nil {
		t.Errorf("Path(3): %v", err)
	}
	if path.Resources != 4 {
		t.Errorf("path resources = %d, want 4", path.Resources)
	}
	if path.Left[0] != 0 || path.Right[2] != 3 {
		t.Errorf("path ends = (%d, %d)", path.Left[0], path.Right[2])
	}
}

func TestTopologyValidate(t *testing.T) {
	tests := []struct {
		name string
		topo Topology
	}{
		{name: "too few processes", topo: Topology{Left: []int{0}, Right: []int{1}, Resources: 2}},
		{name: "length mismatch", topo: Topology{Left: []int{0, 1}, Right: []int{1}, Resources: 2}},
		{name: "out of range", topo: Topology{Left: []int{0, 5}, Right: []int{1, 0}, Resources: 2}},
		{name: "same resource both sides", topo: Topology{Left: []int{0, 1}, Right: []int{0, 0}, Resources: 2}},
		{
			name: "resource left of two processes",
			topo: Topology{Left: []int{0, 0}, Right: []int{1, 2}, Resources: 3},
		},
		{
			name: "resource right of two processes",
			topo: Topology{Left: []int{0, 2}, Right: []int{1, 1}, Resources: 3},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.topo.Validate(); err == nil {
				t.Error("invalid topology accepted")
			}
		})
	}
}

// TestGeneralRingEquivalence is the divergence guard: the general model on
// Ring(n) must produce exactly the same transition structure as the
// ring-specialized Model on every reachable state.
func TestGeneralRingEquivalence(t *testing.T) {
	const n = 3
	ring := MustNew(n)
	general := MustNewGeneral(Ring(n))

	auto, err := sched.Product[State](ring, sched.Config{StepsPerWindow: 1})
	if err != nil {
		t.Fatal(err)
	}
	states, err := auto.Reachable(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, ps := range states {
		s := ps.Base
		for i := 0; i < n; i++ {
			a, b := ring.Moves(s, i), general.Moves(s, i)
			if len(a) != len(b) {
				t.Fatalf("state %v proc %d: %d vs %d moves", s, i, len(a), len(b))
			}
			for mi := range a {
				if a[mi].Action != b[mi].Action {
					t.Fatalf("state %v proc %d move %d: action %q vs %q", s, i, mi, a[mi].Action, b[mi].Action)
				}
				for _, v := range a[mi].Next.Support() {
					if !a[mi].Next.P(v).Equal(b[mi].Next.P(v)) {
						t.Fatalf("state %v proc %d move %d: distributions differ at %v", s, i, mi, v)
					}
				}
			}
			ua, ub := ring.UserMoves(s, i), general.UserMoves(s, i)
			if len(ua) != len(ub) {
				t.Fatalf("state %v proc %d: user moves %d vs %d", s, i, len(ua), len(ub))
			}
		}
		// Resource derivations agree too.
		for r := 0; r < n; r++ {
			if s.ResTaken(r) != general.ResTaken(s, r) {
				t.Fatalf("state %v: ResTaken(%d) disagree", s, r)
			}
		}
	}
}

func TestPathEndResourcesUncontested(t *testing.T) {
	m := MustNewGeneral(Path(3))
	// Process 0 in W pointing left: resource 0 belongs only to it, so the
	// wait always succeeds regardless of the others.
	s := mk(t, "W← S→ S←")
	moves := m.Moves(s, 0)
	next, _ := moves[0].Next.IsPoint()
	if next.Local(0).PC != S {
		t.Errorf("left wait on an uncontested end resource failed: %v", next)
	}
}

func TestPathInvariantOverReachableStates(t *testing.T) {
	model := MustNewGeneral(Path(3))
	auto, err := sched.Product[State](model, sched.Config{StepsPerWindow: 1})
	if err != nil {
		t.Fatal(err)
	}
	states, err := auto.Reachable(0)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("path(3) reachable product states: %d", len(states))
	for _, ps := range states {
		if !model.InvariantHolds(ps.Base) {
			t.Fatalf("invariant violated at %v", ps.Base)
		}
	}
}

func TestPathProgress(t *testing.T) {
	a, err := NewGeneralAnalysis(Path(3), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := a.CheckProgress(prob.FromInt(13), prob.NewRat(1, 8))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("path(3): %s", r)
	if !r.Holds {
		t.Errorf("T --13,1/8--> C fails on the path: %s", r)
	}

	worst, state, err := a.WorstExpectedTime()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("path(3) worst expected time to C: %.4f at %v", worst, state)
	if worst > 63 {
		t.Errorf("path worst expected time %.4f exceeds the ring bound 63", worst)
	}
}

// TestPathEasierThanRing quantifies the topology effect: at every horizon
// the path's worst case dominates the ring's (the open ends remove the
// symmetric livelock).
func TestPathEasierThanRing(t *testing.T) {
	ringA := getAnalysisN3(t)
	pathA, err := NewGeneralAnalysis(Path(3), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	ringCurve, err := ringA.ProgressCurve(13)
	if err != nil {
		t.Fatal(err)
	}
	pathCurve, err := pathA.ProgressCurve(13)
	if err != nil {
		t.Fatal(err)
	}
	for h := range ringCurve {
		if pathCurve[h].WorstProb.Less(ringCurve[h].WorstProb) {
			t.Errorf("horizon %d: path %v < ring %v", h, pathCurve[h].WorstProb, ringCurve[h].WorstProb)
		}
	}
	t.Logf("t=7: ring %v vs path %v; t=13: ring %v vs path %v",
		ringCurve[7].WorstProb, pathCurve[7].WorstProb,
		ringCurve[13].WorstProb, pathCurve[13].WorstProb)
}
