package dining

// This file addresses the second future-work direction of Section 7 of
// the paper: "it would be interesting to consider topologies that are
// more general than rings". GeneralModel runs the unmodified Lehmann–Rabin
// process code on any topology that assigns each process a left and a
// right resource — rings, open chains (paths, where the two end resources
// are uncontested), or any other two-resources-per-process layout.
//
// The state sets T, C and P depend only on local program counters, so the
// direct claims (T --t,p--> C, worst-case expected time) transfer to any
// topology; the ring-specific G-set analysis stays with the ring model.

import (
	"fmt"

	"repro/internal/pa"
	"repro/internal/prob"
	"repro/internal/sched"
)

// Topology assigns each process its two resources. Process i's left
// resource is Left[i] and its right resource is Right[i]; a resource may
// be shared by at most two processes (once as a left, once as a right),
// which is what makes the Lehmann–Rabin invariant meaningful.
type Topology struct {
	// Name labels the topology in diagnostics.
	Name string
	// Left and Right give each process's resource indices.
	Left, Right []int
	// Resources is the number of resources.
	Resources int
}

// Ring returns the paper's topology: n processes, n resources, resource i
// between processes i and i+1.
func Ring(n int) Topology {
	t := Topology{
		Name:      fmt.Sprintf("ring(%d)", n),
		Left:      make([]int, n),
		Right:     make([]int, n),
		Resources: n,
	}
	for i := 0; i < n; i++ {
		t.Left[i] = ((i-1)%n + n) % n
		t.Right[i] = i
	}
	return t
}

// Path returns an open chain: n processes, n+1 resources, process i using
// resources i (left) and i+1 (right); the outermost resources are
// uncontested.
func Path(n int) Topology {
	t := Topology{
		Name:      fmt.Sprintf("path(%d)", n),
		Left:      make([]int, n),
		Right:     make([]int, n),
		Resources: n + 1,
	}
	for i := 0; i < n; i++ {
		t.Left[i] = i
		t.Right[i] = i + 1
	}
	return t
}

// NumProcs returns the number of processes.
func (t Topology) NumProcs() int { return len(t.Left) }

// Validate checks structural sanity: matching lengths, indices in range,
// distinct resources per process, and no resource shared by more than two
// process sides (nor twice from the same side).
func (t Topology) Validate() error {
	n := len(t.Left)
	if n < 2 || n > sched.MaxProcs {
		return fmt.Errorf("dining: %d processes outside 2..%d", n, sched.MaxProcs)
	}
	if len(t.Right) != n {
		return fmt.Errorf("dining: %d left vs %d right assignments", n, len(t.Right))
	}
	leftUsed := make(map[int]bool, n)
	rightUsed := make(map[int]bool, n)
	for i := 0; i < n; i++ {
		l, r := t.Left[i], t.Right[i]
		if l < 0 || l >= t.Resources || r < 0 || r >= t.Resources {
			return fmt.Errorf("dining: process %d resources (%d, %d) outside 0..%d", i, l, r, t.Resources-1)
		}
		if l == r {
			return fmt.Errorf("dining: process %d has identical left and right resource %d", i, l)
		}
		if leftUsed[l] {
			return fmt.Errorf("dining: resource %d is the left resource of two processes", l)
		}
		if rightUsed[r] {
			return fmt.Errorf("dining: resource %d is the right resource of two processes", r)
		}
		leftUsed[l] = true
		rightUsed[r] = true
	}
	return nil
}

// GeneralModel is the Lehmann–Rabin algorithm on an arbitrary topology.
type GeneralModel struct {
	topo Topology
}

var _ sched.Model[State] = (*GeneralModel)(nil)

// NewGeneral builds the model after validating the topology.
func NewGeneral(t Topology) (*GeneralModel, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &GeneralModel{topo: t}, nil
}

// MustNewGeneral is like NewGeneral but panics on invalid input.
func MustNewGeneral(t Topology) *GeneralModel {
	m, err := NewGeneral(t)
	if err != nil {
		panic(err)
	}
	return m
}

// Topology returns the model's topology.
func (m *GeneralModel) Topology() Topology { return m.topo }

// Name implements sched.Model.
func (m *GeneralModel) Name() string {
	return fmt.Sprintf("lehmann-rabin(%s)", m.topo.Name)
}

// NumProcs implements sched.Model.
func (m *GeneralModel) NumProcs() int { return m.topo.NumProcs() }

// Start implements sched.Model.
func (m *GeneralModel) Start() []State {
	locals := make([]Local, m.NumProcs())
	for i := range locals {
		locals[i] = Local{PC: R}
	}
	return []State{MustState(locals...)}
}

// resOnSide returns the resource on side d of process i.
func (m *GeneralModel) resOnSide(i int, d Dir) int {
	if d == Right {
		return m.topo.Right[i]
	}
	return m.topo.Left[i]
}

// ResTaken derives the shared variable Res_r from the local states, the
// topology-general form of Lemma 6.1.
func (m *GeneralModel) ResTaken(s State, r int) bool {
	for i := 0; i < m.NumProcs(); i++ {
		l := s.Local(i)
		if holdsRight(l) && m.topo.Right[i] == r {
			return true
		}
		if holdsLeft(l) && m.topo.Left[i] == r {
			return true
		}
	}
	return false
}

// InvariantHolds checks that no resource is held from two sides at once
// (the Lemma 6.1 mutual-exclusion invariant, generalized).
func (m *GeneralModel) InvariantHolds(s State) bool {
	for r := 0; r < m.topo.Resources; r++ {
		holders := 0
		for i := 0; i < m.NumProcs(); i++ {
			l := s.Local(i)
			if holdsRight(l) && m.topo.Right[i] == r {
				holders++
			}
			if holdsLeft(l) && m.topo.Left[i] == r {
				holders++
			}
		}
		if holders > 1 {
			return false
		}
	}
	return true
}

// Moves implements sched.Model with the exact transition rules of
// Figure 1, resource lookups going through the topology.
func (m *GeneralModel) Moves(s State, i int) []pa.Step[State] {
	l := s.Local(i)
	switch l.PC {
	case F:
		return []pa.Step[State]{{
			Action: FlipAction(i),
			Next: prob.MustUniform(
				s.with(i, Local{PC: W, U: Left}),
				s.with(i, Local{PC: W, U: Right}),
			),
		}}
	case W:
		next := s
		if !m.ResTaken(s, m.resOnSide(i, l.U)) {
			next = s.with(i, Local{PC: S, U: l.U})
		}
		return []pa.Step[State]{{Action: actionName("wait", i), Next: prob.Point(next)}}
	case S:
		var next State
		if !m.ResTaken(s, m.resOnSide(i, l.U.Opp())) {
			next = s.with(i, Local{PC: P})
		} else {
			next = s.with(i, Local{PC: D, U: l.U})
		}
		return []pa.Step[State]{{Action: actionName("second", i), Next: prob.Point(next)}}
	case D:
		return []pa.Step[State]{{
			Action: actionName("drop", i),
			Next:   prob.Point(s.with(i, Local{PC: F})),
		}}
	case P:
		return []pa.Step[State]{{
			Action: actionName("crit", i),
			Next:   prob.Point(s.with(i, Local{PC: C})),
		}}
	case EF:
		return []pa.Step[State]{
			{
				Action: actionName("dropf", i),
				Next:   prob.Point(s.with(i, Local{PC: ES, U: Right})),
			},
			{
				Action: actionName("dropf", i),
				Next:   prob.Point(s.with(i, Local{PC: ES, U: Left})),
			},
		}
	case ES:
		return []pa.Step[State]{{
			Action: actionName("drops", i),
			Next:   prob.Point(s.with(i, Local{PC: ER})),
		}}
	case ER:
		return []pa.Step[State]{{
			Action: actionName("rem", i),
			Next:   prob.Point(s.with(i, Local{PC: R})),
		}}
	default: // R, C
		return nil
	}
}

// UserMoves implements sched.Model.
func (m *GeneralModel) UserMoves(s State, i int) []pa.Step[State] {
	switch s.Local(i).PC {
	case R:
		return []pa.Step[State]{{
			Action: actionName("try", i),
			Next:   prob.Point(s.with(i, Local{PC: F})),
		}}
	case C:
		return []pa.Step[State]{{
			Action: actionName("exit", i),
			Next:   prob.Point(s.with(i, Local{PC: EF})),
		}}
	default:
		return nil
	}
}
