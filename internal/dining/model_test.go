package dining

import (
	"strings"
	"testing"

	"repro/internal/prob"
	"repro/internal/sched"
)

// mk builds a state from a compact spec like "F W← S→ R"; panics on bad
// specs (test helper).
func mk(t *testing.T, spec string) State {
	t.Helper()
	fields := strings.Fields(spec)
	locals := make([]Local, len(fields))
	for i, f := range fields {
		var l Local
		switch {
		case strings.HasSuffix(f, "←"):
			l.U = Left
			f = strings.TrimSuffix(f, "←")
		case strings.HasSuffix(f, "→"):
			l.U = Right
			f = strings.TrimSuffix(f, "→")
		}
		switch f {
		case "R":
			l.PC = R
		case "F":
			l.PC = F
		case "W":
			l.PC = W
		case "S":
			l.PC = S
		case "D":
			l.PC = D
		case "P":
			l.PC = P
		case "C":
			l.PC = C
		case "EF":
			l.PC = EF
		case "ES":
			l.PC = ES
		case "ER":
			l.PC = ER
		default:
			t.Fatalf("bad local spec %q", f)
		}
		locals[i] = l
	}
	s, err := NewState(locals...)
	if err != nil {
		t.Fatalf("NewState(%q): %v", spec, err)
	}
	return s
}

func TestNewStateValidation(t *testing.T) {
	if _, err := NewState(Local{PC: R}); err == nil {
		t.Error("single process accepted")
	}
	if _, err := NewState(Local{PC: W}, Local{PC: R}); err == nil {
		t.Error("W without direction accepted")
	}
	// Directions are canonicalized where irrelevant.
	s, err := NewState(Local{PC: F, U: Left}, Local{PC: R, U: Right})
	if err != nil {
		t.Fatalf("NewState: %v", err)
	}
	if got := s.Local(0).U; got != None {
		t.Errorf("u at F = %v, want canonical None", got)
	}
	if got := s.Local(1).U; got != None {
		t.Errorf("u at R = %v, want canonical None", got)
	}
}

func TestStateString(t *testing.T) {
	s := mk(t, "W← S→ F")
	if got, want := s.String(), "[W← S→ F]"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestWrapNegative(t *testing.T) {
	s := mk(t, "R F W←")
	if got := s.Local(-1).PC; got != W {
		t.Errorf("Local(-1) = %v, want W", got)
	}
	if got := s.Local(3).PC; got != R {
		t.Errorf("Local(3) = %v, want R", got)
	}
}

func TestResTaken(t *testing.T) {
	tests := []struct {
		name string
		spec string
		res  int
		want bool
	}{
		{name: "all idle", spec: "R R R", res: 0, want: false},
		{name: "S→ holds its right resource", spec: "S→ R R", res: 0, want: true},
		{name: "S→ does not hold its left", spec: "S→ R R", res: 2, want: false},
		{name: "S← holds its left resource", spec: "R S← R", res: 0, want: true},
		{name: "W holds nothing", spec: "W→ W← R", res: 0, want: false},
		{name: "critical holds both", spec: "R C R", res: 0, want: true},
		{name: "critical holds both (right)", spec: "R C R", res: 1, want: true},
		{name: "P holds both", spec: "P R R", res: 0, want: true},
		{name: "EF holds both", spec: "R R EF", res: 1, want: true},
		{name: "ES→ still holds right", spec: "ES→ R R", res: 0, want: true},
		{name: "ES← released right", spec: "ES← R R", res: 0, want: false},
		{name: "D→ still holds right", spec: "D→ R R", res: 0, want: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := mk(t, tt.spec).ResTaken(tt.res); got != tt.want {
				t.Errorf("ResTaken(%d) in %s = %t, want %t", tt.res, tt.spec, got, tt.want)
			}
		})
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1); err == nil {
		t.Error("New(1) accepted")
	}
	if _, err := New(sched.MaxProcs + 1); err == nil {
		t.Error("oversized ring accepted")
	}
	if m, err := New(3); err != nil || m.NumProcs() != 3 {
		t.Errorf("New(3) = %v, %v", m, err)
	}
}

func TestStart(t *testing.T) {
	m := MustNew(4)
	starts := m.Start()
	if len(starts) != 1 {
		t.Fatalf("got %d start states, want 1", len(starts))
	}
	for i := 0; i < 4; i++ {
		if got := starts[0].Local(i).PC; got != R {
			t.Errorf("start local %d = %v, want R", i, got)
		}
	}
}

func TestFlipMove(t *testing.T) {
	m := MustNew(3)
	s := mk(t, "F R R")
	moves := m.Moves(s, 0)
	if len(moves) != 1 {
		t.Fatalf("got %d moves at F, want 1", len(moves))
	}
	mv := moves[0]
	if mv.Action != "flip_0" {
		t.Errorf("action = %q, want flip_0", mv.Action)
	}
	wantL := mk(t, "W← R R")
	wantR := mk(t, "W→ R R")
	if !mv.Next.P(wantL).Equal(prob.Half()) || !mv.Next.P(wantR).Equal(prob.Half()) {
		t.Errorf("flip distribution = %v, want 1/2 each on W←/W→", mv.Next)
	}
}

func TestWaitMove(t *testing.T) {
	m := MustNew(3)
	tests := []struct {
		name string
		spec string
		proc int
		want string
	}{
		{
			// Process 0 waits for its right resource Res_0; process 1
			// holds its own right resource Res_1, so Res_0 is free.
			name: "right free",
			spec: "W→ S→ R",
			proc: 0,
			want: "[S→ S→ R]",
		},
		{
			// Process 1 holds its left resource Res_0, blocking process 0.
			name: "right taken blocks",
			spec: "W→ S← R",
			proc: 0,
			want: "[W→ S← R]",
		},
		{
			name: "left free",
			spec: "W← R R",
			proc: 0,
			want: "[S← R R]",
		},
		{
			// Process 2 (process 0's left neighbour) holds its right
			// resource Res_2, which is process 0's left resource.
			name: "left taken blocks",
			spec: "W← R S→",
			proc: 0,
			want: "[W← R S→]",
		},
		{
			name: "neighbour in critical blocks",
			spec: "W→ C R",
			proc: 0,
			want: "[W→ C R]",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := mk(t, tt.spec)
			moves := m.Moves(s, tt.proc)
			if len(moves) != 1 {
				t.Fatalf("got %d moves, want 1", len(moves))
			}
			next, ok := moves[0].Next.IsPoint()
			if !ok {
				t.Fatalf("wait move not deterministic: %v", moves[0].Next)
			}
			if got := next.String(); got != tt.want {
				t.Errorf("wait from %s = %s, want %s", tt.spec, got, tt.want)
			}
		})
	}
}

func TestSecondMove(t *testing.T) {
	m := MustNew(3)
	tests := []struct {
		name string
		spec string
		proc int
		want string
	}{
		{
			// Process 0 at S→ holds Res_0, checks left Res_2: free.
			name: "second free enters P",
			spec: "S→ R R",
			proc: 0,
			want: "[P R R]",
		},
		{
			// Process 2 at S→ holds Res_2, which is process 0's left
			// resource (its second when pointing right): check fails.
			name: "second taken goes to D",
			spec: "S→ R S→",
			proc: 0,
			want: "[D→ R S→]",
		},
		{
			name: "second taken left case",
			spec: "S← S← R",
			proc: 0,
			want: "[D← S← R]",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := mk(t, tt.spec)
			moves := m.Moves(s, tt.proc)
			if len(moves) != 1 {
				t.Fatalf("got %d moves, want 1", len(moves))
			}
			next, ok := moves[0].Next.IsPoint()
			if !ok {
				t.Fatalf("second move not deterministic")
			}
			if got := next.String(); got != tt.want {
				t.Errorf("second from %s = %s, want %s", tt.spec, got, tt.want)
			}
		})
	}
}

func TestDeterministicChainMoves(t *testing.T) {
	m := MustNew(2)
	tests := []struct {
		spec       string
		proc       int
		wantAction string
		wantState  string
	}{
		{spec: "D→ R", proc: 0, wantAction: "drop_0", wantState: "[F R]"},
		{spec: "P R", proc: 0, wantAction: "crit_0", wantState: "[C R]"},
		{spec: "ES← R", proc: 0, wantAction: "drops_0", wantState: "[ER R]"},
		{spec: "ER R", proc: 0, wantAction: "rem_0", wantState: "[R R]"},
	}
	for _, tt := range tests {
		t.Run(tt.wantAction, func(t *testing.T) {
			s := mk(t, tt.spec)
			moves := m.Moves(s, tt.proc)
			if len(moves) != 1 {
				t.Fatalf("got %d moves, want 1", len(moves))
			}
			if moves[0].Action != tt.wantAction {
				t.Errorf("action = %q, want %q", moves[0].Action, tt.wantAction)
			}
			next, _ := moves[0].Next.IsPoint()
			if got := next.String(); got != tt.wantState {
				t.Errorf("next = %s, want %s", got, tt.wantState)
			}
		})
	}
}

func TestExitFirstDropIsNondeterministic(t *testing.T) {
	m := MustNew(2)
	s := mk(t, "EF R")
	moves := m.Moves(s, 0)
	if len(moves) != 2 {
		t.Fatalf("got %d moves at EF, want 2 (nondeterministic choice)", len(moves))
	}
	got := map[string]bool{}
	for _, mv := range moves {
		next, _ := mv.Next.IsPoint()
		got[next.String()] = true
	}
	if !got["[ES→ R]"] || !got["[ES← R]"] {
		t.Errorf("dropf successors = %v, want ES→ and ES←", got)
	}
}

func TestUserMoves(t *testing.T) {
	m := MustNew(2)
	tryMoves := m.UserMoves(mk(t, "R R"), 0)
	if len(tryMoves) != 1 || tryMoves[0].Action != "try_0" {
		t.Fatalf("UserMoves at R = %v, want try_0", tryMoves)
	}
	next, _ := tryMoves[0].Next.IsPoint()
	if got := next.String(); got != "[F R]" {
		t.Errorf("try leads to %s, want [F R]", got)
	}

	exitMoves := m.UserMoves(mk(t, "C R"), 0)
	if len(exitMoves) != 1 || exitMoves[0].Action != "exit_0" {
		t.Fatalf("UserMoves at C = %v, want exit_0", exitMoves)
	}
	next, _ = exitMoves[0].Next.IsPoint()
	if got := next.String(); got != "[EF R]" {
		t.Errorf("exit leads to %s, want [EF R]", got)
	}

	if got := m.UserMoves(mk(t, "F R"), 0); got != nil {
		t.Errorf("UserMoves at F = %v, want none", got)
	}
}

func TestReadiness(t *testing.T) {
	m := MustNew(2)
	ready := map[string]bool{
		"R R": false, "C R": false,
		"F R": true, "W← R": true, "S← R": true, "D← R": true,
		"P R": true, "EF R": true, "ES← R": true, "ER R": true,
	}
	for spec, want := range ready {
		if got := len(m.Moves(mk(t, spec), 0)) > 0; got != want {
			t.Errorf("process 0 ready in %s = %t, want %t", spec, got, want)
		}
	}
}

// TestInvariantOverReachableStates explores the full digitized product for
// n = 3 and checks Lemma 6.1's mutual-exclusion invariant in every
// reachable state — the paper's "standard proof of invariants" done
// mechanically.
func TestInvariantOverReachableStates(t *testing.T) {
	model := MustNew(3)
	auto, err := sched.Product[State](model, sched.Config{StepsPerWindow: 1})
	if err != nil {
		t.Fatal(err)
	}
	states, err := auto.Reachable(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) == 0 {
		t.Fatal("no reachable states")
	}
	t.Logf("reachable product states (n=3, k=1): %d", len(states))
	for _, ps := range states {
		if !ps.Base.InvariantHolds() {
			t.Fatalf("Lemma 6.1 invariant violated in reachable state %v", ps.Base)
		}
	}
}

// TestNoDoubleHoldEverywhere double-checks the invariant checker itself on
// a state built to violate it.
func TestNoDoubleHoldEverywhere(t *testing.T) {
	bad := mk(t, "S→ S← R") // both hold Res_0
	if bad.InvariantHolds() {
		t.Error("violating state reported as satisfying the invariant")
	}
	good := mk(t, "S→ S→ R")
	if !good.InvariantHolds() {
		t.Error("valid state reported as violating the invariant")
	}
}
