package dining

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mdp"
	"repro/internal/prob"
	"repro/internal/sched"
)

// GeneralAnalysis enumerates a Lehmann–Rabin instance on an arbitrary
// topology for worst-case checking. Only the topology-independent sets
// (T, C, P — defined by local program counters) are exposed; the
// ring-specific G/RT analysis remains on Analysis.
type GeneralAnalysis struct {
	Topo     Topology
	K        int
	Model    *GeneralModel
	MDP      *mdp.MDP
	Index    *mdp.Index[PState]
	Universe *core.Universe[PState]
	Schema   core.SchemaInfo
}

// NewGeneralAnalysis enumerates the product of the topology under the
// k-steps-per-window digitization.
func NewGeneralAnalysis(t Topology, k, limit int) (*GeneralAnalysis, error) {
	model, err := NewGeneral(t)
	if err != nil {
		return nil, err
	}
	auto, err := sched.Product[State](model, sched.Config{StepsPerWindow: k})
	if err != nil {
		return nil, err
	}
	m, ix, err := mdp.FromAutomaton(auto, limit)
	if err != nil {
		return nil, fmt.Errorf("dining: enumerating %s product: %w", t.Name, err)
	}
	states := make([]PState, ix.Len())
	for i := range states {
		states[i] = ix.State(i)
	}
	return &GeneralAnalysis{
		Topo:     t,
		K:        k,
		Model:    model,
		MDP:      m,
		Index:    ix,
		Universe: core.NewUniverse(states),
		Schema:   core.UnitTimeSchema(k),
	}, nil
}

// ProgressStatement returns T --time,p--> C over this topology.
func (a *GeneralAnalysis) ProgressStatement(time, p prob.Rat) core.Statement[PState] {
	return core.Statement[PState]{
		From:   core.NewSet("T", sched.LiftPred(InT)),
		To:     core.NewSet("C", sched.LiftPred(InC)),
		Time:   time,
		Prob:   p,
		Schema: a.Schema,
	}
}

// CheckProgress checks T --time,p--> C exactly.
func (a *GeneralAnalysis) CheckProgress(time, p prob.Rat) (core.CheckResult[PState], error) {
	return core.CheckStatement(a.MDP, a.Index, a.ProgressStatement(time, p))
}

// ProgressCurve computes the exact worst-case probability of reaching C
// from the worst T state for every horizon up to maxHorizon.
func (a *GeneralAnalysis) ProgressCurve(maxHorizon int) ([]core.CurvePoint, error) {
	return core.WorstCaseCurve(a.MDP, a.Index,
		core.NewSet("T", sched.LiftPred(InT)),
		core.NewSet("C", sched.LiftPred(InC)),
		maxHorizon)
}

// WorstExpectedTime computes the worst-case expected time from T to C.
func (a *GeneralAnalysis) WorstExpectedTime() (float64, PState, error) {
	target := a.Index.Mask(sched.LiftPred(InC))
	values, err := a.MDP.MaxExpectedTicks(target, mdp.VIConfig{})
	if err != nil {
		return 0, PState{}, err
	}
	worst := -1.0
	var worstState PState
	inT := sched.LiftPred(InT)
	for i := 0; i < a.Index.Len(); i++ {
		s := a.Index.State(i)
		if !inT(s) {
			continue
		}
		if values[i] > worst {
			worst = values[i]
			worstState = s
		}
	}
	if worst < 0 {
		return 0, PState{}, core.ErrEmptyFrom
	}
	return worst, worstState, nil
}
