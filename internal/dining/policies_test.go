package dining

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
)

func TestAllAt(t *testing.T) {
	s := AllAt(4, F)
	if s.N() != 4 {
		t.Fatalf("N = %d", s.N())
	}
	for i := 0; i < 4; i++ {
		if s.Local(i).PC != F {
			t.Errorf("local %d = %v, want F", i, s.Local(i))
		}
	}
	if !InT(s) || !InRT(s) || !InF(s) {
		t.Error("all-F state not classified as T/RT/F")
	}
}

func TestKeepTryingInjectsTry(t *testing.T) {
	model := MustNew(3)
	rng := rand.New(rand.NewSource(1))
	// From the all-R start, the wrapped slowest policy must immediately
	// issue try moves rather than stopping.
	res, err := sim.RunOnce[State](model, KeepTrying(sim.Slowest[State]()), InC,
		sim.Options[State]{MaxEvents: 500}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatalf("KeepTrying never reached C: %+v", res)
	}
}

func TestSpitefulReachesCEventually(t *testing.T) {
	model := MustNew(5)
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		res, err := sim.RunOnce[State](model, Spiteful(), InC, sim.Options[State]{
			Start:    AllAt(5, F),
			SetStart: true,
		}, rng)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Reached {
			t.Fatalf("seed %d: spiteful starved the ring forever: %+v", seed, res)
		}
		if res.ReachedAt > 63 {
			t.Errorf("seed %d: time to C %.3f exceeds the documented bound 63", seed, res.ReachedAt)
		}
	}
}

func TestSpitefulIsLegal(t *testing.T) {
	// The engine itself validates every Choice (time window, enabledness,
	// desertion); a long run with many seeds is a thorough legality check.
	model := MustNew(4)
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		if _, err := sim.RunOnce[State](model, Spiteful(), func(State) bool { return false },
			sim.Options[State]{Start: AllAt(4, F), SetStart: true, MaxEvents: 2000, MaxTime: 100}, rng); err != nil {
			t.Fatalf("seed %d: spiteful made an illegal move: %v", seed, err)
		}
	}
}

func TestSpiteScore(t *testing.T) {
	tests := []struct {
		name string
		spec string
		proc int
		want int
	}{
		{
			// Process 0 at W→ can grab Res_0, which is the second
			// resource of process 1 at S→ (its left): maximal spite.
			name: "grab contested second resource",
			spec: "W→ S→ R",
			proc: 0,
			want: 3,
		},
		{
			// Blocked wait is a pointless self-loop.
			name: "blocked wait",
			spec: "W→ S← R",
			proc: 0,
			want: 0,
		},
		{
			// A doomed second check is locked in eagerly. Process 0 at S←
			// holds Res_2... its second is Res_0; process 1 at S← holds
			// Res_0: doomed.
			name: "doomed second check",
			spec: "S← S← R",
			proc: 0,
			want: 2,
		},
		{
			// A second check that would succeed is delayed.
			name: "winnable second check",
			spec: "S← R R",
			proc: 0,
			want: 0,
		},
		{name: "flip gathers information", spec: "F R R", proc: 0, want: 1},
		{name: "drop only helps others", spec: "D→ R R", proc: 0, want: 0},
		{name: "pre-critical is delayed", spec: "P R R", proc: 0, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := spiteScore(mk(t, tt.spec), tt.proc); got != tt.want {
				t.Errorf("spiteScore(%s, %d) = %d, want %d", tt.spec, tt.proc, got, tt.want)
			}
		})
	}
}

func TestSecondResourceNeededBy(t *testing.T) {
	// Process 1 at S→ holds Res_1, needs Res_0 (its left) as second.
	s := mk(t, "R S→ R")
	if !secondResourceNeededBy(s, 0) {
		t.Error("Res_0 should be needed by process 1's second check")
	}
	if secondResourceNeededBy(s, 2) {
		t.Error("Res_2 is nobody's second resource")
	}
}
