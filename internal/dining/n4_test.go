package dining

import (
	"testing"

	"repro/internal/core"
	"repro/internal/prob"
)

// TestPaperChainHoldsN4 repeats the headline checks at n = 4 (about 205k
// product states; ~40s of exact rational value iteration). Skipped with
// -short.
func TestPaperChainHoldsN4(t *testing.T) {
	if testing.Short() {
		t.Skip("n=4 exact checking takes ~40s; skipped with -short")
	}
	a, err := NewAnalysis(4, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("n=4 k=1 product states: %d", a.Index.Len())

	results, err := a.CheckPaperChain()
	if err != nil {
		t.Fatal(err)
	}
	wantMeasured := []string{"1", "1", "7/8", "1/2", "1"}
	for i, r := range results {
		t.Logf("%s", r)
		if !r.Holds {
			t.Errorf("statement fails at n=4: %s", r)
		}
		if r.WorstProb.String() != wantMeasured[i] {
			t.Errorf("%s: measured %v, want %s (recorded in EXPERIMENTS.md)",
				r.Stmt, r.WorstProb, wantMeasured[i])
		}
	}

	direct, err := core.CheckStatement(a.MDP, a.Index, a.ComposedStatement())
	if err != nil {
		t.Fatal(err)
	}
	if !direct.WorstProb.Equal(prob.MustParseRat("63/64")) {
		t.Errorf("direct composed worst case = %v, want 63/64", direct.WorstProb)
	}

	proof, err := a.BuildPaperProof()
	if err != nil {
		t.Fatal(err)
	}
	if !proof.Stmt.Prob.Equal(prob.NewRat(1, 8)) {
		t.Errorf("composed probability = %v", proof.Stmt.Prob)
	}
}
