package dining

// This file supports mechanized checking of the appendix lemmas. Lemmas
// A.4–A.10 are statements conditioned on first(flip_j, d) events: "IF the
// first coin flip of process j yields d, THEN within time t ...". The
// conditioning is realized by a rigged model: designated processes'
// *first* flip is deterministic (the conditioned outcome), after which
// they flip fairly again. Because first(flip_j, d) depends only on that
// one outcome and the adversary cannot influence the coin itself, the
// worst case of the rigged model equals the worst case conditional on the
// event — exactly the reading of the lemma statements.

import (
	"fmt"
	"strings"

	"repro/internal/pa"
	"repro/internal/prob"
	"repro/internal/sched"
)

// Rig designates the forced first-flip outcome of one process.
type Rig struct {
	Proc int
	Dir  Dir
}

// RState is a rigged-model state: the algorithm state plus the mask of
// processes whose forced flip is still pending.
type RState struct {
	S       State
	Pending uint16
}

// String renders the state with the pending rig mask.
func (r RState) String() string {
	if r.Pending == 0 {
		return r.S.String()
	}
	return fmt.Sprintf("%v(rig:%b)", r.S, r.Pending)
}

// RiggedModel wraps the ring model, forcing the first flip of each rigged
// process.
type RiggedModel struct {
	inner  *Model
	dirs   map[int]Dir
	starts []State
}

var _ sched.Model[RState] = (*RiggedModel)(nil)

// NewRigged builds the rigged n-process ring.
func NewRigged(n int, rigs ...Rig) (*RiggedModel, error) {
	inner, err := New(n)
	if err != nil {
		return nil, err
	}
	dirs := make(map[int]Dir, len(rigs))
	for _, rig := range rigs {
		if rig.Proc < 0 || rig.Proc >= n {
			return nil, fmt.Errorf("dining: rigged process %d outside 0..%d", rig.Proc, n-1)
		}
		if rig.Dir != Left && rig.Dir != Right {
			return nil, fmt.Errorf("dining: rig for process %d needs Left or Right", rig.Proc)
		}
		if _, dup := dirs[rig.Proc]; dup {
			return nil, fmt.Errorf("dining: process %d rigged twice", rig.Proc)
		}
		dirs[rig.Proc] = rig.Dir
	}
	return &RiggedModel{inner: inner, dirs: dirs}, nil
}

// Name implements sched.Model.
func (m *RiggedModel) Name() string {
	parts := make([]string, 0, len(m.dirs))
	for p, d := range m.dirs {
		parts = append(parts, fmt.Sprintf("%d%s", p, d))
	}
	return fmt.Sprintf("%s/rigged(%s)", m.inner.Name(), strings.Join(parts, ","))
}

// NumProcs implements sched.Model.
func (m *RiggedModel) NumProcs() int { return m.inner.NumProcs() }

// StartFrom builds the rigged start state: every rigged process's forced
// flip is pending.
func (m *RiggedModel) StartFrom(s State) RState {
	var pending uint16
	for p := range m.dirs {
		pending |= 1 << p
	}
	return RState{S: s, Pending: pending}
}

// WithStarts sets the base start states of the rigged model. The lemma
// hypotheses describe mid-protocol configurations (a process in D, W, S,
// ...), which are unreachable from the all-R start once the rig has
// consumed the first flip; starting the rigged model from every reachable
// base state of the unrigged ring makes the conditioning apply "from now
// on" at an arbitrary reachable point, which is the lemmas' reading.
func (m *RiggedModel) WithStarts(states []State) *RiggedModel {
	m.starts = append([]State(nil), states...)
	return m
}

// Start implements sched.Model.
func (m *RiggedModel) Start() []RState {
	if len(m.starts) == 0 {
		return []RState{m.StartFrom(m.inner.Start()[0])}
	}
	out := make([]RState, len(m.starts))
	for i, s := range m.starts {
		out[i] = m.StartFrom(s)
	}
	return out
}

// Moves implements sched.Model: identical to the ring except that a
// pending rigged process's flip lands deterministically.
func (m *RiggedModel) Moves(rs RState, i int) []pa.Step[RState] {
	l := rs.S.Local(i)
	if l.PC == F && rs.Pending&(1<<i) != 0 {
		d := m.dirs[i]
		next := RState{
			S:       rs.S.with(i, Local{PC: W, U: d}),
			Pending: rs.Pending &^ (1 << i),
		}
		return []pa.Step[RState]{{Action: FlipAction(i), Next: prob.Point(next)}}
	}
	return liftSteps(m.inner.Moves(rs.S, i), rs.Pending)
}

// UserMoves implements sched.Model.
func (m *RiggedModel) UserMoves(rs RState, i int) []pa.Step[RState] {
	return liftSteps(m.inner.UserMoves(rs.S, i), rs.Pending)
}

func liftSteps(steps []pa.Step[State], pending uint16) []pa.Step[RState] {
	out := make([]pa.Step[RState], 0, len(steps))
	for _, st := range steps {
		out = append(out, pa.Step[RState]{
			Action: st.Action,
			Next: prob.MapDist(st.Next, func(s State) RState {
				return RState{S: s, Pending: pending}
			}),
		})
	}
	return out
}

// LiftBase lifts a base-state predicate to rigged product states.
func LiftBase(pred func(State) bool) func(sched.State[RState]) bool {
	return func(ps sched.State[RState]) bool { return pred(ps.Base.S) }
}

// PendingAll reports whether every rig of the model is still pending in
// the state — the lemma hypotheses require the conditioned flips to be in
// the future.
func (m *RiggedModel) PendingAll(rs RState) bool {
	for p := range m.dirs {
		if rs.Pending&(1<<p) == 0 {
			return false
		}
	}
	return true
}
