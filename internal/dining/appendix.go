package dining

// This file mechanizes the appendix of the paper: each of Lemmas A.4–A.13
// becomes a checkable worst-case statement. Lemmas conditioned on
// first(flip_j, d) events run on rigged models (rigged.go); unconditioned
// lemmas run on the plain ring. Every lemma is checked for every pivot
// process i, starting from every reachable configuration matching its
// hypothesis.

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/mdp"
	"repro/internal/prob"
	"repro/internal/sched"
)

// Lemma is one checkable appendix lemma instance.
type Lemma struct {
	// Name identifies the lemma, e.g. "A.4(1)".
	Name string
	// Hypothesis describes the conditioning informally.
	Hypothesis string
	// Rigs are the forced first flips (empty for unconditioned lemmas).
	Rigs func(i, n int) []Rig
	// From is the lemma's source predicate at pivot i.
	From func(s State, i int) bool
	// To is the lemma's target predicate at pivot i.
	To func(s State, i int) bool
	// Time is the claimed bound; Prob the claimed probability.
	Time int
	Prob prob.Rat
}

// pcIn reports X_j ∈ set (ignoring direction).
func pcIn(s State, j int, pcs ...PC) bool {
	pc := s.Local(j).PC
	for _, want := range pcs {
		if pc == want {
			return true
		}
	}
	return false
}

// at reports X_j = (pc, d).
func at(s State, j int, pc PC, d Dir) bool {
	l := s.Local(j)
	return l.PC == pc && l.U == d
}

// hash reports X_j ∈ #d = {W, S, D} pointing in direction d.
func hash(s State, j int, d Dir) bool {
	l := s.Local(j)
	return (l.PC == W || l.PC == S || l.PC == D) && l.U == d
}

// erf reports X_j ∈ {E_R, R, F}.
func erf(s State, j int) bool { return pcIn(s, j, ER, R, F) }

// ert reports X_j ∈ {E_R, R, T} (T as local trying region).
func ert(s State, j int) bool { return pcIn(s, j, ER, R, F, W, S, D, P) }

// AppendixLemmas returns the lemma suite in appendix order.
func AppendixLemmas() []Lemma {
	one := prob.One()
	rigLeft := func(j int) func(i, n int) []Rig {
		return func(i, n int) []Rig { return []Rig{{Proc: mod(i+j, n), Dir: Left}} }
	}
	rigRight := func(j int) func(i, n int) []Rig {
		return func(i, n int) []Rig { return []Rig{{Proc: mod(i+j, n), Dir: Right}} }
	}

	// Common targets.
	pOrS := func(s State, i int) bool {
		return pcIn(s, mod(i-1, s.N()), P) || pcIn(s, i, S)
	}
	pAt := func(offsets ...int) func(State, int) bool {
		return func(s State, i int) bool {
			for _, off := range offsets {
				if pcIn(s, mod(i+off, s.N()), P) {
					return true
				}
			}
			return false
		}
	}

	return []Lemma{
		{
			Name:       "A.4(1)",
			Hypothesis: "X_{i-1} ∈ {E_R,R,F}, X_i = W←, first(flip_{i-1}, left)",
			Rigs:       rigLeft(-1),
			From: func(s State, i int) bool {
				return erf(s, mod(i-1, s.N())) && at(s, i, W, Left)
			},
			To: pOrS, Time: 1, Prob: one,
		},
		{
			Name:       "A.4(2)",
			Hypothesis: "X_{i-1} = D, X_i = W←, first(flip_{i-1}, left)",
			Rigs:       rigLeft(-1),
			From: func(s State, i int) bool {
				return pcIn(s, mod(i-1, s.N()), D) && at(s, i, W, Left)
			},
			To: pOrS, Time: 2, Prob: one,
		},
		{
			Name:       "A.4(3)",
			Hypothesis: "X_{i-1} = S, X_i = W←, first(flip_{i-1}, left)",
			Rigs:       rigLeft(-1),
			From: func(s State, i int) bool {
				return pcIn(s, mod(i-1, s.N()), S) && at(s, i, W, Left)
			},
			To: pOrS, Time: 3, Prob: one,
		},
		{
			Name:       "A.4(4)",
			Hypothesis: "X_{i-1} = W, X_i = W←, first(flip_{i-1}, left)",
			Rigs:       rigLeft(-1),
			From: func(s State, i int) bool {
				return pcIn(s, mod(i-1, s.N()), W) && at(s, i, W, Left)
			},
			To: pOrS, Time: 4, Prob: one,
		},
		{
			Name:       "A.5",
			Hypothesis: "X_{i-1} ∈ {E_R,R,T}, X_i = W←, first(flip_{i-1}, left)",
			Rigs:       rigLeft(-1),
			From: func(s State, i int) bool {
				return ert(s, mod(i-1, s.N())) && at(s, i, W, Left)
			},
			To: pOrS, Time: 4, Prob: one,
		},
		{
			Name:       "A.7a",
			Hypothesis: "X_i = S←, X_{i+1} ∈ {W→,S→}",
			Rigs:       func(int, int) []Rig { return nil },
			From: func(s State, i int) bool {
				j := mod(i+1, s.N())
				return at(s, i, S, Left) && (at(s, j, W, Right) || at(s, j, S, Right))
			},
			To: pAt(0, 1), Time: 1, Prob: one,
		},
		{
			Name:       "A.7b",
			Hypothesis: "X_i ∈ {W←,S←}, X_{i+1} = S→",
			Rigs:       func(int, int) []Rig { return nil },
			From: func(s State, i int) bool {
				j := mod(i+1, s.N())
				return (at(s, i, W, Left) || at(s, i, S, Left)) && at(s, j, S, Right)
			},
			To: pAt(0, 1), Time: 1, Prob: one,
		},
		{
			Name:       "A.8a",
			Hypothesis: "X_i = S←, X_{i+1} ∈ {E_R,R,F,D→}, first(flip_{i+1}, right)",
			Rigs:       rigRight(+1),
			From: func(s State, i int) bool {
				j := mod(i+1, s.N())
				return at(s, i, S, Left) && (erf(s, j) || at(s, j, D, Right))
			},
			To: pAt(0, 1), Time: 1, Prob: one,
		},
		{
			Name:       "A.8b",
			Hypothesis: "X_i ∈ {E_R,R,F,D←}, X_{i+1} = S→, first(flip_i, left)",
			Rigs:       rigLeft(0),
			From: func(s State, i int) bool {
				j := mod(i+1, s.N())
				return (erf(s, i) || at(s, i, D, Left)) && at(s, j, S, Right)
			},
			To: pAt(0, 1), Time: 1, Prob: one,
		},
		{
			Name:       "A.9",
			Hypothesis: "X_{i-1} ∈ {E_R,R,T}, X_i = W←, X_{i+1} ∈ {E_R,R,F,W→,D→}, first(flip_{i-1}, left) ∧ first(flip_{i+1}, right)",
			Rigs: func(i, n int) []Rig {
				return []Rig{{Proc: mod(i-1, n), Dir: Left}, {Proc: mod(i+1, n), Dir: Right}}
			},
			From: func(s State, i int) bool {
				j, k := mod(i-1, s.N()), mod(i+1, s.N())
				return ert(s, j) && at(s, i, W, Left) &&
					(erf(s, k) || at(s, k, W, Right) || at(s, k, D, Right))
			},
			To: pAt(-1, 0, 1), Time: 5, Prob: one,
		},
		{
			Name:       "A.10",
			Hypothesis: "X_i ∈ {E_R,R,F,W←,D←}, X_{i+1} = W→, X_{i+2} ∈ {E_R,R,T}, first(flip_i, left) ∧ first(flip_{i+2}, right)",
			Rigs: func(i, n int) []Rig {
				return []Rig{{Proc: i, Dir: Left}, {Proc: mod(i+2, n), Dir: Right}}
			},
			From: func(s State, i int) bool {
				j, k := mod(i+1, s.N()), mod(i+2, s.N())
				return (erf(s, i) || at(s, i, W, Left) || at(s, i, D, Left)) &&
					at(s, j, W, Right) && ert(s, k)
			},
			To: pAt(0, 1, 2), Time: 5, Prob: one,
		},
		{
			Name:       "A.12",
			Hypothesis: "s ∈ F with X_i = F and (X_{i-1}, X_{i+1}) ≠ (#→, #←)",
			Rigs:       func(int, int) []Rig { return nil },
			From: func(s State, i int) bool {
				if !InF(s) || s.Local(i).PC != F {
					return false
				}
				return !(hash(s, mod(i-1, s.N()), Right) && hash(s, mod(i+1, s.N()), Left))
			},
			To:   func(s State, _ int) bool { return InGP(s) },
			Time: 1, Prob: prob.Half(),
		},
		{
			Name:       "A.13",
			Hypothesis: "s ∈ F with X_i = F and (X_{i-1}, X_{i+1}) = (#→, #←)",
			Rigs:       func(int, int) []Rig { return nil },
			From: func(s State, i int) bool {
				if !InF(s) || s.Local(i).PC != F {
					return false
				}
				return hash(s, mod(i-1, s.N()), Right) && hash(s, mod(i+1, s.N()), Left)
			},
			To:   func(s State, _ int) bool { return InGP(s) },
			Time: 2, Prob: prob.Half(),
		},
	}
}

func mod(i, n int) int {
	i %= n
	if i < 0 {
		i += n
	}
	return i
}

// LemmaResult is the check outcome of one lemma at one pivot.
type LemmaResult struct {
	Lemma      Lemma
	Pivot      int
	Holds      bool
	WorstProb  prob.Rat
	FromStates int
	Vacuous    bool // no reachable state matches the hypothesis
}

// String formats the result as one report line.
func (r LemmaResult) String() string {
	switch {
	case r.Vacuous:
		return fmt.Sprintf("VACUOUS %-7s i=%d  (no reachable hypothesis state)", r.Lemma.Name, r.Pivot)
	case r.Holds:
		return fmt.Sprintf("HOLDS   %-7s i=%d  t=%d claimed=%v measured=%v  |From|=%d",
			r.Lemma.Name, r.Pivot, r.Lemma.Time, r.Lemma.Prob, r.WorstProb, r.FromStates)
	default:
		return fmt.Sprintf("FAILS   %-7s i=%d  t=%d claimed=%v measured=%v  |From|=%d",
			r.Lemma.Name, r.Pivot, r.Lemma.Time, r.Lemma.Prob, r.WorstProb, r.FromStates)
	}
}

// CheckLemma checks one lemma at one pivot on the n-ring under the
// k-digitization, conditioning via a rigged model started from every
// reachable base state of the unrigged ring.
func CheckLemma(lemma Lemma, i, n, k int, baseStates []State) (LemmaResult, error) {
	res := LemmaResult{Lemma: lemma, Pivot: i}

	// On tiny rings the lemma's distinct neighbours can coincide (e.g.
	// i-1 = i+1 at n = 2), making the conjunction of first(flip, ·)
	// hypotheses degenerate; report the instance as vacuous.
	rigs := lemma.Rigs(i, n)
	seen := make(map[int]bool, len(rigs))
	for _, rig := range rigs {
		p := mod(rig.Proc, n)
		if seen[p] {
			res.Vacuous = true
			return res, nil
		}
		seen[p] = true
	}

	rigged, err := NewRigged(n, rigs...)
	if err != nil {
		return res, err
	}
	rigged.WithStarts(baseStates)

	auto, err := sched.Product[RState](rigged, sched.Config{StepsPerWindow: k})
	if err != nil {
		return res, err
	}
	m, ix, err := mdp.FromAutomaton(auto, 0)
	if err != nil {
		return res, err
	}

	from := core.NewSet(lemma.Name+"-from", func(ps sched.State[RState]) bool {
		return rigged.PendingAll(ps.Base) && lemma.From(ps.Base.S, i)
	})
	to := core.NewSet(lemma.Name+"-to", func(ps sched.State[RState]) bool {
		return lemma.To(ps.Base.S, i)
	})
	st := core.Statement[sched.State[RState]]{
		From:   from,
		To:     to,
		Time:   prob.FromInt(int64(lemma.Time)),
		Prob:   lemma.Prob,
		Schema: core.UnitTimeSchema(k),
	}
	r, err := core.CheckStatement(m, ix, st)
	if errors.Is(err, core.ErrEmptyFrom) {
		res.Vacuous = true
		return res, nil
	}
	if err != nil {
		return res, err
	}
	res.Holds = r.Holds
	res.WorstProb = r.WorstProb
	res.FromStates = r.FromCount
	return res, nil
}

// CheckAppendix checks the whole lemma suite at every pivot and returns
// the results in lemma-major order. baseStates defaults to the reachable
// base states of the unrigged ring (computed via a throwaway analysis)
// when nil.
func CheckAppendix(n, k int, baseStates []State) ([]LemmaResult, error) {
	if baseStates == nil {
		a, err := NewAnalysis(n, k, 0)
		if err != nil {
			return nil, err
		}
		seen := make(map[State]bool)
		for idx := 0; idx < a.Index.Len(); idx++ {
			b := a.Index.State(idx).Base
			if !seen[b] {
				seen[b] = true
				baseStates = append(baseStates, b)
			}
		}
	}
	var out []LemmaResult
	for _, lemma := range AppendixLemmas() {
		for i := 0; i < n; i++ {
			r, err := CheckLemma(lemma, i, n, k, baseStates)
			if err != nil {
				return out, fmt.Errorf("%s at i=%d: %w", lemma.Name, i, err)
			}
			out = append(out, r)
		}
	}
	return out, nil
}
