package dining

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/prob"
	"repro/internal/sched"
)

// analysisN3 is shared by the tests in this file; building it enumerates
// the full n=3, k=1 product once.
var analysisN3 *Analysis

func getAnalysisN3(t *testing.T) *Analysis {
	t.Helper()
	if analysisN3 == nil {
		a, err := NewAnalysis(3, 1, 0)
		if err != nil {
			t.Fatalf("NewAnalysis: %v", err)
		}
		analysisN3 = a
	}
	return analysisN3
}

func TestPaperChainHoldsN3(t *testing.T) {
	a := getAnalysisN3(t)
	results, err := a.CheckPaperChain()
	if err != nil {
		t.Fatalf("CheckPaperChain: %v", err)
	}
	if len(results) != 5 {
		t.Fatalf("got %d results, want 5", len(results))
	}
	for _, r := range results {
		t.Logf("%s", r)
		if !r.Holds {
			t.Errorf("statement fails in the digitized model: %s", r)
		}
	}
}

func TestDeterministicArrowsAreTight(t *testing.T) {
	a := getAnalysisN3(t)
	results, err := a.CheckPaperChain()
	if err != nil {
		t.Fatal(err)
	}
	// The three probability-1 arrows must be measured at exactly 1.
	for _, i := range []int{0, 1, 4} {
		if !results[i].WorstProb.IsOne() {
			t.Errorf("%s: worst-case P = %v, want exactly 1", results[i].Stmt, results[i].WorstProb)
		}
	}
	// The probabilistic arrows must respect their bounds.
	if results[2].WorstProb.Less(prob.Half()) {
		t.Errorf("F arrow: worst-case P = %v < 1/2", results[2].WorstProb)
	}
	if results[3].WorstProb.Less(prob.NewRat(1, 4)) {
		t.Errorf("G arrow: worst-case P = %v < 1/4", results[3].WorstProb)
	}
}

func TestBuildPaperProof(t *testing.T) {
	a := getAnalysisN3(t)
	proof, err := a.BuildPaperProof()
	if err != nil {
		t.Fatalf("BuildPaperProof: %v", err)
	}
	st := proof.Stmt
	if st.From.Name != "T" || st.To.Name != "C" {
		t.Errorf("composed statement relates %s to %s, want T to C", st.From.Name, st.To.Name)
	}
	if !st.Time.Equal(prob.FromInt(13)) {
		t.Errorf("composed time = %v, want 13", st.Time)
	}
	if !st.Prob.Equal(prob.NewRat(1, 8)) {
		t.Errorf("composed probability = %v, want 1/8", st.Prob)
	}
	if got := len(proof.Premises()); got != 5 {
		t.Errorf("proof has %d premises, want 5", got)
	}
	rendered := proof.Render()
	for _, want := range []string{"T --13,1/8--> C", "compose (Thm 3.4)", "Proposition A.11", "weaken (Prop 3.2)"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("rendered proof missing %q:\n%s", want, rendered)
		}
	}
}

func TestComposedStatementHoldsDirectly(t *testing.T) {
	a := getAnalysisN3(t)
	r, err := core.CheckStatement(a.MDP, a.Index, a.ComposedStatement())
	if err != nil {
		t.Fatalf("CheckStatement: %v", err)
	}
	t.Logf("direct check: %s", r)
	if !r.Holds {
		t.Errorf("T --13,1/8--> C fails directly: %s", r)
	}
	// The direct model-checked worst case should be at least as good as
	// the composed bound (Theorem 3.4 is sound but lossy).
	if r.WorstProb.Less(prob.NewRat(1, 8)) {
		t.Errorf("direct worst-case %v below composed bound 1/8", r.WorstProb)
	}
}

func TestExpectedTimeRecurrence(t *testing.T) {
	a := getAnalysisN3(t)
	loop := a.RetryLoop()
	e, err := loop.ExpectedTime()
	if err != nil {
		t.Fatalf("ExpectedTime: %v", err)
	}
	if !e.Equal(prob.FromInt(60)) {
		t.Errorf("E[loop] = %v, want exactly 60 (Section 6.2)", e)
	}
	total, err := a.ExpectedTimeBound()
	if err != nil {
		t.Fatalf("ExpectedTimeBound: %v", err)
	}
	if !total.Equal(prob.FromInt(63)) {
		t.Errorf("expected-time bound = %v, want exactly 63 (Section 6.2)", total)
	}
}

func TestWorstExpectedTimeUnderBound(t *testing.T) {
	a := getAnalysisN3(t)
	worst, state, err := a.WorstExpectedTime()
	if err != nil {
		t.Fatalf("WorstExpectedTime: %v", err)
	}
	t.Logf("worst expected time to C at n=3, k=1: %.4f at %v", worst, state)
	if worst > 63 {
		t.Errorf("measured worst expected time %.4f exceeds the paper bound 63", worst)
	}
	if worst <= 0 {
		t.Errorf("measured worst expected time %.4f not positive", worst)
	}
}

func TestBestExpectedTimeBelowWorst(t *testing.T) {
	a := getAnalysisN3(t)
	best, err := a.BestExpectedTime()
	if err != nil {
		t.Fatal(err)
	}
	worst, _, err := a.WorstExpectedTime()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("expected-time spread at n=3, k=1: best %.4f, worst %.4f", best, worst)
	if best <= 0 || best > worst {
		t.Errorf("best %.4f outside (0, worst=%.4f]", best, worst)
	}
}

func TestQualitativeProgressBaseline(t *testing.T) {
	a := getAnalysisN3(t)
	total, almostSure := a.QualitativeProgress()
	if total == 0 {
		t.Fatal("no T states in the reachable space")
	}
	if total != almostSure {
		t.Errorf("qualitative progress: %d/%d T-states reach C almost surely; want all", almostSure, total)
	}
}

func TestSetRegistryAndStatements(t *testing.T) {
	a := getAnalysisN3(t)
	sets := a.Sets()
	for _, name := range []string{"T", "C", "RT", "F", "G", "P"} {
		if _, ok := sets[name]; !ok {
			t.Errorf("registry missing set %q", name)
		}
	}
	stmts := a.PaperStatements()
	if len(stmts) != len(PaperStatementOrigins()) {
		t.Errorf("statements and origins misaligned: %d vs %d", len(stmts), len(PaperStatementOrigins()))
	}
	if got := a.ComposedStatement().String(); !strings.Contains(got, "T --13,1/8--> C") {
		t.Errorf("composed statement renders as %q", got)
	}
}

// TestSetDefinitions pins the Section 6.2 set definitions on hand-built
// states.
func TestSetDefinitions(t *testing.T) {
	tests := []struct {
		spec              string
		t, c, rt, f, g, p bool
	}{
		{spec: "R R R"},
		{spec: "F R R", t: true, rt: true, f: true},
		{spec: "C W← R", t: true, c: true},
		{spec: "P R R", t: true, rt: true, p: true},
		// W← with right neighbour at F: committed, second resource (right)
		// not potentially controlled: good.
		{spec: "W← F R", t: true, rt: true, f: true, g: true},
		// W← with right neighbour pointing left (#←): not good via that
		// pair; and W← of process 1 has right neighbour R: good.
		{spec: "W← W← R", t: true, rt: true, g: true},
		// S→ with left neighbour S←: both committed toward each other;
		// process 0's second resource is held by... S← (proc 1) holds its
		// left = Res_0 = process 0's right... wait: S→ of process 0 holds
		// Res_0 already. Pick a clean non-good state instead:
		// W→ (wants Res_0 first) with left neighbour D→ (potentially
		// controls Res_2, process 0's second resource): not good; process
		// 2 at D→ is not committed.
		{spec: "W→ R D→", t: true, rt: true},
		// Exit states break RT.
		{spec: "F EF R", t: true},
		{spec: "F ES← R", t: true},
		// ER does not break RT.
		{spec: "F ER R", t: true, rt: true, f: true},
	}
	for _, tt := range tests {
		t.Run(tt.spec, func(t *testing.T) {
			s := mk(t, tt.spec)
			if got := InT(s); got != tt.t {
				t.Errorf("InT = %t, want %t", got, tt.t)
			}
			if got := InC(s); got != tt.c {
				t.Errorf("InC = %t, want %t", got, tt.c)
			}
			if got := InRT(s); got != tt.rt {
				t.Errorf("InRT = %t, want %t", got, tt.rt)
			}
			if got := InF(s); got != tt.f {
				t.Errorf("InF = %t, want %t", got, tt.f)
			}
			if got := InG(s); got != tt.g {
				t.Errorf("InG = %t, want %t", got, tt.g)
			}
			if got := InP(s); got != tt.p {
				t.Errorf("InP = %t, want %t", got, tt.p)
			}
		})
	}
}

// TestGoodProcessMatchesPaperDefinition spot-checks IsGood against the
// displayed definition of G for every reachable base state at n=3 by
// re-evaluating the raw formula.
func TestGoodProcessMatchesPaperDefinition(t *testing.T) {
	a := getAnalysisN3(t)
	raw := func(s State, i int) bool {
		l, lm, lp := s.Local(i), s.Local(i-1), s.Local(i+1)
		inSet := func(x Local, d Dir) bool {
			return x.PC == ER || x.PC == R || x.PC == F ||
				((x.PC == W || x.PC == S || x.PC == D) && x.U == d)
		}
		leftCase := (l.PC == W || l.PC == S) && l.U == Left && inSet(lp, Right)
		rightCase := (l.PC == W || l.PC == S) && l.U == Right && inSet(lm, Left)
		return leftCase || rightCase
	}
	for idx := 0; idx < a.Index.Len(); idx++ {
		s := a.Index.State(idx).Base
		for i := 0; i < s.N(); i++ {
			if IsGood(s, i) != raw(s, i) {
				t.Fatalf("IsGood(%v, %d) = %t disagrees with the paper formula", s, i, IsGood(s, i))
			}
		}
	}
}

// TestProductStateSpaceSizes records the enumeration sizes used in
// EXPERIMENTS.md.
func TestProductStateSpaceSizes(t *testing.T) {
	a := getAnalysisN3(t)
	if a.Index.Len() == 0 || a.Universe.Len() != a.Index.Len() {
		t.Errorf("universe %d != index %d", a.Universe.Len(), a.Index.Len())
	}
	t.Logf("n=3 k=1 product states: %d", a.Index.Len())
}

// TestLiftPredAgreement verifies that lifted predicates see only the base
// state.
func TestLiftPredAgreement(t *testing.T) {
	s := mk(t, "P R R")
	lifted := sched.LiftPred(InP)
	if !lifted(sched.State[State]{Base: s, Owes: 3, Left: 17}) {
		t.Error("lifted predicate ignored a P base state")
	}
}
