package dining

import (
	"testing"

	"repro/internal/prob"
)

// baseStatesN3 extracts the distinct reachable base states once.
func baseStatesN3(t *testing.T) []State {
	t.Helper()
	a := getAnalysisN3(t)
	seen := make(map[State]bool)
	var out []State
	for idx := 0; idx < a.Index.Len(); idx++ {
		b := a.Index.State(idx).Base
		if !seen[b] {
			seen[b] = true
			out = append(out, b)
		}
	}
	return out
}

// TestAppendixLemmasHold is the mechanized appendix: every lemma of
// A.4–A.13 must hold at every pivot on the 3-ring.
func TestAppendixLemmasHold(t *testing.T) {
	if testing.Short() {
		t.Skip("36 rigged-model enumerations; skipped with -short")
	}
	results, err := CheckAppendix(3, 1, baseStatesN3(t))
	if err != nil {
		t.Fatal(err)
	}
	wantCount := len(AppendixLemmas()) * 3
	if len(results) != wantCount {
		t.Fatalf("got %d results, want %d", len(results), wantCount)
	}
	for _, r := range results {
		t.Logf("%s", r)
		if r.Vacuous {
			t.Errorf("%s at i=%d is vacuous", r.Lemma.Name, r.Pivot)
			continue
		}
		if !r.Holds {
			t.Errorf("lemma fails: %s", r)
		}
	}
}

func TestRiggedModelForcesFirstFlip(t *testing.T) {
	m, err := NewRigged(3, Rig{Proc: 0, Dir: Left})
	if err != nil {
		t.Fatal(err)
	}
	start := m.StartFrom(AllAt(3, F))
	if !m.PendingAll(start) {
		t.Fatal("rig not pending at start")
	}

	// Process 0's first flip is deterministic left.
	moves := m.Moves(start, 0)
	if len(moves) != 1 || moves[0].Action != "flip_0" {
		t.Fatalf("moves = %v", moves)
	}
	next, ok := moves[0].Next.IsPoint()
	if !ok {
		t.Fatal("rigged flip is probabilistic")
	}
	if got := next.S.Local(0); got.PC != W || got.U != Left {
		t.Errorf("rigged flip lands at %v, want W←", got)
	}
	if next.Pending != 0 {
		t.Errorf("pending mask = %b after the rigged flip", next.Pending)
	}

	// Process 1 is unrigged: fair flip.
	if m.Moves(start, 1)[0].Next.Len() != 2 {
		t.Error("unrigged flip not fair")
	}

	// After the rig fires, process 0 flips fairly again.
	if got := m.Moves(next, 0); len(got) != 1 || got[0].Action != "wait_0" {
		t.Fatalf("post-rig moves = %v", got)
	}
}

func TestRiggedValidation(t *testing.T) {
	if _, err := NewRigged(3, Rig{Proc: 5, Dir: Left}); err == nil {
		t.Error("out-of-range rig accepted")
	}
	if _, err := NewRigged(3, Rig{Proc: 0, Dir: None}); err == nil {
		t.Error("direction-less rig accepted")
	}
	if _, err := NewRigged(3, Rig{Proc: 0, Dir: Left}, Rig{Proc: 0, Dir: Right}); err == nil {
		t.Error("duplicate rig accepted")
	}
	if _, err := NewRigged(1); err == nil {
		t.Error("single-process ring accepted")
	}
}

func TestRiggedUserMovesPreservePending(t *testing.T) {
	m, err := NewRigged(2, Rig{Proc: 0, Dir: Left})
	if err != nil {
		t.Fatal(err)
	}
	start := m.StartFrom(AllAt(2, R))
	tries := m.UserMoves(start, 0)
	if len(tries) != 1 {
		t.Fatalf("user moves = %v", tries)
	}
	next, _ := tries[0].Next.IsPoint()
	if next.Pending != start.Pending {
		t.Error("user move changed the pending mask")
	}
}

func TestLemmaHelpers(t *testing.T) {
	s := mk(t, "W→ S← ER")
	if !pcIn(s, 0, W, S) || pcIn(s, 0, R, F) {
		t.Error("pcIn misclassifies")
	}
	if !at(s, 1, S, Left) || at(s, 1, S, Right) {
		t.Error("at misclassifies")
	}
	if !hash(s, 0, Right) || hash(s, 0, Left) {
		t.Error("hash misclassifies")
	}
	if !erf(s, 2) || erf(s, 0) {
		t.Error("erf misclassifies")
	}
	if !ert(s, 1) || ert(s, 2) == false {
		t.Error("ert misclassifies")
	}
	if mod(-1, 3) != 2 || mod(4, 3) != 1 {
		t.Error("mod misbehaves")
	}
}

func TestLemmaResultString(t *testing.T) {
	lemma := AppendixLemmas()[0]
	holds := LemmaResult{Lemma: lemma, Pivot: 1, Holds: true, WorstProb: prob.One(), FromStates: 7}
	if got := holds.String(); got == "" {
		t.Error("empty render")
	}
	vac := LemmaResult{Lemma: lemma, Vacuous: true}
	if got := vac.String(); got == "" {
		t.Error("empty vacuous render")
	}
	fails := LemmaResult{Lemma: lemma, WorstProb: prob.Zero()}
	if got := fails.String(); got == "" {
		t.Error("empty failure render")
	}
}
