package liveness

import (
	"testing"

	"repro/internal/dining"
	"repro/internal/mdp"
	"repro/internal/sched"
)

// TestLehmannRabinBaseline runs the qualitative machinery on the real
// Lehmann–Rabin product (n = 2): almost-sure progress holds from every
// trying state, and the synthesized rank certificate — when the
// backward-induction synthesis succeeds — verifies and agrees.
func TestLehmannRabinBaseline(t *testing.T) {
	model := dining.MustNew(2)
	auto, err := sched.Product[dining.State](model, sched.Config{StepsPerWindow: 1})
	if err != nil {
		t.Fatal(err)
	}
	m, ix, err := mdp.FromAutomaton(auto, 0)
	if err != nil {
		t.Fatal(err)
	}
	target := ix.Mask(sched.LiftPred(dining.InC))
	from := ix.Mask(sched.LiftPred(dining.InT))

	rep, err := AlmostSure(m, target, from)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Fatalf("almost-sure progress fails on LR n=2: %+v", rep)
	}
	t.Logf("LR n=2: %d trying states, all reach C almost surely", rep.Considered)

	// The avoid-set is nonempty (the all-remainder states never reach C
	// if the user never issues try), so whole-space synthesis must fail…
	if _, ok := SynthesizeRank(m, target); ok {
		t.Log("synthesis unexpectedly covered the whole space (idle states included)")
	} else {
		// …which is the expected, informative outcome: rank certificates
		// in the Zuck–Pnueli style only exist for the progress fragment,
		// exactly the restriction their method needs and the paper's
		// quantitative statements make explicit via the source set U.
		avoid := m.Prob0E(target)
		n := 0
		for _, in := range avoid {
			if in {
				n++
			}
		}
		if n == 0 {
			t.Error("synthesis failed yet no avoid states exist")
		}
		t.Logf("synthesis stuck, as expected: %d avoid states (idle configurations)", n)
	}
}
