// Package liveness implements the qualitative baseline that the paper
// refines: Zuck–Pnueli-style almost-sure progress ("with probability 1,
// eventually ...") for randomized algorithms under all adversaries.
//
// Two flavors are provided. AlmostSure decides the property exactly by
// graph analysis of the MDP (complete but whole-space). VerifyRank checks
// a user-supplied progress-function certificate in the style of Zuck and
// Pnueli: a rank on states that every adversary choice has a chance to
// decrease. The certificate is sound but not complete; it mirrors how the
// original liveness proofs were written, and contrasts with the paper's
// quantitative method, which replaces "eventually, with probability 1" by
// explicit (t, p) bounds.
package liveness

import (
	"errors"
	"fmt"

	"repro/internal/mdp"
)

// Report summarizes an almost-sure reachability analysis.
type Report struct {
	// Holds reports whether every considered state reaches the target
	// with probability one under every adversary.
	Holds bool
	// Considered counts the states examined; Failing lists (up to a cap)
	// the indices of considered states where the property fails.
	Considered int
	Failing    []int
	// WitnessAvoid lists (up to a cap) states where some adversary avoids
	// the target forever — the end-component witnesses of failure.
	WitnessAvoid []int
}

const witnessCap = 16

// AlmostSure decides, for every state selected by from (nil means every
// state), whether the target is reached with probability one under every
// adversary.
func AlmostSure(m *mdp.MDP, target []bool, from []bool) (Report, error) {
	if len(target) != m.NumStates {
		return Report{}, fmt.Errorf("liveness: target mask has %d entries, want %d", len(target), m.NumStates)
	}
	if from != nil && len(from) != m.NumStates {
		return Report{}, fmt.Errorf("liveness: from mask has %d entries, want %d", len(from), m.NumStates)
	}
	one := m.MinProbOne(target)
	avoid := m.Prob0E(target)

	rep := Report{Holds: true}
	for s := 0; s < m.NumStates; s++ {
		if from != nil && !from[s] {
			continue
		}
		rep.Considered++
		if !one[s] {
			rep.Holds = false
			if len(rep.Failing) < witnessCap {
				rep.Failing = append(rep.Failing, s)
			}
		}
	}
	for s := 0; s < m.NumStates; s++ {
		if avoid[s] && len(rep.WitnessAvoid) < witnessCap {
			rep.WitnessAvoid = append(rep.WitnessAvoid, s)
		}
	}
	return rep, nil
}

// Errors of the certificate checker.
var (
	ErrRankShape    = errors.New("liveness: rank vector has the wrong length")
	ErrRankNegative = errors.New("liveness: rank must be nonnegative")
	ErrRankAtTarget = errors.New("liveness: target states must have rank zero")
	ErrRankZero     = errors.New("liveness: non-target state has rank zero")
	ErrRankStuck    = errors.New("liveness: choice with no rank-decreasing branch")
	ErrRankTerminal = errors.New("liveness: non-target terminal state")
)

// VerifyRank checks a progress-function certificate: rank must be zero
// exactly on target states, and every choice of every non-target state
// must have at least one branch of strictly smaller rank. If the check
// passes, the target is reached with probability one under every
// adversary (from every state), because from any state a run has, every
// |max rank| steps, probability at least delta^maxrank of riding
// descending branches to rank zero.
func VerifyRank(m *mdp.MDP, target []bool, rank []int) error {
	if len(rank) != m.NumStates || len(target) != m.NumStates {
		return ErrRankShape
	}
	for s := 0; s < m.NumStates; s++ {
		switch {
		case rank[s] < 0:
			return fmt.Errorf("%w: state %d has rank %d", ErrRankNegative, s, rank[s])
		case target[s] && rank[s] != 0:
			return fmt.Errorf("%w: state %d has rank %d", ErrRankAtTarget, s, rank[s])
		case !target[s] && rank[s] == 0:
			return fmt.Errorf("%w: state %d", ErrRankZero, s)
		}
		if target[s] {
			continue
		}
		if m.Terminal(s) {
			return fmt.Errorf("%w: state %d", ErrRankTerminal, s)
		}
		for ci, c := range m.Choices[s] {
			ok := false
			for _, tr := range c.Branches {
				if rank[tr.To] < rank[s] {
					ok = true
					break
				}
			}
			if !ok {
				return fmt.Errorf("%w: state %d choice %d (%s)", ErrRankStuck, s, ci, c.Label)
			}
		}
	}
	return nil
}

// SynthesizeRank attempts to build a rank certificate by backward
// induction: rank 0 on the target, then repeatedly rank r+1 for states all
// of whose choices have a branch into lower ranks. It returns ok = false
// when the construction gets stuck, which happens exactly when the
// almost-sure property fails... for the reachable fragment it covers. A
// synthesized rank always passes VerifyRank.
func SynthesizeRank(m *mdp.MDP, target []bool) (rank []int, ok bool) {
	const unranked = -1
	rank = make([]int, m.NumStates)
	for s := range rank {
		if target[s] {
			rank[s] = 0
		} else {
			rank[s] = unranked
		}
	}
	for r := 1; ; r++ {
		changed := false
		for s := 0; s < m.NumStates; s++ {
			if rank[s] != unranked || m.Terminal(s) {
				continue
			}
			qualifies := true
			for _, c := range m.Choices[s] {
				found := false
				for _, tr := range c.Branches {
					if rank[tr.To] != unranked && rank[tr.To] < r {
						found = true
						break
					}
				}
				if !found {
					qualifies = false
					break
				}
			}
			if qualifies {
				rank[s] = r
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for s := range rank {
		if rank[s] == unranked {
			return nil, false
		}
	}
	return rank, true
}
