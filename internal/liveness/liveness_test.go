package liveness

import (
	"errors"
	"testing"

	"repro/internal/mdp"
	"repro/internal/prob"
)

func mask(n int, targets ...int) []bool {
	out := make([]bool, n)
	for _, t := range targets {
		out[t] = true
	}
	return out
}

// geometricMDP: state 0 flips into target 1 or stays; state 2 is an
// adversary-controllable escape to a sink 3.
func geometricMDP() *mdp.MDP {
	flip := mdp.Choice{Label: "flip", Tick: true, Branches: []mdp.Tr{
		{To: 1, P: prob.Half()},
		{To: 0, P: prob.Half()},
	}}
	return &mdp.MDP{NumStates: 4, Choices: [][]mdp.Choice{
		{flip},
		nil,
		{
			{Label: "good", Branches: []mdp.Tr{{To: 1, P: prob.One()}}},
			{Label: "bad", Branches: []mdp.Tr{{To: 3, P: prob.One()}}},
		},
		{{Label: "stay", Branches: []mdp.Tr{{To: 3, P: prob.One()}}}},
	}}
}

func TestAlmostSure(t *testing.T) {
	m := geometricMDP()
	target := mask(4, 1)

	rep, err := AlmostSure(m, target, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Holds {
		t.Error("property holds despite the escape at state 2")
	}
	if rep.Considered != 4 {
		t.Errorf("Considered = %d, want 4", rep.Considered)
	}
	if len(rep.Failing) == 0 || len(rep.WitnessAvoid) == 0 {
		t.Errorf("no witnesses reported: %+v", rep)
	}

	// Restricted to state 0, the property holds.
	rep0, err := AlmostSure(m, target, mask(4, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !rep0.Holds || rep0.Considered != 1 {
		t.Errorf("restricted report = %+v", rep0)
	}
}

func TestAlmostSureShapeErrors(t *testing.T) {
	m := geometricMDP()
	if _, err := AlmostSure(m, mask(2, 1), nil); err == nil {
		t.Error("short target mask accepted")
	}
	if _, err := AlmostSure(m, mask(4, 1), mask(2, 0)); err == nil {
		t.Error("short from mask accepted")
	}
}

func TestVerifyRank(t *testing.T) {
	// Two-state geometric fragment only (no escape).
	m := &mdp.MDP{NumStates: 2, Choices: [][]mdp.Choice{
		{{Label: "flip", Branches: []mdp.Tr{{To: 1, P: prob.Half()}, {To: 0, P: prob.Half()}}}},
		nil,
	}}
	target := mask(2, 1)
	if err := VerifyRank(m, target, []int{1, 0}); err != nil {
		t.Errorf("valid certificate rejected: %v", err)
	}

	tests := []struct {
		name string
		rank []int
		want error
	}{
		{name: "wrong shape", rank: []int{1}, want: ErrRankShape},
		{name: "negative", rank: []int{-1, 0}, want: ErrRankNegative},
		{name: "target nonzero", rank: []int{2, 1}, want: ErrRankAtTarget},
		{name: "non-target zero", rank: []int{0, 0}, want: ErrRankZero},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := VerifyRank(m, target, tt.rank); !errors.Is(err, tt.want) {
				t.Errorf("err = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestVerifyRankStuckChoice(t *testing.T) {
	// State 0's "spin" choice never decreases rank.
	m := &mdp.MDP{NumStates: 2, Choices: [][]mdp.Choice{
		{
			{Label: "go", Branches: []mdp.Tr{{To: 1, P: prob.One()}}},
			{Label: "spin", Branches: []mdp.Tr{{To: 0, P: prob.One()}}},
		},
		nil,
	}}
	if err := VerifyRank(m, mask(2, 1), []int{1, 0}); !errors.Is(err, ErrRankStuck) {
		t.Errorf("err = %v, want ErrRankStuck", err)
	}
}

func TestVerifyRankTerminal(t *testing.T) {
	m := &mdp.MDP{NumStates: 2, Choices: [][]mdp.Choice{
		nil, // non-target terminal
		nil,
	}}
	if err := VerifyRank(m, mask(2, 1), []int{1, 0}); !errors.Is(err, ErrRankTerminal) {
		t.Errorf("err = %v, want ErrRankTerminal", err)
	}
}

func TestSynthesizeRank(t *testing.T) {
	t.Run("succeeds on almost-sure system", func(t *testing.T) {
		// 0 flips toward 1; 2 cycles through 0.
		m := &mdp.MDP{NumStates: 3, Choices: [][]mdp.Choice{
			{{Label: "flip", Branches: []mdp.Tr{{To: 1, P: prob.Half()}, {To: 2, P: prob.Half()}}}},
			nil,
			{{Label: "back", Branches: []mdp.Tr{{To: 0, P: prob.One()}}}},
		}}
		target := mask(3, 1)
		rank, ok := SynthesizeRank(m, target)
		if !ok {
			t.Fatal("synthesis failed on an almost-sure system")
		}
		if err := VerifyRank(m, target, rank); err != nil {
			t.Errorf("synthesized rank fails verification: %v", err)
		}
	})
	t.Run("fails when escape exists", func(t *testing.T) {
		m := geometricMDP()
		if _, ok := SynthesizeRank(m, mask(4, 1)); ok {
			t.Error("synthesis succeeded despite the escape")
		}
	})
}

// TestSynthesisAgreesWithAlmostSure cross-validates the two analyses on a
// family of pseudo-random MDPs: when synthesis succeeds, the property
// holds everywhere.
func TestSynthesisAgreesWithAlmostSure(t *testing.T) {
	for seed := uint32(1); seed <= 300; seed++ {
		s := seed
		next := func(n int) int { s = s*1664525 + 1013904223; return int(s>>16) % n }
		const n = 5
		m := &mdp.MDP{NumStates: n, Choices: make([][]mdp.Choice, n)}
		for st := 0; st < n-1; st++ {
			for c := 0; c <= next(2); c++ {
				a, b := next(n), next(n)
				var branches []mdp.Tr
				if a == b {
					branches = []mdp.Tr{{To: a, P: prob.One()}}
				} else {
					branches = []mdp.Tr{{To: a, P: prob.Half()}, {To: b, P: prob.Half()}}
				}
				m.Choices[st] = append(m.Choices[st], mdp.Choice{Label: "c", Branches: branches})
			}
		}
		target := mask(n, n-1)
		rank, ok := SynthesizeRank(m, target)
		rep, err := AlmostSure(m, target, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			if err := VerifyRank(m, target, rank); err != nil {
				t.Fatalf("seed %d: synthesized rank invalid: %v", seed, err)
			}
			if !rep.Holds {
				t.Fatalf("seed %d: certificate exists but property fails (unsound!)", seed)
			}
		}
	}
}
