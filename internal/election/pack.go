package election

import (
	"encoding/binary"

	"repro/internal/sched"
)

// PackState implements sched.Packer: a State is one byte per process
// (status | coin<<4) plus the process count, so the whole value copies
// losslessly into three machine words. The encoding is injective on all
// states — it is a byte-for-byte image of the struct.
func (m *Model) PackState(s State) sched.Packed {
	var p sched.Packed
	p[0] = binary.LittleEndian.Uint64(s.procs[0:8])
	p[1] = binary.LittleEndian.Uint64(s.procs[8:16])
	p[2] = uint64(s.n)
	return p
}

var _ sched.Packer[State] = (*Model)(nil)
