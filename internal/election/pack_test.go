package election

import (
	"math/rand"
	"testing"

	"repro/internal/pa"
	"repro/internal/sched"
)

// TestPackStateInjective random-walks the protocol (random enabled move,
// random coin outcome) and checks that no two distinct visited states
// share a packed encoding.
func TestPackStateInjective(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8, 16} {
		m := MustNew(n)
		rng := rand.New(rand.NewSource(int64(n)))
		seen := map[sched.Packed]State{}
		check := func(s State) {
			p := m.PackState(s)
			if prev, ok := seen[p]; ok {
				if prev != s {
					t.Fatalf("n=%d: states %v and %v pack to the same %v", n, prev, s, p)
				}
				return
			}
			seen[p] = s
		}
		for trial := 0; trial < 200; trial++ {
			s := m.Start()[0]
			check(s)
			for step := 0; step < 100; step++ {
				var steps []pa.Step[State]
				for i := 0; i < n; i++ {
					steps = append(steps, m.Moves(s, i)...)
				}
				if len(steps) == 0 {
					break
				}
				next := steps[rng.Intn(len(steps))].Next
				sup := next.Support()
				s = sup[rng.Intn(len(sup))]
				check(s)
			}
		}
		if len(seen) < 4*n {
			t.Fatalf("n=%d: walk visited only %d states; the test lost its teeth", n, len(seen))
		}
	}
}
