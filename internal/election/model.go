// Package election is a second case study for the proof method of Lynch,
// Saias and Segala (PODC 1994), addressing the paper's closing remark that
// "it is desirable that the general model and this technique be used for
// the analysis of other algorithms".
//
// The algorithm is symmetric randomized leader election by coin flipping:
// every active process flips a fair coin each round; if at least one
// process flips heads, the tails processes drop out; a process that is the
// unique heads becomes the leader. Rounds repeat until a leader emerges.
// Under the Unit-Time assumption a round takes at most time 2 (all flips
// within time 1, then the resolution step within 1 more), which yields
// arrow statements
//
//	Fresh_k --2, 1-2^(1-k)--> Elected ∪ Fresh_{<k}   (k >= 2)
//
// where Fresh_k is "k processes active at a round boundary". Composing
// them with Proposition 3.2 and Theorem 3.4, exactly as the paper does for
// Lehmann–Rabin, bounds the election time from n processes.
package election

import (
	"fmt"
	"strings"

	"repro/internal/pa"
	"repro/internal/prob"
	"repro/internal/sched"
)

// Status is a process's role in the protocol.
type Status uint8

// Status values.
const (
	// Active processes are still competing.
	Active Status = iota
	// Eliminated processes flipped tails in a round that had heads.
	Eliminated
	// Leader is the unique winner.
	Leader
)

// String returns a one-letter rendering.
func (st Status) String() string {
	switch st {
	case Active:
		return "A"
	case Eliminated:
		return "-"
	case Leader:
		return "L"
	default:
		return "?"
	}
}

// Coin is a process's coin posture within the current round.
type Coin uint8

// Coin values.
const (
	// NotFlipped means the process has not yet flipped this round.
	NotFlipped Coin = iota
	// Heads and Tails record the flip outcome, pending resolution.
	Heads
	Tails
)

// String returns the coin rendering used in state dumps.
func (c Coin) String() string {
	switch c {
	case NotFlipped:
		return "."
	case Heads:
		return "H"
	case Tails:
		return "T"
	default:
		return "?"
	}
}

// State is a global protocol state: one (status, coin) pair per process,
// packed one byte per process.
type State struct {
	n     uint8
	procs [sched.MaxProcs]uint8
}

// NewState builds a state; statuses and coins are index-aligned.
func NewState(statuses []Status, coins []Coin) (State, error) {
	if len(statuses) != len(coins) {
		return State{}, fmt.Errorf("election: %d statuses vs %d coins", len(statuses), len(coins))
	}
	if len(statuses) < 2 || len(statuses) > sched.MaxProcs {
		return State{}, fmt.Errorf("election: %d processes outside 2..%d", len(statuses), sched.MaxProcs)
	}
	var s State
	s.n = uint8(len(statuses))
	for i := range statuses {
		coin := coins[i]
		if statuses[i] != Active {
			coin = NotFlipped // canonical: only active processes hold coins
		}
		s.procs[i] = uint8(statuses[i]) | uint8(coin)<<4
	}
	return s, nil
}

// FreshStart returns the all-active, none-flipped state for n processes.
func FreshStart(n int) (State, error) {
	statuses := make([]Status, n)
	coins := make([]Coin, n)
	return NewState(statuses, coins)
}

// N returns the number of processes.
func (s State) N() int { return int(s.n) }

// Status returns process i's status.
func (s State) Status(i int) Status { return Status(s.procs[i] & 0xF) }

// Coin returns process i's coin posture.
func (s State) Coin(i int) Coin { return Coin(s.procs[i] >> 4) }

func (s State) withProc(i int, st Status, c Coin) State {
	if st != Active {
		c = NotFlipped
	}
	s.procs[i] = uint8(st) | uint8(c)<<4
	return s
}

// ActiveCount returns the number of active processes.
func (s State) ActiveCount() int {
	count := 0
	for i := 0; i < s.N(); i++ {
		if s.Status(i) == Active {
			count++
		}
	}
	return count
}

// HasLeader reports whether a leader has been elected.
func (s State) HasLeader() bool {
	for i := 0; i < s.N(); i++ {
		if s.Status(i) == Leader {
			return true
		}
	}
	return false
}

// AllFlipped reports whether every active process has flipped this round.
func (s State) AllFlipped() bool {
	for i := 0; i < s.N(); i++ {
		if s.Status(i) == Active && s.Coin(i) == NotFlipped {
			return false
		}
	}
	return true
}

// IsFresh reports whether the state is at a round boundary: no leader and
// no coins on the table.
func (s State) IsFresh() bool {
	if s.HasLeader() {
		return false
	}
	for i := 0; i < s.N(); i++ {
		if s.Status(i) == Active && s.Coin(i) != NotFlipped {
			return false
		}
	}
	return true
}

// String renders the state, e.g. "[A:H A:. - L]".
func (s State) String() string {
	parts := make([]string, s.N())
	for i := range parts {
		switch st := s.Status(i); st {
		case Active:
			parts[i] = "A:" + s.Coin(i).String()
		default:
			parts[i] = st.String()
		}
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// resolve applies the round rule atomically: with at least one heads, the
// tails drop out, and a unique heads becomes leader; either way the coins
// are cleared.
func (s State) resolve() State {
	headsCount := 0
	for i := 0; i < s.N(); i++ {
		if s.Status(i) == Active && s.Coin(i) == Heads {
			headsCount++
		}
	}
	next := s
	for i := 0; i < s.N(); i++ {
		if s.Status(i) != Active {
			continue
		}
		switch {
		case headsCount == 0:
			next = next.withProc(i, Active, NotFlipped)
		case s.Coin(i) == Tails:
			next = next.withProc(i, Eliminated, NotFlipped)
		case headsCount == 1:
			next = next.withProc(i, Leader, NotFlipped)
		default:
			next = next.withProc(i, Active, NotFlipped)
		}
	}
	return next
}

// Model is the election protocol as a sched.Model.
type Model struct {
	n int
}

var _ sched.Model[State] = (*Model)(nil)

// New returns the n-process model, n in 2..sched.MaxProcs.
func New(n int) (*Model, error) {
	if n < 2 || n > sched.MaxProcs {
		return nil, fmt.Errorf("election: %d processes outside 2..%d", n, sched.MaxProcs)
	}
	return &Model{n: n}, nil
}

// MustNew is like New but panics on invalid input.
func MustNew(n int) *Model {
	m, err := New(n)
	if err != nil {
		panic(err)
	}
	return m
}

// Name implements sched.Model.
func (m *Model) Name() string { return fmt.Sprintf("coin-election(n=%d)", m.n) }

// NumProcs implements sched.Model.
func (m *Model) NumProcs() int { return m.n }

// Start implements sched.Model.
func (m *Model) Start() []State {
	s, err := FreshStart(m.n)
	if err != nil {
		panic(err) // n validated by New
	}
	return []State{s}
}

// FlipAction returns the flip action name of process i.
func FlipAction(i int) string { return fmt.Sprintf("flip_%d", i) }

// Moves implements sched.Model. An active process flips while it has no
// coin down; once every active process has flipped, any of them may
// trigger the (atomic, deterministic) round resolution.
func (m *Model) Moves(s State, i int) []pa.Step[State] {
	if s.Status(i) != Active {
		return nil
	}
	if s.Coin(i) == NotFlipped {
		return []pa.Step[State]{{
			Action: FlipAction(i),
			Next: prob.MustUniform(
				s.withProc(i, Active, Heads),
				s.withProc(i, Active, Tails),
			),
		}}
	}
	if s.AllFlipped() {
		return []pa.Step[State]{{
			Action: fmt.Sprintf("resolve_%d", i),
			Next:   prob.Point(s.resolve()),
		}}
	}
	// Flipped, waiting for slower processes: no enabled action, hence no
	// unit-time obligation.
	return nil
}

// UserMoves implements sched.Model: the protocol has no user actions.
func (m *Model) UserMoves(State, int) []pa.Step[State] { return nil }
