package election

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// TestElectionUnderSimulation cross-validates the election model with the
// dense-time Monte Carlo engine at sizes beyond exact enumeration: every
// run elects a leader, within the derived per-level bound Σ 2/p_k.
func TestElectionUnderSimulation(t *testing.T) {
	for _, n := range []int{3, 6, 10} {
		model := MustNew(n)
		a := Analysis{N: n} // only for the bound formula
		bound, err := a.ExpectedTimeBound()
		if err != nil {
			t.Fatal(err)
		}
		boundF := bound.Float64()

		rng := rand.New(rand.NewSource(int64(n)))
		sum, err := sim.EstimateTimeToTarget[State](model,
			func() sim.Policy[State] { return sim.Slowest[State]() },
			State.HasLeader, 300, sim.Options[State]{}, rng)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		mean, err := sum.Mean()
		if err != nil {
			t.Fatal(err)
		}
		maxT, err := sum.Max()
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("n=%d: mean election time %.3f (max %.3f), derived bound %.3f", n, mean, maxT, boundF)
		if mean > boundF {
			t.Errorf("n=%d: mean %.3f exceeds the derived expected-time bound %.3f", n, mean, boundF)
		}
	}
}

// TestElectionRandomPolicy exercises the random scheduler path (including
// branch randomization) on the election model.
func TestElectionRandomPolicy(t *testing.T) {
	model := MustNew(4)
	rng := rand.New(rand.NewSource(9))
	res, err := sim.RunOnce[State](model, sim.Random[State](0), State.HasLeader,
		sim.Options[State]{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatalf("random policy never elected: %+v", res)
	}
	if !res.Final.HasLeader() {
		t.Errorf("final state %v has no leader", res.Final)
	}
}
