package election

import (
	"testing"

	"repro/internal/prob"
	"repro/internal/sched"
)

func st(t *testing.T, statuses []Status, coins []Coin) State {
	t.Helper()
	s, err := NewState(statuses, coins)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewStateValidation(t *testing.T) {
	if _, err := NewState([]Status{Active}, []Coin{NotFlipped, Heads}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := NewState([]Status{Active}, []Coin{NotFlipped}); err == nil {
		t.Error("single process accepted")
	}
	// Coins are canonicalized for non-active processes.
	s := st(t, []Status{Active, Eliminated}, []Coin{Heads, Tails})
	if s.Coin(1) != NotFlipped {
		t.Errorf("eliminated process keeps coin %v", s.Coin(1))
	}
}

func TestStateAccessors(t *testing.T) {
	s := st(t, []Status{Active, Active, Eliminated, Leader},
		[]Coin{Heads, NotFlipped, NotFlipped, NotFlipped})
	if s.N() != 4 {
		t.Errorf("N = %d", s.N())
	}
	if s.ActiveCount() != 2 {
		t.Errorf("ActiveCount = %d, want 2", s.ActiveCount())
	}
	if !s.HasLeader() {
		t.Error("leader not detected")
	}
	if s.AllFlipped() {
		t.Error("AllFlipped with a pending coin")
	}
	if s.IsFresh() {
		t.Error("IsFresh with a leader and a coin down")
	}
	if got, want := s.String(), "[A:H A:. - L]"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestFreshStart(t *testing.T) {
	s, err := FreshStart(3)
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsFresh() || s.ActiveCount() != 3 || s.HasLeader() {
		t.Errorf("fresh start = %v", s)
	}
}

func TestResolveRule(t *testing.T) {
	tests := []struct {
		name     string
		statuses []Status
		coins    []Coin
		want     string
	}{
		{
			name:     "unique heads becomes leader",
			statuses: []Status{Active, Active, Active},
			coins:    []Coin{Heads, Tails, Tails},
			want:     "[L - -]",
		},
		{
			name:     "several heads survive",
			statuses: []Status{Active, Active, Active},
			coins:    []Coin{Heads, Heads, Tails},
			want:     "[A:. A:. -]",
		},
		{
			name:     "all tails retry",
			statuses: []Status{Active, Active, Active},
			coins:    []Coin{Tails, Tails, Tails},
			want:     "[A:. A:. A:.]",
		},
		{
			name:     "all heads retry",
			statuses: []Status{Active, Active},
			coins:    []Coin{Heads, Heads},
			want:     "[A:. A:.]",
		},
		{
			name:     "eliminated processes unaffected",
			statuses: []Status{Active, Eliminated, Active},
			coins:    []Coin{Heads, NotFlipped, Tails},
			want:     "[L - -]",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := st(t, tt.statuses, tt.coins).resolve()
			if got.String() != tt.want {
				t.Errorf("resolve = %s, want %s", got, tt.want)
			}
		})
	}
}

func TestMoves(t *testing.T) {
	m := MustNew(3)

	t.Run("unflipped active flips", func(t *testing.T) {
		s := m.Start()[0]
		moves := m.Moves(s, 0)
		if len(moves) != 1 || moves[0].Action != "flip_0" {
			t.Fatalf("moves = %v", moves)
		}
		if moves[0].Next.Len() != 2 {
			t.Errorf("flip outcomes = %d, want 2", moves[0].Next.Len())
		}
		for _, o := range moves[0].Next.Outcomes() {
			if !o.Prob.Equal(prob.Half()) {
				t.Errorf("flip prob = %v", o.Prob)
			}
		}
	})
	t.Run("flipped process waits for the round", func(t *testing.T) {
		s := st(t, []Status{Active, Active, Active}, []Coin{Heads, NotFlipped, NotFlipped})
		if got := m.Moves(s, 0); got != nil {
			t.Errorf("moves = %v, want none while others flip", got)
		}
	})
	t.Run("resolution after all flips", func(t *testing.T) {
		s := st(t, []Status{Active, Active, Active}, []Coin{Heads, Tails, Tails})
		moves := m.Moves(s, 0)
		if len(moves) != 1 || moves[0].Action != "resolve_0" {
			t.Fatalf("moves = %v", moves)
		}
		next, _ := moves[0].Next.IsPoint()
		if !next.HasLeader() {
			t.Errorf("resolution result %v has no leader", next)
		}
	})
	t.Run("non-active processes have no moves", func(t *testing.T) {
		s := st(t, []Status{Leader, Eliminated, Active}, []Coin{NotFlipped, NotFlipped, NotFlipped})
		if m.Moves(s, 0) != nil || m.Moves(s, 1) != nil {
			t.Error("leader or eliminated process has moves")
		}
	})
	t.Run("no user moves", func(t *testing.T) {
		if m.UserMoves(m.Start()[0], 0) != nil {
			t.Error("unexpected user moves")
		}
	})
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1); err == nil {
		t.Error("New(1) accepted")
	}
	if _, err := New(sched.MaxProcs + 1); err == nil {
		t.Error("oversized New accepted")
	}
}

func TestRoundSuccessProb(t *testing.T) {
	tests := []struct {
		k    int
		want string
	}{
		{k: 2, want: "1/2"},
		{k: 3, want: "3/4"},
		{k: 4, want: "7/8"},
	}
	for _, tt := range tests {
		if got := RoundSuccessProb(tt.k).String(); got != tt.want {
			t.Errorf("RoundSuccessProb(%d) = %s, want %s", tt.k, got, tt.want)
		}
	}
}

// TestRoundInvariants explores the full digitized product at n = 3 and
// checks protocol invariants in every reachable state: at most one leader,
// the active count never reaches one without a leader at round boundaries,
// and coins only sit with active processes.
func TestRoundInvariants(t *testing.T) {
	model := MustNew(3)
	auto, err := sched.Product[State](model, sched.Config{StepsPerWindow: 1})
	if err != nil {
		t.Fatal(err)
	}
	states, err := auto.Reachable(0)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("reachable product states (n=3, k=1): %d", len(states))
	for _, ps := range states {
		s := ps.Base
		leaders := 0
		for i := 0; i < s.N(); i++ {
			if s.Status(i) == Leader {
				leaders++
			}
			if s.Status(i) != Active && s.Coin(i) != NotFlipped {
				t.Fatalf("non-active process holds a coin in %v", s)
			}
		}
		if leaders > 1 {
			t.Fatalf("two leaders in %v", s)
		}
		if s.IsFresh() && s.ActiveCount() == 1 {
			t.Fatalf("lone active process without leader in %v", s)
		}
	}
}
