package election

// This file states and composes the arrow statements of the election
// protocol in the proof calculus of package core, mirroring what
// internal/dining does for the paper's own case study.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mdp"
	"repro/internal/prob"
	"repro/internal/sched"
	"repro/internal/sim"
)

// PState is a scheduler-product state of the election protocol.
type PState = sched.State[State]

// Analysis is an enumerated election instance ready for checking.
type Analysis struct {
	N, K     int
	Model    *Model
	MDP      *mdp.MDP
	Index    *mdp.Index[PState]
	Universe *core.Universe[PState]
	Schema   core.SchemaInfo
}

// NewAnalysis enumerates the n-process protocol under the
// k-steps-per-window digitization with the dense enumerator. For large
// instances use NewAnalysisOpts, which explores on the fly into the
// sparse form.
func NewAnalysis(n, k, limit int) (*Analysis, error) {
	model, err := New(n)
	if err != nil {
		return nil, err
	}
	auto, err := sched.Product[State](model, sched.Config{StepsPerWindow: k})
	if err != nil {
		return nil, err
	}
	m, ix, err := mdp.FromAutomaton(auto, limit)
	if err != nil {
		return nil, fmt.Errorf("election: enumerating product: %w", err)
	}
	return newAnalysis(n, k, model, m, ix), nil
}

// Opts configures on-the-fly enumeration of the product space.
type Opts struct {
	// Limit bounds the number of product states (<= 0 for unlimited).
	Limit int
	// Workers sets the exploration and solver parallelism: 0 means one
	// worker per CPU. Any value yields identical results.
	Workers int
	// MemBudget bounds the explorer's resident bytes (<= 0 for
	// unlimited); exceeding it fails with *mdp.BudgetError.
	MemBudget int64
}

// NewAnalysisOpts is NewAnalysis built by the on-the-fly CSR explorer:
// the model is compiled so exploration shares the Monte Carlo engine's
// sharded transition cache, product states are interned by their packed
// fingerprints, and the resulting MDP carries only the sparse form, with
// every solver running opts.Workers wide. The state numbering — and
// therefore every analysis result — is identical to NewAnalysis.
func NewAnalysisOpts(n, k int, opts Opts) (*Analysis, error) {
	model, err := New(n)
	if err != nil {
		return nil, err
	}
	compiled := sim.Compile[State](model)
	auto, err := sched.Product[State](compiled, sched.Config{StepsPerWindow: k})
	if err != nil {
		return nil, err
	}
	eo := mdp.ExploreOptions{Workers: opts.Workers, MemBudget: opts.MemBudget, Limit: opts.Limit}
	var (
		m  *mdp.MDP
		ix *mdp.Index[PState]
	)
	if pack, ok := sched.ProductPacker[State](model); ok {
		m, ix, err = mdp.ExplorePacked(auto, pack, eo)
	} else {
		m, ix, err = mdp.Explore(auto, eo)
	}
	if err != nil {
		return nil, fmt.Errorf("election: exploring product: %w", err)
	}
	return newAnalysis(n, k, model, m, ix), nil
}

func newAnalysis(n, k int, model *Model, m *mdp.MDP, ix *mdp.Index[PState]) *Analysis {
	states := make([]PState, ix.Len())
	for i := range states {
		states[i] = ix.State(i)
	}
	return &Analysis{
		N:        n,
		K:        k,
		Model:    model,
		MDP:      m,
		Index:    ix,
		Universe: core.NewUniverse(states),
		Schema:   core.UnitTimeSchema(k),
	}
}

// Elected is the target set: a leader exists.
func (a *Analysis) Elected() core.Set[PState] {
	return core.NewSet("Elected", sched.LiftPred(State.HasLeader))
}

// Fresh returns the set Fresh_k: exactly k processes active, no leader, no
// coins on the table (a round boundary).
func (a *Analysis) Fresh(k int) core.Set[PState] {
	return core.NewSet(fmt.Sprintf("Fresh_%d", k), sched.LiftPred(func(s State) bool {
		return s.IsFresh() && s.ActiveCount() == k
	}))
}

// RoundSuccessProb returns p_k = 1 - 2^(1-k): the probability that a round
// with k >= 2 active processes strictly reduces the active set (including
// electing a leader) — failure is all-heads or all-tails.
func RoundSuccessProb(k int) prob.Rat {
	return prob.One().Sub(prob.NewRat(2, 1<<uint(k)))
}

// LevelStatement returns Fresh_k --2, p_k--> Elected ∪ Fresh_{k-1} ∪ ... ∪
// Fresh_1 for k >= 2.
func (a *Analysis) LevelStatement(k int) core.Statement[PState] {
	sets := []core.Set[PState]{a.Elected()}
	for j := k - 1; j >= 1; j-- {
		sets = append(sets, a.Fresh(j))
	}
	return core.Statement[PState]{
		From:   a.Fresh(k),
		To:     core.Union(sets...),
		Time:   prob.FromInt(2),
		Prob:   RoundSuccessProb(k),
		Schema: a.Schema,
	}
}

// LevelStatements returns the chain for k = n down to 2.
func (a *Analysis) LevelStatements() []core.Statement[PState] {
	out := make([]core.Statement[PState], 0, a.N-1)
	for k := a.N; k >= 2; k-- {
		out = append(out, a.LevelStatement(k))
	}
	return out
}

// CheckLevels checks every level statement against the enumerated model.
func (a *Analysis) CheckLevels() ([]core.CheckResult[PState], error) {
	return core.CheckAll(a.MDP, a.Index, a.LevelStatements()...)
}

// BuildProof composes the level statements, Prop 3.2-weakening each level
// so the chain connects, into
//
//	Fresh_n --2(n-1), Π p_k--> Elected.
func (a *Analysis) BuildProof() (*core.Proof[PState], error) {
	elected := a.Elected()

	// down_k = Elected ∪ Fresh_k ∪ ... ∪ Fresh_1.
	down := func(k int) core.Set[PState] {
		sets := []core.Set[PState]{elected}
		for j := k; j >= 1; j-- {
			sets = append(sets, a.Fresh(j))
		}
		return core.Union(sets...)
	}

	var chain []*core.Proof[PState]
	for k := a.N; k >= 2; k-- {
		premise, _, err := core.CheckedPremise(a.MDP, a.Index, a.LevelStatement(k),
			fmt.Sprintf("round rule at %d active processes", k))
		if err != nil {
			return nil, err
		}
		step := premise
		if k < a.N {
			// Adjoin the already-passed levels so the chain connects:
			// From becomes down_k, To stays extensionally down_{k-1}.
			step, err = core.Weaken(premise, down(k-1))
			if err != nil {
				return nil, err
			}
			step, err = core.RenameFrom(a.Universe, step, down(k))
			if err != nil {
				return nil, err
			}
			step, err = core.RenameTo(a.Universe, step, down(k-1))
			if err != nil {
				return nil, err
			}
		}
		chain = append(chain, step)
	}
	composed, err := core.ComposeChain(a.Universe, chain...)
	if err != nil {
		return nil, err
	}
	// down_1 = Elected over the reachable universe: a lone active process
	// at a round boundary is unreachable from a fresh start with n >= 2
	// (a round that eliminates everyone else crowns the survivor).
	return core.RenameTo(a.Universe, composed, elected)
}

// ExpectedTimeBound bounds the expected election time from Fresh_n by
// summing the per-level retry loops: Σ_{k=2..n} 2/p_k.
func (a *Analysis) ExpectedTimeBound() (prob.Rat, error) {
	total := prob.Zero()
	for k := 2; k <= a.N; k++ {
		loop := core.RetryLoop{Phases: []core.Phase{{
			Name: fmt.Sprintf("level %d", k),
			Time: prob.FromInt(2),
			Prob: RoundSuccessProb(k),
		}}}
		e, err := loop.ExpectedTime()
		if err != nil {
			return prob.Rat{}, err
		}
		total = total.Add(e)
	}
	return total, nil
}

// WorstExpectedTime computes the measured counterpart: the supremum over
// digitized adversaries of the expected time to elect a leader from the
// fresh start.
func (a *Analysis) WorstExpectedTime() (float64, error) {
	target := a.Index.Mask(sched.LiftPred(State.HasLeader))
	values, err := a.MDP.MaxExpectedTicks(target, mdp.VIConfig{})
	if err != nil {
		return 0, err
	}
	fresh, err := FreshStart(a.N)
	if err != nil {
		return 0, err
	}
	worst := -1.0
	for i := 0; i < a.Index.Len(); i++ {
		ps := a.Index.State(i)
		if ps.Base != fresh {
			continue
		}
		if values[i] > worst {
			worst = values[i]
		}
	}
	if worst < 0 {
		return 0, core.ErrEmptyFrom
	}
	return worst, nil
}
