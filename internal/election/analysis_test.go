package election

import (
	"strings"
	"testing"

	"repro/internal/prob"
)

var analysisN3 *Analysis

func getAnalysisN3(t *testing.T) *Analysis {
	t.Helper()
	if analysisN3 == nil {
		a, err := NewAnalysis(3, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		analysisN3 = a
	}
	return analysisN3
}

func TestLevelStatementsHold(t *testing.T) {
	a := getAnalysisN3(t)
	results, err := a.CheckLevels()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2 (levels 3 and 2)", len(results))
	}
	for _, r := range results {
		t.Logf("%s", r)
		if !r.Holds {
			t.Errorf("level statement fails: %s", r)
		}
	}
	// The round probabilities should be measured exactly: the adversary
	// cannot influence coin outcomes, only interleavings.
	if !results[0].WorstProb.Equal(prob.MustParseRat("3/4")) {
		t.Errorf("level 3 worst-case P = %v, want exactly 3/4", results[0].WorstProb)
	}
	if !results[1].WorstProb.Equal(prob.Half()) {
		t.Errorf("level 2 worst-case P = %v, want exactly 1/2", results[1].WorstProb)
	}
}

func TestBuildProof(t *testing.T) {
	a := getAnalysisN3(t)
	proof, err := a.BuildProof()
	if err != nil {
		t.Fatalf("BuildProof: %v", err)
	}
	stmt := proof.Stmt
	if stmt.From.Name != "Fresh_3" || stmt.To.Name != "Elected" {
		t.Errorf("composed endpoints: %s", stmt)
	}
	if !stmt.Time.Equal(prob.FromInt(4)) {
		t.Errorf("composed time = %v, want 4 (= 2(n-1))", stmt.Time)
	}
	// Π p_k = 3/4 · 1/2 = 3/8.
	if !stmt.Prob.Equal(prob.MustParseRat("3/8")) {
		t.Errorf("composed prob = %v, want 3/8", stmt.Prob)
	}
	rendered := proof.Render()
	for _, want := range []string{"Fresh_3", "Elected", "compose (Thm 3.4)"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("rendered proof missing %q:\n%s", want, rendered)
		}
	}
}

func TestExpectedTimeBound(t *testing.T) {
	a := getAnalysisN3(t)
	bound, err := a.ExpectedTimeBound()
	if err != nil {
		t.Fatal(err)
	}
	// Levels: k=2 gives 2/(1/2) = 4; k=3 gives 2/(3/4) = 8/3.
	want := prob.MustParseRat("20/3")
	if !bound.Equal(want) {
		t.Errorf("expected-time bound = %v, want %v", bound, want)
	}

	worst, err := a.WorstExpectedTime()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("worst expected election time at n=3, k=1: %.4f (bound %v ≈ %.4f)",
		worst, bound, bound.Float64())
	if worst > bound.Float64() {
		t.Errorf("measured worst expected time %.4f exceeds the derived bound %v", worst, bound)
	}
	if worst <= 0 {
		t.Errorf("worst expected time %.4f not positive", worst)
	}
}

// TestBuildProofN5 scales the second case study: five levels compose into
// Fresh_5 --8, Π p_k--> Elected with every premise checked exactly.
func TestBuildProofN5(t *testing.T) {
	if testing.Short() {
		t.Skip("n=5 election enumeration skipped with -short")
	}
	a, err := NewAnalysis(5, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := a.BuildProof()
	if err != nil {
		t.Fatal(err)
	}
	if !proof.Stmt.Time.Equal(prob.FromInt(8)) {
		t.Errorf("composed time = %v, want 8", proof.Stmt.Time)
	}
	// Π p_k = 15/16 · 7/8 · 3/4 · 1/2 = 315/1024.
	if !proof.Stmt.Prob.Equal(prob.MustParseRat("315/1024")) {
		t.Errorf("composed prob = %v, want 315/1024", proof.Stmt.Prob)
	}
	bound, err := a.ExpectedTimeBound()
	if err != nil {
		t.Fatal(err)
	}
	worst, err := a.WorstExpectedTime()
	if err != nil {
		t.Fatal(err)
	}
	if worst > bound.Float64() {
		t.Errorf("measured worst %.4f exceeds derived bound %v", worst, bound)
	}
}

func TestFreshSetsPartitionRoundBoundaries(t *testing.T) {
	a := getAnalysisN3(t)
	elected := a.Elected()
	fresh2 := a.Fresh(2)
	fresh3 := a.Fresh(3)
	if a.Universe.Count(fresh3) == 0 || a.Universe.Count(fresh2) == 0 {
		t.Error("fresh sets empty in the reachable space")
	}
	if a.Universe.Count(a.Fresh(1)) != 0 {
		t.Error("Fresh_1 reachable: a lone active process should have been crowned")
	}
	if a.Universe.Count(elected) == 0 {
		t.Error("no elected states reachable")
	}
}
