// Package trace records and pretty-prints executions of simulated models,
// in the spirit of the paper's Section 6.1 notation for Lehmann–Rabin
// states (program counters decorated with direction arrows).
package trace

import (
	"fmt"
	"strings"
	"sync"
)

// Event is one recorded step.
type Event struct {
	// Time is the (dense) time of the step.
	Time float64
	// Proc is the acting process.
	Proc int
	// Action is the step's action name, e.g. "flip_2".
	Action string
	// State renders the state reached after the step.
	State string
}

// Sink receives steps as they are recorded — the streaming counterpart of
// Recorder.Events. obs.ManifestWriter satisfies it (the match is
// structural; neither package imports the other), so a recorder can tee a
// live run into a JSONL manifest with Recorder.Stream.
type Sink interface {
	Step(t float64, proc int, action, state string)
}

// Recorder accumulates events; its Observe method matches the sim
// package's Options.Observer hook (modulo the state-to-string conversion
// done by the Observer helper). A Recorder is safe for concurrent use:
// parallel trials may share one observer, and a streaming sink may be
// drained while recording continues.
type Recorder struct {
	mu     sync.Mutex
	start  string
	events []Event
	sink   Sink
}

// NewRecorder returns a recorder with the rendered start state.
func NewRecorder(start string) *Recorder {
	return &Recorder{start: start}
}

// Stream tees every subsequently recorded event into s as it arrives, in
// addition to accumulating it. Events recorded before the call are not
// replayed (use Events for those); a nil s stops streaming.
func (r *Recorder) Stream(s Sink) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sink = s
}

// record appends one event and forwards it to the streaming sink, if any.
// The sink is called outside the lock so a slow writer cannot serialize
// recording more than it must — ordering of the accumulated slice is still
// the recording order.
func (r *Recorder) record(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	sink := r.sink
	r.mu.Unlock()
	if sink != nil {
		sink.Step(e.Time, e.Proc, e.Action, e.State)
	}
}

// Observer adapts the recorder to sim.Options.Observer for a state type
// rendered by the given function.
func Observer[S any](r *Recorder, render func(S) string) func(t float64, proc int, action string, next S) {
	return func(t float64, proc int, action string, next S) {
		r.record(Event{Time: t, Proc: proc, Action: action, State: render(next)})
	}
}

// Events returns a snapshot of the recorded events in order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Render formats the trace as a table:
//
//	t=0.000            start [R R R]
//	t=1.000  p0 try_0        [F R R]
func (r *Recorder) Render() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	width := 0
	for _, e := range r.events {
		if len(e.Action) > width {
			width = len(e.Action)
		}
	}
	fmt.Fprintf(&b, "t=%7.3f     %*s  %s\n", 0.0, width, "start", r.start)
	for _, e := range r.events {
		fmt.Fprintf(&b, "t=%7.3f  p%d %*s  %s\n", e.Time, e.Proc, width, e.Action, e.State)
	}
	return b.String()
}
