// Package trace records and pretty-prints executions of simulated models,
// in the spirit of the paper's Section 6.1 notation for Lehmann–Rabin
// states (program counters decorated with direction arrows).
package trace

import (
	"fmt"
	"strings"
)

// Event is one recorded step.
type Event struct {
	// Time is the (dense) time of the step.
	Time float64
	// Proc is the acting process.
	Proc int
	// Action is the step's action name, e.g. "flip_2".
	Action string
	// State renders the state reached after the step.
	State string
}

// Recorder accumulates events; its Observe method matches the sim
// package's Options.Observer hook (modulo the state-to-string conversion
// done by the Observer helper).
type Recorder struct {
	start  string
	events []Event
}

// NewRecorder returns a recorder with the rendered start state.
func NewRecorder(start string) *Recorder {
	return &Recorder{start: start}
}

// Observer adapts the recorder to sim.Options.Observer for a state type
// rendered by the given function.
func Observer[S any](r *Recorder, render func(S) string) func(t float64, proc int, action string, next S) {
	return func(t float64, proc int, action string, next S) {
		r.events = append(r.events, Event{Time: t, Proc: proc, Action: action, State: render(next)})
	}
}

// Events returns the recorded events in order. The caller must not modify
// the returned slice.
func (r *Recorder) Events() []Event { return r.events }

// Len returns the number of recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// Render formats the trace as a table:
//
//	t=0.000            start [R R R]
//	t=1.000  p0 try_0        [F R R]
func (r *Recorder) Render() string {
	var b strings.Builder
	width := 0
	for _, e := range r.events {
		if len(e.Action) > width {
			width = len(e.Action)
		}
	}
	fmt.Fprintf(&b, "t=%7.3f     %*s  %s\n", 0.0, width, "start", r.start)
	for _, e := range r.events {
		fmt.Fprintf(&b, "t=%7.3f  p%d %*s  %s\n", e.Time, e.Proc, width, e.Action, e.State)
	}
	return b.String()
}
