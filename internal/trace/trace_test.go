package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestRecorder(t *testing.T) {
	r := NewRecorder("[R R]")
	obs := Observer(r, func(s string) string { return s })
	obs(1.0, 0, "try_0", "[F R]")
	obs(2.0, 0, "flip_0", "[W← R]")

	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	events := r.Events()
	if events[0].Action != "try_0" || events[1].Proc != 0 || events[1].Time != 2.0 {
		t.Errorf("events = %+v", events)
	}

	out := r.Render()
	for _, want := range []string{"start", "[R R]", "p0", "try_0", "flip_0", "[W← R]", "t=  1.000"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Count(out, "\n")
	if lines != 3 {
		t.Errorf("render has %d lines, want 3", lines)
	}
}

func TestRecorderEmpty(t *testing.T) {
	r := NewRecorder("[start]")
	out := r.Render()
	if !strings.Contains(out, "start") || !strings.Contains(out, "[start]") {
		t.Errorf("empty render = %q", out)
	}
	if r.Len() != 0 {
		t.Errorf("Len = %d, want 0", r.Len())
	}
}

func TestObserverWithTypedState(t *testing.T) {
	type st struct{ X int }
	r := NewRecorder("X=0")
	obs := Observer(r, func(s st) string { return "X=" + string(rune('0'+s.X)) })
	obs(0.5, 1, "inc", st{X: 1})
	if got := r.Events()[0].State; got != "X=1" {
		t.Errorf("rendered state = %q, want X=1", got)
	}
}

// collectSink records streamed steps; the mutex makes it usable from the
// concurrent test below.
type collectSink struct {
	mu    sync.Mutex
	steps []Event
}

func (c *collectSink) Step(t float64, proc int, action, state string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.steps = append(c.steps, Event{Time: t, Proc: proc, Action: action, State: state})
}

func TestRecorderStream(t *testing.T) {
	r := NewRecorder("[R]")
	obs := Observer(r, func(s string) string { return s })
	obs(1, 0, "before", "[A]") // recorded before streaming starts: not replayed

	var sink collectSink
	r.Stream(&sink)
	obs(2, 0, "during", "[B]")
	r.Stream(nil) // detach
	obs(3, 0, "after", "[C]")

	if len(sink.steps) != 1 || sink.steps[0].Action != "during" || sink.steps[0].Time != 2 {
		t.Errorf("streamed steps = %+v, want just the 'during' event", sink.steps)
	}
	if r.Len() != 3 {
		t.Errorf("Len = %d, want 3 (streaming must not replace accumulation)", r.Len())
	}
}

// TestRecorderConcurrent: one recorder shared by several goroutines (as
// parallel trials sharing an observer would) must lose no events and
// stream each exactly once; -race checks the locking.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder("[start]")
	var sink collectSink
	r.Stream(&sink)
	obs := Observer(r, func(s string) string { return s })

	const goroutines, perG = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				obs(float64(i), g, "step", "[s]")
			}
		}(g)
	}
	wg.Wait()

	if got := r.Len(); got != goroutines*perG {
		t.Errorf("Len = %d, want %d", got, goroutines*perG)
	}
	if got := len(sink.steps); got != goroutines*perG {
		t.Errorf("streamed %d steps, want %d", got, goroutines*perG)
	}
	// Reading while nothing writes: Events returns a stable snapshot.
	ev := r.Events()
	ev[0].Action = "mutated"
	if r.Events()[0].Action == "mutated" {
		t.Error("Events returned the internal slice, not a snapshot")
	}
	_ = r.Render()
}
