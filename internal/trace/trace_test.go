package trace

import (
	"strings"
	"testing"
)

func TestRecorder(t *testing.T) {
	r := NewRecorder("[R R]")
	obs := Observer(r, func(s string) string { return s })
	obs(1.0, 0, "try_0", "[F R]")
	obs(2.0, 0, "flip_0", "[W← R]")

	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	events := r.Events()
	if events[0].Action != "try_0" || events[1].Proc != 0 || events[1].Time != 2.0 {
		t.Errorf("events = %+v", events)
	}

	out := r.Render()
	for _, want := range []string{"start", "[R R]", "p0", "try_0", "flip_0", "[W← R]", "t=  1.000"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Count(out, "\n")
	if lines != 3 {
		t.Errorf("render has %d lines, want 3", lines)
	}
}

func TestRecorderEmpty(t *testing.T) {
	r := NewRecorder("[start]")
	out := r.Render()
	if !strings.Contains(out, "start") || !strings.Contains(out, "[start]") {
		t.Errorf("empty render = %q", out)
	}
	if r.Len() != 0 {
		t.Errorf("Len = %d, want 0", r.Len())
	}
}

func TestObserverWithTypedState(t *testing.T) {
	type st struct{ X int }
	r := NewRecorder("X=0")
	obs := Observer(r, func(s st) string { return "X=" + string(rune('0'+s.X)) })
	obs(0.5, 1, "inc", st{X: 1})
	if got := r.Events()[0].State; got != "X=1" {
		t.Errorf("rendered state = %q, want X=1", got)
	}
}
