package fabric

// The worker: a pull loop against one coordinator. Ask for a lease, run
// its chunk range through the local parallel engine while a background
// goroutine heartbeats the lease alive, wrap the resulting checkpoint
// fragment in a checksummed envelope, and post it back. Every RPC runs
// under fault.RetryPolicy.DoCtx, so transient transport faults are
// absorbed with backoff+jitter and a cancelled context stops the loop
// promptly even mid-backoff.
//
// A worker is stateless between leases on purpose: everything it needs
// arrives inside the lease response (the JobSpec), and everything it
// produces leaves in the result. Killing a worker at any instant loses
// at most one lease's worth of work, which the coordinator reassigns at
// expiry.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/obs/span"
	"repro/internal/sim"
)

// Worker pulls leases from a coordinator and runs them. Configure the
// fields, then call Run.
type Worker struct {
	// Coordinator is the base URL, e.g. "http://127.0.0.1:9777".
	Coordinator string
	// ID names this worker in leases and logs; empty means worker-<pid>.
	ID string
	// Workers is the engine goroutine count per lease (0 = GOMAXPROCS).
	Workers int
	// Client is the HTTP client; nil means a 30s-timeout client.
	Client *http.Client
	// Retry paces RPC retries; the zero value means the fault defaults
	// (4 attempts, 5ms base, 250ms cap). Classification of permanent
	// failures (4xx) is installed by the worker itself.
	Retry fault.RetryPolicy
	// Clock times idle waits (all-leased backoff) and heartbeats; nil
	// means the wall clock.
	Clock fault.Clock
	// Throttle, when positive, pauses between finishing a lease's trials
	// and reporting its result, with the lease still held and
	// heartbeating. It exists for tests and demos that need a window in
	// which a worker provably owns unreported work (e.g. to SIGKILL it
	// there), and for rehearsing slow-worker behavior.
	Throttle time.Duration
	// Report, when non-nil, receives one line per lease settled (granted,
	// completed, expired) — the worker's operational log.
	Report func(format string, args ...any)
	// Breaker, when non-nil, wraps the transport leg of every RPC in a
	// circuit breaker: a run of consecutive transport failures (a dead
	// or partitioned coordinator address) opens it, and further
	// attempts fail instantly with fault.ErrBreakerOpen — transient, so
	// the retry policy keeps backing off without hammering the address.
	// HTTP responses of any status count as transport success.
	Breaker *fault.Breaker
	// Jitter draws the full-jitter fraction in [0, 1) for the
	// all-leased-out polling backoff, so a fleet of idle workers does
	// not stampede the coordinator in lockstep when a lease expires.
	// Nil uses the fault package's seeded source.
	Jitter func() float64
	// Tracer, when non-nil, records the worker's side of the job trace:
	// a "worker.lease" span per lease (parented under the coordinator's
	// "lease" span via the response headers), "chunk" spans per engine
	// chunk, "rpc.*" spans per RPC (whose IDs ride the request headers
	// so the coordinator's serve spans parent under them), and
	// "lease.wait" spans for all-leased-out backoffs. The tracer adopts
	// the coordinator's trace ID from the first response it sees.
	Tracer *span.Tracer

	runnerOnce sync.Once
	runner     Runner
	runnerErr  error
	// reached flips once any RPC has succeeded; after that, a coordinator
	// that stops answering entirely is read as "job finished, coordinator
	// retired" rather than an error (see Run).
	reached atomic.Bool
}

func (w *Worker) id() string {
	if w.ID != "" {
		return w.ID
	}
	return fmt.Sprintf("worker-%d", os.Getpid())
}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return &http.Client{Timeout: 30 * time.Second}
}

func (w *Worker) clock() fault.Clock {
	if w.Clock != nil {
		return w.Clock
	}
	return fault.Wall
}

func (w *Worker) report(format string, args ...any) {
	if w.Report != nil {
		w.Report(format, args...)
	}
}

// errPermanent marks an RPC failure retrying cannot fix (a 4xx: the
// request itself is wrong, or the coordinator rejected the payload).
// 429 (overload — back off and retry) and 422 (the upload was corrupted
// in transit; the local bytes are fine) are NOT permanent.
var errPermanent = errors.New("fabric: permanent rpc failure")

// retryAfterError is a 429 with the server's requested backoff; it
// implements fault.RetryAfterHint, so DoCtx floors the next wait at the
// server's ask.
type retryAfterError struct {
	status string
	after  time.Duration
}

func (e *retryAfterError) Error() string             { return e.status }
func (e *retryAfterError) RetryAfter() time.Duration { return e.after }

func (w *Worker) jitter() float64 {
	if w.Jitter != nil {
		return w.Jitter()
	}
	return fault.Uniform01()
}

// recordBreaker reports a transport outcome to the breaker, if any.
func (w *Worker) recordBreaker(err error) {
	if w.Breaker != nil {
		w.Breaker.Record(err)
	}
}

// retryPolicy is w.Retry with the DoCtx clock and the transient/
// permanent classifier installed.
func (w *Worker) retryPolicy() fault.RetryPolicy {
	p := w.Retry
	if p.Clock == nil {
		p.Clock = w.clock()
	}
	prev := p.Retryable
	p.Retryable = func(err error) bool {
		if errors.Is(err, errPermanent) {
			return false
		}
		if prev != nil {
			return prev(err)
		}
		return true // network errors, timeouts, 5xx: transient
	}
	return p
}

// post sends one JSON RPC under the retry policy and decodes the reply.
// body is pre-encoded so retries resend identical bytes. parent is the
// trace context the RPC span hangs under (zero for a root-level RPC);
// the returned SpanContext is the trace context the response headers
// carried — on a lease grant, the coordinator's "lease" span.
func (w *Worker) post(ctx context.Context, path string, body []byte, out any, parent span.SpanContext) (span.SpanContext, error) {
	// One span per RPC including its retries: the span duration is what
	// the caller waited, which is the latency that matters to the lease.
	sp := w.Tracer.Start("rpc."+strings.TrimPrefix(path, "/v1/"), parent)
	var got span.SpanContext
	err := w.retryPolicy().DoCtx(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Coordinator+path, bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("%w: %v", errPermanent, err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(WorkerHeader, w.id())
		span.Inject(sp.Context(), req.Header)
		// The breaker guards only the transport leg: getting any HTTP
		// response back is success (an open breaker means the address is
		// dead, not that the coordinator dislikes us). ErrBreakerOpen is
		// transient, so the retry policy's backoff keeps pacing attempts
		// without the breaker ever letting them touch the wire.
		if b := w.Breaker; b != nil {
			if err := b.Allow(); err != nil {
				return err
			}
		}
		resp, err := w.client().Do(req)
		if err != nil {
			w.recordBreaker(err)
			return err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		if err != nil {
			w.recordBreaker(err)
			return err
		}
		w.recordBreaker(nil)
		if resp.StatusCode != http.StatusOK {
			err := fmt.Errorf("fabric: %s: %s: %s", path, resp.Status, bytes.TrimSpace(data))
			switch {
			case resp.StatusCode == http.StatusTooManyRequests:
				// Overload shed: honor the coordinator's Retry-After as
				// a floor on the next backoff.
				var after time.Duration
				if secs, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && secs > 0 {
					after = time.Duration(secs) * time.Second
				}
				return &retryAfterError{status: err.Error(), after: after}
			case resp.StatusCode == http.StatusUnprocessableEntity:
				// The upload was corrupted in transit (failed the CRC
				// envelope); our bytes are good, so retrying resends them.
				return err
			case resp.StatusCode >= 400 && resp.StatusCode < 500:
				return fmt.Errorf("%w: %v", errPermanent, err)
			}
			return err
		}
		w.reached.Store(true)
		// Join the coordinator's trace the moment we first hear from it,
		// so every span this worker ends from here on carries the job's
		// trace ID (the trace field is stamped at End time).
		w.Tracer.AdoptTrace(resp.Header.Get(span.HeaderTraceID))
		got = span.Extract(resp.Header)
		return json.Unmarshal(data, out)
	})
	if err != nil {
		sp.End(span.Str("error", err.Error()))
	} else {
		sp.End()
	}
	return got, err
}

// jobRunner builds (once) the Runner for the job spec the coordinator
// sent. Every lease of one run carries the same spec, so the compiled
// model and its warm transition cache are shared across leases.
func (w *Worker) jobRunner(spec JobSpec) (Runner, error) {
	w.runnerOnce.Do(func() {
		w.runner, w.runnerErr = NewRunner(spec)
	})
	return w.runner, w.runnerErr
}

// Run pulls and executes leases until the coordinator reports the job
// done (returns nil) or ctx is cancelled (returns the cause). A lease
// the coordinator expires under us is abandoned mid-range and the loop
// continues — the chunks were already reassigned.
func (w *Worker) Run(ctx context.Context) error {
	id := w.id()
	for {
		if err := ctx.Err(); err != nil {
			return context.Cause(ctx)
		}
		body, err := json.Marshal(LeaseRequest{Worker: id})
		if err != nil {
			return err
		}
		var lr LeaseResponse
		hdr, err := w.post(ctx, "/v1/lease", body, &lr, span.SpanContext{})
		if err != nil {
			// The coordinator lives exactly as long as its job. Once we have
			// spoken to it successfully, its disappearing altogether is the
			// normal end of a run we didn't deliver the last chunk of — the
			// coordinator prints the estimate and exits the moment the final
			// result (from whichever worker) lands. A 4xx stays fatal: that
			// is the coordinator telling us our requests are wrong.
			if w.reached.Load() && !errors.Is(err, errPermanent) && ctx.Err() == nil {
				w.report("worker %s: coordinator unreachable after retries (%v); assuming the job is finished", id, err)
				return nil
			}
			return fmt.Errorf("fabric: requesting lease: %w", err)
		}
		switch {
		case lr.Done:
			w.report("worker %s: job complete, exiting", id)
			return nil
		case lr.Quarantined:
			w.report("worker %s: quarantined by coordinator, exiting", id)
			return ErrWorkerQuarantined
		case lr.None:
			wait := time.Duration(lr.RetryMs) * time.Millisecond
			if wait <= 0 {
				wait = 100 * time.Millisecond
			}
			// Full jitter (U[0,1) of the advertised wait, floored at
			// 1ms): every idle worker lands on a different instant, so a
			// lease expiry does not trigger a thundering herd of
			// simultaneous re-polls.
			wait = time.Duration(w.jitter() * float64(wait))
			if wait < time.Millisecond {
				wait = time.Millisecond
			}
			ws := w.Tracer.Start("lease.wait", span.SpanContext{},
				span.Str("worker", id), span.Int64("wait_ms", wait.Milliseconds()))
			select {
			case <-w.clock().After(wait):
				ws.End()
			case <-ctx.Done():
				ws.End(span.Str("outcome", "cancelled"))
				return context.Cause(ctx)
			}
			continue
		case lr.Job == nil || lr.Lease == nil:
			return fmt.Errorf("fabric: malformed lease response (no job or lease)")
		}
		done, err := w.runLease(ctx, id, *lr.Job, *lr.Lease, hdr)
		if err != nil {
			return err
		}
		if done {
			// The result we just delivered completed the job: exit without
			// another lease round-trip (the coordinator may already be gone).
			w.report("worker %s: job complete, exiting", id)
			return nil
		}
	}
}

// runLease executes one lease: heartbeat goroutine + engine run +
// result upload. A lease lost to expiry is reported and skipped, not an
// error. done reports that this lease's result completed the job.
// parent is the coordinator's "lease" span context from the grant
// response headers; the worker's side of the lease nests under it.
func (w *Worker) runLease(ctx context.Context, id string, job JobSpec, l Lease, parent span.SpanContext) (done bool, err error) {
	runner, err := w.jobRunner(job)
	if err != nil {
		return false, fmt.Errorf("fabric: building runner for leased job: %w", err)
	}
	w.report("worker %s: lease %s chunks [%d,%d)", id, l.ID, l.Chunks.Lo, l.Chunks.Hi)

	ls := w.Tracer.Start("worker.lease", parent,
		span.Str("worker", id), span.Str("lease", l.ID),
		span.Int("lo", l.Chunks.Lo), span.Int("hi", l.Chunks.Hi))

	// The lease context is cancelled when the coordinator tells us the
	// lease expired — aborting the engine run and any pending RPC.
	lctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)

	ttl := time.Duration(l.TTLMs) * time.Millisecond
	hbEvery := ttl / 3
	if hbEvery <= 0 {
		hbEvery = time.Second
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		hb, err := json.Marshal(HeartbeatRequest{Worker: id, Lease: l.ID})
		if err != nil {
			return
		}
		for {
			select {
			case <-lctx.Done():
				return
			case <-w.clock().After(hbEvery):
			}
			var resp HeartbeatResponse
			if _, err := w.post(lctx, "/v1/heartbeat", hb, &resp, ls.Context()); err != nil {
				if lctx.Err() != nil {
					return
				}
				// Heartbeats are best-effort: a failed renewal costs the
				// lease at worst, and the result upload is still idempotent.
				w.report("worker %s: heartbeat %s failed: %v", id, l.ID, err)
				continue
			}
			if resp.Expired {
				cancel(errLeaseExpired)
				return
			}
		}
	}()

	eng := EngineHooks{}
	if w.Tracer != nil {
		eng.Spans = span.ChunkSpans(w.Tracer, ls.Context(), span.Str("worker", id))
		eng.Labels = []string{
			"fabric_job", fmt.Sprintf("%s-n%d-s%d", job.Model, job.N, job.Seed),
			"lease", l.ID,
		}
	}
	cp, rep, runErr := runner.RunRange(lctx, w.Workers, l.Chunks, eng)
	if w.Throttle > 0 && runErr == nil {
		select {
		case <-w.clock().After(w.Throttle):
		case <-lctx.Done():
		}
	}
	uploadErr := error(nil)
	if runErr == nil && lctx.Err() == nil {
		done, uploadErr = w.deliver(lctx, id, l.ID, ls.Context(), cp, rep)
	}
	cancel(nil)
	wg.Wait()

	switch {
	case context.Cause(lctx) == errLeaseExpired:
		w.report("worker %s: lease %s expired, range [%d,%d) abandoned", id, l.ID, l.Chunks.Lo, l.Chunks.Hi)
		ls.End(span.Str("outcome", "expired"), span.Int("trials", rep.Completed))
		return false, nil
	case ctx.Err() != nil:
		ls.End(span.Str("outcome", "cancelled"))
		return false, context.Cause(ctx)
	case runErr != nil:
		ls.End(span.Str("outcome", "error"), span.Str("error", runErr.Error()))
		return false, fmt.Errorf("fabric: running lease %s: %w", l.ID, runErr)
	case uploadErr != nil:
		ls.End(span.Str("outcome", "error"), span.Str("error", uploadErr.Error()))
		return false, fmt.Errorf("fabric: delivering lease %s result: %w", l.ID, uploadErr)
	}
	ls.End(span.Str("outcome", "delivered"), span.Int("trials", rep.Completed))
	return done, nil
}

var errLeaseExpired = errors.New("fabric: lease expired")

// deliver wraps the checkpoint fragment in a checksummed envelope and
// posts it. The envelope means a truncated or corrupted upload is
// refused by checksum on the coordinator side and simply retried here.
// done echoes the coordinator's job-complete signal.
func (w *Worker) deliver(ctx context.Context, id, leaseID string, parent span.SpanContext, cp *sim.Checkpoint, rep sim.RunReport) (done bool, err error) {
	payload, err := json.Marshal(ResultPayload{Worker: id, Lease: leaseID, Checkpoint: cp})
	if err != nil {
		return false, err
	}
	body, err := sim.EncodeEnvelope(payload)
	if err != nil {
		return false, err
	}
	var resp ResultResponse
	if _, err := w.post(ctx, "/v1/result", body, &resp, parent); err != nil {
		return false, err
	}
	w.report("worker %s: lease %s delivered: %d chunks accepted, %d duplicate (%d trials run)",
		id, leaseID, resp.Accepted, resp.Duplicates, rep.Completed)
	return resp.Done, nil
}
