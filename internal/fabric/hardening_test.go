package fabric

// Tests for the adversarial-network hardening: hedged leases, worker
// health scoring and quarantine, and coordinator admission control. The
// invariant under test is always the same one as everywhere else in the
// fabric — whatever the hardening machinery does (duplicate leases,
// revoked leases, shed RPCs), the finalized estimate stays byte-equal
// to the single-process reference.

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/obs/span"
	"repro/internal/sim"
)

// deliverRange computes the fragment for a lease's range and posts it
// as that worker.
func deliverRange(t *testing.T, c *Coordinator, runner Runner, worker, leaseID string, r sim.ChunkRange) ResultResponse {
	t.Helper()
	frag, _, err := runner.RunRange(context.Background(), 2, r, EngineHooks{})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.result(ResultPayload{Worker: worker, Lease: leaseID, Checkpoint: frag})
	if err != nil {
		t.Fatalf("%s delivering %v: %v", worker, r, err)
	}
	return resp
}

// TestHedgeBoundsStraggler is the hedging acceptance test: with a
// FakeClock, a worker that goes dark holds the last chunk hostage. With
// hedging enabled the coordinator re-issues that range to an idle
// worker once the lease's age passes HedgeFactor × the p99 of observed
// completion times — long before the TTL expires — so the job finishes
// in seconds instead of a full TTL later, with zero effect on the
// output bytes.
func TestHedgeBoundsStraggler(t *testing.T) {
	ctx := context.Background()
	spec := testJob(320) // 5 chunks
	want := reference(t, spec)
	runner, err := NewRunner(spec)
	if err != nil {
		t.Fatal(err)
	}

	// run drives the straggler scenario and returns (estimate, elapsed,
	// status). w1 delivers [0,2) and [2,4) in 1s each (the completion
	// samples), w3 takes [4,5) and goes dark, and idle w2 polls 5s in.
	run := func(hedge bool) (string, time.Duration, Status) {
		fc := fault.NewFakeClock(time.Unix(0, 0))
		c, err := NewCoordinator(ctx, spec, CoordinatorOptions{
			Clock:           fc,
			LeaseChunks:     2,
			LeaseTTL:        60 * time.Second,
			Hedge:           hedge,
			HedgeFactor:     2,
			HedgeMinSamples: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range []sim.ChunkRange{{Lo: 0, Hi: 2}, {Lo: 2, Hi: 4}} {
			lr, _ := c.grant("w1")
			if lr.Lease == nil || lr.Lease.Chunks != r {
				t.Fatalf("w1 lease = %+v, want chunks %v", lr, r)
			}
			fc.Advance(time.Second)
			deliverRange(t, c, runner, "w1", lr.Lease.ID, r)
		}
		straggler, _ := c.grant("w3") // w3 goes dark holding [4,5)
		if straggler.Lease == nil {
			t.Fatalf("w3 got no lease: %+v", straggler)
		}
		// Too early for a hedge: the straggling lease is younger than
		// 2 × p99(1s, 1s) = 2s, so the idle worker is told to wait.
		if lr, _ := c.grant("w2"); !lr.None || lr.Lease != nil {
			t.Fatalf("immediate w2 grant = %+v, want None (no hedge yet)", lr)
		}
		fc.Advance(5 * time.Second)
		lr, _ := c.grant("w2")
		if hedge {
			if lr.Lease == nil || lr.Lease.Chunks != straggler.Lease.Chunks {
				t.Fatalf("hedged grant = %+v, want a duplicate of %v", lr, straggler.Lease.Chunks)
			}
		} else {
			if !lr.None {
				t.Fatalf("unhedged grant = %+v, want None until the TTL expires", lr)
			}
			// Without hedging, w2 can only wait out w3's full TTL.
			fc.Advance(60 * time.Second)
			lr, _ = c.grant("w2")
			if lr.Lease == nil || lr.Lease.Chunks != straggler.Lease.Chunks {
				t.Fatalf("post-expiry grant = %+v, want %v", lr, straggler.Lease.Chunks)
			}
		}
		deliverRange(t, c, runner, "w2", lr.Lease.ID, lr.Lease.Chunks)
		if !c.Done() {
			t.Fatal("job not done after w2's delivery")
		}
		got, _, err := c.Finalize(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return got, fc.Now().Sub(time.Unix(0, 0)), c.Status()
	}

	hedgedEst, hedgedWall, hedgedSt := run(true)
	plainEst, plainWall, plainSt := run(false)

	if hedgedEst != want || plainEst != want {
		t.Errorf("estimates hedged %q / unhedged %q, want both %q (hedging must not touch the bytes)", hedgedEst, plainEst, want)
	}
	if hedgedWall >= plainWall {
		t.Errorf("hedged run took %v, unhedged %v: hedging did not bound the straggler", hedgedWall, plainWall)
	}
	if hedgedSt.HedgesIssued != 1 {
		t.Errorf("hedged run issued %d hedges, want 1", hedgedSt.HedgesIssued)
	}
	// The hedge fired before the straggler's TTL: nothing ever expired.
	if hedgedSt.LeasesExpired != 0 {
		t.Errorf("hedged run expired %d leases, want 0 (the hedge preempts expiry)", hedgedSt.LeasesExpired)
	}
	if plainSt.LeasesExpired == 0 {
		t.Errorf("unhedged run expired no lease; the scenario lost its straggler")
	}
}

// TestCorruptUploadQuarantine: a worker whose uploads keep failing the
// CRC envelope is blacklisted after QuarantineCorrupt strikes — no
// further leases, metric incremented, a "quarantine" span recorded —
// while the job completes through the remaining workers with the
// reference estimate.
func TestCorruptUploadQuarantine(t *testing.T) {
	ctx := context.Background()
	spec := testJob(320)
	var traceBuf bytes.Buffer
	tr := span.New(&traceBuf, span.Options{Service: "coord"})
	c, err := NewCoordinator(ctx, spec, CoordinatorOptions{
		LeaseChunks:       2,
		QuarantineCorrupt: 2,
		Tracer:            tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	// "evil" posts garbage twice; each bounces 422 (corrupt-in-transit)
	// and is charged to the header-named worker.
	for i := 0; i < 2; i++ {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/result", strings.NewReader("not an envelope"))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(WorkerHeader, "evil")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("corrupt upload %d status = %d, want 422", i, resp.StatusCode)
		}
	}

	// Strike two crossed the threshold: no lease for evil, ever.
	if lr, _ := c.grant("evil"); !lr.Quarantined || lr.Lease != nil {
		t.Fatalf("quarantined grant = %+v, want Quarantined with no lease", lr)
	}

	// The remaining worker finishes the job; the estimate is untouched.
	w := &Worker{Coordinator: ts.URL, ID: "good", Workers: 2}
	if err := w.Run(ctx); err != nil {
		t.Fatalf("good worker: %v", err)
	}
	if !c.Done() {
		t.Fatal("job not done after the good worker finished")
	}
	got, _, err := c.Finalize(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if want := reference(t, spec); got != want {
		t.Errorf("estimate %q != reference %q", got, want)
	}

	st := c.Status()
	if st.WorkersQuarantined != 1 {
		t.Errorf("WorkersQuarantined = %d, want 1", st.WorkersQuarantined)
	}
	var evil *WorkerStatus
	for i := range st.Workers {
		if st.Workers[i].Worker == "evil" {
			evil = &st.Workers[i]
		}
	}
	if evil == nil || !evil.Quarantined || evil.Corrupt != 2 {
		t.Errorf("evil's status = %+v, want quarantined with 2 corrupt uploads", evil)
	}

	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := span.Read(&traceBuf)
	if err != nil {
		t.Fatal(err)
	}
	var q *span.Record
	for i := range recs {
		if recs[i].Name == "quarantine" {
			q = &recs[i]
		}
	}
	if q == nil {
		t.Fatal("no quarantine span recorded")
	}
	if q.AttrStr("worker") != "evil" || q.AttrStr("reason") != "corrupt-uploads" {
		t.Errorf("quarantine span attrs = %v, want worker=evil reason=corrupt-uploads", q.Attrs)
	}
}

// TestWorkerQuarantinedExit: the worker pull loop reads the Quarantined
// lease response as a typed, permanent dismissal.
func TestWorkerQuarantinedExit(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, LeaseResponse{None: true, Quarantined: true})
	}))
	defer ts.Close()
	w := &Worker{Coordinator: ts.URL, ID: "w"}
	if err := w.Run(context.Background()); err != ErrWorkerQuarantined {
		t.Fatalf("Run = %v, want ErrWorkerQuarantined", err)
	}
}

// TestAdmissionControlSheds: with MaxInflightRPCs 1, a second
// concurrent fabric RPC bounces 429 with a Retry-After hint instead of
// queueing on the coordinator, and the shed counter records it. Once
// the slot frees, service resumes.
func TestAdmissionControlSheds(t *testing.T) {
	ctx := context.Background()
	spec := testJob(320)
	c, err := NewCoordinator(ctx, spec, CoordinatorOptions{MaxInflightRPCs: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	// Occupy the only slot with a result upload whose body never
	// finishes arriving — the handler parks in ReadAll holding the slot.
	pr, pw := io.Pipe()
	stalled := make(chan struct{})
	go func() {
		defer close(stalled)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/result", pr)
		if err != nil {
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for c.inflight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stalled upload never took the admission slot")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Post(ts.URL+"/v1/lease", "application/json", strings.NewReader(`{"worker":"w"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("lease under load = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("429 carried Retry-After %q, want a positive second count", ra)
	}

	// The ops probe is never shed.
	sresp, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Errorf("status under load = %d, want 200 (unshedded)", sresp.StatusCode)
	}

	pw.Close() // EOF: the stalled upload fails CRC and frees the slot
	<-stalled
	deadline = time.Now().Add(5 * time.Second)
	for c.inflight.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("admission slot never freed")
		}
		time.Sleep(time.Millisecond)
	}
	resp2, err := http.Post(ts.URL+"/v1/lease", "application/json", strings.NewReader(`{"worker":"w"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("lease after drain = %d, want 200", resp2.StatusCode)
	}
	if st := c.Status(); st.RPCsShed < 1 {
		t.Errorf("RPCsShed = %d, want >= 1", st.RPCsShed)
	}
}

// TestWorkerHonors429RetryAfter: a shed lease RPC makes the worker wait
// out the server's Retry-After — far past its own 1ms backoff schedule
// — before retrying and completing the job.
func TestWorkerHonors429RetryAfter(t *testing.T) {
	ctx := context.Background()
	spec := testJob(64) // one chunk: a single lease finishes the job
	c, err := NewCoordinator(ctx, spec, CoordinatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var shedOnce atomic.Bool
	inner := c.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/lease" && shedOnce.CompareAndSwap(false, true) {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "fabric: coordinator overloaded", http.StatusTooManyRequests)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	fc := fault.NewFakeClock(time.Unix(0, 0))
	w := &Worker{
		Coordinator: ts.URL, ID: "w", Workers: 2, Clock: fc,
		Retry: fault.RetryPolicy{
			Attempts: 4, Base: time.Millisecond, Cap: time.Millisecond,
			Clock: fc, Jitter: func() float64 { return 1.0 },
		},
	}
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()

	// The retry backoff parks on the fake clock: the policy's own wait
	// is 1ms, but the Retry-After hint floors it at 1s.
	deadline := time.Now().Add(5 * time.Second)
	for fc.Waiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never parked on the backoff clock")
		}
		time.Sleep(time.Millisecond)
	}
	fc.Advance(500 * time.Millisecond)
	select {
	case err := <-done:
		t.Fatalf("worker finished (%v) before the Retry-After hint elapsed", err)
	case <-time.After(50 * time.Millisecond):
	}
	fc.Advance(500 * time.Millisecond)
	if err := <-done; err != nil {
		t.Fatalf("worker after 429: %v", err)
	}
	if !c.Done() {
		t.Error("job not done after the worker's retry")
	}
}
