package fabric

// The coordinator: owns one job, leases chunk ranges to workers,
// verifies and merges their results first-valid-wins, persists the
// merge frontier durably, and declares completion. All state lives
// behind one mutex; every handler is a short critical section (the only
// I/O inside the lock is the frontier save, which is itself retried and
// cheap at chunk granularity).
//
// Lease expiry is lazy plus swept: every request path first expires
// lapsed leases against the injected clock, and the Wait loop sweeps on
// a timer so reassignment does not depend on request traffic. Both run
// through fault.Clock, so tests drive expiry with a FakeClock instead
// of sleeping.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/obs/span"
	"repro/internal/sim"
)

// stateKey is the label the frontier is filed under in the persisted
// CheckpointSet (the ArtifactStore stores sets, keyed by stage).
const stateKey = "fabric"

// maxResultBody bounds one result upload; a lease is a handful of
// chunk accumulators, far below this.
const maxResultBody = 32 << 20

// chunkState tracks one chunk through the lease lifecycle.
type chunkState uint8

const (
	chunkPending chunkState = iota
	chunkLeased
	chunkDone
)

// CoordinatorOptions configures a Coordinator. The zero value works:
// 4-chunk leases, 3s TTL, no persistence, wall clock, no metrics, never
// give up on quorum.
type CoordinatorOptions struct {
	// LeaseChunks is how many chunks one lease covers (default 4 — 256
	// trials; coarse enough to amortize an RPC, fine enough that losing
	// a worker loses little).
	LeaseChunks int
	// LeaseTTL is how long a lease lives without a heartbeat (default
	// 3s). Heartbeats extend it by the same amount.
	LeaseTTL time.Duration
	// StatePath, when set, persists the merge frontier through Store
	// after every accepted result, making the coordinator crash-resumable.
	StatePath string
	// Store is the durable artifact layer; nil means a default
	// sim.ArtifactStore. Used only when StatePath is set.
	Store *sim.ArtifactStore
	// QuorumTimeout, when positive, makes Wait give up with
	// ErrQuorumLost after that long with no worker contact while chunks
	// are missing. Zero waits forever (until ctx cancels).
	QuorumTimeout time.Duration
	// Clock is the lease/quorum time source; nil means the wall clock.
	Clock fault.Clock
	// Metrics, when non-nil, observes leases, results and liveness.
	Metrics Metrics
	// Tracer, when non-nil, records the coordinator's side of the job
	// trace: a root "job" span, one "lease" span per grant (ended at
	// delivery or expiry), "merge" spans per accepted fragment,
	// "serve.*" spans per RPC handled, and a closing "finalize" span.
	// Trace context rides the RPC response headers so workers join the
	// same trace. Nil disables tracing at the cost of nil checks.
	Tracer *span.Tracer

	// Hedge enables hedged leases: when every pending chunk is leased
	// out and an idle worker asks for work, a lease whose age exceeds
	// HedgeFactor times the p99 of observed lease completion times is
	// speculatively re-issued to the idle worker as a duplicate
	// ("hedge") lease before its TTL expires. The idempotent
	// first-valid-wins merge makes the duplicate free: whichever copy
	// lands first counts, the other is dropped. This bounds stragglers
	// — a slow-dripping worker no longer holds job completion hostage
	// for a full TTL.
	Hedge bool
	// HedgeFactor scales the p99 completion time into the hedge age
	// threshold (default 1.5).
	HedgeFactor float64
	// HedgeMinSamples is how many completed leases must be observed
	// before any hedge fires (default 3) — hedging off a cold p99 would
	// just duplicate everything.
	HedgeMinSamples int
	// MaxHedgesPerLease bounds how many hedges one lease can spawn
	// (default 1).
	MaxHedgesPerLease int

	// QuarantineCorrupt, when positive, blacklists a worker after that
	// many corrupt uploads (checksum, JSON, or identity failures):
	// its leases are revoked, no new lease is ever granted to it, and
	// lease responses tell it to exit.
	QuarantineCorrupt int
	// MinWorkerScore, when positive, quarantines a worker whose health
	// score (delivered vs expired/corrupt/late, Laplace-smoothed) drops
	// below this floor after at least 4 grants.
	MinWorkerScore float64

	// MaxLeasesPerWorker caps the leases one worker may hold at once
	// (default 2: the pull loop holds one, plus headroom for a lease
	// expired server-side that the worker is still finishing).
	MaxLeasesPerWorker int
	// MaxInflightRPCs, when positive, sheds lease/heartbeat/result RPCs
	// beyond that many concurrently in flight with 429 + Retry-After
	// (GET /v1/status stays unshedded — it is the ops probe).
	MaxInflightRPCs int
}

func (o CoordinatorOptions) leaseChunks() int {
	if o.LeaseChunks <= 0 {
		return 4
	}
	return o.LeaseChunks
}

func (o CoordinatorOptions) leaseTTL() time.Duration {
	if o.LeaseTTL <= 0 {
		return 3 * time.Second
	}
	return o.LeaseTTL
}

func (o CoordinatorOptions) hedgeFactor() float64 {
	if o.HedgeFactor <= 0 {
		return 1.5
	}
	return o.HedgeFactor
}

func (o CoordinatorOptions) hedgeMinSamples() int {
	if o.HedgeMinSamples <= 0 {
		return 3
	}
	return o.HedgeMinSamples
}

func (o CoordinatorOptions) maxHedges() int {
	if o.MaxHedgesPerLease <= 0 {
		return 1
	}
	return o.MaxHedgesPerLease
}

func (o CoordinatorOptions) maxLeasesPerWorker() int {
	if o.MaxLeasesPerWorker <= 0 {
		return 2
	}
	return o.MaxLeasesPerWorker
}

// lease is one outstanding claim.
type lease struct {
	id       string
	worker   string
	chunks   sim.ChunkRange
	expires  time.Time
	granted  time.Time  // grant instant, for turnaround metrics
	lastBeat time.Time  // last heartbeat (or grant), for late-beat scoring
	span     *span.Span // open "lease" span; nil when tracing is off
	// hedgeOf names the lease this one speculatively duplicates; empty
	// for a primary lease. hedges counts duplicates spawned off this
	// lease.
	hedgeOf string
	hedges  int
}

// workerHealth is the coordinator's per-worker scorecard.
type workerHealth struct {
	granted   int64
	delivered int64
	expired   int64
	corrupt   int64
	lateBeats int64

	quarantined bool
}

// score is the Laplace-smoothed success rate: corrupt uploads weigh
// double (they attack the merge), late heartbeats half (they only risk
// a reassignment). A fresh worker starts at 1.0.
func (h *workerHealth) score() float64 {
	good := float64(h.delivered) + 1
	bad := float64(h.expired) + 2*float64(h.corrupt) + 0.5*float64(h.lateBeats)
	return good / (good + bad)
}

// Coordinator schedules one job across workers. Create with
// NewCoordinator, expose Handler() on a listener, then Wait for
// completion and Finalize for the estimate.
type Coordinator struct {
	job    JobSpec
	runner Runner
	opts   CoordinatorOptions
	clock  fault.Clock
	store  *sim.ArtifactStore

	mu        sync.Mutex
	template  *sim.Checkpoint // identity fields only; never mutated
	frontier  *sim.Checkpoint // template + accepted chunk/panic records
	chunks    []chunkState
	pending   []time.Time // per chunk: when it last became grantable
	leases    map[string]*lease
	nextLease int
	workers   map[string]time.Time // worker id -> last contact
	contact   time.Time            // last contact from any worker
	complete  bool
	done      chan struct{}

	jobSpan *span.Span // root trace span; nil when tracing is off

	granted, expired, reassigned, duplicates, rejected int64
	hedged, quarantined, shed                          int64

	// health is the per-worker scorecard feeding quarantine decisions.
	health map[string]*workerHealth
	// completions is a ring of observed lease grant→delivery times; its
	// p99 drives the hedge threshold. compIdx is the total recorded.
	completions []time.Duration
	compIdx     int

	// inflight counts fabric RPCs currently being handled, for
	// MaxInflightRPCs admission control (outside mu: the check must not
	// queue on the coordinator lock it protects).
	inflight atomic.Int64
}

// NewCoordinator builds the coordinator for job: constructs the runner,
// derives the checkpoint template (kind/seed/chunking) from an empty
// engine run, and — when opts.StatePath names an existing state file —
// restores the merge frontier from it, validating every record like a
// freshly delivered result.
func NewCoordinator(ctx context.Context, job JobSpec, opts CoordinatorOptions) (*Coordinator, error) {
	runner, err := NewRunner(job)
	if err != nil {
		return nil, err
	}
	job = runner.Spec() // defaults (e.g. policy) filled in
	template, err := runner.Template(ctx)
	if err != nil {
		return nil, fmt.Errorf("fabric: deriving job template: %w", err)
	}
	frontier := *template
	c := &Coordinator{
		job:      job,
		runner:   runner,
		opts:     opts,
		clock:    opts.Clock,
		store:    opts.Store,
		template: template,
		frontier: &frontier,
		chunks:   make([]chunkState, sim.NumChunks(job.Trials)),
		leases:   map[string]*lease{},
		workers:  map[string]time.Time{},
		health:   map[string]*workerHealth{},
		done:     make(chan struct{}),
	}
	if c.clock == nil {
		c.clock = fault.Wall
	}
	if c.store == nil {
		c.store = &sim.ArtifactStore{}
	}
	c.contact = c.clock.Now()
	c.pending = make([]time.Time, len(c.chunks))
	for i := range c.pending {
		c.pending[i] = c.contact
	}
	// The root span of the whole distributed run. Started before restore
	// so the restore merge parents under it; ended by Finalize. All span
	// calls are nil-safe, so an untraced coordinator pays nil checks only.
	c.jobSpan = opts.Tracer.Start("job", span.SpanContext{},
		span.Str("model", job.Model), span.Int("n", job.N), span.Str("policy", job.Policy),
		span.Str("estimator", job.Estimator), span.Int64("seed", job.Seed),
		span.Int("trials", job.Trials), span.Int("chunks", len(c.chunks)))
	if opts.StatePath != "" {
		if err := c.restore(); err != nil {
			return nil, err
		}
	}
	c.mu.Lock()
	c.checkCompleteLocked()
	c.mu.Unlock()
	return c, nil
}

// Job returns the coordinator's job spec (defaults resolved).
func (c *Coordinator) Job() JobSpec { return c.job }

// restore loads the persisted frontier and adopts its chunks through
// the same validation path a network result takes.
func (c *Coordinator) restore() error {
	// Corrupt generations, if any, were already skipped by the store's
	// fallback scan (and reported via its metrics): they cost progress,
	// never correctness.
	cs, info, err := c.store.Load(c.opts.StatePath)
	if err != nil {
		return fmt.Errorf("fabric: restoring frontier: %w", err)
	}
	cp := cs[stateKey]
	if cp == nil {
		return nil
	}
	if _, _, err := c.accept(cp); err != nil {
		return fmt.Errorf("fabric: restoring frontier from %s: %w", info.Path, err)
	}
	return nil
}

// identityMismatch compares a delivered checkpoint's identity fields to
// the template's; the first disagreement is returned as a typed
// mismatch error (matching both ErrJobMismatch and
// sim.ErrCheckpointMismatch via the underlying MismatchError).
func (c *Coordinator) identityMismatch(cp *sim.Checkpoint) error {
	t := c.template
	var field string
	var want, got any
	switch {
	case cp.Version != t.Version:
		field, want, got = "version", t.Version, cp.Version
	case cp.Kind != t.Kind:
		field, want, got = "kind", t.Kind, cp.Kind
	case cp.Seed != t.Seed:
		field, want, got = "seed", t.Seed, cp.Seed
	case cp.Trials != t.Trials:
		field, want, got = "trials", t.Trials, cp.Trials
	case cp.ChunkSize != t.ChunkSize:
		field, want, got = "chunk_size", t.ChunkSize, cp.ChunkSize
	default:
		return nil
	}
	return fmt.Errorf("%w: %w", ErrJobMismatch, &sim.MismatchError{Field: field, Want: want, Got: got})
}

// accept merges a checkpoint fragment into the frontier,
// first-valid-wins per chunk. It validates identity and bounds before
// touching any state, so a bad fragment is rejected whole. Duplicate
// chunks (already done — late redelivery, or a reassigned lease whose
// original holder returned after all) are counted and dropped, which is
// exactly what makes delivery idempotent: however many times and in
// whatever order results arrive, each chunk's accumulator enters the
// merge once.
func (c *Coordinator) accept(cp *sim.Checkpoint) (accepted, duplicates int, err error) {
	sp := c.opts.Tracer.Start("merge", c.jobSpan.Context(), span.Int("chunks", len(cp.Chunks)))
	defer func() { sp.End(span.Int("accepted", accepted), span.Int("duplicates", duplicates)) }()
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.identityMismatch(cp); err != nil {
		return 0, 0, err
	}
	for _, cr := range cp.Chunks {
		if cr.Index < 0 || cr.Index >= len(c.chunks) {
			return 0, 0, fmt.Errorf("%w: chunk index %d outside [0, %d)", ErrJobMismatch, cr.Index, len(c.chunks))
		}
	}
	fresh := make(map[int]bool, len(cp.Chunks))
	for _, cr := range cp.Chunks {
		if c.chunks[cr.Index] == chunkDone || fresh[cr.Index] {
			duplicates++
			continue
		}
		c.frontier.Chunks = append(c.frontier.Chunks, cr)
		c.chunks[cr.Index] = chunkDone
		fresh[cr.Index] = true
		accepted++
	}
	if accepted > 0 {
		// Panic records ride with their chunk: adopt only the ones whose
		// chunk was accepted from this fragment, so a duplicate delivery
		// cannot double-record a quarantined trial either.
		for _, pr := range cp.Panics {
			if fresh[pr.Trial/c.template.ChunkSize] {
				c.frontier.Panics = append(c.frontier.Panics, pr)
			}
		}
		if err := c.persistLocked(); err != nil {
			return accepted, duplicates, err
		}
		c.checkCompleteLocked()
	}
	return accepted, duplicates, nil
}

// persistLocked saves the frontier through the artifact store (atomic,
// durable, checksummed, generation-rotated). Called with mu held.
func (c *Coordinator) persistLocked() error {
	if c.opts.StatePath == "" {
		return nil
	}
	if err := c.store.Save(c.opts.StatePath, sim.CheckpointSet{stateKey: c.frontier}); err != nil {
		return fmt.Errorf("fabric: persisting frontier: %w", err)
	}
	return nil
}

// checkCompleteLocked flips the completion latch once every chunk is
// done. Called with mu held.
func (c *Coordinator) checkCompleteLocked() {
	if c.complete {
		return
	}
	for _, st := range c.chunks {
		if st != chunkDone {
			return
		}
	}
	c.complete = true
	close(c.done)
}

// touchLocked records contact from a worker. Called with mu held.
func (c *Coordinator) touchLocked(worker string, now time.Time) {
	if worker != "" {
		c.workers[worker] = now
	}
	c.contact = now
}

// expireLocked returns every lapsed lease's not-yet-done chunks to the
// pending pool. With hedging, a chunk goes back to pending only when no
// *other* live lease still covers it — the hedge (or the primary) keeps
// working the range, and double-granting it would just burn a third
// worker. Called with mu held.
func (c *Coordinator) expireLocked(now time.Time) {
	for id, l := range c.leases {
		if !now.After(l.expires) {
			continue
		}
		n := 0
		for i := l.chunks.Lo; i < l.chunks.Hi; i++ {
			if c.chunks[i] == chunkLeased && !c.chunkCoveredLocked(i, id) {
				c.chunks[i] = chunkPending
				c.pending[i] = now
				n++
			}
		}
		delete(c.leases, id)
		c.expired++
		c.reassigned += int64(n)
		c.healthLocked(l.worker).expired++
		if c.opts.Metrics != nil {
			c.opts.Metrics.LeaseExpired(n)
		}
		l.span.End(span.Str("outcome", "expired"), span.Int("reassigned", n))
	}
}

// chunkCoveredLocked reports whether any lease other than `except`
// still covers chunk i. Called with mu held.
func (c *Coordinator) chunkCoveredLocked(i int, except string) bool {
	for id, l := range c.leases {
		if id != except && l.chunks.Lo <= i && i < l.chunks.Hi {
			return true
		}
	}
	return false
}

// healthLocked returns (allocating on first sight) the worker's
// scorecard. Called with mu held.
func (c *Coordinator) healthLocked(worker string) *workerHealth {
	h := c.health[worker]
	if h == nil {
		h = &workerHealth{}
		c.health[worker] = h
	}
	return h
}

// quarantineLocked blacklists a worker: flag it, revoke its outstanding
// leases (their chunks return to the pool immediately rather than at
// TTL), bump the metric, and drop a "quarantine" span under the job
// recording why. Called with mu held; the caller has already decided.
func (c *Coordinator) quarantineLocked(worker, reason string, now time.Time) {
	h := c.healthLocked(worker)
	if h.quarantined {
		return
	}
	h.quarantined = true
	c.quarantined++
	for _, l := range c.leases {
		if l.worker == worker {
			l.expires = now.Add(-time.Nanosecond)
		}
	}
	c.expireLocked(now)
	if c.opts.Metrics != nil {
		c.opts.Metrics.WorkerQuarantined()
	}
	c.opts.Tracer.Start("quarantine", c.jobSpan.Context(),
		span.Str("worker", worker), span.Bool("quarantined", true), span.Str("reason", reason),
		span.Int64("corrupt_uploads", h.corrupt), span.Float("score", h.score())).End()
}

// recordCompletionLocked feeds one lease's grant→delivery time into the
// hedge threshold ring. Called with mu held.
func (c *Coordinator) recordCompletionLocked(d time.Duration) {
	const ringCap = 256
	if len(c.completions) < ringCap {
		c.completions = append(c.completions, d)
	} else {
		c.completions[c.compIdx%ringCap] = d
	}
	c.compIdx++
}

// hedgeThresholdLocked derives the lease age past which a hedge may
// fire: HedgeFactor × the p99 (nearest-rank) of observed completion
// times, once HedgeMinSamples completions exist. Called with mu held.
func (c *Coordinator) hedgeThresholdLocked() (time.Duration, bool) {
	if len(c.completions) < c.opts.hedgeMinSamples() {
		return 0, false
	}
	ds := append([]time.Duration(nil), c.completions...)
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	idx := (len(ds)*99+99)/100 - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(ds) {
		idx = len(ds) - 1
	}
	return time.Duration(float64(ds[idx]) * c.opts.hedgeFactor()), true
}

// hedgeCandidateLocked picks the oldest lease worth hedging for an idle
// worker: held by someone else, not already fully hedged, past the age
// threshold, and still covering at least one not-done chunk. Called
// with mu held.
func (c *Coordinator) hedgeCandidateLocked(worker string, now time.Time) *lease {
	thr, ok := c.hedgeThresholdLocked()
	if !ok {
		return nil
	}
	var best *lease
	for _, l := range c.leases {
		if l.worker == worker || l.hedges >= c.opts.maxHedges() {
			continue
		}
		if now.Sub(l.granted) < thr {
			continue
		}
		live := false
		for i := l.chunks.Lo; i < l.chunks.Hi; i++ {
			if c.chunks[i] == chunkLeased {
				live = true
				break
			}
		}
		if !live {
			continue
		}
		if best == nil || l.granted.Before(best.granted) {
			best = l
		}
	}
	return best
}

// liveWorkersLocked counts workers seen within twice the lease TTL.
func (c *Coordinator) liveWorkersLocked(now time.Time) int {
	window := 2 * c.opts.leaseTTL()
	live := 0
	for _, seen := range c.workers {
		if now.Sub(seen) <= window {
			live++
		}
	}
	return live
}

// grant hands out the next lease: the first contiguous run of pending
// chunks, up to LeaseChunks long. When nothing is pending but leased
// chunks linger past the hedge threshold, an idle worker gets a hedge —
// a duplicate lease on the straggler's range. The returned SpanContext
// names the grant's "lease" span (zero when none was granted or tracing
// is off); the lease handler injects it into the response headers so
// the worker's spans parent under it.
func (c *Coordinator) grant(worker string) (LeaseResponse, span.SpanContext) {
	now := c.clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchLocked(worker, now)
	c.expireLocked(now)
	if c.complete {
		return LeaseResponse{Done: true}, span.SpanContext{}
	}
	h := c.healthLocked(worker)
	if !h.quarantined && c.opts.MinWorkerScore > 0 && h.granted >= 4 && h.score() < c.opts.MinWorkerScore {
		c.quarantineLocked(worker, "score", now)
	}
	if h.quarantined {
		return LeaseResponse{None: true, Quarantined: true,
			RetryMs: c.opts.leaseTTL().Milliseconds()}, span.SpanContext{}
	}
	held := 0
	for _, l := range c.leases {
		if l.worker == worker {
			held++
		}
	}
	if held >= c.opts.maxLeasesPerWorker() {
		// Admission control: this worker already holds its fill.
		return LeaseResponse{None: true, RetryMs: c.opts.leaseTTL().Milliseconds()/2 + 1}, span.SpanContext{}
	}
	lo := -1
	for i, st := range c.chunks {
		if st == chunkPending {
			lo = i
			break
		}
	}
	if lo < 0 {
		if c.opts.Hedge {
			if victim := c.hedgeCandidateLocked(worker, now); victim != nil {
				return c.issueLocked(worker, victim.chunks, victim, now)
			}
		}
		// Everything remaining is leased out; the worker should ask again
		// after a fraction of the TTL (by then either a result landed or a
		// lease expired).
		return LeaseResponse{None: true, RetryMs: c.opts.leaseTTL().Milliseconds()/2 + 1}, span.SpanContext{}
	}
	hi := lo
	for hi < len(c.chunks) && hi-lo < c.opts.leaseChunks() && c.chunks[hi] == chunkPending {
		c.chunks[hi] = chunkLeased
		hi++
	}
	if c.opts.Metrics != nil {
		// How long each granted chunk sat grantable — the "lease wait"
		// phase of the fabric's latency decomposition.
		for i := lo; i < hi; i++ {
			c.opts.Metrics.LeaseWait(now.Sub(c.pending[i]).Seconds())
		}
	}
	return c.issueLocked(worker, sim.ChunkRange{Lo: lo, Hi: hi}, nil, now)
}

// issueLocked mints a lease (or, with hedgeOf set, a hedge duplicating
// hedgeOf's range) for worker and builds the grant response. Called
// with mu held.
func (c *Coordinator) issueLocked(worker string, chunks sim.ChunkRange, hedgeOf *lease, now time.Time) (LeaseResponse, span.SpanContext) {
	c.nextLease++
	l := &lease{
		id:       fmt.Sprintf("lease-%d", c.nextLease),
		worker:   worker,
		chunks:   chunks,
		expires:  now.Add(c.opts.leaseTTL()),
		granted:  now,
		lastBeat: now,
	}
	attrs := []span.Attr{
		span.Str("lease", l.id), span.Str("worker", worker),
		span.Int("lo", chunks.Lo), span.Int("hi", chunks.Hi),
	}
	if hedgeOf != nil {
		l.hedgeOf = hedgeOf.id
		hedgeOf.hedges++
		c.hedged++
		attrs = append(attrs, span.Bool("hedge", true), span.Str("hedge_of", hedgeOf.id))
		if c.opts.Metrics != nil {
			c.opts.Metrics.HedgeIssued()
		}
	}
	l.span = c.opts.Tracer.Start("lease", c.jobSpan.Context(), attrs...)
	c.leases[l.id] = l
	c.granted++
	c.healthLocked(worker).granted++
	if c.opts.Metrics != nil {
		c.opts.Metrics.LeaseGranted(chunks.Hi - chunks.Lo)
	}
	job := c.job
	return LeaseResponse{
		Job: &job,
		Lease: &Lease{
			ID:     l.id,
			Chunks: l.chunks,
			TTLMs:  c.opts.leaseTTL().Milliseconds(),
		},
	}, l.span.Context()
}

// heartbeat extends a lease; a lease that no longer exists (expired and
// possibly reassigned) tells the worker to abandon the range.
func (c *Coordinator) heartbeat(req HeartbeatRequest) HeartbeatResponse {
	now := c.clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchLocked(req.Worker, now)
	c.expireLocked(now)
	if c.opts.Metrics != nil {
		c.opts.Metrics.HeartbeatSeen()
	}
	l, ok := c.leases[req.Lease]
	if !ok || l.worker != req.Worker {
		return HeartbeatResponse{Expired: true}
	}
	// Workers beat every TTL/3; a renewal arriving later than 2·TTL/3
	// after the previous one means at least one beat went missing —
	// heartbeat latency feeding the health score.
	if now.Sub(l.lastBeat) > c.opts.leaseTTL()*2/3 {
		c.healthLocked(l.worker).lateBeats++
	}
	l.lastBeat = now
	l.expires = now.Add(c.opts.leaseTTL())
	return HeartbeatResponse{OK: true}
}

// result ingests one delivered result: CRC-verified bytes were already
// unwrapped by the handler; here the fragment is validated and merged
// idempotently, and the worker's lease (if still held) is settled.
func (c *Coordinator) result(req ResultPayload) (ResultResponse, error) {
	now := c.clock.Now()
	var settled *lease
	c.mu.Lock()
	c.touchLocked(req.Worker, now)
	c.expireLocked(now)
	if l, ok := c.leases[req.Lease]; ok && l.worker == req.Worker {
		// Settle the lease: chunks it covered that the fragment does not
		// mark done fall back to pending (a worker only reports complete
		// ranges, so normally none) — unless another live lease (the
		// hedge, or the primary this hedge duplicated) still covers them.
		for i := l.chunks.Lo; i < l.chunks.Hi; i++ {
			if c.chunks[i] == chunkLeased && !c.chunkCoveredLocked(i, req.Lease) {
				c.chunks[i] = chunkPending
				c.pending[i] = now
			}
		}
		delete(c.leases, req.Lease)
		settled = l
	}
	c.mu.Unlock()

	if req.Checkpoint == nil {
		c.noteRejected()
		settled.endSpan("rejected", 0, 0)
		return ResultResponse{}, fmt.Errorf("%w: result carries no checkpoint", ErrJobMismatch)
	}
	accepted, dups, err := c.accept(req.Checkpoint)
	if err != nil {
		c.noteRejected()
		settled.endSpan("rejected", accepted, dups)
		return ResultResponse{}, err
	}
	settled.endSpan("delivered", accepted, dups)
	if c.opts.Metrics != nil {
		if accepted > 0 {
			c.opts.Metrics.ResultAccepted(accepted)
		}
		if dups > 0 {
			c.opts.Metrics.DuplicateChunks(dups)
		}
		if settled != nil {
			// Grant-to-result turnaround, spread over the lease's chunks:
			// the coordinator-side view of per-chunk duration.
			n := settled.chunks.Hi - settled.chunks.Lo
			if n > 0 {
				c.opts.Metrics.ChunkDuration(now.Sub(settled.granted).Seconds()/float64(n), n)
			}
		}
	}
	c.mu.Lock()
	c.duplicates += int64(dups)
	if settled != nil {
		c.healthLocked(settled.worker).delivered++
		c.recordCompletionLocked(now.Sub(settled.granted))
	}
	done := c.complete
	c.mu.Unlock()
	return ResultResponse{Accepted: accepted, Duplicates: dups, Done: done}, nil
}

// noteCorrupt charges a corrupt upload (failed checksum, JSON, or job
// identity) to the worker's scorecard and quarantines it past the
// configured threshold. The worker name comes from the WorkerHeader
// when the body was too corrupt to name one.
func (c *Coordinator) noteCorrupt(worker string) {
	if worker == "" {
		return
	}
	now := c.clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	h := c.healthLocked(worker)
	h.corrupt++
	if qc := c.opts.QuarantineCorrupt; qc > 0 && !h.quarantined && h.corrupt >= int64(qc) {
		c.quarantineLocked(worker, "corrupt-uploads", now)
	}
}

// endSpan closes a settled lease's span with its outcome; nil-safe for
// both an untraced coordinator and an already-expired (nil) lease.
func (l *lease) endSpan(outcome string, accepted, duplicates int) {
	if l == nil {
		return
	}
	l.span.End(span.Str("outcome", outcome), span.Int("accepted", accepted), span.Int("duplicates", duplicates))
}

func (c *Coordinator) noteRejected() {
	c.mu.Lock()
	c.rejected++
	c.mu.Unlock()
	if c.opts.Metrics != nil {
		c.opts.Metrics.ResultRejected()
	}
}

// Status snapshots progress; it also sweeps expiry so a status poller
// (or the Wait loop) keeps reassignment moving without worker traffic.
func (c *Coordinator) Status() Status {
	now := c.clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(now)
	s := Status{
		Trials:             c.job.Trials,
		Chunks:             len(c.chunks),
		WorkersLive:        c.liveWorkersLocked(now),
		Complete:           c.complete,
		LeasesGranted:      c.granted,
		LeasesExpired:      c.expired,
		ChunksReassigned:   c.reassigned,
		DuplicatesDropped:  c.duplicates,
		ResultsRejected:    c.rejected,
		HedgesIssued:       c.hedged,
		WorkersQuarantined: c.quarantined,
		RPCsShed:           c.shed,
	}
	for worker, h := range c.health {
		s.Workers = append(s.Workers, WorkerStatus{
			Worker: worker, Granted: h.granted, Delivered: h.delivered,
			Expired: h.expired, Corrupt: h.corrupt, LateHeartbeats: h.lateBeats,
			Score: h.score(), Quarantined: h.quarantined,
		})
	}
	sort.Slice(s.Workers, func(i, j int) bool { return s.Workers[i].Worker < s.Workers[j].Worker })
	for _, st := range c.chunks {
		switch st {
		case chunkDone:
			s.ChunksDone++
		case chunkLeased:
			s.ChunksLeased++
		default:
			s.ChunksPending++
		}
	}
	if c.opts.Metrics != nil {
		c.opts.Metrics.WorkersLive(s.WorkersLive)
	}
	return s
}

// Frontier returns a snapshot of the merge frontier safe to use while
// handlers keep running (records are immutable once appended; the
// snapshot copies the record slices under the lock). Records come back
// in canonical index order regardless of delivery order — one of the
// two halves of the bit-identity guarantee (the other being the
// engine's in-order chunk merge).
func (c *Coordinator) Frontier() *sim.Checkpoint {
	c.mu.Lock()
	cp := *c.frontier
	cp.Chunks = append([]sim.ChunkRecord(nil), c.frontier.Chunks...)
	cp.Panics = append([]sim.PanicRecord(nil), c.frontier.Panics...)
	c.mu.Unlock()
	sort.Slice(cp.Chunks, func(i, j int) bool { return cp.Chunks[i].Index < cp.Chunks[j].Index })
	sort.Slice(cp.Panics, func(i, j int) bool { return cp.Panics[i].Trial < cp.Panics[j].Trial })
	return &cp
}

// Done reports whether every chunk is merged.
func (c *Coordinator) Done() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.complete
}

// Wait blocks until the job completes, ctx cancels, or — when
// QuorumTimeout is set — no worker has made contact for that long while
// chunks are still missing (ErrQuorumLost). It sweeps lease expiry on a
// timer so a dead worker's chunks return to the pool even with no other
// traffic.
func (c *Coordinator) Wait(ctx context.Context) error {
	tick := c.opts.leaseTTL() / 2
	if tick <= 0 {
		tick = time.Second
	}
	for {
		select {
		case <-c.done:
			return nil
		case <-ctx.Done():
			return context.Cause(ctx)
		case <-c.clock.After(tick):
			c.Status() // sweeps expiry, refreshes the liveness gauge
			if q := c.opts.QuorumTimeout; q > 0 {
				c.mu.Lock()
				lost := !c.complete && c.clock.Now().Sub(c.contact) > q
				c.mu.Unlock()
				if lost {
					return fmt.Errorf("%w: no worker contact for %v", ErrQuorumLost, q)
				}
			}
		}
	}
}

// Finalize merges the current frontier into the job's estimate. On a
// complete frontier the merge runs in chunk order through the engine's
// resume path, so the rendered estimate is bit-identical to a
// single-process run; on a partial frontier it returns the partial
// estimate and an error matching sim.ErrInterrupted.
func (c *Coordinator) Finalize(ctx context.Context) (string, sim.RunReport, error) {
	sp := c.opts.Tracer.Start("finalize", c.jobSpan.Context())
	est, rep, err := c.runner.Finalize(ctx, c.Frontier())
	outcome := "complete"
	if err != nil {
		outcome = "partial"
	}
	sp.End(span.Int("merged", rep.Completed), span.Str("outcome", outcome))
	c.jobSpan.End(span.Str("outcome", outcome))
	return est, rep, err
}

// Handler returns the coordinator's HTTP surface:
//
//	POST /v1/lease      LeaseRequest  -> LeaseResponse
//	POST /v1/heartbeat  HeartbeatRequest -> HeartbeatResponse
//	POST /v1/result     envelope(ResultPayload) -> ResultResponse
//	GET  /v1/status     -> Status
//
// Serve it through obs.NewHTTPServer (or equivalent) so the listener
// carries header/idle timeouts.
func (c *Coordinator) Handler() http.Handler {
	// instrument wraps one route with the coordinator-side RPC
	// telemetry: a "serve.<route>" span parented under whatever trace
	// context the request headers carry (the worker's client-side RPC
	// span), and the rpc-latency histogram. Both are nil-guarded, so an
	// unobserved coordinator serves the bare handler logic.
	instrument := func(route string, h http.HandlerFunc) http.HandlerFunc {
		if c.opts.Tracer == nil && c.opts.Metrics == nil {
			return h
		}
		return func(w http.ResponseWriter, r *http.Request) {
			t0 := c.clock.Now()
			sp := c.opts.Tracer.Start("serve."+route, span.Extract(r.Header))
			h(w, r)
			sp.End()
			if c.opts.Metrics != nil {
				c.opts.Metrics.RPCServed(route, c.clock.Now().Sub(t0).Seconds())
			}
		}
	}
	// admit sheds load once MaxInflightRPCs fabric RPCs are already in
	// flight: 429 plus a Retry-After the worker's backoff honors. The
	// counter is atomic — an overloaded coordinator must refuse work
	// without queueing on the very lock that is overloaded.
	admit := func(h http.HandlerFunc) http.HandlerFunc {
		limit := int64(c.opts.MaxInflightRPCs)
		if limit <= 0 {
			return h
		}
		retryAfter := int(c.opts.leaseTTL().Seconds() / 2)
		if retryAfter < 1 {
			retryAfter = 1
		}
		return func(w http.ResponseWriter, r *http.Request) {
			if c.inflight.Add(1) > limit {
				c.inflight.Add(-1)
				c.mu.Lock()
				c.shed++
				c.mu.Unlock()
				if c.opts.Metrics != nil {
					c.opts.Metrics.RPCShed()
				}
				w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
				http.Error(w, "fabric: coordinator overloaded", http.StatusTooManyRequests)
				return
			}
			defer c.inflight.Add(-1)
			h(w, r)
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/lease", instrument("lease", admit(func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if !readJSON(w, r, &req) {
			return
		}
		resp, leaseCtx := c.grant(req.Worker)
		// Every lease response advertises the job's trace; a granted
		// lease additionally names its "lease" span as the parent the
		// worker's spans should hang under. Headers must precede the
		// body write.
		span.Inject(span.SpanContext{Trace: c.opts.Tracer.TraceID(), Span: leaseCtx.Span}, w.Header())
		writeJSON(w, resp)
	})))
	mux.HandleFunc("POST /v1/heartbeat", instrument("heartbeat", admit(func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if !readJSON(w, r, &req) {
			return
		}
		writeJSON(w, c.heartbeat(req))
	})))
	mux.HandleFunc("POST /v1/result", instrument("result", admit(func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxResultBody))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		// CRC verification on receipt: a truncated or bit-flipped upload
		// is refused here, before any of it can touch the frontier. The
		// reply is 422 — the worker's copy of the bytes is good, the
		// transit corrupted them, so retrying the upload is the fix —
		// and the corruption is charged to the worker named by the RPC
		// header (the body is unparseable, so it names nobody).
		payload, err := sim.DecodeEnvelope(body)
		if err != nil {
			c.noteRejected()
			c.noteCorrupt(r.Header.Get(WorkerHeader))
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		var req ResultPayload
		if err := json.Unmarshal(payload, &req); err != nil {
			c.noteRejected()
			c.noteCorrupt(r.Header.Get(WorkerHeader))
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		resp, err := c.result(req)
		if err != nil {
			// A fragment that decoded cleanly but fails job-identity
			// validation is a misbehaving worker, not line noise: 409,
			// which the worker treats as permanent.
			c.noteCorrupt(req.Worker)
			status := http.StatusConflict
			if !errors.Is(err, ErrJobMismatch) {
				status = http.StatusInternalServerError
			}
			http.Error(w, err.Error(), status)
			return
		}
		writeJSON(w, resp)
	})))
	mux.HandleFunc("GET /v1/status", instrument("status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Status())
	}))
	return mux
}

// readJSON decodes a small JSON request body, replying 400 on garbage.
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err == nil {
		err = json.Unmarshal(body, v)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
