// Package fabric is the distributed trial fabric: a coordinator that
// owns one Monte Carlo job (model + estimator + seed + trial budget)
// and carves its trial range into chunk-aligned leases, plus workers
// that pull leases over HTTP/JSON, run them through the compiled
// parallel engine (internal/sim), and stream back CRC-checked
// checkpoint-envelope results.
//
// The protocol is fault-first, in the spirit of the paper's
// quantification over all adversaries — here the adversary is the
// cluster itself:
//
//   - Leases expire. A worker holds a lease only as long as it
//     heartbeats; a SIGKILLed or partitioned worker's chunks return to
//     the pending pool and are reassigned to the next worker that asks.
//
//   - Results are idempotent. The first valid result per chunk wins:
//     duplicate deliveries, late deliveries from expired leases, and
//     reassigned-then-returned chunks are dropped without double
//     counting, so retrying a result upload is always safe.
//
//   - Transport is retried. Every worker RPC runs under
//     fault.RetryPolicy.DoCtx — exponential backoff, full jitter,
//     prompt cancellation.
//
//   - The frontier is durable. The coordinator's merge frontier is a
//     sim.Checkpoint persisted through the sim.ArtifactStore (CRC'd,
//     generation-rotated, atomic+durable writes), so a SIGKILLed
//     coordinator resumes bit-identically.
//
// Bit-identity is the invariant that makes all of this safe to use:
// every trial's RNG is a pure function of (seed, trial index), chunk
// boundaries are fixed, and the coordinator merges chunk accumulators
// in index order — so a 3-worker (or 50-worker) run, with any pattern
// of crashes and reassignment, produces output byte-identical to a
// single-process run of the same job.
package fabric

import (
	"errors"

	"repro/internal/sim"
)

// Estimator names accepted by JobSpec.Estimator.
const (
	// EstimatorReachProb estimates P[target reached within
	// JobSpec.Within] (stats.Proportion).
	EstimatorReachProb = "reachprob"
	// EstimatorTimeToTarget summarizes the time to reach the target
	// (stats.Summary); a trial that never reaches it fails the job, as in
	// the single-process engine.
	EstimatorTimeToTarget = "timetotarget"
)

// ErrQuorumLost reports a coordinator that gave up waiting: no worker
// made contact for the configured quorum timeout while chunks were
// still missing. The merge frontier persisted so far is the resume
// token.
var ErrQuorumLost = errors.New("fabric: worker quorum lost")

// ErrJobMismatch reports a result or restored frontier that does not
// belong to the coordinator's job (different kind, seed, trial budget
// or chunking). Merging it would corrupt the estimate, so it is
// refused.
var ErrJobMismatch = errors.New("fabric: result does not match this job")

// ErrWorkerQuarantined reports a worker the coordinator has blacklisted
// (too many corrupt uploads, or a health score below the floor): it
// will be granted no further leases and should exit.
var ErrWorkerQuarantined = errors.New("fabric: worker quarantined by coordinator")

// WorkerHeader carries the worker's ID on every RPC, so the coordinator
// can attribute a result whose *body* failed checksum or JSON decoding
// (and therefore names no worker) for corrupt-upload health accounting.
const WorkerHeader = "X-Fabric-Worker"

// JobSpec is the complete, serializable description of one distributed
// job. It is what the coordinator sends a worker inside a lease
// response; two processes holding equal specs reconstruct bit-identical
// models, policies and trial streams.
type JobSpec struct {
	// Model selects the scenario: "dining" (Lehmann–Rabin ring) or
	// "election" (leader election).
	Model string `json:"model"`
	// N is the model size (ring size / process count).
	N int `json:"n"`
	// Policy selects the adversary: for dining one of slowest, random,
	// spiteful, paced:<alpha>; for election only slowest. Empty means
	// slowest.
	Policy string `json:"policy,omitempty"`
	// Estimator is EstimatorReachProb or EstimatorTimeToTarget.
	Estimator string `json:"estimator"`
	// Within is the reach-probability deadline (EstimatorReachProb only).
	Within float64 `json:"within,omitempty"`
	// Trials is the total trial budget sharded across workers.
	Trials int `json:"trials"`
	// Seed is the root seed; per-trial streams derive from (Seed, trial
	// index) alone, which is what makes distribution invisible.
	Seed int64 `json:"seed"`
	// MaxEvents / MaxTime bound each trial (0 = engine defaults).
	MaxEvents int     `json:"max_events,omitempty"`
	MaxTime   float64 `json:"max_time,omitempty"`
	// BitCompat samples compiled moves with the cumulative scan instead
	// of alias tables (bit-identical to an uncompiled run).
	BitCompat bool `json:"bitcompat,omitempty"`
	// MaxPanics is the per-range quarantine budget handed to the engine.
	MaxPanics int `json:"max_panics,omitempty"`
}

// Metrics observes coordinator events. It is matched structurally
// (obs.FabricMetrics implements it; neither package imports the other).
// All methods are cold-path: per lease, per chunk, per result, per RPC,
// per sweep — never per trial.
type Metrics interface {
	LeaseGranted(chunks int)
	LeaseExpired(chunks int)
	ResultAccepted(chunks int)
	DuplicateChunks(n int)
	ResultRejected()
	HeartbeatSeen()
	WorkersLive(n int)
	// LeaseWait records how long one chunk sat pending (since job start
	// or its last lease expiry) before being granted — one call per
	// chunk per grant.
	LeaseWait(seconds float64)
	// RPCServed records one fabric RPC handled, with its route
	// ("lease", "heartbeat", "result", "status") and service time.
	RPCServed(route string, seconds float64)
	// ChunkDuration records the mean per-chunk grant-to-result
	// turnaround of one settled lease, weighted by its chunk count.
	ChunkDuration(seconds float64, chunks int)
	// HedgeIssued records one hedged lease: a speculative duplicate of
	// a straggling lease's range, granted before the original expired.
	HedgeIssued()
	// WorkerQuarantined records one worker blacklisted for misbehavior.
	WorkerQuarantined()
	// RPCShed records one RPC refused with 429 under admission control.
	RPCShed()
}

// Wire messages. Everything crosses the network as JSON; result bodies
// additionally travel inside the sim artifact envelope so a corrupted
// or truncated upload is detected by checksum on receipt, exactly like
// a corrupted checkpoint file at rest.

// LeaseRequest asks the coordinator for work.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// Lease is a time-bounded claim on a contiguous chunk range.
type Lease struct {
	ID string `json:"id"`
	// Chunks is the half-open chunk range leased, in the index space of
	// sim.NumChunks(job.Trials).
	Chunks sim.ChunkRange `json:"chunks"`
	// TTLMs is the lease lifetime in milliseconds; heartbeats extend it.
	TTLMs int64 `json:"ttl_ms"`
}

// LeaseResponse carries a lease (with the job spec), a back-off hint
// when everything is currently leased out, or the completion signal.
type LeaseResponse struct {
	// Done reports the job complete: the worker should exit.
	Done bool `json:"done,omitempty"`
	// None reports nothing grantable right now (all remaining chunks are
	// leased); retry after RetryMs.
	None    bool  `json:"none,omitempty"`
	RetryMs int64 `json:"retry_ms,omitempty"`
	// Quarantined tells the worker it is blacklisted: no lease will
	// ever be granted to it again, so it should exit rather than poll.
	Quarantined bool `json:"quarantined,omitempty"`
	// Job and Lease are set when a lease is granted.
	Job   *JobSpec `json:"job,omitempty"`
	Lease *Lease   `json:"lease,omitempty"`
}

// HeartbeatRequest renews a lease.
type HeartbeatRequest struct {
	Worker string `json:"worker"`
	Lease  string `json:"lease"`
}

// HeartbeatResponse acknowledges a renewal. Expired tells the worker
// its lease is gone (reassigned); it should abandon the range rather
// than waste cycles racing the new holder.
type HeartbeatResponse struct {
	OK      bool `json:"ok"`
	Expired bool `json:"expired,omitempty"`
}

// ResultPayload is the payload a worker wraps in a checksummed envelope
// (sim.EncodeEnvelope) and posts on lease completion: the checkpoint
// fragment covering exactly the leased chunk range, carrying the job's
// identity fields for validation on receipt.
type ResultPayload struct {
	Worker     string          `json:"worker"`
	Lease      string          `json:"lease"`
	Checkpoint *sim.Checkpoint `json:"checkpoint"`
}

// ResultResponse reports what a result delivery contributed.
type ResultResponse struct {
	// Accepted is the number of fresh chunk records merged into the
	// frontier; Duplicates is how many were dropped because an earlier
	// valid result already covered them.
	Accepted   int `json:"accepted"`
	Duplicates int `json:"duplicates"`
	// Done reports the job complete after this delivery.
	Done bool `json:"done,omitempty"`
}

// Status is the coordinator's progress snapshot (GET /v1/status).
type Status struct {
	Trials        int  `json:"trials"`
	Chunks        int  `json:"chunks"`
	ChunksDone    int  `json:"chunks_done"`
	ChunksLeased  int  `json:"chunks_leased"`
	ChunksPending int  `json:"chunks_pending"`
	WorkersLive   int  `json:"workers_live"`
	Complete      bool `json:"complete"`

	LeasesGranted     int64 `json:"leases_granted"`
	LeasesExpired     int64 `json:"leases_expired"`
	ChunksReassigned  int64 `json:"chunks_reassigned"`
	DuplicatesDropped int64 `json:"duplicates_dropped"`
	ResultsRejected   int64 `json:"results_rejected"`

	HedgesIssued       int64 `json:"hedges_issued"`
	WorkersQuarantined int64 `json:"workers_quarantined"`
	RPCsShed           int64 `json:"rpcs_shed"`
	// Workers is the per-worker health table, sorted by worker ID.
	Workers []WorkerStatus `json:"workers,omitempty"`
}

// WorkerStatus is one worker's health snapshot inside Status.
type WorkerStatus struct {
	Worker    string `json:"worker"`
	Granted   int64  `json:"granted"`
	Delivered int64  `json:"delivered"`
	Expired   int64  `json:"expired"`
	// Corrupt counts uploads from this worker that failed checksum,
	// JSON decoding, or job-identity validation.
	Corrupt int64 `json:"corrupt,omitempty"`
	// LateHeartbeats counts renewals that arrived more than 2/3 of a
	// TTL after the previous one (the worker beats every TTL/3).
	LateHeartbeats int64 `json:"late_heartbeats,omitempty"`
	// Score is the Laplace-smoothed health score in (0, 1]: delivered
	// leases against expiries, corrupt uploads (double weight) and late
	// heartbeats (half weight).
	Score       float64 `json:"score"`
	Quarantined bool    `json:"quarantined,omitempty"`
}
