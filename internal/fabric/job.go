package fabric

// The job registry: turning a serializable JobSpec into a Runner — the
// model, adversary policy, estimator and options it names, bound to the
// chunk-range execution seam of the parallel engine. A coordinator and
// its workers each build a Runner from the same spec; because models
// and policies are pure functions of the spec and every trial's RNG
// derives from (seed, trial index), the processes agree bit-for-bit on
// what every chunk computes.

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/dining"
	"repro/internal/election"
	"repro/internal/sched"
	"repro/internal/sim"
)

// EngineHooks is the per-call observability a Runner threads into the
// parallel engine: chunk-lifecycle span hooks (sim.ParallelOptions.
// SpanHooks) and pprof goroutine labels segmenting CPU profiles by
// job/lease. The zero value is free — both fields pass through as their
// nil defaults.
type EngineHooks struct {
	Spans  sim.SpanHooks
	Labels []string
}

// Runner executes pieces of one job against the local engine.
type Runner interface {
	// Spec returns the job this runner was built from.
	Spec() JobSpec
	// Template returns the run's empty checkpoint — identity fields
	// (estimator kind, seed, trial budget, chunk size) with no chunk
	// records — by executing an empty chunk range. It is the frontier a
	// coordinator starts from and validates results against.
	Template(ctx context.Context) (*sim.Checkpoint, error)
	// RunRange executes chunks [r.Lo, r.Hi) of the job's trial budget on
	// workers engine goroutines and returns the checkpoint fragment
	// covering exactly those chunks.
	RunRange(ctx context.Context, workers int, r sim.ChunkRange, eng EngineHooks) (*sim.Checkpoint, sim.RunReport, error)
	// Finalize merges a frontier checkpoint into the job's estimate,
	// rendered as the canonical result line fragment. The merge rides the
	// engine's resume path (restore all chunks, run nothing, merge in
	// chunk order), so a complete frontier yields output bit-identical to
	// a single-process run. An incomplete frontier yields the partial
	// estimate over the chunks present plus an error matching
	// sim.ErrInterrupted — the graceful-degradation path.
	Finalize(ctx context.Context, cp *sim.Checkpoint) (string, sim.RunReport, error)
	// Estimate runs the whole job locally in one pass (no checkpoint
	// round-trip) — the single-process reference the fabric is measured
	// against.
	Estimate(ctx context.Context, workers int, eng EngineHooks) (string, sim.RunReport, error)
}

// NewRunner validates spec and builds its Runner.
func NewRunner(spec JobSpec) (Runner, error) {
	if spec.Trials <= 0 {
		return nil, fmt.Errorf("fabric: job trials must be positive, got %d", spec.Trials)
	}
	if spec.N <= 0 {
		return nil, fmt.Errorf("fabric: job n must be positive, got %d", spec.N)
	}
	if spec.MaxPanics < 0 {
		return nil, fmt.Errorf("fabric: job max_panics must be >= 0, got %d", spec.MaxPanics)
	}
	switch spec.Estimator {
	case EstimatorReachProb:
		if spec.Within <= 0 {
			return nil, fmt.Errorf("fabric: estimator %q needs a positive within deadline, got %g", spec.Estimator, spec.Within)
		}
	case EstimatorTimeToTarget:
	default:
		return nil, fmt.Errorf("fabric: unknown estimator %q (want %s or %s)", spec.Estimator, EstimatorReachProb, EstimatorTimeToTarget)
	}
	if spec.Policy == "" {
		spec.Policy = "slowest"
	}
	switch spec.Model {
	case "dining":
		return newDiningRunner(spec)
	case "election":
		return newElectionRunner(spec)
	default:
		return nil, fmt.Errorf("fabric: unknown model %q (want dining or election)", spec.Model)
	}
}

func newDiningRunner(spec JobSpec) (Runner, error) {
	m, err := dining.New(spec.N)
	if err != nil {
		return nil, fmt.Errorf("fabric: building dining model: %w", err)
	}
	mk, err := diningPolicy(spec.Policy)
	if err != nil {
		return nil, err
	}
	return &runner[dining.State]{
		spec:   spec,
		model:  sim.Compile[dining.State](m),
		mk:     mk,
		target: dining.InC,
		opts: sim.Options[dining.State]{
			Start:     dining.AllAt(spec.N, dining.F),
			SetStart:  true,
			MaxEvents: spec.MaxEvents,
			MaxTime:   spec.MaxTime,
			BitCompat: spec.BitCompat,
		},
	}, nil
}

// diningPolicy mirrors the lrsim policy table so fabric jobs explore
// the same adversary menagerie as the single-process CLI.
func diningPolicy(name string) (func() sim.Policy[dining.State], error) {
	switch {
	case name == "slowest":
		return func() sim.Policy[dining.State] {
			return dining.KeepTrying(sim.Slowest[dining.State]())
		}, nil
	case name == "random":
		return func() sim.Policy[dining.State] {
			return dining.KeepTrying(sim.Random[dining.State](0.5))
		}, nil
	case name == "spiteful":
		return func() sim.Policy[dining.State] {
			return dining.Spiteful()
		}, nil
	case strings.HasPrefix(name, "paced:"):
		alpha, err := strconv.ParseFloat(strings.TrimPrefix(name, "paced:"), 64)
		if err != nil || alpha <= 0 || alpha > 1 {
			return nil, fmt.Errorf("fabric: bad paced alpha in %q", name)
		}
		return func() sim.Policy[dining.State] {
			return dining.KeepTrying(sim.Paced[dining.State](alpha))
		}, nil
	default:
		return nil, fmt.Errorf("fabric: unknown dining policy %q", name)
	}
}

func newElectionRunner(spec JobSpec) (Runner, error) {
	if spec.Policy != "slowest" {
		return nil, fmt.Errorf("fabric: election supports only the slowest policy, got %q", spec.Policy)
	}
	m, err := election.New(spec.N)
	if err != nil {
		return nil, fmt.Errorf("fabric: building election model: %w", err)
	}
	return &runner[election.State]{
		spec:  spec,
		model: sim.Compile[election.State](m),
		mk: func() sim.Policy[election.State] {
			return sim.Slowest[election.State]()
		},
		target: election.State.HasLeader,
		opts: sim.Options[election.State]{
			MaxEvents: spec.MaxEvents,
			MaxTime:   spec.MaxTime,
			BitCompat: spec.BitCompat,
		},
	}, nil
}

// runner binds a spec to its concrete model/policy/estimator. The model
// is compiled once at construction, so every range a worker runs shares
// one warm transition cache.
type runner[S comparable] struct {
	spec   JobSpec
	model  sched.Model[S]
	mk     func() sim.Policy[S]
	target func(S) bool
	opts   sim.Options[S]
}

func (r *runner[S]) Spec() JobSpec { return r.spec }

func (r *runner[S]) popts(workers int) sim.ParallelOptions {
	return sim.ParallelOptions{
		Workers:   workers,
		Seed:      r.spec.Seed,
		MaxPanics: r.spec.MaxPanics,
	}
}

// estimate dispatches to the estimator wrapper the spec names and
// renders the estimate in the canonical form both `simd local` and the
// coordinator print — the strings byte-compared by the fabric's
// identity tests.
func (r *runner[S]) estimate(ctx context.Context, popts sim.ParallelOptions) (string, sim.RunReport, error) {
	switch r.spec.Estimator {
	case EstimatorTimeToTarget:
		est, rep, err := sim.EstimateTimeToTargetParallel(ctx, r.model, r.mk, r.target,
			r.spec.Trials, r.opts, popts)
		return fmt.Sprintf("E[time to target] = %s", est.String()), rep, err
	default: // validated at construction; reachprob
		est, rep, err := sim.EstimateReachProbParallel(ctx, r.model, r.mk, r.target,
			r.spec.Within, r.spec.Trials, r.opts, popts)
		return fmt.Sprintf("P[target within %g] = %s", r.spec.Within, est.String()), rep, err
	}
}

func (r *runner[S]) Template(ctx context.Context) (*sim.Checkpoint, error) {
	cp, _, err := r.RunRange(ctx, 1, sim.ChunkRange{}, EngineHooks{})
	return cp, err
}

func (r *runner[S]) RunRange(ctx context.Context, workers int, cr sim.ChunkRange, eng EngineHooks) (*sim.Checkpoint, sim.RunReport, error) {
	popts := r.popts(workers)
	popts.Chunks = &cr
	popts.SpanHooks = eng.Spans
	popts.PprofLabels = eng.Labels
	_, rep, err := r.estimate(ctx, popts)
	return rep.Checkpoint, rep, err
}

func (r *runner[S]) Finalize(ctx context.Context, cp *sim.Checkpoint) (string, sim.RunReport, error) {
	popts := r.popts(1)
	popts.Resume = cp
	if !cp.Complete() {
		// Partial frontier: merge what is restored without running the
		// missing chunks — an already-cancelled context makes the engine
		// skip execution and return the partial estimate + ErrInterrupted.
		cctx, cancel := context.WithCancel(ctx)
		cancel()
		ctx = cctx
	}
	return r.estimate(ctx, popts)
}

func (r *runner[S]) Estimate(ctx context.Context, workers int, eng EngineHooks) (string, sim.RunReport, error) {
	popts := r.popts(workers)
	popts.SpanHooks = eng.Spans
	popts.PprofLabels = eng.Labels
	return r.estimate(ctx, popts)
}
