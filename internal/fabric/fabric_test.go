package fabric

// Tests for the distributed trial fabric. The through-line is the
// bit-identity contract: whatever the cluster does — results out of
// order, duplicated, reassigned after expiry, a coordinator restarted
// from its state file — the finalized estimate must be byte-equal to a
// single-process run of the same job.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/sim"
)

// testJob is the canonical small job: dining ring of 3 under the
// slowest adversary, 320 trials = 5 chunks.
func testJob(trials int) JobSpec {
	return JobSpec{
		Model:     "dining",
		N:         3,
		Policy:    "slowest",
		Estimator: EstimatorReachProb,
		Within:    13,
		Trials:    trials,
		Seed:      7,
	}
}

// reference computes the single-process estimate string for spec.
func reference(t *testing.T, spec JobSpec) string {
	t.Helper()
	runner, err := NewRunner(spec)
	if err != nil {
		t.Fatal(err)
	}
	est, _, err := runner.Estimate(context.Background(), 4, EngineHooks{})
	if err != nil {
		t.Fatal(err)
	}
	return est
}

// TestFabricSmoke runs a coordinator and two in-process workers over
// real HTTP and demands the distributed estimate equal the
// single-process one. This is the test behind `make fabric-smoke`.
func TestFabricSmoke(t *testing.T) {
	ctx := context.Background()
	spec := testJob(512)
	c, err := NewCoordinator(ctx, spec, CoordinatorOptions{LeaseChunks: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := &Worker{
				Coordinator: ts.URL,
				ID:          fmt.Sprintf("smoke-%d", i),
				Workers:     2,
			}
			errs[i] = w.Run(ctx)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := c.Wait(wctx); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	got, rep, err := c.Finalize(ctx)
	if err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	if want := reference(t, spec); got != want {
		t.Errorf("distributed estimate %q != single-process %q", got, want)
	}
	if rep.Completed != spec.Trials {
		t.Errorf("finalized %d trials, want %d", rep.Completed, spec.Trials)
	}
}

// TestMergeIdempotencyProperty is the satellite property test: chunk
// results delivered out of order, duplicated, and — modeling hedged
// leases — computed by 2–3 concurrent "workers" racing the same
// in-flight range with shuffled completion orders, always finalize to
// the estimate of an in-order single-process run — for both estimators,
// across randomized partitions and delivery orders.
func TestMergeIdempotencyProperty(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(99))
	for _, estimator := range []string{EstimatorReachProb, EstimatorTimeToTarget} {
		spec := testJob(320)
		spec.Estimator = estimator
		want := reference(t, spec)
		runner, err := NewRunner(spec)
		if err != nil {
			t.Fatal(err)
		}
		numChunks := sim.NumChunks(spec.Trials)
		for round := 0; round < 4; round++ {
			// A random partition of the chunk index space...
			cuts := []int{0, numChunks}
			for i := 0; i < 1+rng.Intn(3); i++ {
				cuts = append(cuts, 1+rng.Intn(numChunks-1))
			}
			sortInts(cuts)
			var ranges []sim.ChunkRange
			for i := 1; i < len(cuts); i++ {
				if cuts[i] > cuts[i-1] {
					ranges = append(ranges, sim.ChunkRange{Lo: cuts[i-1], Hi: cuts[i]})
				}
			}
			// ...some ranges hedged: duplicated to 2–3 concurrent workers,
			// as when the coordinator speculatively re-issues a straggling
			// lease (or an expired one is reassigned while the original
			// worker delivers late)...
			type delivery struct {
				r      sim.ChunkRange
				worker string
			}
			var deliveries []delivery
			var delivered []sim.ChunkRange
			for ri, r := range ranges {
				copies := 1
				if rng.Intn(2) == 0 {
					copies = 2 + rng.Intn(2)
				}
				for cp := 0; cp < copies; cp++ {
					deliveries = append(deliveries, delivery{r: r, worker: fmt.Sprintf("w%d-%d", ri, cp)})
					delivered = append(delivered, r)
				}
			}
			// ...launched in a random order and completing concurrently, so
			// the merge sees every interleaving the race can produce.
			rng.Shuffle(len(deliveries), func(i, j int) {
				deliveries[i], deliveries[j] = deliveries[j], deliveries[i]
			})
			frags := map[sim.ChunkRange]*sim.Checkpoint{}
			for _, r := range ranges {
				frag, _, err := runner.RunRange(ctx, 1+rng.Intn(3), r, EngineHooks{})
				if err != nil {
					t.Fatal(err)
				}
				frags[r] = frag
			}

			c, err := NewCoordinator(ctx, spec, CoordinatorOptions{})
			if err != nil {
				t.Fatal(err)
			}
			errCh := make(chan error, len(deliveries))
			var wg sync.WaitGroup
			for di, d := range deliveries {
				wg.Add(1)
				go func(di int, d delivery) {
					defer wg.Done()
					if _, err := c.result(ResultPayload{
						Worker:     d.worker,
						Lease:      fmt.Sprintf("unknown-%d", di),
						Checkpoint: frags[d.r],
					}); err != nil {
						errCh <- fmt.Errorf("delivery %v by %s: %w", d.r, d.worker, err)
					}
				}(di, d)
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Fatal(err)
			}
			if !c.Done() {
				t.Fatalf("round %d: coordinator not done after full delivery", round)
			}
			got, _, err := c.Finalize(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("%s round %d: estimate %q != reference %q (deliveries %v)",
					estimator, round, got, want, delivered)
			}
			if st := c.Status(); st.DuplicatesDropped != int64(extraChunks(delivered)) {
				t.Errorf("%s round %d: %d duplicate chunks dropped, want %d",
					estimator, round, st.DuplicatesDropped, extraChunks(delivered))
			}
		}
	}
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// extraChunks counts chunk deliveries beyond the first per index.
func extraChunks(deliveries []sim.ChunkRange) int {
	seen := map[int]int{}
	extra := 0
	for _, r := range deliveries {
		for i := r.Lo; i < r.Hi; i++ {
			if seen[i] > 0 {
				extra++
			}
			seen[i]++
		}
	}
	return extra
}

// TestLeaseExpiryReassignment: a worker that stops heartbeating loses
// its chunks to the next worker, and its late result is dropped as
// duplicates once the replacement delivered.
func TestLeaseExpiryReassignment(t *testing.T) {
	ctx := context.Background()
	fc := fault.NewFakeClock(time.Unix(0, 0))
	spec := testJob(320)
	c, err := NewCoordinator(ctx, spec, CoordinatorOptions{
		Clock:       fc,
		LeaseChunks: 2,
		LeaseTTL:    3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	runner, err := NewRunner(spec)
	if err != nil {
		t.Fatal(err)
	}

	lr1, _ := c.grant("w1")
	if lr1.Lease == nil || lr1.Lease.Chunks.Lo != 0 || lr1.Lease.Chunks.Hi != 2 {
		t.Fatalf("first lease = %+v, want chunks [0,2)", lr1)
	}
	// w1 goes silent; the TTL lapses.
	fc.Advance(4 * time.Second)
	lr2, _ := c.grant("w2")
	if lr2.Lease == nil || lr2.Lease.Chunks != lr1.Lease.Chunks {
		t.Fatalf("reassigned lease = %+v, want w1's chunks %v", lr2, lr1.Lease.Chunks)
	}
	st := c.Status()
	if st.LeasesExpired != 1 || st.ChunksReassigned != 2 {
		t.Errorf("status after expiry = %d expired / %d reassigned, want 1 / 2", st.LeasesExpired, st.ChunksReassigned)
	}

	frag, _, err := runner.RunRange(ctx, 2, lr1.Lease.Chunks, EngineHooks{})
	if err != nil {
		t.Fatal(err)
	}
	// The replacement delivers first...
	resp, err := c.result(ResultPayload{Worker: "w2", Lease: lr2.Lease.ID, Checkpoint: frag})
	if err != nil || resp.Accepted != 2 {
		t.Fatalf("w2 delivery = %+v, %v; want 2 accepted", resp, err)
	}
	// ...and w1's late result (same chunks, recomputed bit-identically)
	// is dropped without double counting.
	resp, err = c.result(ResultPayload{Worker: "w1", Lease: lr1.Lease.ID, Checkpoint: frag})
	if err != nil || resp.Accepted != 0 || resp.Duplicates != 2 {
		t.Fatalf("w1 late delivery = %+v, %v; want 0 accepted, 2 duplicates", resp, err)
	}
}

// TestHeartbeatExtendsLease: heartbeats keep a lease alive past its
// original TTL; a heartbeat for a lost lease reports Expired.
func TestHeartbeatExtendsLease(t *testing.T) {
	ctx := context.Background()
	fc := fault.NewFakeClock(time.Unix(0, 0))
	c, err := NewCoordinator(ctx, testJob(320), CoordinatorOptions{
		Clock:       fc,
		LeaseChunks: 2,
		LeaseTTL:    3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	lr, _ := c.grant("w1")
	fc.Advance(2 * time.Second)
	if hb := c.heartbeat(HeartbeatRequest{Worker: "w1", Lease: lr.Lease.ID}); !hb.OK {
		t.Fatalf("heartbeat at t=2s = %+v, want OK", hb)
	}
	// t=4s: past the original expiry, inside the extended one.
	fc.Advance(2 * time.Second)
	if next, _ := c.grant("w2"); next.Lease == nil || next.Lease.Chunks.Lo != 2 {
		t.Fatalf("lease after heartbeat = %+v, want fresh chunks from 2", next)
	}
	// t=8s: the extension lapsed too.
	fc.Advance(4 * time.Second)
	if hb := c.heartbeat(HeartbeatRequest{Worker: "w1", Lease: lr.Lease.ID}); !hb.Expired {
		t.Fatalf("heartbeat after expiry = %+v, want Expired", hb)
	}
	// A heartbeat for someone else's lease does not renew it.
	lr3, _ := c.grant("w3")
	if hb := c.heartbeat(HeartbeatRequest{Worker: "w4", Lease: lr3.Lease.ID}); !hb.Expired {
		t.Fatalf("foreign heartbeat = %+v, want Expired", hb)
	}
}

// TestResultRejection: fragments from the wrong job, out-of-range
// chunks, and corrupt envelopes are refused — typed errors, HTTP 400s,
// and counted rejections — without touching the frontier.
func TestResultRejection(t *testing.T) {
	ctx := context.Background()
	spec := testJob(320)
	c, err := NewCoordinator(ctx, spec, CoordinatorOptions{})
	if err != nil {
		t.Fatal(err)
	}

	wrong := spec
	wrong.Seed = 8
	wrongRunner, err := NewRunner(wrong)
	if err != nil {
		t.Fatal(err)
	}
	frag, _, err := wrongRunner.RunRange(ctx, 1, sim.ChunkRange{Lo: 0, Hi: 1}, EngineHooks{})
	if err != nil {
		t.Fatal(err)
	}
	_, rerr := c.result(ResultPayload{Worker: "w", Lease: "l", Checkpoint: frag})
	if !errors.Is(rerr, ErrJobMismatch) || !errors.Is(rerr, sim.ErrCheckpointMismatch) {
		t.Errorf("wrong-seed result err = %v, want ErrJobMismatch and ErrCheckpointMismatch", rerr)
	}
	if !strings.Contains(fmt.Sprint(rerr), "seed") {
		t.Errorf("mismatch error %q does not name the offending field", rerr)
	}

	// Over HTTP: a corrupted envelope bounces with a 422 before parsing
	// — unprocessable rather than bad-request, so a worker whose upload
	// was mangled in transit retries the same bytes instead of giving up.
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/result", "application/json", strings.NewReader(`{"artifact_version":2,"crc32c":"00000000","payload":{}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("corrupt envelope status = %d, want 422", resp.StatusCode)
	}
	if st := c.Status(); st.ResultsRejected != 2 || st.ChunksDone != 0 {
		t.Errorf("status = %d rejected / %d done, want 2 / 0", st.ResultsRejected, st.ChunksDone)
	}
}

// TestCoordinatorRestore: a coordinator restarted on the same state
// file resumes the merge frontier exactly — the delivered chunks stay
// done, the rest complete, and the estimate is the single-process one.
func TestCoordinatorRestore(t *testing.T) {
	ctx := context.Background()
	spec := testJob(320)
	statePath := filepath.Join(t.TempDir(), "fabric.json")
	opts := CoordinatorOptions{StatePath: statePath, LeaseChunks: 2}

	c1, err := NewCoordinator(ctx, spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	runner, err := NewRunner(spec)
	if err != nil {
		t.Fatal(err)
	}
	frag, _, err := runner.RunRange(ctx, 2, sim.ChunkRange{Lo: 0, Hi: 3}, EngineHooks{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.result(ResultPayload{Worker: "w", Lease: "l", Checkpoint: frag}); err != nil {
		t.Fatal(err)
	}
	// The partial frontier finalizes to a partial estimate (graceful
	// degradation), flagged as interrupted.
	if _, rep, err := c1.Finalize(ctx); !errors.Is(err, sim.ErrInterrupted) || rep.Completed != 3*64 {
		t.Fatalf("partial Finalize = %d trials, %v; want %d trials and ErrInterrupted", rep.Completed, err, 3*64)
	}

	// "SIGKILL": c1 is dropped with no shutdown. A new coordinator on the
	// same state file picks up the frontier.
	c2, err := NewCoordinator(ctx, spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st := c2.Status(); st.ChunksDone != 3 {
		t.Fatalf("restored ChunksDone = %d, want 3", st.ChunksDone)
	}
	rest, _, err := runner.RunRange(ctx, 2, sim.ChunkRange{Lo: 3, Hi: sim.NumChunks(spec.Trials)}, EngineHooks{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.result(ResultPayload{Worker: "w", Lease: "l2", Checkpoint: rest}); err != nil {
		t.Fatal(err)
	}
	if !c2.Done() {
		t.Fatal("coordinator not done after completing restored run")
	}
	got, _, err := c2.Finalize(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if want := reference(t, spec); got != want {
		t.Errorf("restored estimate %q != single-process %q", got, want)
	}

	// A third restart of an already-complete job is immediately done.
	c3, err := NewCoordinator(ctx, spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !c3.Done() {
		t.Error("restart of a complete job not immediately done")
	}
	// Restoring under a different job identity refuses the frontier.
	other := spec
	other.Seed = 1234
	if _, err := NewCoordinator(ctx, other, opts); !errors.Is(err, ErrJobMismatch) {
		t.Errorf("restore under wrong seed err = %v, want ErrJobMismatch", err)
	}
}

// TestWaitQuorumLoss: with no worker contact past the quorum timeout,
// Wait gives up with ErrQuorumLost instead of hanging forever.
func TestWaitQuorumLoss(t *testing.T) {
	ctx := context.Background()
	fc := fault.NewFakeClock(time.Unix(0, 0))
	c, err := NewCoordinator(ctx, testJob(320), CoordinatorOptions{
		Clock:         fc,
		LeaseTTL:      2 * time.Second,
		QuorumTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- c.Wait(ctx) }()
	// Drive the sweep timer by hand: wait for Wait to park on the fake
	// clock, advance past the tick, repeat — until the advances cross the
	// quorum timeout and Wait gives up instead of re-parking.
	deadline := time.Now().Add(30 * time.Second)
	for i := 0; i < 30; i++ {
		for fc.Waiters() == 0 {
			select {
			case err := <-done:
				if !errors.Is(err, ErrQuorumLost) {
					t.Fatalf("Wait = %v, want ErrQuorumLost", err)
				}
				return
			default:
			}
			if time.Now().After(deadline) {
				t.Fatal("Wait neither parked on the clock nor returned")
			}
			time.Sleep(time.Millisecond)
		}
		fc.Advance(time.Second)
	}
	t.Fatal("Wait did not give up after the quorum timeout")
}
