package pa

import (
	"fmt"

	"repro/internal/prob"
)

// This file implements the paper's patient construction (Section 2): an
// untimed automaton gains a time component, time-passage steps that only
// advance the clock, and a start time of zero. Time passage is
// nondeterministic — the adversary chooses among the offered increments —
// and non-probabilistic, exactly as the paper requires. To keep the state
// space finite for exhaustive analysis, increments are multiples of a
// base quantum and the clock saturates at a horizon.

// TimedState pairs an untimed state with the clock, counted in quanta.
type TimedState[S comparable] struct {
	// Base is the untimed state.
	Base S
	// Units is the elapsed time in quanta.
	Units int32
}

// PassageAction returns the name of the time-passage step advancing k
// quanta (the paper's ν action, one per offered increment).
func PassageAction(k int) string { return fmt.Sprintf("ν%d", k) }

// Patient applies the patient construction to m: every original step is
// preserved (acting on the base component), and every state additionally
// offers one time-passage step per multiple in increments, each advancing
// that many quanta of duration quantum. The clock saturates at
// maxUnits — passage steps that would exceed it are not offered —
// bounding the state space.
//
// The resulting automaton's Duration reports quantum·k for passage steps
// and zero for original actions, so time-bounded event schemas (package
// events) evaluate correctly on it.
func Patient[S comparable](m *Automaton[S], quantum prob.Rat, increments []int, maxUnits int) (*Automaton[TimedState[S]], error) {
	if quantum.Sign() <= 0 {
		return nil, fmt.Errorf("pa: time quantum %v must be positive", quantum)
	}
	if maxUnits <= 0 {
		return nil, fmt.Errorf("pa: horizon %d must be positive", maxUnits)
	}
	if len(increments) == 0 {
		return nil, fmt.Errorf("pa: no time-passage increments")
	}
	for _, k := range increments {
		if k <= 0 {
			return nil, fmt.Errorf("pa: non-positive increment %d", k)
		}
	}
	incs := append([]int(nil), increments...)

	starts := make([]TimedState[S], len(m.Start))
	for i, s := range m.Start {
		starts[i] = TimedState[S]{Base: s} // time starts at zero
	}

	baseDuration := m.Duration

	return &Automaton[TimedState[S]]{
		Name:  m.Name + "/patient",
		Start: starts,
		Sig:   m.Sig,
		Steps: func(ts TimedState[S]) []Step[TimedState[S]] {
			var out []Step[TimedState[S]]
			for _, step := range m.Steps(ts.Base) {
				out = append(out, Step[TimedState[S]]{
					Action: step.Action,
					Next: prob.MapDist(step.Next, func(b S) TimedState[S] {
						return TimedState[S]{Base: b, Units: ts.Units}
					}),
				})
			}
			for _, k := range incs {
				next := ts.Units + int32(k)
				if int(next) > maxUnits {
					continue
				}
				out = append(out, Step[TimedState[S]]{
					Action: PassageAction(k),
					Next:   prob.Point(TimedState[S]{Base: ts.Base, Units: next}),
				})
			}
			return out
		},
		Duration: func(action string) prob.Rat {
			for _, k := range incs {
				if action == PassageAction(k) {
					return quantum.Mul(prob.FromInt(int64(k)))
				}
			}
			if baseDuration != nil {
				return baseDuration(action)
			}
			return prob.Zero()
		},
	}, nil
}
