package pa

import (
	"errors"
	"testing"

	"repro/internal/prob"
)

// walkState is the state of the small test automaton used throughout this
// package: a random walk on 0..4 with an absorbing top and a
// nondeterministic choice at state 0.
type walkState int

// walkAutomaton has, from state 0, two enabled steps ("up" deterministic,
// "coin" probabilistic); from 1..3 a single probabilistic step; state 4 is
// absorbing.
func walkAutomaton() *Automaton[walkState] {
	return &Automaton[walkState]{
		Name:  "walk",
		Start: []walkState{0},
		Sig:   NewSignature([]string{"up"}, []string{"coin"}),
		Steps: func(s walkState) []Step[walkState] {
			switch {
			case s == 0:
				return []Step[walkState]{
					{Action: "up", Next: prob.Point(walkState(1))},
					{Action: "coin", Next: prob.MustUniform(walkState(0), walkState(2))},
				}
			case s < 4:
				return []Step[walkState]{
					{Action: "coin", Next: prob.MustUniform(s-1, s+1)},
				}
			default:
				return nil
			}
		},
	}
}

func TestAutomatonValidate(t *testing.T) {
	t.Run("valid", func(t *testing.T) {
		if err := walkAutomaton().Validate(); err != nil {
			t.Errorf("Validate: %v", err)
		}
	})
	t.Run("no start states", func(t *testing.T) {
		m := walkAutomaton()
		m.Start = nil
		if err := m.Validate(); err == nil {
			t.Error("Validate accepted empty start set")
		}
	})
	t.Run("nil steps", func(t *testing.T) {
		m := walkAutomaton()
		m.Steps = nil
		if err := m.Validate(); err == nil {
			t.Error("Validate accepted nil Steps")
		}
	})
	t.Run("invalid distribution", func(t *testing.T) {
		m := &Automaton[int]{
			Start: []int{0},
			Steps: func(int) []Step[int] {
				return []Step[int]{{Action: "bad", Next: prob.Dist[int]{}}}
			},
		}
		if err := m.Validate(); err == nil {
			t.Error("Validate accepted invalid distribution")
		}
	})
}

func TestReachable(t *testing.T) {
	m := walkAutomaton()
	states, err := m.Reachable(0)
	if err != nil {
		t.Fatalf("Reachable: %v", err)
	}
	if got, want := len(states), 5; got != want {
		t.Errorf("reachable %d states, want %d", got, want)
	}
	seen := make(map[walkState]bool)
	for _, s := range states {
		if seen[s] {
			t.Errorf("state %v discovered twice", s)
		}
		seen[s] = true
	}
	for s := walkState(0); s <= 4; s++ {
		if !seen[s] {
			t.Errorf("state %v not reachable", s)
		}
	}
}

func TestReachableLimit(t *testing.T) {
	m := walkAutomaton()
	_, err := m.Reachable(2)
	if !errors.Is(err, ErrLimitExceeded) {
		t.Errorf("err = %v, want ErrLimitExceeded", err)
	}
}

func TestCheckReachable(t *testing.T) {
	if err := walkAutomaton().CheckReachable(0); err != nil {
		t.Errorf("CheckReachable: %v", err)
	}
}

func TestIsFullyProbabilistic(t *testing.T) {
	t.Run("nondeterministic automaton", func(t *testing.T) {
		got, err := walkAutomaton().IsFullyProbabilistic(0)
		if err != nil {
			t.Fatalf("IsFullyProbabilistic: %v", err)
		}
		if got {
			t.Error("walk automaton reported fully probabilistic")
		}
	})
	t.Run("deterministic chain", func(t *testing.T) {
		m := &Automaton[int]{
			Start: []int{0},
			Steps: func(s int) []Step[int] {
				if s >= 3 {
					return nil
				}
				return []Step[int]{{Action: "next", Next: prob.Point(s + 1)}}
			},
		}
		got, err := m.IsFullyProbabilistic(0)
		if err != nil {
			t.Fatalf("IsFullyProbabilistic: %v", err)
		}
		if !got {
			t.Error("deterministic chain not reported fully probabilistic")
		}
	})
	t.Run("two start states", func(t *testing.T) {
		m := walkAutomaton()
		m.Start = []walkState{0, 1}
		got, err := m.IsFullyProbabilistic(0)
		if err != nil {
			t.Fatalf("IsFullyProbabilistic: %v", err)
		}
		if got {
			t.Error("two start states reported fully probabilistic")
		}
	})
}

func TestDurationOf(t *testing.T) {
	m := walkAutomaton()
	if got := m.DurationOf("coin"); !got.IsZero() {
		t.Errorf("DurationOf(coin) = %v, want 0 with nil Duration", got)
	}
	m.Duration = func(a string) prob.Rat {
		if a == "tick" {
			return prob.One()
		}
		return prob.Zero()
	}
	if got := m.DurationOf("tick"); !got.IsOne() {
		t.Errorf("DurationOf(tick) = %v, want 1", got)
	}
}

func TestSignature(t *testing.T) {
	sig := NewSignature([]string{"crit", "rem"}, []string{"flip"})
	if !sig.IsExternal("crit") {
		t.Error("crit not external")
	}
	if sig.IsExternal("flip") {
		t.Error("flip reported external")
	}
	if sig.IsExternal("unknown") {
		t.Error("unknown action reported external")
	}
}

func TestEnabledFrom(t *testing.T) {
	m := walkAutomaton()
	if !m.EnabledFrom(0) {
		t.Error("state 0 should enable steps")
	}
	if m.EnabledFrom(4) {
		t.Error("state 4 should be absorbing")
	}
}
