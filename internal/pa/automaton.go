// Package pa implements the simplified probabilistic automaton model of
// Section 2 of Lynch, Saias and Segala, "Proving Time Bounds for Randomized
// Distributed Algorithms" (PODC 1994).
//
// A probabilistic automaton (Definition 2.1) is a state machine whose
// labeled transitions lead to probability distributions over states, with
// nondeterministic choice between the transitions enabled in a state. The
// nondeterminism is later resolved by an adversary (package adversary),
// yielding an execution automaton (package exec) on which probabilities of
// events are measured.
//
// Time is handled by the paper's "patient construction": an automaton may
// designate time-passage actions; the framework tracks the accumulated
// duration of an execution fragment. Models built for the digitized
// worst-case checker use a single unit-duration action (conventionally
// named "tick").
package pa

import (
	"errors"
	"fmt"

	"repro/internal/prob"
)

// ErrLimitExceeded is returned by exploration helpers when the requested
// state or depth budget is exhausted before the computation completes.
var ErrLimitExceeded = errors.New("pa: exploration limit exceeded")

// Step is one element of the transition relation steps(M): from a source
// state (implicit), performing Action leads to the probability distribution
// Next over successor states.
type Step[S comparable] struct {
	// Action labels the step. External versus internal classification
	// lives in the automaton's Signature.
	Action string
	// Next is the distribution over successor states; it must be a valid
	// probability distribution.
	Next prob.Dist[S]
}

// Signature is the action signature sig(M) = (ext(M), int(M)). Actions not
// listed are treated as internal; the split matters only for interface
// documentation and trace rendering, not for the probability calculus.
type Signature struct {
	External map[string]bool
	Internal map[string]bool
}

// NewSignature builds a Signature from the two action lists.
func NewSignature(external, internal []string) Signature {
	sig := Signature{
		External: make(map[string]bool, len(external)),
		Internal: make(map[string]bool, len(internal)),
	}
	for _, a := range external {
		sig.External[a] = true
	}
	for _, a := range internal {
		sig.Internal[a] = true
	}
	return sig
}

// IsExternal reports whether action a is declared external.
func (sig Signature) IsExternal(a string) bool { return sig.External[a] }

// Automaton is a probabilistic automaton (Definition 2.1). The state space
// is given intensionally by the Steps function so that models with large
// or unbounded state spaces can be explored lazily.
type Automaton[S comparable] struct {
	// Name identifies the automaton in diagnostics and proof trees.
	Name string
	// Start is the nonempty set of start states.
	Start []S
	// Sig is the action signature.
	Sig Signature
	// Steps enumerates the transitions enabled in a state, in a
	// deterministic order. An empty result means no step is enabled.
	Steps func(S) []Step[S]
	// Duration gives the time advanced by an action, implementing the
	// patient construction. A nil Duration means every action is
	// instantaneous.
	Duration func(action string) prob.Rat
}

// Validate checks the structural well-formedness of the automaton
// definition itself: a nonempty start set, a Steps function, and valid
// distributions on the steps enabled in the start states. Deeper
// validation over the reachable space is available via CheckReachable.
func (m *Automaton[S]) Validate() error {
	if len(m.Start) == 0 {
		return errors.New("pa: automaton has no start states")
	}
	if m.Steps == nil {
		return errors.New("pa: automaton has no Steps function")
	}
	for _, s := range m.Start {
		for _, step := range m.Steps(s) {
			if !step.Next.IsValid() {
				return fmt.Errorf("pa: step %q from start state %v has invalid distribution", step.Action, s)
			}
		}
	}
	return nil
}

// DurationOf returns the time advanced by action a, which is zero unless
// the automaton declares otherwise.
func (m *Automaton[S]) DurationOf(a string) prob.Rat {
	if m.Duration == nil {
		return prob.Zero()
	}
	return m.Duration(a)
}

// EnabledFrom reports whether any step is enabled in state s.
func (m *Automaton[S]) EnabledFrom(s S) bool { return len(m.Steps(s)) > 0 }

// Reachable explores the state space breadth-first from the start states
// and returns every reachable state (rstates(M)), in discovery order. It
// returns ErrLimitExceeded if more than limit states are discovered;
// limit <= 0 means no limit.
func (m *Automaton[S]) Reachable(limit int) ([]S, error) {
	seen := make(map[S]bool, len(m.Start))
	var order []S
	queue := make([]S, 0, len(m.Start))
	for _, s := range m.Start {
		if !seen[s] {
			seen[s] = true
			order = append(order, s)
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, step := range m.Steps(s) {
			for _, succ := range step.Next.Support() {
				if seen[succ] {
					continue
				}
				if limit > 0 && len(order) >= limit {
					return order, fmt.Errorf("%w: more than %d states", ErrLimitExceeded, limit)
				}
				seen[succ] = true
				order = append(order, succ)
				queue = append(queue, succ)
			}
		}
	}
	return order, nil
}

// CheckReachable validates every step distribution over the reachable
// space, with the same limit convention as Reachable.
func (m *Automaton[S]) CheckReachable(limit int) error {
	states, err := m.Reachable(limit)
	if err != nil {
		return err
	}
	for _, s := range states {
		for _, step := range m.Steps(s) {
			if !step.Next.IsValid() {
				return fmt.Errorf("pa: step %q from state %v has invalid distribution", step.Action, s)
			}
		}
	}
	return nil
}

// IsFullyProbabilistic reports whether the automaton has a unique start
// state and at most one step enabled in every reachable state (the paper's
// "fully probabilistic" condition, satisfied by execution automata). The
// reachable space is explored with the given limit.
func (m *Automaton[S]) IsFullyProbabilistic(limit int) (bool, error) {
	if len(m.Start) != 1 {
		return false, nil
	}
	states, err := m.Reachable(limit)
	if err != nil {
		return false, err
	}
	for _, s := range states {
		if len(m.Steps(s)) > 1 {
			return false, nil
		}
	}
	return true, nil
}
