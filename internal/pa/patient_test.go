package pa

import (
	"testing"

	"repro/internal/prob"
)

func TestPatientValidation(t *testing.T) {
	m := walkAutomaton()
	if _, err := Patient(m, prob.Zero(), []int{1}, 4); err == nil {
		t.Error("zero quantum accepted")
	}
	if _, err := Patient(m, prob.Half(), nil, 4); err == nil {
		t.Error("empty increments accepted")
	}
	if _, err := Patient(m, prob.Half(), []int{0}, 4); err == nil {
		t.Error("zero increment accepted")
	}
	if _, err := Patient(m, prob.Half(), []int{1}, 0); err == nil {
		t.Error("zero horizon accepted")
	}
}

func TestPatientConstruction(t *testing.T) {
	m := walkAutomaton()
	timed, err := Patient(m, prob.Half(), []int{1, 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := timed.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}

	start := TimedState[walkState]{Base: 0, Units: 0}
	steps := timed.Steps(start)
	// Original steps (up, coin) plus two passage steps.
	var actions []string
	for _, s := range steps {
		actions = append(actions, s.Action)
	}
	want := map[string]bool{"up": true, "coin": true, "ν1": true, "ν2": true}
	if len(actions) != 4 {
		t.Fatalf("steps = %v", actions)
	}
	for _, a := range actions {
		if !want[a] {
			t.Errorf("unexpected action %q", a)
		}
	}

	// Time passage only changes the clock.
	for _, s := range steps {
		if s.Action != PassageAction(2) {
			continue
		}
		next, ok := s.Next.IsPoint()
		if !ok {
			t.Fatal("passage step is probabilistic")
		}
		if next.Base != 0 || next.Units != 2 {
			t.Errorf("passage leads to %+v", next)
		}
	}

	// Durations: quantum 1/2 per unit.
	if got := timed.DurationOf(PassageAction(2)); !got.IsOne() {
		t.Errorf("duration of ν2 = %v, want 1", got)
	}
	if got := timed.DurationOf("coin"); !got.IsZero() {
		t.Errorf("duration of coin = %v, want 0", got)
	}
}

func TestPatientClockSaturates(t *testing.T) {
	m := walkAutomaton()
	timed, err := Patient(m, prob.One(), []int{1, 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	nearHorizon := TimedState[walkState]{Base: 4, Units: 2}
	steps := timed.Steps(nearHorizon)
	// Base state 4 is absorbing; only ν1 fits below the horizon.
	if len(steps) != 1 || steps[0].Action != PassageAction(1) {
		t.Fatalf("steps near horizon = %v", steps)
	}
	atHorizon := TimedState[walkState]{Base: 4, Units: 3}
	if got := timed.Steps(atHorizon); len(got) != 0 {
		t.Errorf("steps at horizon = %v, want none", got)
	}
}

func TestPatientStateSpaceFinite(t *testing.T) {
	m := walkAutomaton()
	timed, err := Patient(m, prob.One(), []int{1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	states, err := timed.Reachable(0)
	if err != nil {
		t.Fatal(err)
	}
	// 5 walk states × 6 clock values is an upper bound.
	if len(states) == 0 || len(states) > 30 {
		t.Errorf("reachable timed states = %d", len(states))
	}
	for _, ts := range states {
		if ts.Units < 0 || ts.Units > 5 {
			t.Errorf("clock out of range: %+v", ts)
		}
	}
}
