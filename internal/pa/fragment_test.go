package pa

import (
	"testing"
	"testing/quick"

	"repro/internal/prob"
)

func TestFragmentBasics(t *testing.T) {
	f := NewFragment(walkState(0))
	if got := f.Len(); got != 0 {
		t.Errorf("Len = %d, want 0", got)
	}
	if f.First() != 0 || f.Last() != 0 {
		t.Errorf("First/Last = %v/%v, want 0/0", f.First(), f.Last())
	}

	g := f.Extend("up", 1).Extend("coin", 2)
	if got := g.Len(); got != 2 {
		t.Errorf("Len = %d, want 2", got)
	}
	if g.First() != 0 || g.Last() != 2 {
		t.Errorf("First/Last = %v/%v, want 0/2", g.First(), g.Last())
	}
	if got := g.Action(0); got != "up" {
		t.Errorf("Action(0) = %q, want up", got)
	}
	if got := g.State(1); got != 1 {
		t.Errorf("State(1) = %v, want 1", got)
	}
	if got, want := g.String(), "0 -up-> 1 -coin-> 2"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestFragmentExtendDoesNotMutate(t *testing.T) {
	f := NewFragment(walkState(0)).Extend("up", 1)
	g := f.Extend("coin", 2)
	h := f.Extend("coin", 0)
	if g.Last() != 2 || h.Last() != 0 {
		t.Errorf("sibling extensions interfere: %v, %v", g, h)
	}
	if f.Len() != 1 {
		t.Errorf("receiver mutated by Extend: %v", f)
	}
}

func TestFragmentOf(t *testing.T) {
	tests := []struct {
		name    string
		states  []walkState
		actions []string
		wantErr bool
	}{
		{name: "ok", states: []walkState{0, 1, 2}, actions: []string{"up", "coin"}},
		{name: "single state", states: []walkState{3}, actions: nil},
		{name: "mismatch", states: []walkState{0, 1}, actions: []string{"a", "b"}, wantErr: true},
		{name: "empty", states: nil, actions: nil, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := FragmentOf(tt.states, tt.actions)
			if (err != nil) != tt.wantErr {
				t.Errorf("FragmentOf err = %v, wantErr = %t", err, tt.wantErr)
			}
		})
	}
}

func TestFragmentConcat(t *testing.T) {
	f, err := FragmentOf([]walkState{0, 1}, []string{"up"})
	if err != nil {
		t.Fatal(err)
	}
	g, err := FragmentOf([]walkState{1, 2, 3}, []string{"coin", "coin"})
	if err != nil {
		t.Fatal(err)
	}
	fg, err := f.Concat(g)
	if err != nil {
		t.Fatalf("Concat: %v", err)
	}
	if got, want := fg.String(), "0 -up-> 1 -coin-> 2 -coin-> 3"; got != want {
		t.Errorf("Concat = %q, want %q", got, want)
	}

	if _, err := g.Concat(f); err == nil {
		t.Error("Concat with mismatched endpoints succeeded")
	}
}

func TestFragmentPrefix(t *testing.T) {
	f := NewFragment(walkState(0)).Extend("up", 1)
	g := f.Extend("coin", 2)
	other := NewFragment(walkState(0)).Extend("coin", 2)

	if !f.IsPrefixOf(g) {
		t.Error("f not prefix of its extension")
	}
	if !f.IsPrefixOf(f) {
		t.Error("f not prefix of itself")
	}
	if g.IsPrefixOf(f) {
		t.Error("longer fragment reported prefix of shorter")
	}
	if other.IsPrefixOf(g) {
		t.Error("diverging fragment reported prefix")
	}
}

func TestFragmentSuffix(t *testing.T) {
	g := NewFragment(walkState(0)).Extend("up", 1).Extend("coin", 2)
	suf, err := g.Suffix(1)
	if err != nil {
		t.Fatalf("Suffix: %v", err)
	}
	if got, want := suf.String(), "1 -coin-> 2"; got != want {
		t.Errorf("Suffix = %q, want %q", got, want)
	}
	// The paper's concatenation identity: alpha = alpha1 ⌢ alpha2 when
	// alpha2 = Suffix at the cut point.
	pre, err := FragmentOf(g.States()[:2], g.Actions()[:1])
	if err != nil {
		t.Fatal(err)
	}
	whole, err := pre.Concat(suf)
	if err != nil {
		t.Fatalf("Concat: %v", err)
	}
	if whole.String() != g.String() {
		t.Errorf("prefix ⌢ suffix = %q, want %q", whole, g)
	}

	if _, err := g.Suffix(5); err == nil {
		t.Error("out-of-range Suffix succeeded")
	}
	if _, err := g.Suffix(-1); err == nil {
		t.Error("negative Suffix succeeded")
	}
}

func TestFragmentDurationIn(t *testing.T) {
	m := walkAutomaton()
	m.Duration = func(a string) prob.Rat {
		if a == "up" {
			return prob.One()
		}
		return prob.Zero()
	}
	f := NewFragment(walkState(0)).Extend("up", 1).Extend("coin", 2).Extend("up", 1)
	if got := f.DurationIn(m); !got.Equal(prob.FromInt(2)) {
		t.Errorf("DurationIn = %v, want 2", got)
	}
}

func TestFragmentConsistentWith(t *testing.T) {
	m := walkAutomaton()
	tests := []struct {
		name string
		frag *Fragment[walkState]
		want bool
	}{
		{
			name: "valid walk",
			frag: NewFragment(walkState(0)).Extend("up", 1).Extend("coin", 2),
			want: true,
		},
		{
			name: "wrong action",
			frag: NewFragment(walkState(0)).Extend("down", 1),
			want: false,
		},
		{
			name: "zero-probability successor",
			frag: NewFragment(walkState(1)).Extend("coin", 3),
			want: false,
		},
		{
			name: "step from absorbing state",
			frag: NewFragment(walkState(4)).Extend("coin", 3),
			want: false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.frag.ConsistentWith(m); got != tt.want {
				t.Errorf("ConsistentWith = %t, want %t", got, tt.want)
			}
		})
	}
}

func TestFragmentProperties(t *testing.T) {
	// Build a fragment from a random action script and check structural
	// invariants: every Extend result has the previous fragment as a
	// prefix, and Suffix(0) equals the whole fragment.
	f := func(script []uint8) bool {
		frag := NewFragment(walkState(0))
		for _, b := range script {
			prev := frag
			frag = frag.Extend("a", walkState(b%5))
			if !prev.IsPrefixOf(frag) {
				return false
			}
		}
		whole, err := frag.Suffix(0)
		if err != nil {
			return false
		}
		return whole.String() == frag.String() && frag.Len() == len(script)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
