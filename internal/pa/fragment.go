package pa

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/prob"
)

// Fragment is a finite execution fragment s0 a1 s1 a2 s2 ... an sn of a
// probabilistic automaton: an alternating sequence of states and actions
// beginning and ending with a state. It corresponds to frag*(M) in
// Section 2 of the paper.
//
// A Fragment is a value: Extend returns a new fragment sharing structure
// with the receiver, and no method mutates the receiver.
type Fragment[S comparable] struct {
	states  []S
	actions []string
}

// NewFragment returns the length-zero fragment consisting of the single
// state s.
func NewFragment[S comparable](s S) *Fragment[S] {
	return &Fragment[S]{states: []S{s}}
}

// FragmentOf builds a fragment from explicit state and action sequences;
// len(states) must equal len(actions)+1.
func FragmentOf[S comparable](states []S, actions []string) (*Fragment[S], error) {
	if len(states) != len(actions)+1 {
		return nil, fmt.Errorf("pa: fragment with %d states and %d actions", len(states), len(actions))
	}
	if len(states) == 0 {
		return nil, errors.New("pa: empty fragment")
	}
	return &Fragment[S]{
		states:  append([]S(nil), states...),
		actions: append([]string(nil), actions...),
	}, nil
}

// First returns fstate(alpha), the first state of the fragment.
func (f *Fragment[S]) First() S { return f.states[0] }

// Last returns lstate(alpha), the last state of the fragment.
func (f *Fragment[S]) Last() S { return f.states[len(f.states)-1] }

// Len returns the number of actions in the fragment.
func (f *Fragment[S]) Len() int { return len(f.actions) }

// State returns the i-th state, 0 <= i <= Len().
func (f *Fragment[S]) State(i int) S { return f.states[i] }

// Action returns the i-th action, 0 <= i < Len().
func (f *Fragment[S]) Action(i int) string { return f.actions[i] }

// States returns a copy of the state sequence.
func (f *Fragment[S]) States() []S { return append([]S(nil), f.states...) }

// Actions returns a copy of the action sequence.
func (f *Fragment[S]) Actions() []string { return append([]string(nil), f.actions...) }

// Extend returns the fragment f followed by action a and state s. The
// receiver is unchanged; the result does not share mutable state with it.
func (f *Fragment[S]) Extend(a string, s S) *Fragment[S] {
	states := make([]S, len(f.states), len(f.states)+1)
	copy(states, f.states)
	actions := make([]string, len(f.actions), len(f.actions)+1)
	copy(actions, f.actions)
	return &Fragment[S]{
		states:  append(states, s),
		actions: append(actions, a),
	}
}

// Concat returns the concatenation f ⌢ g, defined when lstate(f) =
// fstate(g) (Section 2 of the paper).
func (f *Fragment[S]) Concat(g *Fragment[S]) (*Fragment[S], error) {
	if f.Last() != g.First() {
		return nil, fmt.Errorf("pa: cannot concatenate: lstate %v != fstate %v", f.Last(), g.First())
	}
	out := &Fragment[S]{
		states:  append(append([]S(nil), f.states...), g.states[1:]...),
		actions: append(append([]string(nil), f.actions...), g.actions...),
	}
	return out, nil
}

// IsPrefixOf reports whether f <= g in the prefix order on execution
// fragments.
func (f *Fragment[S]) IsPrefixOf(g *Fragment[S]) bool {
	if f.Len() > g.Len() {
		return false
	}
	for i, s := range f.states {
		if g.states[i] != s {
			return false
		}
	}
	for i, a := range f.actions {
		if g.actions[i] != a {
			return false
		}
	}
	return true
}

// Suffix returns the fragment from state index i to the end. It shares no
// mutable state with the receiver.
func (f *Fragment[S]) Suffix(i int) (*Fragment[S], error) {
	if i < 0 || i >= len(f.states) {
		return nil, fmt.Errorf("pa: suffix index %d out of range [0, %d]", i, len(f.states)-1)
	}
	return &Fragment[S]{
		states:  append([]S(nil), f.states[i:]...),
		actions: append([]string(nil), f.actions[i:]...),
	}, nil
}

// DurationIn returns the total time elapsed along the fragment in
// automaton m, i.e. the sum of the durations of its actions.
func (f *Fragment[S]) DurationIn(m *Automaton[S]) prob.Rat {
	total := prob.Zero()
	for _, a := range f.actions {
		total = total.Add(m.DurationOf(a))
	}
	return total
}

// ConsistentWith reports whether the fragment is an execution fragment of
// m: every step (s_i, a_{i+1}, s_{i+1}) must match an enabled step of m
// whose distribution gives positive probability to the successor.
func (f *Fragment[S]) ConsistentWith(m *Automaton[S]) bool {
	for i := 0; i < f.Len(); i++ {
		matched := false
		for _, step := range m.Steps(f.states[i]) {
			if step.Action == f.actions[i] && step.Next.P(f.states[i+1]).Sign() > 0 {
				matched = true
				break
			}
		}
		if !matched {
			return false
		}
	}
	return true
}

// String renders the fragment as "s0 -a1-> s1 -a2-> s2".
func (f *Fragment[S]) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v", f.states[0])
	for i, a := range f.actions {
		fmt.Fprintf(&b, " -%s-> %v", a, f.states[i+1])
	}
	return b.String()
}
