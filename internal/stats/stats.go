// Package stats provides the estimators and confidence intervals used by
// the Monte Carlo side of the reproduction: Bernoulli proportions with
// Wilson and Hoeffding intervals, and running summaries of real-valued
// samples (expected times).
package stats

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
)

// ErrNoSamples is returned by estimators queried before any observation.
var ErrNoSamples = errors.New("stats: no samples")

// Proportion estimates a Bernoulli parameter from successes over trials.
type Proportion struct {
	Successes int
	Trials    int
}

// Observe records one Bernoulli trial.
func (p *Proportion) Observe(success bool) {
	p.Trials++
	if success {
		p.Successes++
	}
}

// Merge folds another proportion into p, as if every trial recorded in o
// had been observed on p directly. It is the combine step used by the
// parallel Monte Carlo engine: counts are exact, so merging is associative
// and order-independent.
func (p *Proportion) Merge(o Proportion) {
	p.Successes += o.Successes
	p.Trials += o.Trials
}

// Estimate returns the sample proportion.
func (p *Proportion) Estimate() (float64, error) {
	if p.Trials == 0 {
		return 0, ErrNoSamples
	}
	return float64(p.Successes) / float64(p.Trials), nil
}

// Wilson returns the Wilson score interval at confidence level given by z
// (e.g. z = 1.96 for 95%). It is well behaved at proportions near 0 and 1,
// where the normal interval degenerates.
func (p *Proportion) Wilson(z float64) (lo, hi float64, err error) {
	if p.Trials == 0 {
		return 0, 0, ErrNoSamples
	}
	n := float64(p.Trials)
	phat := float64(p.Successes) / n
	z2 := z * z
	denom := 1 + z2/n
	center := (phat + z2/(2*n)) / denom
	half := z / denom * math.Sqrt(phat*(1-phat)/n+z2/(4*n*n))
	lo = math.Max(0, center-half)
	hi = math.Min(1, center+half)
	return lo, hi, nil
}

// WilsonHalfWidth returns the half-width of the Wilson interval at the
// given z — the ±ε a live progress display shows next to the running point
// estimate. It is the "CI so far" companion of Wilson: cheap enough to
// recompute on every progress tick.
func (p *Proportion) WilsonHalfWidth(z float64) (float64, error) {
	lo, hi, err := p.Wilson(z)
	if err != nil {
		return 0, err
	}
	return (hi - lo) / 2, nil
}

// MeanCIFromMoments returns the sample mean and the half-width of its
// normal-approximation confidence interval at the given z, computed from
// the raw moment sums (n, Σx, Σx²).
//
// It is the CI-so-far API for lock-free telemetry: a metrics layer that
// accumulates moments with atomic adds cannot maintain a Welford state
// (Summary.Observe is a read-modify-write of two fields), but n, Σx and
// Σx² are each a single atomic float add, and this function turns a
// snapshot of them into mean ± half. The textbook variance
// (Σx² - (Σx)²/n) / (n-1) is less numerically stable than Welford —
// acceptable for a progress display, not a replacement for Summary; a
// negative variance from catastrophic cancellation is clamped to zero.
//
// With n == 0 it returns ErrNoSamples; with n == 1 the mean is exact but
// no interval exists, so it returns mean, 0 and ErrNoSamples, matching
// the Summary.MeanCI convention of never fabricating a bound.
func MeanCIFromMoments(n int64, sum, sumsq float64, z float64) (mean, half float64, err error) {
	if n <= 0 {
		return 0, 0, ErrNoSamples
	}
	mean = sum / float64(n)
	if n < 2 {
		return mean, 0, fmt.Errorf("%w: interval needs n >= 2, have n=%d", ErrNoSamples, n)
	}
	v := (sumsq - sum*sum/float64(n)) / float64(n-1)
	if v < 0 {
		v = 0
	}
	half = z * math.Sqrt(v/float64(n))
	return mean, half, nil
}

// HoeffdingLower returns a lower confidence bound on the true proportion
// that holds with probability at least 1-delta, by Hoeffding's inequality.
// It is the bound used to compare Monte Carlo estimates against the
// paper's "probability at least p" claims: if HoeffdingLower >= p the
// claim is supported at confidence 1-delta.
func (p *Proportion) HoeffdingLower(delta float64) (float64, error) {
	if p.Trials == 0 {
		return 0, ErrNoSamples
	}
	if delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("stats: delta %v outside (0, 1)", delta)
	}
	phat := float64(p.Successes) / float64(p.Trials)
	eps := math.Sqrt(math.Log(1/delta) / (2 * float64(p.Trials)))
	return math.Max(0, phat-eps), nil
}

// String formats the proportion with its 95% Wilson interval.
func (p *Proportion) String() string {
	est, err := p.Estimate()
	if err != nil {
		return "n=0"
	}
	lo, hi, _ := p.Wilson(1.96)
	return fmt.Sprintf("%.4f [%.4f, %.4f] (n=%d)", est, lo, hi, p.Trials)
}

// Summary accumulates moments and extremes of a real-valued sample.
type Summary struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Observe records one sample using Welford's online update.
func (s *Summary) Observe(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		s.min = math.Min(s.min, x)
		s.max = math.Max(s.max, x)
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// Merge folds another summary into s using the parallel-Welford combine of
// Chan, Golub and LeVeque: the merged moments equal (up to floating-point
// rounding) those of observing both sample streams into one summary. Merge
// order affects only rounding, not the value; the parallel engine merges
// per-chunk summaries in a fixed order so seeded runs stay bit-identical
// across worker counts.
func (s *Summary) Merge(o Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	n1, n2 := float64(s.n), float64(o.n)
	delta := o.mean - s.mean
	n := n1 + n2
	s.mean += delta * n2 / n
	s.m2 += o.m2 + delta*delta*n1*n2/n
	s.n += o.n
	s.min = math.Min(s.min, o.min)
	s.max = math.Max(s.max, o.max)
}

// summaryJSON is the serialized form of a Summary. The fields are the raw
// Welford state, not derived quantities: restoring them reproduces the
// accumulator bit-for-bit (encoding/json renders float64 with the shortest
// round-tripping representation), which the checkpoint/resume path of the
// parallel Monte Carlo engine relies on for bit-identical resumed runs.
type summaryJSON struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// MarshalJSON serializes the raw accumulator state.
func (s Summary) MarshalJSON() ([]byte, error) {
	return json.Marshal(summaryJSON{N: s.n, Mean: s.mean, M2: s.m2, Min: s.min, Max: s.max})
}

// UnmarshalJSON restores an accumulator serialized by MarshalJSON,
// bit-identically.
func (s *Summary) UnmarshalJSON(data []byte) error {
	var j summaryJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if j.N < 0 {
		return fmt.Errorf("stats: summary with negative sample count %d", j.N)
	}
	*s = Summary{n: j.N, mean: j.Mean, m2: j.M2, min: j.Min, max: j.Max}
	return nil
}

// N returns the number of samples.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean.
func (s *Summary) Mean() (float64, error) {
	if s.n == 0 {
		return 0, ErrNoSamples
	}
	return s.mean, nil
}

// Var returns the unbiased sample variance.
func (s *Summary) Var() (float64, error) {
	if s.n < 2 {
		return 0, ErrNoSamples
	}
	return s.m2 / float64(s.n-1), nil
}

// Min returns the smallest sample.
func (s *Summary) Min() (float64, error) {
	if s.n == 0 {
		return 0, ErrNoSamples
	}
	return s.min, nil
}

// Max returns the largest sample.
func (s *Summary) Max() (float64, error) {
	if s.n == 0 {
		return 0, ErrNoSamples
	}
	return s.max, nil
}

// MeanCI returns a normal-approximation confidence interval on the mean at
// the given z (1.96 for 95%). An interval needs a variance estimate, so
// fewer than two samples is an explicit error: MeanCI returns ErrNoSamples
// and lo, hi = mean, mean (not 0, 0) so that callers which ignore the
// error still report a point centered on the data they have rather than a
// silently fabricated [0, 0].
func (s *Summary) MeanCI(z float64) (lo, hi float64, err error) {
	if s.n < 2 {
		return s.mean, s.mean, fmt.Errorf("%w: MeanCI needs n >= 2, have n=%d", ErrNoSamples, s.n)
	}
	v, err := s.Var()
	if err != nil {
		return s.mean, s.mean, err
	}
	half := z * math.Sqrt(v/float64(s.n))
	return s.mean - half, s.mean + half, nil
}

// String formats the summary with its 95% interval on the mean. The
// interval needs at least two samples, so n == 0 renders as "n=0" and
// n == 1 as the bare sample with no interval — String never shows a
// fabricated [0.0000, 0.0000] bound.
func (s *Summary) String() string {
	if s.n == 0 {
		return "n=0"
	}
	if s.n == 1 {
		return fmt.Sprintf("%.4f (n=1)", s.mean)
	}
	lo, hi, _ := s.MeanCI(1.96)
	return fmt.Sprintf("%.4f [%.4f, %.4f] min=%.4f max=%.4f (n=%d)", s.mean, lo, hi, s.min, s.max, s.n)
}
