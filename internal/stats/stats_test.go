package stats

import (
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestProportion(t *testing.T) {
	var p Proportion
	if _, err := p.Estimate(); !errors.Is(err, ErrNoSamples) {
		t.Errorf("Estimate on empty = %v, want ErrNoSamples", err)
	}
	for i := 0; i < 100; i++ {
		p.Observe(i%4 == 0)
	}
	est, err := p.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if est != 0.25 {
		t.Errorf("Estimate = %g, want 0.25", est)
	}
}

func TestWilson(t *testing.T) {
	p := Proportion{Successes: 50, Trials: 100}
	lo, hi, err := p.Wilson(1.96)
	if err != nil {
		t.Fatal(err)
	}
	if lo >= 0.5 || hi <= 0.5 {
		t.Errorf("Wilson = [%g, %g] does not contain 0.5", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Errorf("Wilson width %g too large for n=100", hi-lo)
	}

	// Degenerate proportions stay within [0, 1].
	zero := Proportion{Successes: 0, Trials: 10}
	lo, hi, err = zero.Wilson(1.96)
	if err != nil {
		t.Fatal(err)
	}
	if lo < 0 || hi > 1 || lo > hi {
		t.Errorf("Wilson on zero successes = [%g, %g]", lo, hi)
	}

	if _, _, err := (&Proportion{}).Wilson(1.96); !errors.Is(err, ErrNoSamples) {
		t.Errorf("Wilson on empty = %v", err)
	}
}

func TestHoeffdingLower(t *testing.T) {
	p := Proportion{Successes: 900, Trials: 1000}
	lb, err := p.HoeffdingLower(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if lb >= 0.9 {
		t.Errorf("lower bound %g not below the estimate", lb)
	}
	if lb < 0.8 {
		t.Errorf("lower bound %g implausibly loose for n=1000", lb)
	}
	if _, err := p.HoeffdingLower(0); err == nil {
		t.Error("delta 0 accepted")
	}
	if _, err := p.HoeffdingLower(1); err == nil {
		t.Error("delta 1 accepted")
	}
	if _, err := (&Proportion{}).HoeffdingLower(0.05); !errors.Is(err, ErrNoSamples) {
		t.Errorf("HoeffdingLower on empty = %v", err)
	}
}

func TestProportionString(t *testing.T) {
	if got := (&Proportion{}).String(); got != "n=0" {
		t.Errorf("empty String = %q", got)
	}
	p := Proportion{Successes: 1, Trials: 2}
	if got := p.String(); !strings.Contains(got, "0.5000") || !strings.Contains(got, "n=2") {
		t.Errorf("String = %q", got)
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	if _, err := s.Mean(); !errors.Is(err, ErrNoSamples) {
		t.Errorf("Mean on empty = %v", err)
	}
	for _, x := range []float64{1, 2, 3, 4, 5} {
		s.Observe(x)
	}
	if s.N() != 5 {
		t.Errorf("N = %d, want 5", s.N())
	}
	mean, err := s.Mean()
	if err != nil || mean != 3 {
		t.Errorf("Mean = %g, %v; want 3", mean, err)
	}
	v, err := s.Var()
	if err != nil || math.Abs(v-2.5) > 1e-12 {
		t.Errorf("Var = %g, %v; want 2.5", v, err)
	}
	minVal, err := s.Min()
	if err != nil || minVal != 1 {
		t.Errorf("Min = %g, %v", minVal, err)
	}
	maxVal, err := s.Max()
	if err != nil || maxVal != 5 {
		t.Errorf("Max = %g, %v", maxVal, err)
	}
	lo, hi, err := s.MeanCI(1.96)
	if err != nil || lo >= 3 || hi <= 3 {
		t.Errorf("MeanCI = [%g, %g], %v", lo, hi, err)
	}
}

func TestSummarySingleSample(t *testing.T) {
	var s Summary
	s.Observe(7)
	if _, err := s.Var(); !errors.Is(err, ErrNoSamples) {
		t.Errorf("Var with one sample = %v", err)
	}
	if got := s.String(); !strings.Contains(got, "n=1") {
		t.Errorf("String = %q", got)
	}
}

func TestSummaryString(t *testing.T) {
	var s Summary
	if got := s.String(); got != "n=0" {
		t.Errorf("empty String = %q", got)
	}
	s.Observe(1)
	s.Observe(3)
	got := s.String()
	for _, want := range []string{"2.0000", "min=1.0000", "max=3.0000", "n=2"} {
		if !strings.Contains(got, want) {
			t.Errorf("String = %q missing %q", got, want)
		}
	}
}

func TestProportionMerge(t *testing.T) {
	a := Proportion{Successes: 3, Trials: 10}
	b := Proportion{Successes: 2, Trials: 5}
	a.Merge(b)
	if a.Successes != 5 || a.Trials != 15 {
		t.Errorf("merged = %+v, want {5 15}", a)
	}
	var empty Proportion
	a.Merge(empty)
	if a.Successes != 5 || a.Trials != 15 {
		t.Errorf("merge of empty changed counts: %+v", a)
	}
}

func TestSummaryMergeEdgeCases(t *testing.T) {
	var a, b Summary
	a.Merge(b) // empty ∪ empty
	if a.N() != 0 {
		t.Errorf("empty merge N = %d", a.N())
	}
	b.Observe(2)
	b.Observe(4)
	a.Merge(b) // empty ∪ nonempty adopts b wholesale
	if mean, _ := a.Mean(); a.N() != 2 || mean != 3 {
		t.Errorf("merge into empty: n=%d mean=%v", a.N(), a.mean)
	}
	var c Summary
	a.Merge(c) // nonempty ∪ empty is a no-op
	if mean, _ := a.Mean(); a.N() != 2 || mean != 3 {
		t.Errorf("merge of empty: n=%d mean=%v", a.N(), a.mean)
	}
}

// TestSummaryMergeEqualsSequential is the property the parallel Monte
// Carlo engine relies on: splitting one sample stream at random cut
// points, summarizing each segment separately and merging in order gives
// the same moments and extremes as observing the stream sequentially.
func TestSummaryMergeEqualsSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 200; round++ {
		n := 1 + rng.Intn(400)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()*10 + 5
		}

		var seq Summary
		for _, x := range xs {
			seq.Observe(x)
		}

		// Split the stream at random cut points (possibly empty segments —
		// merging an empty summary must be a no-op).
		var merged Summary
		for lo := 0; lo < n; {
			hi := lo + rng.Intn(n-lo+1)
			var part Summary
			for _, x := range xs[lo:hi] {
				part.Observe(x)
			}
			merged.Merge(part)
			lo = hi
		}

		if merged.N() != seq.N() {
			t.Fatalf("round %d: N = %d, want %d", round, merged.N(), seq.N())
		}
		approxEq := func(name string, got, want float64) {
			scale := math.Max(1, math.Abs(want))
			if math.Abs(got-want) > 1e-9*scale {
				t.Errorf("round %d: %s = %v, want %v", round, name, got, want)
			}
		}
		gm, _ := merged.Mean()
		wm, _ := seq.Mean()
		approxEq("mean", gm, wm)
		if n >= 2 {
			gv, _ := merged.Var()
			wv, _ := seq.Var()
			approxEq("var", gv, wv)
		}
		gmin, _ := merged.Min()
		wmin, _ := seq.Min()
		gmax, _ := merged.Max()
		wmax, _ := seq.Max()
		if gmin != wmin || gmax != wmax {
			t.Errorf("round %d: extremes [%v, %v], want [%v, %v]", round, gmin, gmax, wmin, wmax)
		}
	}
}

func TestMeanCIInsufficientSamples(t *testing.T) {
	var s Summary
	if lo, hi, err := s.MeanCI(1.96); !errors.Is(err, ErrNoSamples) || lo != 0 || hi != 0 {
		t.Errorf("empty MeanCI = [%v, %v], %v; want [0, 0] with ErrNoSamples", lo, hi, err)
	}
	s.Observe(7)
	lo, hi, err := s.MeanCI(1.96)
	if !errors.Is(err, ErrNoSamples) {
		t.Errorf("n=1 MeanCI err = %v, want ErrNoSamples", err)
	}
	// Callers that ignore the error get a point interval at the sample,
	// not a fabricated [0, 0].
	if lo != 7 || hi != 7 {
		t.Errorf("n=1 MeanCI = [%v, %v], want [7, 7]", lo, hi)
	}
}

func TestSummaryProperties(t *testing.T) {
	t.Run("mean within min and max", func(t *testing.T) {
		f := func(xs []int32) bool {
			var s Summary
			for _, x := range xs {
				// Bounded magnitudes: the invariant is a property of the
				// estimator, not of float64 overflow behaviour.
				s.Observe(float64(x) / 1024)
			}
			if s.N() == 0 {
				return true
			}
			mean, _ := s.Mean()
			minVal, _ := s.Min()
			maxVal, _ := s.Max()
			const slack = 1e-6
			return mean >= minVal-slack && mean <= maxVal+slack
		}
		if err := quick.Check(f, nil); err != nil {
			t.Error(err)
		}
	})
	t.Run("wilson brackets estimate", func(t *testing.T) {
		f := func(succ uint8, extra uint8) bool {
			trials := int(succ) + int(extra)
			if trials == 0 {
				return true
			}
			p := Proportion{Successes: int(succ), Trials: trials}
			est, _ := p.Estimate()
			lo, hi, err := p.Wilson(1.96)
			return err == nil && lo <= est+1e-12 && est <= hi+1e-12 && lo >= 0 && hi <= 1
		}
		if err := quick.Check(f, nil); err != nil {
			t.Error(err)
		}
	})
}

// TestSummaryJSONRoundTrip pins the bit-exactness guarantee the parallel
// engine's checkpoint/resume path relies on: a Summary serialized with
// MarshalJSON and restored with UnmarshalJSON is identical down to the
// last bit of its Welford state, for arbitrary sample streams.
func TestSummaryJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		var s Summary
		n := rng.Intn(50)
		for i := 0; i < n; i++ {
			// Mix magnitudes and signs so mean/m2 are not round numbers.
			s.Observe((rng.Float64() - 0.3) * math.Pow(10, float64(rng.Intn(7)-3)))
		}
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var got Summary
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatal(err)
		}
		if got != s {
			t.Fatalf("round trip changed the accumulator: %+v -> %+v (json %s)", s, got, data)
		}
	}
}

// TestSummaryJSONMergeEquivalence: restoring two serialized halves and
// merging them behaves exactly like merging the live accumulators.
func TestSummaryJSONMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var a, b Summary
	for i := 0; i < 40; i++ {
		a.Observe(rng.NormFloat64())
		b.Observe(rng.NormFloat64() * 3)
	}
	direct := a
	direct.Merge(b)

	ser := func(s Summary) Summary {
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var out Summary
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	restored := ser(a)
	restored.Merge(ser(b))
	if restored != direct {
		t.Errorf("merge after round trip %+v != direct merge %+v", restored, direct)
	}
}

func TestSummaryJSONRejectsNegativeCount(t *testing.T) {
	var s Summary
	if err := json.Unmarshal([]byte(`{"n":-3}`), &s); err == nil {
		t.Error("negative sample count accepted")
	}
	if err := json.Unmarshal([]byte(`{"n":`), &s); err == nil {
		t.Error("truncated document accepted")
	}
}

func TestWilsonHalfWidth(t *testing.T) {
	p := Proportion{Successes: 30, Trials: 100}
	lo, hi, err := p.Wilson(1.96)
	if err != nil {
		t.Fatal(err)
	}
	half, err := p.WilsonHalfWidth(1.96)
	if err != nil {
		t.Fatal(err)
	}
	if want := (hi - lo) / 2; math.Abs(half-want) > 1e-15 {
		t.Errorf("WilsonHalfWidth = %g, want %g", half, want)
	}
	if _, err := (&Proportion{}).WilsonHalfWidth(1.96); !errors.Is(err, ErrNoSamples) {
		t.Errorf("WilsonHalfWidth on empty = %v, want ErrNoSamples", err)
	}
}

func TestMeanCIFromMoments(t *testing.T) {
	// Against the Welford reference: the moment-sum CI must agree with
	// Summary.MeanCI on the same sample (up to floating-point noise).
	rng := rand.New(rand.NewSource(11))
	var s Summary
	var n int64
	var sum, sumsq float64
	for i := 0; i < 500; i++ {
		x := rng.NormFloat64()*3 + 10
		s.Observe(x)
		n++
		sum += x
		sumsq += x * x
	}
	mean, half, err := MeanCIFromMoments(n, sum, sumsq, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	wantMean, _ := s.Mean()
	wantLo, wantHi, err := s.MeanCI(1.96)
	if err != nil {
		t.Fatal(err)
	}
	wantHalf := (wantHi - wantLo) / 2
	if math.Abs(mean-wantMean) > 1e-9 {
		t.Errorf("mean = %g, Welford reference %g", mean, wantMean)
	}
	if math.Abs(half-wantHalf) > 1e-9 {
		t.Errorf("half-width = %g, Welford reference %g", half, wantHalf)
	}
}

func TestMeanCIFromMomentsEdgeCases(t *testing.T) {
	if _, _, err := MeanCIFromMoments(0, 0, 0, 1.96); !errors.Is(err, ErrNoSamples) {
		t.Errorf("n=0: err = %v, want ErrNoSamples", err)
	}
	// n=1: exact mean, no interval, explicit error — mirrors Summary.MeanCI.
	mean, half, err := MeanCIFromMoments(1, 7.5, 56.25, 1.96)
	if !errors.Is(err, ErrNoSamples) {
		t.Errorf("n=1: err = %v, want ErrNoSamples", err)
	}
	if mean != 7.5 || half != 0 {
		t.Errorf("n=1: mean, half = %g, %g; want 7.5, 0", mean, half)
	}
	// Catastrophic cancellation (all samples identical, huge magnitude):
	// the clamped variance must yield half = 0, never NaN.
	const x = 1e9 + 0.125
	mean, half, err = MeanCIFromMoments(4, 4*x, 4*x*x, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(half) || half < 0 {
		t.Errorf("cancellation: half = %g, want clamped >= 0", half)
	}
	if math.Abs(mean-x) > 1 {
		t.Errorf("cancellation: mean = %g, want ~%g", mean, x)
	}
}
