package exec

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/pa"
	"repro/internal/prob"
)

// RandomizedAutomaton is the execution structure of M under a randomized
// adversary (the generalization the paper's footnote 1 sets aside): at
// every node the adversary's own coin picks among enabled steps (or
// halting), and then the step's distribution picks the successor. The
// adversary's internal randomness is invisible to event monitors — they
// observe only the actions and states of M.
type RandomizedAutomaton[S comparable] struct {
	M     *pa.Automaton[S]
	A     adversary.Randomized[S]
	Start *pa.Fragment[S]
}

// NewRandomized builds the execution structure of M under randomized
// adversary a from the starting fragment.
func NewRandomized[S comparable](m *pa.Automaton[S], a adversary.Randomized[S], start *pa.Fragment[S]) *RandomizedAutomaton[S] {
	return &RandomizedAutomaton[S]{M: m, A: a, Start: start}
}

// Prob computes the probability of the monitored event under the combined
// randomness of the algorithm and the adversary, with the same interval
// semantics as Automaton.Prob.
func (h *RandomizedAutomaton[S]) Prob(mon Monitor[S], cfg EvalConfig) (Interval, error) {
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = defaultMaxDepth
	}
	if cfg.MaxNodes <= 0 {
		cfg.MaxNodes = defaultMaxNodes
	}
	e := &randomizedEvaluator[S]{h: h, budget: cfg.MaxNodes}

	m, status := mon.Start(h.Start.First())
	now := prob.Zero()
	for i := 0; i < h.Start.Len() && status == Undetermined; i++ {
		a := h.Start.Action(i)
		now = now.Add(h.M.DurationOf(a))
		m, status = m.Observe(a, h.Start.State(i+1), now)
	}
	switch status {
	case Accepted:
		return Interval{Lo: prob.One(), Hi: prob.One()}, nil
	case Rejected:
		return Interval{Lo: prob.Zero(), Hi: prob.Zero()}, nil
	}

	if err := e.walk(h.Start, m, now, prob.One(), cfg.MaxDepth); err != nil {
		return Interval{}, err
	}
	return Interval{Lo: e.accepted, Hi: prob.One().Sub(e.rejected)}, nil
}

type randomizedEvaluator[S comparable] struct {
	h        *RandomizedAutomaton[S]
	accepted prob.Rat
	rejected prob.Rat
	budget   int
}

func (e *randomizedEvaluator[S]) walk(frag *pa.Fragment[S], mon Monitor[S], now, weight prob.Rat, depth int) error {
	if e.budget <= 0 {
		return fmt.Errorf("%w", ErrBudget)
	}
	e.budget--

	dist, choices := e.h.A.ChooseDist(frag)
	if !dist.IsValid() {
		return fmt.Errorf("exec: randomized adversary returned invalid distribution at %v", frag.Last())
	}
	for _, out := range dist.Outcomes() {
		if out.Value < 0 || out.Value >= len(choices) {
			return fmt.Errorf("exec: randomized adversary indexed choice %d of %d", out.Value, len(choices))
		}
		choice := choices[out.Value]
		w := weight.Mul(out.Prob)
		if choice.Halt {
			switch mon.AtEnd() {
			case Accepted:
				e.accepted = e.accepted.Add(w)
			case Rejected:
				e.rejected = e.rejected.Add(w)
			}
			continue
		}
		if depth == 0 {
			// Horizon: this mass stays undetermined.
			continue
		}
		next := now.Add(e.h.M.DurationOf(choice.Step.Action))
		for _, succ := range choice.Step.Next.Outcomes() {
			childMon, status := mon.Observe(choice.Step.Action, succ.Value, next)
			ws := w.Mul(succ.Prob)
			switch status {
			case Accepted:
				e.accepted = e.accepted.Add(ws)
			case Rejected:
				e.rejected = e.rejected.Add(ws)
			default:
				if err := e.walk(frag.Extend(choice.Step.Action, succ.Value), childMon, next, ws, depth-1); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
