package exec

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/pa"
	"repro/internal/prob"
)

// choiceState exposes a genuine nondeterministic choice: from "start",
// action "left" reaches the target with probability 1/4, action "right"
// with probability 3/4.
type choiceState string

func choiceAutomaton() *pa.Automaton[choiceState] {
	return &pa.Automaton[choiceState]{
		Name:  "choice",
		Start: []choiceState{"start"},
		Steps: func(s choiceState) []pa.Step[choiceState] {
			if s != "start" {
				return nil
			}
			return []pa.Step[choiceState]{
				{Action: "left", Next: prob.MustDist(
					prob.Outcome[choiceState]{Value: "hit", Prob: prob.NewRat(1, 4)},
					prob.Outcome[choiceState]{Value: "miss", Prob: prob.NewRat(3, 4)},
				)},
				{Action: "right", Next: prob.MustDist(
					prob.Outcome[choiceState]{Value: "hit", Prob: prob.NewRat(3, 4)},
					prob.Outcome[choiceState]{Value: "miss", Prob: prob.NewRat(1, 4)},
				)},
			}
		},
	}
}

func hitMonitor() Monitor[choiceState] {
	return reachChoiceMonitor{}
}

type reachChoiceMonitor struct{}

func (reachChoiceMonitor) Start(s choiceState) (Monitor[choiceState], Status) {
	if s == "hit" {
		return reachChoiceMonitor{}, Accepted
	}
	return reachChoiceMonitor{}, Undetermined
}

func (reachChoiceMonitor) Observe(_ string, next choiceState, _ prob.Rat) (Monitor[choiceState], Status) {
	if next == "hit" {
		return reachChoiceMonitor{}, Accepted
	}
	return reachChoiceMonitor{}, Undetermined
}

func (reachChoiceMonitor) AtEnd() Status { return Rejected }

func exactProb(t *testing.T, h *RandomizedAutomaton[choiceState]) prob.Rat {
	t.Helper()
	iv, err := h.Prob(hitMonitor(), EvalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Exact() {
		t.Fatalf("interval %v not exact", iv)
	}
	return iv.Lo
}

func TestDeterministicallyMatchesDeterministic(t *testing.T) {
	m := choiceAutomaton()
	det := adversary.FirstEnabled(m)

	hDet := FromState(m, det, choiceState("start"))
	ivDet, err := hDet.Prob(hitMonitor(), EvalConfig{})
	if err != nil {
		t.Fatal(err)
	}

	hRand := NewRandomized(m, adversary.Deterministically(det), pa.NewFragment(choiceState("start")))
	got := exactProb(t, hRand)
	if !got.Equal(ivDet.Lo) {
		t.Errorf("lifted adversary gives %v, deterministic gives %v", got, ivDet.Lo)
	}
	if !got.Equal(prob.NewRat(1, 4)) {
		t.Errorf("P = %v, want 1/4 (first enabled step is left)", got)
	}
}

func TestUniformScheduler(t *testing.T) {
	m := choiceAutomaton()
	h := NewRandomized(m, adversary.UniformScheduler(m), pa.NewFragment(choiceState("start")))
	// Uniform over {left, right}: 1/2·1/4 + 1/2·3/4 = 1/2.
	if got := exactProb(t, h); !got.Equal(prob.Half()) {
		t.Errorf("P = %v, want 1/2", got)
	}
}

func TestMix(t *testing.T) {
	m := choiceAutomaton()
	left := adversary.Memoryless(m, func(choiceState, []pa.Step[choiceState]) int { return 0 })
	right := adversary.Memoryless(m, func(choiceState, []pa.Step[choiceState]) int { return 1 })

	mixed, err := adversary.Mix(
		[]adversary.Adversary[choiceState]{left, right},
		[]prob.Rat{prob.NewRat(1, 3), prob.NewRat(2, 3)},
	)
	if err != nil {
		t.Fatal(err)
	}
	h := NewRandomized(m, mixed, pa.NewFragment(choiceState("start")))
	// 1/3·1/4 + 2/3·3/4 = 1/12 + 6/12 = 7/12.
	if got := exactProb(t, h); !got.Equal(prob.NewRat(7, 12)) {
		t.Errorf("P = %v, want 7/12", got)
	}

	if _, err := adversary.Mix(
		[]adversary.Adversary[choiceState]{left},
		[]prob.Rat{prob.Half(), prob.Half()},
	); err == nil {
		t.Error("mismatched Mix accepted")
	}
	if _, err := adversary.Mix(
		[]adversary.Adversary[choiceState]{left, right},
		[]prob.Rat{prob.Half(), prob.NewRat(1, 3)},
	); err == nil {
		t.Error("non-distribution Mix accepted")
	}
}

// TestRandomizedNoWorse pins the classic fact the paper relies on
// implicitly when restricting to deterministic adversaries: for
// reachability events, every randomized adversary's value is a convex
// combination of deterministic values, so the deterministic worst case is
// the true worst case.
func TestRandomizedNoWorse(t *testing.T) {
	m := choiceAutomaton()
	left := adversary.Memoryless(m, func(choiceState, []pa.Step[choiceState]) int { return 0 })
	right := adversary.Memoryless(m, func(choiceState, []pa.Step[choiceState]) int { return 1 })

	detValues := []prob.Rat{}
	for _, a := range []adversary.Adversary[choiceState]{left, right} {
		h := FromState(m, a, choiceState("start"))
		iv, err := h.Prob(hitMonitor(), EvalConfig{})
		if err != nil {
			t.Fatal(err)
		}
		detValues = append(detValues, iv.Lo)
	}
	detMin := prob.MinRats(detValues...)
	detMax := prob.MaxRats(detValues...)

	// A sweep of mixtures: every value lies within [detMin, detMax].
	for num := int64(0); num <= 8; num++ {
		w := prob.NewRat(num, 8)
		mixed, err := adversary.Mix(
			[]adversary.Adversary[choiceState]{left, right},
			[]prob.Rat{w, prob.One().Sub(w)},
		)
		if err != nil {
			t.Fatal(err)
		}
		h := NewRandomized(m, mixed, pa.NewFragment(choiceState("start")))
		got := exactProb(t, h)
		if got.Less(detMin) || detMax.Less(got) {
			t.Errorf("mixture %v/8 gives %v outside [%v, %v]", num, got, detMin, detMax)
		}
	}
}

func TestHaltingMixture(t *testing.T) {
	m := choiceAutomaton()
	// Halt with probability 1/2, otherwise take "right".
	right := adversary.Memoryless(m, func(choiceState, []pa.Step[choiceState]) int { return 1 })
	mixed, err := adversary.Mix(
		[]adversary.Adversary[choiceState]{adversary.Halt[choiceState](), right},
		[]prob.Rat{prob.Half(), prob.Half()},
	)
	if err != nil {
		t.Fatal(err)
	}
	h := NewRandomized(m, mixed, pa.NewFragment(choiceState("start")))
	// Halting rejects (target never reached): 1/2·0 + 1/2·3/4 = 3/8.
	if got := exactProb(t, h); !got.Equal(prob.NewRat(3, 8)) {
		t.Errorf("P = %v, want 3/8", got)
	}
}
