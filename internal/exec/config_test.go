package exec

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/prob"
)

func TestEvalConfigDefaults(t *testing.T) {
	// With a zero config, evaluation uses the default depth of 64: deep
	// enough to pin the geometric to within 2^-64 but still an interval.
	m := untilHeads()
	h := FromState(m, adversary.FirstEnabled(m), coinState("start"))
	iv, err := h.Prob(reachMonitor{pred: func(s coinState) bool { return s == "heads" }}, EvalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if iv.Exact() {
		t.Error("interval exact despite the unbounded tail")
	}
	gap := iv.Hi.Sub(iv.Lo)
	if gap.Cmp(prob.NewRat(1, 1<<62)) > 0 {
		t.Errorf("default depth leaves gap %v", gap)
	}
}

func TestProbMassConservation(t *testing.T) {
	// Lo + P[complement's Lo] = 1 for events decided on every branch.
	m := coinAutomaton()
	h := FromState(m, adversary.FirstEnabled(m), coinState("start"))
	heads := reachMonitor{pred: func(s coinState) bool { return s == "heads" }}
	tails := reachMonitor{pred: func(s coinState) bool { return s == "tails" }}
	ivH, err := h.Prob(heads, EvalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ivT, err := h.Prob(tails, EvalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !ivH.Lo.Add(ivT.Lo).IsOne() {
		t.Errorf("mass = %v + %v != 1", ivH.Lo, ivT.Lo)
	}
}
