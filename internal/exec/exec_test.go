package exec

import (
	"errors"
	"testing"

	"repro/internal/adversary"
	"repro/internal/pa"
	"repro/internal/prob"
)

// coinState is "start", "heads" or "tails"; geomState counts failed flips.
type coinState string

func coinAutomaton() *pa.Automaton[coinState] {
	return &pa.Automaton[coinState]{
		Name:  "coin",
		Start: []coinState{"start"},
		Steps: func(s coinState) []pa.Step[coinState] {
			if s != "start" {
				return nil
			}
			return []pa.Step[coinState]{
				{Action: "flip", Next: prob.MustUniform(coinState("heads"), coinState("tails"))},
			}
		},
	}
}

// untilHeads flips forever until heads: from "start" or "tails" a flip
// leads to heads or tails with equal probability; heads is absorbing.
func untilHeads() *pa.Automaton[coinState] {
	return &pa.Automaton[coinState]{
		Name:  "until-heads",
		Start: []coinState{"start"},
		Steps: func(s coinState) []pa.Step[coinState] {
			if s == "heads" {
				return nil
			}
			return []pa.Step[coinState]{
				{Action: "flip", Next: prob.MustUniform(coinState("heads"), coinState("tails"))},
			}
		},
	}
}

// reachMonitor is a minimal monitor accepting when pred holds, used to
// test the evaluator without importing package events (which would create
// an import cycle in tests).
type reachMonitor struct {
	pred func(coinState) bool
}

func (r reachMonitor) Start(s coinState) (Monitor[coinState], Status) {
	if r.pred(s) {
		return r, Accepted
	}
	return r, Undetermined
}

func (r reachMonitor) Observe(_ string, next coinState, _ prob.Rat) (Monitor[coinState], Status) {
	if r.pred(next) {
		return r, Accepted
	}
	return r, Undetermined
}

func (r reachMonitor) AtEnd() Status { return Rejected }

func TestRectangleProb(t *testing.T) {
	m := coinAutomaton()
	h := FromState(m, adversary.FirstEnabled(m), coinState("start"))

	tests := []struct {
		name    string
		states  []coinState
		actions []string
		want    string
		wantErr bool
	}{
		{name: "start only", states: []coinState{"start"}, want: "1"},
		{name: "heads", states: []coinState{"start", "heads"}, actions: []string{"flip"}, want: "1/2"},
		{name: "tails", states: []coinState{"start", "tails"}, actions: []string{"flip"}, want: "1/2"},
		{name: "not an extension", states: []coinState{"heads"}, wantErr: true},
		{name: "wrong action", states: []coinState{"start", "heads"}, actions: []string{"toss"}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			frag, err := pa.FragmentOf(tt.states, tt.actions)
			if err != nil {
				t.Fatal(err)
			}
			got, err := h.RectangleProb(frag)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("RectangleProb = %v, want error", got)
				}
				return
			}
			if err != nil {
				t.Fatalf("RectangleProb: %v", err)
			}
			if got.String() != tt.want {
				t.Errorf("RectangleProb = %v, want %s", got, tt.want)
			}
		})
	}
}

func TestRectangleProbZeroBranch(t *testing.T) {
	// A fragment that follows the adversary but passes through a
	// zero-probability successor has rectangle measure zero.
	m := &pa.Automaton[int]{
		Start: []int{0},
		Steps: func(s int) []pa.Step[int] {
			if s != 0 {
				return nil
			}
			return []pa.Step[int]{{
				Action: "go",
				Next: prob.MustDist(
					prob.Outcome[int]{Value: 1, Prob: prob.One()},
				),
			}}
		},
	}
	h := FromState(m, adversary.FirstEnabled(m), 0)
	frag, err := pa.FragmentOf([]int{0, 2}, []string{"go"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.RectangleProb(frag)
	if err != nil {
		t.Fatalf("RectangleProb: %v", err)
	}
	if !got.IsZero() {
		t.Errorf("RectangleProb = %v, want 0", got)
	}
}

func TestProbExactFiniteTree(t *testing.T) {
	m := coinAutomaton()
	h := FromState(m, adversary.FirstEnabled(m), coinState("start"))
	iv, err := h.Prob(reachMonitor{pred: func(s coinState) bool { return s == "heads" }}, EvalConfig{})
	if err != nil {
		t.Fatalf("Prob: %v", err)
	}
	if !iv.Exact() {
		t.Fatalf("interval %v not exact", iv)
	}
	if !iv.Lo.Equal(prob.Half()) {
		t.Errorf("P = %v, want 1/2", iv.Lo)
	}
}

func TestProbGeometricInterval(t *testing.T) {
	m := untilHeads()
	h := FromState(m, adversary.FirstEnabled(m), coinState("start"))
	iv, err := h.Prob(reachMonitor{pred: func(s coinState) bool { return s == "heads" }}, EvalConfig{MaxDepth: 10})
	if err != nil {
		t.Fatalf("Prob: %v", err)
	}
	// After depth 10, P[heads] is pinned to [1 - 2^-10, 1].
	wantLo := prob.One().Sub(prob.NewRat(1, 1024))
	if !iv.Lo.Equal(wantLo) {
		t.Errorf("Lo = %v, want %v", iv.Lo, wantLo)
	}
	if !iv.Hi.IsOne() {
		t.Errorf("Hi = %v, want 1", iv.Hi)
	}
	if iv.Exact() {
		t.Error("unbounded event reported exact at finite depth")
	}
}

func TestProbAcceptedAtStart(t *testing.T) {
	m := coinAutomaton()
	h := FromState(m, adversary.FirstEnabled(m), coinState("start"))
	iv, err := h.Prob(reachMonitor{pred: func(coinState) bool { return true }}, EvalConfig{})
	if err != nil {
		t.Fatalf("Prob: %v", err)
	}
	if !iv.Exact() || !iv.Lo.IsOne() {
		t.Errorf("P = %v, want exactly 1", iv)
	}
}

func TestProbStartFragmentReplay(t *testing.T) {
	// Starting from the fragment start -flip-> tails, the monitor for
	// "reach heads" is undetermined and the adversary has halted (the
	// coin automaton is absorbing after one flip), so P = 0.
	m := coinAutomaton()
	frag := pa.NewFragment(coinState("start")).Extend("flip", "tails")
	h := New(m, adversary.FirstEnabled(m), frag)
	iv, err := h.Prob(reachMonitor{pred: func(s coinState) bool { return s == "heads" }}, EvalConfig{})
	if err != nil {
		t.Fatalf("Prob: %v", err)
	}
	if !iv.Exact() || !iv.Lo.IsZero() {
		t.Errorf("P = %v, want exactly 0", iv)
	}

	// Starting from the fragment that already visited heads, the event
	// holds with probability 1 no matter what follows.
	fragHeads := pa.NewFragment(coinState("start")).Extend("flip", "heads")
	h2 := New(m, adversary.FirstEnabled(m), fragHeads)
	iv2, err := h2.Prob(reachMonitor{pred: func(s coinState) bool { return s == "heads" }}, EvalConfig{})
	if err != nil {
		t.Fatalf("Prob: %v", err)
	}
	if !iv2.Exact() || !iv2.Lo.IsOne() {
		t.Errorf("P = %v, want exactly 1", iv2)
	}
}

func TestProbBudget(t *testing.T) {
	m := untilHeads()
	h := FromState(m, adversary.FirstEnabled(m), coinState("start"))
	_, err := h.Prob(reachMonitor{pred: func(coinState) bool { return false }}, EvalConfig{MaxDepth: 60, MaxNodes: 5})
	if !errors.Is(err, ErrBudget) {
		t.Errorf("err = %v, want ErrBudget", err)
	}
}

func TestStepAt(t *testing.T) {
	m := coinAutomaton()
	h := FromState(m, adversary.FirstEnabled(m), coinState("start"))
	step, ok := h.StepAt(pa.NewFragment(coinState("start")))
	if !ok || step.Action != "flip" {
		t.Errorf("StepAt = %q, %t; want flip, true", step.Action, ok)
	}
	if _, ok := h.StepAt(pa.NewFragment(coinState("heads"))); ok {
		t.Error("StepAt returned a step in an absorbing state")
	}
}

func TestExecutionAutomatonIsFullyProbabilistic(t *testing.T) {
	// Definition 2.3 requires H to be fully probabilistic: we realize H
	// as a pa.Automaton over fragment strings and check the property on a
	// bounded unfolding. (Fragments are not comparable, so we key nodes
	// by their string rendering — adequate for this structural check.)
	m := coinAutomaton()
	a := adversary.FirstEnabled(m)

	type node = string
	frags := map[node]*pa.Fragment[coinState]{}
	start := pa.NewFragment(coinState("start"))
	frags[start.String()] = start

	unfolded := &pa.Automaton[node]{
		Start: []node{start.String()},
		Steps: func(n node) []pa.Step[node] {
			frag, ok := frags[n]
			if !ok {
				return nil
			}
			step, ok := a.Step(frag)
			if !ok {
				return nil
			}
			outcomes := make([]prob.Outcome[node], 0, step.Next.Len())
			for _, o := range step.Next.Outcomes() {
				child := frag.Extend(step.Action, o.Value)
				frags[child.String()] = child
				outcomes = append(outcomes, prob.Outcome[node]{Value: child.String(), Prob: o.Prob})
			}
			return []pa.Step[node]{{Action: step.Action, Next: prob.MustDist(outcomes...)}}
		},
	}
	full, err := unfolded.IsFullyProbabilistic(1000)
	if err != nil {
		t.Fatalf("IsFullyProbabilistic: %v", err)
	}
	if !full {
		t.Error("execution automaton is not fully probabilistic")
	}
}

func TestIntervalString(t *testing.T) {
	exact := Interval{Lo: prob.Half(), Hi: prob.Half()}
	if got, want := exact.String(), "1/2"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	loose := Interval{Lo: prob.NewRat(1, 4), Hi: prob.Half()}
	if got, want := loose.String(), "[1/4, 1/2]"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestStatusString(t *testing.T) {
	tests := []struct {
		status Status
		want   string
	}{
		{status: Undetermined, want: "undetermined"},
		{status: Accepted, want: "accepted"},
		{status: Rejected, want: "rejected"},
		{status: Status(42), want: "Status(42)"},
	}
	for _, tt := range tests {
		if got := tt.status.String(); got != tt.want {
			t.Errorf("Status(%d).String() = %q, want %q", int(tt.status), got, tt.want)
		}
	}
}
