package mdp

// This file is the sparse core of the exact engine: transitions stored in
// compressed-sparse-row (CSR) form — flat int32 row-pointer/column arrays
// plus parallel probability arrays, one contiguous allocation each —
// instead of the per-state Choices/Branches slice-of-slices the package
// grew up with. Both representations coexist: MDPs hand-built through the
// Choices field (tests, small models) are converted lazily by MDP.CSR,
// while the on-the-fly explorer (explore.go) emits CSR directly and never
// materializes Choices. Every analysis in the package runs on the CSR
// form, so callers see identical results whichever way the MDP was built.
//
// Layout. State s owns choices csr.choiceRow[s] : csr.choiceRow[s+1];
// choice c owns branches csr.branchRow[c] : csr.branchRow[c+1]. Because
// both levels are contiguous, the branches of *state* s are themselves one
// contiguous range branchRow[choiceRow[s]] : branchRow[choiceRow[s+1]] —
// the graph analyses walk that single flat range per state, with no
// per-pop allocation (the fix for the old successors() helper). Branch
// probabilities are kept twice: as float64 for value iteration and as
// prob.Rat for the exact DP — the Rat array costs one pointer per branch
// (prob.Rat shares its immutable *big.Rat across copies), so carrying it
// to millions of branches is cheap.
//
// Parallelism. The sparse solvers sweep states with per-worker contiguous
// row ranges (parallelFor). Determinism for any worker count is by
// construction: within a sweep each worker writes only its own rows, and
// cross-row reads go either to the previous sweep's array or — for
// zero-duration (non-tick) edges — to rows of strictly lower "level" in
// the non-tick DAG, which earlier barriers have already completed. The
// per-sweep convergence delta is reduced with max, which is exact in
// floating point, so the iteration trajectory is bit-identical whether one
// worker sweeps or sixteen do.

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/prob"
)

// bitset is a packed bool vector; the MEC decomposition and the tick
// flags use it instead of map[int]bool / []bool for density and O(1)
// clearing by word.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) get(i int32) bool { return b[uint32(i)>>6]&(1<<(uint32(i)&63)) != 0 }
func (b bitset) set(i int32)      { b[uint32(i)>>6] |= 1 << (uint32(i) & 63) }
func (b bitset) clear(i int32)    { b[uint32(i)>>6] &^= 1 << (uint32(i) & 63) }

func (b bitset) count() int {
	total := 0
	for _, w := range b {
		for ; w != 0; w &= w - 1 {
			total++
		}
	}
	return total
}

// CSR is the compressed-sparse-row transition structure of an MDP. All
// slices are immutable after construction and shared freely across
// goroutines; derived structures (non-tick levels, reverse adjacency) are
// memoized behind sync.Once.
type CSR struct {
	n         int
	choiceRow []int32 // len n+1; choices of state s
	branchRow []int32 // len NumChoices()+1; branches of choice c
	col       []int32 // branch targets
	pf        []float64 // branch probabilities, float64
	pr        []prob.Rat // branch probabilities, exact
	tick      bitset    // per choice
	labelID   []int32   // per choice, index into labels
	labels    []string  // interned choice labels, first-seen order

	// Non-tick level schedule (nil until first use; levelErr records a
	// Zeno cycle instead). order lists every state grouped by level,
	// level 0 (no non-tick successors) first; levels[l] is the end offset
	// of level l in order.
	topoOnce sync.Once
	topoErr  error
	order    []int32
	levels   []int32

	// Reverse adjacency over states (with edge multiplicity), built on
	// first backward search.
	revOnce sync.Once
	revRow  []int32
	revCol  []int32
}

// NumStates returns the number of states.
func (c *CSR) NumStates() int { return c.n }

// NumChoices returns the total number of choices across all states.
func (c *CSR) NumChoices() int { return len(c.branchRow) - 1 }

// NumBranches returns the total number of probabilistic branches.
func (c *CSR) NumBranches() int { return len(c.col) }

// terminal reports whether state s has no choices.
func (c *CSR) terminal(s int) bool { return c.choiceRow[s] == c.choiceRow[s+1] }

// label returns the label of choice ci.
func (c *CSR) label(ci int32) string { return c.labels[c.labelID[ci]] }

// stateBranches returns the flat branch index range of state s: every
// branch of every choice of s lives in branchLo..branchHi. This is the
// zero-allocation replacement for the old successors() helper.
func (c *CSR) stateBranches(s int32) (lo, hi int32) {
	return c.branchRow[c.choiceRow[s]], c.branchRow[c.choiceRow[s+1]]
}

// MemFootprint estimates the resident bytes of the transition structure
// (excluding memoized derivations): the quantity the exploration budget
// accounts against.
func (c *CSR) MemFootprint() int64 {
	return int64(len(c.choiceRow))*4 +
		int64(len(c.branchRow))*4 +
		int64(len(c.labelID))*4 +
		int64(len(c.tick))*8 +
		int64(len(c.col))*4 +
		int64(len(c.pf))*8 +
		int64(len(c.pr))*8
}

// csrFromChoices converts the slice-of-slices form into CSR. Labels are
// interned in first-seen order, matching the explorer's interning so a
// densely built MDP and an explored one produce identical structures.
func csrFromChoices(n int, choices [][]Choice) *CSR {
	numChoices, numBranches := 0, 0
	for _, cs := range choices {
		numChoices += len(cs)
		for _, ch := range cs {
			numBranches += len(ch.Branches)
		}
	}
	b := newCSRBuilder(n, numChoices, numBranches)
	for _, cs := range choices {
		b.startState()
		for _, ch := range cs {
			b.addChoice(ch.Label, ch.Tick)
			for _, tr := range ch.Branches {
				b.addBranch(int32(tr.To), tr.P)
			}
		}
	}
	return b.finish()
}

// csrBuilder accumulates a CSR row by row. The explorer and the Choices
// converter both drive it, guaranteeing one canonical construction order.
type csrBuilder struct {
	c       *CSR
	labelOf map[string]int32
}

func newCSRBuilder(nStates, nChoices, nBranches int) *csrBuilder {
	return &csrBuilder{
		c: &CSR{
			choiceRow: make([]int32, 1, nStates+1),
			branchRow: make([]int32, 1, nChoices+1),
			col:       make([]int32, 0, nBranches),
			pf:        make([]float64, 0, nBranches),
			pr:        make([]prob.Rat, 0, nBranches),
			labelID:   make([]int32, 0, nChoices),
		},
		labelOf: make(map[string]int32),
	}
}

// startState begins the next state's row.
func (b *csrBuilder) startState() {
	b.c.choiceRow = append(b.c.choiceRow, b.c.choiceRow[len(b.c.choiceRow)-1])
}

// addChoice appends a choice to the current state.
func (b *csrBuilder) addChoice(label string, tick bool) {
	id, ok := b.labelOf[label]
	if !ok {
		id = int32(len(b.c.labels))
		b.c.labels = append(b.c.labels, label)
		b.labelOf[label] = id
	}
	ci := int32(len(b.c.labelID))
	b.c.labelID = append(b.c.labelID, id)
	b.c.branchRow = append(b.c.branchRow, b.c.branchRow[len(b.c.branchRow)-1])
	if tick {
		for int(ci)>>6 >= len(b.c.tick) {
			b.c.tick = append(b.c.tick, 0)
		}
		b.c.tick.set(ci)
	}
	b.c.choiceRow[len(b.c.choiceRow)-1]++
}

// addBranch appends a probabilistic branch to the current choice.
func (b *csrBuilder) addBranch(to int32, p prob.Rat) {
	b.c.col = append(b.c.col, to)
	b.c.pf = append(b.c.pf, p.Float64())
	b.c.pr = append(b.c.pr, p)
	b.c.branchRow[len(b.c.branchRow)-1]++
}

// finish seals the structure.
func (b *csrBuilder) finish() *CSR {
	c := b.c
	c.n = len(c.choiceRow) - 1
	need := (len(c.labelID) + 63) / 64
	for len(c.tick) < need {
		c.tick = append(c.tick, 0)
	}
	return c
}

// validate checks the CSR invariants mirrored from MDP.Validate: targets
// in range and exact branch probabilities summing to one per choice.
func (c *CSR) validate() error {
	for s := 0; s < c.n; s++ {
		for ci := c.choiceRow[s]; ci < c.choiceRow[s+1]; ci++ {
			total := prob.Zero()
			for bi := c.branchRow[ci]; bi < c.branchRow[ci+1]; bi++ {
				to := c.col[bi]
				if to < 0 || int(to) >= c.n {
					return fmt.Errorf("mdp: state %d choice %d targets out-of-range state %d", s, ci-c.choiceRow[s], to)
				}
				if c.pr[bi].Sign() <= 0 {
					return fmt.Errorf("mdp: state %d choice %d has non-positive branch probability %v", s, ci-c.choiceRow[s], c.pr[bi])
				}
				total = total.Add(c.pr[bi])
			}
			if !total.IsOne() {
				return fmt.Errorf("mdp: state %d choice %d branches sum to %v", s, ci-c.choiceRow[s], total)
			}
		}
	}
	return nil
}

// minGrain is the smallest per-sweep work size worth fanning out to
// goroutines; below it the scheduling overhead dominates and the sweep
// runs inline (results are identical either way — see the determinism
// note at the top of the file). A variable so the determinism tests can
// force the parallel path on small models via SetMinGrainForTest.
var minGrain = 2048

// SetMinGrainForTest overrides the inline-sweep threshold and returns a
// restore function. Test-only: the override is global, so callers must
// not run overridden code in parallel with other tests' sweeps.
func SetMinGrainForTest(g int) (restore func()) {
	old := minGrain
	minGrain = g
	return func() { minGrain = old }
}

// resolveWorkers maps the MDP.Workers convention (0 = all cores) to a
// concrete count.
func resolveWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// parallelFor splits [0, n) into per-worker contiguous ranges and runs fn
// on each; fn must write only state it owns for the range. The partition
// depends only on (workers, n), never on scheduling, and small ranges run
// inline on the calling goroutine.
func parallelFor(workers, n int, fn func(w, lo, hi int)) {
	if workers <= 1 || n < minGrain {
		fn(0, 0, n)
		return
	}
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// parallelForMax is parallelFor with a max-reduction over per-worker
// results. max is exact in floating point, so the reduced value does not
// depend on the worker count or completion order.
func parallelForMax(workers, n int, fn func(lo, hi int) float64) float64 {
	if workers <= 1 || n < minGrain {
		return fn(0, n)
	}
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	out := make([]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			out[w] = fn(lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	best := 0.0
	for _, d := range out {
		if d > best {
			best = d
		}
	}
	return best
}

// nonTickLevels computes the level schedule of the zero-duration edge
// graph: level(s) = 0 when s has no non-tick successors, else
// 1 + max(level of non-tick successors). Along every non-tick edge the
// level strictly decreases, so states within one level are independent
// under the cur/prev read discipline and may be swept in parallel. The
// schedule exists iff the non-tick graph is acyclic; a cycle is reported
// once as ErrZenoCycle and memoized.
func (c *CSR) nonTickLevels() ([]int32, []int32, error) {
	c.topoOnce.Do(func() { c.order, c.levels, c.topoErr = c.buildNonTickLevels() })
	return c.order, c.levels, c.topoErr
}

func (c *CSR) buildNonTickLevels() ([]int32, []int32, error) {
	const (
		unvisited = 0
		onStack   = 1
		done      = 2
	)
	n := c.n
	color := make([]int8, n)
	level := make([]int32, n)

	// Iterative DFS over non-tick edges; the frame cursor walks the
	// state's choice range and, within a choice, its branch range.
	type frame struct {
		state int32
		ci    int32 // current choice
		bi    int32 // next branch within ci (valid when ci is non-tick)
	}
	var stack []frame
	push := func(s int32) {
		color[s] = onStack
		f := frame{state: s, ci: c.choiceRow[s]}
		if f.ci < c.choiceRow[s+1] {
			f.bi = c.branchRow[f.ci]
		}
		stack = append(stack, f)
	}

	for root := int32(0); root < int32(n); root++ {
		if color[root] != unvisited {
			continue
		}
		push(root)
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			s := f.state
			advanced := false
			for f.ci < c.choiceRow[s+1] {
				if c.tick.get(f.ci) {
					f.ci++
					if f.ci < c.choiceRow[s+1] {
						f.bi = c.branchRow[f.ci]
					}
					continue
				}
				if f.bi >= c.branchRow[f.ci+1] {
					f.ci++
					if f.ci < c.choiceRow[s+1] {
						f.bi = c.branchRow[f.ci]
					}
					continue
				}
				child := c.col[f.bi]
				f.bi++
				switch color[child] {
				case onStack:
					return nil, nil, fmt.Errorf("%w: involving state %d", ErrZenoCycle, child)
				case unvisited:
					push(child)
					advanced = true
				case done:
					if lv := level[child] + 1; lv > level[s] {
						level[s] = lv
					}
				}
				if advanced {
					break
				}
			}
			if advanced {
				continue
			}
			color[s] = done
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				parent := &stack[len(stack)-1]
				if lv := level[s] + 1; lv > level[parent.state] {
					level[parent.state] = lv
				}
			}
		}
	}

	// Bucket states by level with a counting sort: order lists level 0
	// first, states ascending within a level.
	maxLevel := int32(0)
	for _, lv := range level {
		if lv > maxLevel {
			maxLevel = lv
		}
	}
	counts := make([]int32, maxLevel+2)
	for _, lv := range level {
		counts[lv+1]++
	}
	for l := int32(1); l < int32(len(counts)); l++ {
		counts[l] += counts[l-1]
	}
	order := make([]int32, n)
	next := append([]int32(nil), counts...)
	for s := int32(0); s < int32(n); s++ {
		lv := level[s]
		order[next[lv]] = s
		next[lv]++
	}
	return order, counts[1:], nil
}

// reverse builds (once) the state-level reverse adjacency: predecessors
// of state t are revCol[revRow[t]:revRow[t+1]], with multiplicity.
func (c *CSR) reverse() ([]int32, []int32) {
	c.revOnce.Do(func() {
		counts := make([]int32, c.n+1)
		for _, t := range c.col {
			counts[t+1]++
		}
		for i := 1; i <= c.n; i++ {
			counts[i] += counts[i-1]
		}
		row := counts
		colOut := make([]int32, len(c.col))
		next := append([]int32(nil), row...)
		for s := int32(0); s < int32(c.n); s++ {
			lo, hi := c.stateBranches(s)
			for bi := lo; bi < hi; bi++ {
				t := c.col[bi]
				colOut[next[t]] = s
				next[t]++
			}
		}
		c.revRow, c.revCol = row, colOut
	})
	return c.revRow, c.revCol
}

// Equal reports whether two CSR structures are identical: same states,
// choices, branches, tick marks, labels, successor columns, and exact
// branch probabilities, position for position. The dense-vs-explored
// equality tests and the mdp smoke check rest on it: the on-the-fly
// explorer must reproduce the dense enumerator's arrays exactly. It
// returns nil on equality and a description of the first difference
// otherwise.
func (c *CSR) Equal(o *CSR) error {
	if c.n != o.n {
		return fmt.Errorf("csr: %d states != %d states", c.n, o.n)
	}
	if nc, no := c.NumChoices(), o.NumChoices(); nc != no {
		return fmt.Errorf("csr: %d choices != %d choices", nc, no)
	}
	if nb, no := c.NumBranches(), o.NumBranches(); nb != no {
		return fmt.Errorf("csr: %d branches != %d branches", nb, no)
	}
	for s := 0; s <= c.n; s++ {
		if c.choiceRow[s] != o.choiceRow[s] {
			return fmt.Errorf("csr: state %d starts at choice %d vs %d", s, c.choiceRow[s], o.choiceRow[s])
		}
	}
	for ci := int32(0); int(ci) < c.NumChoices(); ci++ {
		if c.branchRow[ci] != o.branchRow[ci] {
			return fmt.Errorf("csr: choice %d starts at branch %d vs %d", ci, c.branchRow[ci], o.branchRow[ci])
		}
		if c.tick.get(ci) != o.tick.get(ci) {
			return fmt.Errorf("csr: choice %d tick %v vs %v", ci, c.tick.get(ci), o.tick.get(ci))
		}
		if c.label(ci) != o.label(ci) {
			return fmt.Errorf("csr: choice %d label %q vs %q", ci, c.label(ci), o.label(ci))
		}
	}
	for bi := range c.col {
		if c.col[bi] != o.col[bi] {
			return fmt.Errorf("csr: branch %d targets %d vs %d", bi, c.col[bi], o.col[bi])
		}
		if !c.pr[bi].Equal(o.pr[bi]) {
			return fmt.Errorf("csr: branch %d probability %v vs %v", bi, c.pr[bi], o.pr[bi])
		}
		if c.pf[bi] != o.pf[bi] {
			return fmt.Errorf("csr: branch %d float probability %v vs %v", bi, c.pf[bi], o.pf[bi])
		}
	}
	return nil
}
