package mdp

// This file contains the qualitative (graph-based) analyses: strongly
// connected components, reachability, the states from which some adversary
// avoids a target forever (Prob0E), and the states from which every
// adversary reaches a target almost surely (MinProbOne). The last is the
// Zuck–Pnueli-style baseline the paper refines: "with probability 1, some
// process eventually enters its critical region" is MinProbOne, with no
// time bound attached.
//
// Everything runs on the CSR form: a state's successors are one contiguous
// branch range (CSR.stateBranches), so the searches iterate branches in
// place with no per-pop allocation, and backward searches share the
// memoized reverse adjacency instead of rebuilding it per call.

// ReachableFrom returns the mask of states reachable (in the underlying
// graph, over all choices) from any state in the from mask.
func (m *MDP) ReachableFrom(from []bool) []bool {
	c := m.CSR()
	seen := make([]bool, c.n)
	stack := make([]int32, 0, 64)
	for s, in := range from {
		if in && !seen[s] {
			seen[s] = true
			stack = append(stack, int32(s))
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		lo, hi := c.stateBranches(s)
		for bi := lo; bi < hi; bi++ {
			if t := c.col[bi]; !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
	}
	return seen
}

// CanReach returns the mask of states from which the target mask is
// reachable in the underlying graph (backward reachability).
func (m *MDP) CanReach(target []bool) []bool {
	return m.canReachAvoiding(target, nil)
}

// canReachAvoiding is backward reachability of target through paths whose
// intermediate states avoid the blocked mask (blocked target states still
// count as reached; blocked non-target states are never expanded). A nil
// blocked mask blocks nothing.
func (m *MDP) canReachAvoiding(target, blocked []bool) []bool {
	c := m.CSR()
	revRow, revCol := c.reverse()
	seen := make([]bool, c.n)
	stack := make([]int32, 0, 64)
	for s, in := range target {
		if in {
			seen[s] = true
			if blocked == nil || !blocked[s] {
				stack = append(stack, int32(s))
			}
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for ri := revRow[s]; ri < revRow[s+1]; ri++ {
			p := revCol[ri]
			if seen[p] {
				continue
			}
			seen[p] = true
			if blocked == nil || !blocked[p] {
				stack = append(stack, p)
			}
		}
	}
	return seen
}

// SCCs returns the strongly connected components of the underlying graph
// in reverse topological order (every edge leaving a component goes to an
// earlier component in the returned list), using an iterative Tarjan
// algorithm over the CSR branch ranges.
func (m *MDP) SCCs() [][]int {
	c := m.CSR()
	n := c.n
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var (
		counter int32
		tarjan  []int32 // Tarjan stack
		comps   [][]int
	)

	// frame.bi walks the state's flat branch range: branch targets are the
	// successor multiset, multiplicity and all, which Tarjan tolerates.
	type frame struct {
		v  int32
		bi int32
	}

	for root := int32(0); root < int32(n); root++ {
		if index[root] != -1 {
			continue
		}
		lo, _ := c.stateBranches(root)
		stack := []frame{{v: root, bi: lo}}
		index[root] = counter
		low[root] = counter
		counter++
		tarjan = append(tarjan, root)
		onStack[root] = true

		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			_, hi := c.stateBranches(f.v)
			if f.bi < hi {
				w := c.col[f.bi]
				f.bi++
				if index[w] == -1 {
					index[w] = counter
					low[w] = counter
					counter++
					tarjan = append(tarjan, w)
					onStack[w] = true
					wlo, _ := c.stateBranches(w)
					stack = append(stack, frame{v: w, bi: wlo})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// Post-visit: pop the frame, propagate lowlink, emit SCC.
			v := f.v
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				parent := stack[len(stack)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := tarjan[len(tarjan)-1]
					tarjan = tarjan[:len(tarjan)-1]
					onStack[w] = false
					comp = append(comp, int(w))
					if w == v {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	return comps
}

// Prob0E returns the mask of states from which some adversary avoids the
// target forever, i.e. achieves P(eventually target) = 0. It is the
// greatest set X of non-target states such that every state of X is
// terminal or has a choice whose branches all stay in X.
func (m *MDP) Prob0E(target []bool) []bool {
	c := m.CSR()
	in := make([]bool, c.n)
	for s := range in {
		in[s] = !target[s]
	}
	for changed := true; changed; {
		changed = false
		for s := int32(0); int(s) < c.n; s++ {
			if !in[s] || c.terminal(int(s)) {
				continue
			}
			ok := false
			for ci := c.choiceRow[s]; ci < c.choiceRow[s+1] && !ok; ci++ {
				all := true
				for bi := c.branchRow[ci]; bi < c.branchRow[ci+1]; bi++ {
					if !in[c.col[bi]] {
						all = false
						break
					}
				}
				ok = all
			}
			if !ok {
				in[s] = false
				changed = true
			}
		}
	}
	return in
}

// MinProbOne returns the mask of states from which EVERY adversary reaches
// the target with probability one: the states that cannot reach, along a
// path avoiding the target, a state where some adversary then avoids the
// target forever. (A path through the target does not witness failure —
// the target has already been visited.) This is the qualitative progress
// property of Zuck and Pnueli that Section 1 of the paper refines into
// quantitative time bounds.
func (m *MDP) MinProbOne(target []bool) []bool {
	avoid := m.Prob0E(target)
	canFail := m.canReachAvoiding(avoid, target)
	out := make([]bool, m.NumStates)
	for s := range out {
		out[s] = target[s] || !canFail[s]
	}
	return out
}

// MaxProbPositive returns the mask of states from which some adversary
// reaches the target with positive probability: backward graph
// reachability of the target.
func (m *MDP) MaxProbPositive(target []bool) []bool {
	return m.CanReach(target)
}
