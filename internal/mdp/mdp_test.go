package mdp

import (
	"errors"
	"math"
	"testing"

	"repro/internal/pa"
	"repro/internal/prob"
)

// mask builds a target mask for an MDP of n states.
func mask(n int, targets ...int) []bool {
	out := make([]bool, n)
	for _, t := range targets {
		out[t] = true
	}
	return out
}

// tickTo builds a deterministic tick choice.
func tickTo(label string, to int) Choice {
	return Choice{Label: label, Tick: true, Branches: []Tr{{To: to, P: prob.One()}}}
}

// moveTo builds a deterministic zero-duration choice.
func moveTo(label string, to int) Choice {
	return Choice{Label: label, Branches: []Tr{{To: to, P: prob.One()}}}
}

// tickCoin builds a tick choice flipping fairly between two successors.
func tickCoin(label string, a, b int) Choice {
	return Choice{Label: label, Tick: true, Branches: []Tr{
		{To: a, P: prob.Half()},
		{To: b, P: prob.Half()},
	}}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		m       *MDP
		wantErr bool
	}{
		{
			name: "valid",
			m: &MDP{NumStates: 2, Choices: [][]Choice{
				{tickCoin("flip", 0, 1)},
				nil,
			}},
		},
		{
			name:    "shape mismatch",
			m:       &MDP{NumStates: 3, Choices: make([][]Choice, 2)},
			wantErr: true,
		},
		{
			name: "target out of range",
			m: &MDP{NumStates: 1, Choices: [][]Choice{
				{moveTo("bad", 5)},
			}},
			wantErr: true,
		},
		{
			name: "bad distribution",
			m: &MDP{NumStates: 2, Choices: [][]Choice{
				{{Label: "half", Branches: []Tr{{To: 1, P: prob.Half()}}}},
				nil,
			}},
			wantErr: true,
		},
		{
			name: "zero probability branch",
			m: &MDP{NumStates: 2, Choices: [][]Choice{
				{{Label: "z", Branches: []Tr{{To: 1, P: prob.One()}, {To: 0, P: prob.Zero()}}}},
				nil,
			}},
			wantErr: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.m.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate = %v, wantErr %t", err, tt.wantErr)
			}
		})
	}
}

func TestReachWithinTicksChain(t *testing.T) {
	// 0 -tick-> 1 -tick-> 2 (target, absorbing).
	m := &MDP{NumStates: 3, Choices: [][]Choice{
		{tickTo("a", 1)},
		{tickTo("b", 2)},
		nil,
	}}
	target := mask(3, 2)
	tests := []struct {
		horizon int
		want    string
	}{
		{horizon: 0, want: "0"},
		{horizon: 1, want: "0"},
		{horizon: 2, want: "1"},
		{horizon: 5, want: "1"},
	}
	for _, goal := range []Goal{MinProb, MaxProb} {
		for _, tt := range tests {
			v, err := m.ReachWithinTicks(target, tt.horizon, goal)
			if err != nil {
				t.Fatalf("ReachWithinTicks: %v", err)
			}
			if got := v[0].String(); got != tt.want {
				t.Errorf("goal %v horizon %d: P = %s, want %s", goal, tt.horizon, got, tt.want)
			}
		}
	}
}

func TestReachWithinTicksChoice(t *testing.T) {
	// From 0 the adversary picks: tick to target 1, or tick to sink 2.
	m := &MDP{NumStates: 3, Choices: [][]Choice{
		{tickTo("good", 1), tickTo("bad", 2)},
		nil,
		{tickTo("stay", 2)},
	}}
	target := mask(3, 1)

	vMin, err := m.ReachWithinTicks(target, 10, MinProb)
	if err != nil {
		t.Fatal(err)
	}
	if !vMin[0].IsZero() {
		t.Errorf("min P = %v, want 0", vMin[0])
	}
	vMax, err := m.ReachWithinTicks(target, 10, MaxProb)
	if err != nil {
		t.Fatal(err)
	}
	if !vMax[0].IsOne() {
		t.Errorf("max P = %v, want 1", vMax[0])
	}
}

func TestReachWithinTicksGeometric(t *testing.T) {
	// Each tick flips a fair coin: target 1 or retry 0.
	m := &MDP{NumStates: 2, Choices: [][]Choice{
		{tickCoin("flip", 1, 0)},
		nil,
	}}
	target := mask(2, 1)
	for h, want := range map[int]prob.Rat{
		0: prob.Zero(),
		1: prob.Half(),
		2: prob.NewRat(3, 4),
		3: prob.NewRat(7, 8),
	} {
		v, err := m.ReachWithinTicks(target, h, MinProb)
		if err != nil {
			t.Fatal(err)
		}
		if !v[0].Equal(want) {
			t.Errorf("horizon %d: P = %v, want %v", h, v[0], want)
		}
	}
}

func TestReachWithinTicksZeroDurationTail(t *testing.T) {
	// A zero-duration move after the last tick still counts as within the
	// bound: 0 -tick-> 1 -move-> 2 (target) is reachable within 1 tick.
	m := &MDP{NumStates: 3, Choices: [][]Choice{
		{tickTo("t", 1)},
		{moveTo("m", 2)},
		nil,
	}}
	target := mask(3, 2)
	v, err := m.ReachWithinTicks(target, 1, MinProb)
	if err != nil {
		t.Fatal(err)
	}
	if !v[0].IsOne() {
		t.Errorf("P = %v, want 1 (zero-duration tail)", v[0])
	}
	// But with horizon 0 the tick itself is out of budget.
	v0, err := m.ReachWithinTicks(target, 0, MaxProb)
	if err != nil {
		t.Fatal(err)
	}
	if !v0[0].IsZero() {
		t.Errorf("P = %v at horizon 0, want 0", v0[0])
	}
}

func TestReachWithinTicksMinPrefersLateTick(t *testing.T) {
	// The minimizing adversary at the deadline can tick to discard the
	// remaining obligation: state 0 chooses a zero-duration move into the
	// target or a tick into the target. At horizon 0, ticking exceeds the
	// deadline so min picks it; max picks the free move.
	m := &MDP{NumStates: 2, Choices: [][]Choice{
		{moveTo("now", 1), tickTo("later", 1)},
		nil,
	}}
	target := mask(2, 1)
	vMin, err := m.ReachWithinTicks(target, 0, MinProb)
	if err != nil {
		t.Fatal(err)
	}
	if !vMin[0].IsZero() {
		t.Errorf("min P = %v, want 0", vMin[0])
	}
	vMax, err := m.ReachWithinTicks(target, 0, MaxProb)
	if err != nil {
		t.Fatal(err)
	}
	if !vMax[0].IsOne() {
		t.Errorf("max P = %v, want 1", vMax[0])
	}
}

func TestReachWithinTicksZenoCycle(t *testing.T) {
	m := &MDP{NumStates: 2, Choices: [][]Choice{
		{moveTo("spin", 0), tickTo("t", 1)},
		nil,
	}}
	_, err := m.ReachWithinTicks(mask(2, 1), 3, MinProb)
	if !errors.Is(err, ErrZenoCycle) {
		t.Errorf("err = %v, want ErrZenoCycle", err)
	}
}

func TestReachWithinTicksBadInput(t *testing.T) {
	m := &MDP{NumStates: 1, Choices: [][]Choice{nil}}
	if _, err := m.ReachWithinTicks(mask(2, 0), 1, MinProb); err == nil {
		t.Error("mismatched mask accepted")
	}
	if _, err := m.ReachWithinTicks(mask(1), -1, MinProb); err == nil {
		t.Error("negative horizon accepted")
	}
}

func TestReachWithinSteps(t *testing.T) {
	// Cyclic zero-duration MDP: steps-bounded analysis handles cycles.
	m := &MDP{NumStates: 3, Choices: [][]Choice{
		{{Label: "flip", Branches: []Tr{{To: 1, P: prob.Half()}, {To: 0, P: prob.Half()}}}},
		{moveTo("go", 2)},
		nil,
	}}
	target := mask(3, 2)
	v, err := m.ReachWithinSteps(target, 4, MinProb)
	if err != nil {
		t.Fatal(err)
	}
	// Paths: flip,go within 4 steps: success after k flips and the move,
	// k <= 3: 1/2 + 1/4 + 1/8 = 7/8.
	if want := prob.NewRat(7, 8); !v[0].Equal(want) {
		t.Errorf("P = %v, want %v", v[0], want)
	}
}

func TestOptAt(t *testing.T) {
	vals := []prob.Rat{prob.Half(), prob.One(), prob.NewRat(1, 4)}
	got, ok := OptAt(vals, []bool{true, false, true}, MinProb)
	if !ok || !got.Equal(prob.NewRat(1, 4)) {
		t.Errorf("OptAt min = %v, %t; want 1/4, true", got, ok)
	}
	got, ok = OptAt(vals, []bool{true, true, false}, MaxProb)
	if !ok || !got.IsOne() {
		t.Errorf("OptAt max = %v, %t; want 1, true", got, ok)
	}
	if _, ok := OptAt(vals, []bool{false, false, false}, MinProb); ok {
		t.Error("OptAt on empty mask reported ok")
	}
}

func TestFromAutomaton(t *testing.T) {
	// Timed automaton: 0 -tick-> coin: heads(1) absorbing target, tails
	// back to 0; plus a zero-duration reset choice 0 -> 0? (skipped: keep
	// it acyclic on non-tick edges).
	auto := &pa.Automaton[int]{
		Name:  "timed-coin",
		Start: []int{0},
		Steps: func(s int) []pa.Step[int] {
			if s != 0 {
				return nil
			}
			return []pa.Step[int]{
				{Action: "tick", Next: prob.MustUniform(1, 0)},
			}
		},
		Duration: func(a string) prob.Rat {
			if a == "tick" {
				return prob.One()
			}
			return prob.Zero()
		},
	}
	m, ix, err := FromAutomaton(auto, 0)
	if err != nil {
		t.Fatalf("FromAutomaton: %v", err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if ix.Len() != 2 {
		t.Fatalf("indexed %d states, want 2", ix.Len())
	}
	id0, ok := ix.ID(0)
	if !ok {
		t.Fatal("state 0 not indexed")
	}
	if got := ix.State(id0); got != 0 {
		t.Errorf("State(ID(0)) = %d, want 0", got)
	}
	if !m.Choices[id0][0].Tick {
		t.Error("tick action not marked as tick choice")
	}

	target := ix.Mask(func(s int) bool { return s == 1 })
	v, err := m.ReachWithinTicks(target, 2, MinProb)
	if err != nil {
		t.Fatal(err)
	}
	if want := prob.NewRat(3, 4); !v[id0].Equal(want) {
		t.Errorf("P = %v, want %v", v[id0], want)
	}

	if got := ix.Where(func(s int) bool { return s == 1 }); len(got) != 1 {
		t.Errorf("Where found %d states, want 1", len(got))
	}
}

func TestFromAutomatonBadDuration(t *testing.T) {
	auto := &pa.Automaton[int]{
		Start: []int{0},
		Steps: func(s int) []pa.Step[int] {
			if s != 0 {
				return nil
			}
			return []pa.Step[int]{{Action: "halftick", Next: prob.Point(1)}}
		},
		Duration: func(string) prob.Rat { return prob.Half() },
	}
	_, _, err := FromAutomaton(auto, 0)
	if !errors.Is(err, ErrBadDuration) {
		t.Errorf("err = %v, want ErrBadDuration", err)
	}
}

func TestSCCs(t *testing.T) {
	// 0 <-> 1 -> 2, 2 -> 2 (self loop), 3 isolated.
	m := &MDP{NumStates: 4, Choices: [][]Choice{
		{moveTo("a", 1)},
		{moveTo("b", 0), moveTo("c", 2)},
		{moveTo("d", 2)},
		nil,
	}}
	comps := m.SCCs()
	if len(comps) != 3 {
		t.Fatalf("got %d SCCs, want 3", len(comps))
	}
	sizes := map[int]int{}
	for _, c := range comps {
		sizes[len(c)]++
	}
	if sizes[2] != 1 || sizes[1] != 2 {
		t.Errorf("component sizes = %v, want one of size 2 and two of size 1", sizes)
	}
	// Reverse topological order: the {0,1} component must come after {2}.
	pos := map[int]int{}
	for i, c := range comps {
		for _, s := range c {
			pos[s] = i
		}
	}
	if pos[2] > pos[0] {
		t.Errorf("SCC order not reverse topological: pos(2)=%d > pos(0)=%d", pos[2], pos[0])
	}
}

func TestQualitative(t *testing.T) {
	// 0: choice A -> 1 (target), choice B -> 2 (sink with self loop).
	// 3: single fair-coin choice between 1 and 3 (a.s. reaches target).
	m := &MDP{NumStates: 4, Choices: [][]Choice{
		{moveTo("A", 1), moveTo("B", 2)},
		nil,
		{moveTo("stay", 2)},
		{{Label: "flip", Branches: []Tr{{To: 1, P: prob.Half()}, {To: 3, P: prob.Half()}}}},
	}}
	target := mask(4, 1)

	avoid := m.Prob0E(target)
	for s, want := range []bool{true, false, true, false} {
		if avoid[s] != want {
			t.Errorf("Prob0E[%d] = %t, want %t", s, avoid[s], want)
		}
	}

	one := m.MinProbOne(target)
	for s, want := range []bool{false, true, false, true} {
		if one[s] != want {
			t.Errorf("MinProbOne[%d] = %t, want %t", s, one[s], want)
		}
	}

	pos := m.MaxProbPositive(target)
	for s, want := range []bool{true, true, false, true} {
		if pos[s] != want {
			t.Errorf("MaxProbPositive[%d] = %t, want %t", s, pos[s], want)
		}
	}
}

func TestReachableFrom(t *testing.T) {
	m := &MDP{NumStates: 3, Choices: [][]Choice{
		{moveTo("a", 1)},
		nil,
		{moveTo("b", 0)},
	}}
	got := m.ReachableFrom(mask(3, 0))
	for s, want := range []bool{true, true, false} {
		if got[s] != want {
			t.Errorf("ReachableFrom[%d] = %t, want %t", s, got[s], want)
		}
	}
}

func TestMECs(t *testing.T) {
	// States 0,1 form an end component under the "cycle" choices; state 2
	// is absorbing with a self-loop (its own MEC); state 3 only leaks.
	m := &MDP{NumStates: 4, Choices: [][]Choice{
		{moveTo("to1", 1), moveTo("leak", 2)},
		{moveTo("to0", 0)},
		{moveTo("stay", 2)},
		{moveTo("out", 2)},
	}}
	mecs := m.MECs()
	if len(mecs) != 2 {
		t.Fatalf("got %d MECs (%v), want 2", len(mecs), mecs)
	}
	var found01, found2 bool
	for _, mec := range mecs {
		switch {
		case len(mec.States) == 2 && mec.States[0] == 0 && mec.States[1] == 1:
			found01 = true
			// The leaking choice of state 0 must not be in the MEC.
			if got := mec.Choices[0]; len(got) != 1 || got[0] != 0 {
				t.Errorf("MEC choices for state 0 = %v, want [0]", got)
			}
		case len(mec.States) == 1 && mec.States[0] == 2:
			found2 = true
		}
	}
	if !found01 || !found2 {
		t.Errorf("MECs = %+v, want {0,1} and {2}", mecs)
	}
}

func TestMaxExpectedTicks(t *testing.T) {
	t.Run("geometric", func(t *testing.T) {
		m := &MDP{NumStates: 2, Choices: [][]Choice{
			{tickCoin("flip", 1, 0)},
			nil,
		}}
		v, err := m.MaxExpectedTicks(mask(2, 1), VIConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(v[0]-2) > 1e-9 {
			t.Errorf("E = %g, want 2", v[0])
		}
	})
	t.Run("adversary maximizes", func(t *testing.T) {
		// Choice between a fair coin (E=2) and a 1/4 coin (E=4).
		m := &MDP{NumStates: 2, Choices: [][]Choice{
			{
				tickCoin("fair", 1, 0),
				{Label: "biased", Tick: true, Branches: []Tr{
					{To: 1, P: prob.NewRat(1, 4)},
					{To: 0, P: prob.NewRat(3, 4)},
				}},
			},
			nil,
		}}
		v, err := m.MaxExpectedTicks(mask(2, 1), VIConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(v[0]-4) > 1e-9 {
			t.Errorf("E = %g, want 4", v[0])
		}
	})
	t.Run("escapable target is infinite", func(t *testing.T) {
		m := &MDP{NumStates: 3, Choices: [][]Choice{
			{tickTo("good", 1), tickTo("bad", 2)},
			nil,
			{tickTo("stay", 2)},
		}}
		v, err := m.MaxExpectedTicks(mask(3, 1), VIConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if !math.IsInf(v[0], 1) {
			t.Errorf("E = %g, want +Inf", v[0])
		}
	})
}

func TestMinExpectedTicks(t *testing.T) {
	t.Run("picks the faster coin", func(t *testing.T) {
		m := &MDP{NumStates: 2, Choices: [][]Choice{
			{
				tickCoin("fair", 1, 0),
				{Label: "biased", Tick: true, Branches: []Tr{
					{To: 1, P: prob.NewRat(1, 4)},
					{To: 0, P: prob.NewRat(3, 4)},
				}},
			},
			nil,
		}}
		v, err := m.MinExpectedTicks(mask(2, 1), VIConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(v[0]-2) > 1e-9 {
			t.Errorf("E_min = %g, want 2 (the fair coin)", v[0])
		}
	})
	t.Run("unreachable target is infinite", func(t *testing.T) {
		m := &MDP{NumStates: 2, Choices: [][]Choice{
			{tickTo("stay", 0)},
			nil,
		}}
		v, err := m.MinExpectedTicks(mask(2, 1), VIConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if !math.IsInf(v[0], 1) {
			t.Errorf("E_min = %g, want +Inf", v[0])
		}
	})
	t.Run("min below max", func(t *testing.T) {
		m := &MDP{NumStates: 2, Choices: [][]Choice{
			{
				tickCoin("fair", 1, 0),
				{Label: "slow", Tick: true, Branches: []Tr{
					{To: 1, P: prob.NewRat(1, 8)},
					{To: 0, P: prob.NewRat(7, 8)},
				}},
			},
			nil,
		}}
		lo, err := m.MinExpectedTicks(mask(2, 1), VIConfig{})
		if err != nil {
			t.Fatal(err)
		}
		hi, err := m.MaxExpectedTicks(mask(2, 1), VIConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if !(lo[0] < hi[0]) {
			t.Errorf("E_min %g not below E_max %g", lo[0], hi[0])
		}
	})
}

func TestReachUnboundedFloat(t *testing.T) {
	// Geometric reaches the target with probability 1 under the only
	// adversary; a controllable escape gives min 0 / max 1.
	m := &MDP{NumStates: 4, Choices: [][]Choice{
		{tickCoin("flip", 1, 0)},
		nil,
		{tickTo("good", 1), tickTo("bad", 3)},
		{tickTo("stay", 3)},
	}}
	target := mask(4, 1)

	vMin, err := m.ReachUnboundedFloat(target, MinProb, VIConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vMin[0]-1) > 1e-9 {
		t.Errorf("min P(0) = %g, want 1", vMin[0])
	}
	if vMin[2] != 0 {
		t.Errorf("min P(2) = %g, want 0", vMin[2])
	}

	vMax, err := m.ReachUnboundedFloat(target, MaxProb, VIConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if vMax[2] != 1 {
		t.Errorf("max P(2) = %g, want 1", vMax[2])
	}
	if vMax[3] != 0 {
		t.Errorf("max P(3) = %g, want 0", vMax[3])
	}
}

// TestHorizonMonotonicity checks, on a pseudo-randomly generated family of
// tick-structured MDPs, that reach probabilities are monotone in the
// horizon and that min never exceeds max.
func TestHorizonMonotonicity(t *testing.T) {
	build := func(seed uint32) *MDP {
		// Three states, state 2 absorbing; choices derived from seed bits.
		next := func() int { seed = seed*1664525 + 1013904223; return int(seed>>16) % 3 }
		m := &MDP{NumStates: 3, Choices: make([][]Choice, 3)}
		for s := 0; s < 2; s++ {
			nChoices := 1 + next()%2
			for c := 0; c < nChoices; c++ {
				a, b := next(), next()
				if a == b {
					m.Choices[s] = append(m.Choices[s], tickTo("d", a))
				} else {
					m.Choices[s] = append(m.Choices[s], tickCoin("c", a, b))
				}
			}
		}
		return m
	}
	for seed := uint32(1); seed <= 200; seed++ {
		m := build(seed)
		if err := m.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		target := mask(3, 2)
		var prevMin, prevMax prob.Rat
		for h := 0; h <= 6; h++ {
			vMin, err := m.ReachWithinTicks(target, h, MinProb)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			vMax, err := m.ReachWithinTicks(target, h, MaxProb)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if vMax[0].Less(vMin[0]) {
				t.Fatalf("seed %d horizon %d: max %v < min %v", seed, h, vMax[0], vMin[0])
			}
			if h > 0 && (vMin[0].Less(prevMin) || vMax[0].Less(prevMax)) {
				t.Fatalf("seed %d horizon %d: probabilities not monotone", seed, h)
			}
			prevMin, prevMax = vMin[0], vMax[0]
		}
	}
}
