// Package mdp provides a finite Markov-decision-process substrate for
// worst-case analysis of probabilistic automata.
//
// A time-bound statement U --t,p-->_Advs U' (Definition 3.1 of Lynch,
// Saias and Segala, PODC 1994) quantifies over every adversary of a
// schema. For the digitized adversary classes built by package sched, the
// quantification becomes an optimization over the strategies of a finite
// MDP: the adversary picks a choice in every state, probabilistic
// transitions resolve the algorithm's coins, and time advances on choices
// marked as ticks. This package enumerates such MDPs from probabilistic
// automata and computes:
//
//   - exact (rational) minimum and maximum probabilities of reaching a
//     target within a tick horizon — the quantities compared against the
//     paper's p and t;
//   - qualitative reachability sets (probability 0 / probability 1 under
//     some or all adversaries), used by the liveness baseline;
//   - maximum expected ticks to a target — the quantity compared against
//     the paper's expected-time bound of 63;
//   - maximal end components and strongly connected components.
package mdp

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/pa"
	"repro/internal/prob"
)

// Tr is one probabilistic branch of a choice.
type Tr struct {
	// To is the index of the successor state.
	To int
	// P is the branch probability; the branches of a choice sum to one.
	P prob.Rat
}

// Choice is one nondeterministic alternative available to the adversary in
// a state.
type Choice struct {
	// Label names the choice for diagnostics and strategy extraction.
	Label string
	// Tick reports whether taking the choice advances time by one unit.
	Tick bool
	// Branches is the probability distribution over successors.
	Branches []Tr
}

// MDP is a finite Markov decision process. States are dense indices
// 0..NumStates-1; Choices[s] lists the alternatives in state s (possibly
// none, making s terminal).
//
// Choices is the construction API for hand-built and densely enumerated
// MDPs; every analysis actually runs on the compressed-sparse-row form
// returned by CSR, which is converted lazily from Choices on first use.
// MDPs produced by the on-the-fly explorer (Explore) carry only the CSR
// form and leave Choices nil; all analyses behave identically on either.
type MDP struct {
	NumStates int
	Choices   [][]Choice

	// Workers sets the parallelism of the sparse solvers: 0 means one
	// worker per available CPU. Any value produces bit-identical results;
	// the knob exists to bound scheduling overhead and for the
	// determinism tests.
	Workers int

	csrOnce sync.Once
	csr     *CSR
}

// CSR returns the sparse transition structure of the MDP, converting the
// Choices form on first call. The result is immutable and shared; callers
// must not modify Choices after the first analysis.
func (m *MDP) CSR() *CSR {
	m.csrOnce.Do(func() {
		if m.csr == nil {
			m.csr = csrFromChoices(m.NumStates, m.Choices)
		}
	})
	return m.csr
}

// workers resolves the Workers field to a concrete worker count.
func (m *MDP) workers() int { return resolveWorkers(m.Workers) }

// Validate checks structural invariants: branch targets in range and
// branch probabilities summing to one per choice.
func (m *MDP) Validate() error {
	if m.Choices == nil && m.csr != nil {
		if m.NumStates != m.csr.n {
			return fmt.Errorf("mdp: NumStates %d != CSR states %d", m.NumStates, m.csr.n)
		}
		return m.csr.validate()
	}
	if m.NumStates != len(m.Choices) {
		return fmt.Errorf("mdp: NumStates %d != len(Choices) %d", m.NumStates, len(m.Choices))
	}
	for s, choices := range m.Choices {
		for ci, c := range choices {
			total := prob.Zero()
			for _, tr := range c.Branches {
				if tr.To < 0 || tr.To >= m.NumStates {
					return fmt.Errorf("mdp: state %d choice %d targets out-of-range state %d", s, ci, tr.To)
				}
				if tr.P.Sign() <= 0 {
					return fmt.Errorf("mdp: state %d choice %d has non-positive branch probability %v", s, ci, tr.P)
				}
				total = total.Add(tr.P)
			}
			if !total.IsOne() {
				return fmt.Errorf("mdp: state %d choice %d branches sum to %v", s, ci, total)
			}
		}
	}
	return nil
}

// Terminal reports whether state s has no choices.
func (m *MDP) Terminal(s int) bool {
	if m.Choices == nil && m.csr != nil {
		return m.csr.terminal(s)
	}
	return len(m.Choices[s]) == 0
}

// Index maps the comparable states of a probabilistic automaton to dense
// MDP indices and back. The reverse map is built lazily on the first ID
// call: forward lookups (State, Where, Mask) are what the analyses use in
// bulk, and explorer-built indexes over millions of states should not pay
// for a map nobody queries.
type Index[S comparable] struct {
	states []S
	idOnce sync.Once
	id     map[S]int
}

// Len returns the number of indexed states.
func (ix *Index[S]) Len() int { return len(ix.states) }

// State returns the automaton state with index i.
func (ix *Index[S]) State(i int) S { return ix.states[i] }

// ID returns the index of state s, if present.
func (ix *Index[S]) ID(s S) (int, bool) {
	ix.idOnce.Do(func() {
		if ix.id == nil {
			ix.id = make(map[S]int, len(ix.states))
			for i, st := range ix.states {
				ix.id[st] = i
			}
		}
	})
	i, ok := ix.id[s]
	return i, ok
}

// Where returns the indices of all states satisfying pred, in index order.
func (ix *Index[S]) Where(pred func(S) bool) []int {
	var out []int
	for i, s := range ix.states {
		if pred(s) {
			out = append(out, i)
		}
	}
	return out
}

// Mask returns the boolean mask of states satisfying pred.
func (ix *Index[S]) Mask(pred func(S) bool) []bool {
	mask := make([]bool, len(ix.states))
	for i, s := range ix.states {
		mask[i] = pred(s)
	}
	return mask
}

// ErrBadDuration is returned when an automaton uses action durations other
// than zero and one; the tick-based MDP analyses require unit time steps.
var ErrBadDuration = errors.New("mdp: action duration must be 0 or 1")

// FromAutomaton enumerates the reachable states of m (with pa.Reachable
// semantics and the given limit) and converts its transition structure to
// an MDP. Actions of duration one become tick choices; duration zero,
// ordinary choices; any other duration is rejected.
func FromAutomaton[S comparable](m *pa.Automaton[S], limit int) (*MDP, *Index[S], error) {
	states, err := m.Reachable(limit)
	if err != nil {
		return nil, nil, err
	}
	ix := &Index[S]{states: states, id: make(map[S]int, len(states))}
	for i, s := range states {
		ix.id[s] = i
	}

	mm := &MDP{NumStates: len(states), Choices: make([][]Choice, len(states))}
	for i, s := range states {
		steps := m.Steps(s)
		if len(steps) == 0 {
			continue
		}
		choices := make([]Choice, 0, len(steps))
		for _, step := range steps {
			d := m.DurationOf(step.Action)
			var tick bool
			switch {
			case d.IsZero():
				tick = false
			case d.IsOne():
				tick = true
			default:
				return nil, nil, fmt.Errorf("%w: action %q has duration %v", ErrBadDuration, step.Action, d)
			}
			outs := step.Next.Outcomes()
			branches := make([]Tr, 0, len(outs))
			for _, o := range outs {
				j, ok := ix.id[o.Value]
				if !ok {
					return nil, nil, fmt.Errorf("mdp: successor of %v via %q not enumerated", s, step.Action)
				}
				branches = append(branches, Tr{To: j, P: o.Prob})
			}
			choices = append(choices, Choice{Label: step.Action, Tick: tick, Branches: branches})
		}
		mm.Choices[i] = choices
	}
	return mm, ix, nil
}
