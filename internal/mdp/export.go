package mdp

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// This file exports enumerated MDPs in the PRISM explicit-state format
// (.tra / .lab), connecting the reproduction to the ecosystem of
// probabilistic model checkers: any quantity this package computes can be
// independently re-checked by PRISM or Storm on the exported files.

// ExportTra writes the transition function in PRISM's explicit .tra
// format for MDPs:
//
//	numStates numChoices numTransitions
//	src choiceIdx dst prob [action]
//
// Probabilities are written as exact rational strings, which PRISM
// accepts (e.g. "1/2").
func (m *MDP) ExportTra(w io.Writer) error {
	c := m.CSR()
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", c.n, c.NumChoices(), c.NumBranches()); err != nil {
		return err
	}
	for s := int32(0); int(s) < c.n; s++ {
		cLo := c.choiceRow[s]
		for ci := cLo; ci < c.choiceRow[s+1]; ci++ {
			label := c.label(ci)
			for bi := c.branchRow[ci]; bi < c.branchRow[ci+1]; bi++ {
				if _, err := fmt.Fprintf(bw, "%d %d %d %s %s\n", s, ci-cLo, c.col[bi], c.pr[bi].String(), label); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ExportLab writes a PRISM .lab labelling file: the declared labels
// followed by, per state, the labels that hold there. Label 0 is always
// "init".
func (m *MDP) ExportLab(w io.Writer, init []bool, labels map[string][]bool) error {
	if init != nil && len(init) != m.NumStates {
		return fmt.Errorf("mdp: init mask has %d entries, want %d", len(init), m.NumStates)
	}
	names := make([]string, 0, len(labels))
	for name, mask := range labels {
		if len(mask) != m.NumStates {
			return fmt.Errorf("mdp: label %q mask has %d entries, want %d", name, len(mask), m.NumStates)
		}
		names = append(names, name)
	}
	sort.Strings(names) // deterministic output

	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "0=\"init\""); err != nil {
		return err
	}
	for i, name := range names {
		if _, err := fmt.Fprintf(bw, " %d=%q", i+1, name); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(bw); err != nil {
		return err
	}

	for s := 0; s < m.NumStates; s++ {
		var ids []int
		if init != nil && init[s] {
			ids = append(ids, 0)
		}
		for i, name := range names {
			if labels[name][s] {
				ids = append(ids, i+1)
			}
		}
		if len(ids) == 0 {
			continue
		}
		if _, err := fmt.Fprintf(bw, "%d:", s); err != nil {
			return err
		}
		for _, id := range ids {
			if _, err := fmt.Fprintf(bw, " %d", id); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}
