package mdp

import "sort"

// MEC is a maximal end component: a set of states together with, for each
// state, the choices under which the component is closed. Inside an end
// component an adversary can keep the run forever with probability one;
// end components are the MDP analogue of the recurrent classes the
// Zuck–Pnueli liveness argument reasons about.
type MEC struct {
	// States lists the member states in increasing order.
	States []int
	// Choices maps each member state to the indices of its choices whose
	// branches all stay inside the component (indices local to the state,
	// matching positions in MDP.Choices[s]). Every member has at least one
	// such choice unless the component is the trivial singleton of a
	// terminal state (which is not reported).
	Choices map[int][]int
}

// MECs computes the maximal end components of the MDP with the standard
// iterative SCC-refinement algorithm, running directly on the CSR form:
// candidate membership and surviving choices live in bitsets (one bit per
// state / per global choice index), and the per-candidate SCC split is an
// iterative Tarjan over the restricted rows, with scratch arrays reset
// only on the touched candidate — no per-candidate sub-MDP is built.
// Singleton components without an internal choice (including terminal
// states) are not reported.
func (m *MDP) MECs() []MEC {
	c := m.CSR()
	n := c.n

	// active marks the global choice indices still usable.
	active := newBitset(c.NumChoices())
	for ci := int32(0); int(ci) < c.NumChoices(); ci++ {
		active.set(ci)
	}

	// Scratch shared by every candidate; member and the Tarjan state are
	// cleaned up per candidate (O(candidate) work, not O(n)).
	member := newBitset(n)
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := newBitset(n)

	all := make([]int32, n)
	for i := range all {
		all[i] = int32(i)
	}
	work := [][]int32{all}

	var out []MEC
	for len(work) > 0 {
		cand := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range cand {
			member.set(s)
		}

		// Restrict choices to those staying inside the candidate set;
		// states left with no choice leave the candidate set. Iterate to a
		// fixpoint.
		for changed := true; changed; {
			changed = false
			for _, s := range cand {
				if !member.get(s) {
					continue
				}
				hasChoice := false
				for ci := c.choiceRow[s]; ci < c.choiceRow[s+1]; ci++ {
					if !active.get(ci) {
						continue
					}
					stays := true
					for bi := c.branchRow[ci]; bi < c.branchRow[ci+1]; bi++ {
						if !member.get(c.col[bi]) {
							stays = false
							break
						}
					}
					if stays {
						hasChoice = true
					} else {
						active.clear(ci)
						changed = true
					}
				}
				if !hasChoice {
					member.clear(s)
					changed = true
				}
			}
		}

		survivors := cand[:0]
		for _, s := range cand {
			if member.get(s) {
				survivors = append(survivors, s)
			}
		}
		if len(survivors) == 0 {
			continue
		}

		comps := c.sccRestricted(survivors, member, active, index, low, onStack)
		for _, s := range survivors {
			member.clear(s)
		}

		if len(comps) == 1 && len(comps[0]) == len(survivors) {
			// The candidate is a single SCC with internal choices
			// everywhere: a maximal end component. survivors is in
			// increasing state order — refinement filters in place and
			// every candidate list is kept sorted.
			mec := MEC{States: make([]int, 0, len(survivors)), Choices: make(map[int][]int, len(survivors))}
			for _, s := range survivors {
				mec.States = append(mec.States, int(s))
				cLo := c.choiceRow[s]
				for ci := cLo; ci < c.choiceRow[s+1]; ci++ {
					if active.get(ci) {
						mec.Choices[int(s)] = append(mec.Choices[int(s)], int(ci-cLo))
					}
				}
			}
			out = append(out, mec)
			continue
		}
		work = append(work, comps...)
	}
	return out
}

// sccRestricted computes the strongly connected components of the
// member-induced subgraph using only active choices, dropping singleton
// components without a self-loop. index/low/onStack are caller scratch;
// index must be reset to -1 for every state in cand (done here on entry),
// and onStack is left fully cleared on return. Component state lists are
// returned in increasing state order.
func (c *CSR) sccRestricted(cand []int32, member, active bitset, index, low []int32, onStack bitset) [][]int32 {
	for _, s := range cand {
		index[s] = -1
	}

	var (
		counter int32
		tarjan  []int32
		comps   [][]int32
	)
	// A frame walks the state's active choices (ci) and the current
	// choice's branches (bi).
	type frame struct {
		v      int32
		ci, bi int32
	}
	selfLoop := func(s int32) bool {
		for ci := c.choiceRow[s]; ci < c.choiceRow[s+1]; ci++ {
			if !active.get(ci) {
				continue
			}
			for bi := c.branchRow[ci]; bi < c.branchRow[ci+1]; bi++ {
				if c.col[bi] == s {
					return true
				}
			}
		}
		return false
	}
	// nextEdge advances the frame to its next restricted edge target, or
	// returns -1 when the state's edges are exhausted.
	nextEdge := func(f *frame) int32 {
		for f.ci < c.choiceRow[f.v+1] {
			if !active.get(f.ci) {
				f.ci++
				f.bi = -1
				continue
			}
			if f.bi < 0 {
				f.bi = c.branchRow[f.ci]
			}
			if f.bi < c.branchRow[f.ci+1] {
				w := c.col[f.bi]
				f.bi++
				if member.get(w) {
					return w
				}
				continue
			}
			f.ci++
			f.bi = -1
		}
		return -1
	}

	for _, root := range cand {
		if index[root] != -1 {
			continue
		}
		stack := []frame{{v: root, ci: c.choiceRow[root], bi: -1}}
		index[root] = counter
		low[root] = counter
		counter++
		tarjan = append(tarjan, root)
		onStack.set(root)

		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if w := nextEdge(f); w >= 0 {
				if index[w] == -1 {
					index[w] = counter
					low[w] = counter
					counter++
					tarjan = append(tarjan, w)
					onStack.set(w)
					stack = append(stack, frame{v: w, ci: c.choiceRow[w], bi: -1})
				} else if onStack.get(w) && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				parent := stack[len(stack)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int32
				for {
					w := tarjan[len(tarjan)-1]
					tarjan = tarjan[:len(tarjan)-1]
					onStack.clear(w)
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				if len(comp) == 1 && !selfLoop(comp[0]) {
					continue
				}
				// Tarjan pops components in reverse discovery order; sort
				// members ascending so refinement keeps candidate lists
				// ordered (MEC.States relies on it).
				sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
				comps = append(comps, comp)
			}
		}
	}
	return comps
}
