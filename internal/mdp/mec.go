package mdp

import (
	"sort"

	"repro/internal/prob"
)

// MEC is a maximal end component: a set of states together with, for each
// state, the choices under which the component is closed. Inside an end
// component an adversary can keep the run forever with probability one;
// end components are the MDP analogue of the recurrent classes the
// Zuck–Pnueli liveness argument reasons about.
type MEC struct {
	// States lists the member states in increasing order.
	States []int
	// Choices maps each member state to the indices of its choices whose
	// branches all stay inside the component. Every member has at least
	// one such choice unless the component is the trivial singleton of a
	// terminal state (which is not reported).
	Choices map[int][]int
}

// MECs computes the maximal end components of the MDP with the standard
// iterative SCC-refinement algorithm. Singleton components without an
// internal choice (including terminal states) are not reported.
func (m *MDP) MECs() []MEC {
	// active[s][c] marks choice c of state s as still usable.
	active := make([][]bool, m.NumStates)
	inPlay := make([]bool, m.NumStates)
	for s := 0; s < m.NumStates; s++ {
		active[s] = make([]bool, len(m.Choices[s]))
		for c := range active[s] {
			active[s][c] = true
		}
		inPlay[s] = true
	}

	var out []MEC
	// Candidate state sets to refine; start with everything.
	all := make([]int, m.NumStates)
	for i := range all {
		all[i] = i
	}
	work := [][]int{all}

	for len(work) > 0 {
		cand := work[len(work)-1]
		work = work[:len(work)-1]

		member := make(map[int]bool, len(cand))
		for _, s := range cand {
			if inPlay[s] {
				member[s] = true
			}
		}
		if len(member) == 0 {
			continue
		}

		// Restrict choices to those staying inside the candidate set;
		// states left with no choice leave the candidate set. Iterate to
		// a fixpoint.
		for changed := true; changed; {
			changed = false
			for s := range member {
				hasChoice := false
				for ci, c := range m.Choices[s] {
					if !active[s][ci] {
						continue
					}
					stays := true
					for _, tr := range c.Branches {
						if !member[tr.To] {
							stays = false
							break
						}
					}
					if stays {
						hasChoice = true
					} else {
						active[s][ci] = false
						changed = true
					}
				}
				if !hasChoice {
					delete(member, s)
					changed = true
				}
			}
		}
		if len(member) == 0 {
			continue
		}

		// SCC decomposition of the restricted subgraph.
		comps := sccOfSubgraph(m, member, active)
		if len(comps) == 1 && len(comps[0]) == len(member) {
			// The candidate is a single SCC with internal choices
			// everywhere: a maximal end component.
			mec := MEC{Choices: make(map[int][]int, len(member))}
			for s := range member {
				mec.States = append(mec.States, s)
				for ci := range m.Choices[s] {
					if active[s][ci] {
						mec.Choices[s] = append(mec.Choices[s], ci)
					}
				}
			}
			sort.Ints(mec.States)
			out = append(out, mec)
			continue
		}
		for _, comp := range comps {
			work = append(work, comp)
		}
	}
	return out
}

// sccOfSubgraph computes SCCs of the member-induced subgraph using only
// active choices, dropping singleton components without a self-loop.
func sccOfSubgraph(m *MDP, member map[int]bool, active [][]bool) [][]int {
	// Map to dense local indices.
	locals := make([]int, 0, len(member))
	local := make(map[int]int, len(member))
	for s := range member {
		local[s] = len(locals)
		locals = append(locals, s)
	}
	adj := make([][]int32, len(locals))
	selfLoop := make([]bool, len(locals))
	for s := range member {
		ls := local[s]
		for ci, c := range m.Choices[s] {
			if !active[s][ci] {
				continue
			}
			for _, tr := range c.Branches {
				if lt, ok := local[tr.To]; ok {
					adj[ls] = append(adj[ls], int32(lt))
					if lt == ls {
						selfLoop[ls] = true
					}
				}
			}
		}
	}

	sub := &MDP{NumStates: len(locals), Choices: make([][]Choice, len(locals))}
	for ls, targets := range adj {
		for _, lt := range targets {
			sub.Choices[ls] = append(sub.Choices[ls], Choice{
				Branches: []Tr{{To: int(lt), P: prob.One()}},
			})
		}
	}
	var out [][]int
	for _, comp := range sub.SCCs() {
		if len(comp) == 1 && !selfLoop[comp[0]] {
			continue
		}
		global := make([]int, len(comp))
		for i, lc := range comp {
			global[i] = locals[lc]
		}
		out = append(out, global)
	}
	return out
}
