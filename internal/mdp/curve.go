package mdp

import (
	"fmt"

	"repro/internal/prob"
)

// This file extends the tick-bounded analysis with per-horizon curves,
// floating-point value iteration (for models too large for exact
// rationals), and worst-case witness extraction — the machinery behind
// the "non-trivial lower bound on the time for progress" direction the
// paper lists as future work in Section 7: the curve of worst-case
// probabilities as a function of the horizon locates the exact threshold
// where a (t, p) claim starts to hold.

// ReachWithinTicksLayers is ReachWithinTicks keeping every horizon layer:
// the result has horizon+1 rows, row h giving the optimal probability of
// reaching the target within h ticks from each state.
func (m *MDP) ReachWithinTicksLayers(target []bool, horizon int, goal Goal) ([][]prob.Rat, error) {
	if len(target) != m.NumStates {
		return nil, fmt.Errorf("mdp: target mask has %d entries, want %d", len(target), m.NumStates)
	}
	if horizon < 0 {
		return nil, fmt.Errorf("mdp: negative horizon %d", horizon)
	}
	c := m.CSR()
	order, levels, err := c.nonTickLevels()
	if err != nil {
		return nil, err
	}
	workers := m.workers()

	layers := make([][]prob.Rat, 0, horizon+1)
	prev := make([]prob.Rat, c.n)
	for h := 0; h <= horizon; h++ {
		cur := make([]prob.Rat, c.n)
		ticksLeft := h > 0
		lo := int32(0)
		for _, hi := range levels {
			span := order[lo:hi]
			parallelFor(workers, len(span), func(w, a, b int) {
				for k := a; k < b; k++ {
					s := span[k]
					cur[s] = c.optOneState(s, target, goal, cur, prev, ticksLeft)
				}
			})
			lo = hi
		}
		layers = append(layers, cur)
		prev = cur
	}
	return layers, nil
}

// ReachWithinTicksFloat is the float64 counterpart of ReachWithinTicks,
// for products too large for exact rationals. Same semantics, same
// Zeno-cycle requirement, same level-parallel determinism; the CSR's
// float probability array is used directly, with no per-call conversion.
func (m *MDP) ReachWithinTicksFloat(target []bool, horizon int, goal Goal) ([]float64, error) {
	if len(target) != m.NumStates {
		return nil, fmt.Errorf("mdp: target mask has %d entries, want %d", len(target), m.NumStates)
	}
	if horizon < 0 {
		return nil, fmt.Errorf("mdp: negative horizon %d", horizon)
	}
	c := m.CSR()
	order, levels, err := c.nonTickLevels()
	if err != nil {
		return nil, err
	}
	workers := m.workers()

	prev := make([]float64, c.n)
	cur := make([]float64, c.n)
	for h := 0; h <= horizon; h++ {
		ticksLeft := h > 0
		lo := int32(0)
		for _, hi := range levels {
			span := order[lo:hi]
			parallelFor(workers, len(span), func(w, a, b int) {
				for k := a; k < b; k++ {
					s := span[k]
					if target[s] {
						cur[s] = 1
						continue
					}
					cLo, cHi := c.choiceRow[s], c.choiceRow[s+1]
					if cLo == cHi {
						cur[s] = 0
						continue
					}
					var best float64
					for ci := cLo; ci < cHi; ci++ {
						var v float64
						tick := c.tick.get(ci)
						if !tick || ticksLeft {
							layer := cur
							if tick {
								layer = prev
							}
							for bi := c.branchRow[ci]; bi < c.branchRow[ci+1]; bi++ {
								v += c.pf[bi] * layer[c.col[bi]]
							}
						}
						if ci == cLo || (goal == MinProb && v < best) || (goal == MaxProb && v > best) {
							best = v
						}
					}
					cur[s] = best
				}
			})
			lo = hi
		}
		prev, cur = cur, prev
	}
	return prev, nil
}

// WitnessStep is one step of an extracted worst-case schedule.
type WitnessStep struct {
	// State is the state index before the step; Choice the index of the
	// adversary's optimal choice (local to the state); Action its label.
	State  int
	Choice int
	Action string
	// Next is the successor followed (the most damning probabilistic
	// branch); BranchProb its probability.
	Next       int
	BranchProb prob.Rat
}

// WorstWitness extracts a most-damning execution for the MinProb analysis:
// starting from `from` with the given tick budget, it follows, at every
// state, the adversary choice minimizing the reach probability and then
// the probabilistic branch with the smallest continuation value. The walk
// stops at the target, at budget exhaustion with no zero-duration move
// left, or after maxLen steps.
func (m *MDP) WorstWitness(target []bool, horizon int, from int, maxLen int) ([]WitnessStep, error) {
	layers, err := m.ReachWithinTicksLayers(target, horizon, MinProb)
	if err != nil {
		return nil, err
	}
	if from < 0 || from >= m.NumStates {
		return nil, fmt.Errorf("mdp: witness start %d out of range", from)
	}
	if maxLen <= 0 {
		maxLen = 4 * (horizon + 1)
	}
	c := m.CSR()

	var steps []WitnessStep
	s, h := int32(from), horizon
	for len(steps) < maxLen && !target[s] {
		cLo, cHi := c.choiceRow[s], c.choiceRow[s+1]
		if cLo == cHi {
			break
		}
		// Value of a choice under budget h.
		valueOf := func(ci int32) prob.Rat {
			tick := c.tick.get(ci)
			if tick && h == 0 {
				return prob.Zero()
			}
			layer := layers[h]
			if tick {
				layer = layers[h-1]
			}
			v := prob.Zero()
			for bi := c.branchRow[ci]; bi < c.branchRow[ci+1]; bi++ {
				v = v.Add(c.pr[bi].Mul(layer[c.col[bi]]))
			}
			return v
		}
		bestCI := cLo
		bestV := valueOf(cLo)
		for ci := cLo + 1; ci < cHi; ci++ {
			if v := valueOf(ci); v.Less(bestV) {
				bestV, bestCI = v, ci
			}
		}
		tick := c.tick.get(bestCI)
		if tick && h == 0 {
			// The optimal adversary move is to let time expire.
			break
		}
		layer := layers[h]
		if tick {
			layer = layers[h-1]
		}
		// Most damning branch: the successor with the smallest value.
		bLo, bHi := c.branchRow[bestCI], c.branchRow[bestCI+1]
		best := bLo
		for bi := bLo + 1; bi < bHi; bi++ {
			if layer[c.col[bi]].Less(layer[c.col[best]]) {
				best = bi
			}
		}
		steps = append(steps, WitnessStep{
			State:      int(s),
			Choice:     int(bestCI - cLo),
			Action:     c.label(bestCI),
			Next:       int(c.col[best]),
			BranchProb: c.pr[best],
		})
		s = c.col[best]
		if tick {
			h--
		}
	}
	return steps, nil
}
