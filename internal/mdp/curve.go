package mdp

import (
	"fmt"

	"repro/internal/prob"
)

// This file extends the tick-bounded analysis with per-horizon curves,
// floating-point value iteration (for models too large for exact
// rationals), and worst-case witness extraction — the machinery behind
// the "non-trivial lower bound on the time for progress" direction the
// paper lists as future work in Section 7: the curve of worst-case
// probabilities as a function of the horizon locates the exact threshold
// where a (t, p) claim starts to hold.

// ReachWithinTicksLayers is ReachWithinTicks keeping every horizon layer:
// the result has horizon+1 rows, row h giving the optimal probability of
// reaching the target within h ticks from each state.
func (m *MDP) ReachWithinTicksLayers(target []bool, horizon int, goal Goal) ([][]prob.Rat, error) {
	if len(target) != m.NumStates {
		return nil, fmt.Errorf("mdp: target mask has %d entries, want %d", len(target), m.NumStates)
	}
	if horizon < 0 {
		return nil, fmt.Errorf("mdp: negative horizon %d", horizon)
	}
	order, err := m.nonTickTopo()
	if err != nil {
		return nil, err
	}
	layers := make([][]prob.Rat, 0, horizon+1)
	prev := make([]prob.Rat, m.NumStates)
	for h := 0; h <= horizon; h++ {
		cur := make([]prob.Rat, m.NumStates)
		for _, s := range order {
			cur[s] = m.optOneState(s, target, goal, cur, prev, h > 0)
		}
		layers = append(layers, cur)
		prev = cur
	}
	return layers, nil
}

// ReachWithinTicksFloat is the float64 counterpart of ReachWithinTicks,
// for products too large for exact rationals. Same semantics, same
// Zeno-cycle requirement; probabilities are converted once per branch.
func (m *MDP) ReachWithinTicksFloat(target []bool, horizon int, goal Goal) ([]float64, error) {
	if len(target) != m.NumStates {
		return nil, fmt.Errorf("mdp: target mask has %d entries, want %d", len(target), m.NumStates)
	}
	if horizon < 0 {
		return nil, fmt.Errorf("mdp: negative horizon %d", horizon)
	}
	order, err := m.nonTickTopo()
	if err != nil {
		return nil, err
	}

	// Cache branch probabilities as floats once.
	type fTr struct {
		to int
		p  float64
	}
	type fChoice struct {
		tick     bool
		branches []fTr
	}
	choices := make([][]fChoice, m.NumStates)
	for s := range choices {
		cs := make([]fChoice, len(m.Choices[s]))
		for ci, c := range m.Choices[s] {
			fc := fChoice{tick: c.Tick, branches: make([]fTr, len(c.Branches))}
			for bi, tr := range c.Branches {
				fc.branches[bi] = fTr{to: tr.To, p: tr.P.Float64()}
			}
			cs[ci] = fc
		}
		choices[s] = cs
	}

	prev := make([]float64, m.NumStates)
	cur := make([]float64, m.NumStates)
	for h := 0; h <= horizon; h++ {
		ticksLeft := h > 0
		for _, s := range order {
			if target[s] {
				cur[s] = 1
				continue
			}
			cs := choices[s]
			if len(cs) == 0 {
				cur[s] = 0
				continue
			}
			var best float64
			for ci, c := range cs {
				var v float64
				if c.tick && !ticksLeft {
					v = 0
				} else {
					layer := cur
					if c.tick {
						layer = prev
					}
					for _, tr := range c.branches {
						v += tr.p * layer[tr.to]
					}
				}
				if ci == 0 || (goal == MinProb && v < best) || (goal == MaxProb && v > best) {
					best = v
				}
			}
			cur[s] = best
		}
		prev, cur = cur, prev
	}
	return prev, nil
}

// WitnessStep is one step of an extracted worst-case schedule.
type WitnessStep struct {
	// State is the state index before the step; Choice the index of the
	// adversary's optimal choice; Action its label.
	State  int
	Choice int
	Action string
	// Next is the successor followed (the most damning probabilistic
	// branch); BranchProb its probability.
	Next       int
	BranchProb prob.Rat
}

// WorstWitness extracts a most-damning execution for the MinProb analysis:
// starting from `from` with the given tick budget, it follows, at every
// state, the adversary choice minimizing the reach probability and then
// the probabilistic branch with the smallest continuation value. The walk
// stops at the target, at budget exhaustion with no zero-duration move
// left, or after maxLen steps.
func (m *MDP) WorstWitness(target []bool, horizon int, from int, maxLen int) ([]WitnessStep, error) {
	layers, err := m.ReachWithinTicksLayers(target, horizon, MinProb)
	if err != nil {
		return nil, err
	}
	if from < 0 || from >= m.NumStates {
		return nil, fmt.Errorf("mdp: witness start %d out of range", from)
	}
	if maxLen <= 0 {
		maxLen = 4 * (horizon + 1)
	}

	var steps []WitnessStep
	s, h := from, horizon
	for len(steps) < maxLen && !target[s] {
		choicesHere := m.Choices[s]
		if len(choicesHere) == 0 {
			break
		}
		// Value of a choice under budget h.
		valueOf := func(c Choice) prob.Rat {
			if c.Tick && h == 0 {
				return prob.Zero()
			}
			layer := layers[h]
			if c.Tick {
				layer = layers[h-1]
			}
			v := prob.Zero()
			for _, tr := range c.Branches {
				v = v.Add(tr.P.Mul(layer[tr.To]))
			}
			return v
		}
		bestCI := 0
		bestV := valueOf(choicesHere[0])
		for ci := 1; ci < len(choicesHere); ci++ {
			if v := valueOf(choicesHere[ci]); v.Less(bestV) {
				bestV, bestCI = v, ci
			}
		}
		choice := choicesHere[bestCI]
		if choice.Tick && h == 0 {
			// The optimal adversary move is to let time expire.
			break
		}
		layer := layers[h]
		if choice.Tick {
			layer = layers[h-1]
		}
		// Most damning branch: the successor with the smallest value.
		best := choice.Branches[0]
		for _, tr := range choice.Branches[1:] {
			if layer[tr.To].Less(layer[best.To]) {
				best = tr
			}
		}
		steps = append(steps, WitnessStep{
			State:      s,
			Choice:     bestCI,
			Action:     choice.Label,
			Next:       best.To,
			BranchProb: best.P,
		})
		s = best.To
		if choice.Tick {
			h--
		}
	}
	return steps, nil
}
