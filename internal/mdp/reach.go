package mdp

import (
	"errors"
	"fmt"

	"repro/internal/prob"
)

// Goal selects the optimization direction: the adversary of the paper
// minimizes the probability of good events and maximizes expected time,
// so worst-case checks of U --t,p--> U' use MinProb.
type Goal int

// Optimization directions.
const (
	// MinProb computes inf over adversaries (worst case for progress
	// properties).
	MinProb Goal = iota + 1
	// MaxProb computes sup over adversaries.
	MaxProb
)

func (g Goal) better(a, b prob.Rat) bool {
	if g == MinProb {
		return a.Less(b)
	}
	return b.Less(a)
}

// ErrZenoCycle is returned when the zero-duration (non-tick) transition
// graph has a cycle. Tick-horizon analyses require the digitized model to
// make every within-window move consume a bounded resource; the sched
// package guarantees this by construction, and the error flags models
// that admit Zeno behaviour (time stopped forever), for which the
// worst-case quantities of the paper are not well defined.
var ErrZenoCycle = errors.New("mdp: cycle of zero-duration transitions (Zeno behaviour)")

// nonTickTopo returns the states in an order such that every non-tick
// successor of a state precedes it (reverse topological order of the
// non-tick edge graph). It returns ErrZenoCycle if that graph is cyclic.
func (m *MDP) nonTickTopo() ([]int, error) {
	const (
		unvisited = 0
		onStack   = 1
		done      = 2
	)
	color := make([]int8, m.NumStates)
	order := make([]int, 0, m.NumStates)

	// Iterative DFS with an explicit stack; frame.next tracks progress
	// through the successor list.
	type frame struct {
		state int
		next  int
	}
	succs := func(s int) []int {
		var out []int
		for _, c := range m.Choices[s] {
			if c.Tick {
				continue
			}
			for _, tr := range c.Branches {
				out = append(out, tr.To)
			}
		}
		return out
	}

	for root := 0; root < m.NumStates; root++ {
		if color[root] != unvisited {
			continue
		}
		stack := []frame{{state: root}}
		color[root] = onStack
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			ss := succs(f.state)
			if f.next < len(ss) {
				child := ss[f.next]
				f.next++
				switch color[child] {
				case onStack:
					return nil, fmt.Errorf("%w: involving state %d", ErrZenoCycle, child)
				case unvisited:
					color[child] = onStack
					stack = append(stack, frame{state: child})
				}
				continue
			}
			color[f.state] = done
			order = append(order, f.state)
			stack = stack[:len(stack)-1]
		}
	}
	return order, nil
}

// ReachWithinTicks computes, for every state, the optimal (per goal)
// probability that a target state is visited while at most horizon ticks
// have elapsed. Zero-duration moves after the last tick still count as
// "within the horizon", matching the paper's "within time t" (time is
// exactly t after t unit delays).
//
// The result is exact. The zero-duration transition graph must be acyclic
// (see ErrZenoCycle).
func (m *MDP) ReachWithinTicks(target []bool, horizon int, goal Goal) ([]prob.Rat, error) {
	if len(target) != m.NumStates {
		return nil, fmt.Errorf("mdp: target mask has %d entries, want %d", len(target), m.NumStates)
	}
	if horizon < 0 {
		return nil, fmt.Errorf("mdp: negative horizon %d", horizon)
	}
	order, err := m.nonTickTopo()
	if err != nil {
		return nil, err
	}

	prev := make([]prob.Rat, m.NumStates) // V_{h-1}
	cur := make([]prob.Rat, m.NumStates)  // V_h
	for h := 0; h <= horizon; h++ {
		for _, s := range order {
			cur[s] = m.optOneState(s, target, goal, cur, prev, h > 0)
		}
		prev, cur = cur, prev
	}
	// After the swap, prev holds V_horizon.
	return prev, nil
}

// optOneState evaluates the Bellman operator at state s. cur must already
// hold valid values for every non-tick successor of s (guaranteed by
// reverse topological order); prev holds the previous tick layer.
// ticksLeft reports whether a tick is still within the horizon.
func (m *MDP) optOneState(s int, target []bool, goal Goal, cur, prev []prob.Rat, ticksLeft bool) prob.Rat {
	if target[s] {
		return prob.One()
	}
	choices := m.Choices[s]
	if len(choices) == 0 {
		return prob.Zero()
	}
	var best prob.Rat
	for ci, c := range choices {
		var v prob.Rat
		if c.Tick && !ticksLeft {
			// Taking the tick exceeds the deadline: this alternative
			// contributes probability zero of meeting the bound.
			v = prob.Zero()
		} else {
			layer := cur
			if c.Tick {
				layer = prev
			}
			for _, tr := range c.Branches {
				v = v.Add(tr.P.Mul(layer[tr.To]))
			}
		}
		if ci == 0 || goal.better(v, best) {
			best = v
		}
	}
	return best
}

// ReachWithinSteps computes, for every state, the optimal probability that
// a target state is visited within at most `steps` transitions (of any
// duration). Unlike ReachWithinTicks it works on arbitrary MDPs, cycles
// included, because the horizon decreases on every move.
func (m *MDP) ReachWithinSteps(target []bool, steps int, goal Goal) ([]prob.Rat, error) {
	if len(target) != m.NumStates {
		return nil, fmt.Errorf("mdp: target mask has %d entries, want %d", len(target), m.NumStates)
	}
	if steps < 0 {
		return nil, fmt.Errorf("mdp: negative step bound %d", steps)
	}
	prev := make([]prob.Rat, m.NumStates)
	for s := range prev {
		if target[s] {
			prev[s] = prob.One()
		}
	}
	for k := 0; k < steps; k++ {
		cur := make([]prob.Rat, m.NumStates)
		for s := 0; s < m.NumStates; s++ {
			if target[s] {
				cur[s] = prob.One()
				continue
			}
			choices := m.Choices[s]
			if len(choices) == 0 {
				continue
			}
			var best prob.Rat
			for ci, c := range choices {
				var v prob.Rat
				for _, tr := range c.Branches {
					v = v.Add(tr.P.Mul(prev[tr.To]))
				}
				if ci == 0 || goal.better(v, best) {
					best = v
				}
			}
			cur[s] = best
		}
		prev = cur
	}
	return prev, nil
}

// OptAt aggregates a value vector over a set of states: the worst (for
// MinProb, the minimum) value among the states in the mask. It returns
// ok = false when the mask is empty.
func OptAt(values []prob.Rat, mask []bool, goal Goal) (prob.Rat, bool) {
	var best prob.Rat
	found := false
	for s, in := range mask {
		if !in {
			continue
		}
		if !found || goal.better(values[s], best) {
			best = values[s]
			found = true
		}
	}
	return best, found
}
