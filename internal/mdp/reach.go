package mdp

import (
	"errors"
	"fmt"

	"repro/internal/prob"
)

// Goal selects the optimization direction: the adversary of the paper
// minimizes the probability of good events and maximizes expected time,
// so worst-case checks of U --t,p--> U' use MinProb.
type Goal int

// Optimization directions.
const (
	// MinProb computes inf over adversaries (worst case for progress
	// properties).
	MinProb Goal = iota + 1
	// MaxProb computes sup over adversaries.
	MaxProb
)

func (g Goal) better(a, b prob.Rat) bool {
	if g == MinProb {
		return a.Less(b)
	}
	return b.Less(a)
}

// ErrZenoCycle is returned when the zero-duration (non-tick) transition
// graph has a cycle. Tick-horizon analyses require the digitized model to
// make every within-window move consume a bounded resource; the sched
// package guarantees this by construction, and the error flags models
// that admit Zeno behaviour (time stopped forever), for which the
// worst-case quantities of the paper are not well defined.
var ErrZenoCycle = errors.New("mdp: cycle of zero-duration transitions (Zeno behaviour)")

// ReachWithinTicks computes, for every state, the optimal (per goal)
// probability that a target state is visited while at most horizon ticks
// have elapsed. Zero-duration moves after the last tick still count as
// "within the horizon", matching the paper's "within time t" (time is
// exactly t after t unit delays).
//
// The result is exact. The zero-duration transition graph must be acyclic
// (see ErrZenoCycle). Sweeps run level-parallel over the non-tick DAG
// (MDP.Workers); every state's value is a pure function of deeper levels
// and the previous tick layer, so the rationals are identical for any
// worker count.
func (m *MDP) ReachWithinTicks(target []bool, horizon int, goal Goal) ([]prob.Rat, error) {
	if len(target) != m.NumStates {
		return nil, fmt.Errorf("mdp: target mask has %d entries, want %d", len(target), m.NumStates)
	}
	if horizon < 0 {
		return nil, fmt.Errorf("mdp: negative horizon %d", horizon)
	}
	c := m.CSR()
	order, levels, err := c.nonTickLevels()
	if err != nil {
		return nil, err
	}
	workers := m.workers()

	prev := make([]prob.Rat, c.n) // V_{h-1}
	cur := make([]prob.Rat, c.n)  // V_h
	for h := 0; h <= horizon; h++ {
		ticksLeft := h > 0
		lo := int32(0)
		for _, hi := range levels {
			span := order[lo:hi]
			parallelFor(workers, len(span), func(w, a, b int) {
				for k := a; k < b; k++ {
					s := span[k]
					cur[s] = c.optOneState(s, target, goal, cur, prev, ticksLeft)
				}
			})
			lo = hi
		}
		prev, cur = cur, prev
	}
	// After the swap, prev holds V_horizon.
	return prev, nil
}

// optOneState evaluates the Bellman operator at state s. cur must already
// hold valid values for every non-tick successor of s (guaranteed by the
// level schedule: non-tick successors live on strictly lower levels,
// completed behind earlier barriers); prev holds the previous tick layer.
// ticksLeft reports whether a tick is still within the horizon.
func (c *CSR) optOneState(s int32, target []bool, goal Goal, cur, prev []prob.Rat, ticksLeft bool) prob.Rat {
	if target[s] {
		return prob.One()
	}
	cLo, cHi := c.choiceRow[s], c.choiceRow[s+1]
	if cLo == cHi {
		return prob.Zero()
	}
	var best prob.Rat
	for ci := cLo; ci < cHi; ci++ {
		var v prob.Rat
		tick := c.tick.get(ci)
		if !tick || ticksLeft {
			layer := cur
			if tick {
				layer = prev
			}
			for bi := c.branchRow[ci]; bi < c.branchRow[ci+1]; bi++ {
				v = v.Add(c.pr[bi].Mul(layer[c.col[bi]]))
			}
		}
		// A tick at an exhausted horizon contributes probability zero of
		// meeting the bound (v stays the zero value).
		if ci == cLo || goal.better(v, best) {
			best = v
		}
	}
	return best
}

// ReachWithinSteps computes, for every state, the optimal probability that
// a target state is visited within at most `steps` transitions (of any
// duration). Unlike ReachWithinTicks it works on arbitrary MDPs, cycles
// included, because the horizon decreases on every move: each layer is a
// pure (Jacobi) function of the previous one, swept in parallel.
func (m *MDP) ReachWithinSteps(target []bool, steps int, goal Goal) ([]prob.Rat, error) {
	if len(target) != m.NumStates {
		return nil, fmt.Errorf("mdp: target mask has %d entries, want %d", len(target), m.NumStates)
	}
	if steps < 0 {
		return nil, fmt.Errorf("mdp: negative step bound %d", steps)
	}
	c := m.CSR()
	workers := m.workers()
	prev := make([]prob.Rat, c.n)
	for s := range prev {
		if target[s] {
			prev[s] = prob.One()
		}
	}
	for k := 0; k < steps; k++ {
		cur := make([]prob.Rat, c.n)
		parallelFor(workers, c.n, func(w, a, b int) {
			for si := a; si < b; si++ {
				s := int32(si)
				if target[s] {
					cur[s] = prob.One()
					continue
				}
				cLo, cHi := c.choiceRow[s], c.choiceRow[s+1]
				if cLo == cHi {
					continue
				}
				var best prob.Rat
				for ci := cLo; ci < cHi; ci++ {
					var v prob.Rat
					for bi := c.branchRow[ci]; bi < c.branchRow[ci+1]; bi++ {
						v = v.Add(c.pr[bi].Mul(prev[c.col[bi]]))
					}
					if ci == cLo || goal.better(v, best) {
						best = v
					}
				}
				cur[s] = best
			}
		})
		prev = cur
	}
	return prev, nil
}

// OptAt aggregates a value vector over a set of states: the worst (for
// MinProb, the minimum) value among the states in the mask. It returns
// ok = false when the mask is empty.
func OptAt(values []prob.Rat, mask []bool, goal Goal) (prob.Rat, bool) {
	var best prob.Rat
	found := false
	for s, in := range mask {
		if !in {
			continue
		}
		if !found || goal.better(values[s], best) {
			best = values[s]
			found = true
		}
	}
	return best, found
}
