package mdp

import (
	"strings"
	"testing"
)

func exportFixture() *MDP {
	return &MDP{NumStates: 3, Choices: [][]Choice{
		{tickCoin("flip", 1, 2), moveTo("skip", 2)},
		nil,
		{tickTo("retry", 0)},
	}}
}

func TestExportTra(t *testing.T) {
	var buf strings.Builder
	if err := exportFixture().ExportTra(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "3 3 4" {
		t.Errorf("header = %q, want \"3 3 4\"", lines[0])
	}
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
	for _, want := range []string{
		"0 0 1 1/2 flip",
		"0 0 2 1/2 flip",
		"0 1 2 1 skip",
		"2 0 0 1 retry",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing transition line %q:\n%s", want, out)
		}
	}
}

func TestExportLab(t *testing.T) {
	m := exportFixture()
	var buf strings.Builder
	err := m.ExportLab(&buf, mask(3, 0), map[string][]bool{
		"target": mask(3, 1),
		"avoid":  mask(3, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != `0="init" 1="avoid" 2="target"` {
		t.Errorf("declaration line = %q", lines[0])
	}
	for _, want := range []string{"0: 0", "1: 2", "2: 1"} {
		found := false
		for _, line := range lines[1:] {
			if line == want {
				found = true
			}
		}
		if !found {
			t.Errorf("missing label line %q:\n%s", want, out)
		}
	}
}

func TestExportLabShapeErrors(t *testing.T) {
	m := exportFixture()
	var buf strings.Builder
	if err := m.ExportLab(&buf, mask(2, 0), nil); err == nil {
		t.Error("short init mask accepted")
	}
	if err := m.ExportLab(&buf, nil, map[string][]bool{"x": mask(2, 0)}); err == nil {
		t.Error("short label mask accepted")
	}
	if err := m.ExportLab(&buf, nil, nil); err != nil {
		t.Errorf("nil masks rejected: %v", err)
	}
}
