package mdp

// On-the-fly state-space generation: Explore walks a probabilistic
// automaton frontier by frontier and emits the CSR transition structure
// directly, never materializing the per-state Choices slices the dense
// FromAutomaton path builds. Callers with large models pair it with a
// fixed-width packed state encoding (ExplorePacked) so the interning map
// keys are a few machine words — the same trick the Monte Carlo engine's
// compiled cache plays — and pass a sim.Compile'd model into
// sched.Product so every Steps call during exploration hits the
// simulator's 64-way-sharded transition cache instead of re-deriving
// moves the trial engine already knows.
//
// Determinism. Exploration is parallel but the state numbering is not a
// function of scheduling: each BFS level's successor sets are computed by
// workers on contiguous frontier chunks, then interned by a single
// sequential merge that scans the per-state results in frontier order.
// The numbering is therefore exactly the breadth-first discovery order of
// pa.Automaton.Reachable — an explored MDP and a densely enumerated one
// are structurally identical arrays, which is what the dense-vs-CSR
// equality tests pin.

import (
	"errors"
	"fmt"
	"unsafe"

	"repro/internal/pa"
)

// ErrMemBudget is the sentinel wrapped by BudgetError: exploration was
// abandoned because the transition structure outgrew the caller's byte
// budget.
var ErrMemBudget = errors.New("mdp: exploration exceeded the memory budget")

// BudgetError reports a blown exploration budget with the sizes reached.
type BudgetError struct {
	// States and Bytes are the exploration's footprint when it stopped;
	// Budget is the configured bound.
	States int
	Bytes  int64
	Budget int64
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("%v: %d states, %d bytes > budget %d", ErrMemBudget, e.States, e.Bytes, e.Budget)
}

// Unwrap makes errors.Is(err, ErrMemBudget) hold.
func (e *BudgetError) Unwrap() error { return ErrMemBudget }

// ExploreOptions configures on-the-fly exploration.
type ExploreOptions struct {
	// Workers sets the exploration and solver parallelism: 0 means one
	// worker per available CPU. Any value yields the identical MDP.
	Workers int
	// MemBudget bounds (approximately) the resident bytes of the interned
	// states plus the CSR under construction; exploration past the bound
	// fails with a *BudgetError. <= 0 means unlimited.
	MemBudget int64
	// Limit bounds the number of states, mirroring FromAutomaton's limit
	// argument; exploration past it fails with pa.ErrLimitExceeded.
	// <= 0 means unlimited.
	Limit int
}

// Explore builds the MDP of auto's reachable space on the fly, interning
// states by their own (comparable) value. The resulting MDP carries only
// the CSR transition form (Choices stays nil); every analysis runs on it
// unchanged. State numbering equals pa.Reachable discovery order.
func Explore[S comparable](auto *pa.Automaton[S], opts ExploreOptions) (*MDP, *Index[S], error) {
	return ExplorePacked(auto, func(s S) S { return s }, opts)
}

// ExplorePacked is Explore interning states by pack(s) instead of s
// itself. pack must be injective on the reachable states (the
// sched.Packer contract); fixed-width keys keep the interning map's
// hashing and equality to a few machine-word operations, which is where
// exploration time goes at millions of states.
func ExplorePacked[S comparable, K comparable](auto *pa.Automaton[S], pack func(S) K, opts ExploreOptions) (*MDP, *Index[S], error) {
	workers := resolveWorkers(opts.Workers)

	// tickOf memoizes DurationOf per action label, validating the
	// unit-duration convention once per label instead of once per choice.
	tickCache := make(map[string]bool)
	tickOf := func(action string) (bool, error) {
		if t, ok := tickCache[action]; ok {
			return t, nil
		}
		d := auto.DurationOf(action)
		var tick bool
		switch {
		case d.IsZero():
			tick = false
		case d.IsOne():
			tick = true
		default:
			return false, fmt.Errorf("%w: action %q has duration %v", ErrBadDuration, action, d)
		}
		tickCache[action] = tick
		return tick, nil
	}

	var (
		states []S
		ids    = make(map[K]int32)
		b      = newCSRBuilder(0, 0, 0)
	)
	intern := func(s S) int32 {
		k := pack(s)
		if id, ok := ids[k]; ok {
			return id
		}
		id := int32(len(states))
		ids[k] = id
		states = append(states, s)
		return id
	}
	for _, s := range auto.Start {
		intern(s)
	}

	// perState collects one frontier state's outgoing steps as computed by
	// the parallel phase; successor states are raw S values interned later
	// by the sequential merge.
	type perState struct {
		steps []pa.Step[S]
	}

	// Per-state key/pointer cost of the interning structures, for the
	// budget: the states slice entry, the map key+value, and amortized map
	// overhead (buckets, top-hash bytes — ~3/2 slots per entry at worst).
	var zeroS S
	var zeroK K
	perStateBytes := int64(unsafe.Sizeof(zeroS)) + (3*(int64(unsafe.Sizeof(zeroK))+4))/2

	results := make([]perState, 0, 1024)
	for lo := 0; lo < len(states); {
		hi := len(states) // this BFS level: everything discovered, not yet expanded
		frontier := states[lo:hi]
		if cap(results) < len(frontier) {
			results = make([]perState, len(frontier))
		}
		results = results[:len(frontier)]

		// Parallel phase: compute each frontier state's steps. Workers own
		// contiguous chunks and write only their own rows.
		parallelFor(workers, len(frontier), func(w, a, c int) {
			for i := a; i < c; i++ {
				results[i] = perState{steps: auto.Steps(frontier[i])}
			}
		})

		// Sequential merge: intern successors in frontier order — the BFS
		// discovery order — and append the CSR rows.
		for _, r := range results {
			b.startState()
			for _, step := range r.steps {
				tick, err := tickOf(step.Action)
				if err != nil {
					return nil, nil, err
				}
				b.addChoice(step.Action, tick)
				for _, o := range step.Next.Outcomes() {
					if opts.Limit > 0 && len(states) >= opts.Limit {
						if _, seen := ids[pack(o.Value)]; !seen {
							return nil, nil, fmt.Errorf("%w: more than %d states", pa.ErrLimitExceeded, opts.Limit)
						}
					}
					b.addBranch(intern(o.Value), o.Prob)
				}
			}
		}
		lo = hi

		if opts.MemBudget > 0 {
			bytes := b.footprint() + int64(len(states))*perStateBytes
			if bytes > opts.MemBudget {
				return nil, nil, &BudgetError{States: len(states), Bytes: bytes, Budget: opts.MemBudget}
			}
		}
	}

	// States discovered but never expanded cannot exist: the loop runs
	// until the frontier is empty, so every interned state got its CSR row.
	csr := b.finish()
	m := &MDP{NumStates: len(states), Workers: opts.Workers, csr: csr}
	ix := &Index[S]{states: states}
	return m, ix, nil
}

// footprint estimates the builder's resident bytes mid-construction, for
// the exploration budget (rationals carry one pointer per branch beyond
// the shared *big.Rat values, counted like the finished CSR's arrays).
func (b *csrBuilder) footprint() int64 {
	c := b.c
	return int64(cap(c.choiceRow))*4 +
		int64(cap(c.branchRow))*4 +
		int64(cap(c.labelID))*4 +
		int64(cap(c.tick))*8 +
		int64(cap(c.col))*4 +
		int64(cap(c.pf))*8 +
		int64(cap(c.pr))*8
}
