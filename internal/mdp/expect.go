package mdp

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoConvergence is returned when value iteration fails to converge
// within the configured iteration budget.
var ErrNoConvergence = errors.New("mdp: value iteration did not converge")

// VIConfig configures floating-point value iteration.
type VIConfig struct {
	// Epsilon is the termination threshold on the max-norm difference of
	// successive iterates. Zero means 1e-12.
	Epsilon float64
	// MaxIter caps the number of sweeps. Zero means 1_000_000.
	MaxIter int
}

func (c VIConfig) withDefaults() VIConfig {
	if c.Epsilon <= 0 {
		c.Epsilon = 1e-12
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 1_000_000
	}
	return c
}

// MaxExpectedTicks computes, for every state, the supremum over
// adversaries of the expected number of ticks until a target state is
// first visited. States from which some adversary avoids the target with
// positive probability get +Inf; for the rest, Gauss–Seidel value
// iteration converges to the finite value.
//
// In the Lehmann–Rabin reproduction this is the worst-case expected time
// for some process to enter the critical region, compared against the
// paper's derived bound of 63 (Section 6.2).
func (m *MDP) MaxExpectedTicks(target []bool, cfg VIConfig) ([]float64, error) {
	if len(target) != m.NumStates {
		return nil, fmt.Errorf("mdp: target mask has %d entries, want %d", len(target), m.NumStates)
	}
	cfg = cfg.withDefaults()

	// Finite value exactly on the states where every adversary reaches
	// the target almost surely.
	finite := m.MinProbOne(target)

	v := make([]float64, m.NumStates)
	for s := range v {
		if !finite[s] && !target[s] {
			v[s] = math.Inf(1)
		}
	}

	// Evaluate states in reverse topological order of zero-duration moves
	// when available; otherwise any order still converges, only slower.
	order, err := m.nonTickTopo()
	if err != nil {
		order = make([]int, m.NumStates)
		for i := range order {
			order[i] = i
		}
	}

	for iter := 0; iter < cfg.MaxIter; iter++ {
		delta := 0.0
		for _, s := range order {
			if target[s] || math.IsInf(v[s], 1) {
				continue
			}
			choices := m.Choices[s]
			if len(choices) == 0 {
				continue
			}
			best := math.Inf(-1)
			for _, c := range choices {
				val := 0.0
				if c.Tick {
					val = 1.0
				}
				for _, tr := range c.Branches {
					val += tr.P.Float64() * v[tr.To]
				}
				if val > best {
					best = val
				}
			}
			if d := math.Abs(best - v[s]); d > delta {
				delta = d
			}
			v[s] = best
		}
		if delta <= cfg.Epsilon {
			return v, nil
		}
	}
	return nil, fmt.Errorf("%w after %d sweeps", ErrNoConvergence, cfg.MaxIter)
}

// MinExpectedTicks computes, for every state, the infimum over
// adversaries of the expected number of ticks until a target state is
// first visited — the cooperative-scheduler counterpart of
// MaxExpectedTicks, useful for reporting the best-case/worst-case spread
// of a model. States from which no adversary can reach the target at all
// get +Inf; value iteration from zero converges to the least fixpoint,
// which is the min-cost value whenever the minimizing scheduler reaches
// the target almost surely (true in particular when, as in the
// Lehmann–Rabin product, every state has a strategy driving it to the
// target with probability one).
func (m *MDP) MinExpectedTicks(target []bool, cfg VIConfig) ([]float64, error) {
	if len(target) != m.NumStates {
		return nil, fmt.Errorf("mdp: target mask has %d entries, want %d", len(target), m.NumStates)
	}
	cfg = cfg.withDefaults()

	reachable := m.MaxProbPositive(target)

	v := make([]float64, m.NumStates)
	for s := range v {
		if !reachable[s] && !target[s] {
			v[s] = math.Inf(1)
		}
	}

	order, err := m.nonTickTopo()
	if err != nil {
		order = make([]int, m.NumStates)
		for i := range order {
			order[i] = i
		}
	}

	for iter := 0; iter < cfg.MaxIter; iter++ {
		delta := 0.0
		for _, s := range order {
			if target[s] || math.IsInf(v[s], 1) {
				continue
			}
			choices := m.Choices[s]
			if len(choices) == 0 {
				continue
			}
			best := math.Inf(1)
			for _, c := range choices {
				val := 0.0
				if c.Tick {
					val = 1.0
				}
				for _, tr := range c.Branches {
					val += tr.P.Float64() * v[tr.To]
				}
				if val < best {
					best = val
				}
			}
			if d := math.Abs(best - v[s]); d > delta {
				delta = d
			}
			v[s] = best
		}
		if delta <= cfg.Epsilon {
			return v, nil
		}
	}
	return nil, fmt.Errorf("%w after %d sweeps", ErrNoConvergence, cfg.MaxIter)
}

// ReachUnboundedFloat computes, for every state, the optimal probability
// of eventually reaching the target, by Gauss–Seidel value iteration with
// qualitative precomputation pinning the probability-0 and probability-1
// states exactly.
func (m *MDP) ReachUnboundedFloat(target []bool, goal Goal, cfg VIConfig) ([]float64, error) {
	if len(target) != m.NumStates {
		return nil, fmt.Errorf("mdp: target mask has %d entries, want %d", len(target), m.NumStates)
	}
	cfg = cfg.withDefaults()

	v := make([]float64, m.NumStates)
	pinned := make([]bool, m.NumStates)
	switch goal {
	case MinProb:
		one := m.MinProbOne(target)
		zero := m.Prob0E(target)
		for s := range v {
			switch {
			case target[s] || one[s]:
				v[s] = 1
				pinned[s] = true
			case zero[s]:
				v[s] = 0
				pinned[s] = true
			}
		}
	case MaxProb:
		pos := m.MaxProbPositive(target)
		for s := range v {
			switch {
			case target[s]:
				v[s] = 1
				pinned[s] = true
			case !pos[s]:
				v[s] = 0
				pinned[s] = true
			}
		}
	default:
		return nil, fmt.Errorf("mdp: unknown goal %d", goal)
	}

	for iter := 0; iter < cfg.MaxIter; iter++ {
		delta := 0.0
		for s := 0; s < m.NumStates; s++ {
			if pinned[s] {
				continue
			}
			choices := m.Choices[s]
			if len(choices) == 0 {
				continue
			}
			var best float64
			for ci, c := range choices {
				val := 0.0
				for _, tr := range c.Branches {
					val += tr.P.Float64() * v[tr.To]
				}
				if ci == 0 || (goal == MinProb && val < best) || (goal == MaxProb && val > best) {
					best = val
				}
			}
			if d := math.Abs(best - v[s]); d > delta {
				delta = d
			}
			v[s] = best
		}
		if delta <= cfg.Epsilon {
			return v, nil
		}
	}
	return nil, fmt.Errorf("%w after %d sweeps", ErrNoConvergence, cfg.MaxIter)
}
