package mdp

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoConvergence is returned when value iteration fails to converge
// within the configured iteration budget.
var ErrNoConvergence = errors.New("mdp: value iteration did not converge")

// VIConfig configures floating-point value iteration.
type VIConfig struct {
	// Epsilon is the termination threshold on the max-norm difference of
	// successive iterates. Zero means 1e-12.
	Epsilon float64
	// MaxIter caps the number of sweeps. Zero means 1_000_000.
	MaxIter int
}

func (c VIConfig) withDefaults() VIConfig {
	if c.Epsilon <= 0 {
		c.Epsilon = 1e-12
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 1_000_000
	}
	return c
}

// sweepPlan is the deterministic schedule of one value-iteration sweep:
// states grouped by non-tick level (csr.nonTickLevels), so that within a
// sweep non-tick edges read values already written this sweep (strictly
// lower levels, completed behind barriers) and tick edges read the
// previous sweep's array. When the non-tick graph is cyclic (Zeno models,
// possible for hand-built MDPs) the plan degrades to a pure Jacobi sweep:
// one level holding every state, all edges reading the previous array.
// Either way the trajectory is a pure function of the MDP — never of the
// worker count or scheduling — so results are bit-identical in parallel.
type sweepPlan struct {
	order  []int32
	levels []int32
	jacobi bool
}

func (c *CSR) sweepPlan() sweepPlan {
	order, levels, err := c.nonTickLevels()
	if err == nil {
		return sweepPlan{order: order, levels: levels}
	}
	order = make([]int32, c.n)
	for i := range order {
		order[i] = int32(i)
	}
	return sweepPlan{order: order, levels: []int32{int32(c.n)}, jacobi: true}
}

// valueIterate runs deterministic parallel value iteration to a fixpoint.
// prev carries the initial values and is consumed; eval computes one
// state's Bellman update reading non-tick successors from nonTick and
// tick successors from tick (the two coincide under a Jacobi plan). skip
// marks rows that stay pinned at their initial value (targets, states
// pinned by qualitative precomputation, +Inf rows).
func (m *MDP) valueIterate(cfg VIConfig, prev []float64, skip []bool,
	eval func(s int32, nonTick, tick []float64) float64) ([]float64, error) {
	cfg = cfg.withDefaults()
	c := m.CSR()
	workers := m.workers()
	plan := c.sweepPlan()
	cur := make([]float64, c.n)

	for iter := 0; iter < cfg.MaxIter; iter++ {
		// Pinned and skipped rows carry over; updated rows overwrite below.
		parallelFor(workers, c.n, func(w, a, b int) {
			copy(cur[a:b], prev[a:b])
		})
		nonTick := cur
		if plan.jacobi {
			nonTick = prev
		}
		delta := 0.0
		lo := int32(0)
		for _, hi := range plan.levels {
			span := plan.order[lo:hi]
			d := parallelForMax(workers, len(span), func(a, b int) float64 {
				dd := 0.0
				for k := a; k < b; k++ {
					s := span[k]
					if skip[s] {
						continue
					}
					nv := eval(s, nonTick, prev)
					if d := math.Abs(nv - prev[s]); d > dd {
						dd = d
					}
					cur[s] = nv
				}
				return dd
			})
			if d > delta {
				delta = d
			}
			lo = hi
		}
		prev, cur = cur, prev
		if delta <= cfg.Epsilon {
			return prev, nil
		}
	}
	return nil, fmt.Errorf("%w after %d sweeps", ErrNoConvergence, cfg.MaxIter)
}

// expectedTicks is the shared core of Max/MinExpectedTicks: optimize the
// expected number of ticks to the target, with +Inf pinned on infinite
// rows and the opt direction selected by maximize.
func (m *MDP) expectedTicks(target []bool, cfg VIConfig, maximize bool) ([]float64, error) {
	if len(target) != m.NumStates {
		return nil, fmt.Errorf("mdp: target mask has %d entries, want %d", len(target), m.NumStates)
	}
	c := m.CSR()

	// Finite value exactly on the states where the optimizing direction
	// reaches the target almost surely / at all.
	var finite []bool
	if maximize {
		finite = m.MinProbOne(target)
	} else {
		finite = m.MaxProbPositive(target)
	}

	v := make([]float64, c.n)
	skip := make([]bool, c.n)
	for s := range v {
		switch {
		case target[s]:
			skip[s] = true
		case !finite[s]:
			v[s] = math.Inf(1)
			skip[s] = true
		case c.terminal(s):
			skip[s] = true
		}
	}

	worst := math.Inf(-1)
	if !maximize {
		worst = math.Inf(1)
	}
	return m.valueIterate(cfg, v, skip, func(s int32, nonTick, tick []float64) float64 {
		best := worst
		for ci := c.choiceRow[s]; ci < c.choiceRow[s+1]; ci++ {
			val := 0.0
			layer := nonTick
			if c.tick.get(ci) {
				val = 1.0
				layer = tick
			}
			for bi := c.branchRow[ci]; bi < c.branchRow[ci+1]; bi++ {
				val += c.pf[bi] * layer[c.col[bi]]
			}
			if maximize == (val > best) && val != best {
				best = val
			}
		}
		return best
	})
}

// MaxExpectedTicks computes, for every state, the supremum over
// adversaries of the expected number of ticks until a target state is
// first visited. States from which some adversary avoids the target with
// positive probability get +Inf; for the rest, value iteration converges
// to the finite value.
//
// In the Lehmann–Rabin reproduction this is the worst-case expected time
// for some process to enter the critical region, compared against the
// paper's derived bound of 63 (Section 6.2).
func (m *MDP) MaxExpectedTicks(target []bool, cfg VIConfig) ([]float64, error) {
	return m.expectedTicks(target, cfg, true)
}

// MinExpectedTicks computes, for every state, the infimum over
// adversaries of the expected number of ticks until a target state is
// first visited — the cooperative-scheduler counterpart of
// MaxExpectedTicks, useful for reporting the best-case/worst-case spread
// of a model. States from which no adversary can reach the target at all
// get +Inf; value iteration from zero converges to the least fixpoint,
// which is the min-cost value whenever the minimizing scheduler reaches
// the target almost surely (true in particular when, as in the
// Lehmann–Rabin product, every state has a strategy driving it to the
// target with probability one).
func (m *MDP) MinExpectedTicks(target []bool, cfg VIConfig) ([]float64, error) {
	return m.expectedTicks(target, cfg, false)
}

// ReachUnboundedFloat computes, for every state, the optimal probability
// of eventually reaching the target, by value iteration with qualitative
// precomputation pinning the probability-0 and probability-1 states
// exactly.
func (m *MDP) ReachUnboundedFloat(target []bool, goal Goal, cfg VIConfig) ([]float64, error) {
	if len(target) != m.NumStates {
		return nil, fmt.Errorf("mdp: target mask has %d entries, want %d", len(target), m.NumStates)
	}
	c := m.CSR()

	v := make([]float64, c.n)
	skip := make([]bool, c.n)
	switch goal {
	case MinProb:
		one := m.MinProbOne(target)
		zero := m.Prob0E(target)
		for s := range v {
			switch {
			case target[s] || one[s]:
				v[s] = 1
				skip[s] = true
			case zero[s]:
				skip[s] = true
			case c.terminal(s):
				skip[s] = true
			}
		}
	case MaxProb:
		pos := m.MaxProbPositive(target)
		for s := range v {
			switch {
			case target[s]:
				v[s] = 1
				skip[s] = true
			case !pos[s]:
				skip[s] = true
			case c.terminal(s):
				skip[s] = true
			}
		}
	default:
		return nil, fmt.Errorf("mdp: unknown goal %d", goal)
	}

	return m.valueIterate(cfg, v, skip, func(s int32, nonTick, tick []float64) float64 {
		cLo := c.choiceRow[s]
		best := 0.0
		for ci := cLo; ci < c.choiceRow[s+1]; ci++ {
			val := 0.0
			layer := nonTick
			if c.tick.get(ci) {
				layer = tick
			}
			for bi := c.branchRow[ci]; bi < c.branchRow[ci+1]; bi++ {
				val += c.pf[bi] * layer[c.col[bi]]
			}
			if ci == cLo || (goal == MinProb && val < best) || (goal == MaxProb && val > best) {
				best = val
			}
		}
		return best
	})
}
