package mdp

import (
	"math"
	"testing"

	"repro/internal/prob"
)

func TestReachWithinTicksLayers(t *testing.T) {
	// Geometric coin: layer h must equal 1 - 2^-h at state 0.
	m := &MDP{NumStates: 2, Choices: [][]Choice{
		{tickCoin("flip", 1, 0)},
		nil,
	}}
	layers, err := m.ReachWithinTicksLayers(mask(2, 1), 5, MinProb)
	if err != nil {
		t.Fatal(err)
	}
	if len(layers) != 6 {
		t.Fatalf("got %d layers, want 6", len(layers))
	}
	for h, layer := range layers {
		want := prob.One().Sub(prob.NewRat(1, 1<<uint(h)))
		if !layer[0].Equal(want) {
			t.Errorf("layer %d = %v, want %v", h, layer[0], want)
		}
		if !layer[1].IsOne() {
			t.Errorf("target value at layer %d = %v", h, layer[1])
		}
	}
	// Layers must agree with the single-horizon API.
	for h := 0; h <= 5; h++ {
		v, err := m.ReachWithinTicks(mask(2, 1), h, MinProb)
		if err != nil {
			t.Fatal(err)
		}
		if !v[0].Equal(layers[h][0]) {
			t.Errorf("horizon %d: layers %v vs direct %v", h, layers[h][0], v[0])
		}
	}
}

func TestReachWithinTicksFloatAgreesWithExact(t *testing.T) {
	// A small MDP mixing choices, coins and zero-duration moves.
	m := &MDP{NumStates: 4, Choices: [][]Choice{
		{tickCoin("flip", 1, 2), tickTo("delay", 0)},
		{moveTo("go", 3)},
		{tickCoin("retry", 3, 0)},
		nil,
	}}
	target := mask(4, 3)
	for _, goal := range []Goal{MinProb, MaxProb} {
		for h := 0; h <= 8; h++ {
			exact, err := m.ReachWithinTicks(target, h, goal)
			if err != nil {
				t.Fatal(err)
			}
			approx, err := m.ReachWithinTicksFloat(target, h, goal)
			if err != nil {
				t.Fatal(err)
			}
			for s := range exact {
				if math.Abs(exact[s].Float64()-approx[s]) > 1e-12 {
					t.Errorf("goal %v h=%d s=%d: exact %v vs float %g", goal, h, s, exact[s], approx[s])
				}
			}
		}
	}
}

func TestReachWithinTicksFloatErrors(t *testing.T) {
	m := &MDP{NumStates: 2, Choices: [][]Choice{
		{moveTo("spin", 0)},
		nil,
	}}
	if _, err := m.ReachWithinTicksFloat(mask(2, 1), 2, MinProb); err == nil {
		t.Error("Zeno cycle accepted")
	}
	ok := &MDP{NumStates: 1, Choices: [][]Choice{nil}}
	if _, err := ok.ReachWithinTicksFloat(mask(2, 0), 1, MinProb); err == nil {
		t.Error("mismatched mask accepted")
	}
	if _, err := ok.ReachWithinTicksFloat(mask(1), -1, MinProb); err == nil {
		t.Error("negative horizon accepted")
	}
}

func TestWorstWitness(t *testing.T) {
	// 0: adversary picks between a coin (reaches target half the time)
	// and a safe delay loop... make delay lead to a dead end so min play
	// is forced through the coin, and the damning branch is the miss.
	m := &MDP{NumStates: 3, Choices: [][]Choice{
		{tickCoin("flip", 1, 2)},
		nil, // target
		{tickTo("stuck", 2)},
	}}
	target := mask(3, 1)
	steps, err := m.WorstWitness(target, 4, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Fatal("empty witness")
	}
	first := steps[0]
	if first.Action != "flip" || first.Next != 2 {
		t.Errorf("witness first step = %+v, want flip into the miss branch", first)
	}
	if !first.BranchProb.Equal(prob.Half()) {
		t.Errorf("branch prob = %v", first.BranchProb)
	}
}

func TestWorstWitnessStopsAtTarget(t *testing.T) {
	m := &MDP{NumStates: 2, Choices: [][]Choice{
		{tickTo("go", 1)},
		nil,
	}}
	steps, err := m.WorstWitness(mask(2, 1), 3, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 1 || steps[0].Next != 1 {
		t.Errorf("witness = %+v, want single step into target", steps)
	}
	// Starting at the target: empty witness.
	steps, err = m.WorstWitness(mask(2, 1), 3, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 0 {
		t.Errorf("witness from target = %+v, want empty", steps)
	}
}

func TestWorstWitnessClockExpiry(t *testing.T) {
	// The minimizing adversary's best move at budget 0 is to tick the
	// clock out; the witness stops there.
	m := &MDP{NumStates: 2, Choices: [][]Choice{
		{tickTo("go", 1)},
		nil,
	}}
	steps, err := m.WorstWitness(mask(2, 1), 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 0 {
		t.Errorf("witness at horizon 0 = %+v, want empty (clock expiry)", steps)
	}
}

func TestWorstWitnessBadStart(t *testing.T) {
	m := &MDP{NumStates: 1, Choices: [][]Choice{nil}}
	if _, err := m.WorstWitness(mask(1, 0), 1, 5, 0); err == nil {
		t.Error("out-of-range start accepted")
	}
}
