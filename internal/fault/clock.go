package fault

// The clock seam: the per-trial watchdog in internal/sim measures trial
// wall-time through a Clock so tests can drive time by hand (FakeClock)
// instead of sleeping, keeping stall detection deterministic.

import (
	"sync"
	"time"
)

// Clock abstracts the two time operations the watchdog needs.
type Clock interface {
	// Now reports the current time.
	Now() time.Time
	// After returns a channel that delivers one value once d has
	// elapsed, like time.After.
	After(d time.Duration) <-chan time.Time
}

type wallClock struct{}

// Wall is the production Clock: the real wall clock.
var Wall Clock = wallClock{}

func (wallClock) Now() time.Time                         { return time.Now() }
func (wallClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// FakeClock is a manually driven Clock for deterministic tests: time
// moves only when Advance is called, and pending After channels fire the
// moment the clock passes their deadline. Safe for concurrent use.
type FakeClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []fakeWaiter
}

type fakeWaiter struct {
	at time.Time
	ch chan time.Time
}

// NewFakeClock returns a FakeClock reading start.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

// Now implements Clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After implements Clock: the returned channel fires once Advance moves
// the clock to (or past) now+d. A non-positive d fires immediately.
func (c *FakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	at := c.now.Add(d)
	if d <= 0 {
		ch <- c.now
		return ch
	}
	c.waiters = append(c.waiters, fakeWaiter{at: at, ch: ch})
	return ch
}

// Waiters reports how many After channels are currently pending — the
// synchronization hook for tests that must not Advance past a deadline
// before the goroutine under test has parked on it.
func (c *FakeClock) Waiters() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}

// Advance moves the clock forward by d and fires every waiter whose
// deadline has passed.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	rest := c.waiters[:0]
	for _, w := range c.waiters {
		if !w.at.After(c.now) {
			w.ch <- c.now
		} else {
			rest = append(rest, w)
		}
	}
	c.waiters = rest
}
