package fault

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestDoCtxMaxElapsed: the wall-clock budget cuts the retry loop short
// mid-backoff — the final wait sleeps only the remainder and the last
// attempt error comes back wrapped in a typed BudgetExceededError.
func TestDoCtxMaxElapsed(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	boom := errors.New("still failing")
	calls := 0
	done := make(chan error, 1)
	p := RetryPolicy{
		Attempts: 10, Base: time.Second, Cap: time.Second,
		MaxElapsed: 2500 * time.Millisecond,
		Clock:      clock, Jitter: func() float64 { return 1.0 },
	}
	go func() {
		done <- p.DoCtx(context.Background(), func() error { calls++; return boom })
	}()
	// Two full 1s backoffs fit the budget; the third would overrun it,
	// so DoCtx waits only the remaining 500ms and gives up.
	for _, step := range []time.Duration{time.Second, time.Second, 500 * time.Millisecond} {
		waitForWaiter(t, clock)
		clock.Advance(step)
	}
	err := <-done
	var be *BudgetExceededError
	if !errors.As(err, &be) {
		t.Fatalf("DoCtx = %v, want a *BudgetExceededError", err)
	}
	if be.Budget != p.MaxElapsed || be.Elapsed != 2500*time.Millisecond {
		t.Fatalf("budget error = %+v, want budget %v elapsed 2.5s", be, p.MaxElapsed)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("budget error does not unwrap to the last attempt error: %v", err)
	}
	if calls != 3 {
		t.Fatalf("fn ran %d times, want 3 (budget cut the 10-attempt policy short)", calls)
	}
}

// TestDoCtxMaxElapsedSpentBeforeBackoff: when slow attempts alone eat
// the budget, DoCtx returns without any final wait.
func TestDoCtxMaxElapsedSpentBeforeBackoff(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	boom := errors.New("slow failure")
	p := RetryPolicy{Attempts: 5, Base: time.Millisecond, MaxElapsed: 10 * time.Second, Clock: clock}
	err := p.DoCtx(context.Background(), func() error {
		clock.Advance(11 * time.Second) // the attempt itself overruns the budget
		return boom
	})
	var be *BudgetExceededError
	if !errors.As(err, &be) || be.Elapsed < 10*time.Second {
		t.Fatalf("DoCtx = %v, want BudgetExceededError with elapsed >= budget", err)
	}
}

// TestDoCtxRetryAfterHint: a 429-style hint floors the next backoff
// wait above the policy's own exponential schedule.
func TestDoCtxRetryAfterHint(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	calls := 0
	done := make(chan error, 1)
	p := RetryPolicy{Attempts: 3, Base: time.Millisecond, Cap: time.Millisecond,
		Clock: clock, Jitter: func() float64 { return 0.5 }}
	go func() {
		done <- p.DoCtx(context.Background(), func() error {
			calls++
			if calls == 1 {
				return &hintedErr{after: 30 * time.Second}
			}
			return nil
		})
	}()
	waitForWaiter(t, clock)
	clock.Advance(time.Second) // far past the 1ms policy backoff, short of the hint
	select {
	case err := <-done:
		t.Fatalf("DoCtx returned %v before the Retry-After hint elapsed", err)
	case <-time.After(50 * time.Millisecond):
	}
	clock.Advance(29 * time.Second)
	if err := <-done; err != nil || calls != 2 {
		t.Fatalf("DoCtx = %v after %d calls, want nil after 2", err, calls)
	}
}

type hintedErr struct{ after time.Duration }

func (e *hintedErr) Error() string             { return "overloaded, retry later" }
func (e *hintedErr) RetryAfter() time.Duration { return e.after }
