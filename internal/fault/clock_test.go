package fault

import (
	"testing"
	"time"
)

// TestFakeClockAdvance: After fires exactly when Advance crosses the
// deadline, not before.
func TestFakeClockAdvance(t *testing.T) {
	c := NewFakeClock(time.Unix(0, 0))
	ch := c.After(10 * time.Second)
	c.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired before its deadline")
	default:
	}
	c.Advance(time.Second)
	select {
	case at := <-ch:
		if !at.Equal(time.Unix(10, 0)) {
			t.Fatalf("fired at %v, want t=10s", at)
		}
	default:
		t.Fatal("After did not fire at its deadline")
	}
	if got := c.Now(); !got.Equal(time.Unix(10, 0)) {
		t.Fatalf("Now = %v, want t=10s", got)
	}
}

// TestFakeClockImmediate: a non-positive duration fires without Advance.
func TestFakeClockImmediate(t *testing.T) {
	c := NewFakeClock(time.Unix(100, 0))
	select {
	case <-c.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
}

// TestFakeClockMultipleWaiters: one Advance fires every waiter whose
// deadline it passes, leaving later ones pending.
func TestFakeClockMultipleWaiters(t *testing.T) {
	c := NewFakeClock(time.Unix(0, 0))
	a := c.After(1 * time.Second)
	b := c.After(5 * time.Second)
	c.Advance(2 * time.Second)
	select {
	case <-a:
	default:
		t.Fatal("earlier waiter did not fire")
	}
	select {
	case <-b:
		t.Fatal("later waiter fired early")
	default:
	}
	c.Advance(10 * time.Second)
	select {
	case <-b:
	default:
		t.Fatal("later waiter never fired")
	}
}

// TestWallClock: the production clock reads real time and After works.
func TestWallClock(t *testing.T) {
	before := time.Now()
	if Wall.Now().Before(before) {
		t.Fatal("Wall.Now went backwards")
	}
	select {
	case <-Wall.After(time.Millisecond):
	case <-time.After(5 * time.Second):
		t.Fatal("Wall.After(1ms) did not fire within 5s")
	}
}
