package fault

import (
	"errors"
	"testing"
	"time"
)

// TestRetrySucceedsAfterTransients: Do keeps trying through transient
// failures and stops the moment fn succeeds.
func TestRetrySucceedsAfterTransients(t *testing.T) {
	calls := 0
	var retries []int
	p := RetryPolicy{
		Attempts: 5,
		Sleep:    func(time.Duration) {},
		OnRetry:  func(attempt int, err error) { retries = append(retries, attempt) },
	}
	err := p.Do(func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("Do = %v after %d calls, want nil after 3", err, calls)
	}
	if len(retries) != 2 || retries[0] != 1 || retries[1] != 2 {
		t.Fatalf("OnRetry attempts = %v, want [1 2]", retries)
	}
}

// TestRetryBudgetExhausted: after Attempts failures Do returns the last
// error and never sleeps past the final attempt.
func TestRetryBudgetExhausted(t *testing.T) {
	calls, sleeps := 0, 0
	p := RetryPolicy{Attempts: 4, Sleep: func(time.Duration) { sleeps++ }}
	last := errors.New("still failing")
	err := p.Do(func() error { calls++; return last })
	if !errors.Is(err, last) || calls != 4 {
		t.Fatalf("Do = %v after %d calls, want last error after 4", err, calls)
	}
	if sleeps != 3 {
		t.Fatalf("slept %d times for 4 attempts, want 3", sleeps)
	}
}

// TestRetryPermanent: a non-retryable error surfaces immediately.
func TestRetryPermanent(t *testing.T) {
	perm := errors.New("permanent")
	calls := 0
	p := RetryPolicy{
		Attempts:  5,
		Sleep:     func(time.Duration) {},
		Retryable: func(err error) bool { return !errors.Is(err, perm) },
	}
	if err := p.Do(func() error { calls++; return perm }); !errors.Is(err, perm) || calls != 1 {
		t.Fatalf("Do = %v after %d calls, want permanent error after 1", err, calls)
	}
}

// TestBackoffBounds: backoff doubles from Base and saturates at Cap.
func TestBackoffBounds(t *testing.T) {
	p := RetryPolicy{Base: 10 * time.Millisecond, Cap: 50 * time.Millisecond}
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		50 * time.Millisecond,
		50 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.Backoff(i); got != w {
			t.Fatalf("Backoff(%d) = %v, want %v", i, got, w)
		}
	}
}

// TestFullJitterSleep: the actual sleep is jitter * Backoff(attempt).
func TestFullJitterSleep(t *testing.T) {
	var slept []time.Duration
	p := RetryPolicy{
		Attempts: 3,
		Base:     8 * time.Millisecond,
		Cap:      time.Second,
		Sleep:    func(d time.Duration) { slept = append(slept, d) },
		Jitter:   func() float64 { return 0.5 },
	}
	p.Do(func() error { return errors.New("fail") })
	want := []time.Duration{4 * time.Millisecond, 8 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v", i, slept[i], want[i])
		}
	}
}

// TestDefaults: the zero policy fills in the standard knobs, and explicit
// values survive.
func TestDefaults(t *testing.T) {
	d := RetryPolicy{}.Defaults()
	if d.Attempts != 4 || d.Base != 5*time.Millisecond || d.Cap != 250*time.Millisecond {
		t.Fatalf("Defaults = %+v", d)
	}
	k := RetryPolicy{Attempts: 9, Base: time.Second, Cap: time.Minute}.Defaults()
	if k.Attempts != 9 || k.Base != time.Second || k.Cap != time.Minute {
		t.Fatalf("Defaults clobbered explicit values: %+v", k)
	}
}
