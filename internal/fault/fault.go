// Package fault is the runtime's adversary against itself: an injectable
// filesystem and clock seam, a deterministic seedable fault injector, and
// a bounded-retry helper — the machinery behind the chaos suite that
// proves the artifact layer (checkpoints, manifests) survives torn
// writes, rename failures, dropped fsyncs and stuck trials.
//
// The paper this repository reproduces argues that randomized algorithms
// must make progress under *any* adversary. The simulation runtime holds
// itself to the same bar: every durable-artifact code path runs against
// fault.FS, so the chaos tests can stand in for the worst filesystem the
// runtime will ever meet, with every fault drawn from a seeded RNG and
// therefore replayable.
package fault

import (
	"errors"
	"io"
	"os"
)

// ErrCorruptArtifact is the typed error for a durable artifact
// (checkpoint state file, run manifest) that fails validation on load:
// truncated JSON, a checksum mismatch, an unsupported format version, or
// outright garbage. Loaders wrap it so callers can distinguish "corrupt —
// fall back to an older generation" from I/O errors.
var ErrCorruptArtifact = errors.New("corrupt artifact")

// FS is the filesystem seam of the artifact layer: exactly the operations
// an atomic, durable save/load cycle needs. Production code uses OS; the
// chaos harness wraps it in an Injector.
type FS interface {
	// ReadFile reads the named file (os.ReadFile semantics: a missing
	// file reports an error matching os.ErrNotExist).
	ReadFile(path string) ([]byte, error)
	// CreateTemp creates a new temporary file in dir (os.CreateTemp
	// pattern semantics) opened for writing.
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes the named file.
	Remove(path string) error
	// SyncDir fsyncs the directory itself, making preceding renames in
	// it durable. Temp-file + rename alone is not crash-safe: the rename
	// lives in the directory, and the directory needs its own fsync.
	SyncDir(dir string) error
}

// File is the writable-handle half of FS.
type File interface {
	io.Writer
	// Name reports the file's path (for rename and cleanup).
	Name() string
	// Sync flushes the file's contents to stable storage.
	Sync() error
	// Close closes the handle.
	Close() error
}

// osFS is the real filesystem.
type osFS struct{}

// OS is the production FS: the real filesystem, with SyncDir implemented
// as an open + fsync of the directory.
var OS FS = osFS{}

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(path string) error { return os.Remove(path) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
