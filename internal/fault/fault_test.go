package fault

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestOSRoundTrip: the production FS performs a full durable-save cycle —
// temp file, write, fsync, rename, directory fsync — and the bytes read
// back.
func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.json")

	f, err := OS.CreateTemp(dir, "artifact.tmp*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := OS.Rename(f.Name(), path); err != nil {
		t.Fatal(err)
	}
	if err := OS.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	data, err := OS.ReadFile(path)
	if err != nil || string(data) != "payload" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	if err := OS.Remove(path); err != nil {
		t.Fatal(err)
	}
	if _, err := OS.ReadFile(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("read after remove: err = %v, want ErrNotExist", err)
	}
}

// TestSyncDirMissing: fsyncing a directory that does not exist is an
// error, not a silent no-op.
func TestSyncDirMissing(t *testing.T) {
	if err := OS.SyncDir(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("SyncDir on a missing directory succeeded")
	}
}
