package fault

import (
	"errors"
	"testing"
	"time"
)

// TestBreakerOpensAfterConsecutiveFailures: a run of Failures transport
// errors opens the breaker, and further calls fail instantly without
// running fn.
func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	b := NewBreaker(BreakerOptions{Failures: 3, Cooldown: 10 * time.Second, Clock: clock})
	boom := errors.New("connection refused")
	for i := 0; i < 3; i++ {
		if st := b.State(); st != BreakerClosed {
			t.Fatalf("state before failure %d = %v, want closed", i, st)
		}
		if err := b.Do(func() error { return boom }); !errors.Is(err, boom) {
			t.Fatalf("Do = %v, want the transport error", err)
		}
	}
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state after 3 failures = %v, want open", st)
	}
	calls := 0
	if err := b.Do(func() error { calls++; return nil }); !errors.Is(err, ErrBreakerOpen) || calls != 0 {
		t.Fatalf("Do while open = %v after %d calls, want ErrBreakerOpen after 0", err, calls)
	}
}

// TestBreakerSuccessResetsFailureRun: interleaved successes keep the
// breaker closed — only consecutive failures open it.
func TestBreakerSuccessResetsFailureRun(t *testing.T) {
	b := NewBreaker(BreakerOptions{Failures: 2, Clock: NewFakeClock(time.Unix(0, 0))})
	boom := errors.New("boom")
	for i := 0; i < 5; i++ {
		b.Do(func() error { return boom })
		b.Do(func() error { return nil })
	}
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state = %v, want closed (failure run never reached 2)", st)
	}
}

// TestBreakerHalfOpenProbe: after the cooldown the breaker admits one
// probe; a concurrent second call is rejected, and the probe's success
// closes the breaker.
func TestBreakerHalfOpenProbe(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	b := NewBreaker(BreakerOptions{Failures: 1, Cooldown: 5 * time.Second, Probes: 1, Clock: clock})
	b.Record(b.Do(func() error { return errors.New("boom") })) // opens; extra Record while open is a no-op
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state = %v, want open", st)
	}
	clock.Advance(5 * time.Second)
	if st := b.State(); st != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", st)
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("first half-open Allow = %v, want probe admitted", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second half-open Allow = %v, want ErrBreakerOpen (probe slot taken)", err)
	}
	b.Record(nil)
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", st)
	}
}

// TestBreakerHalfOpenFailureReopens: a failed probe restarts the
// cooldown.
func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	b := NewBreaker(BreakerOptions{Failures: 1, Cooldown: 5 * time.Second, Clock: clock})
	b.Do(func() error { return errors.New("boom") })
	clock.Advance(5 * time.Second)
	if err := b.Do(func() error { return errors.New("still down") }); err == nil {
		t.Fatal("probe unexpectedly succeeded")
	}
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open again", st)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Allow after failed probe = %v, want ErrBreakerOpen", err)
	}
	// The second cooldown behaves like the first.
	clock.Advance(5 * time.Second)
	if err := b.Do(func() error { return nil }); err != nil {
		t.Fatalf("probe after second cooldown = %v, want success", err)
	}
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state = %v, want closed", st)
	}
}

// TestBreakerOnChange: every transition reaches the hook in order — the
// seam the obs breaker-state gauge hangs off.
func TestBreakerOnChange(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	var seen []string
	b := NewBreaker(BreakerOptions{Failures: 1, Cooldown: time.Second, Clock: clock,
		OnChange: func(from, to BreakerState) { seen = append(seen, from.String()+">"+to.String()) }})
	b.Do(func() error { return errors.New("boom") })
	clock.Advance(time.Second)
	b.Do(func() error { return nil })
	want := []string{"closed>open", "open>half-open", "half-open>closed"}
	if len(seen) != len(want) {
		t.Fatalf("transitions = %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("transition %d = %q, want %q (all: %v)", i, seen[i], want[i], seen)
		}
	}
}
