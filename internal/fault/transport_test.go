package fault

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// echoServer returns a test server that echoes the request body (or a
// fixed payload on GET).
func echoServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		if len(body) == 0 {
			body = []byte("the quick brown fox jumps over the lazy dog, twice over")
		}
		w.Write(body)
	}))
	t.Cleanup(srv.Close)
	return srv
}

// outcome classifies one faulted RPC for replay comparison.
func outcome(resp *http.Response, err error) string {
	if err != nil {
		var ne *NetError
		if errors.As(err, &ne) {
			return "neterr:" + ne.Op.String()
		}
		return "err"
	}
	defer resp.Body.Close()
	body, rerr := io.ReadAll(resp.Body)
	if rerr != nil {
		return fmt.Sprintf("status=%d readerr", resp.StatusCode)
	}
	return fmt.Sprintf("status=%d body=%x", resp.StatusCode, body)
}

// TestTransportDeterministicReplay: two Networks with the same seed and
// fault table produce the same fault sequence for the same RPC
// sequence — the property that makes CHAOS_SEED replay work.
func TestTransportDeterministicReplay(t *testing.T) {
	srv := echoServer(t)
	run := func() []string {
		n := NewNetwork(42, nil, NetProbs{
			Drop: 0.25, HTTP5xx: 0.25, Corrupt: 0.2, Truncate: 0.1,
		})
		client := &http.Client{Transport: n.Transport("w1", nil)}
		var got []string
		for i := 0; i < 60; i++ {
			resp, err := client.Get(srv.URL + "/v1/lease")
			got = append(got, outcome(resp, err))
		}
		return got
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at rpc %d: %q vs %q", i, a[i], b[i])
		}
	}
	var faults int
	for _, o := range a {
		if o != "status=200 body="+fmt.Sprintf("%x", []byte("the quick brown fox jumps over the lazy dog, twice over")) {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("storm injected no faults in 60 RPCs at these probabilities")
	}
}

// TestTransportPartitionWindow: a scripted window fails RPCs with a
// typed partition error exactly while it is open, on the injected
// clock.
func TestTransportPartitionWindow(t *testing.T) {
	srv := echoServer(t)
	clock := NewFakeClock(time.Unix(1000, 0))
	n := NewNetwork(1, clock, NetProbs{})
	n.PartitionFor("w1", "*", 10*time.Second, 10*time.Second)
	client := &http.Client{Transport: n.Transport("w1", nil)}

	if _, err := client.Get(srv.URL); err != nil {
		t.Fatalf("RPC before the window failed: %v", err)
	}
	clock.Advance(15 * time.Second) // inside [t+10s, t+20s)
	_, err := client.Get(srv.URL)
	var ne *NetError
	if !errors.As(err, &ne) || ne.Op != NetPartition || !errors.Is(err, ErrInjected) {
		t.Fatalf("RPC inside the window = %v, want a typed NetPartition matching ErrInjected", err)
	}
	clock.Advance(10 * time.Second) // past the window
	if _, err := client.Get(srv.URL); err != nil {
		t.Fatalf("RPC after the window failed: %v", err)
	}
	if got := n.Faults()[NetPartition]; got != 1 {
		t.Fatalf("partition fault count = %d, want 1", got)
	}
}

// TestTransportTruncate: a truncated body reads as a connection cut
// mid-body (io.ErrUnexpectedEOF), never a clean short read.
func TestTransportTruncate(t *testing.T) {
	srv := echoServer(t)
	n := NewNetwork(7, nil, NetProbs{Truncate: 1})
	client := &http.Client{Transport: n.Transport("w1", nil)}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	defer resp.Body.Close()
	if _, err := io.ReadAll(resp.Body); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated read error = %v, want io.ErrUnexpectedEOF", err)
	}
}

// TestTransportSlowDrip: a dripped body still delivers every byte.
func TestTransportSlowDrip(t *testing.T) {
	payload := strings.Repeat("abcdefgh", 64)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, payload)
	}))
	defer srv.Close()
	n := NewNetwork(7, nil, NetProbs{SlowDrip: 1, DripChunk: 64, DripDelay: time.Millisecond})
	client := &http.Client{Transport: n.Transport("w1", nil)}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil || string(body) != payload {
		t.Fatalf("dripped body = %d bytes, err %v; want the full %d bytes", len(body), err, len(payload))
	}
}

// TestTransportCorruptSendPathFilter: request-body corruption fires
// only on the configured path, so lease JSON stays parseable while
// result uploads face the CRC envelope.
func TestTransportCorruptSendPathFilter(t *testing.T) {
	srv := echoServer(t)
	n := NewNetwork(3, nil, NetProbs{CorruptSend: 1, CorruptSendPath: "/v1/result"})
	client := &http.Client{Transport: n.Transport("w1", nil)}
	payload := []byte(`{"job":"j1","worker":"w1"}`)

	resp, err := client.Post(srv.URL+"/v1/lease", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("lease post: %v", err)
	}
	echoed, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(echoed, payload) {
		t.Fatalf("lease body was corrupted despite the path filter: %q", echoed)
	}

	resp, err = client.Post(srv.URL+"/v1/result", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("result post: %v", err)
	}
	echoed, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if bytes.Equal(echoed, payload) {
		t.Fatal("result body reached the server uncorrupted at probability 1")
	}
	if got := n.Faults()[NetCorruptSend]; got != 1 {
		t.Fatalf("corrupt-send count = %d, want 1", got)
	}
}

// TestMiddlewareFaults: the server-side hook injects 500s, severs
// connections, and honors partitions against the named peer.
func TestMiddlewareFaults(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})

	t.Run("http500", func(t *testing.T) {
		n := NewNetwork(1, nil, NetProbs{HTTP5xx: 1})
		srv := httptest.NewServer(n.Middleware("coord")(inner))
		defer srv.Close()
		resp, err := http.Get(srv.URL)
		if err != nil || resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("got %v, %v; want an injected 500", resp, err)
		}
		resp.Body.Close()
	})

	t.Run("drop severs the connection", func(t *testing.T) {
		n := NewNetwork(1, nil, NetProbs{Drop: 1})
		srv := httptest.NewServer(n.Middleware("coord")(inner))
		defer srv.Close()
		if _, err := http.Get(srv.URL); err == nil {
			t.Fatal("dropped request returned a response")
		}
	})

	t.Run("partition by peer name", func(t *testing.T) {
		clock := NewFakeClock(time.Unix(0, 0))
		n := NewNetwork(1, clock, NetProbs{})
		n.Partition("coord", "w1", clock.Now(), clock.Now().Add(time.Hour))
		srv := httptest.NewServer(n.Middleware("coord")(inner))
		defer srv.Close()

		req, _ := http.NewRequest("GET", srv.URL, nil)
		req.Header.Set(PeerHeader, "w1")
		if _, err := http.DefaultClient.Do(req); err == nil {
			t.Fatal("partitioned peer got a response")
		}
		req2, _ := http.NewRequest("GET", srv.URL, nil)
		req2.Header.Set(PeerHeader, "w2")
		resp, err := http.DefaultClient.Do(req2)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("unpartitioned peer: %v, %v; want 200", resp, err)
		}
		resp.Body.Close()
	})
}

// TestParseNetScript: the CLI script grammar round-trips every knob.
func TestParseNetScript(t *testing.T) {
	sc, err := ParseNetScript("seed=99,latency=0.3:2ms:20ms,drop=0.1,http500=0.05,corrupt=0.04,truncate=0.03,slowdrip=0.02:32:3ms,corrupt-send=0.5:/v1/result,partition=300ms+500ms")
	if err != nil {
		t.Fatalf("ParseNetScript: %v", err)
	}
	p := sc.Probs
	if sc.Seed != 99 || p.Latency != 0.3 || p.LatencyMin != 2*time.Millisecond || p.LatencyMax != 20*time.Millisecond ||
		p.Drop != 0.1 || p.HTTP5xx != 0.05 || p.Corrupt != 0.04 || p.Truncate != 0.03 ||
		p.SlowDrip != 0.02 || p.DripChunk != 32 || p.DripDelay != 3*time.Millisecond ||
		p.CorruptSend != 0.5 || p.CorruptSendPath != "/v1/result" ||
		!sc.HasPartition || sc.PartitionAfter != 300*time.Millisecond || sc.PartitionDur != 500*time.Millisecond {
		t.Fatalf("parsed script mismatch: %+v", sc)
	}

	for _, bad := range []string{"nonsense=1", "drop=1.5", "drop", "partition=300ms"} {
		if _, err := ParseNetScript(bad); err == nil {
			t.Fatalf("ParseNetScript(%q) accepted invalid input", bad)
		}
	}
	empty, err := ParseNetScript("")
	if err != nil || empty.Seed != 1 {
		t.Fatalf("empty script = %+v, %v; want default seed 1", empty, err)
	}

	// Build anchors the partition window at the clock's now.
	clock := NewFakeClock(time.Unix(0, 0))
	n := sc.Build("w1", clock)
	if n.Partitioned("w1", "coord", clock.Now().Add(200*time.Millisecond)) {
		t.Fatal("partition active before its window")
	}
	if !n.Partitioned("w1", "coord", clock.Now().Add(400*time.Millisecond)) {
		t.Fatal("partition inactive inside its window")
	}
	if n.Partitioned("w1", "coord", clock.Now().Add(900*time.Millisecond)) {
		t.Fatal("partition active after its window")
	}
}
