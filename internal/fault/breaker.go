package fault

// A circuit breaker for worker RPCs: after a run of consecutive
// transport failures the breaker opens and fails calls instantly
// (ErrBreakerOpen) instead of letting every retry hammer a dead or
// partitioned address; after a cooldown it half-opens and admits a
// bounded number of probes, closing again on success. Time runs through
// a Clock so FakeClock tests drive the state machine by hand.

import (
	"errors"
	"sync"
	"time"
)

// BreakerState is the circuit breaker's state.
type BreakerState int32

const (
	// BreakerClosed passes every call through, counting consecutive
	// failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen fails every call instantly with ErrBreakerOpen until
	// the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits up to Probes concurrent calls; success
	// closes the breaker, failure reopens it.
	BreakerHalfOpen
)

var breakerStateNames = [...]string{"closed", "open", "half-open"}

// String names the state ("closed", "open", "half-open").
func (s BreakerState) String() string {
	if int(s) < len(breakerStateNames) {
		return breakerStateNames[s]
	}
	return "unknown"
}

// ErrBreakerOpen is returned without attempting the call while the
// breaker is open (or half-open with all probe slots taken). It is a
// transient condition: callers should back off and retry.
var ErrBreakerOpen = errors.New("fault: circuit breaker open")

// BreakerOptions configures a Breaker. The zero value gets sane
// defaults: 5 consecutive failures to open, 1s cooldown, 1 half-open
// probe, wall clock.
type BreakerOptions struct {
	// Failures is the run of consecutive failures that opens the
	// breaker. Values below 1 mean 5.
	Failures int
	// Cooldown is how long the breaker stays open before half-opening.
	// Non-positive means 1s.
	Cooldown time.Duration
	// Probes bounds the concurrent trial calls admitted while
	// half-open. Values below 1 mean 1.
	Probes int
	// Clock drives the cooldown; nil means Wall.
	Clock Clock
	// OnChange, when non-nil, observes every state transition — the
	// hook behind the obs breaker-state gauge. It is called outside the
	// breaker's lock.
	OnChange func(from, to BreakerState)
}

func (o BreakerOptions) defaults() BreakerOptions {
	if o.Failures < 1 {
		o.Failures = 5
	}
	if o.Cooldown <= 0 {
		o.Cooldown = time.Second
	}
	if o.Probes < 1 {
		o.Probes = 1
	}
	if o.Clock == nil {
		o.Clock = Wall
	}
	return o
}

// Breaker is a closed/open/half-open circuit breaker. Safe for
// concurrent use. Pair every successful Allow with exactly one Record,
// or use Do.
type Breaker struct {
	opts BreakerOptions

	mu       sync.Mutex
	state    BreakerState
	fails    int       // consecutive failures while closed
	inflight int       // admitted probes while half-open
	openedAt time.Time // when the breaker last opened
}

// NewBreaker returns a Breaker with opts' unset knobs defaulted.
func NewBreaker(opts BreakerOptions) *Breaker {
	return &Breaker{opts: opts.defaults()}
}

// State reports the current state, promoting open to half-open when the
// cooldown has elapsed.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	st, change := b.refreshLocked()
	b.mu.Unlock()
	b.notify(change)
	return st
}

// refreshLocked applies the time-driven open→half-open transition and
// reports the current state plus any transition to notify.
func (b *Breaker) refreshLocked() (BreakerState, *transition) {
	if b.state == BreakerOpen && !b.opts.Clock.Now().Before(b.openedAt.Add(b.opts.Cooldown)) {
		b.state = BreakerHalfOpen
		b.inflight = 0
		return b.state, &transition{BreakerOpen, BreakerHalfOpen}
	}
	return b.state, nil
}

type transition struct{ from, to BreakerState }

func (b *Breaker) notify(ch *transition) {
	if ch != nil && b.opts.OnChange != nil {
		b.opts.OnChange(ch.from, ch.to)
	}
}

// Allow reports whether a call may proceed. A nil return admits the
// call and MUST be matched by one Record with the call's outcome; a
// half-open admission reserves a probe slot that Record releases.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	st, change := b.refreshLocked()
	var err error
	switch st {
	case BreakerOpen:
		err = ErrBreakerOpen
	case BreakerHalfOpen:
		if b.inflight >= b.opts.Probes {
			err = ErrBreakerOpen
		} else {
			b.inflight++
		}
	}
	b.mu.Unlock()
	b.notify(change)
	return err
}

// Record reports the outcome of a call admitted by Allow: nil for
// success (the transport delivered a response — application-level
// status codes still count as success), non-nil for a transport
// failure.
func (b *Breaker) Record(err error) {
	b.mu.Lock()
	var change *transition
	switch b.state {
	case BreakerClosed:
		if err == nil {
			b.fails = 0
		} else {
			b.fails++
			if b.fails >= b.opts.Failures {
				b.state = BreakerOpen
				b.openedAt = b.opts.Clock.Now()
				b.fails = 0
				change = &transition{BreakerClosed, BreakerOpen}
			}
		}
	case BreakerHalfOpen:
		if b.inflight > 0 {
			b.inflight--
		}
		if err == nil {
			b.state = BreakerClosed
			b.fails = 0
			change = &transition{BreakerHalfOpen, BreakerClosed}
		} else {
			b.state = BreakerOpen
			b.openedAt = b.opts.Clock.Now()
			change = &transition{BreakerHalfOpen, BreakerOpen}
		}
	case BreakerOpen:
		// A straggler Record from a call admitted before the breaker
		// opened; consecutive-failure accounting restarts on half-open.
	}
	b.mu.Unlock()
	b.notify(change)
}

// Do runs fn under the breaker: Allow, fn, Record(fn's error). Callers
// whose failure classification differs from fn's return value (e.g. an
// HTTP 4xx is an application error, not a transport failure) should
// drive Allow/Record directly.
func (b *Breaker) Do(fn func() error) error {
	if err := b.Allow(); err != nil {
		return err
	}
	err := fn()
	b.Record(err)
	return err
}
