package fault

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

// memFS is an in-memory FS for injector tests: files are byte buffers,
// renames move them, nothing touches disk.
type memFS struct {
	files map[string][]byte
	seq   int
}

func newMemFS() *memFS { return &memFS{files: make(map[string][]byte)} }

func (m *memFS) ReadFile(path string) ([]byte, error) {
	data, ok := m.files[path]
	if !ok {
		return nil, errors.New("memfs: " + path + ": no such file")
	}
	return append([]byte(nil), data...), nil
}

func (m *memFS) CreateTemp(dir, pattern string) (File, error) {
	m.seq++
	name := filepath.Join(dir, strings.ReplaceAll(pattern, "*", "")+string(rune('a'+m.seq%26)))
	m.files[name] = nil
	return &memFile{fs: m, name: name}, nil
}

func (m *memFS) Rename(oldpath, newpath string) error {
	data, ok := m.files[oldpath]
	if !ok {
		return errors.New("memfs: " + oldpath + ": no such file")
	}
	delete(m.files, oldpath)
	m.files[newpath] = data
	return nil
}

func (m *memFS) Remove(path string) error {
	delete(m.files, path)
	return nil
}

func (m *memFS) SyncDir(string) error { return nil }

type memFile struct {
	fs   *memFS
	name string
	buf  bytes.Buffer
}

func (f *memFile) Name() string { return f.name }
func (f *memFile) Write(p []byte) (int, error) {
	n, err := f.buf.Write(p)
	f.fs.files[f.name] = append([]byte(nil), f.buf.Bytes()...)
	return n, err
}
func (f *memFile) Sync() error  { return nil }
func (f *memFile) Close() error { return nil }

// TestInjectorDeterministic: two injectors with the same seed fail the
// same operations in the same order.
func TestInjectorDeterministic(t *testing.T) {
	run := func(seed int64) []bool {
		in := NewInjector(newMemFS(), seed, Probs{OpRead: 0.5})
		var got []bool
		for i := 0; i < 64; i++ {
			_, err := in.ReadFile("x")
			got = append(got, err != nil && errors.Is(err, ErrInjected))
		}
		return got
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault sequence diverged at draw %d", i)
		}
	}
	var faults int
	for _, f := range a {
		if f {
			faults++
		}
	}
	if faults == 0 || faults == len(a) {
		t.Fatalf("p=0.5 injector produced %d/%d faults", faults, len(a))
	}
}

// TestInjectorPerOpProbs: an op with probability 0 (or absent) never
// fails; probability 1 always fails with a typed *InjectedError naming
// the op and path.
func TestInjectorPerOpProbs(t *testing.T) {
	in := NewInjector(newMemFS(), 1, Probs{OpRename: 1})
	for i := 0; i < 32; i++ {
		if err := in.SyncDir("d"); err != nil {
			t.Fatalf("SyncDir (p absent) failed: %v", err)
		}
	}
	err := in.Rename("a", "b")
	var ie *InjectedError
	if !errors.As(err, &ie) {
		t.Fatalf("Rename (p=1) err = %v, want *InjectedError", err)
	}
	if ie.Op != OpRename || ie.Path != "b" {
		t.Fatalf("InjectedError = %+v, want op=rename path=b", ie)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatal("injected error does not match ErrInjected")
	}
	if got := in.Faults()[OpRename]; got != 1 {
		t.Fatalf("Faults()[OpRename] = %d, want 1", got)
	}
	if in.Total() != 1 {
		t.Fatalf("Total() = %d, want 1", in.Total())
	}
}

// TestTornWrite: a faulted write leaves a strict prefix of the payload
// behind — the crash artifact the checksum layer must catch.
func TestTornWrite(t *testing.T) {
	mem := newMemFS()
	in := NewInjector(mem, 3, Probs{OpWrite: 1})
	f, err := in.CreateTemp("d", "t*")
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("0123456789abcdef")
	n, err := f.Write(payload)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Write err = %v, want ErrInjected", err)
	}
	if n >= len(payload) {
		t.Fatalf("torn write reported %d bytes of %d", n, len(payload))
	}
	if got := mem.files[f.Name()]; !bytes.Equal(got, payload[:n]) {
		t.Fatalf("torn prefix on disk = %q, want %q", got, payload[:n])
	}
}

// TestInjectorPassThrough: with no probabilities set, the injector is a
// transparent proxy — a full save/load cycle works.
func TestInjectorPassThrough(t *testing.T) {
	mem := newMemFS()
	in := NewInjector(mem, 0, nil)
	f, err := in.CreateTemp("d", "t*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := in.Rename(f.Name(), "d/final"); err != nil {
		t.Fatal(err)
	}
	if err := in.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	data, err := in.ReadFile("d/final")
	if err != nil || string(data) != "hello" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	if in.Total() != 0 {
		t.Fatalf("transparent injector counted %d faults", in.Total())
	}
}

// TestOpString: ops render as names, unknown values don't panic.
func TestOpString(t *testing.T) {
	if OpWrite.String() != "write" || OpSyncDir.String() != "syncdir" {
		t.Fatalf("op names wrong: %s, %s", OpWrite, OpSyncDir)
	}
	if s := Op(200).String(); !strings.Contains(s, "200") {
		t.Fatalf("unknown op string = %q", s)
	}
}
