package fault

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestDoCtxSucceeds: DoCtx behaves like Do on the happy path, waiting
// through the injected clock between attempts.
func TestDoCtxSucceeds(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	calls := 0
	done := make(chan error, 1)
	p := RetryPolicy{Attempts: 3, Base: time.Second, Cap: time.Second, Clock: clock,
		Jitter: func() float64 { return 0.5 }}
	go func() {
		done <- p.DoCtx(context.Background(), func() error {
			calls++
			if calls < 3 {
				return errors.New("transient")
			}
			return nil
		})
	}()
	// Two backoff waits of 500ms each separate the three attempts.
	for i := 0; i < 2; i++ {
		waitForWaiter(t, clock)
		clock.Advance(500 * time.Millisecond)
	}
	if err := <-done; err != nil || calls != 3 {
		t.Fatalf("DoCtx = %v after %d calls, want nil after 3", err, calls)
	}
}

// TestDoCtxCancelDuringBackoff is the satellite's acceptance point: a
// context cancelled mid-backoff returns promptly with ctx.Err(), without
// sleeping out the rest of the wait (the fake clock never advances).
func TestDoCtxCancelDuringBackoff(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	ctx, cancel := context.WithCancel(context.Background())
	attemptErr := errors.New("still failing")
	done := make(chan error, 1)
	p := RetryPolicy{Attempts: 5, Base: time.Hour, Cap: time.Hour, Clock: clock,
		Jitter: func() float64 { return 0.99 }}
	go func() {
		done <- p.DoCtx(ctx, func() error { return attemptErr })
	}()
	waitForWaiter(t, clock) // first backoff wait parked on the fake clock
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("DoCtx = %v, want context.Canceled", err)
		}
		// The last attempt's error stays visible for debugging.
		if got := err.Error(); !errors.Is(err, context.Canceled) || !containsStr(got, attemptErr.Error()) {
			t.Fatalf("DoCtx error %q does not carry the last attempt error %q", got, attemptErr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("DoCtx did not return promptly after cancellation")
	}
}

// TestDoCtxPreCancelled: an already-cancelled context returns ctx.Err()
// without calling fn at all.
func TestDoCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := RetryPolicy{Attempts: 5}.DoCtx(ctx, func() error { calls++; return nil })
	if !errors.Is(err, context.Canceled) || calls != 0 {
		t.Fatalf("DoCtx = %v after %d calls, want context.Canceled after 0", err, calls)
	}
}

// TestDoCtxPermanent: a non-retryable error surfaces immediately, no
// backoff wait.
func TestDoCtxPermanent(t *testing.T) {
	permanent := errors.New("permanent")
	calls := 0
	p := RetryPolicy{Attempts: 5, Clock: NewFakeClock(time.Unix(0, 0)),
		Retryable: func(err error) bool { return !errors.Is(err, permanent) }}
	err := p.DoCtx(context.Background(), func() error { calls++; return permanent })
	if !errors.Is(err, permanent) || calls != 1 {
		t.Fatalf("DoCtx = %v after %d calls, want the permanent error after 1", err, calls)
	}
}

// TestDoCtxBudgetExhausted: DoCtx returns the last error once attempts
// run out, like Do.
func TestDoCtxBudgetExhausted(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	calls := 0
	done := make(chan error, 1)
	last := errors.New("always failing")
	p := RetryPolicy{Attempts: 3, Base: time.Millisecond, Cap: time.Millisecond, Clock: clock,
		Jitter: func() float64 { return 0.5 }}
	go func() {
		done <- p.DoCtx(context.Background(), func() error { calls++; return last })
	}()
	for i := 0; i < 2; i++ {
		waitForWaiter(t, clock)
		clock.Advance(time.Millisecond)
	}
	if err := <-done; !errors.Is(err, last) || calls != 3 {
		t.Fatalf("DoCtx = %v after %d calls, want last error after 3", err, calls)
	}
}

// waitForWaiter spins until a goroutine is parked on the fake clock.
func waitForWaiter(t *testing.T, c *FakeClock) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c.Waiters() > 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("no goroutine parked on the fake clock")
}

func containsStr(s, sub string) bool {
	return len(sub) == 0 || (len(s) >= len(sub) && searchStr(s, sub))
}

func searchStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
