package fault

// Bounded retry with exponential backoff and full jitter, for transient
// artifact-write failures (injected by the chaos harness, or real — a
// network filesystem hiccup, EINTR, disk pressure). Full jitter
// (sleep = U[0,1) * min(cap, base·2^attempt)) decorrelates retries that
// would otherwise stampede in lockstep; see AWS's "Exponential Backoff
// And Jitter" analysis.

import (
	"math/rand"
	"sync"
	"time"
)

// RetryPolicy bounds and paces the retries of one operation. The zero
// value retries nothing (a single attempt); Defaults() fills the standard
// artifact-layer policy.
type RetryPolicy struct {
	// Attempts is the total number of tries, including the first;
	// values below 1 mean 1 (no retry).
	Attempts int
	// Base is the backoff unit: attempt k (0-based) waits up to
	// Base·2^k, capped at Cap. Defaults to 5ms when 0.
	Base time.Duration
	// Cap bounds a single backoff sleep. Defaults to 250ms when 0.
	Cap time.Duration
	// Sleep performs the wait; nil means time.Sleep. Tests inject a
	// recorder (or a no-op) to run storms at full speed.
	Sleep func(time.Duration)
	// Jitter draws the full-jitter fraction in [0, 1); nil uses a
	// package-level seeded source. Tests inject a constant for
	// deterministic pacing.
	Jitter func() float64
	// Retryable classifies errors; nil retries every error. Return
	// false for permanent failures (e.g. a missing directory) so they
	// surface immediately.
	Retryable func(error) bool
	// OnRetry, when non-nil, observes each retry (attempt is 1-based:
	// the retry about to run) — the hook behind the obs retry counters.
	OnRetry func(attempt int, err error)
}

// Defaults returns p with unset knobs filled in: 4 attempts, 5ms base,
// 250ms cap.
func (p RetryPolicy) Defaults() RetryPolicy {
	if p.Attempts < 1 {
		p.Attempts = 4
	}
	if p.Base <= 0 {
		p.Base = 5 * time.Millisecond
	}
	if p.Cap <= 0 {
		p.Cap = 250 * time.Millisecond
	}
	return p
}

// jitterRNG is the default jitter source, seeded once per process; draws
// lock because Do may run from concurrent goroutines.
var jitterRNG = struct {
	mu  sync.Mutex
	rng *rand.Rand
}{rng: rand.New(rand.NewSource(time.Now().UnixNano()))}

func defaultJitter() float64 {
	jitterRNG.mu.Lock()
	defer jitterRNG.mu.Unlock()
	return jitterRNG.rng.Float64()
}

// Backoff reports the maximum sleep before the given 0-based retry
// attempt: min(Cap, Base·2^attempt). Exposed for tests asserting pacing.
func (p RetryPolicy) Backoff(attempt int) time.Duration {
	d := p.Base
	for i := 0; i < attempt; i++ {
		d *= 2
		if d >= p.Cap {
			return p.Cap
		}
	}
	return min(d, p.Cap)
}

// Do runs fn until it succeeds, fails permanently, or the attempt budget
// is spent, sleeping a full-jittered exponential backoff between tries.
// It returns fn's last error.
func (p RetryPolicy) Do(fn func() error) error {
	p = p.Defaults()
	sleep := p.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	jitter := p.Jitter
	if jitter == nil {
		jitter = defaultJitter
	}
	var err error
	for attempt := 0; attempt < p.Attempts; attempt++ {
		if err = fn(); err == nil {
			return nil
		}
		if p.Retryable != nil && !p.Retryable(err) {
			return err
		}
		if attempt == p.Attempts-1 {
			break
		}
		if p.OnRetry != nil {
			p.OnRetry(attempt+1, err)
		}
		sleep(time.Duration(jitter() * float64(p.Backoff(attempt))))
	}
	return err
}
