package fault

// Bounded retry with exponential backoff and full jitter, for transient
// artifact-write failures (injected by the chaos harness, or real — a
// network filesystem hiccup, EINTR, disk pressure). Full jitter
// (sleep = U[0,1) * min(cap, base·2^attempt)) decorrelates retries that
// would otherwise stampede in lockstep; see AWS's "Exponential Backoff
// And Jitter" analysis.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// RetryPolicy bounds and paces the retries of one operation. The zero
// value retries nothing (a single attempt); Defaults() fills the standard
// artifact-layer policy.
type RetryPolicy struct {
	// Attempts is the total number of tries, including the first;
	// values below 1 mean 1 (no retry).
	Attempts int
	// Base is the backoff unit: attempt k (0-based) waits up to
	// Base·2^k, capped at Cap. Defaults to 5ms when 0.
	Base time.Duration
	// Cap bounds a single backoff sleep. Defaults to 250ms when 0.
	Cap time.Duration
	// Sleep performs Do's wait; nil means time.Sleep. Tests inject a
	// recorder (or a no-op) to run storms at full speed. DoCtx ignores it
	// — its waits run through Clock so they stay interruptible.
	Sleep func(time.Duration)
	// Clock times DoCtx's backoff waits; nil means the wall clock (Wall).
	// Tests inject a FakeClock to pace retries by hand.
	Clock Clock
	// Jitter draws the full-jitter fraction in [0, 1); nil uses a
	// package-level seeded source. Tests inject a constant for
	// deterministic pacing.
	Jitter func() float64
	// Retryable classifies errors; nil retries every error. Return
	// false for permanent failures (e.g. a missing directory) so they
	// surface immediately.
	Retryable func(error) bool
	// OnRetry, when non-nil, observes each retry (attempt is 1-based:
	// the retry about to run) — the hook behind the obs retry counters.
	OnRetry func(attempt int, err error)
	// MaxElapsed, when positive, bounds the total wall clock one DoCtx
	// call may spend across attempts and backoff waits, measured
	// through Clock. When the budget runs out mid-backoff, DoCtx sleeps
	// only the remainder and returns the last attempt's error wrapped
	// in a *BudgetExceededError. Do ignores it (its Sleep seam has no
	// clock).
	MaxElapsed time.Duration
}

// BudgetExceededError reports a DoCtx call that ran out of its
// MaxElapsed budget while the operation was still failing. It unwraps
// to the last attempt's error.
type BudgetExceededError struct {
	// Budget is the configured MaxElapsed.
	Budget time.Duration
	// Elapsed is how long the call actually ran.
	Elapsed time.Duration
	// Last is the final attempt's error.
	Last error
}

// Error reports the budget, the elapsed time and the last failure.
func (e *BudgetExceededError) Error() string {
	return fmt.Sprintf("fault: retry budget %v exceeded after %v (last attempt: %v)", e.Budget, e.Elapsed, e.Last)
}

// Unwrap exposes the last attempt's error to errors.Is/As.
func (e *BudgetExceededError) Unwrap() error { return e.Last }

// RetryAfterHint is implemented by errors that carry the server's
// requested backoff (an HTTP 429 Retry-After). DoCtx honors the hint as
// a floor on the next backoff wait, found via errors.As anywhere in the
// attempt's error chain.
type RetryAfterHint interface {
	RetryAfter() time.Duration
}

// Defaults returns p with unset knobs filled in: 4 attempts, 5ms base,
// 250ms cap.
func (p RetryPolicy) Defaults() RetryPolicy {
	if p.Attempts < 1 {
		p.Attempts = 4
	}
	if p.Base <= 0 {
		p.Base = 5 * time.Millisecond
	}
	if p.Cap <= 0 {
		p.Cap = 250 * time.Millisecond
	}
	return p
}

// jitterRNG is the default jitter source, seeded once per process; draws
// lock because Do may run from concurrent goroutines.
var jitterRNG = struct {
	mu  sync.Mutex
	rng *rand.Rand
}{rng: rand.New(rand.NewSource(time.Now().UnixNano()))}

func defaultJitter() float64 {
	jitterRNG.mu.Lock()
	defer jitterRNG.mu.Unlock()
	return jitterRNG.rng.Float64()
}

// Uniform01 draws from the package-level seeded jitter source — the
// same full-jitter fraction the retry policies use, exported for
// callers (the fabric worker's idle-poll backoff) that need to
// decorrelate their own waits.
func Uniform01() float64 { return defaultJitter() }

// Backoff reports the maximum sleep before the given 0-based retry
// attempt: min(Cap, Base·2^attempt). Exposed for tests asserting pacing.
func (p RetryPolicy) Backoff(attempt int) time.Duration {
	d := p.Base
	for i := 0; i < attempt; i++ {
		d *= 2
		if d >= p.Cap {
			return p.Cap
		}
	}
	return min(d, p.Cap)
}

// Do runs fn until it succeeds, fails permanently, or the attempt budget
// is spent, sleeping a full-jittered exponential backoff between tries.
// It returns fn's last error.
func (p RetryPolicy) Do(fn func() error) error {
	p = p.Defaults()
	sleep := p.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	jitter := p.Jitter
	if jitter == nil {
		jitter = defaultJitter
	}
	var err error
	for attempt := 0; attempt < p.Attempts; attempt++ {
		if err = fn(); err == nil {
			return nil
		}
		if p.Retryable != nil && !p.Retryable(err) {
			return err
		}
		if attempt == p.Attempts-1 {
			break
		}
		if p.OnRetry != nil {
			p.OnRetry(attempt+1, err)
		}
		sleep(time.Duration(jitter() * float64(p.Backoff(attempt))))
	}
	return err
}

// DoCtx is Do with cancellation and an optional time budget: every
// backoff wait runs through Clock.After in a select against ctx.Done(),
// so a cancelled context interrupts the wait immediately instead of
// sleeping out up to Cap per attempt, and ctx is also checked before
// each attempt. On cancellation the returned error matches ctx.Err()
// via errors.Is (wrapping the last attempt's error, when there was one,
// for context). When an attempt's error carries a RetryAfterHint (an
// HTTP 429's Retry-After), the hint floors the next backoff wait. With
// MaxElapsed set, a budget that runs out mid-backoff cuts the final
// wait short and returns a *BudgetExceededError wrapping the last
// attempt's error. The Sleep seam is ignored — it exists for Do's
// uninterruptible waits.
func (p RetryPolicy) DoCtx(ctx context.Context, fn func() error) error {
	p = p.Defaults()
	jitter := p.Jitter
	if jitter == nil {
		jitter = defaultJitter
	}
	clock := p.Clock
	if clock == nil {
		clock = Wall
	}
	var start time.Time
	if p.MaxElapsed > 0 {
		start = clock.Now()
	}
	var err error
	for attempt := 0; attempt < p.Attempts; attempt++ {
		if ctx.Err() != nil {
			return ctxRetryErr(ctx, err)
		}
		if err = fn(); err == nil {
			return nil
		}
		if p.Retryable != nil && !p.Retryable(err) {
			return err
		}
		if attempt == p.Attempts-1 {
			break
		}
		if p.OnRetry != nil {
			p.OnRetry(attempt+1, err)
		}
		wait := time.Duration(jitter() * float64(p.Backoff(attempt)))
		var hint RetryAfterHint
		if errors.As(err, &hint) {
			if after := hint.RetryAfter(); after > wait {
				wait = after
			}
		}
		if p.MaxElapsed > 0 {
			elapsed := clock.Now().Sub(start)
			remaining := p.MaxElapsed - elapsed
			if remaining <= 0 {
				return &BudgetExceededError{Budget: p.MaxElapsed, Elapsed: elapsed, Last: err}
			}
			if wait > remaining {
				// The budget runs out mid-backoff: sleep only the
				// remainder, then give up.
				select {
				case <-clock.After(remaining):
				case <-ctx.Done():
					return ctxRetryErr(ctx, err)
				}
				return &BudgetExceededError{Budget: p.MaxElapsed, Elapsed: clock.Now().Sub(start), Last: err}
			}
		}
		select {
		case <-clock.After(wait):
		case <-ctx.Done():
			return ctxRetryErr(ctx, err)
		}
	}
	return err
}

// ctxRetryErr reports a retry loop cut short by cancellation, keeping
// the cancellation cause matchable and the last attempt's error visible.
func ctxRetryErr(ctx context.Context, last error) error {
	if last == nil {
		return ctx.Err()
	}
	return fmt.Errorf("%w (last attempt: %v)", ctx.Err(), last)
}
