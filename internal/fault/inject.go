package fault

// The fault injector: a deterministic, seedable adversary that sits
// behind the FS interface and fails operations with per-op
// probabilities. Every fault is typed (*InjectedError, matching
// ErrInjected), so the code under test — and the chaos suite watching it
// — can tell an injected fault from a real one, and every draw comes
// from one seeded RNG, so a failing storm replays from its seed alone.

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// Op names one filesystem operation the injector can fail.
type Op uint8

const (
	// OpCreate fails CreateTemp.
	OpCreate Op = iota
	// OpWrite fails File.Write. When the write carries data, a random
	// prefix of it still reaches the underlying file first — a torn
	// write, the classic crash artifact.
	OpWrite
	// OpSync fails File.Sync: the fsync is dropped and reports an error.
	OpSync
	// OpClose fails File.Close (after closing the real handle, so no
	// descriptors leak under storms).
	OpClose
	// OpRename fails Rename without performing it.
	OpRename
	// OpRemove fails Remove without performing it.
	OpRemove
	// OpRead fails ReadFile.
	OpRead
	// OpSyncDir fails SyncDir: the directory fsync is dropped.
	OpSyncDir
	numOps
)

var opNames = [numOps]string{"create", "write", "sync", "close", "rename", "remove", "read", "syncdir"}

// String names the operation ("write", "rename", ...).
func (op Op) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// ErrInjected matches every error produced by an Injector, so callers can
// classify a failure as injected (errors.Is(err, fault.ErrInjected)).
var ErrInjected = errors.New("fault: injected failure")

// InjectedError is one injected fault: the operation that failed and the
// path it targeted. It matches ErrInjected via errors.Is.
type InjectedError struct {
	Op   Op
	Path string
}

// Error names the operation and path.
func (e *InjectedError) Error() string {
	return fmt.Sprintf("fault: injected %s failure on %s", e.Op, e.Path)
}

// Is reports a match against ErrInjected, so one errors.Is covers every
// injected fault.
func (e *InjectedError) Is(target error) bool { return target == ErrInjected }

// Probs maps each operation to its fault probability in [0, 1];
// operations absent from the map never fail.
type Probs map[Op]float64

// Injector wraps an FS and fails operations at the configured per-op
// probabilities, deterministically from the seed. It is safe for
// concurrent use: draws serialize through a mutex (fault placement under
// concurrency follows goroutine interleaving, but the artifact layer it
// exercises must be correct under any placement — that is the point).
type Injector struct {
	fs FS

	mu     sync.Mutex
	rng    *rand.Rand
	probs  Probs
	counts [numOps]int64
}

// NewInjector wraps fs with a fault injector drawing from the given seed.
func NewInjector(fs FS, seed int64, probs Probs) *Injector {
	return &Injector{fs: fs, rng: rand.New(rand.NewSource(seed)), probs: probs}
}

// trip decides whether op fails on path, counting the faults it injects.
func (in *Injector) trip(op Op, path string) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	p := in.probs[op]
	if p > 0 && in.rng.Float64() < p {
		in.counts[op]++
		return &InjectedError{Op: op, Path: path}
	}
	return nil
}

// tornLen picks how much of an n-byte write lands before a torn write
// fails: anywhere from nothing to all but one byte.
func (in *Injector) tornLen(n int) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	if n <= 1 {
		return 0
	}
	return in.rng.Intn(n)
}

// Faults reports how many faults have been injected per operation.
func (in *Injector) Faults() map[Op]int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Op]int64)
	for op, n := range in.counts {
		if n > 0 {
			out[Op(op)] = n
		}
	}
	return out
}

// Total reports the total number of injected faults.
func (in *Injector) Total() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	var t int64
	for _, n := range in.counts {
		t += n
	}
	return t
}

// ReadFile implements FS.
func (in *Injector) ReadFile(path string) ([]byte, error) {
	if err := in.trip(OpRead, path); err != nil {
		return nil, err
	}
	return in.fs.ReadFile(path)
}

// CreateTemp implements FS; the returned handle injects write/sync/close
// faults.
func (in *Injector) CreateTemp(dir, pattern string) (File, error) {
	if err := in.trip(OpCreate, dir); err != nil {
		return nil, err
	}
	f, err := in.fs.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &injectedFile{in: in, f: f}, nil
}

// Rename implements FS.
func (in *Injector) Rename(oldpath, newpath string) error {
	if err := in.trip(OpRename, newpath); err != nil {
		return err
	}
	return in.fs.Rename(oldpath, newpath)
}

// Remove implements FS.
func (in *Injector) Remove(path string) error {
	if err := in.trip(OpRemove, path); err != nil {
		return err
	}
	return in.fs.Remove(path)
}

// SyncDir implements FS.
func (in *Injector) SyncDir(dir string) error {
	if err := in.trip(OpSyncDir, dir); err != nil {
		return err
	}
	return in.fs.SyncDir(dir)
}

// injectedFile injects faults on the write path of one handle.
type injectedFile struct {
	in *Injector
	f  File
}

func (f *injectedFile) Name() string { return f.f.Name() }

// Write injects torn writes: on a fault, a random prefix of p still
// reaches the underlying file before the error returns — exactly what a
// crash mid-write leaves behind.
func (f *injectedFile) Write(p []byte) (int, error) {
	if err := f.in.trip(OpWrite, f.f.Name()); err != nil {
		n := f.in.tornLen(len(p))
		if n > 0 {
			f.f.Write(p[:n]) // best-effort torn prefix; the op still fails
		}
		return n, err
	}
	return f.f.Write(p)
}

func (f *injectedFile) Sync() error {
	if err := f.in.trip(OpSync, f.f.Name()); err != nil {
		return err
	}
	return f.f.Sync()
}

// Close always closes the real handle (no descriptor leaks under
// storms), then reports an injected fault if one fires.
func (f *injectedFile) Close() error {
	cerr := f.f.Close()
	if err := f.in.trip(OpClose, f.f.Name()); err != nil {
		return err
	}
	return cerr
}
