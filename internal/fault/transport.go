package fault

// The network adversary: a deterministic, seedable fault injector for
// HTTP RPCs, mirroring the filesystem Injector one layer up the stack.
// A Network owns one seeded RNG and a fault table; Transport wraps a
// client's http.RoundTripper and Middleware wraps a server's handler, so
// both sides of the fabric protocol face the same adversary. Faults are
// typed (*NetError, matching ErrInjected) and every delay runs through a
// Clock, so FakeClock tests are bit-identical and a failing storm
// replays from its seed alone.

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// NetOp names one network fault the injector can produce.
type NetOp uint8

const (
	// NetLatency delays an RPC (client side: before the request is
	// sent; server side: before the handler runs).
	NetLatency NetOp = iota
	// NetDrop severs the connection: the client sees a transport error,
	// the server aborts the handler without writing a response.
	NetDrop
	// Net5xx replaces the response with an injected 502/500.
	Net5xx
	// NetCorrupt flips bytes in the response body.
	NetCorrupt
	// NetTruncate cuts the response body short; the read ends in
	// io.ErrUnexpectedEOF, as a connection cut mid-body would.
	NetTruncate
	// NetSlowDrip delivers the response body a few bytes per tick.
	NetSlowDrip
	// NetCorruptSend flips bytes in the request body (a corrupt upload).
	NetCorruptSend
	// NetPartition fails an RPC because a scripted partition window
	// separates the two endpoints.
	NetPartition
	numNetOps
)

var netOpNames = [numNetOps]string{
	"latency", "drop", "http5xx", "corrupt", "truncate", "slowdrip", "corrupt-send", "partition",
}

// String names the fault ("drop", "partition", ...).
func (op NetOp) String() string {
	if int(op) < len(netOpNames) {
		return netOpNames[op]
	}
	return fmt.Sprintf("netop(%d)", uint8(op))
}

// NetError is one injected network fault: what fired and between which
// endpoints. It matches ErrInjected via errors.Is.
type NetError struct {
	Op     NetOp
	Source string
	Dest   string
}

// Error names the fault and the endpoints.
func (e *NetError) Error() string {
	return fmt.Sprintf("fault: injected net %s (%s -> %s)", e.Op, e.Source, e.Dest)
}

// Is reports a match against ErrInjected.
func (e *NetError) Is(target error) bool { return target == ErrInjected }

// NetProbs holds the per-RPC fault probabilities, all in [0, 1]; zero
// fields never fire (and consume no RNG draws, so disabling a fault does
// not shift the others' placement).
type NetProbs struct {
	// Latency delays the RPC by a uniform draw in [LatencyMin,
	// LatencyMax] (defaults 1ms–10ms).
	Latency    float64
	LatencyMin time.Duration
	LatencyMax time.Duration
	// Drop severs the connection before the request is delivered.
	Drop float64
	// HTTP5xx replaces the response with an injected 502.
	HTTP5xx float64
	// Corrupt flips 1–3 bytes of the response body.
	Corrupt float64
	// Truncate cuts the response body at a random prefix.
	Truncate float64
	// SlowDrip delivers the response body DripChunk bytes (default 64)
	// per DripDelay (default 2ms).
	SlowDrip  float64
	DripChunk int
	DripDelay time.Duration
	// CorruptSend flips 1–3 bytes of the request body, but only on
	// requests whose URL path contains CorruptSendPath (empty matches
	// every request with a body). The path filter exists because
	// corrupting a lease request just garbles JSON the coordinator
	// rejects; corrupting a result upload exercises the CRC envelope
	// and the corrupt-upload quarantine.
	CorruptSend     float64
	CorruptSendPath string
}

// partWindow is one scripted partition: endpoints a and b (unordered,
// "*" matches any endpoint) cannot exchange RPCs in [from, until).
type partWindow struct {
	a, b        string
	from, until time.Time
}

// Network is the shared fault state behind a set of Transports and
// Middlewares: one seeded RNG (draws serialize through the mutex, so
// fault placement under concurrency follows goroutine interleaving, but
// the protocol it exercises must be correct under any placement), the
// fault table, the scripted partitions, and per-fault counts.
type Network struct {
	clock Clock

	mu     sync.Mutex
	rng    *rand.Rand
	probs  NetProbs
	parts  []partWindow
	counts [numNetOps]int64
}

// NewNetwork returns a Network drawing from seed, timing delays through
// clock (nil means Wall), firing faults at the given probabilities.
func NewNetwork(seed int64, clock Clock, probs NetProbs) *Network {
	if clock == nil {
		clock = Wall
	}
	return &Network{clock: clock, rng: rand.New(rand.NewSource(seed)), probs: probs}
}

// Clock reports the clock the network times its delays with.
func (n *Network) Clock() Clock { return n.clock }

// Partition scripts a bidirectional partition between endpoints a and b
// (unordered; "*" matches any endpoint) over [from, until).
func (n *Network) Partition(a, b string, from, until time.Time) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.parts = append(n.parts, partWindow{a: a, b: b, from: from, until: until})
}

// PartitionFor scripts a partition window starting after `after` from
// now (on the network's clock) and lasting `dur`.
func (n *Network) PartitionFor(a, b string, after, dur time.Duration) {
	now := n.clock.Now()
	n.Partition(a, b, now.Add(after), now.Add(after).Add(dur))
}

// Partitioned reports whether endpoints a and b are separated by a
// scripted partition at time now.
func (n *Network) Partitioned(a, b string, now time.Time) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, w := range n.parts {
		if now.Before(w.from) || !now.Before(w.until) {
			continue
		}
		if (matchEndpoint(w.a, a) && matchEndpoint(w.b, b)) ||
			(matchEndpoint(w.a, b) && matchEndpoint(w.b, a)) {
			return true
		}
	}
	return false
}

func matchEndpoint(pat, name string) bool { return pat == "*" || pat == name }

// trip draws one fault decision, counting hits. Zero probability draws
// nothing.
func (n *Network) trip(op NetOp, p float64) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if p > 0 && n.rng.Float64() < p {
		n.counts[op]++
		return true
	}
	return false
}

// record counts a fault decided outside trip (partitions).
func (n *Network) record(op NetOp) {
	n.mu.Lock()
	n.counts[op]++
	n.mu.Unlock()
}

// latency draws one injected delay.
func (n *Network) latency() time.Duration {
	lo, hi := n.probs.LatencyMin, n.probs.LatencyMax
	if lo <= 0 {
		lo = time.Millisecond
	}
	if hi < lo {
		hi = 10 * time.Millisecond
		if hi < lo {
			hi = lo
		}
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if hi == lo {
		return lo
	}
	return lo + time.Duration(n.rng.Int63n(int64(hi-lo)+1))
}

// corruptBytes flips 1–3 random bytes of b in place (no-op when empty).
func (n *Network) corruptBytes(b []byte) {
	if len(b) == 0 {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	flips := 1 + n.rng.Intn(3)
	for i := 0; i < flips; i++ {
		b[n.rng.Intn(len(b))] ^= 0xFF
	}
}

// cutLen picks the prefix length a truncated n-byte body keeps.
func (n *Network) cutLen(size int) int {
	if size <= 1 {
		return 0
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rng.Intn(size)
}

// Faults reports how many faults have been injected per kind.
func (n *Network) Faults() map[NetOp]int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[NetOp]int64)
	for op, c := range n.counts {
		if c > 0 {
			out[NetOp(op)] = c
		}
	}
	return out
}

// Total reports the total number of injected faults.
func (n *Network) Total() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	var t int64
	for _, c := range n.counts {
		t += c
	}
	return t
}

// PeerHeader carries the sender's endpoint name on faulted RPCs, so the
// server-side Middleware can evaluate scripted partitions against the
// named peer rather than an ephemeral address.
const PeerHeader = "X-Fault-Peer"

// Transport returns an http.RoundTripper that subjects every RPC from
// the named source endpoint to the network's faults before and after
// delegating to base (nil means http.DefaultTransport).
func (n *Network) Transport(source string, base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &faultTransport{n: n, source: source, base: base}
}

type faultTransport struct {
	n      *Network
	source string
	base   http.RoundTripper
}

// RoundTrip implements http.RoundTripper. Fault order is fixed —
// partition, drop, latency, request corruption, the real round trip,
// injected 5xx, response corruption, truncation, slow drip — so a seed
// replays the same fault sequence for the same RPC sequence.
func (t *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	n := t.n
	dest := req.URL.Host
	if n.Partitioned(t.source, dest, n.clock.Now()) {
		n.record(NetPartition)
		closeRequest(req)
		return nil, &NetError{Op: NetPartition, Source: t.source, Dest: dest}
	}
	if n.trip(NetDrop, n.probs.Drop) {
		closeRequest(req)
		return nil, &NetError{Op: NetDrop, Source: t.source, Dest: dest}
	}
	if n.trip(NetLatency, n.probs.Latency) {
		select {
		case <-n.clock.After(n.latency()):
		case <-req.Context().Done():
			closeRequest(req)
			return nil, req.Context().Err()
		}
	}
	if req.Body != nil && n.probs.CorruptSend > 0 &&
		strings.Contains(req.URL.Path, n.probs.CorruptSendPath) &&
		n.trip(NetCorruptSend, n.probs.CorruptSend) {
		body, err := io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
		n.corruptBytes(body)
		req.Body = io.NopCloser(bytes.NewReader(body))
		req.ContentLength = int64(len(body))
	}
	req.Header.Set(PeerHeader, t.source)
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if n.trip(Net5xx, n.probs.HTTP5xx) {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return &http.Response{
			Status:     "502 Bad Gateway (injected)",
			StatusCode: http.StatusBadGateway,
			Proto:      resp.Proto,
			ProtoMajor: resp.ProtoMajor,
			ProtoMinor: resp.ProtoMinor,
			Header:     http.Header{"X-Fault-Injected": []string{"http5xx"}},
			Body:       io.NopCloser(strings.NewReader("fault: injected 502\n")),
			Request:    req,
		}, nil
	}
	if n.trip(NetCorrupt, n.probs.Corrupt) {
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		n.corruptBytes(body)
		resp.Body = io.NopCloser(bytes.NewReader(body))
		return resp, nil
	}
	if n.trip(NetTruncate, n.probs.Truncate) {
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		resp.Body = io.NopCloser(&truncatedBody{data: body[:n.cutLen(len(body))]})
		return resp, nil
	}
	if n.trip(NetSlowDrip, n.probs.SlowDrip) {
		resp.Body = &dripBody{n: n, ctx: req.Context(), body: resp.Body}
	}
	return resp, nil
}

// closeRequest releases the request body when the transport fails
// before delegating to the base round tripper (which normally owns it).
func closeRequest(req *http.Request) {
	if req.Body != nil {
		req.Body.Close()
	}
}

// truncatedBody yields a prefix and then fails like a connection cut
// mid-body.
type truncatedBody struct {
	data []byte
	off  int
}

func (t *truncatedBody) Read(p []byte) (int, error) {
	if t.off >= len(t.data) {
		return 0, io.ErrUnexpectedEOF
	}
	n := copy(p, t.data[t.off:])
	t.off += n
	return n, nil
}

func (t *truncatedBody) Close() error { return nil }

// dripBody delivers the wrapped body DripChunk bytes per DripDelay.
type dripBody struct {
	n    *Network
	ctx  interface{ Done() <-chan struct{} }
	body io.ReadCloser
}

func (d *dripBody) Read(p []byte) (int, error) {
	chunk := d.n.probs.DripChunk
	if chunk <= 0 {
		chunk = 64
	}
	delay := d.n.probs.DripDelay
	if delay <= 0 {
		delay = 2 * time.Millisecond
	}
	if len(p) > chunk {
		p = p[:chunk]
	}
	select {
	case <-d.n.clock.After(delay):
	case <-d.ctx.Done():
		return 0, io.ErrUnexpectedEOF
	}
	return d.body.Read(p)
}

func (d *dripBody) Close() error { return d.body.Close() }

// Middleware returns a server-side hook for obs.NewHTTPServer: requests
// arriving at the named endpoint face partitions, drops, latency,
// request-body corruption, and injected 500s before the wrapped handler
// runs. Drops and partitions abort the connection without a response
// (http.ErrAbortHandler), which is what a severed link looks like to
// the client.
func (n *Network) Middleware(self string) func(http.Handler) http.Handler {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			peer := r.Header.Get(PeerHeader)
			if peer == "" {
				peer = r.RemoteAddr
			}
			if n.Partitioned(self, peer, n.clock.Now()) {
				n.record(NetPartition)
				panic(http.ErrAbortHandler)
			}
			if n.trip(NetDrop, n.probs.Drop) {
				panic(http.ErrAbortHandler)
			}
			if n.trip(NetLatency, n.probs.Latency) {
				select {
				case <-n.clock.After(n.latency()):
				case <-r.Context().Done():
					panic(http.ErrAbortHandler)
				}
			}
			if r.Body != nil && n.probs.CorruptSend > 0 &&
				strings.Contains(r.URL.Path, n.probs.CorruptSendPath) &&
				n.trip(NetCorruptSend, n.probs.CorruptSend) {
				body, err := io.ReadAll(r.Body)
				r.Body.Close()
				if err != nil {
					panic(http.ErrAbortHandler)
				}
				n.corruptBytes(body)
				r.Body = io.NopCloser(bytes.NewReader(body))
				r.ContentLength = int64(len(body))
			}
			if n.trip(Net5xx, n.probs.HTTP5xx) {
				http.Error(w, "fault: injected 500", http.StatusInternalServerError)
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}

// NetScript is a parsed -chaos-net specification: the seed, the fault
// table, and at most one scripted partition window (relative to Build
// time) isolating the endpoint from everyone.
type NetScript struct {
	Seed  int64
	Probs NetProbs

	// HasPartition scripts one window cutting the endpoint off from
	// every peer, starting PartitionAfter after Build and lasting
	// PartitionDur.
	HasPartition   bool
	PartitionAfter time.Duration
	PartitionDur   time.Duration
}

// ParseNetScript parses a comma-separated fault script, e.g.
//
//	seed=7,latency=0.3:1ms:10ms,drop=0.1,http500=0.05,corrupt=0.05,
//	truncate=0.05,slowdrip=0.05,corrupt-send=0.1:/v1/result,
//	partition=300ms+500ms
//
// Probability clauses are name=p; latency takes optional :min:max
// bounds, slowdrip optional :chunk:delay, corrupt-send an optional
// :path filter, and partition is after+duration. An omitted seed
// defaults to 1.
func ParseNetScript(s string) (*NetScript, error) {
	sc := &NetScript{Seed: 1}
	if strings.TrimSpace(s) == "" {
		return sc, nil
	}
	for _, clause := range strings.Split(s, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("fault: net script clause %q: want key=value", clause)
		}
		var err error
		switch key {
		case "seed":
			sc.Seed, err = strconv.ParseInt(val, 10, 64)
		case "latency":
			parts := strings.Split(val, ":")
			if sc.Probs.Latency, err = parseProb(parts[0]); err == nil && len(parts) >= 3 {
				if sc.Probs.LatencyMin, err = time.ParseDuration(parts[1]); err == nil {
					sc.Probs.LatencyMax, err = time.ParseDuration(parts[2])
				}
			}
		case "drop":
			sc.Probs.Drop, err = parseProb(val)
		case "http500", "http5xx":
			sc.Probs.HTTP5xx, err = parseProb(val)
		case "corrupt":
			sc.Probs.Corrupt, err = parseProb(val)
		case "truncate":
			sc.Probs.Truncate, err = parseProb(val)
		case "slowdrip":
			parts := strings.Split(val, ":")
			if sc.Probs.SlowDrip, err = parseProb(parts[0]); err == nil && len(parts) >= 3 {
				if sc.Probs.DripChunk, err = strconv.Atoi(parts[1]); err == nil {
					sc.Probs.DripDelay, err = time.ParseDuration(parts[2])
				}
			}
		case "corrupt-send":
			prob, path, _ := strings.Cut(val, ":")
			if sc.Probs.CorruptSend, err = parseProb(prob); err == nil {
				sc.Probs.CorruptSendPath = path
			}
		case "partition":
			after, dur, ok := strings.Cut(val, "+")
			if !ok {
				return nil, fmt.Errorf("fault: net script partition %q: want after+duration", val)
			}
			if sc.PartitionAfter, err = time.ParseDuration(after); err == nil {
				sc.PartitionDur, err = time.ParseDuration(dur)
				sc.HasPartition = true
			}
		default:
			return nil, fmt.Errorf("fault: net script: unknown fault %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("fault: net script clause %q: %v", clause, err)
		}
	}
	return sc, nil
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v outside [0,1]", p)
	}
	return p, nil
}

// Build realizes the script as a Network for the named endpoint,
// scripting the partition window (if any) against every peer, anchored
// at clock's current time.
func (sc *NetScript) Build(self string, clock Clock) *Network {
	n := NewNetwork(sc.Seed, clock, sc.Probs)
	if sc.HasPartition {
		n.PartitionFor(self, "*", sc.PartitionAfter, sc.PartitionDur)
	}
	return n
}
