package prob

import (
	"errors"
	"fmt"
)

// ErrSingular is returned by SolveLinear when the coefficient matrix is
// singular.
var ErrSingular = errors.New("prob: singular linear system")

// SolveLinear solves the linear system A·x = b exactly over the rationals
// using Gaussian elimination with partial (first-nonzero) pivoting. A must
// be square with len(A) == len(b); each row of A must have length len(b).
//
// It is used by the expected-time machinery of Section 6.2 of the paper,
// where bounds such as E[V] = 60 arise as the solution of small linear
// recurrences over phase graphs.
func SolveLinear(a [][]Rat, b []Rat) ([]Rat, error) {
	n := len(b)
	if len(a) != n {
		return nil, fmt.Errorf("prob: matrix has %d rows, want %d", len(a), n)
	}
	// Work on copies: the library never mutates caller data.
	m := make([][]Rat, n)
	for i, row := range a {
		if len(row) != n {
			return nil, fmt.Errorf("prob: row %d has %d columns, want %d", i, len(row), n)
		}
		m[i] = append([]Rat(nil), row...)
	}
	rhs := append([]Rat(nil), b...)

	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if !m[r][col].IsZero() {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, ErrSingular
		}
		m[col], m[pivot] = m[pivot], m[col]
		rhs[col], rhs[pivot] = rhs[pivot], rhs[col]

		inv := m[col][col].Inv()
		for c := col; c < n; c++ {
			m[col][c] = m[col][c].Mul(inv)
		}
		rhs[col] = rhs[col].Mul(inv)

		for r := 0; r < n; r++ {
			if r == col || m[r][col].IsZero() {
				continue
			}
			factor := m[r][col]
			for c := col; c < n; c++ {
				m[r][c] = m[r][c].Sub(factor.Mul(m[col][c]))
			}
			rhs[r] = rhs[r].Sub(factor.Mul(rhs[col]))
		}
	}
	return rhs, nil
}

// SolveGeometric solves the single-unknown recurrence
//
//	E = base + coeff·E
//
// exactly, returning (base / (1 - coeff)). It returns an error when
// coeff >= 1, in which case the recurrence has no finite nonnegative
// solution. This is the shape of the Lehmann–Rabin expected-time bound:
// E[V] = 1/8·10 + 1/2·(5+E[V]) + 3/8·(10+E[V]) rearranges to
// E = 7.5 + (7/8)·E, giving E = 60.
func SolveGeometric(base, coeff Rat) (Rat, error) {
	if coeff.Cmp(One()) >= 0 {
		return Rat{}, fmt.Errorf("prob: recurrence coefficient %v >= 1 has no finite solution", coeff)
	}
	return base.Div(One().Sub(coeff)), nil
}
