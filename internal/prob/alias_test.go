package prob

import (
	"math"
	"testing"
)

// scanMeasure computes the probability Dist.Pick assigns each support
// element over a uniform r in [0, 1): the clamped cumulative intervals
// plus the fallthrough tail on the last element. This is the measure
// BuildAlias is specified to reproduce.
func scanMeasure[T comparable](d Dist[T]) []float64 {
	n := len(d.support)
	mass := make([]float64, n)
	acc, prev := 0.0, 0.0
	for i, v := range d.support {
		acc += d.weight[v].Float64()
		c := clampUnit(acc)
		mass[i] = c - prev
		prev = c
	}
	mass[n-1] += 1 - prev
	return mass
}

// aliasMeasure reads the probability each support element receives out
// of the constructed table: its own column's keep share plus every
// redirected share pointing at it, each column carrying weight 1/n.
func aliasMeasure[T comparable](a Alias[T]) []float64 {
	n := len(a.support)
	if n == 1 {
		return []float64{1}
	}
	mass := make([]float64, n)
	for i := 0; i < n; i++ {
		mass[i] += a.prob[i] / float64(n)
		mass[a.alias[i]] += (1 - a.prob[i]) / float64(n)
	}
	return mass
}

func aliasTestDists() map[string]Dist[int] {
	mk := func(nums ...int64) Dist[int] {
		total := int64(0)
		for _, k := range nums {
			total += k
		}
		outs := make([]Outcome[int], len(nums))
		for i, k := range nums {
			outs[i] = Outcome[int]{Value: i, Prob: NewRat(k, total)}
		}
		return MustDist(outs...)
	}
	return map[string]Dist[int]{
		"point":       Point(7),
		"fair-coin":   mk(1, 1),
		"quarter":     mk(3, 1),
		"thirds":      mk(1, 2),
		"uniform6":    mk(1, 1, 1, 1, 1, 1),
		"dyadic-skew": mk(4, 2, 1, 1),
		"sevenths":    mk(1, 2, 3, 4, 5, 6, 7),
		"lopsided":    mk(997, 1, 1, 1),
	}
}

// TestAliasMeasurePreserved pins the core alias property: the table
// assigns every support element exactly the measure the cumulative scan
// induces, up to a few ulps of table-build rounding.
func TestAliasMeasurePreserved(t *testing.T) {
	for name, d := range aliasTestDists() {
		a := BuildAlias(d)
		want := scanMeasure(d)
		got := aliasMeasure(a)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Errorf("%s: element %d alias measure %.17g, scan measure %.17g", name, i, got[i], want[i])
			}
		}
	}
}

// TestAliasPickAgreesWithTable samples a stratified grid of r values and
// checks that the empirical selection frequencies reproduce the table
// measure — i.e. Pick actually implements the table — and that every
// picked value lies in the support.
func TestAliasPickAgreesWithTable(t *testing.T) {
	const grid = 200000
	for name, d := range aliasTestDists() {
		a := BuildAlias(d)
		counts := make(map[int]int, d.Len())
		for k := 0; k < grid; k++ {
			r := (float64(k) + 0.5) / grid
			v := a.Pick(r)
			if d.P(v).Sign() <= 0 {
				t.Fatalf("%s: Pick(%v) = %v outside the support", name, r, v)
			}
			counts[v]++
		}
		want := scanMeasure(d)
		for i, v := range d.Support() {
			got := float64(counts[v]) / grid
			// A stratified grid mis-counts each boundary by at most one
			// point per column of the table.
			slack := float64(d.Len()+1) / grid
			if math.Abs(got-want[i]) > slack {
				t.Errorf("%s: element %v frequency %.6f, want %.6f (±%.6f)", name, v, got, want[i], slack)
			}
		}
	}
}

// TestAliasEdgeDraws exercises the boundary uniforms: r = 0 and r just
// below 1 must both return support elements (the truncation guard).
func TestAliasEdgeDraws(t *testing.T) {
	for name, d := range aliasTestDists() {
		a := BuildAlias(d)
		for _, r := range []float64{0, math.Nextafter(1, 0)} {
			v := a.Pick(r)
			if d.P(v).Sign() <= 0 {
				t.Errorf("%s: Pick(%v) = %v outside the support", name, r, v)
			}
		}
	}
}

func TestAliasEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pick on the zero Alias did not panic")
		}
	}()
	var a Alias[int]
	a.Pick(0.5)
}

// tinyRat returns a positive rational small enough that Float64 rounds
// it to zero (below the smallest subnormal).
func tinyRat() Rat {
	r := NewRat(1, 2)
	for i := 0; i < 12; i++ { // (1/2)^(2^12) = 2^-4096 << 2^-1074
		r = r.Mul(r)
	}
	return r
}

// hugeRat returns a rational large enough that Float64 rounds it to +Inf.
func hugeRat() Rat {
	r := FromInt(2)
	for i := 0; i < 11; i++ { // 2^(2^11) = 2^2048 >> MaxFloat64
		r = r.Mul(r)
	}
	return r
}

// TestAliasDegenerateWeights drives the hardened paths with hand-built
// (invalid as probability spaces, but encounterable after Float64
// rounding) weight maps: the alias sampler must agree with the
// cumulative scan's behavior.
func TestAliasDegenerateWeights(t *testing.T) {
	tiny, huge := tinyRat(), hugeRat()
	cases := map[string]Dist[int]{
		// Every weight rounds to zero: the scan falls through to the
		// last element for every r.
		"zero-total": {support: []int{0, 1, 2}, weight: map[int]Rat{0: tiny, 1: tiny, 2: tiny}},
		// A non-finite leading weight absorbs every draw at the scan.
		"inf-first": {support: []int{0, 1}, weight: map[int]Rat{0: huge, 1: NewRat(1, 2)}},
		// Half then an overflow: the scan splits at 1/2.
		"inf-second": {support: []int{0, 1}, weight: map[int]Rat{0: NewRat(1, 2), 1: huge}},
		// Total far past one: the scan never reaches the clamped-out tail.
		"over-unity": {support: []int{0, 1, 2}, weight: map[int]Rat{0: FromInt(1), 1: FromInt(1), 2: FromInt(1)}},
	}
	for name, d := range cases {
		a := BuildAlias(d)
		fr := Freeze(d)
		for k := 0; k < 4096; k++ {
			r := float64(k) / 4096
			if got, want := fr.Pick(r), d.Pick(r); got != want {
				t.Fatalf("%s: Frozen.Pick(%v) = %v, Dist.Pick = %v", name, r, got, want)
			}
			if got, want := a.Pick(r), d.Pick(r); got != want {
				t.Fatalf("%s: Alias.Pick(%v) = %v, Dist.Pick = %v", name, r, got, want)
			}
		}
	}
}

// FuzzFrozenPickIdentity is the degenerate-weight hardening gate of the
// sampling stack: random rational distributions × r values, asserting
// that (1) Frozen — the engine's bit-compat sampler — picks exactly what
// Dist picks, (2) the alias table's per-element measure matches the
// scan measure, and (3) every alias draw stays inside the support.
func FuzzFrozenPickIdentity(f *testing.F) {
	f.Add(uint16(1), uint16(1), uint16(0), uint16(0), uint16(0), uint16(0), uint64(0))
	f.Add(uint16(1), uint16(2), uint16(3), uint16(4), uint16(5), uint16(6), uint64(1)<<52)
	f.Add(uint16(997), uint16(1), uint16(1), uint16(1), uint16(0), uint16(0), ^uint64(0))
	f.Add(uint16(65535), uint16(1), uint16(0), uint16(0), uint16(0), uint16(65535), uint64(123456789))
	f.Fuzz(func(t *testing.T, k0, k1, k2, k3, k4, k5 uint16, rbits uint64) {
		ks := []uint16{k0, k1, k2, k3, k4, k5}
		total := int64(0)
		for _, k := range ks {
			total += int64(k)
		}
		if total == 0 {
			t.Skip("no support")
		}
		outs := make([]Outcome[int], 0, len(ks))
		for i, k := range ks {
			outs = append(outs, Outcome[int]{Value: i, Prob: NewRat(int64(k), total)})
		}
		d := MustDist(outs...)
		fr := Freeze(d)
		al := BuildAlias(d)

		// One fuzzed draw plus a fixed grid including both endpoints.
		rs := []float64{float64(rbits>>11) / (1 << 53), 0, math.Nextafter(1, 0)}
		for k := 1; k < 16; k++ {
			rs = append(rs, float64(k)/16)
		}
		for _, r := range rs {
			if got, want := fr.Pick(r), d.Pick(r); got != want {
				t.Fatalf("Frozen.Pick(%v) = %v, Dist.Pick = %v (dist %v)", r, got, want, d)
			}
			if v := al.Pick(r); d.P(v).Sign() <= 0 {
				t.Fatalf("Alias.Pick(%v) = %v outside the support (dist %v)", r, v, d)
			}
		}
		want := scanMeasure(d)
		got := aliasMeasure(al)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("element %d: alias measure %.17g, scan measure %.17g (dist %v)", i, got[i], want[i], d)
			}
		}
	})
}
