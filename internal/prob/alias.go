package prob

// Alias is a Walker alias-table sampler for a Dist: the table is built
// once, at construction, and each draw costs O(1) — one multiply, one
// truncation and one comparison — against Frozen's O(n) cumulative scan.
// It is the default sampler of the compiled Monte Carlo engine
// (internal/sim), where the same distribution is sampled millions of
// times.
//
// Pick consumes exactly one uniform in [0, 1), just like Dist.Pick and
// Frozen.Pick, so swapping samplers never shifts a seeded run's random
// stream — only the outcome a given draw maps to. Pick is distribution-
// equivalent to Dist.Pick: the table columns are built from the measure
// the cumulative scan induces on [0, 1) — the same weight[v].Float64()
// values, accumulated with Freeze's exact additions and clamped to the
// unit interval — so every support element is drawn with the scan's
// probability, up to the float64 rounding of the table build (a few
// ulps; the alias tests pin the per-element measure). It is not
// bit-identical to Dist.Pick for every r, though: the alias method
// partitions [0, 1) differently than the cumulative scan. Callers that
// need provable bit-identity with Dist.Pick use Frozen (the engine's
// BitCompat mode).
//
// Deriving the columns from the scan measure is also what hardens Pick
// against degenerate weights: a total that rounds to zero sends every
// draw to the last support element (the scan's fallthrough), and
// weights past the unit interval are absorbed exactly where the scan
// stops distinguishing them.
//
// An Alias is immutable after construction and safe for concurrent use.
// The zero value is an empty sampler (matching the zero Dist); like
// Dist.Pick, its Pick panics.
type Alias[T comparable] struct {
	support []T
	// prob[i] is the probability that column i keeps the draw; a draw
	// landing in column i with intra-column fraction >= prob[i] is
	// redirected to support[alias[i]].
	prob  []float64
	alias []int32
}

// BuildAlias pre-resolves d into an Alias sampler using Walker's
// two-stack construction. The support slice is shared with d (both are
// immutable).
func BuildAlias[T comparable](d Dist[T]) Alias[T] {
	a := Alias[T]{support: d.support}
	n := len(d.support)
	if n == 0 {
		return a
	}
	a.prob = make([]float64, n)
	a.alias = make([]int32, n)

	// The scan measure: Dist.Pick selects element i exactly when r lands
	// in [cum[i-1], cum[i]) clamped to [0, 1), with the last element
	// additionally owning the fallthrough tail. Accumulate the cums with
	// Freeze's exact additions, clamp, and difference — the resulting
	// masses telescope to 1 and reproduce the scan's behavior for any
	// weights, including degenerate ones (all-zero after Float64
	// rounding, totals past 1, non-finite outliers).
	mass := make([]float64, n)
	acc, prev := 0.0, 0.0
	for i, v := range d.support {
		acc += d.weight[v].Float64()
		c := clampUnit(acc)
		mass[i] = c - prev
		prev = c
	}
	mass[n-1] += 1 - prev // the scan's fallthrough tail
	total := 0.0
	for i := range mass {
		if !(mass[i] > 0) { // negative or NaN residue cannot seed a column
			mass[i] = 0
		}
		total += mass[i]
	}
	if !(total > 0) {
		// Unreachable for masses derived above (the tail term forces a
		// positive total), but keep the zero-table safe: route every
		// draw to the scan's fallthrough element.
		for i := range a.prob {
			a.alias[i] = int32(n - 1)
		}
		return a
	}

	// Walker's construction: scale each mass by n/total so a full column
	// holds exactly 1, then repeatedly top up an under-full column from
	// an over-full donor.
	scale := float64(n) / total
	for i := range mass {
		mass[i] *= scale
	}
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i := n - 1; i >= 0; i-- {
		if mass[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1] // donor stays on its stack while over-full
		a.prob[s] = mass[s]
		a.alias[s] = l
		mass[l] -= 1 - mass[s]
		if mass[l] < 1 {
			large = large[:len(large)-1]
			small = append(small, l)
		}
	}
	// Leftovers on either stack (rounding residue) own their column.
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a
}

// clampUnit clamps a cumulative weight into [0, 1]; NaN clamps to 0 so a
// poisoned accumulation degrades to the fallthrough element instead of
// corrupting the table.
func clampUnit(x float64) float64 {
	if !(x > 0) {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Len returns the size of the support.
func (a Alias[T]) Len() int { return len(a.support) }

// Pick selects an outcome using r, a number in [0, 1): the integer part
// of r·n picks the column, the fractional part plays the column's coin.
// It panics on an empty sampler just as Dist.Pick does.
func (a Alias[T]) Pick(r float64) T {
	return a.support[a.PickIndex(r)]
}

// PickIndex is Pick returning the support index of the outcome instead
// of the outcome itself, for callers that keep side tables parallel to
// the support (At recovers the outcome). Same r, same draw as Pick.
func (a Alias[T]) PickIndex(r float64) int {
	n := len(a.support)
	if n == 0 {
		panic("prob: Pick on empty distribution")
	}
	if n == 1 {
		return 0
	}
	x := r * float64(n)
	i := int(x)
	if i >= n {
		// r < 1 guarantees x < n mathematically, but the multiply may
		// round up to exactly n for r just below 1 and large n.
		i = n - 1
	}
	if x-float64(i) < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}

// At returns the i-th support element, in the order PickIndex indexes.
func (a Alias[T]) At(i int) T { return a.support[i] }
