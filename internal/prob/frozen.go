package prob

// Frozen is a pre-resolved sampler for a Dist: the cumulative float64
// weights are computed once, at freeze time, so each draw costs a short
// scan over a float slice — no big.Rat arithmetic and no map lookups.
// It exists for the Monte Carlo hot path (internal/sim's compiled-model
// layer), where the same distribution is sampled thousands of times.
//
// Pick is bit-identical to Dist.Pick for every r in [0, 1): the
// cumulative weights are the exact same weight[v].Float64() values,
// accumulated in the same support order with the same float64 additions
// Dist.Pick performs per draw, and the scan makes the same comparisons
// in the same order. A seeded run therefore produces identical results
// whether its distributions are frozen or not.
//
// A Frozen is immutable after construction and safe for concurrent use.
// The zero value is an empty sampler (matching the zero Dist); like
// Dist.Pick, its Pick panics.
type Frozen[T comparable] struct {
	support []T
	cum     []float64
}

// Freeze pre-resolves d into a Frozen sampler. The support slice is
// shared with d (both are immutable).
func Freeze[T comparable](d Dist[T]) Frozen[T] {
	f := Frozen[T]{support: d.support}
	if len(d.support) == 0 {
		return f
	}
	f.cum = make([]float64, len(d.support))
	acc := 0.0
	for i, v := range d.support {
		// Exactly Dist.Pick's accumulation: the same Float64 conversions
		// added in the same order, so every rounding decision matches.
		acc += d.weight[v].Float64()
		f.cum[i] = acc
	}
	return f
}

// Len returns the size of the support.
func (f Frozen[T]) Len() int { return len(f.support) }

// Pick selects an outcome using r, a number in [0, 1). It returns
// exactly what Dist.Pick on the original distribution returns for the
// same r, and panics on an empty sampler just as Dist.Pick does.
func (f Frozen[T]) Pick(r float64) T {
	n := len(f.support)
	if n == 0 {
		panic("prob: Pick on empty distribution")
	}
	if n == 1 {
		// Dist.Pick returns the sole support element whether or not
		// r < weight: it is both the first hit and the fallback.
		return f.support[0]
	}
	for i, c := range f.cum {
		if r < c {
			return f.support[i]
		}
	}
	return f.support[n-1]
}
