package prob

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestNewDist(t *testing.T) {
	tests := []struct {
		name     string
		outcomes []Outcome[string]
		wantErr  bool
	}{
		{
			name: "fair coin",
			outcomes: []Outcome[string]{
				{Value: "heads", Prob: Half()},
				{Value: "tails", Prob: Half()},
			},
		},
		{
			name:     "point",
			outcomes: []Outcome[string]{{Value: "x", Prob: One()}},
		},
		{
			name: "duplicates merge",
			outcomes: []Outcome[string]{
				{Value: "x", Prob: Half()},
				{Value: "x", Prob: Half()},
			},
		},
		{
			name: "zero weights dropped",
			outcomes: []Outcome[string]{
				{Value: "x", Prob: One()},
				{Value: "y", Prob: Zero()},
			},
		},
		{
			name: "under one",
			outcomes: []Outcome[string]{
				{Value: "x", Prob: Half()},
			},
			wantErr: true,
		},
		{
			name: "over one",
			outcomes: []Outcome[string]{
				{Value: "x", Prob: One()},
				{Value: "y", Prob: Half()},
			},
			wantErr: true,
		},
		{
			name: "negative",
			outcomes: []Outcome[string]{
				{Value: "x", Prob: NewRat(3, 2)},
				{Value: "y", Prob: NewRat(-1, 2)},
			},
			wantErr: true,
		},
		{
			name:    "empty",
			wantErr: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d, err := NewDist(tt.outcomes...)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("NewDist = %v, want error", d)
				}
				if !errors.Is(err, ErrNotADistribution) {
					t.Errorf("error %v is not ErrNotADistribution", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("NewDist: %v", err)
			}
			if !d.IsValid() {
				t.Errorf("distribution %v is not valid", d)
			}
		})
	}
}

func TestDistAccessors(t *testing.T) {
	d := MustDist(
		Outcome[string]{Value: "a", Prob: NewRat(1, 4)},
		Outcome[string]{Value: "b", Prob: NewRat(3, 4)},
	)
	if got := d.Len(); got != 2 {
		t.Errorf("Len = %d, want 2", got)
	}
	if got := d.P("a"); !got.Equal(NewRat(1, 4)) {
		t.Errorf("P(a) = %v, want 1/4", got)
	}
	if got := d.P("missing"); !got.IsZero() {
		t.Errorf("P(missing) = %v, want 0", got)
	}
	if _, ok := d.IsPoint(); ok {
		t.Error("two-point distribution reported as point")
	}
	if v, ok := Point("only").IsPoint(); !ok || v != "only" {
		t.Errorf("Point.IsPoint = %q, %t", v, ok)
	}
	got := d.ProbOf(func(s string) bool { return s == "a" || s == "b" })
	if !got.IsOne() {
		t.Errorf("ProbOf(all) = %v, want 1", got)
	}
}

func TestUniform(t *testing.T) {
	d, err := Uniform(1, 2, 3, 4)
	if err != nil {
		t.Fatalf("Uniform: %v", err)
	}
	for _, v := range []int{1, 2, 3, 4} {
		if got := d.P(v); !got.Equal(NewRat(1, 4)) {
			t.Errorf("P(%d) = %v, want 1/4", v, got)
		}
	}
	if _, err := Uniform[int](); err == nil {
		t.Error("Uniform() on empty support succeeded")
	}
	if _, err := Uniform(1, 1); err == nil {
		t.Error("Uniform with duplicates succeeded")
	}
}

func TestFlipRat(t *testing.T) {
	d, err := FlipRat("h", NewRat(1, 3), "t")
	if err != nil {
		t.Fatalf("FlipRat: %v", err)
	}
	if got := d.P("t"); !got.Equal(NewRat(2, 3)) {
		t.Errorf("P(t) = %v, want 2/3", got)
	}
	if _, err := FlipRat("h", NewRat(3, 2), "t"); err == nil {
		t.Error("FlipRat with p > 1 succeeded")
	}
}

func TestMapDist(t *testing.T) {
	d := MustUniform(1, 2, 3, 4)
	even := MapDist(d, func(n int) bool { return n%2 == 0 })
	if got := even.P(true); !got.Equal(Half()) {
		t.Errorf("P(even) = %v, want 1/2", got)
	}
	if !even.IsValid() {
		t.Error("mapped distribution is invalid")
	}
}

func TestProduct(t *testing.T) {
	coin := MustUniform("h", "t")
	die := MustUniform(1, 2, 3)
	prod := Product(coin, die)
	if got := prod.Len(); got != 6 {
		t.Errorf("product support size = %d, want 6", got)
	}
	if got := prod.P(Pair[string, int]{First: "h", Second: 2}); !got.Equal(NewRat(1, 6)) {
		t.Errorf("P(h,2) = %v, want 1/6", got)
	}
	if !prod.IsValid() {
		t.Error("product distribution is invalid")
	}
}

func TestPick(t *testing.T) {
	d := MustDist(
		Outcome[string]{Value: "a", Prob: NewRat(1, 4)},
		Outcome[string]{Value: "b", Prob: NewRat(3, 4)},
	)
	tests := []struct {
		r    float64
		want string
	}{
		{r: 0.0, want: "a"},
		{r: 0.2, want: "a"},
		{r: 0.25, want: "b"},
		{r: 0.99, want: "b"},
	}
	for _, tt := range tests {
		if got := d.Pick(tt.r); got != tt.want {
			t.Errorf("Pick(%g) = %q, want %q", tt.r, got, tt.want)
		}
	}
}

func TestDistString(t *testing.T) {
	d := MustDist(
		Outcome[string]{Value: "b", Prob: Half()},
		Outcome[string]{Value: "a", Prob: Half()},
	)
	if got, want := d.String(), "{a:1/2, b:1/2}"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestDistProperties(t *testing.T) {
	t.Run("uniform over distinct ints is valid", func(t *testing.T) {
		f := func(vals []int16) bool {
			seen := map[int16]bool{}
			var distinct []int16
			for _, v := range vals {
				if !seen[v] {
					seen[v] = true
					distinct = append(distinct, v)
				}
			}
			if len(distinct) == 0 {
				return true
			}
			d, err := Uniform(distinct...)
			return err == nil && d.IsValid()
		}
		if err := quick.Check(f, nil); err != nil {
			t.Error(err)
		}
	})
	t.Run("MapDist preserves total mass", func(t *testing.T) {
		f := func(vals []int16) bool {
			seen := map[int16]bool{}
			var distinct []int16
			for _, v := range vals {
				if !seen[v] {
					seen[v] = true
					distinct = append(distinct, v)
				}
			}
			if len(distinct) == 0 {
				return true
			}
			d := MustUniform(distinct...)
			mapped := MapDist(d, func(v int16) int16 { return v / 3 })
			return mapped.IsValid()
		}
		if err := quick.Check(f, nil); err != nil {
			t.Error(err)
		}
	})
}
