// Package prob provides exact rational arithmetic and finite probability
// distributions, the numeric substrate for the probabilistic-automaton
// framework of Lynch, Saias and Segala (PODC 1994).
//
// All probabilities in the framework are exact rationals so that checked
// bounds such as "probability at least 1/8 within time 13" are reproduced
// without floating-point slack. Rat wraps math/big.Rat with immutable value
// semantics: every operation returns a fresh value and never mutates its
// operands, so Rat values may be freely shared, stored in maps and compared.
package prob

import (
	"fmt"
	"math/big"
)

// Rat is an immutable arbitrary-precision rational number.
//
// The zero value of Rat is the number 0 and is ready to use.
type Rat struct {
	// r is nil for zero; otherwise it is never mutated after creation.
	r *big.Rat
}

// Common constants. They are package-level for convenience; Rat is
// immutable, so sharing them is safe.
var (
	zeroRat = Rat{}
	oneRat  = NewRat(1, 1)
	halfRat = NewRat(1, 2)
)

// Zero returns the rational 0.
func Zero() Rat { return zeroRat }

// One returns the rational 1.
func One() Rat { return oneRat }

// Half returns the rational 1/2.
func Half() Rat { return halfRat }

// NewRat returns the rational num/den. It panics if den is zero; this is a
// programmer error on par with an out-of-range slice index.
func NewRat(num, den int64) Rat {
	if den == 0 {
		panic("prob: NewRat with zero denominator")
	}
	if num == 0 {
		return Rat{}
	}
	return Rat{r: big.NewRat(num, den)}
}

// FromInt returns the rational n/1.
func FromInt(n int64) Rat { return NewRat(n, 1) }

// FromBig returns a Rat equal to r. The argument is copied; later mutation
// of r does not affect the result. A nil argument yields 0.
func FromBig(r *big.Rat) Rat {
	if r == nil || r.Sign() == 0 {
		return Rat{}
	}
	return Rat{r: new(big.Rat).Set(r)}
}

// ParseRat parses a rational from a string such as "3/8", "1", "0.25" or
// "-7/2". It accepts every form accepted by big.Rat.SetString.
func ParseRat(s string) (Rat, error) {
	r, ok := new(big.Rat).SetString(s)
	if !ok {
		return Rat{}, fmt.Errorf("prob: cannot parse rational %q", s)
	}
	return FromBig(r), nil
}

// MustParseRat is like ParseRat but panics on malformed input. It is meant
// for constants in tests and examples.
func MustParseRat(s string) Rat {
	r, err := ParseRat(s)
	if err != nil {
		panic(err)
	}
	return r
}

// big returns the receiver as a *big.Rat that must not be mutated.
func (x Rat) big() *big.Rat {
	if x.r == nil {
		return new(big.Rat)
	}
	return x.r
}

// Big returns a copy of x as a *big.Rat. The caller owns the result.
func (x Rat) Big() *big.Rat { return new(big.Rat).Set(x.big()) }

// Add returns x + y.
func (x Rat) Add(y Rat) Rat {
	if x.r == nil {
		return y
	}
	if y.r == nil {
		return x
	}
	return FromBig(new(big.Rat).Add(x.r, y.r))
}

// Sub returns x - y.
func (x Rat) Sub(y Rat) Rat {
	if y.r == nil {
		return x
	}
	return FromBig(new(big.Rat).Sub(x.big(), y.r))
}

// Mul returns x * y.
func (x Rat) Mul(y Rat) Rat {
	if x.r == nil || y.r == nil {
		return Rat{}
	}
	return FromBig(new(big.Rat).Mul(x.r, y.r))
}

// Div returns x / y. It panics if y is zero, mirroring integer division.
func (x Rat) Div(y Rat) Rat {
	if y.r == nil {
		panic("prob: division by zero Rat")
	}
	if x.r == nil {
		return Rat{}
	}
	return FromBig(new(big.Rat).Quo(x.r, y.r))
}

// Neg returns -x.
func (x Rat) Neg() Rat {
	if x.r == nil {
		return Rat{}
	}
	return FromBig(new(big.Rat).Neg(x.r))
}

// Inv returns 1/x. It panics if x is zero.
func (x Rat) Inv() Rat {
	if x.r == nil {
		panic("prob: inverse of zero Rat")
	}
	return FromBig(new(big.Rat).Inv(x.r))
}

// Cmp compares x and y and returns -1, 0, or +1.
func (x Rat) Cmp(y Rat) int { return x.big().Cmp(y.big()) }

// Equal reports whether x == y as rational numbers.
func (x Rat) Equal(y Rat) bool { return x.Cmp(y) == 0 }

// Less reports whether x < y.
func (x Rat) Less(y Rat) bool { return x.Cmp(y) < 0 }

// LessEq reports whether x <= y.
func (x Rat) LessEq(y Rat) bool { return x.Cmp(y) <= 0 }

// Sign returns -1, 0, or +1 according to the sign of x.
func (x Rat) Sign() int {
	if x.r == nil {
		return 0
	}
	return x.r.Sign()
}

// IsZero reports whether x == 0.
func (x Rat) IsZero() bool { return x.Sign() == 0 }

// IsOne reports whether x == 1.
func (x Rat) IsOne() bool { return x.r != nil && x.r.Cmp(oneRat.r) == 0 }

// IsProbability reports whether 0 <= x <= 1.
func (x Rat) IsProbability() bool {
	return x.Sign() >= 0 && x.Cmp(oneRat) <= 0
}

// Min returns the smaller of x and y.
func (x Rat) Min(y Rat) Rat {
	if x.Cmp(y) <= 0 {
		return x
	}
	return y
}

// Max returns the larger of x and y.
func (x Rat) Max(y Rat) Rat {
	if x.Cmp(y) >= 0 {
		return x
	}
	return y
}

// Float64 returns the nearest float64 value to x.
func (x Rat) Float64() float64 {
	f, _ := x.big().Float64()
	return f
}

// String formats x as "num/den", or as "num" when the denominator is 1.
func (x Rat) String() string {
	return x.big().RatString()
}

// MarshalText implements encoding.TextMarshaler, emitting the canonical
// "num/den" form; together with UnmarshalText it makes Rat round-trip
// through JSON and other textual encodings without precision loss.
func (x Rat) MarshalText() ([]byte, error) {
	return []byte(x.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (x *Rat) UnmarshalText(text []byte) error {
	r, err := ParseRat(string(text))
	if err != nil {
		return err
	}
	*x = r
	return nil
}

// SumRats returns the sum of all arguments.
func SumRats(xs ...Rat) Rat {
	sum := new(big.Rat)
	for _, x := range xs {
		if x.r != nil {
			sum.Add(sum, x.r)
		}
	}
	return FromBig(sum)
}

// MinRats returns the minimum of its arguments. It panics when called with
// no arguments.
func MinRats(xs ...Rat) Rat {
	if len(xs) == 0 {
		panic("prob: MinRats of empty list")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		m = m.Min(x)
	}
	return m
}

// MaxRats returns the maximum of its arguments. It panics when called with
// no arguments.
func MaxRats(xs ...Rat) Rat {
	if len(xs) == 0 {
		panic("prob: MaxRats of empty list")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		m = m.Max(x)
	}
	return m
}

// ProdRats returns the product of all arguments, or 1 for no arguments.
func ProdRats(xs ...Rat) Rat {
	p := oneRat
	for _, x := range xs {
		if x.IsZero() {
			return Rat{}
		}
		p = p.Mul(x)
	}
	return p
}
