package prob_test

import (
	"fmt"

	"repro/internal/prob"
)

// Exact rational arithmetic keeps the paper's probabilities exact:
// (1/2)·(1/4) composes to 1/8 with no floating-point slack.
func ExampleRat() {
	half := prob.Half()
	quarter := prob.NewRat(1, 4)
	fmt.Println(half.Mul(quarter))
	fmt.Println(prob.One().Sub(prob.NewRat(2, 8)))
	// Output:
	// 1/8
	// 3/4
}

// Distributions validate exactly: weights must sum to one.
func ExampleNewDist() {
	d, err := prob.NewDist(
		prob.Outcome[string]{Value: "left", Prob: prob.Half()},
		prob.Outcome[string]{Value: "right", Prob: prob.Half()},
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(d.P("left"))

	_, err = prob.NewDist(prob.Outcome[string]{Value: "only", Prob: prob.Half()})
	fmt.Println(err != nil)
	// Output:
	// 1/2
	// true
}

// The Lehmann–Rabin expected-time recurrence as a geometric solve:
// E = 15/2 + (7/8)·E gives E = 60.
func ExampleSolveGeometric() {
	e, _ := prob.SolveGeometric(prob.NewRat(15, 2), prob.NewRat(7, 8))
	fmt.Println(e)
	// Output: 60
}
