package prob

import (
	"encoding/json"
	"math/big"
	"testing"
	"testing/quick"
)

func TestNewRat(t *testing.T) {
	tests := []struct {
		name     string
		num, den int64
		want     string
	}{
		{name: "simple", num: 1, den: 2, want: "1/2"},
		{name: "reduced", num: 2, den: 4, want: "1/2"},
		{name: "integer", num: 6, den: 3, want: "2"},
		{name: "zero", num: 0, den: 5, want: "0"},
		{name: "negative", num: -3, den: 9, want: "-1/3"},
		{name: "negative denominator", num: 1, den: -2, want: "-1/2"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := NewRat(tt.num, tt.den).String(); got != tt.want {
				t.Errorf("NewRat(%d, %d) = %s, want %s", tt.num, tt.den, got, tt.want)
			}
		})
	}
}

func TestNewRatZeroDenominatorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRat(1, 0) did not panic")
		}
	}()
	NewRat(1, 0)
}

func TestParseRat(t *testing.T) {
	tests := []struct {
		in      string
		want    string
		wantErr bool
	}{
		{in: "3/8", want: "3/8"},
		{in: "1", want: "1"},
		{in: "0.25", want: "1/4"},
		{in: "-7/2", want: "-7/2"},
		{in: "", wantErr: true},
		{in: "x/y", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.in, func(t *testing.T) {
			got, err := ParseRat(tt.in)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("ParseRat(%q) = %v, want error", tt.in, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseRat(%q): %v", tt.in, err)
			}
			if got.String() != tt.want {
				t.Errorf("ParseRat(%q) = %s, want %s", tt.in, got, tt.want)
			}
		})
	}
}

func TestRatArithmetic(t *testing.T) {
	tests := []struct {
		name string
		got  Rat
		want string
	}{
		{name: "add", got: NewRat(1, 2).Add(NewRat(1, 3)), want: "5/6"},
		{name: "add zero left", got: Zero().Add(NewRat(2, 7)), want: "2/7"},
		{name: "add zero right", got: NewRat(2, 7).Add(Zero()), want: "2/7"},
		{name: "sub", got: NewRat(1, 2).Sub(NewRat(1, 3)), want: "1/6"},
		{name: "sub to negative", got: NewRat(1, 3).Sub(NewRat(1, 2)), want: "-1/6"},
		{name: "mul", got: NewRat(2, 3).Mul(NewRat(3, 4)), want: "1/2"},
		{name: "mul by zero", got: NewRat(2, 3).Mul(Zero()), want: "0"},
		{name: "div", got: NewRat(1, 2).Div(NewRat(1, 4)), want: "2"},
		{name: "neg", got: NewRat(3, 5).Neg(), want: "-3/5"},
		{name: "neg zero", got: Zero().Neg(), want: "0"},
		{name: "inv", got: NewRat(3, 5).Inv(), want: "5/3"},
		{name: "min", got: NewRat(1, 2).Min(NewRat(1, 3)), want: "1/3"},
		{name: "max", got: NewRat(1, 2).Max(NewRat(1, 3)), want: "1/2"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.got.String(); got != tt.want {
				t.Errorf("got %s, want %s", got, tt.want)
			}
		})
	}
}

func TestRatDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero did not panic")
		}
	}()
	One().Div(Zero())
}

func TestRatInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv of zero did not panic")
		}
	}()
	Zero().Inv()
}

func TestRatPredicates(t *testing.T) {
	if !Zero().IsZero() {
		t.Error("Zero().IsZero() = false")
	}
	if !One().IsOne() {
		t.Error("One().IsOne() = false")
	}
	if Half().IsOne() || Half().IsZero() {
		t.Error("Half() misclassified")
	}
	for _, x := range []Rat{Zero(), Half(), One()} {
		if !x.IsProbability() {
			t.Errorf("%v.IsProbability() = false", x)
		}
	}
	for _, x := range []Rat{NewRat(-1, 2), NewRat(3, 2)} {
		if x.IsProbability() {
			t.Errorf("%v.IsProbability() = true", x)
		}
	}
}

func TestRatCmp(t *testing.T) {
	tests := []struct {
		a, b Rat
		want int
	}{
		{a: Zero(), b: Zero(), want: 0},
		{a: Zero(), b: One(), want: -1},
		{a: One(), b: Zero(), want: 1},
		{a: NewRat(2, 4), b: Half(), want: 0},
		{a: NewRat(-1, 2), b: Zero(), want: -1},
	}
	for _, tt := range tests {
		if got := tt.a.Cmp(tt.b); got != tt.want {
			t.Errorf("Cmp(%v, %v) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestAggregates(t *testing.T) {
	if got := SumRats(Half(), NewRat(1, 4), NewRat(1, 4)); !got.IsOne() {
		t.Errorf("SumRats = %v, want 1", got)
	}
	if got := SumRats(); !got.IsZero() {
		t.Errorf("SumRats() = %v, want 0", got)
	}
	if got := MinRats(Half(), NewRat(1, 8), One()); !got.Equal(NewRat(1, 8)) {
		t.Errorf("MinRats = %v, want 1/8", got)
	}
	if got := MaxRats(Half(), NewRat(1, 8), One()); !got.IsOne() {
		t.Errorf("MaxRats = %v, want 1", got)
	}
	if got := ProdRats(Half(), Half(), Half()); !got.Equal(NewRat(1, 8)) {
		t.Errorf("ProdRats = %v, want 1/8", got)
	}
	if got := ProdRats(); !got.IsOne() {
		t.Errorf("ProdRats() = %v, want 1", got)
	}
}

func TestFromBigCopies(t *testing.T) {
	src := big.NewRat(1, 3)
	r := FromBig(src)
	src.SetInt64(7)
	if got := r.String(); got != "1/3" {
		t.Errorf("FromBig aliased its argument: got %s, want 1/3", got)
	}
}

func TestRatTextRoundTrip(t *testing.T) {
	type payload struct {
		P Rat `json:"p"`
	}
	in := payload{P: NewRat(15, 16)}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"p":"15/16"}` {
		t.Errorf("marshal = %s", data)
	}
	var out payload
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !out.P.Equal(in.P) {
		t.Errorf("round-trip = %v", out.P)
	}
	if err := json.Unmarshal([]byte(`{"p":"x/y"}`), &out); err == nil {
		t.Error("malformed rational accepted")
	}

	// Zero value marshals as "0".
	zeroData, err := json.Marshal(payload{})
	if err != nil {
		t.Fatal(err)
	}
	if string(zeroData) != `{"p":"0"}` {
		t.Errorf("zero marshal = %s", zeroData)
	}
}

// ratFromPair builds a bounded random rational from two int32 values,
// keeping testing/quick inputs well away from overflow concerns.
func ratFromPair(num int32, den int32) Rat {
	d := int64(den)
	if d == 0 {
		d = 1
	}
	if d < 0 {
		d = -d
	}
	return NewRat(int64(num), d)
}

func TestRatProperties(t *testing.T) {
	t.Run("add commutes", func(t *testing.T) {
		f := func(a1, a2, b1, b2 int32) bool {
			x, y := ratFromPair(a1, a2), ratFromPair(b1, b2)
			return x.Add(y).Equal(y.Add(x))
		}
		if err := quick.Check(f, nil); err != nil {
			t.Error(err)
		}
	})
	t.Run("mul distributes over add", func(t *testing.T) {
		f := func(a1, a2, b1, b2, c1, c2 int32) bool {
			x, y, z := ratFromPair(a1, a2), ratFromPair(b1, b2), ratFromPair(c1, c2)
			return x.Mul(y.Add(z)).Equal(x.Mul(y).Add(x.Mul(z)))
		}
		if err := quick.Check(f, nil); err != nil {
			t.Error(err)
		}
	})
	t.Run("sub then add round-trips", func(t *testing.T) {
		f := func(a1, a2, b1, b2 int32) bool {
			x, y := ratFromPair(a1, a2), ratFromPair(b1, b2)
			return x.Sub(y).Add(y).Equal(x)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Error(err)
		}
	})
	t.Run("operations do not mutate operands", func(t *testing.T) {
		f := func(a1, a2, b1, b2 int32) bool {
			x, y := ratFromPair(a1, a2), ratFromPair(b1, b2)
			xs, ys := x.String(), y.String()
			_ = x.Add(y)
			_ = x.Mul(y)
			_ = x.Sub(y)
			return x.String() == xs && y.String() == ys
		}
		if err := quick.Check(f, nil); err != nil {
			t.Error(err)
		}
	})
	t.Run("min max order", func(t *testing.T) {
		f := func(a1, a2, b1, b2 int32) bool {
			x, y := ratFromPair(a1, a2), ratFromPair(b1, b2)
			return x.Min(y).LessEq(x.Max(y))
		}
		if err := quick.Check(f, nil); err != nil {
			t.Error(err)
		}
	})
}
