package prob

import (
	"math/rand"
	"testing"
)

// TestFrozenBitIdentical is the bit-identity property behind the compiled
// simulation engine: Frozen.Pick must return exactly what Dist.Pick
// returns for every r, including draws that land on accumulated-rounding
// boundaries.
func TestFrozenBitIdentical(t *testing.T) {
	dists := []Dist[int]{
		Point(7),
		MustUniform(1, 2, 3),
		MustUniform(0, 1, 2, 3, 4, 5, 6),
		MustDist(
			Outcome[int]{Value: 10, Prob: NewRat(1, 3)},
			Outcome[int]{Value: 20, Prob: NewRat(1, 6)},
			Outcome[int]{Value: 30, Prob: NewRat(1, 2)},
		),
		// Weights whose float64 conversions do not sum to exactly 1, so
		// the fallback branch is reachable for r near 1.
		MustDist(
			Outcome[int]{Value: 1, Prob: NewRat(1, 7)},
			Outcome[int]{Value: 2, Prob: NewRat(2, 7)},
			Outcome[int]{Value: 3, Prob: NewRat(4, 7)},
		),
	}
	rng := rand.New(rand.NewSource(42))
	for di, d := range dists {
		f := Freeze(d)
		if f.Len() != d.Len() {
			t.Fatalf("dist %d: frozen len %d != dist len %d", di, f.Len(), d.Len())
		}
		for i := 0; i < 20000; i++ {
			r := rng.Float64()
			if got, want := f.Pick(r), d.Pick(r); got != want {
				t.Fatalf("dist %d: Pick(%v) = %v, want %v", di, r, got, want)
			}
		}
		// Boundary draws: exactly the cumulative weights, their
		// neighbours, and the edges of [0, 1).
		for _, v := range d.Support() {
			acc := 0.0
			for _, w := range d.Support() {
				acc += d.P(w).Float64()
				if w == v {
					break
				}
			}
			for _, r := range []float64{0, acc, nextAfterDown(acc), 0.9999999999999999} {
				if r < 0 || r >= 1 {
					continue
				}
				if got, want := f.Pick(r), d.Pick(r); got != want {
					t.Fatalf("dist %d: boundary Pick(%v) = %v, want %v", di, r, got, want)
				}
			}
		}
	}
}

func nextAfterDown(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return x * (1 - 1e-16)
}

func TestFrozenEmptyPanicsLikeDist(t *testing.T) {
	var d Dist[int]
	var f Frozen[int]
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s on empty distribution did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("Dist.Pick", func() { d.Pick(0.5) })
	mustPanic("Frozen.Pick", func() { f.Pick(0.5) })
	mustPanic("Freeze().Pick", func() { Freeze(d).Pick(0.5) })
}

func TestFrozenPoint(t *testing.T) {
	f := Freeze(Point("x"))
	for _, r := range []float64{0, 0.5, 0.9999999999999999} {
		if got := f.Pick(r); got != "x" {
			t.Errorf("Pick(%v) = %q on a point distribution", r, got)
		}
	}
}
