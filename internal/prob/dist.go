package prob

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrNotADistribution is returned when weights are negative or do not sum
// to one.
var ErrNotADistribution = errors.New("prob: weights do not form a probability distribution")

// Dist is a finite discrete probability distribution over values of type T.
// It corresponds to the probability spaces (Ω, F, P) of Definition 2.1 of
// the paper, where Ω is finite and F = 2^Ω.
//
// A Dist is immutable after construction. The zero value is an empty
// distribution, which is not a valid probability space; distributions are
// built with NewDist, Point, Uniform or Weighted.
type Dist[T comparable] struct {
	support []T
	weight  map[T]Rat
}

// Outcome pairs a value with its probability.
type Outcome[T comparable] struct {
	Value T
	Prob  Rat
}

// NewDist builds a distribution from explicit outcomes. Outcomes with zero
// probability are dropped; duplicate values have their probabilities added.
// It returns ErrNotADistribution when any weight is negative or the total
// is not exactly one.
func NewDist[T comparable](outcomes ...Outcome[T]) (Dist[T], error) {
	d := Dist[T]{weight: make(map[T]Rat, len(outcomes))}
	total := Zero()
	for _, o := range outcomes {
		if o.Prob.Sign() < 0 {
			return Dist[T]{}, fmt.Errorf("%w: negative weight %v", ErrNotADistribution, o.Prob)
		}
		if o.Prob.IsZero() {
			continue
		}
		if _, seen := d.weight[o.Value]; !seen {
			d.support = append(d.support, o.Value)
		}
		d.weight[o.Value] = d.weight[o.Value].Add(o.Prob)
		total = total.Add(o.Prob)
	}
	if !total.IsOne() {
		return Dist[T]{}, fmt.Errorf("%w: total weight %v", ErrNotADistribution, total)
	}
	return d, nil
}

// MustDist is like NewDist but panics on invalid input. It is meant for
// statically-known distributions in models, tests and examples.
func MustDist[T comparable](outcomes ...Outcome[T]) Dist[T] {
	d, err := NewDist(outcomes...)
	if err != nil {
		panic(err)
	}
	return d
}

// Point returns the Dirac distribution concentrated on v.
func Point[T comparable](v T) Dist[T] {
	return Dist[T]{
		support: []T{v},
		weight:  map[T]Rat{v: One()},
	}
}

// Uniform returns the uniform distribution over the given values. The
// values must be distinct and nonempty; otherwise an error is returned.
func Uniform[T comparable](values ...T) (Dist[T], error) {
	if len(values) == 0 {
		return Dist[T]{}, fmt.Errorf("%w: empty support", ErrNotADistribution)
	}
	p := One().Div(FromInt(int64(len(values))))
	outcomes := make([]Outcome[T], 0, len(values))
	seen := make(map[T]bool, len(values))
	for _, v := range values {
		if seen[v] {
			return Dist[T]{}, fmt.Errorf("prob: Uniform with duplicate value %v", v)
		}
		seen[v] = true
		outcomes = append(outcomes, Outcome[T]{Value: v, Prob: p})
	}
	return NewDist(outcomes...)
}

// MustUniform is like Uniform but panics on invalid input.
func MustUniform[T comparable](values ...T) Dist[T] {
	d, err := Uniform(values...)
	if err != nil {
		panic(err)
	}
	return d
}

// FlipRat returns the two-point distribution assigning p to heads and 1-p
// to tails.
func FlipRat[T comparable](heads T, p Rat, tails T) (Dist[T], error) {
	return NewDist(
		Outcome[T]{Value: heads, Prob: p},
		Outcome[T]{Value: tails, Prob: One().Sub(p)},
	)
}

// Support returns the support of d in insertion order. The caller must not
// modify the returned slice.
func (d Dist[T]) Support() []T { return d.support }

// Len returns the size of the support.
func (d Dist[T]) Len() int { return len(d.support) }

// IsValid reports whether d is a well-formed distribution (nonempty support
// summing to one). The zero Dist is not valid.
func (d Dist[T]) IsValid() bool {
	if len(d.support) == 0 {
		return false
	}
	total := Zero()
	for _, v := range d.support {
		w := d.weight[v]
		if w.Sign() <= 0 {
			return false
		}
		total = total.Add(w)
	}
	return total.IsOne()
}

// P returns the probability of v, which is zero when v is outside the
// support.
func (d Dist[T]) P(v T) Rat { return d.weight[v] }

// IsPoint reports whether d is a Dirac distribution, and if so on which
// value.
func (d Dist[T]) IsPoint() (T, bool) {
	if len(d.support) == 1 {
		return d.support[0], true
	}
	var zero T
	return zero, false
}

// ProbOf returns the total probability of the event described by the
// predicate, i.e. P[{v : pred(v)}].
func (d Dist[T]) ProbOf(pred func(T) bool) Rat {
	total := Zero()
	for _, v := range d.support {
		if pred(v) {
			total = total.Add(d.weight[v])
		}
	}
	return total
}

// Outcomes returns all outcomes of d in support order.
func (d Dist[T]) Outcomes() []Outcome[T] {
	out := make([]Outcome[T], len(d.support))
	for i, v := range d.support {
		out[i] = Outcome[T]{Value: v, Prob: d.weight[v]}
	}
	return out
}

// Map applies f to every value in the support, merging values that f
// identifies. The result is always a valid distribution when d is.
func MapDist[T, U comparable](d Dist[T], f func(T) U) Dist[U] {
	out := Dist[U]{weight: make(map[U]Rat, len(d.support))}
	for _, v := range d.support {
		u := f(v)
		if _, seen := out.weight[u]; !seen {
			out.support = append(out.support, u)
		}
		out.weight[u] = out.weight[u].Add(d.weight[v])
	}
	return out
}

// Product returns the independent product distribution of a and b.
func Product[T, U comparable](a Dist[T], b Dist[U]) Dist[Pair[T, U]] {
	out := Dist[Pair[T, U]]{weight: make(map[Pair[T, U]]Rat, len(a.support)*len(b.support))}
	for _, v := range a.support {
		for _, w := range b.support {
			pair := Pair[T, U]{First: v, Second: w}
			out.support = append(out.support, pair)
			out.weight[pair] = a.weight[v].Mul(b.weight[w])
		}
	}
	return out
}

// Pair is an ordered pair, used by Product.
type Pair[T, U comparable] struct {
	First  T
	Second U
}

// Pick selects an outcome of d using r, a number in [0, 1), by walking the
// support in order and accumulating weights. It is the bridge between the
// exact framework and Monte Carlo simulation: callers draw r from their own
// random source.
func (d Dist[T]) Pick(r float64) T {
	if len(d.support) == 0 {
		panic("prob: Pick on empty distribution")
	}
	acc := 0.0
	for _, v := range d.support {
		acc += d.weight[v].Float64()
		if r < acc {
			return v
		}
	}
	return d.support[len(d.support)-1]
}

// String formats the distribution as "{v1:p1, v2:p2, ...}" with values
// ordered by their formatted representation, so the output is stable across
// runs for any comparable type.
func (d Dist[T]) String() string {
	parts := make([]string, len(d.support))
	for i, v := range d.support {
		parts[i] = fmt.Sprintf("%v:%v", v, d.weight[v])
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ", ") + "}"
}
