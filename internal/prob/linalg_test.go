package prob

import (
	"errors"
	"testing"
)

func TestSolveLinear(t *testing.T) {
	tests := []struct {
		name string
		a    [][]Rat
		b    []Rat
		want []string
	}{
		{
			name: "identity",
			a: [][]Rat{
				{One(), Zero()},
				{Zero(), One()},
			},
			b:    []Rat{NewRat(3, 7), NewRat(-1, 2)},
			want: []string{"3/7", "-1/2"},
		},
		{
			name: "2x2",
			a: [][]Rat{
				{FromInt(2), FromInt(1)},
				{FromInt(1), FromInt(3)},
			},
			b:    []Rat{FromInt(5), FromInt(10)},
			want: []string{"1", "3"},
		},
		{
			name: "needs pivoting",
			a: [][]Rat{
				{Zero(), One()},
				{One(), Zero()},
			},
			b:    []Rat{FromInt(4), FromInt(9)},
			want: []string{"9", "4"},
		},
		{
			name: "lehmann-rabin recurrence as a system",
			// E = 1/8*10 + 1/2*(5+E) + 3/8*(10+E), i.e. (1/8)E = 15/2.
			a:    [][]Rat{{NewRat(1, 8)}},
			b:    []Rat{NewRat(15, 2)},
			want: []string{"60"},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := SolveLinear(tt.a, tt.b)
			if err != nil {
				t.Fatalf("SolveLinear: %v", err)
			}
			if len(got) != len(tt.want) {
				t.Fatalf("got %d solutions, want %d", len(got), len(tt.want))
			}
			for i := range got {
				if got[i].String() != tt.want[i] {
					t.Errorf("x[%d] = %s, want %s", i, got[i], tt.want[i])
				}
			}
		})
	}
}

func TestSolveLinearErrors(t *testing.T) {
	t.Run("singular", func(t *testing.T) {
		a := [][]Rat{
			{One(), One()},
			{FromInt(2), FromInt(2)},
		}
		if _, err := SolveLinear(a, []Rat{One(), FromInt(2)}); !errors.Is(err, ErrSingular) {
			t.Errorf("err = %v, want ErrSingular", err)
		}
	})
	t.Run("shape mismatch", func(t *testing.T) {
		if _, err := SolveLinear([][]Rat{{One()}}, []Rat{One(), One()}); err == nil {
			t.Error("shape mismatch accepted")
		}
		if _, err := SolveLinear([][]Rat{{One(), One()}, {One(), One()}}, []Rat{One()}); err == nil {
			t.Error("row length mismatch accepted")
		}
	})
}

func TestSolveLinearDoesNotMutate(t *testing.T) {
	a := [][]Rat{
		{FromInt(2), FromInt(1)},
		{FromInt(1), FromInt(3)},
	}
	b := []Rat{FromInt(5), FromInt(10)}
	if _, err := SolveLinear(a, b); err != nil {
		t.Fatalf("SolveLinear: %v", err)
	}
	if !a[0][0].Equal(FromInt(2)) || !b[1].Equal(FromInt(10)) {
		t.Error("SolveLinear mutated its arguments")
	}
}

func TestSolveGeometric(t *testing.T) {
	tests := []struct {
		name        string
		base, coeff Rat
		want        string
		wantErr     bool
	}{
		{name: "lehmann-rabin E[V]", base: NewRat(15, 2), coeff: NewRat(7, 8), want: "60"},
		{name: "no retry", base: FromInt(10), coeff: Zero(), want: "10"},
		{name: "diverges", base: One(), coeff: One(), wantErr: true},
		{name: "coeff above one", base: One(), coeff: FromInt(2), wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := SolveGeometric(tt.base, tt.coeff)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("SolveGeometric = %v, want error", got)
				}
				return
			}
			if err != nil {
				t.Fatalf("SolveGeometric: %v", err)
			}
			if got.String() != tt.want {
				t.Errorf("SolveGeometric = %s, want %s", got, tt.want)
			}
		})
	}
}
