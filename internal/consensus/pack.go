package consensus

import "repro/internal/sched"

// Field widths of the packed consensus state. A State is ~136 bytes of
// struct — far past the 32 bytes of a sched.Packed — but its fields are
// all tiny enumerations, so it bit-packs into 224 bits:
//
//	word 0:  n(3) f(3) crashes(3) then 5 procs × 11 bits
//	         (Phase 3, Round 3, Value 1, Prop 2, Decided 1, Crashed 1)
//	words 1–3: reports then props boards, 2 bits per slot,
//	         (MaxRounds × MaxProcs) slots each
//
// Injectivity rests on the field ranges the model maintains on every
// reachable state: n, f, crashes ≤ MaxProcs = 5; Phase ≤ Stopped = 6;
// Round < MaxRounds = 8 (advance stops at the cap without
// incrementing); Value and Decided are binary; Prop and the board slots
// are slot values ≤ slotAbstain = 3. The constants below fail the build
// if a widened model outgrows its bit budget, and the trajectory-walk
// test in pack_test.go checks for collisions on live runs.
const (
	procBits  = 11
	headerEnd = 9 // n, f, crashes

	// Compile-time range guards: each expression underflows (a negative
	// untyped constant converted to uint) when the quantity it tracks
	// outgrows the packed layout.
	_ = uint(7 - (MaxRounds - 1))                  // Round fits 3 bits
	_ = uint(7 - uint8(Stopped))                   // Phase fits 3 bits
	_ = uint(3 - slotAbstain)                      // slots fit 2 bits
	_ = uint(7 - MaxProcs)                         // n, f, crashes fit 3 bits
	_ = uint(64 - (headerEnd + procBits*MaxProcs)) // word 0 holds the procs
	_ = uint(192 - (2 * 2 * MaxRounds * MaxProcs)) // words 1–3 hold both boards
)

// PackState implements sched.Packer; see the layout above.
func (m *Model) PackState(s State) sched.Packed {
	var p sched.Packed
	w0 := uint64(s.n) | uint64(s.f)<<3 | uint64(s.crashes)<<6
	off := headerEnd
	for i := 0; i < MaxProcs; i++ {
		pr := s.procs[i]
		bits := uint64(pr.Phase) | uint64(pr.Round)<<3 | uint64(pr.Value)<<6 |
			uint64(pr.Prop)<<7 | uint64(pr.Decided)<<9
		if pr.Crashed {
			bits |= 1 << 10
		}
		w0 |= bits << off
		off += procBits
	}
	p[0] = w0

	// Board slots stream 2 bits at a time through words 1–3; bit offsets
	// stay even, so no slot ever straddles a word boundary.
	bit := 0
	for r := 0; r < MaxRounds; r++ {
		for i := 0; i < MaxProcs; i++ {
			p[1+bit/64] |= uint64(s.reports[r][i]) << (bit % 64)
			bit += 2
		}
	}
	for r := 0; r < MaxRounds; r++ {
		for i := 0; i < MaxProcs; i++ {
			p[1+bit/64] |= uint64(s.props[r][i]) << (bit % 64)
			bit += 2
		}
	}
	return p
}

var _ sched.Packer[State] = (*Model)(nil)
