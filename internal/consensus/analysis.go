package consensus

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/prob"
	"repro/internal/sim"
	"repro/internal/stats"
)

// The consensus case study lives beyond exact-checking reach (rounds make
// the state space unbounded), so its arrow-style claims are tested with
// Monte Carlo estimates and Hoeffding lower bounds: a claim
// "Start --t,p--> AllDecided" is supported at confidence 1-delta when the
// Hoeffding lower confidence bound of the estimated probability is at
// least p. This mirrors how the paper's statements would be validated on
// systems too large to enumerate.

// Claim is an arrow-style statement about the consensus protocol,
// estimated by simulation.
type Claim struct {
	// Inputs is the initial value vector.
	Inputs []uint8
	// Within is the time bound t.
	Within float64
	// Prob is the claimed lower bound p.
	Prob prob.Rat
}

// String renders the claim in arrow style.
func (c Claim) String() string {
	return fmt.Sprintf("Start%v --%g,%v--> AllCorrectDecided", c.Inputs, c.Within, c.Prob)
}

// Evidence is the Monte Carlo outcome for a claim.
type Evidence struct {
	Claim Claim
	// Estimate is the proportion of runs deciding within the bound.
	Estimate stats.Proportion
	// HoeffdingLo is the lower confidence bound at the given delta.
	HoeffdingLo float64
	Delta       float64
	// Supported reports HoeffdingLo >= Prob.
	Supported bool
	// AgreementViolations and ValidityViolations count safety failures
	// observed across all runs (must be zero).
	AgreementViolations int
	ValidityViolations  int
}

// String renders the evidence as one report line.
func (e Evidence) String() string {
	verdict := "SUPPORTED"
	if !e.Supported {
		verdict = "UNSUPPORTED"
	}
	return fmt.Sprintf("%s  %s: estimate %s, Hoeffding lower %.4f at δ=%g",
		verdict, e.Claim, e.Estimate.String(), e.HoeffdingLo, e.Delta)
}

// TestClaim runs trials independent adversarial schedules and gathers the
// evidence for the claim. The policy factory supplies the adversary; nil
// means a random scheduler with random early crashes.
//
// Cancelling ctx stops between trials and returns the Evidence gathered
// so far together with an error wrapping sim.ErrInterrupted, so a partial
// sweep still yields its (weaker) Hoeffding bound over the trials that
// did run.
func TestClaim(ctx context.Context, m *Model, c Claim, mk func() sim.Policy[State], trials int, delta float64, rng *rand.Rand) (Evidence, error) {
	ev := Evidence{Claim: c, Delta: delta}
	if ctx == nil {
		ctx = context.Background()
	}
	if mk == nil {
		mk = func() sim.Policy[State] { return RandomCrashes(sim.Random[State](0), 0.05) }
	}
	start, err := m.StartWith(c.Inputs)
	if err != nil {
		return ev, err
	}
	unanimous, unanimousVal := isUnanimous(c.Inputs)

	for trial := 0; trial < trials; trial++ {
		if ctx.Err() != nil {
			return finishEvidence(ev, c, delta,
				fmt.Errorf("%w after %d/%d consensus trials: %v", sim.ErrInterrupted, trial, trials, context.Cause(ctx)))
		}
		res, err := sim.RunOnce[State](m, mk(), State.AllCorrectDecided, sim.Options[State]{
			Start:     start,
			SetStart:  true,
			MaxEvents: 20000,
			MaxTime:   c.Within + 1,
		}, rng)
		if err != nil {
			return ev, fmt.Errorf("consensus: trial %d: %w", trial, err)
		}
		if !res.Final.AgreementHolds() {
			ev.AgreementViolations++
		}
		if unanimous {
			for i := 0; i < m.n; i++ {
				if v, ok := res.Final.Decided(i); ok && v != unanimousVal {
					ev.ValidityViolations++
				}
			}
		}
		ev.Estimate.Observe(res.Reached && res.ReachedAt <= c.Within)
	}

	return finishEvidence(ev, c, delta, nil)
}

// finishEvidence computes the Hoeffding bound and verdict over however
// many trials Observe saw, passing runErr (e.g. an interruption) through.
// With zero completed trials the bound is left at its zero value and the
// claim stays unsupported.
func finishEvidence(ev Evidence, c Claim, delta float64, runErr error) (Evidence, error) {
	if ev.Estimate.Trials == 0 {
		return ev, runErr
	}
	lo, err := ev.Estimate.HoeffdingLower(delta)
	if err != nil {
		return ev, err
	}
	ev.HoeffdingLo = lo
	ev.Supported = lo >= c.Prob.Float64() && ev.AgreementViolations == 0 && ev.ValidityViolations == 0
	return ev, runErr
}

func isUnanimous(inputs []uint8) (bool, uint8) {
	for _, v := range inputs[1:] {
		if v != inputs[0] {
			return false, 0
		}
	}
	return true, inputs[0]
}

// RandomCrashes wraps a scheduling policy with adversarial crash
// injection: while budget remains, each decision point crashes a random
// live process with the given probability.
func RandomCrashes(inner sim.Policy[State], pCrash float64) sim.Policy[State] {
	return sim.PolicyFunc[State](func(v *sim.View[State], rng *rand.Rand) (sim.Choice, bool) {
		if len(v.UserMovers) > 0 && rng.Float64() < pCrash {
			return sim.Choice{Proc: v.UserMovers[rng.Intn(len(v.UserMovers))], User: true, At: v.Now}, true
		}
		return inner.Choose(v, rng)
	})
}

// CrashLastReporter is a targeted adversary: it crashes the process whose
// report would complete unanimity visibility, maximizing abstains — the
// crash-timing attack Ben-Or is designed to survive.
func CrashLastReporter(inner sim.Policy[State]) sim.Policy[State] {
	return sim.PolicyFunc[State](func(v *sim.View[State], rng *rand.Rand) (sim.Choice, bool) {
		s := v.State
		if len(v.UserMovers) > 0 {
			// Find a process about to post the last missing report of its
			// round and crash it instead.
			for _, i := range v.Ready {
				p := s.Proc(i)
				if p.Phase != PostReport {
					continue
				}
				posted, _, _ := countSlots(s, &s.reports[p.Round], s.N())
				if posted == s.N()-1 && canCrash(v, i) {
					return sim.Choice{Proc: i, User: true, At: v.Now}, true
				}
			}
		}
		return inner.Choose(v, rng)
	})
}

func canCrash(v *sim.View[State], proc int) bool {
	for _, j := range v.UserMovers {
		if j == proc {
			return true
		}
	}
	return false
}
