package consensus

import (
	"math/rand"
	"testing"

	"repro/internal/pa"
	"repro/internal/sched"
)

// TestPackStateInjective random-walks Ben-Or (algorithm moves, crash
// user moves, random coin outcomes) and checks that no two distinct
// visited states share a packed encoding.
func TestPackStateInjective(t *testing.T) {
	cases := []struct{ n, f, minStates int }{{2, 0, 500}, {3, 1, 1000}, {5, 2, 1000}}
	for _, tc := range cases {
		m := MustNew(tc.n, tc.f)
		rng := rand.New(rand.NewSource(int64(tc.n)))
		seen := map[sched.Packed]State{}
		check := func(s State) {
			p := m.PackState(s)
			if prev, ok := seen[p]; ok {
				if prev != s {
					t.Fatalf("n=%d f=%d: states %v and %v pack to the same %v", tc.n, tc.f, prev, s, p)
				}
				return
			}
			seen[p] = s
		}
		for trial := 0; trial < 150; trial++ {
			s := m.Start()[0]
			check(s)
			for step := 0; step < 400; step++ {
				var steps []pa.Step[State]
				for i := 0; i < tc.n; i++ {
					steps = append(steps, m.Moves(s, i)...)
					// Crashes make runs shorter; inject them rarely so
					// the walk still reaches deep rounds.
					if rng.Intn(20) == 0 {
						steps = append(steps, m.UserMoves(s, i)...)
					}
				}
				if len(steps) == 0 {
					break
				}
				next := steps[rng.Intn(len(steps))].Next
				sup := next.Support()
				s = sup[rng.Intn(len(sup))]
				check(s)
			}
		}
		if len(seen) < tc.minStates {
			t.Fatalf("n=%d f=%d: walk visited only %d states; the test lost its teeth", tc.n, tc.f, len(seen))
		}
	}
}

// TestPackStateInjectiveFullRange samples random states across the full
// declared range of every field — Phase up to Stopped, Round up to
// MaxRounds-1, all slot values — and checks injectivity of the packing
// there. Random walks rarely survive to the round cap, so this sweep is
// what pins the high end of the Round and Phase ranges.
func TestPackStateInjectiveFullRange(t *testing.T) {
	m := MustNew(5, 2)
	rng := rand.New(rand.NewSource(7))
	seen := map[sched.Packed]State{}
	for trial := 0; trial < 50000; trial++ {
		var s State
		s.n = uint8(1 + rng.Intn(MaxProcs))
		s.f = uint8(rng.Intn(MaxProcs + 1))
		s.crashes = uint8(rng.Intn(MaxProcs + 1))
		for i := 0; i < MaxProcs; i++ {
			s.procs[i] = Proc{
				Phase:   Phase(rng.Intn(int(Stopped) + 1)),
				Round:   uint8(rng.Intn(MaxRounds)),
				Value:   uint8(rng.Intn(2)),
				Prop:    uint8(rng.Intn(4)),
				Decided: uint8(rng.Intn(2)),
				Crashed: rng.Intn(2) == 1,
			}
		}
		for r := 0; r < MaxRounds; r++ {
			for i := 0; i < MaxProcs; i++ {
				s.reports[r][i] = uint8(rng.Intn(4))
				s.props[r][i] = uint8(rng.Intn(4))
			}
		}
		p := m.PackState(s)
		if prev, ok := seen[p]; ok && prev != s {
			t.Fatalf("states %v and %v pack to the same %v", prev, s, p)
		}
		seen[p] = s
	}
}
