// Package consensus implements Ben-Or-style randomized binary consensus,
// the kind of algorithm the paper's introduction motivates (randomization
// solving problems that are unsolvable deterministically — here,
// asynchronous agreement despite crash faults).
//
// The model is the classic two-phase shared-memory variant. Each round r
// has a report board and a proposal board. An undecided process posts its
// current value to the report board of its round, waits until at least
// n-f reports are visible, and computes a proposal: the value it saw in
// strict majority, or "abstain". It posts the proposal, waits for n-f
// proposals, and then: decides v if it saw at least f+1 proposals for v;
// adopts v if it saw at least one; otherwise flips a fair coin. The
// adversary schedules everything (Unit-Time applies to enabled steps),
// orders posts against reads — so different processes genuinely see
// different snapshots — and may crash up to f processes at any moment.
//
// The state space is unbounded in the round number, so this case study is
// exercised through the dense-time Monte Carlo engine (package sim)
// rather than the exact checker; rounds are capped at MaxRounds per run
// and the cap is reported when hit. Agreement and validity are checked as
// invariants on every visited state; termination time is estimated
// against arrow-style claims with Hoeffding confidence bounds.
package consensus

import (
	"fmt"
	"strings"

	"repro/internal/pa"
	"repro/internal/prob"
	"repro/internal/sched"
)

// MaxProcs bounds the ring size (state arrays are fixed-size to keep
// states comparable).
const MaxProcs = 5

// MaxRounds caps the rounds tracked per run.
const MaxRounds = 8

// Phase is a process's position within its round.
type Phase uint8

// Phases, in round order.
const (
	// PostReport: about to post the value to the report board.
	PostReport Phase = iota
	// AwaitReports: waiting to read n-f reports.
	AwaitReports
	// PostProposal: about to post the computed proposal.
	PostProposal
	// AwaitProposals: waiting to read n-f proposals.
	AwaitProposals
	// Flip: no proposal seen; about to flip the coin for the next round.
	Flip
	// Done: decided.
	Done
	// Stopped: round cap reached without deciding.
	Stopped
)

// Slot values on the boards.
const (
	slotEmpty   uint8 = 0
	slotZero    uint8 = 1
	slotOne     uint8 = 2
	slotAbstain uint8 = 3
)

// Proc is one process's local state.
type Proc struct {
	Phase   Phase
	Round   uint8
	Value   uint8 // current binary value (0 or 1)
	Prop    uint8 // proposal computed at read time (a slot value)
	Decided uint8 // decided value, meaningful when Phase == Done
	Crashed bool
}

// State is a global protocol state.
type State struct {
	n, f    uint8
	crashes uint8 // crashes already injected by the adversary
	procs   [MaxProcs]Proc
	reports [MaxRounds][MaxProcs]uint8
	props   [MaxRounds][MaxProcs]uint8
}

// N returns the number of processes; F the crash budget.
func (s State) N() int { return int(s.n) }

// F returns the crash budget.
func (s State) F() int { return int(s.f) }

// Proc returns process i's local state.
func (s State) Proc(i int) Proc { return s.procs[i] }

// Decided reports whether process i has decided, and on what.
func (s State) Decided(i int) (uint8, bool) {
	p := s.procs[i]
	return p.Decided, p.Phase == Done
}

// AllCorrectDecided reports whether every non-crashed process has decided.
func (s State) AllCorrectDecided() bool {
	for i := 0; i < s.N(); i++ {
		p := s.procs[i]
		if !p.Crashed && p.Phase != Done {
			return false
		}
	}
	return true
}

// AgreementHolds reports that no two processes decided differently.
func (s State) AgreementHolds() bool {
	seen := -1
	for i := 0; i < s.N(); i++ {
		if v, ok := s.Decided(i); ok {
			if seen >= 0 && int(v) != seen {
				return false
			}
			seen = int(v)
		}
	}
	return true
}

// Stalled reports whether some process hit the round cap.
func (s State) Stalled() bool {
	for i := 0; i < s.N(); i++ {
		if s.procs[i].Phase == Stopped {
			return true
		}
	}
	return false
}

// String renders the state compactly, e.g. "[r1:AwaitP v=1 | D0 | X]".
func (s State) String() string {
	parts := make([]string, s.N())
	for i := range parts {
		p := s.procs[i]
		switch {
		case p.Crashed:
			parts[i] = "X"
		case p.Phase == Done:
			parts[i] = fmt.Sprintf("D%d", p.Decided)
		case p.Phase == Stopped:
			parts[i] = "stop"
		default:
			parts[i] = fmt.Sprintf("r%d:%d v=%d", p.Round, p.Phase, p.Value)
		}
	}
	return "[" + strings.Join(parts, " | ") + "]"
}

// Model is the protocol as a sched.Model.
type Model struct {
	n, f int
}

var _ sched.Model[State] = (*Model)(nil)

// New returns the n-process model tolerating f crashes; Ben-Or requires
// n > 2f.
func New(n, f int) (*Model, error) {
	if n < 2 || n > MaxProcs {
		return nil, fmt.Errorf("consensus: %d processes outside 2..%d", n, MaxProcs)
	}
	if f < 0 || 2*f >= n {
		return nil, fmt.Errorf("consensus: crash budget %d violates n > 2f for n = %d", f, n)
	}
	return &Model{n: n, f: f}, nil
}

// MustNew is like New but panics on invalid input.
func MustNew(n, f int) *Model {
	m, err := New(n, f)
	if err != nil {
		panic(err)
	}
	return m
}

// Name implements sched.Model.
func (m *Model) Name() string { return fmt.Sprintf("ben-or(n=%d,f=%d)", m.n, m.f) }

// NumProcs implements sched.Model.
func (m *Model) NumProcs() int { return m.n }

// StartWith builds the initial state from explicit binary inputs.
func (m *Model) StartWith(values []uint8) (State, error) {
	if len(values) != m.n {
		return State{}, fmt.Errorf("consensus: %d inputs for %d processes", len(values), m.n)
	}
	var s State
	s.n, s.f = uint8(m.n), uint8(m.f)
	for i, v := range values {
		if v > 1 {
			return State{}, fmt.Errorf("consensus: input %d is not binary", v)
		}
		s.procs[i] = Proc{Phase: PostReport, Value: v}
	}
	return s, nil
}

// Start implements sched.Model: the adversarially interesting split start
// (alternating inputs).
func (m *Model) Start() []State {
	values := make([]uint8, m.n)
	for i := range values {
		values[i] = uint8(i % 2)
	}
	s, err := m.StartWith(values)
	if err != nil {
		panic(err) // n validated by New
	}
	return []State{s}
}

func slotOf(v uint8) uint8 {
	if v == 0 {
		return slotZero
	}
	return slotOne
}

// countSlots tallies a board row as seen by a reader in state s: posted
// entries, zeros, ones (abstains counted in posted only). A process that
// has decided leaves its decision readable forever: an empty slot of a
// decided process counts as that value — without this, a decided process
// stops posting and can strand a laggard below the n-f gate forever (the
// standard "decided processes keep helping" clause of Ben-Or).
func countSlots(s State, row *[MaxProcs]uint8, n int) (posted, zeros, ones int) {
	for i := 0; i < n; i++ {
		slot := row[i]
		if slot == slotEmpty && s.procs[i].Phase == Done {
			slot = slotOf(s.procs[i].Decided)
		}
		switch slot {
		case slotZero:
			posted, zeros = posted+1, zeros+1
		case slotOne:
			posted, ones = posted+1, ones+1
		case slotAbstain:
			posted++
		}
	}
	return posted, zeros, ones
}

// Moves implements sched.Model.
func (m *Model) Moves(s State, i int) []pa.Step[State] {
	p := s.procs[i]
	if p.Crashed || p.Phase == Done || p.Phase == Stopped {
		return nil
	}
	r := int(p.Round)
	act := func(kind string) string { return fmt.Sprintf("%s_%d_r%d", kind, i, r) }

	switch p.Phase {
	case PostReport:
		next := s
		next.reports[r][i] = slotOf(p.Value)
		next.procs[i].Phase = AwaitReports
		return []pa.Step[State]{{Action: act("report"), Next: prob.Point(next)}}

	case AwaitReports:
		posted, zeros, ones := countSlots(s, &s.reports[r], m.n)
		if posted < m.n-m.f {
			return nil // genuinely blocked; no unit-time obligation
		}
		next := s
		// Strict majority of ALL processes (> n/2) yields a proposal.
		switch {
		case 2*zeros > m.n:
			next.procs[i].Prop = slotZero
		case 2*ones > m.n:
			next.procs[i].Prop = slotOne
		default:
			next.procs[i].Prop = slotAbstain
		}
		next.procs[i].Phase = PostProposal
		return []pa.Step[State]{{Action: act("read"), Next: prob.Point(next)}}

	case PostProposal:
		next := s
		next.props[r][i] = p.Prop
		next.procs[i].Phase = AwaitProposals
		return []pa.Step[State]{{Action: act("propose"), Next: prob.Point(next)}}

	case AwaitProposals:
		posted, zeros, ones := countSlots(s, &s.props[r], m.n)
		if posted < m.n-m.f {
			return nil
		}
		next := s
		switch {
		case zeros >= m.f+1:
			next.procs[i].Phase = Done
			next.procs[i].Decided = 0
		case ones >= m.f+1:
			next.procs[i].Phase = Done
			next.procs[i].Decided = 1
		case zeros > 0:
			next.procs[i] = advance(next.procs[i], 0)
		case ones > 0:
			next.procs[i] = advance(next.procs[i], 1)
		default:
			next.procs[i].Phase = Flip
		}
		return []pa.Step[State]{{Action: act("collect"), Next: prob.Point(next)}}

	case Flip:
		headsNext, tailsNext := s, s
		headsNext.procs[i] = advance(p, 0)
		tailsNext.procs[i] = advance(p, 1)
		return []pa.Step[State]{{
			Action: act("flip"),
			Next:   prob.MustUniform(headsNext, tailsNext),
		}}
	default:
		return nil
	}
}

// advance moves a process to the next round with the given value, or
// stops it at the round cap.
func advance(p Proc, value uint8) Proc {
	p.Value = value
	if int(p.Round)+1 >= MaxRounds {
		p.Phase = Stopped
		return p
	}
	p.Round++
	p.Phase = PostReport
	return p
}

// UserMoves implements sched.Model: the adversary may crash any live
// process while its budget lasts. Posts already on the boards persist.
func (m *Model) UserMoves(s State, i int) []pa.Step[State] {
	p := s.procs[i]
	if p.Crashed || int(s.crashes) >= m.f {
		return nil
	}
	next := s
	next.procs[i].Crashed = true
	next.crashes++
	return []pa.Step[State]{{
		Action: fmt.Sprintf("crash_%d", i),
		Next:   prob.Point(next),
	}}
}
