package consensus

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/prob"
	"repro/internal/sim"
)

func TestClaimUnanimousFast(t *testing.T) {
	m := MustNew(3, 1)
	claim := Claim{
		Inputs: []uint8{1, 1, 1},
		Within: 15,
		Prob:   prob.MustParseRat("9/10"),
	}
	rng := rand.New(rand.NewSource(1))
	ev, err := TestClaim(context.Background(), m, claim, nil, 600, 0.01, rng)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s", ev)
	if !ev.Supported {
		t.Errorf("unanimous claim unsupported: %s", ev)
	}
	if ev.AgreementViolations != 0 || ev.ValidityViolations != 0 {
		t.Errorf("safety violations: %+v", ev)
	}
}

func TestClaimSplitStart(t *testing.T) {
	m := MustNew(3, 1)
	claim := Claim{
		Inputs: []uint8{0, 1, 1},
		Within: 40,
		Prob:   prob.MustParseRat("3/4"),
	}
	rng := rand.New(rand.NewSource(2))
	ev, err := TestClaim(context.Background(), m, claim, nil, 600, 0.01, rng)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s", ev)
	if !ev.Supported {
		t.Errorf("split claim unsupported: %s", ev)
	}
}

func TestClaimUnsupportable(t *testing.T) {
	m := MustNew(3, 1)
	// Deciding within time 1 is impossible (a round takes several steps
	// under the slowest scheduler and we use random ones).
	claim := Claim{Inputs: []uint8{0, 1, 0}, Within: 0.1, Prob: prob.Half()}
	rng := rand.New(rand.NewSource(3))
	ev, err := TestClaim(context.Background(), m, claim, nil, 100, 0.05, rng)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Supported {
		t.Errorf("impossible claim supported: %s", ev)
	}
	if !strings.Contains(ev.String(), "UNSUPPORTED") {
		t.Errorf("render = %q", ev.String())
	}
}

func TestClaimBadInputs(t *testing.T) {
	m := MustNew(3, 1)
	rng := rand.New(rand.NewSource(1))
	if _, err := TestClaim(context.Background(), m, Claim{Inputs: []uint8{1}, Within: 5, Prob: prob.Half()}, nil, 10, 0.05, rng); err == nil {
		t.Error("short input vector accepted")
	}
}

// TestCrashLastReporterAttack runs the targeted crash-timing adversary:
// Ben-Or must still agree on every run and terminate with high
// probability.
func TestCrashLastReporterAttack(t *testing.T) {
	m := MustNew(3, 1)
	claim := Claim{
		Inputs: []uint8{0, 1, 1},
		Within: 40,
		Prob:   prob.MustParseRat("2/3"),
	}
	rng := rand.New(rand.NewSource(4))
	mk := func() sim.Policy[State] { return CrashLastReporter(sim.Random[State](0)) }
	ev, err := TestClaim(context.Background(), m, claim, mk, 500, 0.01, rng)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("targeted attack: %s", ev)
	if ev.AgreementViolations != 0 {
		t.Errorf("agreement broken under targeted crashes: %+v", ev)
	}
	if !ev.Supported {
		t.Errorf("claim unsupported under targeted crashes: %s", ev)
	}
}

// TestClaimInterrupted cancels the sweep mid-way: TestClaim must stop
// between trials, return the partial Evidence with a Hoeffding bound over
// the trials that did run, and wrap sim.ErrInterrupted.
func TestClaimInterrupted(t *testing.T) {
	m := MustNew(3, 1)
	claim := Claim{Inputs: []uint8{1, 1, 1}, Within: 15, Prob: prob.MustParseRat("9/10")}

	// Pre-cancelled: no trials run, zero evidence, still typed.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	ev, err := TestClaim(cancelled, m, claim, nil, 100, 0.01, rand.New(rand.NewSource(1)))
	if !errors.Is(err, sim.ErrInterrupted) {
		t.Fatalf("pre-cancelled sweep: err = %v, want ErrInterrupted", err)
	}
	if ev.Estimate.Trials != 0 || ev.Supported {
		t.Errorf("pre-cancelled sweep produced evidence: %+v", ev)
	}

	// Cancel after a fixed number of trials via a policy factory that
	// counts invocations (one per trial), so the cut point is exact.
	ctx, cancelMid := context.WithCancel(context.Background())
	defer cancelMid()
	const stopAfter = 30
	made := 0
	mk := func() sim.Policy[State] {
		made++
		if made == stopAfter {
			cancelMid()
		}
		return RandomCrashes(sim.Random[State](0), 0.05)
	}
	ev, err = TestClaim(ctx, m, claim, mk, 100, 0.01, rand.New(rand.NewSource(2)))
	if !errors.Is(err, sim.ErrInterrupted) {
		t.Fatalf("mid-sweep cancel: err = %v, want ErrInterrupted", err)
	}
	if ev.Estimate.Trials != stopAfter {
		t.Errorf("partial evidence has %d trials, want %d", ev.Estimate.Trials, stopAfter)
	}
	if ev.HoeffdingLo <= 0 {
		t.Errorf("partial evidence missing Hoeffding bound: %+v", ev)
	}
}
