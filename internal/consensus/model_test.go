package consensus

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
)

func TestNewValidation(t *testing.T) {
	tests := []struct {
		n, f    int
		wantErr bool
	}{
		{n: 3, f: 1},
		{n: 5, f: 2},
		{n: 2, f: 0},
		{n: 3, f: 2, wantErr: true}, // 2f >= n
		{n: 1, f: 0, wantErr: true},
		{n: 6, f: 1, wantErr: true}, // beyond MaxProcs
		{n: 3, f: -1, wantErr: true},
	}
	for _, tt := range tests {
		_, err := New(tt.n, tt.f)
		if (err != nil) != tt.wantErr {
			t.Errorf("New(%d, %d) err = %v, wantErr %t", tt.n, tt.f, err, tt.wantErr)
		}
	}
}

func TestStartWith(t *testing.T) {
	m := MustNew(3, 1)
	s, err := m.StartWith([]uint8{0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Proc(1).Value != 1 || s.Proc(0).Value != 0 {
		t.Errorf("inputs not recorded: %v", s)
	}
	if _, err := m.StartWith([]uint8{0, 1}); err == nil {
		t.Error("short input vector accepted")
	}
	if _, err := m.StartWith([]uint8{0, 1, 7}); err == nil {
		t.Error("non-binary input accepted")
	}
}

// stepProc advances process i by its single enabled move, failing the
// test if it has none or several.
func stepProc(t *testing.T, m *Model, s State, i int) State {
	t.Helper()
	moves := m.Moves(s, i)
	if len(moves) != 1 {
		t.Fatalf("proc %d has %d moves in %v", i, len(moves), s)
	}
	next, ok := moves[0].Next.IsPoint()
	if !ok {
		t.Fatalf("move %s not deterministic", moves[0].Action)
	}
	return next
}

// TestUnanimousDecidesInOneRound is validity: with all inputs 1 and no
// crashes, every process decides 1 in round 0.
func TestUnanimousDecidesInOneRound(t *testing.T) {
	m := MustNew(3, 1)
	s, err := m.StartWith([]uint8{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Post all reports, read all, post proposals, collect.
	for phase := 0; phase < 4; phase++ {
		for i := 0; i < 3; i++ {
			s = stepProc(t, m, s, i)
		}
	}
	for i := 0; i < 3; i++ {
		v, ok := s.Decided(i)
		if !ok || v != 1 {
			t.Errorf("proc %d: decided %d, %t; want 1, true (state %v)", i, v, ok, s)
		}
	}
	if !s.AgreementHolds() || !s.AllCorrectDecided() {
		t.Errorf("final state invariants: %v", s)
	}
}

// TestEarlyReaderSeesPartialBoard pins the asymmetric-view mechanism: with
// n=3, f=1, a process may read after only two reports.
func TestEarlyReaderSeesPartialBoard(t *testing.T) {
	m := MustNew(3, 1)
	s, err := m.StartWith([]uint8{0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Before any report, reading is blocked.
	s1 := stepProc(t, m, s, 0) // proc 0 posts report(0)
	if got := m.Moves(s1, 0); got != nil {
		t.Fatalf("proc 0 can read after 1 report: %v", got)
	}
	s2 := stepProc(t, m, s1, 1) // proc 1 posts report(1)
	// Now proc 0 reads {0, 1}: no strict majority of n=3, so abstain.
	s3 := stepProc(t, m, s2, 0)
	if s3.Proc(0).Prop != slotAbstain {
		t.Errorf("proc 0 proposal = %d, want abstain", s3.Proc(0).Prop)
	}
	// Proc 2 posts report(1); a later reader sees {0,1,1}: majority 1.
	s4 := stepProc(t, m, s3, 2)
	s5 := stepProc(t, m, s4, 2)
	if s5.Proc(2).Prop != slotOne {
		t.Errorf("proc 2 proposal = %d, want 1", s5.Proc(2).Prop)
	}
}

func TestCrashBudget(t *testing.T) {
	m := MustNew(3, 1)
	s := m.Start()[0]
	crash := m.UserMoves(s, 0)
	if len(crash) != 1 || crash[0].Action != "crash_0" {
		t.Fatalf("user moves = %v", crash)
	}
	next, _ := crash[0].Next.IsPoint()
	if !next.Proc(0).Crashed {
		t.Error("crash did not mark the process")
	}
	// Budget exhausted: nobody else can crash.
	for i := 0; i < 3; i++ {
		if got := m.UserMoves(next, i); got != nil {
			t.Errorf("crash available beyond budget: %v", got)
		}
	}
	// Crashed processes have no moves.
	if got := m.Moves(next, 0); got != nil {
		t.Errorf("crashed process still has moves: %v", got)
	}
}

// randomCrashPolicy wraps a scheduling policy with a crash of one random
// process at a random early moment.
func randomCrashPolicy(inner sim.Policy[State]) sim.Policy[State] {
	return sim.PolicyFunc[State](func(v *sim.View[State], rng *rand.Rand) (sim.Choice, bool) {
		if len(v.UserMovers) > 0 && rng.Float64() < 0.05 {
			return sim.Choice{Proc: v.UserMovers[rng.Intn(len(v.UserMovers))], User: true, At: v.Now}, true
		}
		return inner.Choose(v, rng)
	})
}

// TestAgreementAndTermination runs many adversarial schedules from the
// split start and checks the Ben-Or guarantees: agreement on every run
// that decides, and termination with high probability within the round
// cap.
func TestAgreementAndTermination(t *testing.T) {
	m := MustNew(3, 1)
	rng := rand.New(rand.NewSource(11))
	var decided stats.Proportion
	for trial := 0; trial < 400; trial++ {
		policy := randomCrashPolicy(sim.Random[State](0))
		res, err := sim.RunOnce[State](m, policy, State.AllCorrectDecided,
			sim.Options[State]{MaxEvents: 5000, MaxTime: 500}, rng)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !res.Final.AgreementHolds() {
			t.Fatalf("trial %d: agreement violated in %v", trial, res.Final)
		}
		if !res.Reached && !res.Final.Stalled() {
			t.Fatalf("trial %d: non-termination not explained by the round cap: %v", trial, res.Final)
		}
		decided.Observe(res.Reached)
	}
	est, err := decided.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("termination within %d rounds: %s", MaxRounds, decided.String())
	// Ben-Or terminates with probability 1 but only geometrically fast;
	// the round cap censors a small tail.
	if est < 0.85 {
		t.Errorf("termination rate %.3f too low", est)
	}
}

// TestValidityUnderCrashes: unanimous inputs decide on that value, even
// with adversarial crash timing.
func TestValidityUnderCrashes(t *testing.T) {
	m := MustNew(3, 1)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		start, err := m.StartWith([]uint8{1, 1, 1})
		if err != nil {
			t.Fatal(err)
		}
		policy := randomCrashPolicy(sim.Random[State](0))
		res, err := sim.RunOnce[State](m, policy, State.AllCorrectDecided,
			sim.Options[State]{Start: start, SetStart: true, MaxEvents: 5000, MaxTime: 500}, rng)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := 0; i < 3; i++ {
			if v, ok := res.Final.Decided(i); ok && v != 1 {
				t.Fatalf("trial %d: validity violated, proc %d decided %d", trial, i, v)
			}
		}
	}
}

func TestStateString(t *testing.T) {
	m := MustNew(3, 1)
	s := m.Start()[0]
	if got := s.String(); got == "" {
		t.Error("empty render")
	}
	crashed := s
	crashed.procs[0].Crashed = true
	done := crashed
	done.procs[1].Phase = Done
	done.procs[1].Decided = 1
	stopped := done
	stopped.procs[2].Phase = Stopped
	for _, want := range []string{"X", "D1", "stop"} {
		if got := stopped.String(); !containsStr(got, want) {
			t.Errorf("render %q missing %q", got, want)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
