package adversary

import (
	"testing"

	"repro/internal/pa"
	"repro/internal/prob"
)

// chainAutomaton is a line 0 -> 1 -> ... -> n with, at each state, a
// deterministic "fwd" step and a probabilistic "coin" step (stay or
// advance), giving adversaries a real choice.
func chainAutomaton(n int) *pa.Automaton[int] {
	return &pa.Automaton[int]{
		Name:  "chain",
		Start: []int{0},
		Steps: func(s int) []pa.Step[int] {
			if s >= n {
				return nil
			}
			return []pa.Step[int]{
				{Action: "fwd", Next: prob.Point(s + 1)},
				{Action: "coin", Next: prob.MustUniform(s, s+1)},
			}
		},
	}
}

func TestHalt(t *testing.T) {
	a := Halt[int]()
	if _, ok := a.Step(pa.NewFragment(0)); ok {
		t.Error("Halt returned a step")
	}
}

func TestFirstEnabled(t *testing.T) {
	m := chainAutomaton(3)
	a := FirstEnabled(m)
	frag := pa.NewFragment(0)
	step, ok := a.Step(frag)
	if !ok || step.Action != "fwd" {
		t.Errorf("FirstEnabled chose %q, %t; want fwd, true", step.Action, ok)
	}
	// At the end of the chain nothing is enabled.
	if _, ok := a.Step(pa.NewFragment(3)); ok {
		t.Error("FirstEnabled returned a step in an absorbing state")
	}
}

func TestMemoryless(t *testing.T) {
	m := chainAutomaton(3)
	tests := []struct {
		name       string
		choose     func(int, []pa.Step[int]) int
		wantAction string
		wantOK     bool
	}{
		{
			name:       "second step",
			choose:     func(int, []pa.Step[int]) int { return 1 },
			wantAction: "coin",
			wantOK:     true,
		},
		{
			name:   "halt via negative index",
			choose: func(int, []pa.Step[int]) int { return -1 },
			wantOK: false,
		},
		{
			name:   "halt via out-of-range index",
			choose: func(int, []pa.Step[int]) int { return 99 },
			wantOK: false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			a := Memoryless(m, tt.choose)
			step, ok := a.Step(pa.NewFragment(0))
			if ok != tt.wantOK {
				t.Fatalf("ok = %t, want %t", ok, tt.wantOK)
			}
			if ok && step.Action != tt.wantAction {
				t.Errorf("action = %q, want %q", step.Action, tt.wantAction)
			}
		})
	}
}

func TestHistoryDependent(t *testing.T) {
	m := chainAutomaton(5)
	// This adversary plays "coin" until some coin has failed to advance
	// (visible in the history), then switches to "fwd" — the kind of
	// outcome-reactive scheduling of Example 4.1 of the paper.
	a := HistoryDependent(m, func(frag *pa.Fragment[int], enabled []pa.Step[int]) int {
		for i := 0; i < frag.Len(); i++ {
			if frag.Action(i) == "coin" && frag.State(i) == frag.State(i+1) {
				return 0 // fwd
			}
		}
		return 1 // coin
	})

	frag := pa.NewFragment(0)
	step, _ := a.Step(frag)
	if step.Action != "coin" {
		t.Errorf("clean history: action = %q, want coin", step.Action)
	}

	stalled := pa.NewFragment(0).Extend("coin", 0)
	step, _ = a.Step(stalled)
	if step.Action != "fwd" {
		t.Errorf("after stalled coin: action = %q, want fwd", step.Action)
	}
}

func TestOblivious(t *testing.T) {
	m := chainAutomaton(5)
	a := Oblivious(m, []int{0, 1, 0})

	frag := pa.NewFragment(0)
	var actions []string
	for {
		step, ok := a.Step(frag)
		if !ok {
			break
		}
		actions = append(actions, step.Action)
		// Follow the deterministic successor when available.
		frag = frag.Extend(step.Action, step.Next.Support()[len(step.Next.Support())-1])
	}
	want := []string{"fwd", "coin", "fwd"}
	if len(actions) != len(want) {
		t.Fatalf("took %d steps, want %d", len(actions), len(want))
	}
	for i := range want {
		if actions[i] != want[i] {
			t.Errorf("step %d = %q, want %q", i, actions[i], want[i])
		}
	}
}

func TestObliviousIgnoresHistoryContent(t *testing.T) {
	m := chainAutomaton(5)
	a := Oblivious(m, []int{1, 1})
	f1 := pa.NewFragment(0).Extend("fwd", 1)
	f2 := pa.NewFragment(2).Extend("coin", 2)
	s1, ok1 := a.Step(f1)
	s2, ok2 := a.Step(f2)
	if !ok1 || !ok2 {
		t.Fatal("script exhausted early")
	}
	if s1.Action != s2.Action {
		t.Errorf("oblivious adversary depended on history content: %q vs %q", s1.Action, s2.Action)
	}
}

func TestWithPrefix(t *testing.T) {
	m := chainAutomaton(5)
	// An adversary that alternates by history length.
	a := HistoryDependent(m, func(frag *pa.Fragment[int], _ []pa.Step[int]) int {
		return frag.Len() % 2
	})
	prefix := pa.NewFragment(0).Extend("fwd", 1)

	suffixAdv := WithPrefix(a, prefix)
	// For the suffix adversary, a zero-length fragment at state 1 looks
	// like history length 1 to the underlying adversary.
	step, ok := suffixAdv.Step(pa.NewFragment(1))
	if !ok {
		t.Fatal("suffix adversary halted")
	}
	if step.Action != "coin" {
		t.Errorf("suffix adversary chose %q, want coin", step.Action)
	}

	// A fragment that does not start at lstate(prefix) halts.
	if _, ok := suffixAdv.Step(pa.NewFragment(3)); ok {
		t.Error("suffix adversary accepted mismatched fragment")
	}
}

func TestValidate(t *testing.T) {
	m := chainAutomaton(3)
	good := FirstEnabled(m)
	if err := Validate(m, good, pa.NewFragment(0)); err != nil {
		t.Errorf("Validate(good): %v", err)
	}

	bogus := Func[int](func(*pa.Fragment[int]) (pa.Step[int], bool) {
		return pa.Step[int]{Action: "teleport", Next: prob.Point(7)}, true
	})
	if err := Validate(m, bogus, pa.NewFragment(0)); err == nil {
		t.Error("Validate accepted a non-enabled step")
	}

	if err := Validate(m, Halt[int](), pa.NewFragment(0)); err != nil {
		t.Errorf("Validate(halt): %v", err)
	}
}

func TestSchemaMember(t *testing.T) {
	all := AllAdversaries[int]()
	if !all.Member(Halt[int]()) {
		t.Error("AllAdversaries rejected an adversary")
	}
	if !all.ExecutionClosed {
		t.Error("AllAdversaries not marked execution closed")
	}

	none := &Schema[int]{Name: "empty", Contains: func(Adversary[int]) bool { return false }}
	if none.Member(Halt[int]()) {
		t.Error("empty schema accepted an adversary")
	}
}

func TestCheckExecutionClosure(t *testing.T) {
	m := chainAutomaton(4)
	t.Run("all adversaries pass", func(t *testing.T) {
		err := CheckExecutionClosure(m, AllAdversaries[int](), func() Adversary[int] {
			return FirstEnabled(m)
		}, ClosureCheckConfig{Trials: 20, MaxLen: 6, Seed: 1})
		if err != nil {
			t.Errorf("CheckExecutionClosure: %v", err)
		}
	})
	t.Run("generator outside schema is reported", func(t *testing.T) {
		none := &Schema[int]{Name: "empty", Contains: func(Adversary[int]) bool { return false }}
		err := CheckExecutionClosure(m, none, func() Adversary[int] {
			return FirstEnabled(m)
		}, ClosureCheckConfig{Trials: 5, Seed: 1})
		if err == nil {
			t.Error("CheckExecutionClosure accepted generator outside schema")
		}
	})
}
