package adversary

import (
	"fmt"

	"repro/internal/pa"
	"repro/internal/prob"
)

// This file implements randomized adversaries, the generalization the
// paper sets aside in its footnote 1 ("we ignore the possibility that the
// adversary itself uses randomness") and that the underlying model of
// Segala supports: instead of choosing one enabled step, the adversary
// chooses a probability distribution over the enabled steps (or over
// halting). For reachability-style objectives randomization adds no power
// — the worst case is always attained by a deterministic adversary — and
// TestRandomizedNoWorse pins that fact; the type exists so that models of
// randomized schedulers (e.g. a fair coin deciding which process runs)
// can be expressed directly.

// StepChoice is one alternative of a randomized decision: either Halt, or
// the given step.
type StepChoice[S comparable] struct {
	Halt bool
	Step pa.Step[S]
}

// Randomized is an adversary that resolves nondeterminism by randomizing:
// given the past, it returns a distribution over enabled steps and
// halting.
type Randomized[S comparable] interface {
	ChooseDist(frag *pa.Fragment[S]) (prob.Dist[int], []StepChoice[S])
}

// RandomizedFunc adapts a function to the Randomized interface.
type RandomizedFunc[S comparable] func(frag *pa.Fragment[S]) (prob.Dist[int], []StepChoice[S])

// ChooseDist implements Randomized.
func (f RandomizedFunc[S]) ChooseDist(frag *pa.Fragment[S]) (prob.Dist[int], []StepChoice[S]) {
	return f(frag)
}

var _ Randomized[int] = (RandomizedFunc[int])(nil)

// Deterministically lifts an ordinary adversary to a randomized one that
// puts all mass on the deterministic choice.
func Deterministically[S comparable](a Adversary[S]) Randomized[S] {
	return RandomizedFunc[S](func(frag *pa.Fragment[S]) (prob.Dist[int], []StepChoice[S]) {
		step, ok := a.Step(frag)
		if !ok {
			return prob.Point(0), []StepChoice[S]{{Halt: true}}
		}
		return prob.Point(0), []StepChoice[S]{{Step: step}}
	})
}

// UniformScheduler randomizes uniformly over all enabled steps of the
// automaton, halting only when nothing is enabled — the "fair random
// scheduler" environment model.
func UniformScheduler[S comparable](m *pa.Automaton[S]) Randomized[S] {
	return RandomizedFunc[S](func(frag *pa.Fragment[S]) (prob.Dist[int], []StepChoice[S]) {
		enabled := m.Steps(frag.Last())
		if len(enabled) == 0 {
			return prob.Point(0), []StepChoice[S]{{Halt: true}}
		}
		choices := make([]StepChoice[S], len(enabled))
		indices := make([]int, len(enabled))
		for i, step := range enabled {
			choices[i] = StepChoice[S]{Step: step}
			indices[i] = i
		}
		return prob.MustUniform(indices...), choices
	})
}

// Mix builds a randomized adversary that follows each of the given
// adversaries with the paired probability, re-randomizing independently
// at every decision point.
func Mix[S comparable](advs []Adversary[S], weights []prob.Rat) (Randomized[S], error) {
	if len(advs) != len(weights) {
		return nil, fmt.Errorf("adversary: %d adversaries vs %d weights", len(advs), len(weights))
	}
	outcomes := make([]prob.Outcome[int], len(weights))
	for i, w := range weights {
		outcomes[i] = prob.Outcome[int]{Value: i, Prob: w}
	}
	dist, err := prob.NewDist(outcomes...)
	if err != nil {
		return nil, err
	}
	advsCopy := append([]Adversary[S](nil), advs...)
	return RandomizedFunc[S](func(frag *pa.Fragment[S]) (prob.Dist[int], []StepChoice[S]) {
		choices := make([]StepChoice[S], len(advsCopy))
		for i, a := range advsCopy {
			step, ok := a.Step(frag)
			if !ok {
				choices[i] = StepChoice[S]{Halt: true}
			} else {
				choices[i] = StepChoice[S]{Step: step}
			}
		}
		return dist, choices
	}), nil
}
