// Package adversary models the entities that resolve nondeterminism in a
// probabilistic automaton (Definitions 2.2, 2.6 and 3.3 of Lynch, Saias
// and Segala, PODC 1994).
//
// An Adversary maps a finite execution fragment to one of the steps
// enabled in its last state, or to nothing (the adversary may halt the
// system). An adversary schema is a set of adversaries, usually described
// by a predicate; the key property required by the composition theorem
// (Theorem 3.4) is execution closure: the schema must contain, for every
// adversary A and past fragment alpha, an adversary A' behaving like A
// with the past alpha pre-pended. Execution closure is a semantic property
// of the whole schema; the package lets schemas declare it and provides a
// randomized spot-check used in tests.
package adversary

import (
	"fmt"

	"repro/internal/pa"
	"repro/internal/prob"
)

// Adversary resolves nondeterministic choices of a probabilistic automaton
// (Definition 2.2). Given the finite execution fragment observed so far,
// Step returns the step the automaton is to perform next; ok = false means
// the adversary returns "nothing" and the execution stops.
//
// The adversary sees the complete past, including the outcomes of earlier
// random choices; weaker adversaries simply ignore parts of the fragment.
type Adversary[S comparable] interface {
	Step(frag *pa.Fragment[S]) (step pa.Step[S], ok bool)
}

// Func adapts a plain function to the Adversary interface.
type Func[S comparable] func(frag *pa.Fragment[S]) (pa.Step[S], bool)

// Step implements Adversary.
func (f Func[S]) Step(frag *pa.Fragment[S]) (pa.Step[S], bool) { return f(frag) }

var _ Adversary[int] = (Func[int])(nil)

// Halt is the adversary that always returns nothing, stopping the system
// immediately.
func Halt[S comparable]() Adversary[S] {
	return Func[S](func(*pa.Fragment[S]) (pa.Step[S], bool) {
		return pa.Step[S]{}, false
	})
}

// FirstEnabled is the memoryless adversary that always chooses the first
// step enabled in the current state, in the automaton's enumeration order.
func FirstEnabled[S comparable](m *pa.Automaton[S]) Adversary[S] {
	return Memoryless(m, func(S, []pa.Step[S]) int { return 0 })
}

// Memoryless builds an adversary that chooses among the enabled steps
// looking only at the current state: choose returns the index of the step
// to take from the given enabled list, or a negative value to halt.
func Memoryless[S comparable](m *pa.Automaton[S], choose func(s S, enabled []pa.Step[S]) int) Adversary[S] {
	return Func[S](func(frag *pa.Fragment[S]) (pa.Step[S], bool) {
		enabled := m.Steps(frag.Last())
		if len(enabled) == 0 {
			return pa.Step[S]{}, false
		}
		i := choose(frag.Last(), enabled)
		if i < 0 || i >= len(enabled) {
			return pa.Step[S]{}, false
		}
		return enabled[i], true
	})
}

// HistoryDependent builds an adversary with complete knowledge of the past:
// choose sees the whole fragment and the enabled steps, and returns the
// index of the chosen step or a negative value to halt. This is the
// adversary class the paper's Lehmann–Rabin analysis must defeat.
func HistoryDependent[S comparable](m *pa.Automaton[S], choose func(frag *pa.Fragment[S], enabled []pa.Step[S]) int) Adversary[S] {
	return Func[S](func(frag *pa.Fragment[S]) (pa.Step[S], bool) {
		enabled := m.Steps(frag.Last())
		if len(enabled) == 0 {
			return pa.Step[S]{}, false
		}
		i := choose(frag, enabled)
		if i < 0 || i >= len(enabled) {
			return pa.Step[S]{}, false
		}
		return enabled[i], true
	})
}

// Oblivious builds an adversary that follows a fixed script of step
// indices, ignoring everything about the execution except how many steps
// have been taken so far. After the script is exhausted the adversary
// halts. Oblivious adversaries model schedulers fixed before the run, the
// weakest class discussed in the paper's introduction.
func Oblivious[S comparable](m *pa.Automaton[S], script []int) Adversary[S] {
	scriptCopy := append([]int(nil), script...)
	return Func[S](func(frag *pa.Fragment[S]) (pa.Step[S], bool) {
		n := frag.Len()
		if n >= len(scriptCopy) {
			return pa.Step[S]{}, false
		}
		enabled := m.Steps(frag.Last())
		i := scriptCopy[n]
		if i < 0 || i >= len(enabled) {
			return pa.Step[S]{}, false
		}
		return enabled[i], true
	})
}

// WithPrefix returns the adversary A' whose existence execution closure
// (Definition 3.3) demands: A'(alpha') = A(prefix ⌢ alpha') for fragments
// alpha' starting in lstate(prefix). It errors at call time (by halting)
// if alpha' does not start where prefix ends.
func WithPrefix[S comparable](a Adversary[S], prefix *pa.Fragment[S]) Adversary[S] {
	return Func[S](func(frag *pa.Fragment[S]) (pa.Step[S], bool) {
		joined, err := prefix.Concat(frag)
		if err != nil {
			return pa.Step[S]{}, false
		}
		return a.Step(joined)
	})
}

// Validate checks that the step the adversary returns for frag is actually
// one of the steps enabled in lstate(frag), which Definition 2.2 requires.
func Validate[S comparable](m *pa.Automaton[S], a Adversary[S], frag *pa.Fragment[S]) error {
	step, ok := a.Step(frag)
	if !ok {
		return nil
	}
	for _, enabled := range m.Steps(frag.Last()) {
		if enabled.Action == step.Action && distEqual(enabled.Next, step.Next) {
			return nil
		}
	}
	return fmt.Errorf("adversary: step %q not enabled in state %v", step.Action, frag.Last())
}

// distEqual reports whether two distributions assign identical
// probabilities to identical supports.
func distEqual[S comparable](a, b prob.Dist[S]) bool {
	if a.Len() != b.Len() {
		return false
	}
	for _, v := range a.Support() {
		if !a.P(v).Equal(b.P(v)) {
			return false
		}
	}
	return true
}
