// Package report defines the machine-readable output format of the
// checking commands: a JSON document recording, for one model
// configuration, every checked arrow with its claimed and measured
// bounds, the composed claim, the expected-time analysis and optional
// curve data. Exact rationals are serialized as strings ("15/16") so no
// precision is lost.
package report

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/prob"
)

// Arrow is one checked time-bound statement.
type Arrow struct {
	Origin       string `json:"origin,omitempty"`
	From         string `json:"from"`
	To           string `json:"to"`
	Time         string `json:"time"`
	ClaimedProb  string `json:"claimed_prob"`
	MeasuredProb string `json:"measured_prob"`
	WorstState   string `json:"worst_state"`
	FromStates   int    `json:"from_states"`
	ToStates     int    `json:"to_states"`
	Holds        bool   `json:"holds"`
}

// ArrowFrom converts a check result to its report row.
func ArrowFrom[S comparable](origin string, r core.CheckResult[S]) Arrow {
	return Arrow{
		Origin:       origin,
		From:         r.Stmt.From.Name,
		To:           r.Stmt.To.Name,
		Time:         r.Stmt.Time.String(),
		ClaimedProb:  r.Stmt.Prob.String(),
		MeasuredProb: r.WorstProb.String(),
		WorstState:   fmt.Sprintf("%v", r.WorstState),
		FromStates:   r.FromCount,
		ToStates:     r.ToCount,
		Holds:        r.Holds,
	}
}

// CurvePoint is one exact point of a worst-case probability curve.
type CurvePoint struct {
	Horizon   int    `json:"horizon"`
	WorstProb string `json:"worst_prob"`
}

// CurveFrom converts core curve points.
func CurveFrom(points []core.CurvePoint) []CurvePoint {
	out := make([]CurvePoint, len(points))
	for i, p := range points {
		out[i] = CurvePoint{Horizon: p.Horizon, WorstProb: p.WorstProb.String()}
	}
	return out
}

// ExpectedTime pairs the derived bound with the measured worst case.
type ExpectedTime struct {
	RecurrenceLoop  string  `json:"recurrence_loop,omitempty"`
	DerivedBound    string  `json:"derived_bound"`
	MeasuredWorst   float64 `json:"measured_worst,omitempty"`
	MeasuredAtState string  `json:"measured_at_state,omitempty"`
}

// Document is the full report for one configuration.
type Document struct {
	Model         string        `json:"model"`
	Procs         int           `json:"procs"`
	StepsPerTick  int           `json:"steps_per_tick"`
	ProductStates int           `json:"product_states"`
	Schema        string        `json:"schema"`
	Arrows        []Arrow       `json:"arrows"`
	Composed      *Arrow        `json:"composed,omitempty"`
	Expected      *ExpectedTime `json:"expected_time,omitempty"`
	Curve         []CurvePoint  `json:"curve,omitempty"`
	AllHold       bool          `json:"all_hold"`
}

// Finalize recomputes the aggregate verdict from the rows.
func (d *Document) Finalize() {
	d.AllHold = true
	for _, a := range d.Arrows {
		if !a.Holds {
			d.AllHold = false
			return
		}
	}
	if d.Composed != nil && !d.Composed.Holds {
		d.AllHold = false
	}
}

// Write emits the document as indented JSON.
func (d *Document) Write(w io.Writer) error {
	d.Finalize()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// RatString formats an optional rational for report fields.
func RatString(r prob.Rat) string { return r.String() }
