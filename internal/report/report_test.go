package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/prob"
)

func sampleResult() core.CheckResult[int] {
	return core.CheckResult[int]{
		Stmt: core.Statement[int]{
			From:   core.NewSet("T", func(int) bool { return true }),
			To:     core.NewSet("C", func(int) bool { return false }),
			Time:   prob.FromInt(13),
			Prob:   prob.NewRat(1, 8),
			Schema: core.UnitTimeSchema(1),
		},
		Holds:      true,
		WorstProb:  prob.MustParseRat("15/16"),
		WorstState: 42,
		FromCount:  100,
		ToCount:    10,
	}
}

func TestArrowFrom(t *testing.T) {
	a := ArrowFrom("Section 6.2", sampleResult())
	if a.From != "T" || a.To != "C" || a.Time != "13" {
		t.Errorf("arrow = %+v", a)
	}
	if a.ClaimedProb != "1/8" || a.MeasuredProb != "15/16" || !a.Holds {
		t.Errorf("arrow bounds = %+v", a)
	}
	if a.WorstState != "42" || a.FromStates != 100 || a.ToStates != 10 {
		t.Errorf("arrow metadata = %+v", a)
	}
}

func TestDocumentWrite(t *testing.T) {
	doc := Document{
		Model:         "lehmann-rabin",
		Procs:         3,
		StepsPerTick:  1,
		ProductStates: 9637,
		Schema:        "Unit-Time(k=1)",
		Arrows:        []Arrow{ArrowFrom("A.3", sampleResult())},
		Curve: CurveFrom([]core.CurvePoint{
			{Horizon: 0, WorstProb: prob.Zero()},
			{Horizon: 7, WorstProb: prob.NewRat(1, 4)},
		}),
	}
	var buf bytes.Buffer
	if err := doc.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"model": "lehmann-rabin"`, `"claimed_prob": "1/8"`, `"all_hold": true`, `"worst_prob": "1/4"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %s:\n%s", want, out)
		}
	}

	// Round-trips as valid JSON.
	var parsed Document
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if parsed.ProductStates != 9637 || len(parsed.Arrows) != 1 || len(parsed.Curve) != 2 {
		t.Errorf("round-trip = %+v", parsed)
	}
}

func TestFinalizeVerdicts(t *testing.T) {
	good := ArrowFrom("x", sampleResult())
	bad := good
	bad.Holds = false

	doc := Document{Arrows: []Arrow{good, bad}}
	doc.Finalize()
	if doc.AllHold {
		t.Error("AllHold true despite failing arrow")
	}

	doc2 := Document{Arrows: []Arrow{good}, Composed: &bad}
	doc2.Finalize()
	if doc2.AllHold {
		t.Error("AllHold true despite failing composed claim")
	}

	doc3 := Document{Arrows: []Arrow{good}, Composed: &good}
	doc3.Finalize()
	if !doc3.AllHold {
		t.Error("AllHold false with all rows holding")
	}
}

func TestRatString(t *testing.T) {
	if got := RatString(prob.NewRat(3, 4)); got != "3/4" {
		t.Errorf("RatString = %q", got)
	}
}
