package core

import (
	"fmt"
	"strings"

	"repro/internal/mdp"
	"repro/internal/prob"
)

// CurvePoint is one point of a worst-case probability curve.
type CurvePoint struct {
	// Horizon is the time bound t.
	Horizon int
	// WorstProb is the exact worst case of P[reach To within t] over
	// adversaries and over From states.
	WorstProb prob.Rat
}

// WorstCaseCurve computes, for every horizon t = 0..maxHorizon, the exact
// worst-case probability of reaching `to` from the worst reachable state
// of `from`. The curve is the quantitative landscape behind a statement
// U --t,p--> U': the statement holds iff the curve at t is at least p.
// Section 7 of the paper asks for lower bounds on the time for progress;
// the curve delivers them — every t where the curve is below p is a
// certified counterexample horizon.
func WorstCaseCurve[S comparable](m *mdp.MDP, ix *mdp.Index[S], from, to Set[S], maxHorizon int) ([]CurvePoint, error) {
	fromMask := ix.Mask(func(s S) bool { return from.Contains(s) })
	toMask := ix.Mask(func(s S) bool { return to.Contains(s) })
	hasFrom := false
	for _, in := range fromMask {
		if in {
			hasFrom = true
			break
		}
	}
	if !hasFrom {
		return nil, ErrEmptyFrom
	}
	layers, err := m.ReachWithinTicksLayers(toMask, maxHorizon, mdp.MinProb)
	if err != nil {
		return nil, err
	}
	curve := make([]CurvePoint, len(layers))
	for h, layer := range layers {
		worst, _ := mdp.OptAt(layer, fromMask, mdp.MinProb)
		curve[h] = CurvePoint{Horizon: h, WorstProb: worst}
	}
	return curve, nil
}

// TightestTime returns the least horizon at which the curve reaches p, or
// ok = false if it never does within the computed range.
func TightestTime(curve []CurvePoint, p prob.Rat) (int, bool) {
	for _, pt := range curve {
		if !pt.WorstProb.Less(p) {
			return pt.Horizon, true
		}
	}
	return 0, false
}

// RenderCurve formats the curve as an aligned two-column table with a
// crude bar chart, marking the first horizon meeting the threshold.
func RenderCurve(curve []CurvePoint, threshold prob.Rat) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s  %-12s  %s\n", "t", "worst-case P", "")
	marked := false
	for _, pt := range curve {
		bar := strings.Repeat("█", int(pt.WorstProb.Float64()*40+0.5))
		mark := ""
		if !marked && !pt.WorstProb.Less(threshold) {
			mark = "  ← first t with P ≥ " + threshold.String()
			marked = true
		}
		fmt.Fprintf(&b, "%-4d  %-12s  %s%s\n", pt.Horizon, pt.WorstProb.String(), bar, mark)
	}
	return b.String()
}
