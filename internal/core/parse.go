package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/prob"
)

// ParseStatement parses the arrow notation "U --t,p--> V", resolving set
// names (and unions written with '∪' or '+') against the registry. The
// schema is attached as given. Examples:
//
//	T --13,1/8--> C
//	RT --3,1--> F∪G∪P
//	F+G+P --2,1/2--> G+P
func ParseStatement[S comparable](reg map[string]Set[S], line string, schema SchemaInfo) (Statement[S], error) {
	var zero Statement[S]
	arrow := strings.Index(line, "-->")
	if arrow < 0 {
		return zero, fmt.Errorf("core: no \"-->\" in statement %q", line)
	}
	open := strings.Index(line[:arrow], "--")
	if open < 0 {
		return zero, fmt.Errorf("core: no opening \"--\" before \"-->\" in statement %q", line)
	}

	fromExpr := strings.TrimSpace(line[:open])
	bounds := strings.TrimSpace(line[open+2 : arrow])
	toExpr := strings.TrimSpace(line[arrow+len("-->"):])

	parts := strings.SplitN(bounds, ",", 2)
	if len(parts) != 2 {
		return zero, fmt.Errorf("core: bounds %q are not \"time,prob\"", bounds)
	}
	t, err := prob.ParseRat(strings.TrimSpace(parts[0]))
	if err != nil {
		return zero, fmt.Errorf("core: bad time in %q: %v", line, err)
	}
	p, err := prob.ParseRat(strings.TrimSpace(parts[1]))
	if err != nil {
		return zero, fmt.Errorf("core: bad probability in %q: %v", line, err)
	}

	from, err := ParseSetExpr(reg, fromExpr)
	if err != nil {
		return zero, err
	}
	to, err := ParseSetExpr(reg, toExpr)
	if err != nil {
		return zero, err
	}

	st := Statement[S]{From: from, To: to, Time: t, Prob: p, Schema: schema}
	if err := st.Validate(); err != nil {
		return zero, err
	}
	return st, nil
}

// ParseSetExpr resolves a set name or a union of names ('∪' or '+'
// separated) against the registry.
func ParseSetExpr[S comparable](reg map[string]Set[S], expr string) (Set[S], error) {
	var zero Set[S]
	expr = strings.TrimSpace(expr)
	if expr == "" {
		return zero, fmt.Errorf("core: empty set expression")
	}
	normalized := strings.ReplaceAll(expr, "∪", "+")
	names := strings.Split(normalized, "+")
	sets := make([]Set[S], 0, len(names))
	for _, name := range names {
		name = strings.TrimSpace(name)
		set, ok := reg[name]
		if !ok {
			return zero, fmt.Errorf("core: unknown set %q (known: %s)", name, knownSets(reg))
		}
		sets = append(sets, set)
	}
	if len(sets) == 1 {
		return sets[0], nil
	}
	return Union(sets...), nil
}

func knownSets[S comparable](reg map[string]Set[S]) string {
	names := make([]string, 0, len(reg))
	for name := range reg {
		names = append(names, name)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
