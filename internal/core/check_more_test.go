package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/prob"
)

func TestCheckAll(t *testing.T) {
	sc := scriptFixture(t, true)
	a := listSet("A", 0)
	b := listSet("B", 1)
	d := listSet("D", 3)

	results, err := CheckAll(sc.Model, sc.Index,
		stmt(a, b, "1", "1"),
		stmt(a, d, "3", "1"),
		stmt(a, d, "1", "1"), // fails but is not an error
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	if !results[0].Holds || !results[1].Holds || results[2].Holds {
		t.Errorf("verdicts = %t %t %t", results[0].Holds, results[1].Holds, results[2].Holds)
	}

	// An invalid statement aborts with context.
	_, err = CheckAll(sc.Model, sc.Index, stmt(a, b, "1/2", "1"))
	if err == nil || !errors.Is(err, ErrNonIntegerTime) {
		t.Errorf("err = %v, want ErrNonIntegerTime", err)
	}
}

func TestCheckedPremise(t *testing.T) {
	sc := scriptFixture(t, true)
	a := listSet("A", 0)
	d := listSet("D", 3)

	p, r, err := CheckedPremise(sc.Model, sc.Index, stmt(a, d, "3", "1"), "toy chain")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Holds || p.Rule != RulePremise {
		t.Errorf("result = %+v, proof rule = %q", r, p.Rule)
	}
	if !strings.Contains(p.Note, "toy chain") || !strings.Contains(p.Note, "measured worst-case") {
		t.Errorf("premise note = %q", p.Note)
	}

	if _, _, err := CheckedPremise(sc.Model, sc.Index, stmt(a, d, "1", "1"), "false"); err == nil {
		t.Error("failing premise accepted")
	}
}

func TestIntTimeBounds(t *testing.T) {
	if _, err := intTime(prob.MustParseRat("1000000000000")); err == nil {
		t.Error("absurd time bound accepted")
	}
	got, err := intTime(prob.FromInt(13))
	if err != nil || got != 13 {
		t.Errorf("intTime(13) = %d, %v", got, err)
	}
	if _, err := intTime(prob.NewRat(-1, 1)); err == nil {
		t.Error("negative time accepted")
	}
}

func TestPremiseValidates(t *testing.T) {
	bad := stmt(listSet("A", 0), listSet("B", 1), "1", "1")
	bad.Prob = prob.NewRat(3, 2)
	if _, err := Premise(bad, "x"); err == nil {
		t.Error("invalid premise accepted")
	}
}

func TestProofPremisesOrder(t *testing.T) {
	u := testUniverse()
	s0, s1, s2 := listSet("S0", 0), listSet("S1", 1), listSet("S2", 2)
	p1 := mustPremise(t, stmt(s0, s1, "1", "1"))
	p2 := mustPremise(t, stmt(s1, s2, "1", "1"))
	c, err := Compose(u, p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Weaken(c, listSet("X", 5))
	if err != nil {
		t.Fatal(err)
	}
	leaves := w.Premises()
	if len(leaves) != 2 || leaves[0] != p1 || leaves[1] != p2 {
		t.Errorf("premises = %v", leaves)
	}
}
