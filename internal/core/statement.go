package core

import (
	"errors"
	"fmt"

	"repro/internal/prob"
)

// Statement is a time-bounded progress statement U --t,p-->_Advs U'
// (Definition 3.1): from every state of From, under every adversary of the
// schema, a state of To is reached within time Time with probability at
// least Prob.
type Statement[S comparable] struct {
	From   Set[S]
	To     Set[S]
	Time   prob.Rat
	Prob   prob.Rat
	Schema SchemaInfo
}

// String renders the statement in the paper's arrow notation, e.g.
// "T --13,1/8--> C  [Unit-Time(k=1)]".
func (st Statement[S]) String() string {
	return fmt.Sprintf("%s --%v,%v--> %s  [%s]", st.From.Name, st.Time, st.Prob, st.To.Name, st.Schema.Name)
}

// Validate checks that the bounds are sensible: nonnegative time and a
// probability in [0, 1].
func (st Statement[S]) Validate() error {
	if st.Time.Sign() < 0 {
		return fmt.Errorf("core: negative time bound %v", st.Time)
	}
	if !st.Prob.IsProbability() {
		return fmt.Errorf("core: probability %v outside [0, 1]", st.Prob)
	}
	return nil
}

// Rule names the inference rule that produced a proof node.
type Rule string

// Inference rules.
const (
	// RulePremise marks a leaf: a statement assumed or established
	// outside the calculus (e.g. checked against a model, or proved on
	// paper as one of the propositions of the appendix).
	RulePremise Rule = "premise"
	// RuleWeaken is Proposition 3.2: from U --t,p--> U' conclude
	// U∪U'' --t,p--> U'∪U''.
	RuleWeaken Rule = "weaken (Prop 3.2)"
	// RuleCompose is Theorem 3.4: from U --t1,p1--> U' and
	// U' --t2,p2--> U'' conclude U --t1+t2,p1·p2--> U'', provided the
	// shared adversary schema is execution closed.
	RuleCompose Rule = "compose (Thm 3.4)"
	// RuleRelax loosens bounds: a statement implies every statement with
	// larger time and smaller probability.
	RuleRelax Rule = "relax"
	// RuleSubset embeds U --0,1--> U' when U ⊆ U'.
	RuleSubset Rule = "subset"
	// RuleEqual replaces a side of a statement by an extensionally equal
	// set (a renaming step, e.g. C∪C to C).
	RuleEqual Rule = "equal"
)

// Proof is a derivation tree whose root statement follows from its leaf
// premises by the paper's rules. Proof values are immutable after
// construction.
type Proof[S comparable] struct {
	Stmt     Statement[S]
	Rule     Rule
	Note     string
	Children []*Proof[S]
}

// Premise wraps a statement as a leaf of a derivation; note records its
// origin (e.g. "Proposition A.11, checked at n=3").
func Premise[S comparable](st Statement[S], note string) (*Proof[S], error) {
	if err := st.Validate(); err != nil {
		return nil, err
	}
	return &Proof[S]{Stmt: st, Rule: RulePremise, Note: note}, nil
}

// Errors returned by the inference rules.
var (
	ErrSchemaMismatch = errors.New("core: statements quantify over different adversary schemas")
	ErrNotExecClosed  = errors.New("core: composition requires an execution-closed adversary schema")
	ErrNotChained     = errors.New("core: target of the first statement is not contained in the source of the second")
	ErrNotWeaker      = errors.New("core: relaxed bounds must be no stronger than the original")
	ErrNotSubset      = errors.New("core: subset rule requires From ⊆ To")
	ErrNilProof       = errors.New("core: nil proof")
)

// Weaken applies Proposition 3.2: from U --t,p--> U' derive
// U∪extra --t,p--> U'∪extra.
func Weaken[S comparable](p *Proof[S], extra Set[S]) (*Proof[S], error) {
	if p == nil {
		return nil, ErrNilProof
	}
	st := p.Stmt
	derived := Statement[S]{
		From:   Union(st.From, extra),
		To:     Union(st.To, extra),
		Time:   st.Time,
		Prob:   st.Prob,
		Schema: st.Schema,
	}
	return &Proof[S]{
		Stmt:     derived,
		Rule:     RuleWeaken,
		Note:     fmt.Sprintf("adjoin %s to both sides", extra.Name),
		Children: []*Proof[S]{p},
	}, nil
}

// Compose applies Theorem 3.4 to chain two derivations. The universe
// decides the side condition To_1 ⊆ From_2 extensionally; the schemas must
// be the same execution-closed schema.
func Compose[S comparable](u *Universe[S], p1, p2 *Proof[S]) (*Proof[S], error) {
	if p1 == nil || p2 == nil {
		return nil, ErrNilProof
	}
	s1, s2 := p1.Stmt, p2.Stmt
	if s1.Schema.Name != s2.Schema.Name {
		return nil, fmt.Errorf("%w: %q vs %q", ErrSchemaMismatch, s1.Schema.Name, s2.Schema.Name)
	}
	if !s1.Schema.ExecutionClosed {
		return nil, fmt.Errorf("%w: %q", ErrNotExecClosed, s1.Schema.Name)
	}
	if !u.Subset(s1.To, s2.From) {
		w, _ := u.Witness(s1.To, s2.From)
		return nil, fmt.Errorf("%w: %s ⊄ %s (witness %v)", ErrNotChained, s1.To.Name, s2.From.Name, w)
	}
	derived := Statement[S]{
		From:   s1.From,
		To:     s2.To,
		Time:   s1.Time.Add(s2.Time),
		Prob:   s1.Prob.Mul(s2.Prob),
		Schema: s1.Schema,
	}
	return &Proof[S]{
		Stmt:     derived,
		Rule:     RuleCompose,
		Children: []*Proof[S]{p1, p2},
	}, nil
}

// ComposeChain folds Compose over a sequence of derivations, left to
// right.
func ComposeChain[S comparable](u *Universe[S], ps ...*Proof[S]) (*Proof[S], error) {
	if len(ps) == 0 {
		return nil, ErrNilProof
	}
	acc := ps[0]
	for _, p := range ps[1:] {
		next, err := Compose(u, acc, p)
		if err != nil {
			return nil, err
		}
		acc = next
	}
	return acc, nil
}

// Relax derives a statement with a looser time bound and/or a smaller
// probability: U --t,p--> U' implies U --t',p'--> U' for t' >= t, p' <= p.
func Relax[S comparable](p *Proof[S], time, pr prob.Rat) (*Proof[S], error) {
	if p == nil {
		return nil, ErrNilProof
	}
	st := p.Stmt
	if time.Less(st.Time) || st.Prob.Less(pr) {
		return nil, fmt.Errorf("%w: (%v,%v) vs (%v,%v)", ErrNotWeaker, time, pr, st.Time, st.Prob)
	}
	derived := st
	derived.Time = time
	derived.Prob = pr
	return &Proof[S]{
		Stmt:     derived,
		Rule:     RuleRelax,
		Children: []*Proof[S]{p},
	}, nil
}

// ErrNotEqual is returned by the renaming rules when the replacement set
// differs extensionally from the original.
var ErrNotEqual = errors.New("core: sets are not extensionally equal")

// RenameTo replaces the target set of a derivation by an extensionally
// equal set, adjusting only its name (e.g. collapsing C∪C to C after a
// weakening step).
func RenameTo[S comparable](u *Universe[S], p *Proof[S], to Set[S]) (*Proof[S], error) {
	if p == nil {
		return nil, ErrNilProof
	}
	if !u.Equal(p.Stmt.To, to) {
		return nil, fmt.Errorf("%w: %s vs %s", ErrNotEqual, p.Stmt.To.Name, to.Name)
	}
	derived := p.Stmt
	derived.To = to
	return &Proof[S]{
		Stmt:     derived,
		Rule:     RuleEqual,
		Note:     fmt.Sprintf("%s = %s", p.Stmt.To.Name, to.Name),
		Children: []*Proof[S]{p},
	}, nil
}

// RenameFrom replaces the source set of a derivation by an extensionally
// equal set.
func RenameFrom[S comparable](u *Universe[S], p *Proof[S], from Set[S]) (*Proof[S], error) {
	if p == nil {
		return nil, ErrNilProof
	}
	if !u.Equal(p.Stmt.From, from) {
		return nil, fmt.Errorf("%w: %s vs %s", ErrNotEqual, p.Stmt.From.Name, from.Name)
	}
	derived := p.Stmt
	derived.From = from
	return &Proof[S]{
		Stmt:     derived,
		Rule:     RuleEqual,
		Note:     fmt.Sprintf("%s = %s", p.Stmt.From.Name, from.Name),
		Children: []*Proof[S]{p},
	}, nil
}

// SubsetProof derives the trivial statement From --0,1--> To when
// From ⊆ To over the universe.
func SubsetProof[S comparable](u *Universe[S], from, to Set[S], schema SchemaInfo) (*Proof[S], error) {
	if !u.Subset(from, to) {
		w, _ := u.Witness(from, to)
		return nil, fmt.Errorf("%w: %s ⊄ %s (witness %v)", ErrNotSubset, from.Name, to.Name, w)
	}
	return &Proof[S]{
		Stmt: Statement[S]{
			From:   from,
			To:     to,
			Time:   prob.Zero(),
			Prob:   prob.One(),
			Schema: schema,
		},
		Rule: RuleSubset,
	}, nil
}

// Premises returns the leaves of the derivation in left-to-right order.
func (p *Proof[S]) Premises() []*Proof[S] {
	if len(p.Children) == 0 {
		return []*Proof[S]{p}
	}
	var out []*Proof[S]
	for _, c := range p.Children {
		out = append(out, c.Premises()...)
	}
	return out
}
