package core

import (
	"strings"
	"testing"

	"repro/internal/prob"
)

func TestWorstCaseCurve(t *testing.T) {
	sc := scriptFixture(t, true) // the 4-state tick chain 0→1→2→3
	from := listSet("A", 0)
	to := listSet("D", 3)
	curve, err := WorstCaseCurve(sc.Model, sc.Index, from, to, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"0", "0", "0", "1", "1", "1"}
	if len(curve) != len(want) {
		t.Fatalf("curve has %d points, want %d", len(curve), len(want))
	}
	for i, pt := range curve {
		if pt.Horizon != i {
			t.Errorf("point %d horizon = %d", i, pt.Horizon)
		}
		if pt.WorstProb.String() != want[i] {
			t.Errorf("curve[%d] = %v, want %s", i, pt.WorstProb, want[i])
		}
	}

	horizon, ok := TightestTime(curve, prob.One())
	if !ok || horizon != 3 {
		t.Errorf("TightestTime = %d, %t; want 3, true", horizon, ok)
	}
	if _, ok := TightestTime(curve[:3], prob.One()); ok {
		t.Error("TightestTime found an unreachable threshold")
	}
}

func TestWorstCaseCurveEmptyFrom(t *testing.T) {
	sc := scriptFixture(t, true)
	empty := listSet("E")
	if _, err := WorstCaseCurve(sc.Model, sc.Index, empty, listSet("D", 3), 2); err == nil {
		t.Error("empty source accepted")
	}
}

func TestRenderCurve(t *testing.T) {
	curve := []CurvePoint{
		{Horizon: 0, WorstProb: prob.Zero()},
		{Horizon: 1, WorstProb: prob.Half()},
		{Horizon: 2, WorstProb: prob.One()},
	}
	out := RenderCurve(curve, prob.Half())
	if !strings.Contains(out, "first t with P ≥ 1/2") {
		t.Errorf("render missing threshold mark:\n%s", out)
	}
	// Only the first qualifying horizon is marked.
	if strings.Count(out, "first t with") != 1 {
		t.Errorf("threshold marked more than once:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Errorf("render has %d lines, want 4", len(lines))
	}
}
