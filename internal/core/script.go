package core

import (
	"fmt"
	"strings"

	"repro/internal/mdp"
	"repro/internal/prob"
)

// Script is a small proof-script interpreter. Each non-empty, non-comment
// line is one of:
//
//	let <id> = premise <stmt> [: <note>]
//	let <id> = weaken <id> + <setexpr>
//	let <id> = compose <id> <id> [<id> ...]
//	let <id> = relax <id> time=<t> prob=<p>
//	let <id> = subset <setexpr> -> <setexpr>
//	let <id> = renameto <id> <setexpr>
//	check <id>
//	print <id>
//
// where <stmt> uses the arrow notation of ParseStatement. "check" verifies
// the statement against the bound model (every premise can also be checked
// eagerly with Env.CheckPremises); "print" renders the derivation tree.
// The environment accumulates output in Out.
type Script[S comparable] struct {
	// Registry resolves set names.
	Registry map[string]Set[S]
	// Schema is attached to parsed statements.
	Schema SchemaInfo
	// Universe decides subset side conditions.
	Universe *Universe[S]
	// Model and Index, when non-nil, enable "check" lines.
	Model *mdp.MDP
	Index *mdp.Index[S]
	// CheckPremises verifies every premise against the model as it is
	// introduced.
	CheckPremises bool

	defs map[string]*Proof[S]
	out  strings.Builder
}

// Run executes the script and returns its accumulated output.
func (sc *Script[S]) Run(script string) (string, error) {
	sc.defs = make(map[string]*Proof[S])
	sc.out.Reset()
	for lineNo, raw := range strings.Split(script, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := sc.runLine(line); err != nil {
			return sc.out.String(), fmt.Errorf("line %d (%q): %w", lineNo+1, line, err)
		}
	}
	return sc.out.String(), nil
}

// Proof returns the derivation bound to id, if defined.
func (sc *Script[S]) Proof(id string) (*Proof[S], bool) {
	p, ok := sc.defs[id]
	return p, ok
}

func (sc *Script[S]) runLine(line string) error {
	switch {
	case strings.HasPrefix(line, "let "):
		return sc.runLet(strings.TrimPrefix(line, "let "))
	case strings.HasPrefix(line, "check "):
		return sc.runCheck(strings.TrimSpace(strings.TrimPrefix(line, "check ")))
	case strings.HasPrefix(line, "print "):
		id := strings.TrimSpace(strings.TrimPrefix(line, "print "))
		p, err := sc.lookup(id)
		if err != nil {
			return err
		}
		sc.out.WriteString(p.Render())
		return nil
	default:
		return fmt.Errorf("core: unknown script command")
	}
}

func (sc *Script[S]) lookup(id string) (*Proof[S], error) {
	p, ok := sc.defs[id]
	if !ok {
		return nil, fmt.Errorf("core: undefined proof %q", id)
	}
	return p, nil
}

func (sc *Script[S]) runLet(rest string) error {
	eq := strings.Index(rest, "=")
	if eq < 0 {
		return fmt.Errorf("core: let without '='")
	}
	id := strings.TrimSpace(rest[:eq])
	if id == "" {
		return fmt.Errorf("core: let with empty identifier")
	}
	if _, exists := sc.defs[id]; exists {
		return fmt.Errorf("core: proof %q already defined", id)
	}
	body := strings.TrimSpace(rest[eq+1:])
	verb, args, _ := strings.Cut(body, " ")

	var (
		p   *Proof[S]
		err error
	)
	switch verb {
	case "premise":
		p, err = sc.letPremise(args)
	case "weaken":
		p, err = sc.letWeaken(args)
	case "compose":
		p, err = sc.letCompose(args)
	case "relax":
		p, err = sc.letRelax(args)
	case "subset":
		p, err = sc.letSubset(args)
	case "renameto":
		p, err = sc.letRenameTo(args)
	default:
		return fmt.Errorf("core: unknown derivation %q", verb)
	}
	if err != nil {
		return err
	}
	sc.defs[id] = p
	return nil
}

func (sc *Script[S]) letPremise(args string) (*Proof[S], error) {
	stmtText, note, _ := strings.Cut(args, ":")
	st, err := ParseStatement(sc.Registry, strings.TrimSpace(stmtText), sc.Schema)
	if err != nil {
		return nil, err
	}
	note = strings.TrimSpace(note)
	if sc.CheckPremises {
		if sc.Model == nil || sc.Index == nil {
			return nil, fmt.Errorf("core: CheckPremises set but no model bound")
		}
		p, r, err := CheckedPremise(sc.Model, sc.Index, st, note)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&sc.out, "%s\n", r)
		return p, nil
	}
	return Premise(st, note)
}

func (sc *Script[S]) letWeaken(args string) (*Proof[S], error) {
	id, setExpr, ok := strings.Cut(args, "+")
	if !ok {
		return nil, fmt.Errorf("core: weaken needs \"<id> + <setexpr>\"")
	}
	p, err := sc.lookup(strings.TrimSpace(id))
	if err != nil {
		return nil, err
	}
	extra, err := ParseSetExpr(sc.Registry, setExpr)
	if err != nil {
		return nil, err
	}
	return Weaken(p, extra)
}

func (sc *Script[S]) letCompose(args string) (*Proof[S], error) {
	if sc.Universe == nil {
		return nil, fmt.Errorf("core: compose needs a universe")
	}
	ids := strings.Fields(args)
	if len(ids) < 2 {
		return nil, fmt.Errorf("core: compose needs at least two proofs")
	}
	ps := make([]*Proof[S], len(ids))
	for i, id := range ids {
		p, err := sc.lookup(id)
		if err != nil {
			return nil, err
		}
		ps[i] = p
	}
	return ComposeChain(sc.Universe, ps...)
}

func (sc *Script[S]) letRelax(args string) (*Proof[S], error) {
	fields := strings.Fields(args)
	if len(fields) != 3 {
		return nil, fmt.Errorf("core: relax needs \"<id> time=<t> prob=<p>\"")
	}
	p, err := sc.lookup(fields[0])
	if err != nil {
		return nil, err
	}
	var t, pr prob.Rat
	for _, kv := range fields[1:] {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("core: malformed relax argument %q", kv)
		}
		x, err := prob.ParseRat(val)
		if err != nil {
			return nil, err
		}
		switch key {
		case "time":
			t = x
		case "prob":
			pr = x
		default:
			return nil, fmt.Errorf("core: unknown relax key %q", key)
		}
	}
	return Relax(p, t, pr)
}

func (sc *Script[S]) letSubset(args string) (*Proof[S], error) {
	if sc.Universe == nil {
		return nil, fmt.Errorf("core: subset needs a universe")
	}
	fromExpr, toExpr, ok := strings.Cut(args, "->")
	if !ok {
		return nil, fmt.Errorf("core: subset needs \"<setexpr> -> <setexpr>\"")
	}
	from, err := ParseSetExpr(sc.Registry, fromExpr)
	if err != nil {
		return nil, err
	}
	to, err := ParseSetExpr(sc.Registry, toExpr)
	if err != nil {
		return nil, err
	}
	return SubsetProof(sc.Universe, from, to, sc.Schema)
}

func (sc *Script[S]) letRenameTo(args string) (*Proof[S], error) {
	if sc.Universe == nil {
		return nil, fmt.Errorf("core: renameto needs a universe")
	}
	id, setExpr, ok := strings.Cut(args, " ")
	if !ok {
		return nil, fmt.Errorf("core: renameto needs \"<id> <setexpr>\"")
	}
	p, err := sc.lookup(strings.TrimSpace(id))
	if err != nil {
		return nil, err
	}
	to, err := ParseSetExpr(sc.Registry, setExpr)
	if err != nil {
		return nil, err
	}
	return RenameTo(sc.Universe, p, to)
}

func (sc *Script[S]) runCheck(id string) error {
	if sc.Model == nil || sc.Index == nil {
		return fmt.Errorf("core: check needs a bound model")
	}
	p, err := sc.lookup(id)
	if err != nil {
		return err
	}
	r, err := CheckStatement(sc.Model, sc.Index, p.Stmt)
	if err != nil {
		return err
	}
	fmt.Fprintf(&sc.out, "%s\n", r)
	return nil
}
