package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/prob"
)

// The tests use a tiny integer state space 0..9 with sets defined by
// membership lists.
func listSet(name string, members ...int) Set[int] {
	in := make(map[int]bool, len(members))
	for _, m := range members {
		in[m] = true
	}
	return NewSet(name, func(s int) bool { return in[s] })
}

func testUniverse() *Universe[int] {
	states := make([]int, 10)
	for i := range states {
		states[i] = i
	}
	return NewUniverse(states)
}

func testSchema() SchemaInfo { return SchemaInfo{Name: "test", ExecutionClosed: true} }

func mustPremise(t *testing.T, st Statement[int]) *Proof[int] {
	t.Helper()
	p, err := Premise(st, "test premise")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func stmt(from, to Set[int], time, pr string) Statement[int] {
	return Statement[int]{
		From:   from,
		To:     to,
		Time:   prob.MustParseRat(time),
		Prob:   prob.MustParseRat(pr),
		Schema: testSchema(),
	}
}

func TestSetOperations(t *testing.T) {
	a := listSet("A", 1, 2)
	b := listSet("B", 2, 3)
	u := Union(a, b)
	if u.Name != "A∪B" {
		t.Errorf("union name = %q, want A∪B", u.Name)
	}
	for _, s := range []int{1, 2, 3} {
		if !u.Contains(s) {
			t.Errorf("union missing %d", s)
		}
	}
	if u.Contains(4) {
		t.Error("union contains 4")
	}
	empty := Set[int]{Name: "E"}
	if empty.Contains(1) {
		t.Error("nil-pred set contains 1")
	}
}

func TestUniverseRelations(t *testing.T) {
	u := testUniverse()
	a := listSet("A", 1, 2)
	ab := listSet("AB", 1, 2, 3)
	if !u.Subset(a, ab) {
		t.Error("A ⊆ AB not recognized")
	}
	if u.Subset(ab, a) {
		t.Error("AB ⊆ A wrongly accepted")
	}
	if !u.Equal(a, listSet("A'", 2, 1)) {
		t.Error("equal sets not recognized")
	}
	if u.Count(ab) != 3 {
		t.Errorf("Count = %d, want 3", u.Count(ab))
	}
	w, ok := u.Witness(ab, a)
	if !ok || w != 3 {
		t.Errorf("Witness = %d, %t; want 3, true", w, ok)
	}
	if _, ok := u.Witness(a, ab); ok {
		t.Error("witness found for a true subset")
	}
}

func TestStatementValidate(t *testing.T) {
	a, b := listSet("A", 1), listSet("B", 2)
	if err := stmt(a, b, "3", "1/2").Validate(); err != nil {
		t.Errorf("valid statement rejected: %v", err)
	}
	if err := stmt(a, b, "-1", "1/2").Validate(); err == nil {
		t.Error("negative time accepted")
	}
	if err := stmt(a, b, "1", "3/2").Validate(); err == nil {
		t.Error("probability above one accepted")
	}
}

func TestStatementString(t *testing.T) {
	got := stmt(listSet("T"), listSet("C"), "13", "1/8").String()
	if want := "T --13,1/8--> C  [test]"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestWeaken(t *testing.T) {
	a, b, c := listSet("A", 1), listSet("B", 2), listSet("C", 3)
	p := mustPremise(t, stmt(a, b, "2", "1/2"))
	w, err := Weaken(p, c)
	if err != nil {
		t.Fatal(err)
	}
	if w.Stmt.From.Name != "A∪C" || w.Stmt.To.Name != "B∪C" {
		t.Errorf("weakened statement = %s", w.Stmt)
	}
	if !w.Stmt.Time.Equal(prob.FromInt(2)) || !w.Stmt.Prob.Equal(prob.Half()) {
		t.Errorf("weaken changed bounds: %s", w.Stmt)
	}
	if _, err := Weaken[int](nil, c); !errors.Is(err, ErrNilProof) {
		t.Errorf("Weaken(nil) err = %v", err)
	}
}

func TestComposeHappyPath(t *testing.T) {
	u := testUniverse()
	a, b, c := listSet("A", 1), listSet("B", 2), listSet("C", 3)
	p1 := mustPremise(t, stmt(a, b, "2", "1/2"))
	p2 := mustPremise(t, stmt(b, c, "3", "1/4"))
	p, err := Compose(u, p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Stmt.Time.Equal(prob.FromInt(5)) {
		t.Errorf("composed time = %v, want 5", p.Stmt.Time)
	}
	if !p.Stmt.Prob.Equal(prob.NewRat(1, 8)) {
		t.Errorf("composed prob = %v, want 1/8", p.Stmt.Prob)
	}
	if p.Stmt.From.Name != "A" || p.Stmt.To.Name != "C" {
		t.Errorf("composed endpoints: %s", p.Stmt)
	}
}

func TestComposeSubsetSideCondition(t *testing.T) {
	u := testUniverse()
	a := listSet("A", 1)
	b := listSet("B", 2)
	bc := listSet("BC", 2, 3)
	d := listSet("D", 4)

	// Chaining through a superset is allowed.
	p1 := mustPremise(t, stmt(a, b, "1", "1"))
	p2 := mustPremise(t, stmt(bc, d, "1", "1"))
	if _, err := Compose(u, p1, p2); err != nil {
		t.Errorf("compose through superset failed: %v", err)
	}

	// A genuine gap is rejected.
	p3 := mustPremise(t, stmt(a, bc, "1", "1"))
	p4 := mustPremise(t, stmt(b, d, "1", "1"))
	if _, err := Compose(u, p3, p4); !errors.Is(err, ErrNotChained) {
		t.Errorf("err = %v, want ErrNotChained", err)
	}
}

func TestComposeSchemaConditions(t *testing.T) {
	u := testUniverse()
	a, b, c := listSet("A", 1), listSet("B", 2), listSet("C", 3)

	other := stmt(b, c, "1", "1")
	other.Schema = SchemaInfo{Name: "other", ExecutionClosed: true}
	p1 := mustPremise(t, stmt(a, b, "1", "1"))
	p2 := mustPremise(t, other)
	if _, err := Compose(u, p1, p2); !errors.Is(err, ErrSchemaMismatch) {
		t.Errorf("err = %v, want ErrSchemaMismatch", err)
	}

	unclosed := stmt(a, b, "1", "1")
	unclosed.Schema = SchemaInfo{Name: "unclosed"}
	follow := stmt(b, c, "1", "1")
	follow.Schema = unclosed.Schema
	p3 := mustPremise(t, unclosed)
	p4 := mustPremise(t, follow)
	if _, err := Compose(u, p3, p4); !errors.Is(err, ErrNotExecClosed) {
		t.Errorf("err = %v, want ErrNotExecClosed", err)
	}
}

func TestComposeChain(t *testing.T) {
	u := testUniverse()
	sets := []Set[int]{listSet("S0", 0), listSet("S1", 1), listSet("S2", 2), listSet("S3", 3)}
	var ps []*Proof[int]
	for i := 0; i < 3; i++ {
		ps = append(ps, mustPremise(t, stmt(sets[i], sets[i+1], "1", "1/2")))
	}
	p, err := ComposeChain(u, ps...)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Stmt.Time.Equal(prob.FromInt(3)) || !p.Stmt.Prob.Equal(prob.NewRat(1, 8)) {
		t.Errorf("chain bounds = %v, %v; want 3, 1/8", p.Stmt.Time, p.Stmt.Prob)
	}
	if got := len(p.Premises()); got != 3 {
		t.Errorf("chain has %d premises, want 3", got)
	}
	if _, err := ComposeChain[int](u); !errors.Is(err, ErrNilProof) {
		t.Errorf("empty chain err = %v", err)
	}
}

func TestRelax(t *testing.T) {
	a, b := listSet("A", 1), listSet("B", 2)
	p := mustPremise(t, stmt(a, b, "2", "1/2"))
	r, err := Relax(p, prob.FromInt(5), prob.NewRat(1, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Stmt.Time.Equal(prob.FromInt(5)) || !r.Stmt.Prob.Equal(prob.NewRat(1, 4)) {
		t.Errorf("relaxed bounds = %v, %v", r.Stmt.Time, r.Stmt.Prob)
	}
	if _, err := Relax(p, prob.FromInt(1), prob.NewRat(1, 4)); !errors.Is(err, ErrNotWeaker) {
		t.Errorf("tighter time accepted: %v", err)
	}
	if _, err := Relax(p, prob.FromInt(3), prob.NewRat(3, 4)); !errors.Is(err, ErrNotWeaker) {
		t.Errorf("larger probability accepted: %v", err)
	}
}

func TestSubsetProofAndRename(t *testing.T) {
	u := testUniverse()
	a := listSet("A", 1)
	ab := listSet("AB", 1, 2)
	p, err := SubsetProof(u, a, ab, testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if !p.Stmt.Time.IsZero() || !p.Stmt.Prob.IsOne() {
		t.Errorf("subset statement bounds = %v, %v; want 0, 1", p.Stmt.Time, p.Stmt.Prob)
	}
	if _, err := SubsetProof(u, ab, a, testSchema()); !errors.Is(err, ErrNotSubset) {
		t.Errorf("err = %v, want ErrNotSubset", err)
	}

	// Rename the target to an extensionally equal set.
	alias := listSet("A∪A", 1, 2)
	r, err := RenameTo(u, p, alias)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stmt.To.Name != "A∪A" {
		t.Errorf("renamed target = %q", r.Stmt.To.Name)
	}
	if _, err := RenameTo(u, p, a); !errors.Is(err, ErrNotEqual) {
		t.Errorf("unequal rename accepted: %v", err)
	}
	r2, err := RenameFrom(u, p, listSet("A'", 1))
	if err != nil {
		t.Fatal(err)
	}
	if r2.Stmt.From.Name != "A'" {
		t.Errorf("renamed source = %q", r2.Stmt.From.Name)
	}
	if _, err := RenameFrom(u, p, ab); !errors.Is(err, ErrNotEqual) {
		t.Errorf("unequal source rename accepted: %v", err)
	}
}

func TestRender(t *testing.T) {
	u := testUniverse()
	a, b, c := listSet("A", 1), listSet("B", 2), listSet("C", 3)
	p1 := mustPremise(t, stmt(a, b, "1", "1/2"))
	p2 := mustPremise(t, stmt(b, c, "2", "1/2"))
	p, err := Compose(u, p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	out := p.Render()
	for _, want := range []string{"A --3,1/4--> C", "├─", "└─", "premise — test premise"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered proof missing %q:\n%s", want, out)
		}
	}
}

func TestParseStatement(t *testing.T) {
	reg := map[string]Set[int]{
		"T":  listSet("T", 1),
		"RT": listSet("RT", 2),
		"C":  listSet("C", 3),
	}
	tests := []struct {
		line    string
		want    string
		wantErr bool
	}{
		{line: "T --13,1/8--> C", want: "T --13,1/8--> C  [test]"},
		{line: "T --2,1--> RT∪C", want: "RT∪C"},
		{line: "T --2,1--> RT+C", want: "RT∪C"},
		{line: "  T  --  2 , 1  -->  C  ", want: "T --2,1--> C  [test]"},
		{line: "T --> C", wantErr: true},
		{line: "T --x,1--> C", wantErr: true},
		{line: "T --1,y--> C", wantErr: true},
		{line: "T --1--> C", wantErr: true},
		{line: "X --1,1--> C", wantErr: true},
		{line: "T --1,1--> X", wantErr: true},
		{line: "T --1,3/2--> C", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.line, func(t *testing.T) {
			st, err := ParseStatement(reg, tt.line, testSchema())
			if tt.wantErr {
				if err == nil {
					t.Fatalf("parsed to %s, want error", st)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseStatement: %v", err)
			}
			if !strings.Contains(st.String(), tt.want) {
				t.Errorf("parsed %q, want it to contain %q", st.String(), tt.want)
			}
		})
	}
}

func TestParseSetExprErrors(t *testing.T) {
	reg := map[string]Set[int]{"A": listSet("A", 1)}
	if _, err := ParseSetExpr(reg, ""); err == nil {
		t.Error("empty expression accepted")
	}
	if _, err := ParseSetExpr(reg, "A+B"); err == nil {
		t.Error("unknown set accepted")
	} else if !strings.Contains(err.Error(), "known: A") {
		t.Errorf("error %q does not list known sets", err)
	}
}

func TestRetryLoop(t *testing.T) {
	paper := RetryLoop{Phases: []Phase{
		{Name: "RT→F∪G∪P", Time: prob.FromInt(3), Prob: prob.One()},
		{Name: "F→G∪P", Time: prob.FromInt(2), Prob: prob.Half()},
		{Name: "G→P", Time: prob.FromInt(5), Prob: prob.NewRat(1, 4)},
	}}
	e, err := paper.ExpectedTime()
	if err != nil {
		t.Fatal(err)
	}
	if !e.Equal(prob.FromInt(60)) {
		t.Errorf("E = %v, want 60", e)
	}
	if got := paper.SuccessProb(); !got.Equal(prob.NewRat(1, 8)) {
		t.Errorf("success prob = %v, want 1/8", got)
	}
	if got := paper.PassTime(); !got.Equal(prob.FromInt(10)) {
		t.Errorf("pass time = %v, want 10", got)
	}
	total, err := paper.ExpectedTimeBound(prob.FromInt(2), prob.One())
	if err != nil {
		t.Fatal(err)
	}
	if !total.Equal(prob.FromInt(63)) {
		t.Errorf("total = %v, want 63", total)
	}
}

func TestRetryLoopEdgeCases(t *testing.T) {
	if _, err := (RetryLoop{}).ExpectedTime(); !errors.Is(err, ErrNoPhases) {
		t.Errorf("empty loop err = %v", err)
	}
	never := RetryLoop{Phases: []Phase{{Time: prob.One(), Prob: prob.Zero()}}}
	if _, err := never.ExpectedTime(); !errors.Is(err, ErrZeroSuccess) {
		t.Errorf("zero-success err = %v", err)
	}
	bad := RetryLoop{Phases: []Phase{{Time: prob.NewRat(-1, 1), Prob: prob.One()}}}
	if _, err := bad.ExpectedTime(); err == nil {
		t.Error("negative time accepted")
	}
	sure := RetryLoop{Phases: []Phase{{Time: prob.FromInt(7), Prob: prob.One()}}}
	e, err := sure.ExpectedTime()
	if err != nil {
		t.Fatal(err)
	}
	if !e.Equal(prob.FromInt(7)) {
		t.Errorf("deterministic loop E = %v, want 7", e)
	}
}

func TestRetryLoopSingleCoin(t *testing.T) {
	// One phase of time 1 succeeding with probability 1/2: expected time
	// of a fair geometric, 2.
	coin := RetryLoop{Phases: []Phase{{Time: prob.One(), Prob: prob.Half()}}}
	e, err := coin.ExpectedTime()
	if err != nil {
		t.Fatal(err)
	}
	if !e.Equal(prob.FromInt(2)) {
		t.Errorf("E = %v, want 2", e)
	}
}

func TestPhasesFromStatements(t *testing.T) {
	a, b, c := listSet("A", 1), listSet("B", 2), listSet("C", 3)
	phases := PhasesFromStatements(stmt(a, b, "3", "1"), stmt(b, c, "2", "1/2"))
	if len(phases) != 2 {
		t.Fatalf("got %d phases", len(phases))
	}
	if phases[0].Name != "A→B" || phases[1].Name != "B→C" {
		t.Errorf("phase names = %q, %q", phases[0].Name, phases[1].Name)
	}
	if !phases[1].Prob.Equal(prob.Half()) {
		t.Errorf("phase prob = %v", phases[1].Prob)
	}
}

func TestUnitTimeSchema(t *testing.T) {
	s := UnitTimeSchema(2)
	if s.Name != "Unit-Time(k=2)" || !s.ExecutionClosed {
		t.Errorf("UnitTimeSchema = %+v", s)
	}
}
