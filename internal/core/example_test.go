package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/prob"
)

// The composition theorem on two toy statements: U --2,1/2--> U' and
// U' --3,1/4--> U” chain into U --5,1/8--> U”.
func ExampleCompose() {
	u := core.NewUniverse([]int{0, 1, 2})
	setU := core.NewSet("U", func(s int) bool { return s == 0 })
	setV := core.NewSet("U'", func(s int) bool { return s == 1 })
	setW := core.NewSet("U''", func(s int) bool { return s == 2 })
	schema := core.SchemaInfo{Name: "Advs", ExecutionClosed: true}

	p1, _ := core.Premise(core.Statement[int]{
		From: setU, To: setV,
		Time: prob.FromInt(2), Prob: prob.Half(),
		Schema: schema,
	}, "first leg")
	p2, _ := core.Premise(core.Statement[int]{
		From: setV, To: setW,
		Time: prob.FromInt(3), Prob: prob.NewRat(1, 4),
		Schema: schema,
	}, "second leg")

	composed, err := core.Compose(u, p1, p2)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(composed.Stmt)
	// Output: U --5,1/8--> U''  [Advs]
}

// The Section 6.2 expected-time recurrence: three phases of the
// Lehmann–Rabin loop solve to exactly 60, and the end-to-end bound to 63.
func ExampleRetryLoop() {
	loop := core.RetryLoop{Phases: []core.Phase{
		{Name: "RT→F∪G∪P", Time: prob.FromInt(3), Prob: prob.One()},
		{Name: "F→G∪P", Time: prob.FromInt(2), Prob: prob.Half()},
		{Name: "G→P", Time: prob.FromInt(5), Prob: prob.NewRat(1, 4)},
	}}
	e, _ := loop.ExpectedTime()
	total, _ := loop.ExpectedTimeBound(prob.FromInt(2), prob.One())
	fmt.Println("E[loop] =", e)
	fmt.Println("bound   =", total)
	// Output:
	// E[loop] = 60
	// bound   = 63
}

// Statements parse from the paper's arrow notation.
func ExampleParseStatement() {
	registry := map[string]core.Set[int]{
		"T": core.NewSet("T", func(s int) bool { return s == 0 }),
		"C": core.NewSet("C", func(s int) bool { return s == 1 }),
	}
	st, err := core.ParseStatement(registry, "T --13,1/8--> C", core.UnitTimeSchema(1))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(st)
	// Output: T --13,1/8--> C  [Unit-Time(k=1)]
}

// Proposition 3.2 in action: adjoining a set to both sides preserves the
// bounds.
func ExampleWeaken() {
	f := core.NewSet("F", func(s int) bool { return s == 0 })
	gp := core.NewSet("G∪P", func(s int) bool { return s == 1 })
	c := core.NewSet("C", func(s int) bool { return s == 2 })

	p, _ := core.Premise(core.Statement[int]{
		From: f, To: gp,
		Time: prob.FromInt(2), Prob: prob.Half(),
		Schema: core.UnitTimeSchema(1),
	}, "Proposition A.14")
	w, _ := core.Weaken(p, c)
	fmt.Println(w.Stmt)
	// Output: F∪C --2,1/2--> G∪P∪C  [Unit-Time(k=1)]
}
