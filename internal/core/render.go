package core

import (
	"fmt"
	"strings"
)

// Render pretty-prints the derivation tree, one node per line, with
// box-drawing connectors — the Section 6.2 derivation as a machine-checked
// artifact:
//
//	T --13,1/8--> C  [Unit-Time(k=1)]   compose (Thm 3.4)
//	├─ T --2,1--> RT∪C  [...]           premise — Proposition A.3
//	└─ ...
func (p *Proof[S]) Render() string {
	var b strings.Builder
	p.render(&b, "", "")
	return b.String()
}

func (p *Proof[S]) render(b *strings.Builder, prefix, childPrefix string) {
	b.WriteString(prefix)
	b.WriteString(p.Stmt.String())
	b.WriteString("   ")
	b.WriteString(string(p.Rule))
	if p.Note != "" {
		fmt.Fprintf(b, " — %s", p.Note)
	}
	b.WriteString("\n")
	for i, c := range p.Children {
		if i == len(p.Children)-1 {
			c.render(b, childPrefix+"└─ ", childPrefix+"   ")
		} else {
			c.render(b, childPrefix+"├─ ", childPrefix+"│  ")
		}
	}
}
