package core

import (
	"errors"
	"fmt"

	"repro/internal/prob"
)

// This file implements the expected-time analysis of Section 6.2 of the
// paper. The proof chain gives a loop: from RT, the phases
//
//	RT --3,1--> F∪G∪P,  F∪G∪P --2,1/2--> G∪P,  G∪P --5,1/4--> P
//
// either all succeed (probability 1/8, time at most 10) or fail at some
// phase, after which the state is back in RT and the loop restarts. The
// paper captures this with the random variable V satisfying
//
//	V = 1/8·10 + 1/2·(5 + V1) + 3/8·(10 + V2),
//
// whose expectation solves to E[V] = 60; adding the deterministic entry
// (T --2--> RT∪C) and exit (P --1--> C) arrows yields the bound of 63 on
// the expected time for progress from T.

// Phase is one probabilistic phase of a retry loop: it takes at most Time
// and succeeds with probability at least Prob; on failure the whole loop
// restarts (after the full Time of the phase has elapsed, the worst case).
type Phase struct {
	// Name identifies the phase in reports.
	Name string
	// Time is the phase's worst-case duration.
	Time prob.Rat
	// Prob is the phase's success probability lower bound.
	Prob prob.Rat
}

// RetryLoop is a sequence of phases repeated until all succeed in order.
type RetryLoop struct {
	Phases []Phase
}

// Errors of the retry analysis.
var (
	ErrNoPhases    = errors.New("core: retry loop with no phases")
	ErrZeroSuccess = errors.New("core: retry loop can never fully succeed")
)

// PhasesFromStatements builds loop phases from the chained statements of a
// derivation, using each statement's time and probability bounds.
func PhasesFromStatements[S comparable](sts ...Statement[S]) []Phase {
	out := make([]Phase, len(sts))
	for i, st := range sts {
		out[i] = Phase{
			Name: fmt.Sprintf("%s→%s", st.From.Name, st.To.Name),
			Time: st.Time,
			Prob: st.Prob,
		}
	}
	return out
}

// SuccessProb returns the probability that one pass of the loop succeeds
// end to end: the product of the phase probabilities.
func (r RetryLoop) SuccessProb() prob.Rat {
	ps := make([]prob.Rat, len(r.Phases))
	for i, ph := range r.Phases {
		ps[i] = ph.Prob
	}
	return prob.ProdRats(ps...)
}

// PassTime returns the worst-case duration of one full pass of the loop.
func (r RetryLoop) PassTime() prob.Rat {
	ts := make([]prob.Rat, len(r.Phases))
	for i, ph := range r.Phases {
		ts[i] = ph.Time
	}
	return prob.SumRats(ts...)
}

// ExpectedTime returns the exact solution of the renewal recurrence
//
//	E = Σ_i q_i (T_i + E) + P · T_success,
//
// where q_i is the probability of failing first at phase i, T_i the time
// spent up to and including that phase, P the end-to-end success
// probability and T_success the full pass time. For the paper's three
// phases this evaluates to exactly 60.
func (r RetryLoop) ExpectedTime() (prob.Rat, error) {
	if len(r.Phases) == 0 {
		return prob.Rat{}, ErrNoPhases
	}
	for _, ph := range r.Phases {
		if ph.Time.Sign() < 0 {
			return prob.Rat{}, fmt.Errorf("core: phase %q has negative time %v", ph.Name, ph.Time)
		}
		if !ph.Prob.IsProbability() {
			return prob.Rat{}, fmt.Errorf("core: phase %q has probability %v outside [0, 1]", ph.Name, ph.Prob)
		}
	}
	success := r.SuccessProb()
	if success.IsZero() {
		return prob.Rat{}, ErrZeroSuccess
	}

	// base = Σ_i q_i·T_i + P·T_success; the recurrence is E = base + (1-P)·E.
	base := prob.Zero()
	reachPhase := prob.One() // probability of reaching phase i
	elapsed := prob.Zero()   // time through phase i
	for _, ph := range r.Phases {
		elapsed = elapsed.Add(ph.Time)
		failHere := reachPhase.Mul(prob.One().Sub(ph.Prob))
		base = base.Add(failHere.Mul(elapsed))
		reachPhase = reachPhase.Mul(ph.Prob)
	}
	base = base.Add(success.Mul(elapsed))

	return prob.SolveGeometric(base, prob.One().Sub(success))
}

// ExpectedTimeBound composes the loop bound with deterministic entry and
// exit arrows: total = entryTime + E[loop] + exitTime. For the paper,
// entry is T --2--> RT∪C, exit is P --1--> C, and the total is 63.
func (r RetryLoop) ExpectedTimeBound(entryTime, exitTime prob.Rat) (prob.Rat, error) {
	e, err := r.ExpectedTime()
	if err != nil {
		return prob.Rat{}, err
	}
	return entryTime.Add(e).Add(exitTime), nil
}
