package core

import (
	"errors"
	"fmt"

	"repro/internal/mdp"
	"repro/internal/prob"
)

// ErrNonIntegerTime is returned when a statement's time bound is not a
// nonnegative integer; the digitized checker counts unit ticks.
var ErrNonIntegerTime = errors.New("core: time bound must be a nonnegative integer for the digitized checker")

// ErrEmptyFrom is returned when no reachable state lies in the statement's
// source set, making the check vacuous.
var ErrEmptyFrom = errors.New("core: no reachable state in the source set")

// CheckResult reports the outcome of checking a statement against a model.
type CheckResult[S comparable] struct {
	Stmt Statement[S]
	// Holds reports whether the measured worst case satisfies the bound.
	Holds bool
	// WorstProb is the minimum, over reachable states in From and over
	// all adversaries of the digitized schema, of the probability of
	// reaching To within the time bound. Holds iff WorstProb >= Stmt.Prob.
	WorstProb prob.Rat
	// WorstState is a source state attaining WorstProb.
	WorstState S
	// FromCount and ToCount are the sizes of the source and target sets
	// within the reachable space.
	FromCount, ToCount int
}

// String formats the result as one report line.
func (r CheckResult[S]) String() string {
	verdict := "HOLDS"
	if !r.Holds {
		verdict = "FAILS"
	}
	return fmt.Sprintf("%s  %s: worst-case P = %v (claimed ≥ %v) at %v [|From|=%d |To|=%d]",
		verdict, r.Stmt, r.WorstProb, r.Stmt.Prob, r.WorstState, r.FromCount, r.ToCount)
}

// intTime converts a rational time bound to an integer tick horizon.
func intTime(t prob.Rat) (int, error) {
	b := t.Big()
	if b.Sign() < 0 || !b.IsInt() {
		return 0, fmt.Errorf("%w: %v", ErrNonIntegerTime, t)
	}
	num := b.Num()
	if !num.IsInt64() || num.Int64() > int64(1<<30) {
		return 0, fmt.Errorf("core: time bound %v too large", t)
	}
	return int(num.Int64()), nil
}

// CheckStatement verifies a time-bound statement against an enumerated
// model: it computes, by exact value iteration, the minimum probability
// over all digitized adversaries of reaching the statement's target within
// its time bound, starting from the worst reachable state of its source
// set. The statement holds when that minimum is at least the claimed
// probability.
//
// The model's MDP and state index are produced by mdp.FromAutomaton from a
// sched.Product automaton; the statement's schema is only recorded, not
// interpreted — the digitization is fixed by the product.
func CheckStatement[S comparable](m *mdp.MDP, ix *mdp.Index[S], st Statement[S]) (CheckResult[S], error) {
	res := CheckResult[S]{Stmt: st}
	if err := st.Validate(); err != nil {
		return res, err
	}
	horizon, err := intTime(st.Time)
	if err != nil {
		return res, err
	}

	fromMask := ix.Mask(func(s S) bool { return st.From.Contains(s) })
	toMask := ix.Mask(func(s S) bool { return st.To.Contains(s) })
	for _, in := range fromMask {
		if in {
			res.FromCount++
		}
	}
	for _, in := range toMask {
		if in {
			res.ToCount++
		}
	}
	if res.FromCount == 0 {
		return res, ErrEmptyFrom
	}

	values, err := m.ReachWithinTicks(toMask, horizon, mdp.MinProb)
	if err != nil {
		return res, err
	}

	first := true
	for s, in := range fromMask {
		if !in {
			continue
		}
		if first || values[s].Less(res.WorstProb) {
			res.WorstProb = values[s]
			res.WorstState = ix.State(s)
			first = false
		}
	}
	res.Holds = !res.WorstProb.Less(st.Prob)
	return res, nil
}

// CheckAll checks a list of statements against the same model, stopping at
// the first error; failed statements (Holds == false) are not errors.
func CheckAll[S comparable](m *mdp.MDP, ix *mdp.Index[S], sts ...Statement[S]) ([]CheckResult[S], error) {
	out := make([]CheckResult[S], 0, len(sts))
	for _, st := range sts {
		r, err := CheckStatement(m, ix, st)
		if err != nil {
			return out, fmt.Errorf("checking %s: %w", st, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// CheckedPremise checks a statement against a model and, on success, wraps
// it as a premise whose note records the measured worst case.
func CheckedPremise[S comparable](m *mdp.MDP, ix *mdp.Index[S], st Statement[S], origin string) (*Proof[S], CheckResult[S], error) {
	r, err := CheckStatement(m, ix, st)
	if err != nil {
		return nil, r, err
	}
	if !r.Holds {
		return nil, r, fmt.Errorf("core: statement %s fails: worst-case P = %v at %v", st, r.WorstProb, r.WorstState)
	}
	p, err := Premise(st, fmt.Sprintf("%s; measured worst-case P = %v", origin, r.WorstProb))
	return p, r, err
}
