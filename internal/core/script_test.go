package core

import (
	"strings"
	"testing"

	"repro/internal/mdp"
	"repro/internal/pa"
	"repro/internal/prob"
)

// scriptFixture builds a Script over a 4-state tick chain 0→1→2→3 with
// sets A={0}, B={1}, CC={2,3}, D={3}.
func scriptFixture(t *testing.T, withModel bool) *Script[int] {
	t.Helper()
	reg := map[string]Set[int]{
		"A":  listSet("A", 0),
		"B":  listSet("B", 1),
		"CC": listSet("CC", 2, 3),
		"D":  listSet("D", 3),
	}
	sc := &Script[int]{
		Registry: reg,
		Schema:   testSchema(),
		Universe: NewUniverse([]int{0, 1, 2, 3}),
	}
	if withModel {
		auto := &pa.Automaton[int]{
			Start: []int{0},
			Steps: func(s int) []pa.Step[int] {
				if s >= 3 {
					return nil
				}
				return []pa.Step[int]{{Action: "tick", Next: prob.Point(s + 1)}}
			},
			Duration: func(a string) prob.Rat {
				if a == "tick" {
					return prob.One()
				}
				return prob.Zero()
			},
		}
		m, ix, err := mdp.FromAutomaton(auto, 0)
		if err != nil {
			t.Fatal(err)
		}
		sc.Model = m
		sc.Index = ix
	}
	return sc
}

func TestScriptFullDerivation(t *testing.T) {
	sc := scriptFixture(t, true)
	out, err := sc.Run(`
# The toy chain: A reaches B in one tick, B reaches CC in one tick.
let ab = premise A --1,1--> B : step one
let bc = premise B --1,1--> CC : step two
let ac = compose ab bc
check ac
print ac
`)
	if err != nil {
		t.Fatalf("Run: %v\noutput:\n%s", err, out)
	}
	p, ok := sc.Proof("ac")
	if !ok {
		t.Fatal("proof ac not defined")
	}
	if !p.Stmt.Time.Equal(prob.FromInt(2)) || !p.Stmt.Prob.IsOne() {
		t.Errorf("composed statement = %s", p.Stmt)
	}
	for _, want := range []string{"HOLDS", "A --2,1--> CC", "compose"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestScriptWeakenRelaxSubset(t *testing.T) {
	sc := scriptFixture(t, false)
	_, err := sc.Run(`
let ab = premise A --1,1--> B
let w = weaken ab + D
let r = relax w time=5 prob=1/2
let s = subset D -> CC
`)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	w, _ := sc.Proof("w")
	if w.Stmt.From.Name != "A∪D" {
		t.Errorf("weakened from = %q", w.Stmt.From.Name)
	}
	r, _ := sc.Proof("r")
	if !r.Stmt.Time.Equal(prob.FromInt(5)) || !r.Stmt.Prob.Equal(prob.Half()) {
		t.Errorf("relaxed statement = %s", r.Stmt)
	}
	s, _ := sc.Proof("s")
	if s.Rule != RuleSubset {
		t.Errorf("subset rule = %q", s.Rule)
	}
}

func TestScriptCheckPremises(t *testing.T) {
	sc := scriptFixture(t, true)
	sc.CheckPremises = true
	out, err := sc.Run(`let ab = premise A --1,1--> B : checked eagerly`)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !strings.Contains(out, "HOLDS") {
		t.Errorf("eager check produced no report:\n%s", out)
	}

	// A premise that fails the model check aborts the script.
	sc2 := scriptFixture(t, true)
	sc2.CheckPremises = true
	if _, err := sc2.Run(`let bad = premise A --1,1--> D`); err == nil {
		t.Error("failing premise accepted under CheckPremises")
	}
}

func TestScriptErrors(t *testing.T) {
	tests := []struct {
		name   string
		script string
	}{
		{name: "unknown command", script: "frobnicate x"},
		{name: "let without equals", script: "let x premise A --1,1--> B"},
		{name: "empty identifier", script: "let  = premise A --1,1--> B"},
		{name: "unknown derivation", script: "let x = conjure A"},
		{name: "redefinition", script: "let x = premise A --1,1--> B\nlet x = premise A --1,1--> B"},
		{name: "undefined reference", script: "let y = weaken nope + D"},
		{name: "weaken without plus", script: "let x = premise A --1,1--> B\nlet y = weaken x"},
		{name: "compose single", script: "let x = premise A --1,1--> B\nlet y = compose x"},
		{name: "relax malformed", script: "let x = premise A --1,1--> B\nlet y = relax x t=2"},
		{name: "relax unknown key", script: "let x = premise A --1,1--> B\nlet y = relax x speed=2 prob=1"},
		{name: "subset without arrow", script: "let s = subset A CC"},
		{name: "subset false", script: "let s = subset CC -> D"},
		{name: "print undefined", script: "print ghost"},
		{name: "check undefined", script: "let x = premise A --1,1--> B\ncheck ghost"},
		{name: "bad statement", script: "let x = premise A --> B"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			sc := scriptFixture(t, true)
			if _, err := sc.Run(tt.script); err == nil {
				t.Errorf("script %q accepted", tt.script)
			}
		})
	}
}

func TestScriptCheckWithoutModel(t *testing.T) {
	sc := scriptFixture(t, false)
	if _, err := sc.Run("let x = premise A --1,1--> B\ncheck x"); err == nil {
		t.Error("check accepted without a model")
	}
	sc2 := scriptFixture(t, false)
	sc2.CheckPremises = true
	if _, err := sc2.Run("let x = premise A --1,1--> B"); err == nil {
		t.Error("CheckPremises accepted without a model")
	}
}

func TestScriptCommentsAndBlankLines(t *testing.T) {
	sc := scriptFixture(t, false)
	out, err := sc.Run("\n# just a comment\n\n   \n")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if out != "" {
		t.Errorf("output = %q, want empty", out)
	}
}

func TestCheckStatementErrors(t *testing.T) {
	sc := scriptFixture(t, true)
	a, d := listSet("A", 0), listSet("D", 3)

	// Non-integer time.
	st := stmt(a, d, "1/2", "1")
	if _, err := CheckStatement(sc.Model, sc.Index, st); err == nil {
		t.Error("fractional time accepted")
	}

	// Empty source set.
	empty := listSet("E")
	st2 := stmt(empty, d, "1", "1")
	if _, err := CheckStatement(sc.Model, sc.Index, st2); err == nil {
		t.Error("empty source accepted")
	}

	// Invalid bounds.
	st3 := stmt(a, d, "1", "2")
	if _, err := CheckStatement(sc.Model, sc.Index, st3); err == nil {
		t.Error("probability 2 accepted")
	}
}

func TestCheckStatementCounts(t *testing.T) {
	sc := scriptFixture(t, true)
	st := stmt(listSet("A", 0), listSet("CC", 2, 3), "3", "1")
	r, err := CheckStatement(sc.Model, sc.Index, st)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Holds || r.FromCount != 1 || r.ToCount != 2 {
		t.Errorf("result = %+v", r)
	}
	if !strings.Contains(r.String(), "HOLDS") {
		t.Errorf("result string = %q", r.String())
	}

	fail := stmt(listSet("A", 0), listSet("D", 3), "1", "1")
	rf, err := CheckStatement(sc.Model, sc.Index, fail)
	if err != nil {
		t.Fatal(err)
	}
	if rf.Holds {
		t.Error("unreachable-in-time statement holds")
	}
	if !strings.Contains(rf.String(), "FAILS") {
		t.Errorf("result string = %q", rf.String())
	}
}
