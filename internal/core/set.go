// Package core implements the proof method of Lynch, Saias and Segala,
// "Proving Time Bounds for Randomized Distributed Algorithms" (PODC 1994):
// time-bounded progress statements U --t,p--> U' (Definition 3.1), the
// union-weakening rule (Proposition 3.2), the composition theorem
// (Theorem 3.4) with its execution-closure side condition, derived
// relaxation rules, machine-checked proof trees, and the expected-time
// recurrence analysis of Section 6.2.
//
// Statements can be taken as premises (with provenance), derived from
// other statements by the paper's rules, and checked against a model: the
// digitized worst-case checker computes, by exact value iteration on the
// scheduler-product MDP, the minimum probability over all adversaries of
// reaching the target set within the time bound, from the worst reachable
// source state.
package core

import (
	"fmt"
	"strings"
)

// Set is a named set of states, given extensionally by a predicate. Names
// follow the paper's conventions ("T", "RT", "F∪G∪P", ...) and appear in
// statements and proof trees.
type Set[S comparable] struct {
	// Name renders the set in statements.
	Name string
	// Pred reports membership.
	Pred func(S) bool
}

// NewSet builds a named set.
func NewSet[S comparable](name string, pred func(S) bool) Set[S] {
	return Set[S]{Name: name, Pred: pred}
}

// Contains reports membership of s, treating a nil predicate as empty.
func (u Set[S]) Contains(s S) bool { return u.Pred != nil && u.Pred(s) }

// Union returns the union of the given sets, named "A∪B∪...".
func Union[S comparable](sets ...Set[S]) Set[S] {
	names := make([]string, len(sets))
	preds := make([]func(S) bool, len(sets))
	for i, set := range sets {
		names[i] = set.Name
		preds[i] = set.Pred
	}
	return Set[S]{
		Name: strings.Join(names, "∪"),
		Pred: func(s S) bool {
			for _, p := range preds {
				if p != nil && p(s) {
					return true
				}
			}
			return false
		},
	}
}

// Universe is an explicit finite collection of states over which set
// relations (subset, equality) are decided extensionally. The worst-case
// checker uses the reachable states of the model under analysis, matching
// the paper's convention that state sets are sets of reachable states.
type Universe[S comparable] struct {
	states []S
}

// NewUniverse builds a universe from a state list; the slice is copied.
func NewUniverse[S comparable](states []S) *Universe[S] {
	return &Universe[S]{states: append([]S(nil), states...)}
}

// Len returns the number of states in the universe.
func (u *Universe[S]) Len() int { return len(u.states) }

// Subset reports whether a ⊆ b over the universe.
func (u *Universe[S]) Subset(a, b Set[S]) bool {
	for _, s := range u.states {
		if a.Contains(s) && !b.Contains(s) {
			return false
		}
	}
	return true
}

// Equal reports whether a and b contain the same universe states.
func (u *Universe[S]) Equal(a, b Set[S]) bool {
	return u.Subset(a, b) && u.Subset(b, a)
}

// Count returns how many universe states are in the set.
func (u *Universe[S]) Count(a Set[S]) int {
	n := 0
	for _, s := range u.states {
		if a.Contains(s) {
			n++
		}
	}
	return n
}

// Witness returns a universe state in a but not in b, for diagnostics.
func (u *Universe[S]) Witness(a, b Set[S]) (S, bool) {
	for _, s := range u.states {
		if a.Contains(s) && !b.Contains(s) {
			return s, true
		}
	}
	var zero S
	return zero, false
}

// SchemaInfo carries the adversary-schema identity of a statement and the
// execution-closure property that Theorem 3.4 requires. Statements may be
// composed only when their schemas agree and are execution closed.
type SchemaInfo struct {
	// Name identifies the schema, e.g. "Unit-Time(k=1)".
	Name string
	// ExecutionClosed declares Definition 3.3 for the schema.
	ExecutionClosed bool
}

// String returns the schema name.
func (si SchemaInfo) String() string { return si.Name }

// UnitTimeSchema describes the digitized Unit-Time schema with the given
// steps-per-window bound. The schema is execution closed: the paper argues
// this for Unit-Time in Section 6.2 (knowing a longer past only reinforces
// the constraint that each ready process is scheduled within time 1), and
// the digitized version inherits the argument because all scheduling
// obligations are part of the product state.
func UnitTimeSchema(stepsPerWindow int) SchemaInfo {
	return SchemaInfo{
		Name:            fmt.Sprintf("Unit-Time(k=%d)", stepsPerWindow),
		ExecutionClosed: true,
	}
}
