package sim

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
)

// mkSet builds a distinguishable checkpoint set for artifact tests.
func mkSet(seed int64) CheckpointSet {
	return CheckpointSet{
		"stage": {
			Version:   checkpointVersion,
			Kind:      "hitting",
			Seed:      seed,
			Trials:    128,
			ChunkSize: 64,
			Chunks: []ChunkRecord{
				{Index: 0, Acc: json.RawMessage(`{"n":64}`)},
			},
		},
	}
}

// artifactCounters is a test ArtifactMetrics.
type artifactCounters struct {
	retries, corrupt int
	fallbackGen      int
}

func (c *artifactCounters) ArtifactRetried()       { c.retries++ }
func (c *artifactCounters) ArtifactFallback(g int) { c.fallbackGen = g }
func (c *artifactCounters) ArtifactCorrupt()       { c.corrupt++ }

// TestArtifactRoundTrip: Save writes a checksummed envelope and Load
// returns the identical set.
func TestArtifactRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	var s ArtifactStore
	want := mkSet(42)
	if err := s.Save(path, want); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"artifact_version"`, `"crc32c"`, `"payload"`} {
		if !strings.Contains(string(raw), key) {
			t.Fatalf("saved artifact missing %s:\n%s", key, raw)
		}
	}
	got, info, err := s.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Generation != 0 || info.Path != path || len(info.Corrupt) != 0 {
		t.Fatalf("LoadInfo = %+v, want generation 0 from %s", info, path)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestArtifactLegacyV1: a pre-envelope bare-JSON state file still loads.
func TestArtifactLegacyV1(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	want := mkSet(7)
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpointSet(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("legacy load mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestArtifactMissingIsFresh: no generation on disk means an empty set,
// not an error.
func TestArtifactMissingIsFresh(t *testing.T) {
	var s ArtifactStore
	cs, info, err := s.Load(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil || len(cs) != 0 {
		t.Fatalf("Load missing = %v, %v; want empty set", cs, err)
	}
	if info.Generation != -1 || info.Path != "" {
		t.Fatalf("LoadInfo = %+v, want fresh (-1)", info)
	}
}

// TestArtifactRotation: repeated saves keep the newest Keep generations,
// each one generation apart.
func TestArtifactRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	s := ArtifactStore{Keep: 3}
	for seed := int64(1); seed <= 4; seed++ {
		if err := s.Save(path, mkSet(seed)); err != nil {
			t.Fatal(err)
		}
	}
	for g, wantSeed := range map[int]int64{0: 4, 1: 3, 2: 2} {
		data, err := os.ReadFile(genPath(path, g))
		if err != nil {
			t.Fatalf("generation %d: %v", g, err)
		}
		cs, err := decodeArtifact(genPath(path, g), data)
		if err != nil {
			t.Fatalf("generation %d: %v", g, err)
		}
		if got := cs["stage"].Seed; got != wantSeed {
			t.Fatalf("generation %d holds seed %d, want %d", g, got, wantSeed)
		}
	}
	if _, err := os.ReadFile(genPath(path, 3)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("generation 3 exists; rotation did not drop the oldest (err=%v)", err)
	}
}

// TestArtifactFallback: a corrupted current generation falls back to the
// newest valid backup, reporting the corrupt file and bumping metrics.
func TestArtifactFallback(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	met := &artifactCounters{}
	s := ArtifactStore{Keep: 3, Metrics: met}
	if err := s.Save(path, mkSet(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(path, mkSet(2)); err != nil {
		t.Fatal(err)
	}
	// Truncate the current generation mid-payload: a torn write.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	cs, info, err := s.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := cs["stage"].Seed; got != 1 {
		t.Fatalf("fallback loaded seed %d, want 1 (the backup)", got)
	}
	if info.Generation != 1 || len(info.Corrupt) != 1 || info.Corrupt[0] != path {
		t.Fatalf("LoadInfo = %+v, want generation 1 with %s corrupt", info, path)
	}
	if met.corrupt != 1 || met.fallbackGen != 1 {
		t.Fatalf("metrics = %+v, want 1 corrupt, fallback generation 1", met)
	}
}

// TestArtifactBitFlipDetected: a single flipped payload bit fails the
// checksum and, with no backup, surfaces as ErrCorruptArtifact.
func TestArtifactBitFlipDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	s := ArtifactStore{Keep: 1}
	if err := s.Save(path, mkSet(9)); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit inside a payload digit so the result is still JSON but
	// hashes differently.
	i := strings.Index(string(raw), `"trials":128`)
	if i < 0 {
		t.Fatalf("payload layout changed:\n%s", raw)
	}
	raw[i+len(`"trials":1`)] ^= 0x01 // 2 -> 3
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = s.Load(path)
	if !errors.Is(err, fault.ErrCorruptArtifact) {
		t.Fatalf("Load of bit-flipped artifact = %v, want ErrCorruptArtifact", err)
	}
}

// TestArtifactRetry: transient injected write faults are retried and
// counted; the save still lands.
func TestArtifactRetry(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	met := &artifactCounters{}
	fs := &failFirstFS{FS: fault.OS, failures: 2}
	s := ArtifactStore{
		FS:      fs,
		Metrics: met,
		Retry:   fault.RetryPolicy{Attempts: 4, Sleep: func(time.Duration) {}},
	}
	if err := s.Save(path, mkSet(5)); err != nil {
		t.Fatal(err)
	}
	if met.retries != 2 {
		t.Fatalf("counted %d retries, want 2", met.retries)
	}
	cs, _, err := s.Load(path)
	if err != nil || cs["stage"].Seed != 5 {
		t.Fatalf("post-retry load = %v, %v", cs, err)
	}
}

// TestArtifactRetryExhausted: a persistent fault surfaces after the
// attempt budget, wrapping the underlying injected error.
func TestArtifactRetryExhausted(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	in := fault.NewInjector(fault.OS, 11, fault.Probs{fault.OpRename: 1})
	s := ArtifactStore{
		FS:    in,
		Retry: fault.RetryPolicy{Attempts: 3, Sleep: func(time.Duration) {}},
	}
	err := s.Save(path, mkSet(5))
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Save under p=1 rename faults = %v, want ErrInjected", err)
	}
	// The failed save must not leave temp litter behind.
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("failed save leaked temp file %s", e.Name())
		}
	}
}

// failFirstFS delegates to an FS after failing the first N CreateTemp
// calls — a deterministic transient fault.
type failFirstFS struct {
	fault.FS
	failures int
}

func (f *failFirstFS) CreateTemp(dir, pattern string) (fault.File, error) {
	if f.failures > 0 {
		f.failures--
		return nil, errors.New("transient create failure")
	}
	return f.FS.CreateTemp(dir, pattern)
}

// TestMismatchErrorFields: MismatchError names the offending field with
// both values, and still matches ErrCheckpointMismatch.
func TestMismatchErrorFields(t *testing.T) {
	cp := &Checkpoint{Version: checkpointVersion, Kind: "hitting", Seed: 1, Trials: 100, ChunkSize: 64}
	cases := []struct {
		name            string
		kind            string
		seed            int64
		trials, chunk   int
		field           string
		wantSub, gotSub string
	}{
		{"kind", "sample", 1, 100, 64, "kind", "sample", "hitting"},
		{"seed", "hitting", 2, 100, 64, "seed", "2", "1"},
		{"trials", "hitting", 1, 200, 64, "trials", "200", "100"},
		{"chunk_size", "hitting", 1, 100, 32, "chunk_size", "32", "64"},
	}
	for _, tc := range cases {
		err := cp.validateFor(tc.kind, tc.seed, tc.trials, tc.chunk)
		if !errors.Is(err, ErrCheckpointMismatch) {
			t.Fatalf("%s: err = %v, want ErrCheckpointMismatch", tc.name, err)
		}
		var me *MismatchError
		if !errors.As(err, &me) {
			t.Fatalf("%s: err = %v, want *MismatchError", tc.name, err)
		}
		if me.Field != tc.field {
			t.Fatalf("%s: Field = %q", tc.name, me.Field)
		}
		msg := err.Error()
		if !strings.Contains(msg, tc.field) || !strings.Contains(msg, tc.wantSub) || !strings.Contains(msg, tc.gotSub) {
			t.Fatalf("%s: message %q missing field or values", tc.name, msg)
		}
	}
}
