package sim

// The chaos suite: seeded fault storms against the runtime's own artifact
// layer. Each storm interleaves interrupted runs, injected filesystem
// faults (torn writes, dropped fsyncs, failed renames) and deliberate
// corruption of the newest checkpoint, then asserts the headline
// robustness guarantee: however the storm went, the run eventually
// completes with estimates bit-identical to an uninterrupted run.
//
// Every random decision of a storm derives from one seed, printed via
// t.Logf (visible on failure and under -v); replay a failing storm with
// CHAOS_SEED=<seed> go test -run TestChaos ./internal/sim/. CHAOS_STORMS
// scales the number of storms (the `make chaos` target raises it).

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strconv"
	"testing"
	"time"

	"repro/internal/fault"
)

// chaosSeed returns the storm seed: CHAOS_SEED when set (replay), fresh
// otherwise. The seed is logged so a failure is always replayable.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED %q: %v", s, err)
		}
		t.Logf("chaos: replaying CHAOS_SEED=%d", v)
		return v
	}
	v := time.Now().UnixNano()
	t.Logf("chaos seed %d (replay with CHAOS_SEED=%d)", v, v)
	return v
}

// chaosStorms returns how many storms to run: CHAOS_STORMS when set, else
// the given default (kept small so plain `go test ./...` stays fast).
func chaosStorms(t *testing.T, def int) int {
	t.Helper()
	if s := os.Getenv("CHAOS_STORMS"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			t.Fatalf("CHAOS_STORMS %q: %v", s, err)
		}
		return v
	}
	return def
}

// corruptNewest damages the current checkpoint generation the way a
// crash or a failing disk would: truncation or a bit flip.
func corruptNewest(t *testing.T, rng *rand.Rand, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil || len(data) == 0 {
		return // nothing saved yet; nothing to corrupt
	}
	switch rng.Intn(2) {
	case 0:
		data = data[:rng.Intn(len(data))]
	case 1:
		data[rng.Intn(len(data))] ^= 1 << uint(rng.Intn(8))
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestChaosCheckpointStorm: under a seeded storm of injected filesystem
// faults, mid-run interruptions and corruption of the newest checkpoint,
// a run resumed leg after leg from the newest valid generation converges
// and its final estimate is bit-identical to an uninterrupted run.
func TestChaosCheckpointStorm(t *testing.T) {
	const (
		trials   = 640 // 10 chunks
		rootSeed = 99
		label    = "storm"
	)
	opts := Options[flipState]{}
	want, wantRep, err := EstimateTimeToTargetParallel[flipState](context.Background(), flipper{}, mkSlowest, heads,
		trials, opts, ParallelOptions{Workers: 4, Seed: rootSeed})
	if err != nil || wantRep.Completed != trials {
		t.Fatalf("baseline: %v (report %v)", err, wantRep)
	}

	seed := chaosSeed(t)
	storms := chaosStorms(t, 2)
	workerSeq := []int{1, 2, 8}
	for storm := 0; storm < storms; storm++ {
		stormRNG := rand.New(rand.NewSource(seed + int64(storm)))
		dir := t.TempDir()
		path := filepath.Join(dir, "state.json")
		inj := fault.NewInjector(fault.OS, stormRNG.Int63(), fault.Probs{
			fault.OpCreate:  0.03,
			fault.OpWrite:   0.05,
			fault.OpSync:    0.05,
			fault.OpClose:   0.02,
			fault.OpRename:  0.05,
			fault.OpSyncDir: 0.05,
			fault.OpRead:    0.02,
		})
		store := &ArtifactStore{
			FS:    inj,
			Keep:  3,
			Retry: fault.RetryPolicy{Attempts: 3, Sleep: func(time.Duration) {}},
		}

		completed := false
		for leg := 0; leg < 300 && !completed; leg++ {
			cs, _, lerr := store.Load(path)
			if lerr != nil {
				// Every candidate generation rejected (possible, if
				// unlikely, when corruption and persistent read faults line
				// up): progress is lost, correctness is not — start over.
				if !errors.Is(lerr, fault.ErrCorruptArtifact) && !errors.Is(lerr, fault.ErrInjected) {
					t.Fatalf("storm %d leg %d: load: %v", storm, leg, lerr)
				}
				for g := 0; g < maxGenerations; g++ {
					os.Remove(genPath(path, g))
				}
				cs = CheckpointSet{}
			}
			popts := ParallelOptions{
				Workers: workerSeq[leg%len(workerSeq)],
				Seed:    rootSeed,
				Resume:  cs[label],
			}
			ctx, cancel := context.WithCancel(context.Background())
			stopAfter := 1 + stormRNG.Intn(4)
			saves := 0
			popts.CheckpointSink = func(cp *Checkpoint) error {
				if err := store.Save(path, CheckpointSet{label: cp}); err != nil {
					return err
				}
				saves++
				if saves == stopAfter {
					cancel()
				}
				return nil
			}
			sum, rep, err := EstimateTimeToTargetParallel[flipState](ctx, flipper{}, mkSlowest, heads, trials, opts, popts)
			cancel()
			switch {
			case err == nil:
				if rep.Completed != trials {
					t.Fatalf("storm %d leg %d: clean finish with %d/%d trials", storm, leg, rep.Completed, trials)
				}
				// The storm's verdict: bit-identical to the uninterrupted run.
				if !reflect.DeepEqual(sum, want) {
					t.Fatalf("storm %d (seed %d): resumed estimate %v differs from uninterrupted %v",
						storm, seed, sum.String(), want.String())
				}
				completed = true
			case errors.Is(err, ErrInterrupted), errors.Is(err, fault.ErrInjected):
				// Interrupted leg or a save that failed through its retry
				// budget: both are the storm working as intended.
			default:
				t.Fatalf("storm %d leg %d (seed %d): unexpected error: %v", storm, leg, seed, err)
			}
			if !completed && stormRNG.Float64() < 0.3 {
				corruptNewest(t, stormRNG, path)
			}
		}
		if !completed {
			t.Fatalf("storm %d (seed %d): did not converge in 300 legs (%d faults injected)",
				storm, seed, inj.Total())
		}
	}
}

// TestChaosWatchdogStall: a run with stalling trials under an armed
// watchdog, interrupted and resumed mid-storm, quarantines exactly the
// same trials as an uninterrupted watched run and produces a
// bit-identical estimate — stall quarantine composes with checkpoint
// resume.
func TestChaosWatchdogStall(t *testing.T) {
	const (
		trials   = 320 // 5 chunks
		rootSeed = 31
		frac     = 0.03
		label    = "stall-storm"
	)
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	opts := Options[flipState]{}
	mkWatched := func() ParallelOptions {
		clock := fault.NewFakeClock(time.Unix(0, 0))
		autoAdvance(t, clock)
		return ParallelOptions{
			Seed:         rootSeed,
			MaxPanics:    trials,
			TrialTimeout: 30 * time.Second,
			Clock:        clock,
		}
	}

	base := mkWatched()
	base.Workers = 4
	want, wantRep, err := EstimateReachProbParallel[flipState](context.Background(), flipper{},
		mkStalling(frac, release), heads, 2, trials, opts, base)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	if wantRep.Stalled == 0 {
		t.Fatal("baseline produced no stalls; adjust frac/seed")
	}

	seed := chaosSeed(t)
	storms := chaosStorms(t, 2)
	for storm := 0; storm < storms; storm++ {
		stormRNG := rand.New(rand.NewSource(seed ^ int64(storm+1)))
		dir := t.TempDir()
		path := filepath.Join(dir, "state.json")
		store := &ArtifactStore{Keep: 3}

		completed := false
		for leg := 0; leg < 50 && !completed; leg++ {
			cs, _, lerr := store.Load(path)
			if lerr != nil {
				t.Fatalf("storm %d leg %d: load: %v", storm, leg, lerr)
			}
			popts := mkWatched()
			popts.Workers = []int{1, 2, 8}[leg%3]
			popts.Resume = cs[label]
			ctx, cancel := context.WithCancel(context.Background())
			stopAfter := 1 + stormRNG.Intn(3)
			saves := 0
			popts.CheckpointSink = func(cp *Checkpoint) error {
				if err := store.Save(path, CheckpointSet{label: cp}); err != nil {
					return err
				}
				saves++
				if saves == stopAfter {
					cancel()
				}
				return nil
			}
			prop, rep, err := EstimateReachProbParallel[flipState](ctx, flipper{},
				mkStalling(frac, release), heads, 2, trials, opts, popts)
			cancel()
			switch {
			case err == nil:
				if !reflect.DeepEqual(prop, want) {
					t.Fatalf("storm %d (seed %d): resumed estimate %+v differs from uninterrupted %+v",
						storm, seed, prop, want)
				}
				if rep.Stalled != wantRep.Stalled {
					t.Fatalf("storm %d (seed %d): %d stalled trials, uninterrupted run had %d",
						storm, seed, rep.Stalled, wantRep.Stalled)
				}
				stalledSet := func(rep RunReport) []int {
					var out []int
					for _, pr := range rep.Panics {
						if pr.Kind == RecordStalled {
							out = append(out, pr.Trial)
						}
					}
					sort.Ints(out)
					return out
				}
				if !reflect.DeepEqual(stalledSet(rep), stalledSet(wantRep)) {
					t.Fatalf("storm %d (seed %d): stalled set %v differs from baseline %v",
						storm, seed, stalledSet(rep), stalledSet(wantRep))
				}
				completed = true
			case errors.Is(err, ErrInterrupted):
			default:
				t.Fatalf("storm %d leg %d (seed %d): unexpected error: %v", storm, leg, seed, err)
			}
		}
		if !completed {
			t.Fatalf("storm %d (seed %d): did not converge in 50 legs", storm, seed)
		}
	}
}
