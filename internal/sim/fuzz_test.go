package sim

// Fuzzing the engine against adversarial policies: whatever a policy does
// — out-of-range process indices, out-of-range branch picks, illegal step
// times, deserting ready processes, or panicking outright — RunOnce must
// return a typed error (ErrBadChoice, ErrPolicyDeserted, *TrialPanicError)
// or a valid Result, and never crash or hang. Run with
//
//	go test ./internal/sim -run='^$' -fuzz=FuzzRunOnceAdversarial
//
// (`make fuzz` wraps a short run); the seed corpus below also executes on
// every plain `go test`.

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// fuzzPolicy misbehaves according to mode, seeded by the fuzzer.
func fuzzPolicy(mode, procOff, moveOff byte, jitter uint16) Policy[ixState] {
	step := 0
	return PolicyFunc[ixState](func(v *View[ixState], rng *rand.Rand) (Choice, bool) {
		step++
		// Pick a legal baseline first so every mode can also reach deeper
		// engine states before misbehaving.
		var c Choice
		if len(v.Ready) > 0 {
			c = Choice{Proc: v.Ready[int(procOff)%len(v.Ready)], At: v.Now}
		}
		switch mode % 6 {
		case 0: // desert, possibly while processes are ready
			return Choice{}, false
		case 1: // out-of-range (including negative) process index
			c.Proc = int(procOff) - 128
			return c, true
		case 2: // out-of-range branch pick
			c.Move = int(moveOff) + 1
			return c, true
		case 3: // step time outside [Now, DeadlineMin]
			c.At = v.Now - 1 - float64(jitter)
			if jitter%2 == 0 {
				c.At = v.DeadlineMin + 1 + float64(jitter)
			}
			return c, true
		case 4: // panic mid-run
			if step > int(jitter)%3 {
				panic("fuzz policy panic")
			}
			return c, true
		default: // legal play, misbehaving only via the user-move flag
			c.User = moveOff%2 == 0 && len(v.UserMovers) == 0
			return c, true
		}
	})
}

func FuzzRunOnceAdversarial(f *testing.F) {
	f.Add(int64(1), byte(0), byte(0), byte(0), uint16(0))
	f.Add(int64(2), byte(1), byte(130), byte(3), uint16(7))
	f.Add(int64(3), byte(2), byte(5), byte(200), uint16(2))
	f.Add(int64(4), byte(3), byte(255), byte(0), uint16(1))
	f.Add(int64(5), byte(4), byte(9), byte(1), uint16(4))
	f.Add(int64(6), byte(5), byte(77), byte(77), uint16(9))

	f.Fuzz(func(t *testing.T, seed int64, mode, procOff, moveOff byte, jitter uint16) {
		rng := rand.New(rand.NewSource(seed))
		pol := fuzzPolicy(mode, procOff, moveOff, jitter)
		opts := Options[ixState]{MaxEvents: 200, MaxTime: 100}
		res, err := RunOnce[ixState](indexer{}, pol, func(s ixState) bool { return s.Done[0] && s.Done[1] }, opts, rng)
		if err != nil {
			var pe *TrialPanicError
			switch {
			case errors.Is(err, ErrBadChoice), errors.Is(err, ErrPolicyDeserted), errors.As(err, &pe):
				// the three typed failure modes the engine promises
			default:
				t.Fatalf("untyped engine error: %v", err)
			}
			return
		}
		if res.Events > opts.MaxEvents {
			t.Fatalf("run exceeded MaxEvents: %d > %d", res.Events, opts.MaxEvents)
		}
		if res.Reached && (res.ReachedAt < 0 || res.ReachedAt > opts.MaxTime || math.IsNaN(res.ReachedAt)) {
			t.Fatalf("reached at illegal time %v", res.ReachedAt)
		}
	})
}
