package sim

// Tests for the per-trial watchdog: stuck trials are quarantined exactly
// like panics — deterministically across worker counts, with a
// seed-exact repro record — and an armed watchdog never perturbs the
// estimate of a healthy run.

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
)

// autoAdvance drives a FakeClock forward in the background so watchdog
// timeouts fire during a live run without real sleeping.
func autoAdvance(t *testing.T, c *fault.FakeClock) {
	t.Helper()
	stop := make(chan struct{})
	t.Cleanup(func() { close(stop) })
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				c.Advance(time.Second)
				time.Sleep(time.Millisecond)
			}
		}
	}()
}

// mkStalling returns a policy factory that blocks forever (until release
// closes) on a frac fraction of trials. As with mkPanicky, the decision
// is the trial RNG's first draw — a pure function of the trial seed — so
// which trials stall is deterministic across worker counts.
func mkStalling(frac float64, release <-chan struct{}) func() Policy[flipState] {
	return func() Policy[flipState] {
		first := true
		inner := Slowest[flipState]()
		return PolicyFunc[flipState](func(v *View[flipState], rng *rand.Rand) (Choice, bool) {
			if first {
				first = false
				if rng.Float64() < frac {
					<-release
				}
			}
			return inner.Choose(v, rng)
		})
	}
}

// TestWatchdogQuarantinesStalled: stalled trials are quarantined with
// kind "stall", the stalled set is identical for every worker count and
// predictable from the trial seeds alone, and the surviving estimate is
// bit-identical across worker counts.
func TestWatchdogQuarantinesStalled(t *testing.T) {
	const (
		trials = 192
		seed   = 17
		frac   = 0.04
	)
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })

	// The stalled set every run must produce, derived from the seeds
	// through the engine's own trial source.
	var wantStalled []int
	for i := 0; i < trials; i++ {
		if newTrialRNG(trialSeed(seed, i)).Float64() < frac {
			wantStalled = append(wantStalled, i)
		}
	}
	if len(wantStalled) == 0 {
		t.Fatal("test needs at least one stalling trial; adjust seed/frac")
	}

	type outcome struct {
		est     float64
		stalled []int
	}
	var outcomes []outcome
	for _, workers := range []int{1, 2, 8} {
		clock := fault.NewFakeClock(time.Unix(0, 0))
		autoAdvance(t, clock)
		prop, rep, err := EstimateReachProbParallel[flipState](context.Background(), flipper{},
			mkStalling(frac, release), heads, 2, trials, Options[flipState]{},
			ParallelOptions{Workers: workers, Seed: seed, MaxPanics: trials,
				TrialTimeout: 30 * time.Second, Clock: clock})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if rep.Stalled != len(wantStalled) || rep.Quarantined != rep.Stalled {
			t.Fatalf("workers=%d: report %+v, want %d stalled (all quarantines)", workers, rep, len(wantStalled))
		}
		if rep.Completed != trials-rep.Stalled {
			t.Fatalf("workers=%d: Completed = %d, want %d", workers, rep.Completed, trials-rep.Stalled)
		}
		var got []int
		for _, pr := range rep.Panics {
			if pr.Kind != RecordStalled {
				t.Fatalf("workers=%d: record %+v has kind %q, want %q", workers, pr, pr.Kind, RecordStalled)
			}
			if pr.Seed != trialSeed(seed, pr.Trial) {
				t.Fatalf("workers=%d: trial %d recorded seed %d, want %d",
					workers, pr.Trial, pr.Seed, trialSeed(seed, pr.Trial))
			}
			// The recorded seed replays the stall: the same first draw
			// crosses the same threshold.
			if newTrialRNG(pr.Seed).Float64() >= frac {
				t.Fatalf("workers=%d: recorded seed %d does not reproduce the stall", workers, pr.Seed)
			}
			got = append(got, pr.Trial)
		}
		sort.Ints(got)
		if !reflect.DeepEqual(got, wantStalled) {
			t.Fatalf("workers=%d: stalled trials %v, want %v", workers, got, wantStalled)
		}
		est, err := prop.Estimate()
		if err != nil {
			t.Fatal(err)
		}
		outcomes = append(outcomes, outcome{est: est, stalled: got})
	}
	for _, o := range outcomes[1:] {
		if o.est != outcomes[0].est {
			t.Fatalf("estimate differs across worker counts: %v vs %v", o.est, outcomes[0].est)
		}
	}
}

// TestWatchdogBudgetExhausted: with a zero quarantine budget the first
// stalled trial aborts the run with a typed, seed-carrying error.
func TestWatchdogBudgetExhausted(t *testing.T) {
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	clock := fault.NewFakeClock(time.Unix(0, 0))
	autoAdvance(t, clock)
	_, _, err := EstimateReachProbParallel[flipState](context.Background(), flipper{},
		mkStalling(1.0, release), heads, 2, 128, Options[flipState]{},
		ParallelOptions{Workers: 2, Seed: 5, TrialTimeout: 10 * time.Second, Clock: clock})
	if !errors.Is(err, ErrTrialStalled) {
		t.Fatalf("err = %v, want ErrTrialStalled", err)
	}
	var se *TrialStalledError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *TrialStalledError", err)
	}
	if se.Trial != 0 || se.Seed != TrialRNGSeed(5, 0) {
		t.Fatalf("stall error names trial %d seed %d, want trial 0 seed %d", se.Trial, se.Seed, TrialRNGSeed(5, 0))
	}
	if se.Timeout != 10*time.Second {
		t.Fatalf("stall error timeout = %v, want 10s", se.Timeout)
	}
}

// TestWatchdogDoesNotPerturbHealthyRuns: arming the watchdog on a run
// with no stalls yields the bit-identical estimate of an unwatched run —
// the watchdog goroutine shares the trial's RNG, it does not draw from it.
func TestWatchdogDoesNotPerturbHealthyRuns(t *testing.T) {
	const trials = 500
	want, _, err := EstimateReachProbParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, 2, trials,
		Options[flipState]{}, ParallelOptions{Workers: 4, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	clock := fault.NewFakeClock(time.Unix(0, 0))
	autoAdvance(t, clock)
	got, rep, err := EstimateReachProbParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, 2, trials,
		Options[flipState]{}, ParallelOptions{Workers: 4, Seed: 23, TrialTimeout: time.Hour, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stalled != 0 || rep.Quarantined != 0 {
		t.Fatalf("healthy run reported %d stalled, %d quarantined", rep.Stalled, rep.Quarantined)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("watched run differs from unwatched: %+v vs %+v", got, want)
	}
}

// TestRunReportStalledString: the one-line report distinguishes panicking
// from stalled quarantines.
func TestRunReportStalledString(t *testing.T) {
	s := RunReport{Total: 10, Completed: 7, Quarantined: 3, Stalled: 1}.String()
	if !strings.Contains(s, "2 panicking trials quarantined") || !strings.Contains(s, "1 stalled trials quarantined") {
		t.Fatalf("report = %q", s)
	}
}
