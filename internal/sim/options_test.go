package sim

import (
	"math"
	"math/rand"
	"testing"
)

func TestOptionsDefaults(t *testing.T) {
	o := Options[flipState]{}.withDefaults()
	if o.MaxEvents != 100000 || o.MaxTime != 1000 {
		t.Errorf("defaults = %+v", o)
	}
	custom := Options[flipState]{MaxEvents: 5, MaxTime: 2}.withDefaults()
	if custom.MaxEvents != 5 || custom.MaxTime != 2 {
		t.Errorf("custom options overridden: %+v", custom)
	}
}

func TestObserverHook(t *testing.T) {
	var events []string
	var times []float64
	opts := Options[flipState]{
		Observer: func(at float64, proc int, action string, next flipState) {
			events = append(events, action)
			times = append(times, at)
		},
	}
	rng := rand.New(rand.NewSource(3))
	res, err := RunOnce[flipState](flipper{}, Slowest[flipState](), func(s flipState) bool { return s.Heads },
		opts, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != res.Events {
		t.Fatalf("observer saw %d events, run took %d", len(events), res.Events)
	}
	for i, a := range events {
		if a != "flip" {
			t.Errorf("event %d = %q, want flip", i, a)
		}
		if times[i] != float64(i+1) {
			t.Errorf("event %d at %g, want %d (slowest policy)", i, times[i], i+1)
		}
	}
}

func TestMaxTimeBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// A target that never holds with a tiny time budget: the run stops
	// once the clock passes MaxTime.
	res, err := RunOnce[flipState](flipper{}, Slowest[flipState](), func(flipState) bool { return false },
		Options[flipState]{MaxTime: 2.5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached {
		t.Error("unreachable target reached")
	}
	// Either quiesced at heads early or was cut off shortly after the
	// budget; events are bounded accordingly.
	if res.Events > 4 {
		t.Errorf("run took %d events past a 2.5 time budget", res.Events)
	}
}

func TestViewDeadlineMinNoReady(t *testing.T) {
	sc := newViewScratch[flipState](flipper{})
	v := sc.build(flipState{Heads: true}, 3.5)
	if len(v.Ready) != 0 {
		t.Fatalf("ready = %v", v.Ready)
	}
	if !math.IsInf(v.DeadlineMin, 1) {
		t.Errorf("DeadlineMin = %g, want +Inf", v.DeadlineMin)
	}
}

// TestViewBuffersReused pins the borrowing contract: the engine hands the
// policy the same backing buffers on every step, so a policy that copies
// nothing sees its old view mutated — the documented trade for an
// allocation-free hot loop.
func TestViewBuffersReused(t *testing.T) {
	var first View[int]
	steps := 0
	probe := PolicyFunc[int](func(v *View[int], _ *rand.Rand) (Choice, bool) {
		if steps == 0 {
			first = *v
		}
		steps++
		return Choice{Proc: 0, At: v.DeadlineMin}, true
	})
	_, err := RunOnce[int](ticker{}, probe, func(s int) bool { return s >= 3 },
		Options[int]{}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if steps < 3 {
		t.Fatalf("took %d steps, want >= 3", steps)
	}
	// The view captured on step 0 shares buffers with later steps: its
	// deadline map now reflects the final step, not time 1.
	if d := first.Deadline[0]; d == 1 {
		t.Errorf("deadline map was not reused (still %g); the borrowing contract changed", d)
	}
}
