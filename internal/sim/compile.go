package sim

// This file is the compiled-model layer: Compile wraps a purely
// functional sched.Model in a read-mostly transition cache so the Monte
// Carlo hot loop stops re-deriving what it has already seen.
//
// Two observations make it sound and fast:
//
//   - sched.Model implementations are documented purely functional:
//     Moves/UserMoves depend only on (state, proc). Their results can
//     therefore be interned per state and shared — across steps, across
//     trials, and across RunParallel workers — without changing any
//     run. A cheap purity spot-check guards the contract: a model whose
//     repeated queries disagree is passed through uncompiled.
//
//   - Each step's successor distribution is pre-resolved into two
//     samplers: a Walker alias table (prob.Alias; the default — O(1) per
//     draw) and a cumulative-float64 scan (prob.Frozen; selected by
//     Options.BitCompat — O(n) per draw, but replaying Dist.Pick's exact
//     accumulation so seeded runs are bit-identical compiled or not).
//     Both consume one uniform per draw, so the random stream is the
//     same either way; see prob.Alias for what "distribution-equivalent
//     but not bit-identical" means.
//
// The cache is sharded by state hash (hash/maphash.Comparable) with one
// RWMutex per shard: steady state is a read-lock and a map hit, and
// distinct states contend only 1/compileShards of the time while the
// cache warms. Models that implement sched.Packer[S] are interned by
// their fixed-width packed encoding instead of the state struct itself,
// which keeps the map keys to a few machine words (hashing and equality
// on a [4]uint64 instead of a larger struct). RunParallel compiles every
// model by default; the ParallelOptions.NoCompile escape hatch and the
// purity pass-through both fall back to the uncompiled engine, which
// remains fully supported (and is what RunOnce uses unless handed a
// compiled model).

import (
	"hash/maphash"
	"sync"
	"sync/atomic"

	"repro/internal/pa"
	"repro/internal/prob"
	"repro/internal/sched"
)

// compileShards is the number of cache shards. A power of two so the
// hash folds with a mask; 64 keeps contention negligible for any
// realistic worker count while the cache warms.
const compileShards = 64

// maxCompiledStates bounds the total number of interned states. The
// case-study models have tiny reachable spaces (thousands of states),
// but a model with an effectively unbounded or non-self-identifying
// state type (e.g. NaN-bearing floats, which never compare equal to
// themselves) must not grow the cache without limit: past the cap,
// entries are computed per call and not retained.
const maxCompiledStates = 1 << 20

// stateEntry is the compiled form of one interned state: the memoized
// Moves/UserMoves of every process, their pre-resolved samplers (alias
// tables for the default path, frozen scans for BitCompat), and the
// derived scheduling facts the engine needs every step. All fields are
// immutable after construction and shared read-only (including into
// policy Views — see the View doc).
type stateEntry[S comparable] struct {
	moves        [][]pa.Step[S]     // per proc; nil when not ready
	samplers     [][]moveSampler[S] // parallel to moves
	userMoves    [][]pa.Step[S]     // per proc; nil when no user moves
	userSamplers [][]moveSampler[S] // parallel to userMoves
	ready        []int              // procs with algorithm moves, ascending
	userMovers   []int              // procs with user moves, ascending
	moveCount    []int              // per proc; len(moves), 0 when not ready
	userCount    []int              // per proc; len(userMoves)
}

// moveSampler bundles everything the per-event hot path needs about one
// move into one contiguous struct — the alias table, the BitCompat
// frozen scan, and the successor-entry cache — so applyChoice does a
// single indexed load instead of walking three parallel slice-of-slice
// structures.
//
// succ caches, per alias support index, the interned entry of that
// outcome's successor state. The engine resolves a slot the first time
// a trial follows that outcome and every later traversal skips the
// shard lock and map probe entirely — in steady state the trial loop
// walks entry to entry through these pointers. The slots are atomic
// because entries are shared across workers; a racing double-resolve
// stores the same canonical entry (or, past the interning cap, an
// equivalent one), so last-write-wins is sound.
type moveSampler[S comparable] struct {
	alias  prob.Alias[S]
	frozen prob.Frozen[S]
	succ   []atomic.Pointer[stateEntry[S]]
}

type compileShard[S comparable] struct {
	mu      sync.RWMutex
	entries map[S]*stateEntry[S]
	// packed replaces entries when the model implements sched.Packer:
	// same interning, keyed by the fixed-width encoding.
	packed map[sched.Packed]*stateEntry[S]
}

// Compiled is the transition-cached form of a model returned by
// Compile. It implements sched.Model and can be used anywhere the
// original could; the engine additionally recognizes it and switches to
// entry-based fast paths (shared Views, frozen sampling).
type Compiled[S comparable] struct {
	inner sched.Model[S]
	n     int
	seed  maphash.Seed
	count atomic.Int64 // interned entries, for the maxCompiledStates cap
	// packer is non-nil when the inner model implements sched.Packer:
	// states are then interned by their packed encoding.
	packer func(S) sched.Packed

	shards [compileShards]compileShard[S]
}

var _ sched.Model[int] = (*Compiled[int])(nil)

// Compile wraps m in a concurrency-safe transition cache that interns
// states, memoizes Moves/UserMoves per state and pre-resolves every
// successor distribution into float64 samplers: a Walker alias table
// (prob.Alias, the engine's default — O(1) per draw) and a cumulative
// scan (prob.Frozen, selected by Options.BitCompat). The result samples
// the same distributions from the same random stream as m — and under
// BitCompat is bit-identical to m for any worker count — while the hot
// loop does no repeated model queries, no big.Rat arithmetic and no
// per-draw map lookups. Models that implement sched.Packer[S] are
// interned by their fixed-width packed encoding, keeping cache keys to
// a few machine words.
//
// Compiling relies on the sched.Model contract that Moves/UserMoves are
// purely functional. Compile spot-checks the contract (repeated queries
// on a sample of states must agree) and returns m unchanged when the
// check fails or panics, so impure or misbehaving models keep their
// uncompiled semantics. Compiling an already compiled model returns it
// unchanged; a nil model is returned as is (the engine rejects it with
// ErrInvalidArgument as usual).
//
// The cache is shared: passing one compiled model to many runs — the
// CLIs and benchmarks do — lets later runs start fully warm.
func Compile[S comparable](m sched.Model[S]) sched.Model[S] {
	if m == nil {
		return nil
	}
	if _, ok := m.(*Compiled[S]); ok {
		return m
	}
	if !spotCheckPure(m) {
		return m
	}
	c := &Compiled[S]{inner: m, n: m.NumProcs(), seed: maphash.MakeSeed()}
	if pk, ok := m.(sched.Packer[S]); ok {
		c.packer = pk.PackState
		for i := range c.shards {
			c.shards[i].packed = make(map[sched.Packed]*stateEntry[S])
		}
		return c
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[S]*stateEntry[S])
	}
	return c
}

// Name implements sched.Model.
func (c *Compiled[S]) Name() string { return c.inner.Name() }

// NumProcs implements sched.Model.
func (c *Compiled[S]) NumProcs() int { return c.n }

// Start implements sched.Model.
func (c *Compiled[S]) Start() []S { return c.inner.Start() }

// Moves implements sched.Model by serving the memoized steps. The
// returned slice is cached and shared; callers must not modify it (the
// same rule the inner model's documentation of purity implies).
func (c *Compiled[S]) Moves(s S, i int) []pa.Step[S] {
	if i < 0 || i >= c.n {
		// Out-of-range procs are the inner model's business (typically a
		// panic); the cache only ever holds 0..n-1.
		return c.inner.Moves(s, i)
	}
	return c.entry(s).moves[i]
}

// UserMoves implements sched.Model by serving the memoized steps; the
// same sharing rule as Moves applies.
func (c *Compiled[S]) UserMoves(s S, i int) []pa.Step[S] {
	if i < 0 || i >= c.n {
		return c.inner.UserMoves(s, i)
	}
	return c.entry(s).userMoves[i]
}

// entry returns the compiled entry for s, interning it on first sight.
// The double-checked insert keeps exactly one canonical entry per state
// even when two workers race to compile it.
func (c *Compiled[S]) entry(s S) *stateEntry[S] {
	if c.packer != nil {
		return c.entryPacked(c.packer(s), s)
	}
	sh := &c.shards[maphash.Comparable(c.seed, s)&(compileShards-1)]
	sh.mu.RLock()
	e := sh.entries[s]
	sh.mu.RUnlock()
	if e != nil {
		return e
	}
	e = c.compileState(s)
	sh.mu.Lock()
	if prev, ok := sh.entries[s]; ok {
		sh.mu.Unlock()
		return prev
	}
	if c.count.Load() < maxCompiledStates {
		sh.entries[s] = e
		c.count.Add(1)
	}
	sh.mu.Unlock()
	return e
}

// entryPacked is entry for models with a sched.Packer: the cache is
// keyed by the packed encoding of s. Soundness is the packer's
// injectivity contract — two states with equal encodings must be equal —
// pinned by the trajectory-walk tests next to each Packer.
func (c *Compiled[S]) entryPacked(k sched.Packed, s S) *stateEntry[S] {
	sh := &c.shards[maphash.Comparable(c.seed, k)&(compileShards-1)]
	sh.mu.RLock()
	e := sh.packed[k]
	sh.mu.RUnlock()
	if e != nil {
		return e
	}
	e = c.compileState(s)
	sh.mu.Lock()
	if prev, ok := sh.packed[k]; ok {
		sh.mu.Unlock()
		return prev
	}
	if c.count.Load() < maxCompiledStates {
		sh.packed[k] = e
		c.count.Add(1)
	}
	sh.mu.Unlock()
	return e
}

// compileState queries the inner model once per process and derives the
// per-state facts the engine otherwise recomputes every step.
func (c *Compiled[S]) compileState(s S) *stateEntry[S] {
	e := &stateEntry[S]{
		moves:        make([][]pa.Step[S], c.n),
		samplers:     make([][]moveSampler[S], c.n),
		userMoves:    make([][]pa.Step[S], c.n),
		userSamplers: make([][]moveSampler[S], c.n),
		moveCount:    make([]int, c.n),
		userCount:    make([]int, c.n),
	}
	for i := 0; i < c.n; i++ {
		moves := c.inner.Moves(s, i)
		e.moves[i] = moves
		e.moveCount[i] = len(moves)
		if len(moves) > 0 {
			e.ready = append(e.ready, i)
			e.samplers[i] = compileSamplers(moves)
		}
		user := c.inner.UserMoves(s, i)
		e.userMoves[i] = user
		e.userCount[i] = len(user)
		if len(user) > 0 {
			e.userMovers = append(e.userMovers, i)
			e.userSamplers[i] = compileSamplers(user)
		}
	}
	return e
}

// compileSamplers pre-resolves one process's moves into their hot-path
// sampler bundles.
func compileSamplers[S comparable](moves []pa.Step[S]) []moveSampler[S] {
	ms := make([]moveSampler[S], len(moves))
	for j := range moves {
		ms[j].frozen = prob.Freeze(moves[j].Next)
		ms[j].alias = prob.BuildAlias(moves[j].Next)
		ms[j].succ = make([]atomic.Pointer[stateEntry[S]], ms[j].alias.Len())
	}
	return ms
}

// spotCheckSample caps how many states the purity spot-check probes:
// the start states plus one successor layer, up to this many.
const spotCheckSample = 32

// spotCheckPure probes the sched.Model purity contract: Moves and
// UserMoves queried twice for the same (state, proc) must agree, over
// the start states and one layer of their successors. It is a spot
// check, not a proof — a model that defeats it violates its documented
// contract — and any panic during probing counts as a failure, so
// Compile passes such models through and their panics surface inside
// trials (quarantined per ParallelOptions.MaxPanics) exactly as they
// would uncompiled.
func spotCheckPure[S comparable](m sched.Model[S]) (pure bool) {
	defer func() {
		if recover() != nil {
			pure = false
		}
	}()
	n := m.NumProcs()
	sample := append([]S(nil), m.Start()...)
	seen := make(map[S]bool, len(sample))
	for _, s := range sample {
		seen[s] = true
	}
	for _, s := range m.Start() {
		if len(sample) >= spotCheckSample {
			break
		}
		for i := 0; i < n && len(sample) < spotCheckSample; i++ {
			for _, st := range m.Moves(s, i) {
				for _, next := range st.Next.Support() {
					if !seen[next] && len(sample) < spotCheckSample {
						seen[next] = true
						sample = append(sample, next)
					}
				}
			}
		}
	}
	for _, s := range sample {
		for i := 0; i < n; i++ {
			if !stepsEqual(m.Moves(s, i), m.Moves(s, i)) {
				return false
			}
			if !stepsEqual(m.UserMoves(s, i), m.UserMoves(s, i)) {
				return false
			}
		}
	}
	return true
}

// stepsEqual reports whether two Moves/UserMoves results are
// interchangeable for the engine: same length and order, same actions,
// and successor distributions with identical supports (in order) and
// exactly equal probabilities.
func stepsEqual[S comparable](a, b []pa.Step[S]) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Action != b[i].Action {
			return false
		}
		sa, sb := a[i].Next.Support(), b[i].Next.Support()
		if len(sa) != len(sb) {
			return false
		}
		for j := range sa {
			if sa[j] != sb[j] || !a[i].Next.P(sa[j]).Equal(b[i].Next.P(sb[j])) {
				return false
			}
		}
	}
	return true
}
