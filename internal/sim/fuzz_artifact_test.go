package sim

// Fuzzing the artifact loader against hostile bytes: whatever is on disk
// where a checkpoint state file should be — truncated JSON, bit-flipped
// envelopes, checksum/payload disagreements, outright garbage —
// LoadCheckpointSet must return a typed error (wrapping
// fault.ErrCorruptArtifact for malformed content) or a valid set, and
// never panic. Run with
//
//	go test ./internal/sim -run='^$' -fuzz=FuzzLoadCheckpointSet
//
// (`make fuzz` wraps a short run); the seed corpus below also executes on
// every plain `go test`.

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
)

func FuzzLoadCheckpointSet(f *testing.F) {
	// Seed corpus: a valid v2 envelope, a valid legacy v1 document, and
	// characteristic corruptions of each.
	var s ArtifactStore
	valid, err := s.encode(CheckpointSet{"stage": {
		Version: checkpointVersion, Kind: "hitting", Seed: 3, Trials: 128, ChunkSize: 64,
	}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])                                              // torn write
	f.Add([]byte(`{"stage":{"version":1,"seed":3}}`))                        // legacy v1
	f.Add([]byte(`{"artifact_version":2,"crc32c":"00000000","payload":{}}`)) // bad checksum
	f.Add([]byte(`{"artifact_version":99,"crc32c":"x","payload":{}}`))       // future version
	f.Add([]byte(`{"artifact_version":2}`))                                  // missing payload
	f.Add([]byte(``))                                                        // empty file
	f.Add([]byte(`not json at all`))                                         // garbage
	f.Add([]byte(`[1,2,3]`))                                                 // wrong JSON shape
	f.Add([]byte("\x00\xff\xfe\x01"))                                        // binary noise

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "state.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		cs, err := LoadCheckpointSet(path)
		if err != nil {
			// Malformed bytes must surface as the typed corruption error,
			// never a panic and never an untyped failure.
			if !errors.Is(err, fault.ErrCorruptArtifact) {
				t.Fatalf("LoadCheckpointSet error is not ErrCorruptArtifact: %v", err)
			}
			return
		}
		// A set that loads must round-trip: save it and load it back.
		out := filepath.Join(dir, "roundtrip.json")
		if err := cs.Save(out); err != nil {
			t.Fatalf("round-trip save of loaded set failed: %v", err)
		}
		if _, err := LoadCheckpointSet(out); err != nil {
			t.Fatalf("round-trip load failed: %v", err)
		}
	})
}
