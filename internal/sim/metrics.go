package sim

// Metrics is the engine's telemetry hook: RunParallel reports every trial,
// chunk and checkpoint event of a run through it when
// ParallelOptions.Metrics is non-nil. obs.NewSimMetrics returns the
// standard implementation (the match is structural; neither package
// imports the other).
//
// Contract:
//
//   - Implementations must be safe for concurrent use: trial and chunk
//     methods are called from worker goroutines.
//   - Implementations must not allocate or block on the trial methods —
//     they sit on the hot path of every trial. Atomic counters and
//     fixed-bucket histograms qualify; logging and channels do not.
//   - The hook observes, never steers: returning is its only effect on
//     the run, and the estimate is bit-identical with or without it.
//
// When the field is nil the engine's hot path pays exactly one nil check
// per trial and allocates nothing — guarded by TestMetricsAddZeroAllocs
// and BenchmarkMetricsOverhead.
type Metrics interface {
	// TrialDone reports one successfully completed trial: its index, the
	// steps it took, its wall-clock cost, and whether/when it reached the
	// target (reachedAt is meaningful only when reached).
	TrialDone(trial, events int, seconds float64, reached bool, reachedAt float64)
	// TrialQuarantined reports a panicking trial excluded from the
	// estimate.
	TrialQuarantined(trial int)
	// TrialStalled reports a trial abandoned by the per-trial watchdog
	// (wall-clock budget exceeded) and excluded from the estimate.
	TrialStalled(trial int)
	// ChunkActive moves the in-flight chunk count: +1 when a worker
	// claims a chunk, -1 when it finishes or abandons it.
	ChunkActive(delta int)
	// ChunkDone reports one committed chunk and its trial count.
	ChunkDone(chunk, trials int)
	// TrialsRestored reports trials restored from a resume token rather
	// than re-run (at most once per run, before workers start).
	TrialsRestored(n int)
	// CheckpointSaved reports one successful checkpoint-sink call.
	CheckpointSaved()
}

// BatchMetrics is an optional extension of Metrics. When the hook passed
// as ParallelOptions.Metrics also implements it, the engine stops calling
// TrialDone per trial and instead buffers each chunk's outcomes in
// chunk-local arrays (plain stores, no shared-memory traffic) and flushes
// them with one TrialBatchDone at chunk commit — the fix for the
// measurable per-trial cost of timestamping and atomic instrument updates
// under high trial rates.
//
// Semantics relative to the per-trial interface:
//
//   - TrialBatchDone covers only the successfully completed trials of
//     one committed chunk; quarantined trials are still reported
//     individually through TrialQuarantined, and a chunk abandoned by
//     first-error-wins cancellation reports nothing (it is not part of
//     the estimate either).
//   - seconds is the chunk's total wall-clock time, replacing per-trial
//     timing: batching exists precisely to keep clock reads off the
//     trial loop, so per-trial durations are no longer observable.
//   - The signature uses only builtin types, preserving the structural
//     (no-import) match with implementations such as obs.SimMetrics.
//
// The same contract as Metrics applies: concurrent-safe, observation
// only. The slices are engine-owned and valid only for the duration of
// the call.
type BatchMetrics interface {
	Metrics
	// TrialBatchDone reports one committed chunk: trials successfully
	// completed, how many reached the target, each trial's step count
	// (events, in trial order), the reach times of the reached trials
	// (reachTimes, in trial order), and the chunk's total wall-clock
	// seconds.
	TrialBatchDone(trials, reached int, events []int64, reachTimes []float64, seconds float64)
}

// SpanHooks is the engine's chunk-lifecycle tracing seam
// (ParallelOptions.SpanHooks): one call when a worker claims a chunk,
// one when the chunk commits or is abandoned — never anything per
// trial. The standard implementation is span.ChunkSpans (the match is
// structural; neither package imports the other, like Metrics above).
//
// Contract: ChunkStart is called from worker goroutines and must be
// safe for concurrent use; the returned func is called exactly once,
// from the same goroutine, with the chunk's successfully observed and
// quarantined trial counts (both lower than the chunk's trial count
// when the chunk was abandoned mid-range). Like Metrics, the hook
// observes only. When the field is nil the engine pays one nil check
// per chunk and allocates nothing — guarded by BenchmarkSpanOverhead.
type SpanHooks interface {
	ChunkStart(chunk, trials int) func(completed, quarantined int)
}
