package sim

// Tests for the exported envelope codec — the CRC frame checkpoint state
// files use at rest, reused by the trial fabric to protect results in
// flight.

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/fault"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	payload := []byte(`{"hello": [1, 2, 3],
		"world": true}`)
	framed, err := EncodeEnvelope(payload)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEnvelope(framed)
	if err != nil {
		t.Fatal(err)
	}
	// The codec canonicalizes to compact JSON.
	if want := []byte(`{"hello":[1,2,3],"world":true}`); !bytes.Equal(got, want) {
		t.Errorf("DecodeEnvelope = %s, want %s", got, want)
	}
}

func TestEnvelopeRejectsNonJSONPayload(t *testing.T) {
	if _, err := EncodeEnvelope([]byte("not json")); err == nil {
		t.Error("EncodeEnvelope accepted a non-JSON payload")
	}
}

// TestEnvelopeCorruptionDetected: every way a frame can be damaged in
// flight — truncation, a flipped payload bit, version skew, garbage —
// surfaces as fault.ErrCorruptArtifact, never as a wrong payload.
func TestEnvelopeCorruptionDetected(t *testing.T) {
	framed, err := EncodeEnvelope([]byte(`{"n": 64, "sum": 123.5}`))
	if err != nil {
		t.Fatal(err)
	}
	flipped := bytes.Replace(framed, []byte("123.5"), []byte("124.5"), 1)
	if bytes.Equal(flipped, framed) {
		t.Fatal("test setup: payload flip had no effect")
	}
	cases := map[string][]byte{
		"truncated":    framed[:len(framed)/2],
		"bit flip":     flipped,
		"garbage":      []byte("%%%"),
		"version skew": bytes.Replace(framed, []byte(`"artifact_version":2`), []byte(`"artifact_version":9`), 1),
	}
	for name, data := range cases {
		if _, err := DecodeEnvelope(data); !errors.Is(err, fault.ErrCorruptArtifact) {
			t.Errorf("%s: DecodeEnvelope err = %v, want ErrCorruptArtifact", name, err)
		}
	}
}
