// Package sim is the Monte Carlo counterpart of the exact checker: it runs
// a multi-process model (sched.Model) in dense time under programmable
// Unit-Time adversaries and estimates reach probabilities and expected
// times.
//
// The engine enforces exactly the Unit-Time schema of Section 6.2 of the
// paper: every process that is ready (enables an algorithm move) must step
// within time 1 of becoming ready, time diverges, and the adversary — here
// called a Policy — freely chooses interleavings, exact step times and the
// resolution of nondeterministic branches, with complete knowledge of the
// run so far, including past coin flips. Unlike the digitized checker, the
// simulator does not quantize step times, so it explores the paper's
// adversary class directly (one policy at a time).
package sim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/sched"
	"repro/internal/stats"
)

// View is what a policy sees when asked for its next choice: the current
// state, the clock, the scheduling obligations, and the moves available.
type View[S comparable] struct {
	// State is the current algorithm state.
	State S
	// Now is the current time.
	Now float64
	// DeadlineMin is the latest time the next step may happen: the
	// earliest unit-time deadline among ready processes (+Inf if none).
	DeadlineMin float64
	// Ready lists processes with algorithm moves, ascending.
	Ready []int
	// Deadline maps each ready process to its unit-time deadline.
	Deadline map[int]float64
	// MoveCount maps each ready process to its number of algorithm moves
	// (nondeterministic branches the policy may pick among).
	MoveCount map[int]int
	// UserMovers lists processes with user moves available, ascending.
	UserMovers []int
	// UserMoveCount maps each user mover to its number of user moves.
	UserMoveCount map[int]int
}

// Choice is a policy decision: process Proc performs its Move-th algorithm
// move (or user move when User is set) at time At.
type Choice struct {
	Proc int
	Move int
	User bool
	// At is the time of the step; the engine requires Now <= At <=
	// DeadlineMin.
	At float64
}

// Policy resolves the nondeterminism of a run: it is the operational form
// of an adversary with complete knowledge of the past. Returning ok =
// false ends the run; the engine rejects that while any process is ready,
// since deserting a ready process violates Unit-Time.
type Policy[S comparable] interface {
	Choose(v View[S], rng *rand.Rand) (c Choice, ok bool)
}

// PolicyFunc adapts a function to the Policy interface.
type PolicyFunc[S comparable] func(v View[S], rng *rand.Rand) (Choice, bool)

// Choose implements Policy.
func (f PolicyFunc[S]) Choose(v View[S], rng *rand.Rand) (Choice, bool) { return f(v, rng) }

var _ Policy[int] = (PolicyFunc[int])(nil)

// Options configures a run.
type Options[S comparable] struct {
	// Start overrides the model's start state when Set is true.
	Start    S
	SetStart bool
	// MaxEvents bounds the number of steps (default 100000).
	MaxEvents int
	// MaxTime bounds the clock (default 1000).
	MaxTime float64
	// Observer, when non-nil, is called after every applied step with the
	// step time, acting process, action name and resulting state — the
	// hook used by the trace recorder.
	Observer func(t float64, proc int, action string, next S)
}

func (o Options[S]) withDefaults() Options[S] {
	if o.MaxEvents <= 0 {
		o.MaxEvents = 100000
	}
	if o.MaxTime <= 0 {
		o.MaxTime = 1000
	}
	return o
}

// Result reports one run.
type Result[S comparable] struct {
	// Reached reports whether the target was hit; ReachedAt is the time.
	Reached   bool
	ReachedAt float64
	// Events is the number of steps taken.
	Events int
	// Final is the last state.
	Final S
}

// Errors returned by the engine.
var (
	ErrPolicyDeserted = errors.New("sim: policy halted while a process was ready (violates Unit-Time)")
	ErrBadChoice      = errors.New("sim: policy returned an invalid choice")
)

// RunOnce executes one run of the model under the policy until the target
// predicate holds, the policy stops in a quiescent state, or a budget is
// exhausted.
func RunOnce[S comparable](m sched.Model[S], p Policy[S], target func(S) bool, opts Options[S], rng *rand.Rand) (Result[S], error) {
	opts = opts.withDefaults()
	state := m.Start()[0]
	if opts.SetStart {
		state = opts.Start
	}
	now := 0.0
	deadlines := make(map[int]float64)
	refreshDeadlines(m, state, now, deadlines)

	res := Result[S]{Final: state}
	if target(state) {
		res.Reached = true
		res.ReachedAt = 0
		return res, nil
	}

	for res.Events < opts.MaxEvents && now <= opts.MaxTime {
		view := buildView(m, state, now, deadlines)
		choice, ok := p.Choose(view, rng)
		if !ok {
			if len(view.Ready) > 0 {
				return res, ErrPolicyDeserted
			}
			res.Final = state
			return res, nil
		}
		next, t, action, err := applyChoice(m, state, view, choice, rng)
		if err != nil {
			return res, err
		}
		res.Events++
		if opts.Observer != nil {
			opts.Observer(t, choice.Proc, action, next)
		}
		// Update deadlines: the stepping process and newly ready
		// processes get deadline t+1; processes no longer ready are
		// cleared; everyone else keeps their older (tighter) deadline.
		delete(deadlines, choice.Proc)
		now = t
		refreshDeadlines(m, next, now, deadlines)
		state = next
		res.Final = state
		if target(state) {
			res.Reached = true
			res.ReachedAt = now
			return res, nil
		}
	}
	return res, nil
}

func refreshDeadlines[S comparable](m sched.Model[S], s S, now float64, deadlines map[int]float64) {
	for i := 0; i < m.NumProcs(); i++ {
		if len(m.Moves(s, i)) == 0 {
			delete(deadlines, i)
			continue
		}
		if _, ok := deadlines[i]; !ok {
			deadlines[i] = now + 1
		}
	}
}

func buildView[S comparable](m sched.Model[S], s S, now float64, deadlines map[int]float64) View[S] {
	v := View[S]{
		State:         s,
		Now:           now,
		DeadlineMin:   math.Inf(1),
		Deadline:      make(map[int]float64, len(deadlines)),
		MoveCount:     make(map[int]int, len(deadlines)),
		UserMoveCount: make(map[int]int),
	}
	for i := 0; i < m.NumProcs(); i++ {
		if d, ok := deadlines[i]; ok {
			v.Ready = append(v.Ready, i)
			v.Deadline[i] = d
			v.DeadlineMin = math.Min(v.DeadlineMin, d)
			v.MoveCount[i] = len(m.Moves(s, i))
		}
		if n := len(m.UserMoves(s, i)); n > 0 {
			v.UserMovers = append(v.UserMovers, i)
			v.UserMoveCount[i] = n
		}
	}
	return v
}

func applyChoice[S comparable](m sched.Model[S], s S, v View[S], c Choice, rng *rand.Rand) (S, float64, string, error) {
	var zero S
	moves := m.Moves(s, c.Proc)
	if c.User {
		moves = m.UserMoves(s, c.Proc)
	}
	if c.Proc < 0 || c.Proc >= m.NumProcs() || c.Move < 0 || c.Move >= len(moves) {
		return zero, 0, "", fmt.Errorf("%w: proc %d move %d (user=%t)", ErrBadChoice, c.Proc, c.Move, c.User)
	}
	t := c.At
	if t < v.Now || t > v.DeadlineMin {
		return zero, 0, "", fmt.Errorf("%w: time %v outside [%v, %v]", ErrBadChoice, t, v.Now, v.DeadlineMin)
	}
	next := moves[c.Move].Next.Pick(rng.Float64())
	return next, t, moves[c.Move].Action, nil
}

// EstimateReachProb runs trials independent runs and estimates the
// probability that the target is reached within the given time.
func EstimateReachProb[S comparable](m sched.Model[S], mk func() Policy[S], target func(S) bool, within float64, trials int, opts Options[S], rng *rand.Rand) (stats.Proportion, error) {
	var prop stats.Proportion
	for i := 0; i < trials; i++ {
		res, err := RunOnce(m, mk(), target, opts, rng)
		if err != nil {
			return prop, fmt.Errorf("sim: trial %d: %w", i, err)
		}
		prop.Observe(res.Reached && res.ReachedAt <= within)
	}
	return prop, nil
}

// EstimateTimeToTarget runs trials independent runs and summarizes the
// time to reach the target; runs that never reach it are an error (use a
// generous Options.MaxTime for almost-sure targets).
func EstimateTimeToTarget[S comparable](m sched.Model[S], mk func() Policy[S], target func(S) bool, trials int, opts Options[S], rng *rand.Rand) (stats.Summary, error) {
	var sum stats.Summary
	for i := 0; i < trials; i++ {
		res, err := RunOnce(m, mk(), target, opts, rng)
		if err != nil {
			return sum, fmt.Errorf("sim: trial %d: %w", i, err)
		}
		if !res.Reached {
			return sum, fmt.Errorf("sim: trial %d did not reach the target within budget (events=%d, state=%v)", i, res.Events, res.Final)
		}
		sum.Observe(res.ReachedAt)
	}
	return sum, nil
}
