// Package sim is the Monte Carlo counterpart of the exact checker: it runs
// a multi-process model (sched.Model) in dense time under programmable
// Unit-Time adversaries and estimates reach probabilities and expected
// times.
//
// The engine enforces exactly the Unit-Time schema of Section 6.2 of the
// paper: every process that is ready (enables an algorithm move) must step
// within time 1 of becoming ready, time diverges, and the adversary — here
// called a Policy — freely chooses interleavings, exact step times and the
// resolution of nondeterministic branches, with complete knowledge of the
// run so far, including past coin flips. Unlike the digitized checker, the
// simulator does not quantize step times, so it explores the paper's
// adversary class directly (one policy at a time).
package sim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/pa"
	"repro/internal/sched"
	"repro/internal/stats"
)

// View is what a policy sees when asked for its next choice: the current
// state, the clock, the scheduling obligations, and the moves available.
//
// The slices and maps of a View are owned by the engine and must not be
// modified: under an uncompiled model they are reused between steps (the
// hot loop would otherwise spend most of its time allocating them), and
// under a compiled model (Compile) they are cache entries shared across
// trials and workers. Either way they are valid only for the duration of
// the Choose call, and a policy must copy anything it wants to retain.
type View[S comparable] struct {
	// State is the current algorithm state.
	State S
	// Now is the current time.
	Now float64
	// DeadlineMin is the latest time the next step may happen: the
	// earliest unit-time deadline among ready processes (+Inf if none).
	DeadlineMin float64
	// Ready lists processes with algorithm moves, ascending.
	Ready []int
	// Deadline maps each ready process to its unit-time deadline.
	Deadline map[int]float64
	// MoveCount maps each ready process to its number of algorithm moves
	// (nondeterministic branches the policy may pick among).
	MoveCount map[int]int
	// UserMovers lists processes with user moves available, ascending.
	UserMovers []int
	// UserMoveCount maps each user mover to its number of user moves.
	UserMoveCount map[int]int
}

// Choice is a policy decision: process Proc performs its Move-th algorithm
// move (or user move when User is set) at time At.
type Choice struct {
	Proc int
	Move int
	User bool
	// At is the time of the step; the engine requires Now <= At <=
	// DeadlineMin.
	At float64
}

// Policy resolves the nondeterminism of a run: it is the operational form
// of an adversary with complete knowledge of the past. Returning ok =
// false ends the run; the engine rejects that while any process is ready,
// since deserting a ready process violates Unit-Time.
type Policy[S comparable] interface {
	Choose(v View[S], rng *rand.Rand) (c Choice, ok bool)
}

// PolicyFunc adapts a function to the Policy interface.
type PolicyFunc[S comparable] func(v View[S], rng *rand.Rand) (Choice, bool)

// Choose implements Policy.
func (f PolicyFunc[S]) Choose(v View[S], rng *rand.Rand) (Choice, bool) { return f(v, rng) }

var _ Policy[int] = (PolicyFunc[int])(nil)

// Options configures a run.
type Options[S comparable] struct {
	// Start overrides the model's start state when Set is true.
	Start    S
	SetStart bool
	// MaxEvents bounds the number of steps (default 100000).
	MaxEvents int
	// MaxTime bounds the clock (default 1000). The bound is inclusive: a
	// step scheduled at a time <= MaxTime is applied and may reach the
	// target; a step scheduled strictly after MaxTime is never applied —
	// the run is truncated at the bound with Reached reflecting only what
	// happened by MaxTime.
	MaxTime float64
	// Observer, when non-nil, is called after every applied step with the
	// step time, acting process, action name and resulting state — the
	// hook used by the trace recorder.
	Observer func(t float64, proc int, action string, next S)
}

func (o Options[S]) withDefaults() Options[S] {
	if o.MaxEvents <= 0 {
		o.MaxEvents = 100000
	}
	if o.MaxTime <= 0 {
		o.MaxTime = 1000
	}
	return o
}

// Result reports one run.
type Result[S comparable] struct {
	// Reached reports whether the target was hit; ReachedAt is the time.
	Reached   bool
	ReachedAt float64
	// Events is the number of steps taken.
	Events int
	// Final is the last state.
	Final S
}

// Errors returned by the engine.
var (
	ErrPolicyDeserted = errors.New("sim: policy halted while a process was ready (violates Unit-Time)")
	ErrBadChoice      = errors.New("sim: policy returned an invalid choice")
	// ErrBadModel reports a model that handed the engine an invalid step —
	// today, a step whose successor distribution is empty (the zero
	// prob.Dist in a hand-built pa.Step). The engine detects it before
	// sampling, so the run fails with a typed, wrappable error instead of
	// a quarantined Pick panic.
	ErrBadModel = errors.New("sim: model returned an invalid step")
	// ErrInvalidArgument reports a malformed call (nil model, policy,
	// policy factory, target or RNG, or a non-positive trial budget): the
	// engine rejects it up front with a clear error instead of panicking
	// deep inside a run.
	ErrInvalidArgument = errors.New("sim: invalid argument")
)

// validateEstimate is the shared argument check of every estimator entry
// point, sequential and parallel.
func validateEstimate[S comparable](m sched.Model[S], mk func() Policy[S], target func(S) bool, trials int) error {
	if m == nil {
		return fmt.Errorf("%w: nil model", ErrInvalidArgument)
	}
	if mk == nil {
		return fmt.Errorf("%w: nil policy factory", ErrInvalidArgument)
	}
	if target == nil {
		return fmt.Errorf("%w: nil target predicate", ErrInvalidArgument)
	}
	if trials <= 0 {
		return fmt.Errorf("%w: trial budget %d is not positive", ErrInvalidArgument, trials)
	}
	return nil
}

// RunOnce executes one run of the model under the policy until the target
// predicate holds, the policy stops in a quiescent state, or a budget is
// exhausted.
//
// RunOnce never propagates a panic from the policy, the model, the target
// predicate or the observer: a panic is recovered into a *TrialPanicError
// (with the partial Result accumulated so far), so a single crashing trial
// is an error the caller can quarantine, not a process abort.
func RunOnce[S comparable](m sched.Model[S], p Policy[S], target func(S) bool, opts Options[S], rng *rand.Rand) (res Result[S], err error) {
	if m == nil {
		return Result[S]{}, fmt.Errorf("%w: nil model", ErrInvalidArgument)
	}
	if p == nil {
		return Result[S]{}, fmt.Errorf("%w: nil policy", ErrInvalidArgument)
	}
	if target == nil {
		return Result[S]{}, fmt.Errorf("%w: nil target predicate", ErrInvalidArgument)
	}
	if rng == nil {
		return Result[S]{}, fmt.Errorf("%w: nil RNG", ErrInvalidArgument)
	}
	defer recoverTrialPanic(&err)
	opts = opts.withDefaults()
	state := m.Start()[0]
	if opts.SetStart {
		state = opts.Start
	}
	now := 0.0
	sc := newViewScratch[S](m)

	res = Result[S]{Final: state}
	if target(state) {
		res.Reached = true
		res.ReachedAt = 0
		return res, nil
	}

	for res.Events < opts.MaxEvents && now <= opts.MaxTime {
		view := sc.build(state, now)
		choice, ok := p.Choose(view, rng)
		if !ok {
			if len(view.Ready) > 0 {
				return res, ErrPolicyDeserted
			}
			res.Final = state
			return res, nil
		}
		next, t, action, err := applyChoice(view, choice, sc, rng)
		if err != nil {
			return res, err
		}
		if t > opts.MaxTime {
			// The policy's (otherwise legal) step falls past the clock
			// bound: truncate the run at MaxTime without applying it, so a
			// late step can never be counted as Reached. Validation above
			// still runs first — an invalid choice past the bound is an
			// error, not a quiet truncation.
			return res, nil
		}
		res.Events++
		if opts.Observer != nil {
			opts.Observer(t, choice.Proc, action, next)
		}
		// The stepping process gives up its deadline; the next build
		// assigns fresh deadlines t+1 to it and to newly ready processes,
		// clears processes no longer ready, and keeps everyone else's
		// older (tighter) deadline.
		delete(sc.deadlines, choice.Proc)
		now = t
		state = next
		res.Final = state
		if target(state) {
			res.Reached = true
			res.ReachedAt = now
			return res, nil
		}
	}
	return res, nil
}

// viewScratch holds one run's view buffers and move caches. The engine
// reuses them across steps, so the hot loop's only steady-state
// allocations are the ones the model makes inside Moves/UserMoves — and
// under a compiled model (cm non-nil) not even those: build serves the
// shared cache entry of the current state instead of querying the model.
type viewScratch[S comparable] struct {
	m sched.Model[S]
	// n is m.NumProcs(), hoisted once per run: the per-step loop and
	// every choice validation would otherwise call through the interface
	// on each iteration.
	n int
	// cm is non-nil when m is a compiled model; cur is the cache entry
	// of the state the last build saw, consumed by applyChoice.
	cm  *Compiled[S]
	cur *stateEntry[S]
	// deadlines persists across steps: it is the unit-time obligation
	// bookkeeping (proc -> latest legal step time).
	deadlines map[int]float64
	// deadline is rebuilt every step and lent to the policy through
	// View; see the View doc for the borrowing rule.
	deadline map[int]float64
	// The remaining fields are used only on the uncompiled path (the
	// compiled path shares its cache entry's slices and maps instead).
	ready      []int
	userMovers []int
	moveCount  map[int]int
	userCount  map[int]int
	moves      [][]pa.Step[S]
	userMoves  [][]pa.Step[S]
}

func newViewScratch[S comparable](m sched.Model[S]) *viewScratch[S] {
	n := m.NumProcs()
	sc := &viewScratch[S]{
		m:         m,
		n:         n,
		deadlines: make(map[int]float64, n),
		deadline:  make(map[int]float64, n),
	}
	if cm, ok := m.(*Compiled[S]); ok {
		sc.cm = cm
		return sc
	}
	sc.moveCount = make(map[int]int, n)
	sc.userCount = make(map[int]int, n)
	sc.moves = make([][]pa.Step[S], n)
	sc.userMoves = make([][]pa.Step[S], n)
	return sc
}

// build refreshes the deadline bookkeeping for the current state in the
// same pass that assembles the policy's View, querying each process's
// moves exactly once per step (or not at all when the state is compiled).
func (sc *viewScratch[S]) build(s S, now float64) View[S] {
	if sc.cm != nil {
		return sc.buildCompiled(s, now)
	}
	sc.ready = sc.ready[:0]
	sc.userMovers = sc.userMovers[:0]
	clear(sc.deadline)
	clear(sc.moveCount)
	clear(sc.userCount)
	v := View[S]{
		State:         s,
		Now:           now,
		DeadlineMin:   math.Inf(1),
		Deadline:      sc.deadline,
		MoveCount:     sc.moveCount,
		UserMoveCount: sc.userCount,
	}
	for i := 0; i < sc.n; i++ {
		moves := sc.m.Moves(s, i)
		sc.moves[i] = moves
		if len(moves) == 0 {
			delete(sc.deadlines, i)
		} else {
			d, ok := sc.deadlines[i]
			if !ok {
				d = now + 1
				sc.deadlines[i] = d
			}
			sc.ready = append(sc.ready, i)
			sc.deadline[i] = d
			if d < v.DeadlineMin {
				v.DeadlineMin = d
			}
			sc.moveCount[i] = len(moves)
		}
		user := sc.m.UserMoves(s, i)
		sc.userMoves[i] = user
		if len(user) > 0 {
			sc.userMovers = append(sc.userMovers, i)
			sc.userCount[i] = len(user)
		}
	}
	v.Ready = sc.ready
	v.UserMovers = sc.userMovers
	return v
}

// buildCompiled assembles the View from the state's cache entry: the
// ready/userMovers slices and the move-count maps are the entry's own
// (immutable, shared across trials and workers), and only the deadline
// bookkeeping — inherently per-run — is recomputed. The resulting View
// is field-for-field what the uncompiled build produces.
func (sc *viewScratch[S]) buildCompiled(s S, now float64) View[S] {
	e := sc.cm.entry(s)
	sc.cur = e
	v := View[S]{
		State:         s,
		Now:           now,
		DeadlineMin:   math.Inf(1),
		Ready:         e.ready,
		Deadline:      sc.deadline,
		MoveCount:     e.moveCount,
		UserMovers:    e.userMovers,
		UserMoveCount: e.userCount,
	}
	// Processes that stopped being ready give up their obligation, as in
	// the uncompiled pass.
	for i := range sc.deadlines {
		if e.readyMask&(1<<uint(i)) == 0 {
			delete(sc.deadlines, i)
		}
	}
	clear(sc.deadline)
	for _, i := range e.ready {
		d, ok := sc.deadlines[i]
		if !ok {
			d = now + 1
			sc.deadlines[i] = d
		}
		sc.deadline[i] = d
		if d < v.DeadlineMin {
			v.DeadlineMin = d
		}
	}
	return v
}

func applyChoice[S comparable](v View[S], c Choice, sc *viewScratch[S], rng *rand.Rand) (S, float64, string, error) {
	var zero S
	// Validate the process index before consulting the move caches:
	// Moves / UserMoves implementations are entitled to index per-process
	// arrays, so an out-of-range index from a malicious policy must
	// become ErrBadChoice here, never a panic inside the model.
	if c.Proc < 0 || c.Proc >= sc.n {
		return zero, 0, "", fmt.Errorf("%w: proc %d move %d (user=%t)", ErrBadChoice, c.Proc, c.Move, c.User)
	}
	var moves []pa.Step[S]
	if e := sc.cur; e != nil {
		moves = e.moves[c.Proc]
		if c.User {
			moves = e.userMoves[c.Proc]
		}
	} else {
		moves = sc.moves[c.Proc]
		if c.User {
			moves = sc.userMoves[c.Proc]
		}
	}
	if c.Move < 0 || c.Move >= len(moves) {
		return zero, 0, "", fmt.Errorf("%w: proc %d move %d (user=%t)", ErrBadChoice, c.Proc, c.Move, c.User)
	}
	t := c.At
	if t < v.Now || t > v.DeadlineMin {
		return zero, 0, "", fmt.Errorf("%w: time %v outside [%v, %v]", ErrBadChoice, t, v.Now, v.DeadlineMin)
	}
	step := &moves[c.Move]
	// An empty successor distribution (the zero prob.Dist in a hand-built
	// step) would panic inside Pick; detect it before drawing so the run
	// fails with a typed error and — because the check precedes the draw
	// on both paths — compiled and uncompiled runs consume identical
	// random streams.
	if step.Next.Len() == 0 {
		return zero, 0, "", fmt.Errorf("%w: proc %d action %q has an empty successor distribution", ErrBadModel, c.Proc, step.Action)
	}
	var next S
	if e := sc.cur; e != nil {
		fr := e.frozen[c.Proc]
		if c.User {
			fr = e.userFrozen[c.Proc]
		}
		next = fr[c.Move].Pick(rng.Float64())
	} else {
		next = step.Next.Pick(rng.Float64())
	}
	return next, t, step.Action, nil
}

// EstimateReachProb runs trials independent runs and estimates the
// probability that the target is reached within the given time.
func EstimateReachProb[S comparable](m sched.Model[S], mk func() Policy[S], target func(S) bool, within float64, trials int, opts Options[S], rng *rand.Rand) (stats.Proportion, error) {
	var prop stats.Proportion
	if err := validateEstimate(m, mk, target, trials); err != nil {
		return prop, err
	}
	if rng == nil {
		return prop, fmt.Errorf("%w: nil RNG", ErrInvalidArgument)
	}
	for i := 0; i < trials; i++ {
		res, err := RunOnce(m, mk(), target, opts, rng)
		if err != nil {
			return prop, fmt.Errorf("sim: trial %d: %w", i, err)
		}
		prop.Observe(res.Reached && res.ReachedAt <= within)
	}
	return prop, nil
}

// EstimateTimeToTarget runs trials independent runs and summarizes the
// time to reach the target; runs that never reach it are an error (use a
// generous Options.MaxTime for almost-sure targets).
func EstimateTimeToTarget[S comparable](m sched.Model[S], mk func() Policy[S], target func(S) bool, trials int, opts Options[S], rng *rand.Rand) (stats.Summary, error) {
	var sum stats.Summary
	if err := validateEstimate(m, mk, target, trials); err != nil {
		return sum, err
	}
	if rng == nil {
		return sum, fmt.Errorf("%w: nil RNG", ErrInvalidArgument)
	}
	for i := 0; i < trials; i++ {
		res, err := RunOnce(m, mk(), target, opts, rng)
		if err != nil {
			return sum, fmt.Errorf("sim: trial %d: %w", i, err)
		}
		if !res.Reached {
			return sum, fmt.Errorf("sim: trial %d did not reach the target within budget (events=%d, state=%v)", i, res.Events, res.Final)
		}
		sum.Observe(res.ReachedAt)
	}
	return sum, nil
}
