// Package sim is the Monte Carlo counterpart of the exact checker: it runs
// a multi-process model (sched.Model) in dense time under programmable
// Unit-Time adversaries and estimates reach probabilities and expected
// times.
//
// The engine enforces exactly the Unit-Time schema of Section 6.2 of the
// paper: every process that is ready (enables an algorithm move) must step
// within time 1 of becoming ready, time diverges, and the adversary — here
// called a Policy — freely chooses interleavings, exact step times and the
// resolution of nondeterministic branches, with complete knowledge of the
// run so far, including past coin flips. Unlike the digitized checker, the
// simulator does not quantize step times, so it explores the paper's
// adversary class directly (one policy at a time).
package sim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/pa"
	"repro/internal/sched"
	"repro/internal/stats"
)

// View is what a policy sees when asked for its next choice: the current
// state, the clock, the scheduling obligations, and the moves available.
//
// The slices of a View are owned by the engine and must not be modified:
// under an uncompiled model they are reused between steps (the hot loop
// would otherwise spend most of its time allocating them), and under a
// compiled model (Compile) they are cache entries shared across trials
// and workers. Either way they are valid only for the duration of the
// Choose call, and a policy must copy anything it wants to retain.
type View[S comparable] struct {
	// State is the current algorithm state.
	State S
	// Now is the current time.
	Now float64
	// DeadlineMin is the latest time the next step may happen: the
	// earliest unit-time deadline among ready processes (+Inf if none).
	DeadlineMin float64
	// Ready lists processes with algorithm moves, ascending.
	Ready []int
	// Deadline holds each process's unit-time deadline, indexed by
	// process; a process that is not ready holds +Inf (no obligation).
	Deadline []float64
	// MoveCount holds each process's number of algorithm moves
	// (nondeterministic branches the policy may pick among), indexed by
	// process; zero when the process is not ready.
	MoveCount []int
	// UserMovers lists processes with user moves available, ascending.
	UserMovers []int
	// UserMoveCount holds each process's number of user moves, indexed
	// by process; zero when the process has none.
	UserMoveCount []int
}

// Choice is a policy decision: process Proc performs its Move-th algorithm
// move (or user move when User is set) at time At.
type Choice struct {
	Proc int
	Move int
	User bool
	// At is the time of the step; the engine requires Now <= At <=
	// DeadlineMin.
	At float64
}

// Policy resolves the nondeterminism of a run: it is the operational form
// of an adversary with complete knowledge of the past. Returning ok =
// false ends the run; the engine rejects that while any process is ready,
// since deserting a ready process violates Unit-Time.
type Policy[S comparable] interface {
	Choose(v *View[S], rng *rand.Rand) (c Choice, ok bool)
}

// PolicyFunc adapts a function to the Policy interface.
type PolicyFunc[S comparable] func(v *View[S], rng *rand.Rand) (Choice, bool)

// Choose implements Policy.
func (f PolicyFunc[S]) Choose(v *View[S], rng *rand.Rand) (Choice, bool) { return f(v, rng) }

var _ Policy[int] = (PolicyFunc[int])(nil)

// Options configures a run.
type Options[S comparable] struct {
	// Start overrides the model's start state when Set is true.
	Start    S
	SetStart bool
	// MaxEvents bounds the number of steps (default 100000).
	MaxEvents int
	// MaxTime bounds the clock (default 1000). The bound is inclusive: a
	// step scheduled at a time <= MaxTime is applied and may reach the
	// target; a step scheduled strictly after MaxTime is never applied —
	// the run is truncated at the bound with Reached reflecting only what
	// happened by MaxTime.
	MaxTime float64
	// Observer, when non-nil, is called after every applied step with the
	// step time, acting process, action name and resulting state — the
	// hook used by the trace recorder.
	Observer func(t float64, proc int, action string, next S)
	// BitCompat forces a compiled model (Compile) to sample successor
	// states with the cumulative-scan sampler (prob.Frozen), which is
	// provably bit-identical to the uncompiled engine for every
	// distribution. The default (false) uses O(1) alias tables
	// (prob.Alias): same random stream, same distribution of outcomes,
	// but individual draws may map to different support elements when a
	// distribution's cumulative weights are not exactly representable.
	// Uncompiled runs ignore the flag.
	BitCompat bool
}

func (o Options[S]) withDefaults() Options[S] {
	if o.MaxEvents <= 0 {
		o.MaxEvents = 100000
	}
	if o.MaxTime <= 0 {
		o.MaxTime = 1000
	}
	return o
}

// Result reports one run.
type Result[S comparable] struct {
	// Reached reports whether the target was hit; ReachedAt is the time.
	Reached   bool
	ReachedAt float64
	// Events is the number of steps taken.
	Events int
	// Final is the last state.
	Final S
}

// Errors returned by the engine.
var (
	ErrPolicyDeserted = errors.New("sim: policy halted while a process was ready (violates Unit-Time)")
	ErrBadChoice      = errors.New("sim: policy returned an invalid choice")
	// ErrBadModel reports a model that handed the engine an invalid step —
	// today, a step whose successor distribution is empty (the zero
	// prob.Dist in a hand-built pa.Step). The engine detects it before
	// sampling, so the run fails with a typed, wrappable error instead of
	// a quarantined Pick panic.
	ErrBadModel = errors.New("sim: model returned an invalid step")
	// ErrInvalidArgument reports a malformed call (nil model, policy,
	// policy factory, target or RNG, or a non-positive trial budget): the
	// engine rejects it up front with a clear error instead of panicking
	// deep inside a run.
	ErrInvalidArgument = errors.New("sim: invalid argument")
)

// validateEstimate is the shared argument check of every estimator entry
// point, sequential and parallel.
func validateEstimate[S comparable](m sched.Model[S], mk func() Policy[S], target func(S) bool, trials int) error {
	if m == nil {
		return fmt.Errorf("%w: nil model", ErrInvalidArgument)
	}
	if mk == nil {
		return fmt.Errorf("%w: nil policy factory", ErrInvalidArgument)
	}
	if target == nil {
		return fmt.Errorf("%w: nil target predicate", ErrInvalidArgument)
	}
	if trials <= 0 {
		return fmt.Errorf("%w: trial budget %d is not positive", ErrInvalidArgument, trials)
	}
	return nil
}

// RunOnce executes one run of the model under the policy until the target
// predicate holds, the policy stops in a quiescent state, or a budget is
// exhausted.
//
// RunOnce never propagates a panic from the policy, the model, the target
// predicate or the observer: a panic is recovered into a *TrialPanicError
// (with the partial Result accumulated so far), so a single crashing trial
// is an error the caller can quarantine, not a process abort.
func RunOnce[S comparable](m sched.Model[S], p Policy[S], target func(S) bool, opts Options[S], rng *rand.Rand) (res Result[S], err error) {
	if m == nil {
		return Result[S]{}, fmt.Errorf("%w: nil model", ErrInvalidArgument)
	}
	if p == nil {
		return Result[S]{}, fmt.Errorf("%w: nil policy", ErrInvalidArgument)
	}
	if target == nil {
		return Result[S]{}, fmt.Errorf("%w: nil target predicate", ErrInvalidArgument)
	}
	if rng == nil {
		return Result[S]{}, fmt.Errorf("%w: nil RNG", ErrInvalidArgument)
	}
	defer recoverTrialPanic(&err)
	err = runTrial(newViewScratch[S](m), p, target, opts.withDefaults(), rng, &res)
	return res, err
}

// runTrial is the trial loop shared by RunOnce and the parallel arena
// path. It does no argument validation and no panic recovery — callers
// do both — and writes its progress through res so a recovered panic
// still sees the partial Result. The scratch may be reused across
// trials: runTrial resets it, and opts must already carry defaults.
func runTrial[S comparable](sc *viewScratch[S], p Policy[S], target func(S) bool, opts Options[S], rng *rand.Rand, res *Result[S]) error {
	sc.reset(opts.BitCompat)
	state := opts.Start
	if !opts.SetStart {
		if !sc.haveStart {
			sc.start = sc.m.Start()[0]
			sc.haveStart = true
		}
		state = sc.start
	}
	now := 0.0

	*res = Result[S]{Final: state}
	if target(state) {
		res.Reached = true
		res.ReachedAt = 0
		return nil
	}

	for res.Events < opts.MaxEvents && now <= opts.MaxTime {
		view := sc.build(state, now)
		choice, ok := p.Choose(view, rng)
		if !ok {
			if len(view.Ready) > 0 {
				return ErrPolicyDeserted
			}
			res.Final = state
			return nil
		}
		next, t, err := applyChoice(view.Now, view.DeadlineMin, choice, sc, rng)
		if err != nil {
			return err
		}
		if t > opts.MaxTime {
			// The policy's (otherwise legal) step falls past the clock
			// bound: truncate the run at MaxTime without applying it, so a
			// late step can never be counted as Reached. Validation above
			// still runs first — an invalid choice past the bound is an
			// error, not a quiet truncation.
			return nil
		}
		res.Events++
		if opts.Observer != nil {
			opts.Observer(t, choice.Proc, sc.action(choice), next)
		}
		// The stepping process gives up its deadline; the next build
		// assigns fresh deadlines t+1 to it and to newly ready processes,
		// clears processes no longer ready, and keeps everyone else's
		// older (tighter) deadline.
		sc.deadline[choice.Proc] = math.Inf(1)
		now = t
		state = next
		res.Final = state
		if target(state) {
			res.Reached = true
			res.ReachedAt = now
			return nil
		}
	}
	return nil
}

// viewScratch holds one run's view buffers and move caches. The engine
// reuses them across steps, so the hot loop's only steady-state
// allocations are the ones the model makes inside Moves/UserMoves — and
// under a compiled model (cm non-nil) not even those: build serves the
// shared cache entry of the current state instead of querying the model.
type viewScratch[S comparable] struct {
	m sched.Model[S]
	// n is m.NumProcs(), hoisted once per run: the per-step loop and
	// every choice validation would otherwise call through the interface
	// on each iteration.
	n int
	// cm is non-nil when m is a compiled model; cur is the cache entry
	// of the state the last build saw, consumed by applyChoice.
	cm  *Compiled[S]
	cur *stateEntry[S]
	// pending is the cache entry of the successor applyChoice just drew,
	// resolved through the entry's succ pointers; the next buildCompiled
	// (always of that same state) consumes it instead of re-hashing the
	// state into the shard maps.
	pending *stateEntry[S]
	// bitCompat selects the compiled path's sampler for the current
	// trial: frozen cumulative scans (Options.BitCompat) instead of the
	// default alias tables. Set by reset.
	bitCompat bool
	// start memoizes m.Start()[0] after the first trial that needs it
	// (models are purely functional, so the start state is a constant):
	// an arena worker would otherwise pay Start's slice allocation on
	// every one of its trials.
	start     S
	haveStart bool
	// view is the View build assembles in place each step; handing the
	// policy a copy of one persistent struct (instead of returning a
	// fresh ~200-byte View up the stack) keeps a measurable slice of the
	// per-event budget.
	view View[S]
	// deadline persists across steps and doubles as the View's Deadline
	// slice: deadline[i] is process i's unit-time obligation (latest
	// legal step time), +Inf while process i is not ready.
	deadline []float64
	// The remaining fields are used only on the uncompiled path (the
	// compiled path shares its cache entry's slices instead).
	ready      []int
	userMovers []int
	moveCount  []int
	userCount  []int
	moves      [][]pa.Step[S]
	userMoves  [][]pa.Step[S]
}

func newViewScratch[S comparable](m sched.Model[S]) *viewScratch[S] {
	n := m.NumProcs()
	sc := &viewScratch[S]{
		m:        m,
		n:        n,
		deadline: make([]float64, n),
	}
	sc.reset(false)
	if cm, ok := m.(*Compiled[S]); ok {
		sc.cm = cm
		return sc
	}
	sc.moveCount = make([]int, n)
	sc.userCount = make([]int, n)
	sc.moves = make([][]pa.Step[S], n)
	sc.userMoves = make([][]pa.Step[S], n)
	return sc
}

// reset clears the per-trial state — every scheduling obligation and the
// cached compiled entry — so one scratch can serve many trials (the
// parallel arena path) without carrying state across them.
func (sc *viewScratch[S]) reset(bitCompat bool) {
	for i := range sc.deadline {
		sc.deadline[i] = math.Inf(1)
	}
	sc.cur = nil
	sc.pending = nil
	sc.bitCompat = bitCompat
}

// build refreshes the deadline bookkeeping for the current state in the
// same pass that assembles the policy's View, querying each process's
// moves exactly once per step (or not at all when the state is compiled).
func (sc *viewScratch[S]) build(s S, now float64) *View[S] {
	if sc.cm != nil {
		return sc.buildCompiled(s, now)
	}
	sc.ready = sc.ready[:0]
	sc.userMovers = sc.userMovers[:0]
	v := &sc.view
	*v = View[S]{
		State:         s,
		Now:           now,
		DeadlineMin:   math.Inf(1),
		Deadline:      sc.deadline,
		MoveCount:     sc.moveCount,
		UserMoveCount: sc.userCount,
	}
	for i := 0; i < sc.n; i++ {
		moves := sc.m.Moves(s, i)
		sc.moves[i] = moves
		sc.moveCount[i] = len(moves)
		if len(moves) == 0 {
			// A process that stopped being ready gives up its obligation.
			sc.deadline[i] = math.Inf(1)
		} else {
			d := sc.deadline[i]
			if math.IsInf(d, 1) {
				d = now + 1
				sc.deadline[i] = d
			}
			sc.ready = append(sc.ready, i)
			if d < v.DeadlineMin {
				v.DeadlineMin = d
			}
		}
		user := sc.m.UserMoves(s, i)
		sc.userMoves[i] = user
		sc.userCount[i] = len(user)
		if len(user) > 0 {
			sc.userMovers = append(sc.userMovers, i)
		}
	}
	v.Ready = sc.ready
	v.UserMovers = sc.userMovers
	return v
}

// buildCompiled assembles the View from the state's cache entry: the
// ready/userMovers/move-count slices are the entry's own (immutable,
// shared across trials and workers), and only the deadline bookkeeping —
// inherently per-run — is recomputed. The resulting View is
// field-for-field what the uncompiled build produces.
func (sc *viewScratch[S]) buildCompiled(s S, now float64) *View[S] {
	e := sc.pending
	sc.pending = nil
	if e == nil {
		e = sc.cm.entry(s)
	}
	sc.cur = e
	v := &sc.view
	*v = View[S]{
		State:         s,
		Now:           now,
		DeadlineMin:   math.Inf(1),
		Ready:         e.ready,
		Deadline:      sc.deadline,
		MoveCount:     e.moveCount,
		UserMovers:    e.userMovers,
		UserMoveCount: e.userCount,
	}
	for i := 0; i < sc.n; i++ {
		if e.moveCount[i] == 0 {
			// A process that stopped being ready gives up its obligation,
			// as in the uncompiled pass.
			sc.deadline[i] = math.Inf(1)
			continue
		}
		d := sc.deadline[i]
		if math.IsInf(d, 1) {
			d = now + 1
			sc.deadline[i] = d
		}
		if d < v.DeadlineMin {
			v.DeadlineMin = d
		}
	}
	return v
}

// applyChoice validates the policy's choice and draws the successor
// state. It deliberately does not return the step's action label: the
// hot loop has no use for it, and on the compiled path even loading the
// pa.Step (a string header plus a Dist) per event costs measurable
// throughput — runTrial fetches the label through sc.action only when
// an observer is attached, and error paths load it on demand.
func applyChoice[S comparable](now, deadlineMin float64, c Choice, sc *viewScratch[S], rng *rand.Rand) (S, float64, error) {
	var zero S
	// Validate the process index before consulting the move caches:
	// Moves / UserMoves implementations are entitled to index per-process
	// arrays, so an out-of-range index from a malicious policy must
	// become ErrBadChoice here, never a panic inside the model. The
	// unsigned compare folds the negative and too-large cases into one
	// branch, matching the compiler's own slice bounds-check idiom.
	if uint(c.Proc) >= uint(sc.n) {
		return zero, 0, fmt.Errorf("%w: proc %d move %d (user=%t)", ErrBadChoice, c.Proc, c.Move, c.User)
	}
	if e := sc.cur; e != nil {
		// Compiled path: the sampler bundles are parallel to the memoized
		// moves (nil when the process has none), so the move-index bound
		// and the empty-distribution probe read the same small structs the
		// draw is about to use — the pa.Step itself stays untouched.
		ms := e.samplers[c.Proc]
		if c.User {
			ms = e.userSamplers[c.Proc]
		}
		if uint(c.Move) >= uint(len(ms)) {
			return zero, 0, fmt.Errorf("%w: proc %d move %d (user=%t)", ErrBadChoice, c.Proc, c.Move, c.User)
		}
		t := c.At
		if t < now || t > deadlineMin {
			return zero, 0, fmt.Errorf("%w: time %v outside [%v, %v]", ErrBadChoice, t, now, deadlineMin)
		}
		m := &ms[c.Move]
		if m.alias.Len() == 0 {
			return zero, 0, fmt.Errorf("%w: proc %d action %q has an empty successor distribution", ErrBadModel, c.Proc, sc.action(c))
		}
		if sc.bitCompat {
			return m.frozen.Pick(rng.Float64()), t, nil
		}
		idx := m.alias.PickIndex(rng.Float64())
		next := m.alias.At(idx)
		// Follow (or lazily resolve) the cached successor entry so the
		// next build skips the interning maps; see moveSampler.succ.
		slot := &m.succ[idx]
		ne := slot.Load()
		if ne == nil {
			ne = sc.cm.entry(next)
			slot.Store(ne)
		}
		sc.pending = ne
		return next, t, nil
	}
	moves := sc.moves[c.Proc]
	if c.User {
		moves = sc.userMoves[c.Proc]
	}
	if uint(c.Move) >= uint(len(moves)) {
		return zero, 0, fmt.Errorf("%w: proc %d move %d (user=%t)", ErrBadChoice, c.Proc, c.Move, c.User)
	}
	t := c.At
	if t < now || t > deadlineMin {
		return zero, 0, fmt.Errorf("%w: time %v outside [%v, %v]", ErrBadChoice, t, now, deadlineMin)
	}
	step := &moves[c.Move]
	// An empty successor distribution (the zero prob.Dist in a hand-built
	// step) would panic inside Pick; detect it before drawing so the run
	// fails with a typed error and — because the check precedes the draw
	// on every path — compiled and uncompiled runs consume identical
	// random streams.
	if step.Next.Len() == 0 {
		return zero, 0, fmt.Errorf("%w: proc %d action %q has an empty successor distribution", ErrBadModel, c.Proc, step.Action)
	}
	return step.Next.Pick(rng.Float64()), t, nil
}

// action returns the label of the step a validated choice names; callers
// must have bounds-checked c (applyChoice's cold paths and the observer
// hook in runTrial have).
func (sc *viewScratch[S]) action(c Choice) string {
	moves := sc.moves
	user := sc.userMoves
	if e := sc.cur; e != nil {
		moves, user = e.moves, e.userMoves
	}
	if c.User {
		return user[c.Proc][c.Move].Action
	}
	return moves[c.Proc][c.Move].Action
}

// EstimateReachProb runs trials independent runs and estimates the
// probability that the target is reached within the given time.
func EstimateReachProb[S comparable](m sched.Model[S], mk func() Policy[S], target func(S) bool, within float64, trials int, opts Options[S], rng *rand.Rand) (stats.Proportion, error) {
	var prop stats.Proportion
	if err := validateEstimate(m, mk, target, trials); err != nil {
		return prop, err
	}
	if rng == nil {
		return prop, fmt.Errorf("%w: nil RNG", ErrInvalidArgument)
	}
	for i := 0; i < trials; i++ {
		res, err := RunOnce(m, mk(), target, opts, rng)
		if err != nil {
			return prop, fmt.Errorf("sim: trial %d: %w", i, err)
		}
		prop.Observe(res.Reached && res.ReachedAt <= within)
	}
	return prop, nil
}

// EstimateTimeToTarget runs trials independent runs and summarizes the
// time to reach the target; runs that never reach it are an error (use a
// generous Options.MaxTime for almost-sure targets).
func EstimateTimeToTarget[S comparable](m sched.Model[S], mk func() Policy[S], target func(S) bool, trials int, opts Options[S], rng *rand.Rand) (stats.Summary, error) {
	var sum stats.Summary
	if err := validateEstimate(m, mk, target, trials); err != nil {
		return sum, err
	}
	if rng == nil {
		return sum, fmt.Errorf("%w: nil RNG", ErrInvalidArgument)
	}
	for i := 0; i < trials; i++ {
		res, err := RunOnce(m, mk(), target, opts, rng)
		if err != nil {
			return sum, fmt.Errorf("sim: trial %d: %w", i, err)
		}
		if !res.Reached {
			return sum, fmt.Errorf("sim: trial %d did not reach the target within budget (events=%d, state=%v)", i, res.Events, res.Final)
		}
		sum.Observe(res.ReachedAt)
	}
	return sum, nil
}
