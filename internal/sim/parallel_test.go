package sim

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/stats"
)

func mkSlowest() Policy[flipState] { return Slowest[flipState]() }

func heads(s flipState) bool { return s.Heads }

// TestParallelDeterministicAcrossWorkers is the deterministic-replay
// requirement: for a fixed seed, every worker count must produce
// bit-identical Proportion and Summary totals, because the per-trial RNG
// and the chunked merge order depend only on the trial budget.
func TestParallelDeterministicAcrossWorkers(t *testing.T) {
	const trials = 500 // > several chunks, with a ragged final chunk
	opts := Options[flipState]{}
	var props []stats.Proportion
	var sums []stats.Summary
	for _, workers := range []int{1, 2, 8} {
		popts := ParallelOptions{Workers: workers, Seed: 42}
		prop, _, err := EstimateReachProbParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, 2, trials, opts, popts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		props = append(props, prop)
		sum, _, err := EstimateTimeToTargetParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, trials, opts, popts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		sums = append(sums, sum)
	}
	for i := 1; i < len(props); i++ {
		if props[i] != props[0] {
			t.Errorf("Proportion differs across worker counts: %+v vs %+v", props[i], props[0])
		}
		// reflect.DeepEqual sees the unexported Welford state, so this is
		// a bit-level comparison of mean/m2/min/max, not an approximate one.
		if !reflect.DeepEqual(sums[i], sums[0]) {
			t.Errorf("Summary differs across worker counts: %v vs %v", sums[i].String(), sums[0].String())
		}
	}
}

// TestParallelSeedChangesResults guards against the pool ignoring the
// root seed: distinct seeds must yield distinct trial streams.
func TestParallelSeedChangesResults(t *testing.T) {
	opts := Options[flipState]{}
	a, _, err := EstimateTimeToTargetParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, 300, opts, ParallelOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := EstimateTimeToTargetParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, 300, opts, ParallelOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, b) {
		t.Errorf("seeds 1 and 2 produced identical summaries: %v", a.String())
	}
}

// TestEstimateReachProbParallelValue checks statistical correctness:
// P[heads within time 2] under the slowest policy is 3/4.
func TestEstimateReachProbParallelValue(t *testing.T) {
	prop, _, err := EstimateReachProbParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, 2, 4000,
		Options[flipState]{}, ParallelOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if prop.Trials != 4000 {
		t.Fatalf("trials = %d, want 4000", prop.Trials)
	}
	lo, hi, err := prop.Wilson(3)
	if err != nil {
		t.Fatal(err)
	}
	if lo > 0.75 || hi < 0.75 {
		t.Errorf("P[heads within 2] interval [%g, %g] excludes 3/4", lo, hi)
	}
}

// TestEstimateTimeToTargetParallelValue checks the geometric mean-time
// value (2 for a fair coin at unit pace) through the parallel path.
func TestEstimateTimeToTargetParallelValue(t *testing.T) {
	sum, _, err := EstimateTimeToTargetParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, 4000,
		Options[flipState]{}, ParallelOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	mean, err := sum.Mean()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-2) > 0.15 {
		t.Errorf("mean time = %g, want about 2", mean)
	}
}

// TestEstimateCurveParallelDeterministic checks the sharded curve:
// identical across worker counts, monotone in the deadline, and sharing
// the sequential default budget semantics.
func TestEstimateCurveParallelDeterministic(t *testing.T) {
	deadlines := []float64{3, 1, 2} // unsorted on purpose
	var curves []EmpiricalCurve
	for _, workers := range []int{1, 6} {
		c, _, err := EstimateCurveParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, deadlines, 500,
			Options[flipState]{}, ParallelOptions{Workers: workers, Seed: 3})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		curves = append(curves, c)
	}
	if !reflect.DeepEqual(curves[0], curves[1]) {
		t.Errorf("curves differ across worker counts: %+v vs %+v", curves[0], curves[1])
	}
	c := curves[0]
	if !sortedAscending(c.Deadlines) {
		t.Errorf("deadlines not sorted: %v", c.Deadlines)
	}
	prev := -1.0
	for i := range c.Deadlines {
		est, _, _, err := c.Point(i)
		if err != nil {
			t.Fatal(err)
		}
		if est < prev {
			t.Errorf("curve not monotone at %v: %g < %g", c.Deadlines[i], est, prev)
		}
		prev = est
	}
	if _, _, err := EstimateCurveParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, nil, 10,
		Options[flipState]{}, ParallelOptions{}); err == nil {
		t.Error("empty deadlines accepted")
	}
}

func sortedAscending(xs []float64) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			return false
		}
	}
	return true
}

// TestParallelErrorSemantics: engine errors keep their identity through
// the pool (errors.Is on the sentinel), carry a trial index, and cancel
// the remaining trials promptly (first error wins).
func TestParallelErrorSemantics(t *testing.T) {
	t.Run("desertion", func(t *testing.T) {
		quit := func() Policy[flipState] {
			return PolicyFunc[flipState](func(*View[flipState], *rand.Rand) (Choice, bool) {
				return Choice{}, false
			})
		}
		_, _, err := EstimateReachProbParallel[flipState](context.Background(), flipper{}, quit, heads, 2, 10_000,
			Options[flipState]{}, ParallelOptions{Workers: 8, Seed: 1})
		if !errors.Is(err, ErrPolicyDeserted) {
			t.Errorf("err = %v, want ErrPolicyDeserted", err)
		}
	})
	t.Run("bad choice", func(t *testing.T) {
		malicious := func() Policy[flipState] {
			return PolicyFunc[flipState](func(*View[flipState], *rand.Rand) (Choice, bool) {
				return Choice{Proc: 99, At: 0}, true
			})
		}
		_, _, err := EstimateReachProbParallel[flipState](context.Background(), flipper{}, malicious, heads, 2, 10_000,
			Options[flipState]{}, ParallelOptions{Workers: 8, Seed: 1})
		if !errors.Is(err, ErrBadChoice) {
			t.Errorf("err = %v, want ErrBadChoice", err)
		}
	})
	t.Run("unreached target is an error", func(t *testing.T) {
		never := func(flipState) bool { return false }
		_, _, err := EstimateTimeToTargetParallel[flipState](context.Background(), flipper{}, mkSlowest, never, 64,
			Options[flipState]{MaxEvents: 50}, ParallelOptions{Workers: 4, Seed: 1})
		if err == nil {
			t.Error("unreachable target accepted")
		}
	})
	t.Run("workers one reports the first failing trial", func(t *testing.T) {
		never := func(flipState) bool { return false }
		_, _, err := EstimateTimeToTargetParallel[flipState](context.Background(), flipper{}, mkSlowest, never, 64,
			Options[flipState]{MaxEvents: 50}, ParallelOptions{Workers: 1, Seed: 1})
		if err == nil || !strings.HasPrefix(err.Error(), "sim: trial 0:") {
			t.Errorf("err = %v, want it to name trial 0", err)
		}
	})
	t.Run("non-positive trial budget", func(t *testing.T) {
		if _, _, err := EstimateReachProbParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, 2, 0,
			Options[flipState]{}, ParallelOptions{}); err == nil {
			t.Error("zero trials accepted")
		}
	})
}

// TestRunParallelCustomAccumulator exercises the exported generic layer
// directly with a user-defined mergeable accumulator.
func TestRunParallelCustomAccumulator(t *testing.T) {
	type tally struct {
		Runs   int
		Events int
	}
	got, _, err := RunParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, 200,
		Options[flipState]{}, ParallelOptions{Workers: 4, Seed: 5},
		func(acc *tally, _ int, res Result[flipState]) error {
			acc.Runs++
			acc.Events += res.Events
			return nil
		},
		func(dst *tally, src tally) {
			dst.Runs += src.Runs
			dst.Events += src.Events
		})
	if err != nil {
		t.Fatal(err)
	}
	if got.Runs != 200 {
		t.Errorf("runs = %d, want 200", got.Runs)
	}
	if got.Events < 200 { // every run flips at least once
		t.Errorf("events = %d, want >= 200", got.Events)
	}
}

// TestTrialSeedSpread spot-checks the SplitMix64 mixing: nearby trial
// indices and nearby root seeds must not collide.
func TestTrialSeedSpread(t *testing.T) {
	seen := make(map[int64]bool)
	for seed := int64(0); seed < 4; seed++ {
		for trial := 0; trial < 1000; trial++ {
			s := trialSeed(seed, trial)
			if seen[s] {
				t.Fatalf("seed collision at root=%d trial=%d", seed, trial)
			}
			seen[s] = true
		}
	}
}
