package sim

import (
	"math"
	"math/rand"
)

// This file provides generic, model-agnostic policies. Model-specific
// malicious policies (e.g. the conflict-seeking Lehmann–Rabin scheduler)
// live next to their models.

// Slowest is the laziest legal adversary: it always steps the process with
// the earliest deadline, exactly at its deadline, taking the first enabled
// move. When no process is ready it fires pending user moves immediately,
// and stops once the system is fully quiescent. It maximizes elapsed time
// per step within the Unit-Time constraint.
func Slowest[S comparable]() Policy[S] {
	return Paced[S](1)
}

// Paced is like Slowest but steps at Now + alpha·(deadline - Now): alpha 1
// is the slowest legal schedule, small alpha approximates arbitrarily fast
// processes. It panics at construction on alpha outside (0, 1].
func Paced[S comparable](alpha float64) Policy[S] {
	if alpha <= 0 || alpha > 1 {
		panic("sim: Paced alpha outside (0, 1]")
	}
	return PolicyFunc[S](func(v *View[S], _ *rand.Rand) (Choice, bool) {
		if len(v.Ready) == 0 {
			if len(v.UserMovers) == 0 {
				return Choice{}, false
			}
			return Choice{Proc: v.UserMovers[0], User: true, At: v.Now}, true
		}
		proc := v.Ready[0]
		for _, i := range v.Ready[1:] {
			if v.Deadline[i] < v.Deadline[proc] {
				proc = i
			}
		}
		at := v.Now + alpha*(v.DeadlineMin-v.Now)
		return Choice{Proc: proc, At: at}, true
	})
}

// Random schedules a uniformly random ready process (or, with probability
// pUser when available, a random user move) at a uniformly random legal
// time, resolving nondeterministic branches uniformly. It approximates an
// unbiased environment rather than an adversary.
func Random[S comparable](pUser float64) Policy[S] {
	return PolicyFunc[S](func(v *View[S], rng *rand.Rand) (Choice, bool) {
		useUser := len(v.UserMovers) > 0 && (len(v.Ready) == 0 || rng.Float64() < pUser)
		if useUser {
			proc := v.UserMovers[rng.Intn(len(v.UserMovers))]
			return Choice{
				Proc: proc,
				Move: rng.Intn(v.UserMoveCount[proc]),
				User: true,
				At:   v.Now,
			}, true
		}
		if len(v.Ready) == 0 {
			return Choice{}, false
		}
		proc := v.Ready[rng.Intn(len(v.Ready))]
		span := v.DeadlineMin - v.Now
		at := v.Now
		if !math.IsInf(span, 1) && span > 0 {
			at += rng.Float64() * span
		}
		return Choice{Proc: proc, Move: rng.Intn(v.MoveCount[proc]), At: at}, true
	})
}
