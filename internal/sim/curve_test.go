package sim

import (
	"math/rand"
	"testing"
)

func TestEstimateCurve(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	curve, err := EstimateCurve[flipState](flipper{},
		func() Policy[flipState] { return Slowest[flipState]() },
		func(s flipState) bool { return s.Heads },
		[]float64{3, 1, 2}, // unsorted on purpose
		3000, Options[flipState]{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.Deadlines) != 3 || curve.Deadlines[0] != 1 || curve.Deadlines[2] != 3 {
		t.Fatalf("deadlines = %v, want sorted", curve.Deadlines)
	}
	// Under the slowest policy, P[heads by t] = 1 - 2^-t for integer t.
	want := []float64{0.5, 0.75, 0.875}
	var prev float64
	for i := range curve.Deadlines {
		est, lo, hi, err := curve.Point(i)
		if err != nil {
			t.Fatal(err)
		}
		if want[i] < lo-0.03 || want[i] > hi+0.03 {
			t.Errorf("deadline %g: estimate %g [%g, %g] far from %g",
				curve.Deadlines[i], est, lo, hi, want[i])
		}
		if est < prev {
			t.Errorf("curve not monotone at index %d", i)
		}
		prev = est
	}
}

func TestEstimateCurveEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	_, err := EstimateCurve[flipState](flipper{},
		func() Policy[flipState] { return Slowest[flipState]() },
		func(flipState) bool { return false },
		nil, 10, Options[flipState]{}, rng)
	if err == nil {
		t.Error("empty deadline list accepted")
	}
}
