package sim

// Panic containment. A policy, model, target predicate or observer that
// panics mid-trial must not take down a multi-hour Monte Carlo run: the
// engine converts the panic into a typed error carrying everything needed
// to replay the crash deterministically — the trial index and the exact
// SplitMix64-derived RNG seed of the offending trial — so any crash
// reproduces in a single RunOnce.

import (
	"errors"
	"fmt"
	"runtime/debug"

	"repro/internal/sched"
)

// TrialPanicError reports a panic recovered inside one simulation run.
//
// When the error escapes from a parallel run, Trial is the index of the
// panicking trial and Seed is that trial's private RNG seed, so the crash
// replays deterministically with sim.ReproTrial and the run's root seed
// (the replay must use the engine's own trial source — a plain
// rand.NewSource(err.Seed) draws a different stream). A panic
// recovered by a standalone RunOnce has Trial = -1 and Seed = 0 (the
// caller owns the RNG there, so the engine cannot name its seed).
type TrialPanicError struct {
	// Trial is the index of the panicking trial within a parallel run;
	// -1 when the panic was recovered outside the parallel engine.
	Trial int
	// Seed is the trial's private RNG seed (trial index mixed into the
	// root seed by SplitMix64); meaningful only when Trial >= 0.
	Seed int64
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack string
}

// Error names the trial and its repro seed when known.
func (e *TrialPanicError) Error() string {
	if e.Trial < 0 {
		return fmt.Sprintf("sim: run panicked: %v", e.Value)
	}
	return fmt.Sprintf("sim: trial %d panicked: %v (replay: sim.ReproTrial(..., rootSeed, %d); trial RNG seed %d)",
		e.Trial, e.Value, e.Trial, e.Seed)
}

// Unwrap exposes a panic value that was itself an error.
func (e *TrialPanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// recoverTrialPanic converts a recovered panic value into a
// *TrialPanicError; it is the deferred recovery hook of RunOnce.
func recoverTrialPanic(err *error) {
	if r := recover(); r != nil {
		*err = &TrialPanicError{Trial: -1, Value: r, Stack: string(debug.Stack())}
	}
}

// TrialRNGSeed returns the private RNG seed of one trial of a parallel run
// with the given root seed — the value a TrialPanicError reports in Seed.
func TrialRNGSeed(rootSeed int64, trial int) int64 { return trialSeed(rootSeed, trial) }

// ReproTrial replays a single trial of a parallel run: it derives the
// trial's private RNG from the root seed exactly as the worker pool does
// and executes one RunOnce. It is the one-line repro command for a
// TrialPanicError quarantined from a large run:
//
//	res, err := sim.ReproTrial(model, mk, target, opts, rootSeed, pe.Trial)
//
// returns the same result (or the same panic, as a TrialPanicError) that
// the original trial produced, whatever the worker count was.
func ReproTrial[S comparable](m sched.Model[S], mk func() Policy[S], target func(S) bool,
	opts Options[S], rootSeed int64, trial int) (Result[S], error) {
	if mk == nil {
		return Result[S]{}, fmt.Errorf("%w: nil policy factory", ErrInvalidArgument)
	}
	if trial < 0 {
		return Result[S]{}, fmt.Errorf("%w: negative trial index %d", ErrInvalidArgument, trial)
	}
	res, err := RunOnce(m, mk(), target, opts, newTrialRNG(trialSeed(rootSeed, trial)))
	var pe *TrialPanicError
	if errors.As(err, &pe) {
		pe.Trial, pe.Seed = trial, trialSeed(rootSeed, trial)
	}
	return res, err
}
