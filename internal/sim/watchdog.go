package sim

// Stuck-trial containment. Panic quarantine (panic.go) handles trials
// that die loudly; this file handles trials that never return — a policy
// spinning in an infinite loop, a model whose support never reaches the
// target and whose step budget is effectively unbounded. When
// ParallelOptions.TrialTimeout is set, each trial runs under a watchdog:
// a trial that exceeds its wall-clock budget is abandoned and quarantined
// as a typed *TrialStalledError, exactly like a panic — recorded in the
// checkpoint (kind "stall"), excluded from the estimate, counted against
// the MaxPanics budget. The trial's seed is in the record, so the hang
// reproduces deterministically in a single watched RunOnce.
//
// Time flows through fault.Clock, so tests drive the watchdog with a
// FakeClock instead of sleeping and stall detection stays deterministic.

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/fault"
	"repro/internal/sched"
)

// ErrTrialStalled matches every *TrialStalledError, so callers can
// classify an abort as watchdog-triggered without naming the trial.
var ErrTrialStalled = errors.New("sim: trial stalled")

// TrialStalledError reports a trial abandoned by the watchdog after
// exceeding its wall-clock budget. Like TrialPanicError, it carries the
// trial index and the trial's private RNG seed, so the hang replays
// deterministically (sim.ReproTrial with the root seed, or RunOnce with
// rand.NewSource(Seed) — under a watchdog, unless you want to wait).
// It matches ErrTrialStalled via errors.Is.
type TrialStalledError struct {
	// Trial is the index of the stalled trial within the parallel run.
	Trial int
	// Seed is the trial's private RNG seed.
	Seed int64
	// Timeout is the wall-clock budget the trial exceeded.
	Timeout time.Duration
}

// Error names the trial, its budget and its repro seed.
func (e *TrialStalledError) Error() string {
	return fmt.Sprintf("sim: trial %d stalled: no result within %v (replay: RunOnce with rand.NewSource(%d), or sim.ReproTrial(..., rootSeed, %d))",
		e.Trial, e.Timeout, e.Seed, e.Trial)
}

// Is reports a match against ErrTrialStalled.
func (e *TrialStalledError) Is(target error) bool { return target == ErrTrialStalled }

// trialOutcome carries one finished trial out of its watchdog goroutine.
type trialOutcome[S comparable] struct {
	res Result[S]
	err error
}

// runWatched executes one trial under a wall-clock watchdog: RunOnce runs
// in its own goroutine, and if it has not delivered an outcome when the
// budget elapses, the trial is abandoned with a *TrialStalledError.
//
// An abandoned trial's goroutine is deliberately leaked: it holds only
// trial-local state (its policy, its RNG, its chunk is not touched) and
// its late outcome lands in a buffered channel nobody reads. A trial that
// is genuinely stuck — the failure mode the watchdog exists for — can be
// abandoned but not stopped; bounding the leak is what MaxPanics is for.
func runWatched[S comparable](m sched.Model[S], pol Policy[S], target func(S) bool, opts Options[S],
	rng *rand.Rand, clock fault.Clock, timeout time.Duration, trial int, seed int64) (Result[S], error) {

	outcome := make(chan trialOutcome[S], 1)
	go func() {
		res, err := RunOnce(m, pol, target, opts, rng)
		outcome <- trialOutcome[S]{res: res, err: err}
	}()
	select {
	case o := <-outcome:
		return o.res, o.err
	case <-clock.After(timeout):
		// The trial may have finished in the instant between the timer
		// firing and this select: prefer the real outcome when it is
		// already there, so a FakeClock advanced past the deadline cannot
		// stall a trial that actually completed.
		select {
		case o := <-outcome:
			return o.res, o.err
		default:
		}
		return Result[S]{}, &TrialStalledError{Trial: trial, Seed: seed, Timeout: timeout}
	}
}
