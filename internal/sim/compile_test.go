package sim

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/pa"
	"repro/internal/prob"
	"repro/internal/sched"
)

// userFlip is a one-process model with both an algorithm move and a user
// move, so compiled runs exercise the userFrozen sampling path: the user
// move "arm"s the process, the algorithm move then flips until heads.
type ufState struct {
	Armed bool
	Heads bool
}

type userFlip struct{}

func (userFlip) Name() string     { return "user-flip" }
func (userFlip) NumProcs() int    { return 1 }
func (userFlip) Start() []ufState { return []ufState{{}} }

func (userFlip) Moves(s ufState, i int) []pa.Step[ufState] {
	if !s.Armed || s.Heads {
		return nil
	}
	return []pa.Step[ufState]{{
		Action: "flip",
		Next: prob.MustDist(
			prob.Outcome[ufState]{Value: ufState{Armed: true, Heads: true}, Prob: prob.Half()},
			prob.Outcome[ufState]{Value: ufState{Armed: true}, Prob: prob.Half()},
		),
	}}
}

func (userFlip) UserMoves(s ufState, i int) []pa.Step[ufState] {
	if s.Armed {
		return nil
	}
	return []pa.Step[ufState]{{Action: "arm", Next: prob.Point(ufState{Armed: true})}}
}

var _ sched.Model[ufState] = userFlip{}

// mkUserFlip arms the process with the user move when nothing is ready,
// then plays the slowest legal schedule.
func mkUserFlip() Policy[ufState] {
	return PolicyFunc[ufState](func(v *View[ufState], _ *rand.Rand) (Choice, bool) {
		if len(v.Ready) > 0 {
			return Choice{Proc: v.Ready[0], Move: 0, At: v.DeadlineMin}, true
		}
		if len(v.UserMovers) > 0 {
			return Choice{Proc: v.UserMovers[0], Move: 0, User: true, At: v.Now}, true
		}
		return Choice{}, false
	})
}

func ufHeads(s ufState) bool { return s.Heads }

func TestCompileIdentityAndIdempotence(t *testing.T) {
	c := Compile[flipState](flipper{})
	if _, ok := c.(*Compiled[flipState]); !ok {
		t.Fatalf("Compile(flipper) = %T, want *Compiled", c)
	}
	if again := Compile(c); again != c {
		t.Errorf("Compile(Compile(m)) = %p, want the same compiled model %p", again, c)
	}
	if got := Compile[flipState](nil); got != nil {
		t.Errorf("Compile(nil) = %v, want nil", got)
	}
	if c.Name() != "flipper" || c.NumProcs() != 1 {
		t.Errorf("compiled model delegation: name %q procs %d", c.Name(), c.NumProcs())
	}
}

// impureModel violates the sched.Model purity contract: every Moves call
// returns a different action name.
type impureModel struct{ calls atomic.Int64 }

func (m *impureModel) Name() string       { return "impure" }
func (m *impureModel) NumProcs() int      { return 1 }
func (m *impureModel) Start() []flipState { return []flipState{{}} }

func (m *impureModel) Moves(s flipState, i int) []pa.Step[flipState] {
	if s.Heads {
		return nil
	}
	action := "even"
	if m.calls.Add(1)%2 == 1 {
		action = "odd"
	}
	return []pa.Step[flipState]{{Action: action, Next: prob.Point(flipState{Heads: true})}}
}

func (m *impureModel) UserMoves(flipState, int) []pa.Step[flipState] { return nil }

// panickyModel panics on any Moves query.
type panickyModel struct{}

func (panickyModel) Name() string                                  { return "panicky" }
func (panickyModel) NumProcs() int                                 { return 1 }
func (panickyModel) Start() []flipState                            { return []flipState{{}} }
func (panickyModel) Moves(flipState, int) []pa.Step[flipState]     { panic("model bug") }
func (panickyModel) UserMoves(flipState, int) []pa.Step[flipState] { return nil }

func TestCompilePurityPassThrough(t *testing.T) {
	impure := &impureModel{}
	if got := Compile[flipState](impure); got != sched.Model[flipState](impure) {
		t.Errorf("Compile(impure) = %T, want the model passed through uncompiled", got)
	}
	if got := Compile[flipState](panickyModel{}); got != sched.Model[flipState](panickyModel{}) {
		t.Errorf("Compile(panicky) = %T, want the model passed through uncompiled", got)
	}
	// The pass-through keeps panic semantics: the model's panic surfaces
	// inside the trial as a quarantinable TrialPanicError, exactly as
	// uncompiled.
	_, err := RunOnce[flipState](panickyModel{}, Slowest[flipState](), heads, Options[flipState]{}, rand.New(rand.NewSource(1)))
	var pe *TrialPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("RunOnce on panicky model: err = %v, want TrialPanicError", err)
	}
}

// TestCompiledBitIdentical is the in-package half of the compiled-vs-direct
// property: for every (seed, worker count), the default compiled run and
// the NoCompile run produce DeepEqual estimates and reports, on models
// with and without user moves.
func TestCompiledBitIdentical(t *testing.T) {
	const trials = 500
	for _, seed := range []int64{1, 2, 3} {
		for _, workers := range []int{1, 2, 8} {
			base := ParallelOptions{Seed: seed, Workers: workers}
			noc := base
			noc.NoCompile = true

			sumC, repC, errC := EstimateTimeToTargetParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, trials, Options[flipState]{}, base)
			sumU, repU, errU := EstimateTimeToTargetParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, trials, Options[flipState]{}, noc)
			if errC != nil || errU != nil {
				t.Fatalf("seed=%d workers=%d: errs %v / %v", seed, workers, errC, errU)
			}
			if !reflect.DeepEqual(sumC, sumU) {
				t.Errorf("seed=%d workers=%d: compiled summary %v != uncompiled %v", seed, workers, sumC, sumU)
			}
			if repC.Completed != repU.Completed {
				t.Errorf("seed=%d workers=%d: completed %d != %d", seed, workers, repC.Completed, repU.Completed)
			}

			propC, _, errC := EstimateReachProbParallel[ufState](context.Background(), userFlip{}, mkUserFlip, ufHeads, 8, trials, Options[ufState]{}, base)
			propU, _, errU := EstimateReachProbParallel[ufState](context.Background(), userFlip{}, mkUserFlip, ufHeads, 8, trials, Options[ufState]{}, noc)
			if errC != nil || errU != nil {
				t.Fatalf("user-flip seed=%d workers=%d: errs %v / %v", seed, workers, errC, errU)
			}
			if propC != propU {
				t.Errorf("user-flip seed=%d workers=%d: compiled %+v != uncompiled %+v", seed, workers, propC, propU)
			}
		}
	}
}

// TestCompiledRunOnceMatchesUncompiled drives RunOnce directly with a
// pre-compiled model: the full Result must match the uncompiled run for
// the same seed, including step counts and final states.
func TestCompiledRunOnceMatchesUncompiled(t *testing.T) {
	cm := Compile[ufState](userFlip{})
	for seed := int64(0); seed < 50; seed++ {
		want, err1 := RunOnce[ufState](userFlip{}, mkUserFlip(), ufHeads, Options[ufState]{}, rand.New(rand.NewSource(seed)))
		got, err2 := RunOnce[ufState](cm, mkUserFlip(), ufHeads, Options[ufState]{}, rand.New(rand.NewSource(seed)))
		if err1 != nil || err2 != nil {
			t.Fatalf("seed=%d: errs %v / %v", seed, err1, err2)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed=%d: compiled result %+v != uncompiled %+v", seed, got, want)
		}
	}
}

// TestCompiledInterruptResume: the checkpoint/resume cycle under the
// compiled engine reproduces the uncompiled uninterrupted run bit-for-bit.
func TestCompiledInterruptResume(t *testing.T) {
	const trials = 2000
	want, _, err := EstimateTimeToTargetParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, trials,
		Options[flipState]{}, ParallelOptions{Seed: 7, NoCompile: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	popts := interruptAfterChunks(ParallelOptions{Seed: 7, Workers: 4}, cancel, 3)
	_, rep, err := EstimateTimeToTargetParallel[flipState](ctx, flipper{}, mkSlowest, heads, trials, Options[flipState]{}, popts)
	cancel()
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	got, rep2, err := EstimateTimeToTargetParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, trials,
		Options[flipState]{}, ParallelOptions{Seed: 7, Workers: 2, Resume: rep.Checkpoint})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Resumed != rep.Completed || rep2.Completed != trials {
		t.Fatalf("resume accounting: %v then %v", rep, rep2)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("compiled interrupt+resume %v != uncompiled uninterrupted %v", got.String(), want.String())
	}
}

// badDist is a hand-built model whose only step embeds the zero
// prob.Dist — historically a Pick panic deep in the engine.
type badDist struct{}

func (badDist) Name() string       { return "bad-dist" }
func (badDist) NumProcs() int      { return 1 }
func (badDist) Start() []flipState { return []flipState{{}} }

func (badDist) Moves(s flipState, i int) []pa.Step[flipState] {
	if s.Heads {
		return nil
	}
	return []pa.Step[flipState]{{Action: "broken"}} // zero-value Next
}

func (badDist) UserMoves(flipState, int) []pa.Step[flipState] { return nil }

// TestBadModelEmptyDist: an empty successor distribution is a typed,
// wrappable ErrBadModel on both engines — not a quarantined panic.
func TestBadModelEmptyDist(t *testing.T) {
	_, err := RunOnce[flipState](badDist{}, Slowest[flipState](), heads, Options[flipState]{}, rand.New(rand.NewSource(1)))
	if !errors.Is(err, ErrBadModel) {
		t.Fatalf("RunOnce err = %v, want ErrBadModel", err)
	}
	var pe *TrialPanicError
	if errors.As(err, &pe) {
		t.Fatalf("empty distribution was quarantined as a panic: %v", err)
	}

	for _, nocompile := range []bool{false, true} {
		_, rep, err := EstimateReachProbParallel[flipState](context.Background(), badDist{}, mkSlowest, heads, 2, 100,
			Options[flipState]{}, ParallelOptions{Seed: 1, MaxPanics: 5, NoCompile: nocompile})
		if !errors.Is(err, ErrBadModel) {
			t.Errorf("nocompile=%t: parallel err = %v, want ErrBadModel", nocompile, err)
		}
		if rep.Quarantined != 0 {
			t.Errorf("nocompile=%t: %d trials quarantined; ErrBadModel must not consume the panic budget", nocompile, rep.Quarantined)
		}
	}
}

// batchCounting implements BatchMetrics on top of countingMetrics-style
// atomic counters, recording how the engine batches.
type batchCounting struct {
	countingMetrics
	batches     atomic.Int64
	batchTrials atomic.Int64
	batchReach  atomic.Int64
	batchSteps  atomic.Int64
}

func (b *batchCounting) TrialBatchDone(trials, reached int, events []int64, reachTimes []float64, seconds float64) {
	b.batches.Add(1)
	b.batchTrials.Add(int64(trials))
	b.batchReach.Add(int64(reached))
	for _, e := range events {
		b.batchSteps.Add(e)
	}
	if len(reachTimes) != reached {
		panic("reachTimes length disagrees with reached count")
	}
}

// TestBatchMetricsCallPattern: a BatchMetrics hook sees no per-trial
// TrialDone calls, exactly one batch per committed chunk, and the same
// totals the per-trial interface reports.
func TestBatchMetricsCallPattern(t *testing.T) {
	const trials = 300 // 4 full chunks + one ragged chunk of 44
	// Per-trial reference: a plain countingMetrics hook on the identical
	// run records the totals the batch path must reproduce.
	var ref countingMetrics
	refProp, _, err := EstimateReachProbParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, 3, trials,
		Options[flipState]{}, ParallelOptions{Seed: 9, Workers: 4, Metrics: &ref})
	if err != nil {
		t.Fatal(err)
	}

	bm := &batchCounting{}
	prop, rep, err := EstimateReachProbParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, 3, trials,
		Options[flipState]{}, ParallelOptions{Seed: 9, Workers: 4, Metrics: bm})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != trials {
		t.Fatalf("completed %d/%d", rep.Completed, trials)
	}
	if prop != refProp {
		t.Fatalf("batch hook perturbed the estimate: %+v != %+v", prop, refProp)
	}
	if got := bm.trials.Load(); got != 0 {
		t.Errorf("TrialDone called %d times despite batch support", got)
	}
	wantChunks := int64((trials + parallelChunkSize - 1) / parallelChunkSize)
	if got := bm.batches.Load(); got != wantChunks {
		t.Errorf("TrialBatchDone called %d times, want one per chunk (%d)", got, wantChunks)
	}
	if got := bm.batchTrials.Load(); got != trials {
		t.Errorf("batched trial total %d, want %d", got, trials)
	}
	if got, want := bm.batchReach.Load(), ref.reached.Load(); got != want {
		t.Errorf("batched reached total %d, per-trial hook saw %d", got, want)
	}
	if got, want := bm.batchSteps.Load(), ref.events.Load(); got != want {
		t.Errorf("batched step total %d, per-trial hook saw %d", got, want)
	}
}

// TestCompiledCacheSharedAcrossRuns: one compiled model reused by
// consecutive runs answers the second run from the warm cache (no new
// interned states for the same seed), and the estimates agree.
func TestCompiledCacheSharedAcrossRuns(t *testing.T) {
	cm := Compile[flipState](flipper{}).(*Compiled[flipState])
	first, _, err := EstimateReachProbParallel[flipState](context.Background(), cm, mkSlowest, heads, 5, 400,
		Options[flipState]{}, ParallelOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	warm := cm.count.Load()
	if warm == 0 {
		t.Fatal("no states interned after a full run")
	}
	second, _, err := EstimateReachProbParallel[flipState](context.Background(), cm, mkSlowest, heads, 5, 400,
		Options[flipState]{}, ParallelOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cm.count.Load() != warm {
		t.Errorf("second identical run grew the cache: %d -> %d states", warm, cm.count.Load())
	}
	if first != second {
		t.Errorf("warm-cache run %+v != cold-cache run %+v", second, first)
	}
}
