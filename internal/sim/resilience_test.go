package sim

// Tests for the resilient run controller: panic quarantine with seed-exact
// repro, context cancellation with graceful partial results, and
// chunk-granularity checkpoint/resume that is bit-identical to an
// uninterrupted run for every worker count.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/stats"
)

// mkPanicky returns a policy factory that panics on a pFrac fraction of
// trials: the decision is the trial RNG's first draw, so which trials
// panic is a pure function of the root seed — deterministic across worker
// counts and reproducible from the trial seed alone.
func mkPanicky(pFrac float64) func() Policy[flipState] {
	return func() Policy[flipState] {
		first := true
		inner := Slowest[flipState]()
		return PolicyFunc[flipState](func(v *View[flipState], rng *rand.Rand) (Choice, bool) {
			if first {
				first = false
				if rng.Float64() < pFrac {
					panic("injected policy panic")
				}
			}
			return inner.Choose(v, rng)
		})
	}
}

func TestRunOnceRecoversPanics(t *testing.T) {
	boom := PolicyFunc[flipState](func(*View[flipState], *rand.Rand) (Choice, bool) {
		panic("kaboom")
	})
	_, err := RunOnce[flipState](flipper{}, boom, heads, Options[flipState]{}, rand.New(rand.NewSource(1)))
	var pe *TrialPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *TrialPanicError", err)
	}
	if pe.Trial != -1 {
		t.Errorf("standalone RunOnce panic Trial = %d, want -1", pe.Trial)
	}
	if pe.Value != "kaboom" {
		t.Errorf("panic value = %v, want kaboom", pe.Value)
	}
	if pe.Stack == "" {
		t.Error("panic stack not captured")
	}
}

// TestPanicAbortNamesReproSeed is the acceptance criterion for crashes: an
// injected panicking policy must surface as a TrialPanicError whose Seed
// replays the panic in a single RunOnce.
func TestPanicAbortNamesReproSeed(t *testing.T) {
	mk := mkPanicky(0.05)
	_, rep, err := EstimateReachProbParallel[flipState](context.Background(), flipper{}, mk, heads, 2, 2000,
		Options[flipState]{}, ParallelOptions{Workers: 4, Seed: 11}) // MaxPanics 0: first panic aborts
	var pe *TrialPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *TrialPanicError", err)
	}
	if pe.Trial < 0 || pe.Seed != TrialRNGSeed(11, pe.Trial) {
		t.Fatalf("panic names trial %d seed %d, want seed %d", pe.Trial, pe.Seed, TrialRNGSeed(11, pe.Trial))
	}
	if !strings.Contains(err.Error(), fmt.Sprint(pe.Seed)) {
		t.Errorf("error %q does not name the repro seed %d", err, pe.Seed)
	}
	if rep.Checkpoint == nil {
		t.Error("report after abort has no checkpoint")
	}

	// The one-line repro: a fresh RunOnce on the trial's private RNG
	// reproduces the exact panic.
	_, rerr := RunOnce[flipState](flipper{}, mk(), heads, Options[flipState]{}, rand.New(rand.NewSource(pe.Seed)))
	var rpe *TrialPanicError
	if !errors.As(rerr, &rpe) || fmt.Sprint(rpe.Value) != fmt.Sprint(pe.Value) {
		t.Errorf("RunOnce with seed %d = %v, want the original panic %v", pe.Seed, rerr, pe.Value)
	}
	// And the packaged form of the same command.
	_, rerr = ReproTrial[flipState](flipper{}, mk, heads, Options[flipState]{}, 11, pe.Trial)
	rpe = nil
	if !errors.As(rerr, &rpe) || rpe.Trial != pe.Trial || rpe.Seed != pe.Seed {
		t.Errorf("ReproTrial = %v, want panic at trial %d seed %d", rerr, pe.Trial, pe.Seed)
	}
}

// TestPanicQuarantine: with a budget, panicking trials are excluded and
// recorded rather than fatal, the surviving estimate is deterministic
// across worker counts, and exceeding the budget aborts.
func TestPanicQuarantine(t *testing.T) {
	const trials = 2000
	mk := mkPanicky(0.01)
	// Panic identity (trial, seed) is deterministic; stacks carry
	// goroutine ids and addresses, so the comparison strips them.
	identity := func(prs []PanicRecord) [][2]int64 {
		ids := make([][2]int64, len(prs))
		for i, pr := range prs {
			ids[i] = [2]int64{int64(pr.Trial), pr.Seed}
		}
		return ids
	}
	var baseline stats.Proportion
	var basePanics [][2]int64
	for i, workers := range []int{1, 3, 8} {
		prop, rep, err := EstimateReachProbParallel[flipState](context.Background(), flipper{}, mk, heads, 2, trials,
			Options[flipState]{}, ParallelOptions{Workers: workers, Seed: 9, MaxPanics: trials})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if rep.Quarantined == 0 {
			t.Fatalf("workers=%d: no trials quarantined; the injected panics did not fire", workers)
		}
		if rep.Completed+rep.Quarantined != trials {
			t.Errorf("workers=%d: completed %d + quarantined %d != %d", workers, rep.Completed, rep.Quarantined, trials)
		}
		if prop.Trials != rep.Completed {
			t.Errorf("workers=%d: estimate over %d trials, report says %d", workers, prop.Trials, rep.Completed)
		}
		for _, pr := range rep.Panics {
			if pr.Seed != TrialRNGSeed(9, pr.Trial) {
				t.Errorf("workers=%d: panic record %+v has wrong seed", workers, pr)
			}
		}
		if i == 0 {
			baseline, basePanics = prop, identity(rep.Panics)
			continue
		}
		if prop != baseline {
			t.Errorf("workers=%d: estimate %+v differs from baseline %+v", workers, prop, baseline)
		}
		if !reflect.DeepEqual(identity(rep.Panics), basePanics) {
			t.Errorf("workers=%d: quarantined set differs across worker counts", workers)
		}
	}

	// A budget of zero rejects the very first panic.
	_, _, err := EstimateReachProbParallel[flipState](context.Background(), flipper{}, mk, heads, 2, trials,
		Options[flipState]{}, ParallelOptions{Workers: 3, Seed: 9})
	var pe *TrialPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("MaxPanics=0: err = %v, want *TrialPanicError", err)
	}
}

// interruptAfterChunks builds a ParallelOptions whose checkpoint sink
// cancels the context after n completed chunks — a deterministic stand-in
// for SIGINT striking mid-run.
func interruptAfterChunks(popts ParallelOptions, cancel context.CancelFunc, n int) ParallelOptions {
	calls := 0
	popts.CheckpointSink = func(*Checkpoint) error {
		calls++
		if calls == n {
			cancel()
		}
		return nil
	}
	return popts
}

// TestInterruptResumeBitIdentical is the headline resilience guarantee
// (and the cancellation-determinism satellite): a run cancelled mid-way
// and resumed from its checkpoint produces bit-identical final estimates
// to an uninterrupted seeded run, for several worker counts on both sides
// of the interruption.
func TestInterruptResumeBitIdentical(t *testing.T) {
	const trials = 2000 // 32 chunks: far more than any worker pool drains post-cancel
	opts := Options[flipState]{}
	base := ParallelOptions{Seed: 42}

	wantSum, wantRep, err := EstimateTimeToTargetParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, trials, opts, base)
	if err != nil {
		t.Fatal(err)
	}
	if wantRep.Completed != trials {
		t.Fatalf("uninterrupted run completed %d/%d", wantRep.Completed, trials)
	}

	for _, workers := range []int{1, 2, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		popts := base
		popts.Workers = workers
		got, rep, err := EstimateTimeToTargetParallel[flipState](ctx, flipper{}, mkSlowest, heads, trials, opts,
			interruptAfterChunks(popts, cancel, 3))
		cancel()
		if !errors.Is(err, ErrInterrupted) {
			t.Fatalf("workers=%d: err = %v, want ErrInterrupted", workers, err)
		}
		if !rep.Interrupted || rep.Completed == 0 || rep.Completed >= trials {
			t.Fatalf("workers=%d: partial report %v not strictly partial", workers, rep)
		}
		if got.N() != rep.Completed {
			t.Errorf("workers=%d: partial summary over %d samples, report says %d", workers, got.N(), rep.Completed)
		}
		if rep.Checkpoint == nil || rep.Checkpoint.Done() != rep.Completed {
			t.Fatalf("workers=%d: resume token covers %v trials, want %d", workers, rep.Checkpoint.Done(), rep.Completed)
		}

		// Resume on a different worker count than the interrupted half ran.
		resumed := base
		resumed.Workers = 11 - workers
		resumed.Resume = rep.Checkpoint
		final, rep2, err := EstimateTimeToTargetParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, trials, opts, resumed)
		if err != nil {
			t.Fatalf("workers=%d: resume: %v", workers, err)
		}
		if rep2.Resumed != rep.Completed {
			t.Errorf("workers=%d: resumed %d trials, want %d restored", workers, rep2.Resumed, rep.Completed)
		}
		if rep2.Completed != trials {
			t.Errorf("workers=%d: resumed run completed %d/%d", workers, rep2.Completed, trials)
		}
		// reflect.DeepEqual sees the unexported Welford state: this is a
		// bit-level comparison with the uninterrupted run.
		if !reflect.DeepEqual(final, wantSum) {
			t.Errorf("workers=%d: resumed estimate %v != uninterrupted %v", workers, final.String(), wantSum.String())
		}
	}
}

// TestInterruptBeforeStart: a context that is already cancelled yields an
// empty partial result and a resume token that replays the entire run.
func TestInterruptBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	prop, rep, err := EstimateReachProbParallel[flipState](ctx, flipper{}, mkSlowest, heads, 2, 500,
		Options[flipState]{}, ParallelOptions{Workers: 4, Seed: 5})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if prop.Trials != 0 || rep.Completed != 0 || !rep.Interrupted {
		t.Fatalf("cancelled-at-start run reported %v, estimate %+v", rep, prop)
	}
	want, _, err := EstimateReachProbParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, 2, 500,
		Options[flipState]{}, ParallelOptions{Workers: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := EstimateReachProbParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, 2, 500,
		Options[flipState]{}, ParallelOptions{Workers: 4, Seed: 5, Resume: rep.Checkpoint})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("resume from empty token = %+v, want %+v", got, want)
	}
}

// TestCurveInterruptResume exercises the slice-valued accumulator through
// the same interrupt/resume cycle.
func TestCurveInterruptResume(t *testing.T) {
	deadlines := []float64{1, 2, 3}
	const trials = 1500
	want, _, err := EstimateCurveParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, deadlines, trials,
		Options[flipState]{}, ParallelOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	popts := interruptAfterChunks(ParallelOptions{Seed: 3, Workers: 4}, cancel, 2)
	partial, rep, err := EstimateCurveParallel[flipState](ctx, flipper{}, mkSlowest, heads, deadlines, trials,
		Options[flipState]{}, popts)
	cancel()
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if len(partial.At) != len(deadlines) || partial.At[0].Trials != rep.Completed {
		t.Fatalf("partial curve %+v inconsistent with report %v", partial, rep)
	}
	got, _, err := EstimateCurveParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, deadlines, trials,
		Options[flipState]{}, ParallelOptions{Seed: 3, Resume: rep.Checkpoint})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("resumed curve %+v != uninterrupted %+v", got, want)
	}
}

// TestCheckpointMismatch: resume tokens are refused when they belong to a
// different seed, budget, or estimator.
func TestCheckpointMismatch(t *testing.T) {
	_, rep, err := EstimateReachProbParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, 2, 300,
		Options[flipState]{}, ParallelOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	token := rep.Checkpoint

	cases := []struct {
		name string
		run  func() error
	}{
		{"different seed", func() error {
			_, _, err := EstimateReachProbParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, 2, 300,
				Options[flipState]{}, ParallelOptions{Seed: 2, Resume: token})
			return err
		}},
		{"different budget", func() error {
			_, _, err := EstimateReachProbParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, 2, 301,
				Options[flipState]{}, ParallelOptions{Seed: 1, Resume: token})
			return err
		}},
		{"different estimator", func() error {
			_, _, err := EstimateTimeToTargetParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, 300,
				Options[flipState]{}, ParallelOptions{Seed: 1, Resume: token})
			return err
		}},
		{"different estimator parameters", func() error {
			_, _, err := EstimateReachProbParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, 3, 300,
				Options[flipState]{}, ParallelOptions{Seed: 1, Resume: token})
			return err
		}},
		{"corrupt chunk index", func() error {
			bad := *token
			bad.Chunks = append([]ChunkRecord(nil), token.Chunks...)
			bad.Chunks[0].Index = 99
			_, _, err := EstimateReachProbParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, 2, 300,
				Options[flipState]{}, ParallelOptions{Seed: 1, Resume: &bad})
			return err
		}},
	}
	for _, tc := range cases {
		if err := tc.run(); !errors.Is(err, ErrCheckpointMismatch) {
			t.Errorf("%s: err = %v, want ErrCheckpointMismatch", tc.name, err)
		}
	}
}

// TestCheckpointSetRoundTrip: the on-disk form restores bit-identically
// through Save/Load, and a missing state file is an empty set.
func TestCheckpointSetRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	cs, err := LoadCheckpointSet(path)
	if err != nil || len(cs) != 0 {
		t.Fatalf("missing file: set %v, err %v; want empty, nil", cs, err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	popts := interruptAfterChunks(ParallelOptions{Seed: 8, Workers: 2}, cancel, 2)
	_, rep, err := EstimateTimeToTargetParallel[flipState](ctx, flipper{}, mkSlowest, heads, 1000,
		Options[flipState]{}, popts)
	cancel()
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	cs["stage"] = rep.Checkpoint
	if err := cs.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpointSet(path)
	if err != nil {
		t.Fatal(err)
	}

	want, _, err := EstimateTimeToTargetParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, 1000,
		Options[flipState]{}, ParallelOptions{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := EstimateTimeToTargetParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, 1000,
		Options[flipState]{}, ParallelOptions{Seed: 8, Resume: loaded["stage"]})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("resume through disk = %v, want %v", got.String(), want.String())
	}
}

// TestEstimateValidation: nil RNGs, nil factories and bad budgets are
// clear up-front errors on every entry point, never a panic deep in the
// engine.
func TestEstimateValidation(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(1))
	check := func(name string, err error) {
		t.Helper()
		if !errors.Is(err, ErrInvalidArgument) {
			t.Errorf("%s: err = %v, want ErrInvalidArgument", name, err)
		}
	}

	_, err := RunOnce[flipState](flipper{}, nil, heads, Options[flipState]{}, rng)
	check("RunOnce nil policy", err)
	_, err = RunOnce[flipState](flipper{}, Slowest[flipState](), heads, Options[flipState]{}, nil)
	check("RunOnce nil rng", err)
	_, err = RunOnce[flipState](flipper{}, Slowest[flipState](), nil, Options[flipState]{}, rng)
	check("RunOnce nil target", err)

	_, err = EstimateReachProb[flipState](flipper{}, nil, heads, 2, 10, Options[flipState]{}, rng)
	check("EstimateReachProb nil factory", err)
	_, err = EstimateReachProb[flipState](flipper{}, mkSlowest, heads, 2, 10, Options[flipState]{}, nil)
	check("EstimateReachProb nil rng", err)
	_, err = EstimateReachProb[flipState](flipper{}, mkSlowest, heads, 2, 0, Options[flipState]{}, rng)
	check("EstimateReachProb zero trials", err)
	_, err = EstimateTimeToTarget[flipState](flipper{}, nil, heads, 10, Options[flipState]{}, rng)
	check("EstimateTimeToTarget nil factory", err)
	_, err = EstimateTimeToTarget[flipState](flipper{}, mkSlowest, heads, -1, Options[flipState]{}, rng)
	check("EstimateTimeToTarget negative trials", err)
	_, err = EstimateCurve[flipState](flipper{}, mkSlowest, heads, []float64{1}, 10, Options[flipState]{}, nil)
	check("EstimateCurve nil rng", err)
	_, err = EstimateCurve[flipState](flipper{}, nil, heads, []float64{1}, 10, Options[flipState]{}, rng)
	check("EstimateCurve nil factory", err)

	_, _, err = EstimateReachProbParallel[flipState](ctx, flipper{}, nil, heads, 2, 10, Options[flipState]{}, ParallelOptions{})
	check("EstimateReachProbParallel nil factory", err)
	_, _, err = EstimateTimeToTargetParallel[flipState](ctx, flipper{}, mkSlowest, nil, 10, Options[flipState]{}, ParallelOptions{})
	check("EstimateTimeToTargetParallel nil target", err)
	_, _, err = EstimateCurveParallel[flipState](ctx, flipper{}, mkSlowest, heads, []float64{1}, 0, Options[flipState]{}, ParallelOptions{})
	check("EstimateCurveParallel zero trials", err)
	_, _, err = EstimateReachProbParallel[flipState](ctx, flipper{}, mkSlowest, heads, 2, 10, Options[flipState]{},
		ParallelOptions{MaxPanics: -1})
	check("negative quarantine budget", err)

	var nilObserve func(acc *int, trial int, res Result[flipState]) error
	_, _, err = RunParallel[flipState, int](ctx, flipper{}, mkSlowest, heads, 10, Options[flipState]{}, ParallelOptions{},
		nilObserve, func(dst *int, src int) {})
	check("RunParallel nil observe", err)
}
