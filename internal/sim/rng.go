package sim

import "math/rand"

// This file defines the per-trial random source of the parallel engine.
//
// math/rand's default source is an additive lagged-Fibonacci generator
// whose Seed runs a 607-word warmup — fine when one RNG serves a whole
// session, ruinous when every Monte Carlo trial seeds its own: profiles
// showed over half the single-core trial budget inside Seed. The trial
// source is therefore a SplitMix64 counter generator: seeding is one
// store, each draw is an add and a three-xor-shift finalizer, and the
// statistical quality is ample for Monte Carlo estimation (SplitMix64
// passes BigCrush). Determinism is preserved exactly as before: a
// trial's stream depends only on its trialSeed(Seed, trial), never on
// workers, scheduling or arena reuse.

// fastSource is the SplitMix64 generator behind every trial RNG. It
// implements rand.Source64, so rand.Rand draws whole uint64s from it,
// and its Seed is O(1) — which is what lets an arena reseed one RNG per
// trial instead of allocating one.
type fastSource struct{ state uint64 }

func (s *fastSource) Seed(seed int64) { s.state = uint64(seed) }

func (s *fastSource) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *fastSource) Int63() int64 { return int64(s.Uint64() >> 1) }

var _ rand.Source64 = (*fastSource)(nil)

// newTrialRNG builds the private RNG of one trial. Every path that runs
// or replays a trial — the worker pool, the watchdog, ReproTrial — must
// construct its RNG here so they all see the same stream for the same
// seed.
func newTrialRNG(seed int64) *rand.Rand { return rand.New(&fastSource{state: uint64(seed)}) }
