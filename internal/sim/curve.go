package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/sched"
	"repro/internal/stats"
)

// EmpiricalCurve is the Monte Carlo counterpart of the exact worst-case
// curve (core.WorstCaseCurve): one batch of runs under a single policy
// yields the empirical probability of reaching the target within t for
// every requested deadline at once.
type EmpiricalCurve struct {
	// Deadlines are the evaluated horizons, ascending.
	Deadlines []float64
	// At[i] is the Bernoulli estimate for Deadlines[i].
	At []stats.Proportion
}

// Point returns the estimate and its 95% Wilson interval at index i.
func (c EmpiricalCurve) Point(i int) (est, lo, hi float64, err error) {
	est, err = c.At[i].Estimate()
	if err != nil {
		return 0, 0, 0, err
	}
	lo, hi, err = c.At[i].Wilson(1.96)
	return est, lo, hi, err
}

// curveDeadlines validates and sorts the requested horizons; both the
// sequential and the parallel curve estimators evaluate this canonical
// ascending copy.
func curveDeadlines(deadlines []float64) ([]float64, error) {
	if len(deadlines) == 0 {
		return nil, fmt.Errorf("sim: no deadlines")
	}
	ds := append([]float64(nil), deadlines...)
	sort.Float64s(ds)
	return ds, nil
}

// EstimateCurve runs trials independent runs under fresh policies from mk
// and tallies, for every deadline, whether the target was reached by
// then. Deadlines are sorted; the run budget is max(deadlines)+1.
// EstimateCurveParallel is the multi-core variant.
func EstimateCurve[S comparable](m sched.Model[S], mk func() Policy[S], target func(S) bool, deadlines []float64, trials int, opts Options[S], rng *rand.Rand) (EmpiricalCurve, error) {
	if err := validateEstimate(m, mk, target, trials); err != nil {
		return EmpiricalCurve{}, err
	}
	if rng == nil {
		return EmpiricalCurve{}, fmt.Errorf("%w: nil RNG", ErrInvalidArgument)
	}
	ds, err := curveDeadlines(deadlines)
	if err != nil {
		return EmpiricalCurve{}, err
	}
	curve := EmpiricalCurve{
		Deadlines: ds,
		At:        make([]stats.Proportion, len(ds)),
	}
	if opts.MaxTime <= 0 {
		opts.MaxTime = ds[len(ds)-1] + 1
	}
	for trial := 0; trial < trials; trial++ {
		res, err := RunOnce(m, mk(), target, opts, rng)
		if err != nil {
			return curve, fmt.Errorf("sim: trial %d: %w", trial, err)
		}
		for i, d := range ds {
			curve.At[i].Observe(res.Reached && res.ReachedAt <= d)
		}
	}
	return curve, nil
}
