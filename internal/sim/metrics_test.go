package sim

// Tests for the Metrics telemetry hook: the engine must report exactly the
// run that happened (one TrialDone per trial, balanced chunk claims,
// quarantine/restore/checkpoint events matching the RunReport), must not
// change the estimate, and must not allocate on the hot path.

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// countingMetrics is a zero-allocation Metrics used to check the engine's
// call pattern; every field is atomic so any worker count is safe.
type countingMetrics struct {
	trials, quarantined, chunks, restored, checkpoints atomic.Int64
	chunkTrials, reached, events                       atomic.Int64
	active, maxActive                                  atomic.Int64
	negSeconds, stalled                                atomic.Int64
}

func (c *countingMetrics) TrialDone(trial, events int, seconds float64, reached bool, reachedAt float64) {
	c.trials.Add(1)
	c.events.Add(int64(events))
	if reached {
		c.reached.Add(1)
	}
	if seconds < 0 {
		c.negSeconds.Add(1)
	}
}
func (c *countingMetrics) TrialQuarantined(trial int) { c.quarantined.Add(1) }
func (c *countingMetrics) TrialStalled(trial int)     { c.stalled.Add(1) }
func (c *countingMetrics) ChunkActive(delta int) {
	now := c.active.Add(int64(delta))
	for {
		max := c.maxActive.Load()
		if now <= max || c.maxActive.CompareAndSwap(max, now) {
			return
		}
	}
}
func (c *countingMetrics) ChunkDone(chunk, trials int) {
	c.chunks.Add(1)
	c.chunkTrials.Add(int64(trials))
}
func (c *countingMetrics) TrialsRestored(n int) { c.restored.Add(int64(n)) }
func (c *countingMetrics) CheckpointSaved()     { c.checkpoints.Add(1) }

// TestMetricsCallPattern checks that, for every worker count, the hook
// sees exactly the run that happened — one TrialDone per trial, balanced
// chunk claims, chunk trial counts summing to the budget — and that the
// estimate is bit-identical to an uninstrumented run.
func TestMetricsCallPattern(t *testing.T) {
	const trials = 200
	ref, refRep, err := EstimateReachProbParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, 2, trials,
		Options[flipState]{}, ParallelOptions{Workers: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 8} {
		var cm countingMetrics
		got, rep, err := EstimateReachProbParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, 2, trials,
			Options[flipState]{}, ParallelOptions{Workers: workers, Seed: 9, Metrics: &cm})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got != ref || rep.Completed != refRep.Completed {
			t.Errorf("workers=%d: instrumented estimate %+v differs from reference %+v", workers, got, ref)
		}
		if n := cm.trials.Load(); n != trials {
			t.Errorf("workers=%d: TrialDone called %d times, want %d", workers, n, trials)
		}
		if n := cm.chunkTrials.Load(); n != trials {
			t.Errorf("workers=%d: ChunkDone trials sum = %d, want %d", workers, n, trials)
		}
		wantChunks := int64((trials + parallelChunkSize - 1) / parallelChunkSize)
		if n := cm.chunks.Load(); n != wantChunks {
			t.Errorf("workers=%d: ChunkDone called %d times, want %d", workers, n, wantChunks)
		}
		if a := cm.active.Load(); a != 0 {
			t.Errorf("workers=%d: ChunkActive unbalanced: %d", workers, a)
		}
		if max := cm.maxActive.Load(); max < 1 || max > int64(workers) {
			t.Errorf("workers=%d: max in-flight chunks = %d, want 1..%d", workers, max, workers)
		}
		if cm.reached.Load() == 0 || cm.events.Load() == 0 {
			t.Errorf("workers=%d: outcome fields not forwarded (reached=%d events=%d)",
				workers, cm.reached.Load(), cm.events.Load())
		}
		if cm.negSeconds.Load() != 0 {
			t.Errorf("workers=%d: negative trial wall-times reported", workers)
		}
		if cm.quarantined.Load() != 0 || cm.restored.Load() != 0 || cm.checkpoints.Load() != 0 {
			t.Errorf("workers=%d: spurious quarantine=%d/restore=%d/checkpoint=%d calls",
				workers, cm.quarantined.Load(), cm.restored.Load(), cm.checkpoints.Load())
		}
	}
}

// TestMetricsQuarantineCheckpointRestore drives the remaining hook methods:
// a panicking-policy run under a checkpoint sink must report every
// quarantine and every sink call, and resuming from its final token must
// report the restored trials without re-running any.
func TestMetricsQuarantineCheckpointRestore(t *testing.T) {
	const trials = 2000
	mk := mkPanicky(0.01)

	var cm countingMetrics
	saved := 0
	_, rep, err := EstimateReachProbParallel[flipState](context.Background(), flipper{}, mk, heads, 2, trials,
		Options[flipState]{}, ParallelOptions{
			Workers: 2, Seed: 9, MaxPanics: trials, Metrics: &cm,
			CheckpointSink: func(*Checkpoint) error { saved++; return nil },
		})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Quarantined == 0 {
		t.Fatal("injected panics did not fire; test is vacuous")
	}
	if got := cm.quarantined.Load(); got != int64(rep.Quarantined) {
		t.Errorf("TrialQuarantined called %d times, report says %d", got, rep.Quarantined)
	}
	if got := cm.trials.Load(); got != int64(rep.Completed) {
		t.Errorf("TrialDone called %d times, report says %d completed", got, rep.Completed)
	}
	if got := cm.checkpoints.Load(); got != int64(saved) || saved == 0 {
		t.Errorf("CheckpointSaved called %d times, sink ran %d times", got, saved)
	}

	// Resume from the completed run's token: everything restores (the
	// engine restores whole chunks, quarantined trials included), nothing
	// re-runs, and no checkpoints are written.
	var cm2 countingMetrics
	_, rep2, err := EstimateReachProbParallel[flipState](context.Background(), flipper{}, mk, heads, 2, trials,
		Options[flipState]{}, ParallelOptions{
			Workers: 2, Seed: 9, MaxPanics: trials, Metrics: &cm2, Resume: rep.Checkpoint,
		})
	if err != nil {
		t.Fatal(err)
	}
	if got := cm2.restored.Load(); got != int64(rep2.Resumed) || got != trials {
		t.Errorf("TrialsRestored = %d, report.Resumed = %d, want %d", got, rep2.Resumed, trials)
	}
	if got := cm2.trials.Load(); got != 0 {
		t.Errorf("resumed run re-ran %d trials", got)
	}
	if got := cm2.checkpoints.Load(); got != 0 {
		t.Errorf("resumed run reported %d checkpoint saves", got)
	}
}

// TestMetricsInterruptedRun: a cancelled run still balances ChunkActive
// and reports only the trials that actually completed.
func TestMetricsInterruptedRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	var cm countingMetrics
	_, rep, err := EstimateReachProbParallel[flipState](ctx, flipper{}, mkSlowest, heads, 2, 500,
		Options[flipState]{}, ParallelOptions{Workers: 2, Seed: 1, Metrics: &cm})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if cm.active.Load() != 0 {
		t.Errorf("ChunkActive unbalanced after interrupt: %d", cm.active.Load())
	}
	if got := cm.trials.Load(); got != int64(rep.Completed) {
		t.Errorf("TrialDone count %d != report.Completed %d", got, rep.Completed)
	}
}

// TestMetricsAddZeroAllocs is the zero-overhead acceptance criterion:
// enabling a conforming (atomic-only) Metrics implementation must add no
// per-trial allocations, and with Metrics nil the hot path pays only a nil
// check. The comparison is whole-run: fixed per-run overhead (goroutines,
// chunk slices, checkpoint records) is identical on both sides, so any
// per-trial leak shows up as a delta proportional to the trial count.
func TestMetricsAddZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed under -race")
	}
	const trials = 256
	run := func(met Metrics) func() {
		return func() {
			_, _, err := EstimateReachProbParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, 2, trials,
				Options[flipState]{}, ParallelOptions{Workers: 1, Seed: 1, Metrics: met})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	var cm countingMetrics
	disabled := testing.AllocsPerRun(10, run(nil))
	enabled := testing.AllocsPerRun(10, run(&cm))
	if delta := enabled - disabled; delta > 1 {
		t.Errorf("enabling metrics added %.1f allocs per run (%.4f/trial), want 0",
			delta, delta/trials)
	}
}

func TestRunReportString(t *testing.T) {
	cases := []struct {
		rep  RunReport
		want string
	}{
		{RunReport{Total: 100, Completed: 100}, "100/100 trials"},
		{RunReport{Total: 100, Completed: 100, Resumed: 40}, "100/100 trials (40 restored from checkpoint)"},
		{RunReport{Total: 100, Completed: 98, Quarantined: 2}, "98/100 trials (2 panicking trials quarantined)"},
		{RunReport{Total: 100, Completed: 60, Interrupted: true}, "60/100 trials (interrupted)"},
		{RunReport{Total: 200, Completed: 120, Resumed: 64, Quarantined: 1, Interrupted: true},
			"120/200 trials (64 restored from checkpoint, 1 panicking trials quarantined, interrupted)"},
	}
	for _, c := range cases {
		if got := c.rep.String(); got != c.want {
			t.Errorf("RunReport%+v.String() = %q, want %q", c.rep, got, c.want)
		}
	}
}
