package sim

// Tests for the chunk-lifecycle span seam (ParallelOptions.SpanHooks)
// and the pprof goroutine-label seam (ParallelOptions.PprofLabels).

import (
	"bytes"
	"context"
	"errors"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"testing"
)

// recordingHooks implements SpanHooks, recording every chunk start and
// asserting each returned end func fires exactly once.
type recordingHooks struct {
	mu     sync.Mutex
	chunks map[int]int // chunk index -> trials announced at start
	done   map[int]int // chunk index -> completed reported at end
	ends   atomic.Int64
	double atomic.Int64
}

func newRecordingHooks() *recordingHooks {
	return &recordingHooks{chunks: map[int]int{}, done: map[int]int{}}
}

func (h *recordingHooks) ChunkStart(chunk, trials int) func(completed, quarantined int) {
	h.mu.Lock()
	h.chunks[chunk] = trials
	h.mu.Unlock()
	var once atomic.Bool
	return func(completed, quarantined int) {
		if !once.CompareAndSwap(false, true) {
			h.double.Add(1)
			return
		}
		h.ends.Add(1)
		h.mu.Lock()
		h.done[chunk] = completed
		h.mu.Unlock()
	}
}

// TestSpanHooksCallPattern: the engine calls ChunkStart once per chunk
// with the chunk's trial count, fires each end func exactly once with
// the completed count, and the hooks do not perturb the estimate.
func TestSpanHooksCallPattern(t *testing.T) {
	const trials = 300 // 4 full chunks + one ragged chunk of 44
	ref, _, err := EstimateReachProbParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, 3, trials,
		Options[flipState]{}, ParallelOptions{Seed: 9, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	hooks := newRecordingHooks()
	prop, rep, err := EstimateReachProbParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, 3, trials,
		Options[flipState]{}, ParallelOptions{Seed: 9, Workers: 4, SpanHooks: hooks})
	if err != nil {
		t.Fatal(err)
	}
	if prop != ref {
		t.Fatalf("span hooks perturbed the estimate: %+v != %+v", prop, ref)
	}
	if rep.Completed != trials {
		t.Fatalf("completed %d/%d", rep.Completed, trials)
	}
	wantChunks := (trials + parallelChunkSize - 1) / parallelChunkSize
	if got := len(hooks.chunks); got != wantChunks {
		t.Errorf("ChunkStart called for %d chunks, want %d", got, wantChunks)
	}
	if got := hooks.ends.Load(); got != int64(wantChunks) {
		t.Errorf("end funcs fired %d times, want %d", got, wantChunks)
	}
	if got := hooks.double.Load(); got != 0 {
		t.Errorf("%d end funcs fired more than once", got)
	}
	var announced, completed int
	for chunk, n := range hooks.chunks {
		announced += n
		completed += hooks.done[chunk]
	}
	if announced != trials || completed != trials {
		t.Errorf("announced %d / completed %d trials across chunks, want %d", announced, completed, trials)
	}
	if n, ok := hooks.chunks[wantChunks-1]; !ok || n != trials%parallelChunkSize {
		t.Errorf("ragged last chunk announced %d trials, want %d", n, trials%parallelChunkSize)
	}
}

// TestSpanHooksSeeCancellation: a cancelled run still fires every end
// func that was started (the defer path), with partial counts.
func TestSpanHooksSeeCancellation(t *testing.T) {
	hooks := newRecordingHooks()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := EstimateReachProbParallel[flipState](ctx, flipper{}, mkSlowest, heads, 3, 300,
		Options[flipState]{}, ParallelOptions{Seed: 9, SpanHooks: hooks})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	h := hooks
	h.mu.Lock()
	started := len(h.chunks)
	h.mu.Unlock()
	if got := hooks.ends.Load(); got != int64(started) {
		t.Errorf("%d chunks started but %d end funcs fired; every started chunk must end", started, got)
	}
}

// TestPprofLabels: labels are applied around the worker goroutines (a
// hook observes them via pprof.Label) and odd-length label lists are
// rejected up front.
func TestPprofLabels(t *testing.T) {
	var sawLabel atomic.Bool
	hooks := &labelCheckHooks{saw: &sawLabel}
	_, _, err := EstimateReachProbParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, 3, 128,
		Options[flipState]{}, ParallelOptions{Seed: 1, SpanHooks: hooks,
			PprofLabels: []string{"fabric_job", "test-job"}})
	if err != nil {
		t.Fatal(err)
	}
	if !sawLabel.Load() {
		t.Error("worker goroutines ran without the fabric_job pprof label")
	}

	_, _, err = EstimateReachProbParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, 3, 64,
		Options[flipState]{}, ParallelOptions{Seed: 1, PprofLabels: []string{"odd"}})
	if !errors.Is(err, ErrInvalidArgument) {
		t.Errorf("odd-length PprofLabels: err = %v, want ErrInvalidArgument", err)
	}
}

// labelCheckHooks records whether the goroutine running chunks carries
// the fabric_job pprof label. ChunkStart runs synchronously on the
// worker goroutine, and the debug=1 goroutine profile prints each
// goroutine's label set, so a profile dump taken here must show it.
type labelCheckHooks struct{ saw *atomic.Bool }

func (h *labelCheckHooks) ChunkStart(chunk, trials int) func(completed, quarantined int) {
	if !h.saw.Load() {
		var buf bytes.Buffer
		pprof.Lookup("goroutine").WriteTo(&buf, 1) //nolint:errcheck // in-memory write
		if bytes.Contains(buf.Bytes(), []byte(`"fabric_job":"test-job"`)) {
			h.saw.Store(true)
		}
	}
	return func(completed, quarantined int) {}
}
