package sim

// Tests for the chunk-range seam (ParallelOptions.Chunks) — the engine
// hook the distributed trial fabric is built on: any partition of the
// chunk index space, run as separate range-restricted invocations and
// reassembled through the resume path, must be bit-identical to the
// one-process run.

import (
	"context"
	"errors"
	"testing"
)

// runRange executes chunks [lo, hi) of a canonical flipper job and
// returns the fragment checkpoint.
func runRange(t *testing.T, seed int64, trials, workers, lo, hi int) *Checkpoint {
	t.Helper()
	_, rep, err := EstimateReachProbParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, 2, trials,
		Options[flipState]{}, ParallelOptions{Workers: workers, Seed: seed, Chunks: &ChunkRange{Lo: lo, Hi: hi}})
	if err != nil {
		t.Fatalf("range [%d,%d): %v", lo, hi, err)
	}
	if rep.Checkpoint == nil {
		t.Fatalf("range [%d,%d): no checkpoint in report", lo, hi)
	}
	return rep.Checkpoint
}

// TestChunkRangePartitionBitIdentical is the engine half of the fabric's
// headline guarantee: run disjoint chunk ranges separately (with varying
// worker counts, as distributed workers would), pool the fragments, and
// the resumed merge reproduces the uninterrupted estimate exactly.
func TestChunkRangePartitionBitIdentical(t *testing.T) {
	const trials, seed = 1000, 42
	want, wantRep, err := EstimateReachProbParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, 2, trials,
		Options[flipState]{}, ParallelOptions{Workers: 4, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}

	numChunks := NumChunks(trials) // 1000 trials / 64 = 16 chunks
	if numChunks != 16 {
		t.Fatalf("NumChunks(%d) = %d, want 16", trials, numChunks)
	}
	// An uneven partition with different worker counts per fragment.
	cuts := [][2]int{{0, 3}, {3, 4}, {4, 11}, {11, 16}}
	assembled := runRange(t, seed, trials, 1, 0, 0) // empty range: identity template
	if len(assembled.Chunks) != 0 || assembled.Trials != trials {
		t.Fatalf("template checkpoint = %d chunks / %d trials, want 0 / %d", len(assembled.Chunks), assembled.Trials, trials)
	}
	for i, c := range cuts {
		frag := runRange(t, seed, trials, 1+i, c[0], c[1])
		if len(frag.Chunks) != c[1]-c[0] {
			t.Fatalf("fragment [%d,%d) has %d chunks, want %d", c[0], c[1], len(frag.Chunks), c[1]-c[0])
		}
		for _, cr := range frag.Chunks {
			if cr.Index < c[0] || cr.Index >= c[1] {
				t.Fatalf("fragment [%d,%d) contains out-of-range chunk %d", c[0], c[1], cr.Index)
			}
		}
		assembled.Chunks = append(assembled.Chunks, frag.Chunks...)
		assembled.Panics = append(assembled.Panics, frag.Panics...)
	}
	if !assembled.Complete() {
		t.Fatal("assembled checkpoint not complete")
	}

	got, gotRep, err := EstimateReachProbParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, 2, trials,
		Options[flipState]{}, ParallelOptions{Workers: 2, Seed: seed, Resume: assembled})
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Errorf("assembled estimate %s != full-run estimate %s", got.String(), want.String())
	}
	if gotRep.Resumed != trials {
		t.Errorf("assembled run re-ran trials: resumed %d, want %d", gotRep.Resumed, trials)
	}
	if gotRep.Completed != wantRep.Completed {
		t.Errorf("completed %d != %d", gotRep.Completed, wantRep.Completed)
	}
}

// TestChunkRangeReportCountsRangeOnly: a range-restricted run's report
// speaks in range trials, not the whole budget.
func TestChunkRangeReportCountsRangeOnly(t *testing.T) {
	const trials, seed = 1000, 7
	_, rep, err := EstimateReachProbParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, 2, trials,
		Options[flipState]{}, ParallelOptions{Workers: 2, Seed: seed, Chunks: &ChunkRange{Lo: 2, Hi: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 * 64; rep.Total != want || rep.Completed != want {
		t.Errorf("range report = %d/%d trials, want %d/%d", rep.Completed, rep.Total, want, want)
	}
	// The ragged last chunk counts its true length.
	_, rep, err = EstimateReachProbParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, 2, trials,
		Options[flipState]{}, ParallelOptions{Workers: 2, Seed: seed, Chunks: &ChunkRange{Lo: 15, Hi: 16}})
	if err != nil {
		t.Fatal(err)
	}
	if want := 1000 - 15*64; rep.Total != want || rep.Completed != want {
		t.Errorf("ragged-chunk report = %d/%d trials, want %d/%d", rep.Completed, rep.Total, want, want)
	}
}

// TestChunkRangeValidation: malformed ranges are refused up front.
func TestChunkRangeValidation(t *testing.T) {
	const trials = 1000 // 16 chunks
	for _, cr := range []ChunkRange{{Lo: -1, Hi: 4}, {Lo: 0, Hi: 17}, {Lo: 9, Hi: 3}} {
		_, _, err := EstimateReachProbParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, 2, trials,
			Options[flipState]{}, ParallelOptions{Seed: 1, Chunks: &cr})
		if !errors.Is(err, ErrInvalidArgument) {
			t.Errorf("range [%d,%d): err = %v, want ErrInvalidArgument", cr.Lo, cr.Hi, err)
		}
	}
}

// TestChunkRangeTimeEstimator: the seam works for the time-to-target
// wrapper too (different accumulator kind).
func TestChunkRangeTimeEstimator(t *testing.T) {
	const trials, seed = 500, 3
	want, _, err := EstimateTimeToTargetParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, trials,
		Options[flipState]{}, ParallelOptions{Workers: 3, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	numChunks := NumChunks(trials)
	mid := numChunks / 2
	assemble := func(ranges [][2]int) *Checkpoint {
		var cp *Checkpoint
		for _, r := range ranges {
			_, rep, err := EstimateTimeToTargetParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, trials,
				Options[flipState]{}, ParallelOptions{Workers: 2, Seed: seed, Chunks: &ChunkRange{Lo: r[0], Hi: r[1]}})
			if err != nil {
				t.Fatal(err)
			}
			if cp == nil {
				cp = rep.Checkpoint
			} else {
				cp.Chunks = append(cp.Chunks, rep.Checkpoint.Chunks...)
				cp.Panics = append(cp.Panics, rep.Checkpoint.Panics...)
			}
		}
		return cp
	}
	cp := assemble([][2]int{{mid, numChunks}, {0, mid}}) // out-of-order assembly on purpose
	got, _, err := EstimateTimeToTargetParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, trials,
		Options[flipState]{}, ParallelOptions{Workers: 1, Seed: seed, Resume: cp})
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Errorf("assembled time estimate %s != full-run %s", got.String(), want.String())
	}
}
