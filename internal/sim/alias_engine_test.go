package sim

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/pa"
	"repro/internal/prob"
	"repro/internal/sched"
)

// skewFlip is flipper with a 3/4–1/4 coin, heavy side first: the support
// order where the alias table partitions [0, 1) differently from the
// cumulative scan (draws in [1/2, 3/4) map to different outcomes). It is
// the sentinel that Options.BitCompat does real work — the case studies'
// fair coins and point distributions coincidentally sample identically
// under both samplers, so a test on those models cannot tell them apart.
type skewFlip struct{}

func (skewFlip) Name() string       { return "skew-flipper" }
func (skewFlip) NumProcs() int      { return 1 }
func (skewFlip) Start() []flipState { return []flipState{{}} }

func (skewFlip) Moves(s flipState, i int) []pa.Step[flipState] {
	if s.Heads {
		return nil
	}
	return []pa.Step[flipState]{{
		Action: "flip",
		Next: prob.MustDist(
			prob.Outcome[flipState]{Value: flipState{Heads: false, Flips: s.Flips + 1}, Prob: prob.NewRat(3, 4)},
			prob.Outcome[flipState]{Value: flipState{Heads: true, Flips: s.Flips + 1}, Prob: prob.NewRat(1, 4)},
		),
	}}
}

func (skewFlip) UserMoves(flipState, int) []pa.Step[flipState] { return nil }

var _ sched.Model[flipState] = skewFlip{}

// TestBitCompatRestoresIdentity pins the sampler contract on the one
// distribution shape where it is observable: the compiled default (alias
// tables) must diverge from the uncompiled run for some seeds — proving
// the test can tell the samplers apart — while Options.BitCompat must
// restore exact equality on every seed.
func TestBitCompatRestoresIdentity(t *testing.T) {
	cm := Compile[flipState](skewFlip{})
	diverged := false
	for seed := int64(0); seed < 200; seed++ {
		want, err1 := RunOnce[flipState](skewFlip{}, Slowest[flipState](), heads, Options[flipState]{}, rand.New(rand.NewSource(seed)))
		alias, err2 := RunOnce[flipState](cm, Slowest[flipState](), heads, Options[flipState]{}, rand.New(rand.NewSource(seed)))
		bc, err3 := RunOnce[flipState](cm, Slowest[flipState](), heads, Options[flipState]{BitCompat: true}, rand.New(rand.NewSource(seed)))
		if err1 != nil || err2 != nil || err3 != nil {
			t.Fatalf("seed=%d: errs %v / %v / %v", seed, err1, err2, err3)
		}
		if !reflect.DeepEqual(bc, want) {
			t.Fatalf("seed=%d: BitCompat result %+v != uncompiled %+v", seed, bc, want)
		}
		if !reflect.DeepEqual(alias, want) {
			diverged = true
		}
	}
	if !diverged {
		t.Error("alias sampler never diverged from the scan on the skewed coin; BitCompat has nothing to restore and this test lost its teeth")
	}
}

// TestBitCompatParallelMatchesUncompiled: under BitCompat the parallel
// compiled engine reproduces the NoCompile run exactly, for any worker
// count, even on the alias-divergent coin.
func TestBitCompatParallelMatchesUncompiled(t *testing.T) {
	const trials = 400
	for _, workers := range []int{1, 4} {
		base := ParallelOptions{Seed: 11, Workers: workers}
		noc := base
		noc.NoCompile = true
		bc, repB, err1 := EstimateReachProbParallel[flipState](context.Background(), skewFlip{}, mkSlowest, heads,
			8, trials, Options[flipState]{BitCompat: true}, base)
		ref, repR, err2 := EstimateReachProbParallel[flipState](context.Background(), skewFlip{}, mkSlowest, heads,
			8, trials, Options[flipState]{}, noc)
		if err1 != nil || err2 != nil {
			t.Fatalf("workers=%d: errs %v / %v", workers, err1, err2)
		}
		if bc != ref {
			t.Errorf("workers=%d: BitCompat compiled %+v != uncompiled %+v", workers, bc, ref)
		}
		if repB.Completed != repR.Completed {
			t.Errorf("workers=%d: completed %d != %d", workers, repB.Completed, repR.Completed)
		}
	}
}

// TestArenaBitIdentical: reusing one scratch and RNG per worker (the
// default) must be invisible in the results — NoArena runs produce the
// same estimate and report for every worker count.
func TestArenaBitIdentical(t *testing.T) {
	const trials = 600
	for _, workers := range []int{1, 4} {
		def := ParallelOptions{Seed: 5, Workers: workers}
		noar := def
		noar.NoArena = true
		got, repG, err1 := EstimateTimeToTargetParallel[flipState](context.Background(), flipper{}, mkSlowest, heads,
			trials, Options[flipState]{}, def)
		want, repW, err2 := EstimateTimeToTargetParallel[flipState](context.Background(), flipper{}, mkSlowest, heads,
			trials, Options[flipState]{}, noar)
		if err1 != nil || err2 != nil {
			t.Fatalf("workers=%d: errs %v / %v", workers, err1, err2)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: arena summary %v != no-arena %v", workers, got, want)
		}
		if repG.Completed != repW.Completed {
			t.Errorf("workers=%d: completed %d != %d", workers, repG.Completed, repW.Completed)
		}
	}
}

// TestTrialLoopZeroAlloc is the arena claim as an assertion: with a warm
// compiled cache, a shared policy and a reused scratch + RNG — exactly
// what each RunParallel worker holds — the steady-state trial loop
// allocates nothing.
func TestTrialLoopZeroAlloc(t *testing.T) {
	cm := Compile[flipState](flipper{})
	sc := newViewScratch[flipState](cm)
	rng := rand.New(rand.NewSource(0))
	pol := Slowest[flipState]()
	opts := Options[flipState]{}.withDefaults()
	var res Result[flipState]
	run := func() {
		rng.Seed(trialSeed(1, 0))
		if err := runTrial(sc, pol, heads, opts, rng, &res); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the compiled cache outside the measurement
	if avg := testing.AllocsPerRun(200, run); avg != 0 {
		t.Errorf("steady-state trial loop allocates %.2f allocs/op, want 0", avg)
	}
}

// TestPackedInterningSharedCache: a model with a sched.Packer is interned
// by packed key; the cache warms once and serves identical results, and
// the count matches the unpacked cache for the same run.
func TestPackedInterningZeroStateGrowth(t *testing.T) {
	cm := Compile[flipState](packedFlip{}).(*Compiled[flipState])
	if cm.packer == nil {
		t.Fatal("packer not detected on a sched.Packer model")
	}
	first, _, err := EstimateReachProbParallel[flipState](context.Background(), cm, mkSlowest, heads, 5, 400,
		Options[flipState]{}, ParallelOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	warm := cm.count.Load()
	if warm == 0 {
		t.Fatal("no states interned after a full run")
	}
	second, _, err := EstimateReachProbParallel[flipState](context.Background(), cm, mkSlowest, heads, 5, 400,
		Options[flipState]{}, ParallelOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cm.count.Load() != warm {
		t.Errorf("second identical run grew the packed cache: %d -> %d states", warm, cm.count.Load())
	}
	if first != second {
		t.Errorf("warm packed cache run %+v != cold run %+v", second, first)
	}

	// And the packed cache answers the same runs as the struct-keyed one.
	plain, _, err := EstimateReachProbParallel[flipState](context.Background(), flipper{}, mkSlowest, heads, 5, 400,
		Options[flipState]{}, ParallelOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if first != plain {
		t.Errorf("packed-interned run %+v != struct-interned %+v", first, plain)
	}
}

// packedFlip is flipper plus a sched.Packer implementation, so the sim
// package can exercise the packed interning path without importing a
// case-study model (which would cycle: the models' policies import sim).
type packedFlip struct{ flipper }

func (packedFlip) PackState(s flipState) sched.Packed {
	var p sched.Packed
	if s.Heads {
		p[0] = 1
	}
	p[1] = uint64(s.Flips)
	return p
}

var _ sched.Packer[flipState] = packedFlip{}
