package sim

// Durable artifact storage for checkpoint sets.
//
// The resilience layer (checkpoint/resume) is only as good as the bytes
// it finds on disk after a crash. This file hardens the on-disk side:
//
//   - every state file is a versioned envelope carrying a CRC32C
//     (Castagnoli) checksum of its payload, so truncation, torn writes
//     and bit flips are detected on load rather than parsed into a wrong
//     resume state;
//   - saves keep the last Keep generations (path, path.g1, path.g2, ...)
//     and loads fall back to the newest generation that validates,
//     reporting corrupt ones with a typed error;
//   - saves are atomic AND durable: the temp file is fsynced before the
//     rename and the directory is fsynced after it;
//   - transient write faults are retried with exponential backoff and
//     full jitter, surfaced through ArtifactMetrics.
//
// All I/O goes through fault.FS, so the chaos suite can storm this exact
// code path with seeded torn writes, rename failures and dropped fsyncs.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/fault"
)

// artifactVersion is the on-disk envelope format version. Version 1 was
// the bare CheckpointSet JSON (no checksum); it is still readable.
const artifactVersion = 2

// maxGenerations bounds the fallback scan: Load inspects at most this
// many generations even when rotation failures have pushed valid state
// deeper than Keep.
const maxGenerations = 32

// artifactEnvelope is the on-disk frame of a version-2 artifact.
type artifactEnvelope struct {
	Version int             `json:"artifact_version"`
	CRC     string          `json:"crc32c"`
	Payload json.RawMessage `json:"payload"`
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// crcHex computes the CRC32C of data, formatted as 8 hex digits.
func crcHex(data []byte) string {
	return fmt.Sprintf("%08x", crc32.Checksum(data, castagnoli))
}

// ArtifactMetrics is the observability hook of the artifact layer. It is
// matched structurally (any type with these methods works) so internal/sim
// keeps its no-import relationship with internal/obs.
type ArtifactMetrics interface {
	// ArtifactRetried records one retried artifact write.
	ArtifactRetried()
	// ArtifactFallback records a load that fell back to an older
	// generation (1 = first backup, and so on).
	ArtifactFallback(generation int)
	// ArtifactCorrupt records one artifact file that failed validation.
	ArtifactCorrupt()
}

// ArtifactStore saves and loads checkpoint sets durably. The zero value
// is ready to use: real filesystem, 3 generations, default retry policy,
// no metrics.
type ArtifactStore struct {
	// FS is the filesystem seam; nil means the real filesystem.
	FS fault.FS
	// Keep is how many generations to retain (current + Keep-1 backups);
	// values below 1 mean 3.
	Keep int
	// Retry paces retries of transient write faults; zero value means
	// fault.RetryPolicy defaults (4 attempts, 5ms base, 250ms cap).
	Retry fault.RetryPolicy
	// Metrics, when non-nil, observes retries, fallbacks and corrupt
	// artifacts.
	Metrics ArtifactMetrics
}

func (s *ArtifactStore) fs() fault.FS {
	if s.FS != nil {
		return s.FS
	}
	return fault.OS
}

func (s *ArtifactStore) keep() int {
	if s.Keep < 1 {
		return 3
	}
	return s.Keep
}

// genPath names generation g of an artifact: the artifact path itself for
// g=0, path.g1, path.g2, ... for backups.
func genPath(path string, g int) string {
	if g == 0 {
		return path
	}
	return fmt.Sprintf("%s.g%d", path, g)
}

// LoadInfo describes where a Load found its data.
type LoadInfo struct {
	// Path is the file actually loaded; empty when no generation existed
	// and the set started fresh.
	Path string
	// Generation is the generation loaded (0 = current, 1 = first
	// backup, ...); -1 when starting fresh.
	Generation int
	// Corrupt lists generation files that existed but failed validation,
	// newest first.
	Corrupt []string
}

// EncodeEnvelope frames an arbitrary JSON payload in the artifact
// layer's version-2 checksummed envelope: the exact format checkpoint
// state files use at rest, reused by the trial fabric to CRC-protect
// results in flight. The payload is compacted first so the bytes the
// checksum covers are canonical.
func EncodeEnvelope(payload []byte) ([]byte, error) {
	var compact bytes.Buffer
	if err := json.Compact(&compact, payload); err != nil {
		return nil, fmt.Errorf("sim: envelope payload is not valid JSON: %w", err)
	}
	env := artifactEnvelope{Version: artifactVersion, CRC: crcHex(compact.Bytes()), Payload: compact.Bytes()}
	data, err := json.Marshal(env)
	if err != nil {
		return nil, fmt.Errorf("sim: marshaling artifact envelope: %w", err)
	}
	return data, nil
}

// DecodeEnvelope verifies a version-2 envelope and returns its payload
// bytes (compacted, exactly what the checksum covered). Truncation, bit
// flips, version skew and malformed frames all surface as errors
// wrapping fault.ErrCorruptArtifact — never as a wrong payload.
func DecodeEnvelope(data []byte) ([]byte, error) {
	var env artifactEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("sim: envelope frame: %v: %w", err, fault.ErrCorruptArtifact)
	}
	if env.Version != artifactVersion {
		return nil, fmt.Errorf("sim: envelope version %d, want %d: %w", env.Version, artifactVersion, fault.ErrCorruptArtifact)
	}
	// Re-indented files still validate: the checksum is defined over the
	// compact form.
	var compact bytes.Buffer
	if err := json.Compact(&compact, env.Payload); err != nil {
		return nil, fmt.Errorf("sim: envelope payload: %v: %w", err, fault.ErrCorruptArtifact)
	}
	if got := crcHex(compact.Bytes()); got != env.CRC {
		return nil, fmt.Errorf("sim: envelope checksum mismatch: frame says %s, payload hashes to %s: %w",
			env.CRC, got, fault.ErrCorruptArtifact)
	}
	return compact.Bytes(), nil
}

// encode frames the set in a checksummed envelope.
func (s *ArtifactStore) encode(cs CheckpointSet) ([]byte, error) {
	for _, cp := range cs {
		cp.sortRecords()
	}
	payload, err := json.Marshal(cs)
	if err != nil {
		return nil, fmt.Errorf("sim: marshaling checkpoint set: %w", err)
	}
	return EncodeEnvelope(payload)
}

// decode parses one artifact file: version-2 checksummed envelopes and
// legacy version-1 bare JSON. Every validation failure wraps
// fault.ErrCorruptArtifact.
func decodeArtifact(path string, data []byte) (CheckpointSet, error) {
	var env artifactEnvelope
	envErr := json.Unmarshal(data, &env)
	if envErr == nil && env.Version != 0 {
		payload, err := DecodeEnvelope(data)
		if err != nil {
			return nil, fmt.Errorf("sim: %s: %w", path, err)
		}
		var cs CheckpointSet
		if err := json.Unmarshal(payload, &cs); err != nil {
			return nil, fmt.Errorf("sim: %s: artifact payload: %v: %w", path, err, fault.ErrCorruptArtifact)
		}
		if cs == nil {
			cs = CheckpointSet{}
		}
		return cs, nil
	}
	// Legacy version 1: a bare CheckpointSet document, no checksum.
	var cs CheckpointSet
	if err := json.Unmarshal(data, &cs); err != nil {
		return nil, fmt.Errorf("sim: %s: %v: %w", path, err, fault.ErrCorruptArtifact)
	}
	if cs == nil {
		cs = CheckpointSet{}
	}
	return cs, nil
}

// retryPolicy is s.Retry with the metrics hook chained onto OnRetry.
func (s *ArtifactStore) retryPolicy() fault.RetryPolicy {
	retry := s.Retry
	prev := retry.OnRetry
	retry.OnRetry = func(attempt int, err error) {
		if s.Metrics != nil {
			s.Metrics.ArtifactRetried()
		}
		if prev != nil {
			prev(attempt, err)
		}
	}
	return retry
}

// Load reads the newest valid generation of the artifact at path. Corrupt
// or unreadable generations are skipped (and reported in LoadInfo and via
// metrics); if no generation exists at all, it returns an empty set so a
// first run starts fresh. When every existing generation is corrupt, the
// error wraps fault.ErrCorruptArtifact. Transient read faults are retried
// under s.Retry before a generation is given up on.
func (s *ArtifactStore) Load(path string) (CheckpointSet, LoadInfo, error) {
	fs := s.fs()
	retry := s.retryPolicy()
	// A missing generation is definitive, not transient: surface it
	// without burning the retry budget.
	retry.Retryable = func(err error) bool { return !errors.Is(err, os.ErrNotExist) }
	info := LoadInfo{Generation: -1}
	found := 0
	var lastErr error
	for g := 0; g < maxGenerations; g++ {
		p := genPath(path, g)
		var data []byte
		err := retry.Do(func() error {
			var rerr error
			data, rerr = fs.ReadFile(p)
			return rerr
		})
		if errors.Is(err, os.ErrNotExist) {
			continue
		}
		found++
		if err == nil {
			var cs CheckpointSet
			cs, err = decodeArtifact(p, data)
			if err == nil {
				if g > 0 && s.Metrics != nil {
					s.Metrics.ArtifactFallback(g)
				}
				info.Path, info.Generation = p, g
				return cs, info, nil
			}
		} else {
			err = fmt.Errorf("sim: reading checkpoint file %s: %w", p, err)
		}
		if s.Metrics != nil {
			s.Metrics.ArtifactCorrupt()
		}
		info.Corrupt = append(info.Corrupt, p)
		lastErr = err
	}
	if found == 0 {
		return CheckpointSet{}, info, nil
	}
	return nil, info, fmt.Errorf("sim: no valid checkpoint generation at %s (%d candidates rejected, last: %w)",
		path, found, lastErr)
}

// Save writes the set as the current generation of the artifact at path,
// rotating existing generations up (path -> path.g1 -> path.g2, oldest
// dropped). The write is atomic and durable — temp file, write, fsync,
// rotate, rename, directory fsync — and transient faults anywhere in that
// sequence are retried under s.Retry. Rotation renames are individually
// best-effort (a missing generation is skipped), so a fault mid-rotation
// leaves at worst a gap that Load's generation scan tolerates.
func (s *ArtifactStore) Save(path string, cs CheckpointSet) error {
	data, err := s.encode(cs)
	if err != nil {
		return err
	}
	fs := s.fs()
	dir := filepath.Dir(path)
	base := filepath.Base(path)

	err = s.retryPolicy().Do(func() error {
		tmp, err := fs.CreateTemp(dir, base+".tmp*")
		if err != nil {
			return err
		}
		if _, err := tmp.Write(data); err != nil {
			tmp.Close()
			fs.Remove(tmp.Name())
			return err
		}
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			fs.Remove(tmp.Name())
			return err
		}
		if err := tmp.Close(); err != nil {
			fs.Remove(tmp.Name())
			return err
		}
		// Rotate backups oldest-first so each generation moves up one
		// slot before the slot below overwrites it.
		for g := s.keep() - 2; g >= 1; g-- {
			if err := fs.Rename(genPath(path, g), genPath(path, g+1)); err != nil && !errors.Is(err, os.ErrNotExist) {
				fs.Remove(tmp.Name())
				return err
			}
		}
		if s.keep() > 1 {
			if err := fs.Rename(path, genPath(path, 1)); err != nil && !errors.Is(err, os.ErrNotExist) {
				fs.Remove(tmp.Name())
				return err
			}
		}
		if err := fs.Rename(tmp.Name(), path); err != nil {
			fs.Remove(tmp.Name())
			return err
		}
		return fs.SyncDir(dir)
	})
	if err != nil {
		return fmt.Errorf("sim: writing checkpoint file: %w", err)
	}
	return nil
}

// Generations lists the generation files of the artifact at path that
// currently exist on disk, newest first.
func (s *ArtifactStore) Generations(path string) []string {
	fs := s.fs()
	var out []string
	for g := 0; g < maxGenerations; g++ {
		p := genPath(path, g)
		if _, err := fs.ReadFile(p); err == nil {
			out = append(out, p)
		}
	}
	return out
}

// describeCorrupt renders LoadInfo's corrupt list for operator messages.
func (i LoadInfo) describeCorrupt() string {
	return strings.Join(i.Corrupt, ", ")
}
