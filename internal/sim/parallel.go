package sim

// This file is the parallel counterpart of the sequential Estimate*
// entry points: it shards a Monte Carlo trial budget across a bounded
// worker pool while keeping seeded runs bit-identical for every worker
// count.
//
// Three design rules make that work:
//
//  1. Per-trial RNG. Trial i draws its coins from its own rand.Rand
//     seeded by a SplitMix64 mix of (Seed, i), so the random stream a
//     trial sees depends only on the root seed and the trial index —
//     never on which worker ran it or in what order.
//
//  2. Fixed chunking. Trials are grouped into fixed-size chunks
//     (parallelChunkSize, independent of Workers). Each chunk owns a
//     private accumulator that exactly one worker touches — no locks or
//     atomics on the hot path — and chunk accumulators are merged in
//     chunk order after the pool drains. Floating-point merge order is
//     therefore a function of the trial budget alone, so Summary moments
//     are bit-identical across worker counts.
//
//  3. First-error-wins cancellation. A failing trial (ErrPolicyDeserted,
//     ErrBadChoice, or an estimator-level failure) flips a stop flag that
//     the pool polls between trials; remaining work is abandoned promptly
//     and the error of the lowest-numbered failing chunk is returned,
//     wrapped with its trial index exactly like the sequential paths.

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/sched"
	"repro/internal/stats"
)

// ParallelOptions configures the worker pool of the parallel estimators.
type ParallelOptions struct {
	// Workers bounds the number of concurrent trial-running goroutines;
	// <= 0 means GOMAXPROCS. Results are independent of Workers: only
	// wall-clock time changes.
	Workers int
	// Seed is the root seed from which every trial's private RNG is
	// derived. Two runs with equal Seed, trial budget and model are
	// bit-identical, whatever the worker count.
	Seed int64
}

func (o ParallelOptions) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// parallelChunkSize is the number of consecutive trials that share one
// accumulator. It is a fixed constant — not a function of Workers — so
// the merge tree, and with it every floating-point rounding decision,
// is identical however many workers run the chunks. 64 trials is coarse
// enough to amortize chunk-claim overhead and fine enough to load-balance
// uneven trial costs.
const parallelChunkSize = 64

// trialSeed derives the private RNG seed of one trial from the root seed
// with a SplitMix64-style finalizer, so neighbouring trial indices get
// statistically independent streams (a raw seed+i would hand correlated
// states to math/rand's LFSR source).
func trialSeed(seed int64, trial int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(uint64(trial)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// RunParallel executes trials independent runs of the model under fresh
// policies from mk, sharded across a worker pool, and folds each Result
// into a per-chunk accumulator of type A via observe; chunk accumulators
// are merged in chunk order with merge and the total returned.
//
// observe is called from worker goroutines, but always on the private
// accumulator of the chunk being run — implementations need no locking as
// long as they only touch acc. mk must be safe for concurrent use; each
// policy it returns is used by exactly one trial. An error from a trial or
// from observe cancels the remaining work (first error wins) and is
// returned wrapped with its trial index, preserving errors.Is on
// ErrPolicyDeserted / ErrBadChoice.
func RunParallel[S comparable, A any](m sched.Model[S], mk func() Policy[S], target func(S) bool,
	trials int, opts Options[S], popts ParallelOptions,
	observe func(acc *A, trial int, res Result[S]) error,
	merge func(dst *A, src A)) (A, error) {

	var total A
	if trials <= 0 {
		return total, fmt.Errorf("sim: trial budget %d is not positive", trials)
	}
	numChunks := (trials + parallelChunkSize - 1) / parallelChunkSize
	accs := make([]A, numChunks)
	errs := make([]error, numChunks)

	var (
		nextChunk atomic.Int64
		stop      atomic.Bool
		wg        sync.WaitGroup
	)
	workers := min(popts.workers(), numChunks)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				chunk := int(nextChunk.Add(1)) - 1
				if chunk >= numChunks {
					return
				}
				lo := chunk * parallelChunkSize
				hi := min(lo+parallelChunkSize, trials)
				for i := lo; i < hi; i++ {
					if stop.Load() {
						return
					}
					rng := rand.New(rand.NewSource(trialSeed(popts.Seed, i)))
					res, err := RunOnce(m, mk(), target, opts, rng)
					if err == nil {
						err = observe(&accs[chunk], i, res)
					}
					if err != nil {
						errs[chunk] = fmt.Errorf("sim: trial %d: %w", i, err)
						stop.Store(true)
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	// Deterministic error selection: among the chunks that failed, report
	// the lowest-numbered one — under Workers: 1 this is exactly the first
	// failing trial, and under any worker count it is a stable choice.
	for _, err := range errs {
		if err != nil {
			return total, err
		}
	}
	for chunk := range accs {
		merge(&total, accs[chunk])
	}
	return total, nil
}

// EstimateReachProbParallel is the parallel counterpart of
// EstimateReachProb: it estimates the probability that the target is
// reached within the given time, sharding trials across popts.Workers.
// Seeded results are bit-identical for every worker count; they differ
// from the sequential path, which threads one RNG through all trials.
func EstimateReachProbParallel[S comparable](m sched.Model[S], mk func() Policy[S], target func(S) bool,
	within float64, trials int, opts Options[S], popts ParallelOptions) (stats.Proportion, error) {
	return RunParallel(m, mk, target, trials, opts, popts,
		func(acc *stats.Proportion, _ int, res Result[S]) error {
			acc.Observe(res.Reached && res.ReachedAt <= within)
			return nil
		},
		func(dst *stats.Proportion, src stats.Proportion) { dst.Merge(src) })
}

// EstimateTimeToTargetParallel is the parallel counterpart of
// EstimateTimeToTarget: it summarizes the time to reach the target over
// trials independent runs; a run that never reaches it is an error, which
// cancels the remaining trials (use a generous Options.MaxTime for
// almost-sure targets).
func EstimateTimeToTargetParallel[S comparable](m sched.Model[S], mk func() Policy[S], target func(S) bool,
	trials int, opts Options[S], popts ParallelOptions) (stats.Summary, error) {
	return RunParallel(m, mk, target, trials, opts, popts,
		func(acc *stats.Summary, trial int, res Result[S]) error {
			if !res.Reached {
				return fmt.Errorf("run did not reach the target within budget (events=%d, state=%v)",
					res.Events, res.Final)
			}
			acc.Observe(res.ReachedAt)
			return nil
		},
		func(dst *stats.Summary, src stats.Summary) { dst.Merge(src) })
}

// EstimateCurveParallel is the parallel counterpart of EstimateCurve: one
// sharded batch of runs yields the empirical reach probability for every
// requested deadline at once. Deadlines are sorted; when opts.MaxTime is
// unset the run budget is max(deadlines)+1, as in the sequential path.
func EstimateCurveParallel[S comparable](m sched.Model[S], mk func() Policy[S], target func(S) bool,
	deadlines []float64, trials int, opts Options[S], popts ParallelOptions) (EmpiricalCurve, error) {
	ds, err := curveDeadlines(deadlines)
	if err != nil {
		return EmpiricalCurve{}, err
	}
	if opts.MaxTime <= 0 {
		opts.MaxTime = ds[len(ds)-1] + 1
	}
	at, err := RunParallel(m, mk, target, trials, opts, popts,
		func(acc *[]stats.Proportion, _ int, res Result[S]) error {
			if *acc == nil {
				*acc = make([]stats.Proportion, len(ds))
			}
			for i, d := range ds {
				(*acc)[i].Observe(res.Reached && res.ReachedAt <= d)
			}
			return nil
		},
		func(dst *[]stats.Proportion, src []stats.Proportion) {
			if *dst == nil {
				*dst = make([]stats.Proportion, len(ds))
			}
			for i := range src {
				(*dst)[i].Merge(src[i])
			}
		})
	if err != nil {
		return EmpiricalCurve{Deadlines: ds}, err
	}
	return EmpiricalCurve{Deadlines: ds, At: at}, nil
}
