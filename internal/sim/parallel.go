package sim

// This file is the parallel counterpart of the sequential Estimate*
// entry points: it shards a Monte Carlo trial budget across a bounded
// worker pool while keeping seeded runs bit-identical for every worker
// count.
//
// Three design rules make that work:
//
//  1. Per-trial RNG. Trial i draws its coins from its own rand.Rand
//     seeded by a SplitMix64 mix of (Seed, i), so the random stream a
//     trial sees depends only on the root seed and the trial index —
//     never on which worker ran it or in what order.
//
//  2. Fixed chunking. Trials are grouped into fixed-size chunks
//     (parallelChunkSize, independent of Workers). Each chunk owns a
//     private accumulator that exactly one worker touches — no locks or
//     atomics on the hot path — and chunk accumulators are merged in
//     chunk order after the pool drains. Floating-point merge order is
//     therefore a function of the trial budget alone, so Summary moments
//     are bit-identical across worker counts.
//
//  3. First-error-wins cancellation. A failing trial (ErrPolicyDeserted,
//     ErrBadChoice, or an estimator-level failure) flips a stop flag that
//     the pool polls between trials; remaining work is abandoned promptly
//     and the error of the lowest-numbered failing chunk is returned,
//     wrapped with its trial index exactly like the sequential paths.
//
// On top of that sits the resilient run controller:
//
//   - Cancellation. Every entry point takes a context. When it is
//     cancelled (deadline, SIGINT, ...), workers stop claiming chunks but
//     drain the chunks they are on, so every started-and-finished chunk
//     is preserved; the run returns the merged partial estimate, a
//     RunReport with the trial count actually folded in, a resume token,
//     and ErrInterrupted.
//
//   - Panic quarantine. A trial that panics (in the policy, the model,
//     the target or observe) is recovered into a TrialPanicError naming
//     the trial index and its private RNG seed — a one-line repro — and
//     up to ParallelOptions.MaxPanics such trials are quarantined
//     (recorded, excluded from the estimate) before the run aborts.
//
//   - Telemetry. ParallelOptions.Metrics, when set, observes every trial
//     (step count, wall-time, outcome), chunk claim/commit, quarantine and
//     checkpoint save — the feed behind live progress reporting and run
//     manifests (internal/obs). The hook is observation-only and free when
//     unset: one nil check per trial, zero extra allocations.
//
//   - Checkpoint/resume. Because chunks merge deterministically in
//     order, the serialized accumulators of completed chunks are a
//     sufficient resume token: ParallelOptions.CheckpointSink persists
//     them as each chunk completes, and ParallelOptions.Resume restores
//     them so only missing chunks re-run — bit-identically, since each
//     trial's coins depend only on (Seed, trial index).

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/sched"
	"repro/internal/stats"
)

// ErrInterrupted reports a run stopped by context cancellation before all
// trials completed. The accompanying accumulator and RunReport still carry
// the partial estimate over every completed chunk, and the report's
// Checkpoint is the resume token.
var ErrInterrupted = errors.New("sim: run interrupted")

// ParallelOptions configures the worker pool of the parallel estimators.
type ParallelOptions struct {
	// Workers bounds the number of concurrent trial-running goroutines;
	// <= 0 means GOMAXPROCS. Results are independent of Workers: only
	// wall-clock time changes.
	Workers int
	// Seed is the root seed from which every trial's private RNG is
	// derived. Two runs with equal Seed, trial budget and model are
	// bit-identical, whatever the worker count.
	Seed int64
	// MaxPanics is the panic quarantine budget: up to MaxPanics panicking
	// trials are recorded (see RunReport.Panics) and excluded from the
	// estimate before the run aborts with the offending TrialPanicError.
	// The default 0 aborts on the first panic. Panic records restored
	// from Resume count against the budget.
	MaxPanics int
	// Resume, when non-nil, restores the completed chunks of a previous
	// (interrupted) run with the same seed, trial budget and estimator,
	// so only the missing chunks are executed. The final estimate is
	// bit-identical to an uninterrupted run. A token from a different run
	// is rejected with ErrCheckpointMismatch.
	Resume *Checkpoint
	// CheckpointSink, when non-nil, receives the growing checkpoint
	// after every completed chunk. Calls are serialized by the engine;
	// the *Checkpoint is engine-owned and valid only for the duration of
	// the call (persist it — e.g. CheckpointSet.Save — rather than
	// retaining the pointer). A sink error aborts the run.
	CheckpointSink func(*Checkpoint) error
	// Metrics, when non-nil, receives the run's telemetry: per-trial
	// step counts, wall-times and outcomes, chunk lifecycle, quarantines
	// and checkpoint saves. It observes only — the estimate is
	// bit-identical with or without it. When nil, the hot path pays one
	// nil check per trial and zero extra allocations (see Metrics). An
	// implementation that also satisfies BatchMetrics is fed whole chunks
	// at once, keeping per-trial atomics off the hot path.
	Metrics Metrics
	// NoCompile disables the compiled-model layer: by default every
	// parallel entry point wraps the model with Compile (a shared
	// transition cache plus pre-resolved samplers; a no-op for models
	// that fail the purity spot-check). An uncompiled run samples with
	// the cumulative scan, so it matches a compiled run bit-for-bit only
	// under Options.BitCompat (the default compiled sampler is the alias
	// table — same distributions, not always the same draws). The escape
	// hatch exists for debugging and perf comparison, not correctness.
	NoCompile bool
	// NoArena disables per-worker trial arenas: by default each worker
	// reuses one scratch buffer and one RNG across all its trials, which
	// makes the steady-state trial loop allocation-free. Results are
	// bit-identical either way — the RNG is reseeded per trial and the
	// scratch fully reset — so, like NoCompile, the knob exists for
	// debugging and perf ablation. Runs with TrialTimeout set do not use
	// arenas regardless: the watchdog may abandon a stalled trial whose
	// goroutine still owns the scratch, so sharing would race.
	NoArena bool
	// TrialTimeout, when positive, arms the per-trial watchdog: a trial
	// that has not returned within this wall-clock budget is abandoned
	// and quarantined as a *TrialStalledError — recorded like a panic,
	// excluded from the estimate, counted against MaxPanics. Zero
	// disables the watchdog (and its per-trial goroutine overhead).
	TrialTimeout time.Duration
	// Clock is the watchdog's time source; nil means the wall clock.
	// Tests inject a fault.FakeClock to trip the watchdog without
	// sleeping.
	Clock fault.Clock
	// SpanHooks, when non-nil, observes the chunk lifecycle for tracing
	// (internal/obs/span): a span per claimed chunk, ended at commit or
	// abandonment. Cold path by construction — one call pair per
	// 64-trial chunk, nothing per trial; nil costs one nil check per
	// chunk (BenchmarkSpanOverhead).
	SpanHooks SpanHooks
	// PprofLabels, when non-empty, is an alternating key/value list
	// applied to every worker goroutine via pprof.Do, so CPU profiles
	// segment the trial hot loop by job/lease/chunk-range without
	// per-trial cost. Odd-length lists are rejected.
	PprofLabels []string
	// Chunks, when non-nil, restricts execution to the chunk index range
	// [Chunks.Lo, Chunks.Hi) of the full trial budget — the distribution
	// seam of the trial fabric (internal/fabric). A ranged run executes
	// only its chunks, and the returned RunReport.Checkpoint carries
	// exactly those chunk records; trial seeds, chunk boundaries and
	// accumulator bits are those of the full run, so ranges executed on
	// different machines reassemble into a checkpoint bit-identical to a
	// single-process run. The RunReport's Total/Completed then count the
	// range's trials, not the full budget. An empty range (Lo == Hi) runs
	// nothing and returns the run's identity (kind, seed, chunking)
	// alone.
	Chunks *ChunkRange

	// kind identifies the estimator (and its parameters) producing the
	// accumulators, so a checkpoint cannot be resumed into a different
	// estimator. Set by the Estimate*Parallel wrappers.
	kind string
}

func (o ParallelOptions) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// parallelChunkSize is the number of consecutive trials that share one
// accumulator. It is a fixed constant — not a function of Workers — so
// the merge tree, and with it every floating-point rounding decision,
// is identical however many workers run the chunks. 64 trials is coarse
// enough to amortize chunk-claim overhead and fine enough to load-balance
// uneven trial costs. It is also the checkpoint granularity: an
// interrupted run loses at most the chunks still in flight.
const parallelChunkSize = 64

// ChunkRange is a half-open range [Lo, Hi) of chunk indices, the unit
// the trial fabric leases to remote workers (ParallelOptions.Chunks).
type ChunkRange struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// NumChunks reports how many fixed-size chunks a parallel run with the
// given trial budget has — the index space ChunkRange addresses.
func NumChunks(trials int) int {
	return (trials + parallelChunkSize - 1) / parallelChunkSize
}

// chunkLenFor is the number of trials in the given chunk of a run with
// the given budget (the final chunk is ragged).
func chunkLenFor(trials, chunk int) int {
	lo := chunk * parallelChunkSize
	return min(lo+parallelChunkSize, trials) - lo
}

// trialSeed derives the private RNG seed of one trial from the root seed
// with a SplitMix64-style finalizer, so neighbouring trial indices get
// statistically independent streams (a raw seed+i would hand correlated
// states to math/rand's LFSR source).
func trialSeed(seed int64, trial int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(uint64(trial)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// trialArena is one worker's reusable trial state: a scratch buffer and
// an RNG that every trial the worker runs reuses instead of allocating
// fresh ones — with a compiled model this makes the steady-state trial
// loop allocation-free. Reuse is invisible to results: runTrial fully
// resets the scratch, and (*rand.Rand).Seed restores exactly the state
// a fresh newTrialRNG(seed) would start with.
type trialArena[S comparable] struct {
	sc  *viewScratch[S]
	rng *rand.Rand
}

// runArenaTrial is RunOnce minus the per-trial allocations: one trial on
// a worker's arena scratch, with the same panic quarantine. Argument
// validation happened once in RunParallel; only the per-trial policy
// from mk can be newly nil here.
func runArenaTrial[S comparable](sc *viewScratch[S], p Policy[S], target func(S) bool, opts Options[S], rng *rand.Rand) (res Result[S], err error) {
	if p == nil {
		return res, fmt.Errorf("%w: nil policy", ErrInvalidArgument)
	}
	defer recoverTrialPanic(&err)
	err = runTrial(sc, p, target, opts, rng, &res)
	return res, err
}

// RunReport describes what a parallel run actually did — essential when
// the run ended early, since a partial estimate is only interpretable
// together with the trial count behind it (fewer trials mean wider
// confidence intervals, never a biased point estimate: the completed
// chunk set is independent of trial outcomes).
type RunReport struct {
	// Total is the requested trial budget.
	Total int
	// Completed is the number of trials whose observations are folded
	// into the returned accumulator (excludes quarantined trials).
	Completed int
	// Resumed is how many of the completed trials were restored from
	// ParallelOptions.Resume rather than re-run.
	Resumed int
	// Quarantined counts trials excluded from the estimate — panicking
	// trials plus trials abandoned by the watchdog; Panics has one record
	// per such trial, each naming the private RNG seed that replays the
	// crash (or the hang) in a single RunOnce (sim.ReproTrial).
	Quarantined int
	// Stalled is how many of the quarantined trials were watchdog
	// timeouts (PanicRecord.Kind == RecordStalled) rather than panics.
	Stalled int
	Panics  []PanicRecord
	// Interrupted reports that the run stopped before covering Total
	// trials; the error returned alongside matches ErrInterrupted.
	Interrupted bool
	// Checkpoint is the resume token covering every completed chunk.
	// Pass it as ParallelOptions.Resume (or persist it with
	// CheckpointSet.Save) to continue the run bit-identically.
	Checkpoint *Checkpoint
}

// String summarizes the report in one line.
func (r RunReport) String() string {
	s := fmt.Sprintf("%d/%d trials", r.Completed, r.Total)
	var notes []string
	if r.Resumed > 0 {
		notes = append(notes, fmt.Sprintf("%d restored from checkpoint", r.Resumed))
	}
	if panics := r.Quarantined - r.Stalled; panics > 0 {
		notes = append(notes, fmt.Sprintf("%d panicking trials quarantined", panics))
	}
	if r.Stalled > 0 {
		notes = append(notes, fmt.Sprintf("%d stalled trials quarantined", r.Stalled))
	}
	if r.Interrupted {
		notes = append(notes, "interrupted")
	}
	if len(notes) > 0 {
		s += " (" + strings.Join(notes, ", ") + ")"
	}
	return s
}

// runControl is the shared mutable state of the resilient controller: the
// growing checkpoint, the checkpoint sink, and the quarantine budget.
// All access is serialized by mu; workers touch it only at chunk
// completion and on panic, never on the per-trial hot path.
type runControl struct {
	mu        sync.Mutex
	cp        *Checkpoint
	sink      func(*Checkpoint) error
	metrics   Metrics // may be nil; notified after successful sink calls
	maxPanics int
	panics    int // quarantined so far (restored + this run), for the budget
}

// allowPanic consumes one unit of the quarantine budget; it reports false
// when the budget is exhausted and the run must abort.
func (rc *runControl) allowPanic() bool {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.panics >= rc.maxPanics {
		return false
	}
	rc.panics++
	return true
}

// complete commits a finished chunk to the checkpoint: the serialized
// accumulator, any panics quarantined inside the chunk, and a sink
// notification. Only complete chunks are ever recorded, so a resume can
// trust every record it restores.
func (rc *runControl) complete(chunk int, acc any, panics []PanicRecord) error {
	raw, err := json.Marshal(acc)
	if err != nil {
		return fmt.Errorf("sim: marshaling chunk %d accumulator: %w", chunk, err)
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.cp.Chunks = append(rc.cp.Chunks, ChunkRecord{Index: chunk, Acc: raw})
	rc.cp.Panics = append(rc.cp.Panics, panics...)
	if rc.sink != nil {
		if err := rc.sink(rc.cp); err != nil {
			return fmt.Errorf("sim: checkpoint sink: %w", err)
		}
		if rc.metrics != nil {
			rc.metrics.CheckpointSaved()
		}
	}
	return nil
}

// RunParallel executes trials independent runs of the model under fresh
// policies from mk, sharded across a worker pool, and folds each Result
// into a per-chunk accumulator of type A via observe; chunk accumulators
// are merged in chunk order with merge and the total returned.
//
// observe is called from worker goroutines, but always on the private
// accumulator of the chunk being run — implementations need no locking as
// long as they only touch acc. mk must be safe for concurrent use; each
// policy it returns is used by exactly one trial. An error from a trial or
// from observe cancels the remaining work (first error wins) and is
// returned wrapped with its trial index, preserving errors.Is on
// ErrPolicyDeserted / ErrBadChoice.
//
// Cancellation of ctx does not discard completed work: workers drain the
// chunks they are running, and RunParallel returns the merged partial
// accumulator, a RunReport carrying the completed-trial count and a
// resume token, and an error matching ErrInterrupted. A panicking trial
// becomes a *TrialPanicError, quarantined under popts.MaxPanics.
// Checkpointing requires A to round-trip through encoding/json (the
// built-in estimator accumulators all do).
//
// The returned RunReport is meaningful on every path, including errors.
func RunParallel[S comparable, A any](ctx context.Context, m sched.Model[S], mk func() Policy[S], target func(S) bool,
	trials int, opts Options[S], popts ParallelOptions,
	observe func(acc *A, trial int, res Result[S]) error,
	merge func(dst *A, src A)) (A, RunReport, error) {

	var total A
	rep := RunReport{Total: trials}
	if err := validateEstimate(m, mk, target, trials); err != nil {
		return total, rep, err
	}
	if observe == nil {
		return total, rep, fmt.Errorf("%w: nil observe func", ErrInvalidArgument)
	}
	if merge == nil {
		return total, rep, fmt.Errorf("%w: nil merge func", ErrInvalidArgument)
	}
	if popts.MaxPanics < 0 {
		return total, rep, fmt.Errorf("%w: negative quarantine budget %d", ErrInvalidArgument, popts.MaxPanics)
	}
	if len(popts.PprofLabels)%2 != 0 {
		return total, rep, fmt.Errorf("%w: PprofLabels must alternate key,value (got %d entries)", ErrInvalidArgument, len(popts.PprofLabels))
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if !popts.NoCompile {
		// Share one transition cache across all workers. Compile is
		// idempotent, so pre-compiled models (the CLIs and benchmarks
		// reuse one across calls to stay warm) pass straight through.
		m = Compile(m)
	}

	numChunks := NumChunks(trials)
	// The executed range defaults to every chunk; a fabric worker narrows
	// it to its lease. All bookkeeping below (claim loop, coverage check,
	// merge) runs over [loChunk, hiChunk) only.
	loChunk, hiChunk := 0, numChunks
	if popts.Chunks != nil {
		loChunk, hiChunk = popts.Chunks.Lo, popts.Chunks.Hi
		if loChunk < 0 || hiChunk > numChunks || loChunk > hiChunk {
			return total, rep, fmt.Errorf("%w: chunk range [%d, %d) outside [0, %d]", ErrInvalidArgument, loChunk, hiChunk, numChunks)
		}
	}
	rangeTrials := 0
	for c := loChunk; c < hiChunk; c++ {
		rangeTrials += chunkLenFor(trials, c)
	}
	rep.Total = rangeTrials
	accs := make([]A, numChunks)
	done := make([]bool, numChunks)
	errs := make([]error, numChunks)

	met := popts.Metrics
	rc := &runControl{
		cp: &Checkpoint{
			Version:   checkpointVersion,
			Kind:      popts.kind,
			Seed:      popts.Seed,
			Trials:    trials,
			ChunkSize: parallelChunkSize,
		},
		sink:      popts.CheckpointSink,
		metrics:   met,
		maxPanics: popts.MaxPanics,
	}
	if popts.Resume != nil {
		if err := popts.Resume.validateFor(popts.kind, popts.Seed, trials, parallelChunkSize); err != nil {
			return total, rep, err
		}
		for _, cr := range popts.Resume.Chunks {
			if err := json.Unmarshal(cr.Acc, &accs[cr.Index]); err != nil {
				return total, rep, fmt.Errorf("sim: restoring chunk %d accumulator: %w", cr.Index, err)
			}
			done[cr.Index] = true
			if cr.Index >= loChunk && cr.Index < hiChunk {
				rep.Resumed += chunkLenFor(trials, cr.Index)
			}
		}
		rc.cp.Chunks = append(rc.cp.Chunks, popts.Resume.Chunks...)
		rc.cp.Panics = append(rc.cp.Panics, popts.Resume.Panics...)
		rc.panics = len(popts.Resume.Panics)
		if met != nil && rep.Resumed > 0 {
			met.TrialsRestored(rep.Resumed)
		}
	}

	var (
		nextChunk atomic.Int64
		stop      atomic.Bool
		wg        sync.WaitGroup
	)

	// A hook that understands batches is fed whole chunks: per-trial
	// outcomes accumulate in chunk-local buffers (plain stores, no
	// atomics) and flush once at chunk commit, timed at chunk
	// granularity. Everything else still sees per-trial TrialDone calls.
	bmet, batch := met.(BatchMetrics)

	clock := popts.Clock
	if clock == nil {
		clock = fault.Wall
	}

	// Defaults are resolved once here, not per trial: the arena path
	// calls runTrial directly, which expects them applied.
	opts = opts.withDefaults()

	// runChunk executes every trial of one unclaimed chunk and commits
	// the chunk on completion. A nil return with done[chunk] still false
	// means the chunk was abandoned because another chunk failed. ar is
	// the calling worker's private arena; nil when arenas are off.
	runChunk := func(chunk int, ar *trialArena[S]) error {
		lo := chunk * parallelChunkSize
		hi := min(lo+parallelChunkSize, trials)
		var chunkPanics []PanicRecord
		var chunkCompleted int
		if popts.SpanHooks != nil {
			// One span per chunk, ended on every exit path — commit,
			// abandonment and error alike report what actually ran.
			endSpan := popts.SpanHooks.ChunkStart(chunk, hi-lo)
			defer func() { endSpan(chunkCompleted, len(chunkPanics)) }()
		}
		var (
			batchEvents [parallelChunkSize]int64
			batchReach  [parallelChunkSize]float64
			batchN      int
			batchHits   int
			chunkT0     time.Time
		)
		if batch {
			chunkT0 = time.Now()
		}
		for i := lo; i < hi; i++ {
			if stop.Load() {
				return nil // first error wins; this chunk is abandoned
			}
			seed := trialSeed(popts.Seed, i)
			var t0 time.Time
			if met != nil && !batch {
				t0 = time.Now()
			}
			var res Result[S]
			var err error
			switch {
			case popts.TrialTimeout > 0:
				res, err = runWatched(m, mk(), target, opts, newTrialRNG(seed), clock, popts.TrialTimeout, i, seed)
			case ar != nil:
				// Reseeding the arena's RNG restores exactly the state a
				// fresh newTrialRNG(seed) would have, so the trial's
				// coins are independent of arena reuse.
				ar.rng.Seed(seed)
				res, err = runArenaTrial(ar.sc, mk(), target, opts, ar.rng)
			default:
				res, err = RunOnce(m, mk(), target, opts, newTrialRNG(seed))
			}
			var se *TrialStalledError
			if errors.As(err, &se) {
				if !rc.allowPanic() {
					return se
				}
				if met != nil {
					met.TrialStalled(i)
				}
				chunkPanics = append(chunkPanics, PanicRecord{
					Trial: i, Seed: seed, Kind: RecordStalled, Value: se.Error(),
				})
				continue // quarantined like a panic: recorded, excluded
			}
			var pe *TrialPanicError
			if errors.As(err, &pe) {
				pe.Trial, pe.Seed = i, seed
				if !rc.allowPanic() {
					return pe
				}
				if met != nil {
					met.TrialQuarantined(i)
				}
				chunkPanics = append(chunkPanics, PanicRecord{
					Trial: i, Seed: seed, Value: fmt.Sprint(pe.Value), Stack: pe.Stack,
				})
				continue // quarantined: recorded, excluded from the estimate
			}
			if err == nil {
				if batch {
					batchEvents[batchN] = int64(res.Events)
					batchN++
					if res.Reached {
						batchReach[batchHits] = res.ReachedAt
						batchHits++
					}
				} else if met != nil {
					met.TrialDone(i, res.Events, time.Since(t0).Seconds(), res.Reached, res.ReachedAt)
				}
				err = observe(&accs[chunk], i, res)
				if err == nil {
					chunkCompleted++
				}
			}
			if err != nil {
				return fmt.Errorf("sim: trial %d: %w", i, err)
			}
		}
		if err := rc.complete(chunk, &accs[chunk], chunkPanics); err != nil {
			return err
		}
		done[chunk] = true
		if batch && batchN > 0 {
			bmet.TrialBatchDone(batchN, batchHits, batchEvents[:batchN], batchReach[:batchHits],
				time.Since(chunkT0).Seconds())
		}
		if met != nil {
			met.ChunkDone(chunk, hi-lo)
		}
		return nil
	}

	// Each worker owns one arena — a scratch buffer and an RNG reused
	// across all its trials — unless arenas are off or the watchdog is
	// armed (an abandoned stalled trial would keep writing to a scratch
	// the worker has moved past). Arenas are built here, on the caller's
	// goroutine, so a misbehaving model panics to the caller like
	// Compile would, not inside a worker.
	workers := min(popts.workers(), hiChunk-loChunk)
	arenas := make([]*trialArena[S], workers)
	if popts.TrialTimeout <= 0 && !popts.NoArena {
		for w := range arenas {
			arenas[w] = &trialArena[S]{sc: newViewScratch[S](m), rng: newTrialRNG(0)}
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		ar := arenas[w]
		go func() {
			defer wg.Done()
			// ctx is polled only when claiming a chunk: on cancellation a
			// worker drains the chunk it is on (every trial is bounded by
			// Options.MaxEvents/MaxTime), so completed work is never lost.
			claim := func(ctx context.Context) {
				for !stop.Load() && ctx.Err() == nil {
					chunk := loChunk + int(nextChunk.Add(1)) - 1
					if chunk >= hiChunk {
						return
					}
					if done[chunk] {
						continue // restored from the resume token
					}
					if met != nil {
						met.ChunkActive(1)
					}
					err := runChunk(chunk, ar)
					if met != nil {
						met.ChunkActive(-1)
					}
					if err != nil {
						errs[chunk] = err
						stop.Store(true)
						return
					}
				}
			}
			if len(popts.PprofLabels) > 0 {
				// Labels cover the worker's whole claim loop: one
				// goroutine-label swap per worker, zero per-trial cost, and
				// every CPU sample inside the trial loop carries the
				// job/lease/chunk-range tags.
				pprof.Do(ctx, pprof.Labels(popts.PprofLabels...), claim)
			} else {
				claim(ctx)
			}
		}()
	}
	wg.Wait()

	rc.cp.sortRecords()
	rep.Panics = append([]PanicRecord(nil), rc.cp.Panics...)
	rep.Quarantined = len(rep.Panics)
	for _, pr := range rep.Panics {
		if pr.Kind == RecordStalled {
			rep.Stalled++
		}
	}
	rep.Checkpoint = rc.cp

	// Deterministic error selection: among the chunks that failed, report
	// the lowest-numbered one — under Workers: 1 this is exactly the first
	// failing trial, and under any worker count it is a stable choice.
	for _, err := range errs {
		if err != nil {
			return total, rep, err
		}
	}

	covered := 0
	for chunk := loChunk; chunk < hiChunk; chunk++ {
		if done[chunk] {
			merge(&total, accs[chunk])
			covered += chunkLenFor(trials, chunk)
		}
	}
	rep.Completed = covered - rep.Quarantined
	if covered < rangeTrials {
		rep.Interrupted = true
		cause := context.Cause(ctx)
		if cause == nil {
			cause = errors.New("run stopped early")
		}
		return total, rep, fmt.Errorf("%w after %d/%d trials: %v", ErrInterrupted, covered, rangeTrials, cause)
	}
	return total, rep, nil
}

// EstimateReachProbParallel is the parallel counterpart of
// EstimateReachProb: it estimates the probability that the target is
// reached within the given time, sharding trials across popts.Workers.
// Seeded results are bit-identical for every worker count; they differ
// from the sequential path, which threads one RNG through all trials.
// The RunReport carries partial-run and quarantine details; see
// RunParallel for the cancellation, checkpoint and panic semantics.
func EstimateReachProbParallel[S comparable](ctx context.Context, m sched.Model[S], mk func() Policy[S], target func(S) bool,
	within float64, trials int, opts Options[S], popts ParallelOptions) (stats.Proportion, RunReport, error) {
	popts.kind = fmt.Sprintf("reachprob(within=%v)", within)
	return RunParallel(ctx, m, mk, target, trials, opts, popts,
		func(acc *stats.Proportion, _ int, res Result[S]) error {
			acc.Observe(res.Reached && res.ReachedAt <= within)
			return nil
		},
		func(dst *stats.Proportion, src stats.Proportion) { dst.Merge(src) })
}

// EstimateTimeToTargetParallel is the parallel counterpart of
// EstimateTimeToTarget: it summarizes the time to reach the target over
// trials independent runs; a run that never reaches it is an error, which
// cancels the remaining trials (use a generous Options.MaxTime for
// almost-sure targets). The RunReport carries partial-run and quarantine
// details; see RunParallel for the cancellation, checkpoint and panic
// semantics.
func EstimateTimeToTargetParallel[S comparable](ctx context.Context, m sched.Model[S], mk func() Policy[S], target func(S) bool,
	trials int, opts Options[S], popts ParallelOptions) (stats.Summary, RunReport, error) {
	popts.kind = "timetotarget"
	return RunParallel(ctx, m, mk, target, trials, opts, popts,
		func(acc *stats.Summary, trial int, res Result[S]) error {
			if !res.Reached {
				return fmt.Errorf("run did not reach the target within budget (events=%d, state=%v)",
					res.Events, res.Final)
			}
			acc.Observe(res.ReachedAt)
			return nil
		},
		func(dst *stats.Summary, src stats.Summary) { dst.Merge(src) })
}

// EstimateCurveParallel is the parallel counterpart of EstimateCurve: one
// sharded batch of runs yields the empirical reach probability for every
// requested deadline at once. Deadlines are sorted; when opts.MaxTime is
// unset the run budget is max(deadlines)+1, as in the sequential path.
// The RunReport carries partial-run and quarantine details; see
// RunParallel for the cancellation, checkpoint and panic semantics.
func EstimateCurveParallel[S comparable](ctx context.Context, m sched.Model[S], mk func() Policy[S], target func(S) bool,
	deadlines []float64, trials int, opts Options[S], popts ParallelOptions) (EmpiricalCurve, RunReport, error) {
	ds, err := curveDeadlines(deadlines)
	if err != nil {
		return EmpiricalCurve{}, RunReport{Total: trials}, err
	}
	if opts.MaxTime <= 0 {
		opts.MaxTime = ds[len(ds)-1] + 1
	}
	popts.kind = fmt.Sprintf("curve(deadlines=%v)", ds)
	at, rep, err := RunParallel(ctx, m, mk, target, trials, opts, popts,
		func(acc *[]stats.Proportion, _ int, res Result[S]) error {
			if *acc == nil {
				*acc = make([]stats.Proportion, len(ds))
			}
			for i, d := range ds {
				(*acc)[i].Observe(res.Reached && res.ReachedAt <= d)
			}
			return nil
		},
		func(dst *[]stats.Proportion, src []stats.Proportion) {
			if src == nil {
				return
			}
			if *dst == nil {
				*dst = make([]stats.Proportion, len(ds))
			}
			for i := range src {
				(*dst)[i].Merge(src[i])
			}
		})
	if at == nil {
		// Zero completed chunks (e.g. cancelled at once): an empty curve
		// with well-formed points, not a nil slice.
		at = make([]stats.Proportion, len(ds))
	}
	return EmpiricalCurve{Deadlines: ds, At: at}, rep, err
}
