package sim

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/pa"
	"repro/internal/prob"
	"repro/internal/sched"
)

// flipper is a one-process model that flips a fair coin until heads.
type flipState struct {
	Heads bool
	Flips int
}

type flipper struct{}

func (flipper) Name() string       { return "flipper" }
func (flipper) NumProcs() int      { return 1 }
func (flipper) Start() []flipState { return []flipState{{}} }

func (flipper) Moves(s flipState, i int) []pa.Step[flipState] {
	if s.Heads {
		return nil
	}
	return []pa.Step[flipState]{{
		Action: "flip",
		Next: prob.MustDist(
			prob.Outcome[flipState]{Value: flipState{Heads: true, Flips: s.Flips + 1}, Prob: prob.Half()},
			prob.Outcome[flipState]{Value: flipState{Heads: false, Flips: s.Flips + 1}, Prob: prob.Half()},
		),
	}}
}

func (flipper) UserMoves(flipState, int) []pa.Step[flipState] { return nil }

var _ sched.Model[flipState] = flipper{}

// twoPhase is a two-process model where process 1 becomes ready only after
// process 0 has moved, exercising deadline bookkeeping; process 0 also has
// a user move before it moves.
type twoState struct{ A, B bool }

type twoPhase struct{}

func (twoPhase) Name() string      { return "two-phase" }
func (twoPhase) NumProcs() int     { return 2 }
func (twoPhase) Start() []twoState { return []twoState{{}} }

func (twoPhase) Moves(s twoState, i int) []pa.Step[twoState] {
	switch {
	case i == 0 && !s.A:
		return []pa.Step[twoState]{{Action: "a", Next: prob.Point(twoState{A: true, B: s.B})}}
	case i == 1 && s.A && !s.B:
		return []pa.Step[twoState]{{Action: "b", Next: prob.Point(twoState{A: true, B: true})}}
	default:
		return nil
	}
}

func (twoPhase) UserMoves(s twoState, i int) []pa.Step[twoState] { return nil }

// indexer is a model whose Moves/UserMoves index a per-process array, as
// real models do — an out-of-range process index from a policy would
// panic inside the model if the engine did not validate it first.
type ixState struct{ Done [2]bool }

type indexer struct{}

func (indexer) Name() string     { return "indexer" }
func (indexer) NumProcs() int    { return 2 }
func (indexer) Start() []ixState { return []ixState{{}} }

func (indexer) Moves(s ixState, i int) []pa.Step[ixState] {
	if s.Done[i] {
		return nil
	}
	next := s
	next.Done[i] = true
	return []pa.Step[ixState]{{Action: "go", Next: prob.Point(next)}}
}

func (indexer) UserMoves(s ixState, i int) []pa.Step[ixState] {
	_ = s.Done[i]
	return nil
}

// ticker is a one-process model that is always ready: state counts steps.
type ticker struct{}

func (ticker) Name() string  { return "ticker" }
func (ticker) NumProcs() int { return 1 }
func (ticker) Start() []int  { return []int{0} }

func (ticker) Moves(s int, i int) []pa.Step[int] {
	return []pa.Step[int]{{Action: "tick", Next: prob.Point(s + 1)}}
}

func (ticker) UserMoves(int, int) []pa.Step[int] { return nil }

func TestRunOnceSlowest(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	res, err := RunOnce[flipState](flipper{}, Slowest[flipState](), func(s flipState) bool { return s.Heads },
		Options[flipState]{}, rng)
	if err != nil {
		t.Fatalf("RunOnce: %v", err)
	}
	if !res.Reached {
		t.Fatalf("target not reached: %+v", res)
	}
	// The slowest policy steps exactly at deadlines: reach time equals
	// the number of flips.
	if got, want := res.ReachedAt, float64(res.Final.Flips); got != want {
		t.Errorf("ReachedAt = %g, want %g (one flip per unit time)", got, want)
	}
}

func TestRunOncePacedFasterThanSlowest(t *testing.T) {
	seed := int64(7)
	slow, err := RunOnce[flipState](flipper{}, Slowest[flipState](), func(s flipState) bool { return s.Heads },
		Options[flipState]{}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	fast, err := RunOnce[flipState](flipper{}, Paced[flipState](0.25), func(s flipState) bool { return s.Heads },
		Options[flipState]{}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	// Identical coins (same seed and consumption order), so the faster
	// pacing reaches heads in a quarter of the time.
	if fast.Final.Flips != slow.Final.Flips {
		t.Fatalf("different coin sequences: %d vs %d flips", fast.Final.Flips, slow.Final.Flips)
	}
	if math.Abs(fast.ReachedAt-0.25*slow.ReachedAt) > 1e-9 {
		t.Errorf("paced(0.25) time %g, want %g", fast.ReachedAt, 0.25*slow.ReachedAt)
	}
}

func TestRunOnceTargetAtStart(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	res, err := RunOnce[flipState](flipper{}, Slowest[flipState](), func(flipState) bool { return true },
		Options[flipState]{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached || res.ReachedAt != 0 || res.Events != 0 {
		t.Errorf("start-state target: %+v", res)
	}
}

func TestRunOnceStartOverride(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	res, err := RunOnce[flipState](flipper{}, Slowest[flipState](), func(s flipState) bool { return s.Heads },
		Options[flipState]{Start: flipState{Heads: true, Flips: 9}, SetStart: true}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached || res.Final.Flips != 9 {
		t.Errorf("start override ignored: %+v", res)
	}
}

func TestRunOnceQuiescentStop(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Target never satisfied; flipper quiesces at heads and the policy
	// stops legally.
	res, err := RunOnce[flipState](flipper{}, Slowest[flipState](), func(flipState) bool { return false },
		Options[flipState]{}, rng)
	if err != nil {
		t.Fatalf("RunOnce: %v", err)
	}
	if res.Reached {
		t.Error("unreachable target reported reached")
	}
	if !res.Final.Heads {
		t.Errorf("run stopped before quiescence: %+v", res)
	}
}

func TestRunOnceDeadlineBookkeeping(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	res, err := RunOnce[twoState](twoPhase{}, Slowest[twoState](), func(s twoState) bool { return s.B },
		Options[twoState]{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatalf("target not reached: %+v", res)
	}
	// Process 0 steps at its deadline (time 1); process 1 becomes ready
	// then and steps at time 2.
	if res.ReachedAt != 2 {
		t.Errorf("ReachedAt = %g, want 2", res.ReachedAt)
	}
}

func TestPolicyDesertionRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	quitter := PolicyFunc[flipState](func(*View[flipState], *rand.Rand) (Choice, bool) {
		return Choice{}, false
	})
	_, err := RunOnce[flipState](flipper{}, quitter, func(flipState) bool { return false },
		Options[flipState]{}, rng)
	if !errors.Is(err, ErrPolicyDeserted) {
		t.Errorf("err = %v, want ErrPolicyDeserted", err)
	}
}

func TestBadChoicesRejected(t *testing.T) {
	tests := []struct {
		name string
		c    Choice
	}{
		{name: "time beyond deadline", c: Choice{Proc: 0, At: 5}},
		{name: "time in the past", c: Choice{Proc: 0, At: -1}},
		{name: "bad process", c: Choice{Proc: 9, At: 0}},
		{name: "bad move", c: Choice{Proc: 0, Move: 7, At: 0}},
		{name: "user move where none", c: Choice{Proc: 0, User: true, At: 0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(1))
			bad := PolicyFunc[flipState](func(*View[flipState], *rand.Rand) (Choice, bool) {
				return tt.c, true
			})
			_, err := RunOnce[flipState](flipper{}, bad, func(flipState) bool { return false },
				Options[flipState]{}, rng)
			if !errors.Is(err, ErrBadChoice) {
				t.Errorf("err = %v, want ErrBadChoice", err)
			}
		})
	}
}

// TestMaliciousProcIndexRejected is the regression test for the
// validation-order bug: applyChoice used to call m.Moves(s, c.Proc) before
// range-checking c.Proc, so a policy returning an out-of-range process
// panicked inside the model instead of yielding ErrBadChoice.
func TestMaliciousProcIndexRejected(t *testing.T) {
	for _, c := range []Choice{
		{Proc: 5, At: 0},
		{Proc: -1, At: 0},
		{Proc: 2, User: true, At: 0},
	} {
		malicious := PolicyFunc[ixState](func(*View[ixState], *rand.Rand) (Choice, bool) {
			return c, true
		})
		rng := rand.New(rand.NewSource(1))
		_, err := RunOnce[ixState](indexer{}, malicious, func(ixState) bool { return false },
			Options[ixState]{}, rng)
		if !errors.Is(err, ErrBadChoice) {
			t.Errorf("choice %+v: err = %v, want ErrBadChoice", c, err)
		}
	}
}

// TestRunOnceMaxTimeTruncation pins the Options.MaxTime boundary
// semantics: steps at times <= MaxTime are applied (inclusive bound);
// a step strictly past MaxTime is never applied or counted, so a run
// cannot report Reached at a time beyond the clock bound.
func TestRunOnceMaxTimeTruncation(t *testing.T) {
	// Slowest steps the always-ready ticker at t = 1, 2, 3, ...
	run := func(maxTime float64, target func(int) bool) Result[int] {
		t.Helper()
		res, err := RunOnce[int](ticker{}, Slowest[int](), target, Options[int]{MaxTime: maxTime},
			rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	// The step at t=3 falls past MaxTime 2.5 and must not be applied.
	res := run(2.5, func(s int) bool { return s >= 3 })
	if res.Reached || res.Events != 2 || res.Final != 2 {
		t.Errorf("MaxTime 2.5: %+v, want unreached with 2 events", res)
	}

	// A step exactly at the bound is applied: the bound is inclusive.
	res = run(2, func(s int) bool { return s >= 2 })
	if !res.Reached || res.ReachedAt != 2 {
		t.Errorf("MaxTime 2: %+v, want reached at exactly 2", res)
	}

	// Truncation, not error: the run ends cleanly and never reports a
	// reach time past the bound.
	res = run(10, func(s int) bool { return s >= 4 })
	if !res.Reached || res.ReachedAt != 4 {
		t.Errorf("MaxTime 10: %+v, want reached at 4", res)
	}
	if res.ReachedAt > 10 {
		t.Errorf("reach time %v past MaxTime", res.ReachedAt)
	}
}

func TestEstimateReachProb(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	// P[heads within time 2] under the slowest policy = P[heads in <= 2
	// flips] = 3/4.
	prop, err := EstimateReachProb[flipState](flipper{},
		func() Policy[flipState] { return Slowest[flipState]() },
		func(s flipState) bool { return s.Heads },
		2, 4000, Options[flipState]{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, err := prop.Wilson(3)
	if err != nil {
		t.Fatal(err)
	}
	if lo > 0.75 || hi < 0.75 {
		t.Errorf("P[heads within 2] interval [%g, %g] excludes 3/4", lo, hi)
	}
}

func TestEstimateTimeToTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sum, err := EstimateTimeToTarget[flipState](flipper{},
		func() Policy[flipState] { return Slowest[flipState]() },
		func(s flipState) bool { return s.Heads },
		4000, Options[flipState]{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	mean, err := sum.Mean()
	if err != nil {
		t.Fatal(err)
	}
	// Geometric with p = 1/2 and unit steps: expected time 2.
	if math.Abs(mean-2) > 0.15 {
		t.Errorf("mean time = %g, want about 2", mean)
	}
}

func TestEstimateTimeToTargetUnreachable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	_, err := EstimateTimeToTarget[flipState](flipper{},
		func() Policy[flipState] { return Slowest[flipState]() },
		func(flipState) bool { return false },
		1, Options[flipState]{MaxEvents: 50}, rng)
	if err == nil {
		t.Error("unreachable target accepted")
	}
}

func TestRandomPolicy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	res, err := RunOnce[flipState](flipper{}, Random[flipState](0.1), func(s flipState) bool { return s.Heads },
		Options[flipState]{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Errorf("random policy did not reach heads: %+v", res)
	}
}

func TestPacedValidation(t *testing.T) {
	for _, alpha := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Paced(%g) did not panic", alpha)
				}
			}()
			Paced[flipState](alpha)
		}()
	}
}
