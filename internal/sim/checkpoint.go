package sim

// Checkpoint/resume for the parallel Monte Carlo engine.
//
// The parallel engine already merges fixed-size chunk accumulators in
// chunk order, and every trial's RNG is a pure function of (root seed,
// trial index). A checkpoint therefore only needs the serialized
// accumulators of the chunks that completed: a resumed run restores them,
// re-runs only the missing chunks (whose trials regenerate the exact same
// coin flips), and merges everything in the same order — so an
// interrupted-and-resumed run is bit-identical to an uninterrupted one,
// for any worker count on either side of the interruption.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// checkpointVersion guards the on-disk format.
const checkpointVersion = 1

// ErrCheckpointMismatch reports a resume token that does not belong to the
// run being started (different seed, trial budget, chunk size, estimator
// kind, or format version). Resuming such a token would silently corrupt
// the estimate, so the engine refuses.
var ErrCheckpointMismatch = errors.New("sim: checkpoint does not match this run")

// ChunkRecord is the serialized accumulator of one completed chunk.
type ChunkRecord struct {
	// Index is the chunk index (trials [Index*chunkSize, ...)).
	Index int `json:"index"`
	// Acc is the chunk accumulator, marshaled by encoding/json.
	Acc json.RawMessage `json:"acc"`
}

// PanicRecord is the serializable form of a quarantined TrialPanicError:
// enough to reproduce the crash (trial index + trial seed) without keeping
// the live panic value alive.
type PanicRecord struct {
	Trial int    `json:"trial"`
	Seed  int64  `json:"seed"`
	Value string `json:"value"`
	Stack string `json:"stack,omitempty"`
}

// Checkpoint is a resume token for one parallel estimator run: the
// identity of the run (seed, budget, chunking, estimator kind) plus the
// accumulators of every chunk completed so far and the panics quarantined
// so far. It marshals to a stable, human-inspectable JSON document.
type Checkpoint struct {
	Version   int    `json:"version"`
	Kind      string `json:"kind,omitempty"`
	Seed      int64  `json:"seed"`
	Trials    int    `json:"trials"`
	ChunkSize int    `json:"chunk_size"`
	// Chunks holds one record per completed chunk, sorted by index.
	Chunks []ChunkRecord `json:"chunks"`
	// Panics lists the quarantined trials, sorted by trial index; they
	// count against the quarantine budget of a resumed run.
	Panics []PanicRecord `json:"panics,omitempty"`
}

// Done reports how many of the requested trials are covered by completed
// chunks (including any quarantined trials inside them).
func (c *Checkpoint) Done() int {
	done := 0
	for _, cr := range c.Chunks {
		done += c.chunkLen(cr.Index)
	}
	return done
}

// Complete reports whether every chunk of the run is recorded.
func (c *Checkpoint) Complete() bool { return c.Done() >= c.Trials }

func (c *Checkpoint) numChunks() int {
	return (c.Trials + c.ChunkSize - 1) / c.ChunkSize
}

// chunkLen is the number of trials in chunk i (the last chunk is ragged).
func (c *Checkpoint) chunkLen(i int) int {
	lo := i * c.ChunkSize
	hi := min(lo+c.ChunkSize, c.Trials)
	return hi - lo
}

// sortRecords orders chunk and panic records canonically so the marshaled
// form is independent of the completion order of a particular run.
func (c *Checkpoint) sortRecords() {
	sort.Slice(c.Chunks, func(i, j int) bool { return c.Chunks[i].Index < c.Chunks[j].Index })
	sort.Slice(c.Panics, func(i, j int) bool { return c.Panics[i].Trial < c.Panics[j].Trial })
}

// validateFor checks that the token belongs to a run with the given
// parameters and that its records are well formed.
func (c *Checkpoint) validateFor(kind string, seed int64, trials, chunkSize int) error {
	switch {
	case c.Version != checkpointVersion:
		return fmt.Errorf("%w: format version %d, want %d", ErrCheckpointMismatch, c.Version, checkpointVersion)
	case c.Kind != kind:
		return fmt.Errorf("%w: estimator kind %q, want %q", ErrCheckpointMismatch, c.Kind, kind)
	case c.Seed != seed:
		return fmt.Errorf("%w: root seed %d, want %d", ErrCheckpointMismatch, c.Seed, seed)
	case c.Trials != trials:
		return fmt.Errorf("%w: trial budget %d, want %d", ErrCheckpointMismatch, c.Trials, trials)
	case c.ChunkSize != chunkSize:
		return fmt.Errorf("%w: chunk size %d, want %d", ErrCheckpointMismatch, c.ChunkSize, chunkSize)
	}
	seen := make(map[int]bool, len(c.Chunks))
	for _, cr := range c.Chunks {
		if cr.Index < 0 || cr.Index >= c.numChunks() {
			return fmt.Errorf("%w: chunk index %d outside [0, %d)", ErrCheckpointMismatch, cr.Index, c.numChunks())
		}
		if seen[cr.Index] {
			return fmt.Errorf("%w: duplicate chunk index %d", ErrCheckpointMismatch, cr.Index)
		}
		seen[cr.Index] = true
	}
	for _, pr := range c.Panics {
		if pr.Trial < 0 || pr.Trial >= c.Trials {
			return fmt.Errorf("%w: quarantined trial %d outside [0, %d)", ErrCheckpointMismatch, pr.Trial, c.Trials)
		}
	}
	return nil
}

// CheckpointSet maps a caller-chosen stage label to its checkpoint — the
// on-disk unit used by the CLIs, which run several estimator stages
// (sizes × policies × estimators) against one state file.
type CheckpointSet map[string]*Checkpoint

// LoadCheckpointSet reads a state file written by Save. A missing file is
// not an error: it returns an empty set, so "-resume path" on a first run
// simply starts fresh.
func LoadCheckpointSet(path string) (CheckpointSet, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return CheckpointSet{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("sim: reading checkpoint file: %w", err)
	}
	var cs CheckpointSet
	if err := json.Unmarshal(data, &cs); err != nil {
		return nil, fmt.Errorf("sim: parsing checkpoint file %s: %w", path, err)
	}
	if cs == nil {
		cs = CheckpointSet{}
	}
	return cs, nil
}

// Save writes the set atomically (temp file + rename in the target
// directory), so a crash mid-write can never leave a truncated state file:
// a reader sees either the previous checkpoint or the new one.
func (cs CheckpointSet) Save(path string) error {
	for _, cp := range cs {
		cp.sortRecords()
	}
	data, err := json.MarshalIndent(cs, "", " ")
	if err != nil {
		return fmt.Errorf("sim: marshaling checkpoint set: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("sim: writing checkpoint file: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sim: writing checkpoint file: %w", werr)
	}
	return nil
}
