package sim

// Checkpoint/resume for the parallel Monte Carlo engine.
//
// The parallel engine already merges fixed-size chunk accumulators in
// chunk order, and every trial's RNG is a pure function of (root seed,
// trial index). A checkpoint therefore only needs the serialized
// accumulators of the chunks that completed: a resumed run restores them,
// re-runs only the missing chunks (whose trials regenerate the exact same
// coin flips), and merges everything in the same order — so an
// interrupted-and-resumed run is bit-identical to an uninterrupted one,
// for any worker count on either side of the interruption.

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
)

// checkpointVersion guards the on-disk format.
const checkpointVersion = 1

// ErrCheckpointMismatch reports a resume token that does not belong to the
// run being started (different seed, trial budget, chunk size, estimator
// kind, or format version). Resuming such a token would silently corrupt
// the estimate, so the engine refuses.
var ErrCheckpointMismatch = errors.New("sim: checkpoint does not match this run")

// MismatchError is a checkpoint-identity mismatch with the offending
// field named and both values carried, so an operator can see at a glance
// whether they mistyped a seed or pointed -resume at the wrong run. It
// matches ErrCheckpointMismatch via errors.Is.
type MismatchError struct {
	// Field is the run parameter that disagrees: "version", "kind",
	// "seed", "trials", or "chunk_size".
	Field string
	// Want is the value the run being started expects.
	Want any
	// Got is the value found in the checkpoint.
	Got any
}

// Error names the field and both values.
func (e *MismatchError) Error() string {
	return fmt.Sprintf("sim: checkpoint does not match this run: %s is %v, want %v", e.Field, e.Got, e.Want)
}

// Is reports a match against ErrCheckpointMismatch.
func (e *MismatchError) Is(target error) bool { return target == ErrCheckpointMismatch }

// ChunkRecord is the serialized accumulator of one completed chunk.
type ChunkRecord struct {
	// Index is the chunk index (trials [Index*chunkSize, ...)).
	Index int `json:"index"`
	// Acc is the chunk accumulator, marshaled by encoding/json.
	Acc json.RawMessage `json:"acc"`
}

// RecordStalled marks a PanicRecord produced by the per-trial watchdog
// (a stuck trial) rather than a recovered panic.
const RecordStalled = "stall"

// PanicRecord is the serializable form of a quarantined trial — a
// recovered TrialPanicError, or a TrialStalledError from the watchdog:
// enough to reproduce the crash or hang (trial index + trial seed)
// without keeping the live panic value alive.
type PanicRecord struct {
	Trial int    `json:"trial"`
	Seed  int64  `json:"seed"`
	Value string `json:"value"`
	Stack string `json:"stack,omitempty"`
	// Kind distinguishes how the trial died: empty for a panic,
	// RecordStalled for a watchdog timeout.
	Kind string `json:"kind,omitempty"`
}

// Checkpoint is a resume token for one parallel estimator run: the
// identity of the run (seed, budget, chunking, estimator kind) plus the
// accumulators of every chunk completed so far and the panics quarantined
// so far. It marshals to a stable, human-inspectable JSON document.
type Checkpoint struct {
	Version   int    `json:"version"`
	Kind      string `json:"kind,omitempty"`
	Seed      int64  `json:"seed"`
	Trials    int    `json:"trials"`
	ChunkSize int    `json:"chunk_size"`
	// Chunks holds one record per completed chunk, sorted by index.
	Chunks []ChunkRecord `json:"chunks"`
	// Panics lists the quarantined trials, sorted by trial index; they
	// count against the quarantine budget of a resumed run.
	Panics []PanicRecord `json:"panics,omitempty"`
}

// Done reports how many of the requested trials are covered by completed
// chunks (including any quarantined trials inside them).
func (c *Checkpoint) Done() int {
	done := 0
	for _, cr := range c.Chunks {
		done += c.chunkLen(cr.Index)
	}
	return done
}

// Complete reports whether every chunk of the run is recorded.
func (c *Checkpoint) Complete() bool { return c.Done() >= c.Trials }

func (c *Checkpoint) numChunks() int {
	return (c.Trials + c.ChunkSize - 1) / c.ChunkSize
}

// chunkLen is the number of trials in chunk i (the last chunk is ragged).
func (c *Checkpoint) chunkLen(i int) int {
	lo := i * c.ChunkSize
	hi := min(lo+c.ChunkSize, c.Trials)
	return hi - lo
}

// sortRecords orders chunk and panic records canonically so the marshaled
// form is independent of the completion order of a particular run.
func (c *Checkpoint) sortRecords() {
	sort.Slice(c.Chunks, func(i, j int) bool { return c.Chunks[i].Index < c.Chunks[j].Index })
	sort.Slice(c.Panics, func(i, j int) bool { return c.Panics[i].Trial < c.Panics[j].Trial })
}

// validateFor checks that the token belongs to a run with the given
// parameters and that its records are well formed.
func (c *Checkpoint) validateFor(kind string, seed int64, trials, chunkSize int) error {
	switch {
	case c.Version != checkpointVersion:
		return &MismatchError{Field: "version", Want: checkpointVersion, Got: c.Version}
	case c.Kind != kind:
		return &MismatchError{Field: "kind", Want: kind, Got: c.Kind}
	case c.Seed != seed:
		return &MismatchError{Field: "seed", Want: seed, Got: c.Seed}
	case c.Trials != trials:
		return &MismatchError{Field: "trials", Want: trials, Got: c.Trials}
	case c.ChunkSize != chunkSize:
		return &MismatchError{Field: "chunk_size", Want: chunkSize, Got: c.ChunkSize}
	}
	seen := make(map[int]bool, len(c.Chunks))
	for _, cr := range c.Chunks {
		if cr.Index < 0 || cr.Index >= c.numChunks() {
			return fmt.Errorf("%w: chunk index %d outside [0, %d)", ErrCheckpointMismatch, cr.Index, c.numChunks())
		}
		if seen[cr.Index] {
			return fmt.Errorf("%w: duplicate chunk index %d", ErrCheckpointMismatch, cr.Index)
		}
		seen[cr.Index] = true
	}
	for _, pr := range c.Panics {
		if pr.Trial < 0 || pr.Trial >= c.Trials {
			return fmt.Errorf("%w: quarantined trial %d outside [0, %d)", ErrCheckpointMismatch, pr.Trial, c.Trials)
		}
	}
	return nil
}

// CheckpointSet maps a caller-chosen stage label to its checkpoint — the
// on-disk unit used by the CLIs, which run several estimator stages
// (sizes × policies × estimators) against one state file.
type CheckpointSet map[string]*Checkpoint

// LoadCheckpointSet reads a state file written by Save through a default
// ArtifactStore: checksums verified, fallback to the newest valid
// generation. A missing file is not an error: it returns an empty set,
// so "-resume path" on a first run simply starts fresh.
func LoadCheckpointSet(path string) (CheckpointSet, error) {
	var s ArtifactStore
	cs, _, err := s.Load(path)
	return cs, err
}

// Save writes the set through a default ArtifactStore: atomic, durable
// (fsync of file and directory), checksummed, keeping the last three
// generations.
func (cs CheckpointSet) Save(path string) error {
	var s ArtifactStore
	return s.Save(path, cs)
}
