// Package obs is the observability layer of the simulation runtime: a
// lock-free metrics registry (atomic counters, gauges and fixed-bucket
// histograms), a live progress reporter for long Monte Carlo sweeps, JSONL
// run manifests that make recorded experiments regenerable artifacts, and
// a pprof/expvar debug server for profiling runs in flight.
//
// The design rule throughout is that the *hot path pays nothing*: every
// mutation an instrument supports (Counter.Add, Gauge.Set,
// Histogram.Observe) is a handful of atomic operations with zero
// allocations, so the parallel trial engine can call them once per trial
// without perturbing the workload it measures. Registration, snapshots,
// progress lines and manifest events are cold paths and use ordinary
// locking.
package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; all methods are safe for concurrent use and allocation-free.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the value to stay monotone; Add does not
// enforce it).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down (e.g. in-flight chunks). The
// zero value is ready to use; all methods are safe for concurrent use and
// allocation-free.
type Gauge struct{ v atomic.Int64 }

// Set stores an absolute value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// atomicFloat is a float64 with a lock-free Add, stored as IEEE-754 bits
// behind a CAS loop. Concurrent adds serialize through the CAS; there is
// no blocking and no allocation.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(x float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+x)) {
			return
		}
	}
}

func (f *atomicFloat) Value() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram counts observations into fixed upper-inclusive buckets:
// bucket i holds samples x with bounds[i-1] < x <= bounds[i], and a final
// overflow bucket holds x > bounds[len-1]. Alongside the buckets it keeps
// the raw moment sums (count, Σx, Σx²), so a snapshot yields a running
// mean and CI via stats.MeanCIFromMoments without any locking.
//
// Observe is wait-free on the bucket counters (one atomic add after a
// binary search of an immutable bounds slice) plus two CAS-loop float
// adds, and never allocates.
type Histogram struct {
	bounds []float64 // immutable after construction, ascending
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomicFloat
	sumsq  atomicFloat
}

// NewHistogram returns a histogram over the given ascending bucket upper
// bounds. It panics on unsorted or empty bounds — bucket layout is a
// programming decision, not runtime input.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("obs: histogram bounds not ascending: %v", bounds))
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// bucket returns the index of the bucket that counts x: the smallest i
// with bounds[i] >= x (SearchFloat64s), which is exactly the
// upper-inclusive bucket — a sample equal to a bound lands in that
// bound's bucket, not the next — and len(bounds) for the overflow
// bucket. Every observation path must classify through this one
// function so the boundary semantics cannot drift between them.
func (h *Histogram) bucket(x float64) int {
	return sort.SearchFloat64s(h.bounds, x)
}

// Observe records one sample.
func (h *Histogram) Observe(x float64) {
	i := h.bucket(x)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(x)
	h.sumsq.Add(x * x)
}

// ObserveN records the sample x, n times, at the cost of a single
// observation. It is how a batch of trials sharing one measured value
// (e.g. a chunk's mean per-trial wall-time) is folded in without n
// rounds of atomics.
func (h *Histogram) ObserveN(x float64, n int64) {
	if n <= 0 {
		return
	}
	i := h.bucket(x)
	h.counts[i].Add(n)
	h.count.Add(n)
	fn := float64(n)
	h.sum.Add(x * fn)
	h.sumsq.Add(x * x * fn)
}

// maxBatchBuckets bounds the stack-allocated bucket accumulator of the
// batch observers; histograms with more buckets (none of the defaults
// come close) fall back to per-sample Observe.
const maxBatchBuckets = 64

// ObserveBatch records every sample of xs, accumulating bucket counts
// and moment sums locally and touching each shared counter at most once
// — the batched form of Observe for callers that already hold a chunk of
// samples. It allocates nothing.
func (h *Histogram) ObserveBatch(xs []float64) {
	if len(xs) == 0 {
		return
	}
	if len(h.counts) > maxBatchBuckets {
		for _, x := range xs {
			h.Observe(x)
		}
		return
	}
	var local [maxBatchBuckets]int64
	var sum, sumsq float64
	for _, x := range xs {
		local[h.bucket(x)]++
		sum += x
		sumsq += x * x
	}
	for i, n := range local[:len(h.counts)] {
		if n != 0 {
			h.counts[i].Add(n)
		}
	}
	h.count.Add(int64(len(xs)))
	h.sum.Add(sum)
	h.sumsq.Add(sumsq)
}

// ObserveIntBatch is ObserveBatch for integer-valued samples (e.g. step
// counts), sparing the caller a conversion buffer.
func (h *Histogram) ObserveIntBatch(xs []int64) {
	if len(xs) == 0 {
		return
	}
	if len(h.counts) > maxBatchBuckets {
		for _, v := range xs {
			h.Observe(float64(v))
		}
		return
	}
	var local [maxBatchBuckets]int64
	var sum, sumsq float64
	for _, v := range xs {
		x := float64(v)
		local[h.bucket(x)]++
		sum += x
		sumsq += x * x
	}
	for i, n := range local[:len(h.counts)] {
		if n != 0 {
			h.counts[i].Add(n)
		}
	}
	h.count.Add(int64(len(xs)))
	h.sum.Add(sum)
	h.sumsq.Add(sumsq)
}

// HistogramSnapshot is a point-in-time copy of a histogram. Under
// concurrent Observe calls the copy is near-consistent (counters are read
// one by one), and exact once observers are quiescent.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one entry per bound
	// plus a final overflow bucket.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	SumSq  float64   `json:"sumsq"`
}

// Snapshot copies the current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.Value(),
		SumSq:  h.sumsq.Value(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Snapshot is a point-in-time copy of every instrument in a registry,
// serializable as one JSON document (the `-metrics-out` format and the
// metrics section of a run manifest).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Registry is a named collection of instruments. Registration
// (get-or-create) locks; the returned instrument handles are what the hot
// path uses, so steady-state updates never touch the registry again.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the counter with the given name, creating it on first
// use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it with
// the given bounds on first use. Later calls return the existing histogram
// and ignore the bounds argument.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds...)
		r.hists[name] = h
	}
	return h
}

// Snapshot copies the current value of every instrument.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// Handler serves the registry snapshot as JSON — mounted at /debug/metrics
// by the debug server.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(r.Snapshot())
	})
}

// expvarRegs maps a published expvar name to the registry currently behind
// it. expvar.Publish panics on duplicate names and offers no unpublish, so
// repeated CLI invocations inside one process (tests) re-point the
// indirection instead of re-publishing.
var expvarRegs = struct {
	mu   sync.Mutex
	regs map[string]*Registry
}{regs: map[string]*Registry{}}

// PublishExpvar exports the registry's snapshot as the expvar variable
// with the given name (visible at /debug/vars alongside memstats). Calling
// it again with the same name re-points the variable at the new registry;
// the latest registry wins.
func (r *Registry) PublishExpvar(name string) {
	expvarRegs.mu.Lock()
	defer expvarRegs.mu.Unlock()
	if _, ok := expvarRegs.regs[name]; !ok {
		expvar.Publish(name, expvar.Func(func() any {
			expvarRegs.mu.Lock()
			reg := expvarRegs.regs[name]
			expvarRegs.mu.Unlock()
			return reg.Snapshot()
		}))
	}
	expvarRegs.regs[name] = r
}
